/**
 * @file
 * Unit tests for the pmbus module: LINEAR16 coding, the UCD9248
 * register model, the serial readback link, and the assembled board.
 */

#include <gtest/gtest.h>

#include "pmbus/board.hh"
#include "pmbus/pmbus.hh"
#include "pmbus/serial_link.hh"
#include "pmbus/ucd9248.hh"

namespace uvolt::pmbus
{
namespace
{

TEST(Linear16, RoundTrip)
{
    for (double volts : {0.0, 0.54, 0.61, 1.0, 1.8}) {
        const auto mantissa = encodeLinear16(volts);
        EXPECT_NEAR(decodeLinear16(mantissa), volts, 1.0 / 4096.0);
    }
}

TEST(Linear16, ClampsNegative)
{
    EXPECT_EQ(encodeLinear16(-0.5), 0);
}

TEST(Linear16, VoutModeAdvertisesExponent)
{
    // -12 in 5-bit two's complement is 0b10100.
    EXPECT_EQ(encodeVoutMode(), 0x14);
}

class RegulatorFixture : public ::testing::Test
{
  protected:
    RegulatorFixture() : regulator([this] { return temperature; })
    {
        page_a = regulator.addPage("VCCBRAM", 1000,
                                   [this](int mv) { applied_a = mv; });
        page_b = regulator.addPage("VCCINT", 1000,
                                   [this](int mv) { applied_b = mv; });
    }

    double temperature = 50.0;
    int applied_a = -1;
    int applied_b = -1;
    int page_a = 0;
    int page_b = 0;
    Ucd9248 regulator;
};

TEST_F(RegulatorFixture, PageSelectionRoutesWrites)
{
    regulator.writeByte(Command::Page, static_cast<std::uint8_t>(page_a));
    regulator.writeWord(Command::VoutCommand, encodeLinear16(0.61));
    EXPECT_EQ(applied_a, 610);
    EXPECT_EQ(applied_b, -1);

    regulator.writeByte(Command::Page, static_cast<std::uint8_t>(page_b));
    regulator.writeWord(Command::VoutCommand, encodeLinear16(0.66));
    EXPECT_EQ(applied_b, 660);
}

TEST_F(RegulatorFixture, SetpointQuantizedToDacStep)
{
    regulator.writeByte(Command::Page, static_cast<std::uint8_t>(page_a));
    regulator.writeWord(Command::VoutCommand, encodeLinear16(0.613));
    EXPECT_EQ(applied_a, 610);
    regulator.writeWord(Command::VoutCommand, encodeLinear16(0.617));
    EXPECT_EQ(applied_a, 620);
}

TEST_F(RegulatorFixture, ReadbackAndStatus)
{
    regulator.writeByte(Command::Page, static_cast<std::uint8_t>(page_a));
    regulator.writeWord(Command::VoutCommand, encodeLinear16(0.54));
    EXPECT_NEAR(decodeLinear16(regulator.readWord(Command::ReadVout)),
                0.54, 0.001);
    EXPECT_EQ(regulator.readWord(Command::StatusWord), statusNone);
    EXPECT_EQ(regulator.readWord(Command::ReadTemperature), 50);
    temperature = 80.0;
    EXPECT_EQ(regulator.readWord(Command::ReadTemperature), 80);
}

TEST_F(RegulatorFixture, OperationOffDropsRail)
{
    regulator.writeByte(Command::Page, static_cast<std::uint8_t>(page_a));
    regulator.writeWord(Command::VoutCommand, encodeLinear16(0.8));
    EXPECT_EQ(applied_a, 800);
    regulator.writeByte(Command::Operation, 0x00);
    EXPECT_EQ(applied_a, 0);
    EXPECT_EQ(regulator.readWord(Command::StatusWord), statusOff);
    regulator.writeByte(Command::Operation, 0x80);
    EXPECT_EQ(applied_a, 800);
}

TEST(SerialLinkTest, Crc16KnownVector)
{
    // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
    std::vector<std::uint8_t> check{'1', '2', '3', '4', '5', '6', '7',
                                    '8', '9'};
    EXPECT_EQ(crc16(check), 0x29B1);
}

TEST(SerialLinkTest, TransferVerifiesAndCounts)
{
    SerialLink link;
    std::vector<std::uint8_t> payload{1, 2, 3, 4};
    const SerialFrame frame = link.transfer(payload);
    EXPECT_TRUE(frame.verified());
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(link.framesSent(), 1u);
    EXPECT_EQ(link.bytesSent(), 4u);

    SerialFrame tampered = frame;
    tampered.payload[0] ^= 0xFF;
    EXPECT_FALSE(tampered.verified());
}

TEST(SerialLinkTest, WordPackingRoundTrip)
{
    std::vector<std::uint16_t> words{0x0000, 0xFFFF, 0x1234, 0xABCD};
    const auto bytes = SerialLink::packWords(words);
    EXPECT_EQ(bytes.size(), 8u);
    EXPECT_EQ(SerialLink::unpackWords(bytes), words);
}

TEST(BoardTest, PmBusPathDrivesRails)
{
    Board board(fpga::findPlatform("ZC702"));
    EXPECT_EQ(board.vccBramMv(), 1000);
    board.setVccBramMv(620);
    EXPECT_EQ(board.vccBramMv(), 620);
    EXPECT_EQ(board.device().rail(fpga::RailId::VccBram).millivolts(), 620);
    board.setVccIntMv(670);
    EXPECT_EQ(board.device().rail(fpga::RailId::VccInt).millivolts(), 670);
    board.softReset();
    EXPECT_EQ(board.vccBramMv(), 1000);
}

TEST(BoardTest, DonePinTracksCrash)
{
    Board board(fpga::findPlatform("ZC702"));
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    EXPECT_TRUE(board.donePin());
    board.setVccBramMv(board.spec().calib.bramVcrashMv - 10);
    EXPECT_FALSE(board.donePin());
    board.softReset();
    EXPECT_TRUE(board.donePin());
}

TEST(BoardTest, ReadBramToHostFaultFreeAtNominal)
{
    Board board(fpga::findPlatform("ZC702"));
    board.device().fillAll(0xA5A5);
    board.startReferenceRun();
    const auto rows = board.readBramToHost(0);
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(fpga::bramRows));
    for (std::uint16_t word : rows)
        EXPECT_EQ(word, 0xA5A5);
    EXPECT_GE(board.link().framesSent(), 1u);
}

TEST(BoardTest, ReadBelowCrashDies)
{
    Board board(fpga::findPlatform("ZC702"));
    board.setVccBramMv(board.spec().calib.bramVcrashMv - 20);
    EXPECT_EXIT(board.readBramToHost(0),
                ::testing::ExitedWithCode(1), "DONE pin low");
}

TEST(BoardTest, InternalLogicFaultTracksVccInt)
{
    Board board(fpga::findPlatform("VC707"));
    EXPECT_FALSE(board.internalLogicFaulty());
    board.setVccIntMv(board.spec().calib.intVminMv);
    EXPECT_FALSE(board.internalLogicFaulty());
    board.setVccIntMv(board.spec().calib.intVminMv - 10);
    EXPECT_TRUE(board.internalLogicFaulty());
}

TEST(BoardTest, PowerMeterFollowsVoltage)
{
    Board board(fpga::findPlatform("VC707"));
    const double at_nominal = board.measureBramPowerW();
    board.setVccBramMv(610);
    const double at_vmin = board.measureBramPowerW();
    EXPECT_GT(at_nominal, at_vmin * 10.0);
}

TEST(BoardTest, AmbientControl)
{
    Board board(fpga::findPlatform("VC707"));
    EXPECT_DOUBLE_EQ(board.ambientC(), 50.0);
    board.setAmbientC(80.0);
    EXPECT_DOUBLE_EQ(board.ambientC(), 80.0);
    EXPECT_EQ(board.regulator().readWord(Command::ReadTemperature), 80);
}

} // namespace
} // namespace uvolt::pmbus

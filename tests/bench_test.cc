/**
 * @file
 * Tests for the benchmark framework: summarize() statistics on known
 * synthetic vectors (including the empty and single-repeat edge cases),
 * the UVOLT_BENCHMARK registration macro, runOne() calibration and
 * result fields, telemetry counter-delta capture around the timed
 * repeats, and a parse-back of the "uvolt-bench-v1" JSON document
 * through the repo's own JSON parser.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/bench.hh"
#include "util/json.hh"
#include "util/telemetry.hh"

namespace uvolt::bench
{
namespace
{

/** Enable telemetry for one test; restore and wipe values on exit. */
class TelemetryOn
{
  public:
    TelemetryOn()
    {
        was_ = telemetry::Telemetry::enabled();
        telemetry::Registry::global().resetForTest();
        telemetry::Telemetry::setEnabled(true);
    }

    ~TelemetryOn()
    {
        telemetry::Telemetry::setEnabled(was_);
        telemetry::Registry::global().resetForTest();
    }

  private:
    bool was_;
};

/** Cheap deterministic work the optimizer cannot discard. */
std::uint64_t
spinWork(std::uint64_t seed)
{
    for (int i = 0; i < 64; ++i)
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed;
}

UVOLT_BENCHMARK(BM_TestSpin)
{
    std::uint64_t seed = 1;
    for (auto _ : state)
        doNotOptimize(seed = spinWork(seed));
    state.setBytesPerIteration(64 * sizeof(std::uint64_t));
    state.setItemsPerIteration(64);
}

UVOLT_BENCHMARK(BM_TestCounted)
{
    static telemetry::Counter &ticks =
        telemetry::Registry::global().counter("bench_test.ticks");
    std::uint64_t seed = 1;
    for (auto _ : state) {
        ticks.increment();
        doNotOptimize(seed = spinWork(seed));
    }
}

/** Fast options so the whole suite stays snappy. */
BenchOptions
quickOptions()
{
    BenchOptions options;
    options.repeats = 3;
    options.minTimeMs = 0.05;
    return options;
}

TEST(Summarize, KnownVector)
{
    const std::vector<double> samples = {90, 10, 50, 30, 70,
                                         20, 80, 40, 60};
    const RepeatStats stats = summarize(samples);
    EXPECT_DOUBLE_EQ(stats.minNs, 10.0);
    EXPECT_DOUBLE_EQ(stats.medianNs, 50.0);
    EXPECT_DOUBLE_EQ(stats.meanNs, 50.0);
    // Order statistics: 0.95 * (9 - 1) = rank 7.6, between 80 and 90.
    EXPECT_NEAR(stats.p95Ns, 86.0, 1e-9);
    EXPECT_GT(stats.stddevNs, 0.0);
}

TEST(Summarize, SingleRepeatCollapses)
{
    const RepeatStats stats = summarize({42.0});
    EXPECT_DOUBLE_EQ(stats.minNs, 42.0);
    EXPECT_DOUBLE_EQ(stats.medianNs, 42.0);
    EXPECT_DOUBLE_EQ(stats.p95Ns, 42.0);
    EXPECT_DOUBLE_EQ(stats.meanNs, 42.0);
    EXPECT_DOUBLE_EQ(stats.stddevNs, 0.0);
}

TEST(Summarize, EmptyVectorIsAllZeros)
{
    const RepeatStats stats = summarize({});
    EXPECT_DOUBLE_EQ(stats.minNs, 0.0);
    EXPECT_DOUBLE_EQ(stats.medianNs, 0.0);
    EXPECT_DOUBLE_EQ(stats.p95Ns, 0.0);
    EXPECT_DOUBLE_EQ(stats.meanNs, 0.0);
    EXPECT_DOUBLE_EQ(stats.stddevNs, 0.0);
}

TEST(State, RunsExactlyTheRequestedIterations)
{
    State state(100);
    std::uint64_t ran = 0;
    for (auto _ : state)
        ++ran;
    EXPECT_EQ(ran, 100u);
    EXPECT_EQ(state.iterations(), 100u);
}

TEST(State, ZeroIterationsRunsNothing)
{
    State state(0);
    std::uint64_t ran = 0;
    for (auto _ : state)
        ++ran;
    EXPECT_EQ(ran, 0u);
}

TEST(BenchRegistry, MacroRegistersByName)
{
    const std::vector<std::string> names = Registry::global().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "BM_TestSpin"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "BM_TestCounted"),
              names.end());
}

TEST(BenchRegistry, RunOnePopulatesEveryField)
{
    const BenchResult result =
        Registry::global().runOne("BM_TestSpin", quickOptions());
    EXPECT_EQ(result.name, "BM_TestSpin");
    EXPECT_EQ(result.repeats, 3);
    EXPECT_GE(result.iterationsPerRepeat, 1u);
    EXPECT_GT(result.wall.minNs, 0.0);
    EXPECT_GE(result.wall.medianNs, result.wall.minNs);
    EXPECT_GE(result.wall.p95Ns, result.wall.medianNs);
    EXPECT_GT(result.cpu.minNs, 0.0);
    EXPECT_GT(result.itersPerSec, 0.0);
    EXPECT_EQ(result.bytesPerIteration, 64 * sizeof(std::uint64_t));
    EXPECT_EQ(result.itemsPerIteration, 64u);
    EXPECT_GT(result.bytesPerSec, 0.0);
    EXPECT_GT(result.itemsPerSec, 0.0);
}

TEST(BenchRegistry, FilterSelectsSubset)
{
    BenchOptions options = quickOptions();
    options.filter = "BM_TestSpin";
    const std::vector<BenchResult> results =
        Registry::global().runAll(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].name, "BM_TestSpin");
}

TEST(BenchRegistry, CounterDeltasBracketTheTimedRepeats)
{
    if (!telemetry::Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;
    const BenchResult result =
        Registry::global().runOne("BM_TestCounted", quickOptions());
    const std::uint64_t expected =
        result.iterationsPerRepeat *
        static_cast<std::uint64_t>(result.repeats);
    bool found = false;
    for (const auto &[name, delta] : result.counterDeltas) {
        if (name == "bench_test.ticks") {
            found = true;
            // Calibration runs before the bracket; only the timed
            // repeats may contribute.
            EXPECT_EQ(delta, expected);
        }
    }
    EXPECT_TRUE(found);
}

TEST(BenchRegistry, CounterDeltasEmptyWhenTelemetryOff)
{
    telemetry::Telemetry::setEnabled(false);
    const BenchResult result =
        Registry::global().runOne("BM_TestCounted", quickOptions());
    for (const auto &[name, delta] : result.counterDeltas)
        EXPECT_NE(name, "bench_test.ticks") << "delta " << delta;
}

TEST(BenchJson, ParsesBackThroughTheRepoParser)
{
    BenchOptions options = quickOptions();
    options.filter = "BM_Test";
    const std::vector<BenchResult> results =
        Registry::global().runAll(options);
    ASSERT_EQ(results.size(), 2u);

    const auto doc = json::Value::parse(benchJson(results, options));
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const json::Value &root = doc.value();
    EXPECT_EQ(root.stringOr("schema", ""), "uvolt-bench-v1");
    EXPECT_FALSE(root.at("git_sha").string().empty());
    EXPECT_GE(root.at("machine").numberOr("cpus", 0.0), 1.0);
    EXPECT_DOUBLE_EQ(root.at("options").numberOr("repeats", 0.0), 3.0);

    const auto &benchmarks = root.at("benchmarks").items();
    ASSERT_EQ(benchmarks.size(), 2u);
    const json::Value &spin = benchmarks[0];
    EXPECT_EQ(spin.stringOr("name", ""), "BM_TestSpin");
    EXPECT_GT(spin.at("wall").numberOr("min_ns", 0.0), 0.0);
    EXPECT_GT(spin.at("cpu").numberOr("median_ns", 0.0), 0.0);
    EXPECT_GT(spin.numberOr("bytes_per_sec", 0.0), 0.0);
}

TEST(BenchJson, ResultsTableHasOneRowPerBenchmark)
{
    BenchOptions options = quickOptions();
    options.filter = "BM_Test";
    const std::vector<BenchResult> results =
        Registry::global().runAll(options);
    EXPECT_EQ(resultsTable(results).rows(), results.size());
}

} // namespace
} // namespace uvolt::bench

/**
 * @file
 * Tests for the parallel fleet-campaign engine and the Campaign facade:
 * the ThreadPool, bit-identity of parallel and serial fleets, the
 * single-flight FvmCache, engine-level checkpoint resume, and the
 * builder's equivalence to hand-wired sweeps.
 *
 * The central invariant under test: a fleet's results are a pure
 * function of its plan — worker count, completion order, harsh
 * environments, and mid-run kills never show in the output.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "harness/campaign.hh"
#include "harness/checkpoint.hh"
#include "harness/fleet.hh"
#include "harness/fvm_io.hh"
#include "pmbus/board.hh"
#include "util/thread_pool.hh"

namespace uvolt::harness
{
namespace
{

using pmbus::Board;
using pmbus::NoiseConfig;

/** Fresh scratch directory under the system temp root. */
std::string
scratchDir(const std::string &name)
{
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path.string();
}

/** A quick two-pattern, two-temperature fleet on the smallest die. */
FleetPlan
fastPlan()
{
    FleetPlan plan = FleetPlan::crossProduct(
        {"ZC702"},
        {PatternSpec::allOnes(), PatternSpec::fixed(0x0000)},
        {50.0, 60.0});
    plan.runsPerLevel = 5;
    return plan;
}

/** Bit-exact equality of two sweeps (the determinism contract). */
void
expectSameSweep(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.dieId, b.dieId);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const SweepPoint &p = a.points[i];
        const SweepPoint &q = b.points[i];
        EXPECT_EQ(p.vccBramMv, q.vccBramMv);
        EXPECT_EQ(p.runCounts, q.runCounts);
        EXPECT_EQ(p.medianFaults, q.medianFaults);
        EXPECT_EQ(p.faultsPerMbit, q.faultsPerMbit);
        EXPECT_EQ(p.perBramFaults, q.perBramFaults);
        EXPECT_EQ(p.bramPowerW, q.bramPowerW);
        EXPECT_EQ(p.oneToZeroFraction, q.oneToZeroFraction);
    }
}

void
expectSameFleet(const FleetResult &a, const FleetResult &b)
{
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].job.label(), b.jobs[i].job.label());
        expectSameSweep(a.jobs[i].sweep, b.jobs[i].sweep);
    }
    ASSERT_EQ(a.dies.size(), b.dies.size());
    for (std::size_t i = 0; i < a.dies.size(); ++i) {
        EXPECT_EQ(a.dies[i].dieId, b.dies[i].dieId);
        EXPECT_EQ(a.dies[i].faultsPerMbitAtVcrash,
                  b.dies[i].faultsPerMbitAtVcrash);
        ASSERT_EQ(a.dies[i].mergedFvm.has_value(),
                  b.dies[i].mergedFvm.has_value());
        if (a.dies[i].mergedFvm)
            EXPECT_EQ(a.dies[i].mergedFvm->perBramFaults(),
                      b.dies[i].mergedFvm->perBramFaults());
    }
    EXPECT_EQ(a.dieToDieRatio(), b.dieToDieRatio());
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCallingThread)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    bool ran = false;
    pool.submit([&] {
        ran_on = std::this_thread::get_id();
        ran = true;
    });
    // Inline execution: complete before submit() returned, same thread.
    EXPECT_TRUE(ran);
    EXPECT_EQ(ran_on, caller);
    pool.wait();
}

TEST(ThreadPoolTest, RunsEveryJobAcrossWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitDrainsAndPoolIsReusable)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 20; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                counter.fetch_add(1);
            });
        }
        pool.wait();
        EXPECT_EQ(counter.load(), (batch + 1) * 20);
    }
}

TEST(ThreadPoolTest, HardwareWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
}

TEST(ThreadPoolTest, ThrowingJobFailsTheBatchDeterministically)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&] { completed.fetch_add(1); });
    pool.submit([] { throw std::runtime_error("injected job failure"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&] { completed.fetch_add(1); });

    // The batch fails with the escaped exception — but every other job
    // still ran, so pre-assigned result slots stay consistent.
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(completed.load(), 40);

    // Rethrowing cleared the stored exception: the pool is reusable and
    // a clean follow-up batch waits without throwing.
    completed.store(0);
    for (int i = 0; i < 10; ++i)
        pool.submit([&] { completed.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(completed.load(), 10);
}

TEST(ThreadPoolTest, InlinePoolPropagatesExceptionsToo)
{
    ThreadPool pool(0);
    bool ran_after = false;
    pool.submit([] { throw std::runtime_error("inline failure"); });
    pool.submit([&] { ran_after = true; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_TRUE(ran_after);
    // And the pool is clean again.
    pool.submit([] {});
    pool.wait();
}

TEST(ThreadPoolTest, FirstExceptionWinsOnSingleWorker)
{
    // One worker runs jobs in submission order, so "first in completion
    // order" is deterministic here: the waiter sees job A's message.
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("first failure"); });
    pool.submit([] { throw std::runtime_error("second failure"); });
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "first failure");
    }
    // The second exception was dropped, not deferred to the next round.
    pool.submit([] {});
    pool.wait();
}

TEST(FleetDeterminism, ParallelMatchesSerialBitForBit)
{
    FleetEngine engine;
    const FleetPlan plan = fastPlan();

    auto serial = engine.run(plan);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ(serial.value().jobs.size(), 4u);

    for (std::size_t workers : {1u, 2u, 8u}) {
        ThreadPool pool(workers);
        auto parallel = engine.run(plan, pool);
        ASSERT_TRUE(parallel.ok()) << "workers=" << workers;
        expectSameFleet(serial.value(), parallel.value());
    }
}

TEST(FleetDeterminism, HarshEnvironmentFleetMatchesQuietFleet)
{
    FleetPlan quiet = fastPlan();
    FleetPlan noisy = fastPlan();
    NoiseConfig noise = NoiseConfig::harsh(1234, 0.02);
    noise.spuriousCrashProb = 0.5;
    for (auto &job : noisy.jobs)
        job.noise = noise;

    FleetEngine engine;
    ThreadPool pool(4);
    auto quiet_result = engine.run(quiet, pool);
    auto noisy_result = engine.run(noisy, pool);
    ASSERT_TRUE(quiet_result.ok());
    ASSERT_TRUE(noisy_result.ok());

    // The injected faults are fully masked (PR-1 invariant), and the
    // fleet layer preserves it across workers.
    for (std::size_t i = 0; i < quiet_result.value().jobs.size(); ++i)
        expectSameSweep(quiet_result.value().jobs[i].sweep,
                        noisy_result.value().jobs[i].sweep);
    EXPECT_GT(noisy_result.value().resilience.crashRecoveries, 0u);
    EXPECT_GT(noisy_result.value().resilience.linkRetransmits, 0u);
}

TEST(FleetDeterminism, DieToDieVariationAcrossTwinBoards)
{
    FleetPlan plan = FleetPlan::crossProduct(
        {"KC705-A", "KC705-B"}, {PatternSpec::allOnes()}, {50.0});
    plan.runsPerLevel = 5;

    ThreadPool pool(2);
    FleetEngine engine;
    auto result = engine.run(plan, pool);
    ASSERT_TRUE(result.ok());

    const FleetResult &fleet = result.value();
    ASSERT_EQ(fleet.dies.size(), 2u);
    // Same platform family, different dies: the serials must differ and
    // the paper's Fig-7 variation must be visible.
    EXPECT_NE(fleet.die("KC705-A").dieId, fleet.die("KC705-B").dieId);
    EXPECT_GT(fleet.dieToDieRatio(), 1.0);
}

TEST(FleetErrors, UnmaskableEnvironmentComesBackAsError)
{
    FleetPlan plan = FleetPlan::crossProduct(
        {"ZC702"}, {PatternSpec::allOnes()}, {50.0});
    plan.runsPerLevel = 3;
    // A board that crashes on every measurement, with a recovery budget
    // far too small to ride it out: unmaskable, but recoverable-error.
    NoiseConfig noise;
    noise.seed = 7;
    noise.spuriousCrashProb = 1.0;
    noise.crashBandMv = 10000; // crash anywhere, not just near Vcrash
    plan.jobs.front().noise = noise;
    plan.recovery.maxRecoveriesPerRun = 2;

    FleetOptions options;
    options.maxAttemptsPerJob = 2;
    FleetEngine engine(options);
    auto result = engine.run(plan);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.code(), Errc::recoveryExhausted);
}

TEST(FleetCheckpoint, ResumesAfterKillAndMatchesFreshRun)
{
    const std::string dir = scratchDir("uvolt-fleet-ckpt");

    FleetPlan plan = FleetPlan::crossProduct(
        {"ZC702"}, {PatternSpec::allOnes()}, {50.0});
    plan.runsPerLevel = 5;

    FleetEngine fresh_engine;
    auto fresh = fresh_engine.run(plan);
    ASSERT_TRUE(fresh.ok());

    // "Kill" a fleet mid-job: run the job's sweep with a level budget,
    // leaving a resumable checkpoint at exactly the engine's path.
    const std::string ckpt_path =
        dir + "/" + plan.jobs.front().label() + ".ckpt";
    {
        Board board(fpga::findPlatform("ZC702"));
        SweepCheckpoint checkpoint;
        SweepOptions options;
        options.runsPerLevel = plan.runsPerLevel;
        options.maxLevels = 2;
        options.checkpoint = &checkpoint;
        options.checkpointPath = ckpt_path;
        auto partial = tryRunCriticalSweep(board, options);
        ASSERT_TRUE(partial.ok());
        EXPECT_TRUE(partial.value().truncated);
    }
    ASSERT_TRUE(std::filesystem::exists(ckpt_path));

    FleetOptions options;
    options.checkpointDir = dir;
    FleetEngine engine(options);
    auto resumed = engine.run(plan);
    ASSERT_TRUE(resumed.ok());

    EXPECT_TRUE(resumed.value().jobs.front().resumed);
    EXPECT_GE(resumed.value().resilience.checkpointResumes, 1u);
    expectSameFleet(fresh.value(), resumed.value());
    // The finished job cleans up its scratch checkpoint.
    EXPECT_FALSE(std::filesystem::exists(ckpt_path));
}

TEST(CampaignFacade, MatchesHandWiredSweep)
{
    auto result = Campaign::onPlatform("ZC702").sweep(5).run();
    ASSERT_TRUE(result.ok());

    Board board(fpga::findPlatform("ZC702"));
    SweepOptions options;
    options.runsPerLevel = 5;
    auto direct = tryRunCriticalSweep(board, options);
    ASSERT_TRUE(direct.ok());

    expectSameSweep(result.value().onlySweep(), direct.value());
}

TEST(CampaignFacade, CrossProductShapeAndDefaults)
{
    const FleetPlan plan =
        Campaign::onPlatforms({"KC705-A", "KC705-B"})
            .withPattern(PatternSpec::allOnes())
            .withPattern(PatternSpec::fixed(0xAAAA))
            .atTemperatures({30.0, 50.0, 80.0})
            .sweep(7)
            .plan();
    EXPECT_EQ(plan.jobs.size(), 12u);
    EXPECT_EQ(plan.runsPerLevel, 7);
    // Platforms outermost, then patterns, then temperatures.
    EXPECT_EQ(plan.jobs[0].platform, "KC705-A");
    EXPECT_EQ(plan.jobs[0].ambientC, 30.0);
    EXPECT_EQ(plan.jobs[11].platform, "KC705-B");
    EXPECT_EQ(plan.jobs[11].pattern.word, 0xAAAA);
    EXPECT_EQ(plan.jobs[11].ambientC, 80.0);
}

TEST(FvmCacheTest, SingleFlightUnderConcurrency)
{
    const std::string dir = scratchDir("uvolt-fvm-cache-flight");
    FvmCache cache(dir);
    const auto &spec = fpga::findPlatform("ZC702");
    const auto pattern = PatternSpec::allOnes();
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);

    std::atomic<int> characterizations{0};
    auto characterize = [&]() -> Expected<Fvm> {
        characterizations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return Fvm(spec.name, floorplan,
                   std::vector<int>(spec.bramCount, 3));
    };

    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const Fvm>> results(8);
    for (std::size_t t = 0; t < results.size(); ++t) {
        threads.emplace_back([&, t] {
            auto fvm = cache.obtain(spec, pattern, 5, characterize);
            ASSERT_TRUE(fvm.ok());
            results[t] = fvm.value();
        });
    }
    for (auto &thread : threads)
        thread.join();

    // Exactly one characterization; every caller shares its output.
    EXPECT_EQ(characterizations.load(), 1);
    for (const auto &fvm : results) {
        ASSERT_NE(fvm, nullptr);
        EXPECT_EQ(fvm->faultsOf(0), 3);
    }
    const FvmCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.memoryHits + stats.singleFlightWaits, 7u);
}

TEST(FvmCacheTest, DiskHitsAndCorruptionSelfHeal)
{
    const std::string dir = scratchDir("uvolt-fvm-cache-disk");
    FvmCache cache(dir);
    const auto &spec = fpga::findPlatform("ZC702");
    const auto pattern = PatternSpec::allOnes();
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);

    int characterizations = 0;
    auto characterize = [&]() -> Expected<Fvm> {
        ++characterizations;
        return Fvm(spec.name, floorplan,
                   std::vector<int>(spec.bramCount, characterizations));
    };

    // Cold: characterize and file the map.
    ASSERT_TRUE(cache.obtain(spec, pattern, 5, characterize).ok());
    EXPECT_EQ(characterizations, 1);

    // Memory hit: no disk, no characterization.
    ASSERT_TRUE(cache.obtain(spec, pattern, 5, characterize).ok());
    EXPECT_EQ(characterizations, 1);
    EXPECT_EQ(cache.stats().memoryHits, 1u);

    // Disk hit: a fresh process (memory evicted) reuses the file.
    cache.evictMemory();
    auto from_disk = cache.obtain(spec, pattern, 5, characterize);
    ASSERT_TRUE(from_disk.ok());
    EXPECT_EQ(characterizations, 1);
    EXPECT_EQ(cache.stats().diskHits, 1u);

    // Corruption self-heals: re-characterize and overwrite.
    const std::string path =
        dir + "/" + FvmCache::keyFor(spec, pattern, 5) + ".fvm";
    {
        std::ofstream out(path);
        out << "garbage, not an fvm\n";
    }
    cache.evictMemory();
    auto healed = cache.obtain(spec, pattern, 5, characterize);
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(characterizations, 2);
    EXPECT_EQ(healed.value()->faultsOf(0), 2);
    EXPECT_EQ(cache.stats().corruptFiles, 1u);

    // And the overwritten file is good again.
    cache.evictMemory();
    ASSERT_TRUE(cache.obtain(spec, pattern, 5, characterize).ok());
    EXPECT_EQ(characterizations, 2);
    EXPECT_GT(cache.stats().hitRate(), 0.0);
}

TEST(FvmCacheTest, CorruptDiskSelfHealsUnderConcurrentReaders)
{
    const std::string dir = scratchDir("uvolt-fvm-cache-heal-mt");
    FvmCache cache(dir);
    const auto &spec = fpga::findPlatform("ZC702");
    const auto pattern = PatternSpec::allOnes();
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);

    // A corrupt on-disk entry is already present when a stampede of
    // readers arrives: exactly one of them re-characterizes (the
    // single-flight lock covers the self-heal path too) and everyone
    // shares the healed map.
    const std::string path =
        dir + "/" + FvmCache::keyFor(spec, pattern, 5) + ".fvm";
    {
        std::ofstream out(path);
        out << "garbage, not an fvm\n";
    }

    std::atomic<int> characterizations{0};
    auto characterize = [&]() -> Expected<Fvm> {
        characterizations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return Fvm(spec.name, floorplan,
                   std::vector<int>(spec.bramCount, 7));
    };

    std::vector<std::thread> readers;
    std::vector<std::shared_ptr<const Fvm>> results(8);
    for (std::size_t t = 0; t < results.size(); ++t) {
        readers.emplace_back([&, t] {
            auto fvm = cache.obtain(spec, pattern, 5, characterize);
            ASSERT_TRUE(fvm.ok());
            results[t] = fvm.value();
        });
    }
    for (auto &thread : readers)
        thread.join();

    EXPECT_EQ(characterizations.load(), 1);
    for (const auto &fvm : results) {
        ASSERT_NE(fvm, nullptr);
        EXPECT_EQ(fvm->faultsOf(0), 7);
    }
    EXPECT_GE(cache.stats().corruptFiles, 1u);

    // The healed file is good: a fresh memory-evicted read hits disk.
    cache.evictMemory();
    auto healed = cache.obtain(spec, pattern, 5, characterize);
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(characterizations.load(), 1);
    EXPECT_EQ(healed.value()->faultsOf(0), 7);
}

TEST(FvmCacheTest, FailedFlightsAreSharedThenRetried)
{
    const std::string dir = scratchDir("uvolt-fvm-cache-fail");
    FvmCache cache(dir);
    const auto &spec = fpga::findPlatform("ZC702");
    const auto pattern = PatternSpec::allOnes();
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);

    auto failing = [&]() -> Expected<Fvm> {
        return makeError(Errc::recoveryExhausted, "die unreachable");
    };
    auto bad = cache.obtain(spec, pattern, 5, failing);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), Errc::recoveryExhausted);

    // The failure is not cached: the next obtain tries again.
    auto working = [&]() -> Expected<Fvm> {
        return Fvm(spec.name, floorplan,
                   std::vector<int>(spec.bramCount, 0));
    };
    EXPECT_TRUE(cache.obtain(spec, pattern, 5, working).ok());
}

TEST(FvmIoErrors, MissingAndCorruptFilesUseTheTaxonomy)
{
    const std::string dir = scratchDir("uvolt-fvm-io");
    const auto &spec = fpga::findPlatform("ZC702");
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);

    auto missing = tryLoadFvm(floorplan, dir + "/nope.fvm");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.code(), Errc::cacheMiss);

    const std::string path = dir + "/bad.fvm";
    {
        std::ofstream out(path);
        out << "definitely not an fvm\n";
    }
    auto corrupt = tryLoadFvm(floorplan, path);
    ASSERT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.code(), Errc::corruptCache);
}

TEST(SweepQueries, MissingLevelNamesTheDie)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SweepResult sweep;
    sweep.platform = "VC707";
    sweep.dieId = "1308-6520";
    SweepPoint point;
    point.vccBramMv = 900;
    sweep.points.push_back(point);
    EXPECT_EQ(sweep.describe(), "VC707 (die 1308-6520)");
    // Fleet campaigns hold many sweeps of identical platforms: the
    // diagnostic must say which die has no such level.
    EXPECT_EXIT(sweep.at(9999), ::testing::ExitedWithCode(1),
                "no point at 9999 mV.*die 1308-6520");
}

} // namespace
} // namespace uvolt::harness

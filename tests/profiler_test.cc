/**
 * @file
 * Tests for the span-sampling profiler: the fold accumulator against
 * golden collapsed-stack text, self/total attribution (including
 * recursion dedup), sampler lifecycle (start/stop/restart, reset,
 * idempotence), live capture of scripted spans, an 8-thread span-churn
 * soak (the TSan leg's reason to exist), the central guarantee that
 * profiling on vs off leaves sweep results bit-identical, and the
 * compiled-out stub under -DUVOLT_TELEMETRY=OFF.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/campaign.hh"
#include "util/profiler.hh"
#include "util/telemetry.hh"

namespace uvolt::profiler
{
namespace
{

using telemetry::Telemetry;

/** Enable telemetry for one test; restore and wipe values on exit. */
class TelemetryOn
{
  public:
    TelemetryOn()
    {
        was_ = Telemetry::enabled();
        telemetry::Registry::global().resetForTest();
        Telemetry::setEnabled(true);
    }

    ~TelemetryOn()
    {
        Telemetry::setEnabled(was_);
        telemetry::Registry::global().resetForTest();
    }

  private:
    bool was_;
};

telemetry::SpanStackSnapshot
stack(std::vector<const char *> frames, std::uint64_t flow = 0,
      bool truncated = false)
{
    telemetry::SpanStackSnapshot snapshot;
    snapshot.tid = 1;
    snapshot.flowId = flow;
    snapshot.frames = std::move(frames);
    snapshot.truncated = truncated;
    return snapshot;
}

TEST(ProfilerFold, GoldenFoldedText)
{
    Profile profile;
    foldInto(profile, {stack({"sweep.run", "sweep.level"}),
                       stack({"sweep.run"})});
    foldInto(profile, {stack({"sweep.run", "sweep.level"})});
    foldInto(profile,
             {stack({"sweep.run", "sweep.level", "bram.readback"})});
    foldInto(profile, {stack({"serve.classify"}, /*flow=*/7)});

    EXPECT_EQ(profile.foldedText(),
              "serve.classify 1\n"
              "sweep.run 1\n"
              "sweep.run;sweep.level 2\n"
              "sweep.run;sweep.level;bram.readback 1\n");
    EXPECT_EQ(profile.samples, 5u);
    EXPECT_EQ(profile.flowSamples, 1u);
    EXPECT_EQ(profile.truncated, 0u);
}

TEST(ProfilerFold, CountsTruncatedStacks)
{
    Profile profile;
    foldInto(profile, {stack({"a"}, 0, /*truncated=*/true)});
    EXPECT_EQ(profile.truncated, 1u);
    EXPECT_EQ(profile.samples, 1u);
}

TEST(ProfilerFold, TopFramesSelfAndTotal)
{
    Profile profile;
    for (int i = 0; i < 4; ++i)
        foldInto(profile, {stack({"a", "b"})});
    foldInto(profile, {stack({"a"}), stack({"a"})});
    foldInto(profile, {stack({"b"})});

    const auto top = profile.topFrames(2);
    ASSERT_EQ(top.size(), 2u);
    // b: leaf of "a;b" x4 plus alone x1 -> self 5, total 5.
    EXPECT_EQ(top[0].name, "b");
    EXPECT_EQ(top[0].self, 5u);
    EXPECT_EQ(top[0].total, 5u);
    // a: leaf only when alone -> self 2, but on-stack for all 7.
    EXPECT_EQ(top[1].name, "a");
    EXPECT_EQ(top[1].self, 2u);
    EXPECT_EQ(top[1].total, 6u);
}

TEST(ProfilerFold, RecursionCountsOncePerSample)
{
    Profile profile;
    foldInto(profile, {stack({"a", "b", "a"})});
    for (const auto &frame : profile.topFrames(8)) {
        if (frame.name == "a") {
            EXPECT_EQ(frame.total, 1u); // deduplicated, not 2
            EXPECT_EQ(frame.self, 1u);  // it is also the leaf
        }
    }
}

TEST(ProfilerFold, WriteFoldedMatchesText)
{
    Profile profile;
    foldInto(profile, {stack({"x", "y"})});
    const auto path = std::filesystem::temp_directory_path() /
        "uvolt_profiler_test.folded";
    ASSERT_TRUE(writeFolded(profile, path.string()));
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, profile.foldedText());
    std::filesystem::remove(path);
}

TEST(Profiler, IntervalFromEnv)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    ::setenv("UVOLT_PROFILE_HZ", "2000", 1);
    EXPECT_EQ(SpanProfiler::intervalFromEnv(), 500u);
    ::setenv("UVOLT_PROFILE_HZ", "junk", 1);
    EXPECT_EQ(SpanProfiler::intervalFromEnv(), 997u);
    ::setenv("UVOLT_PROFILE_HZ", "0", 1);
    EXPECT_EQ(SpanProfiler::intervalFromEnv(), 997u);
    ::unsetenv("UVOLT_PROFILE_HZ");
    EXPECT_EQ(SpanProfiler::intervalFromEnv(), 997u);
}

TEST(Profiler, CapturesScriptedSpans)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn on;
    SpanProfiler profiler(/*interval_us=*/200);
    profiler.start();
    EXPECT_TRUE(profiler.running());

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool found = false;
    while (!found && std::chrono::steady_clock::now() < deadline) {
        UVOLT_TRACE_SCOPE("prof.outer");
        {
            UVOLT_TRACE_SCOPE("prof.inner");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        found = profiler.snapshot().folded.count(
                    "prof.outer;prof.inner") > 0;
    }
    profiler.stop();
    EXPECT_FALSE(profiler.running());
    EXPECT_TRUE(found) << profiler.snapshot().foldedText();
    EXPECT_GT(profiler.snapshot().ticks, 0u);
}

TEST(Profiler, StartStopRestartAndReset)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn on;
    SpanProfiler profiler(/*interval_us=*/200);
    profiler.start();
    profiler.start(); // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    profiler.stop();
    profiler.stop(); // idempotent
    const std::uint64_t first = profiler.snapshot().ticks;
    EXPECT_GT(first, 0u);

    profiler.start(); // restartable; samples accumulate
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    profiler.stop();
    EXPECT_GE(profiler.snapshot().ticks, first);

    profiler.reset();
    EXPECT_EQ(profiler.snapshot().ticks, 0u);
    EXPECT_TRUE(profiler.snapshot().empty());
}

TEST(Profiler, EightThreadSpanChurn)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn on;
    SpanProfiler profiler(/*interval_us=*/100);
    profiler.start();

    static constexpr const char *names[] = {
        "churn.a", "churn.b", "churn.c", "churn.d",
        "churn.e", "churn.f", "churn.g", "churn.h"};
    std::vector<std::thread> pool;
    for (int t = 0; t < 8; ++t) {
        pool.emplace_back([t] {
            for (int i = 0; i < 2000; ++i) {
                UVOLT_TRACE_SCOPE(names[t]);
                UVOLT_TRACE_SCOPE(names[(t + 1) % 8]);
                if (i % 64 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    profiler.stop();

    const Profile profile = profiler.snapshot();
    EXPECT_GT(profile.ticks, 0u);
    // Every sampled frame must be one of the churn names (static
    // pointers stayed valid; no torn stacks leaked garbage).
    for (const auto &[key, count] : profile.folded) {
        EXPECT_NE(key.find("churn."), std::string::npos) << key;
        EXPECT_GT(count, 0u);
    }
}

/** The tentpole guarantee: sampling never perturbs results. */
TEST(Profiler, SweepIdenticalWithProfilerOnAndOff)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn on;

    const auto run_once = [] {
        return harness::Campaign::onPlatform("ZC702")
            .sweep(5)
            .run()
            .orFatal();
    };
    SpanProfiler profiler(/*interval_us=*/100);
    profiler.start();
    const harness::FleetResult sampled = run_once();
    profiler.stop();
    const harness::FleetResult quiet = run_once();

    ASSERT_EQ(sampled.jobs.size(), quiet.jobs.size());
    for (std::size_t j = 0; j < sampled.jobs.size(); ++j) {
        const auto &a = sampled.jobs[j].sweep;
        const auto &b = quiet.jobs[j].sweep;
        ASSERT_EQ(a.points.size(), b.points.size());
        for (std::size_t p = 0; p < a.points.size(); ++p) {
            EXPECT_EQ(a.points[p].vccBramMv, b.points[p].vccBramMv);
            EXPECT_EQ(a.points[p].runCounts, b.points[p].runCounts);
            EXPECT_EQ(a.points[p].perBramFaults,
                      b.points[p].perBramFaults);
        }
    }
}

TEST(Profiler, CompiledOutStubIsInert)
{
    if (Telemetry::compiledIn())
        GTEST_SKIP() << "stub only exists with telemetry compiled out";
    SpanProfiler &profiler = SpanProfiler::global();
    profiler.start();
    EXPECT_FALSE(profiler.running());
    EXPECT_TRUE(profiler.snapshot().empty());
    profiler.stop();
}

TEST(Profiler, GlobalIsSingleInstance)
{
    EXPECT_EQ(&SpanProfiler::global(), &SpanProfiler::global());
}

} // namespace
} // namespace uvolt::profiler

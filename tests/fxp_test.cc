/**
 * @file
 * Unit tests for the sign-magnitude fixed-point module, including the
 * properties the undervolting study depends on: "1"->"0" flips always
 * shrink magnitudes, and small weights have mostly-"0" bit patterns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fxp/fixed_point.hh"
#include "util/rng.hh"

namespace uvolt::fxp
{
namespace
{

TEST(QFormat, DefaultIsPureFraction)
{
    QFormat fmt;
    EXPECT_EQ(fmt.digitBits(), 0);
    EXPECT_EQ(fmt.fracBits(), 15);
    EXPECT_NEAR(fmt.maxMagnitude(), 1.0 - std::ldexp(1.0, -15), 1e-12);
}

TEST(QFormat, Describe)
{
    EXPECT_EQ(QFormat(0).describe(), "s1.d0.f15");
    EXPECT_EQ(QFormat(4).describe(), "s1.d4.f11");
}

TEST(QFormat, RoundTripSmallValues)
{
    QFormat fmt(0);
    for (double value : {0.0, 0.5, -0.5, 0.25, -0.999, 0.123456}) {
        const Word word = fmt.quantize(value);
        EXPECT_NEAR(fmt.dequantize(word), value, fmt.resolution() * 0.51)
            << "value " << value;
    }
}

TEST(QFormat, RoundTripWithDigitBits)
{
    QFormat fmt(4);
    for (double value : {15.9, -12.25, 3.0, -0.875}) {
        const Word word = fmt.quantize(value);
        EXPECT_NEAR(fmt.dequantize(word), value, fmt.resolution() * 0.51)
            << "value " << value;
    }
}

TEST(QFormat, SaturatesInsteadOfWrapping)
{
    QFormat fmt(0);
    const Word word = fmt.quantize(3.5);
    EXPECT_NEAR(fmt.dequantize(word), fmt.maxMagnitude(), 1e-9);
    const Word negative = fmt.quantize(-3.5);
    EXPECT_NEAR(fmt.dequantize(negative), -fmt.maxMagnitude(), 1e-9);
}

TEST(QFormat, SignBitIsMsb)
{
    QFormat fmt(0);
    const Word positive = fmt.quantize(0.5);
    const Word negative = fmt.quantize(-0.5);
    EXPECT_FALSE(getBit(positive, signBit));
    EXPECT_TRUE(getBit(negative, signBit));
    EXPECT_EQ(withBit(negative, signBit, false), positive);
}

TEST(QFormat, ZeroHasNoSignBit)
{
    QFormat fmt(0);
    EXPECT_EQ(fmt.quantize(0.0), 0);
    EXPECT_EQ(fmt.quantize(-0.0), 0);
}

TEST(QFormat, OneToZeroFlipsShrinkMagnitude)
{
    // The key resilience property of sign-magnitude storage under
    // undervolting: clearing any magnitude bit moves the value toward 0,
    // never away from it.
    QFormat fmt(2);
    Rng rng(42);
    for (int trial = 0; trial < 500; ++trial) {
        const double value = rng.uniform(-3.9, 3.9);
        const Word word = fmt.quantize(value);
        for (int bit = 0; bit < signBit; ++bit) {
            if (!getBit(word, bit))
                continue;
            const Word flipped = withBit(word, bit, false);
            EXPECT_LE(std::abs(fmt.dequantize(flipped)),
                      std::abs(fmt.dequantize(word)));
        }
    }
}

TEST(MinDigitBits, Boundaries)
{
    EXPECT_EQ(minDigitBits(0.0), 0);
    EXPECT_EQ(minDigitBits(0.999), 0);
    EXPECT_EQ(minDigitBits(1.0), 1);
    EXPECT_EQ(minDigitBits(-1.5), 1);
    EXPECT_EQ(minDigitBits(2.0), 2);
    EXPECT_EQ(minDigitBits(3.99), 2);
    EXPECT_EQ(minDigitBits(8.0), 4);  // the paper's Layer4 case
    EXPECT_EQ(minDigitBits(15.9), 4);
    EXPECT_EQ(minDigitBits(16.0), 5);
}

TEST(Popcount, WordAndSpan)
{
    EXPECT_EQ(popcount(Word{0}), 0);
    EXPECT_EQ(popcount(Word{0xFFFF}), 16);
    EXPECT_EQ(popcount(Word{0xAAAA}), 8);

    std::vector<Word> words{0xFFFF, 0x0000, 0x0001};
    EXPECT_EQ(popcount(std::span<const Word>(words)), 17u);
}

TEST(ZeroBitFraction, SmallWeightsAreSparse)
{
    // Quantized small weights (the bulk of a trained net) must be
    // bit-sparse; this is what makes the NN inherently fault-tolerant.
    QFormat fmt(0);
    Rng rng(7);
    std::vector<Word> words;
    for (int i = 0; i < 4000; ++i)
        words.push_back(fmt.quantize(rng.gaussian(0.0, 0.05)));
    EXPECT_GT(zeroBitFraction(words), 0.60);
}

TEST(ZeroBitFraction, EdgeCases)
{
    std::vector<Word> empty;
    EXPECT_EQ(zeroBitFraction(empty), 0.0);
    std::vector<Word> ones(4, 0xFFFF);
    EXPECT_EQ(zeroBitFraction(ones), 0.0);
    std::vector<Word> zeros(4, 0);
    EXPECT_EQ(zeroBitFraction(zeros), 1.0);
}

} // namespace
} // namespace uvolt::fxp

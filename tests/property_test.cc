/**
 * @file
 * Parameterized property suites (TEST_P) covering the invariants the
 * library guarantees across its whole parameter space: every platform,
 * every fixed-point format, a range of data-pattern densities, and a
 * range of placement seeds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include <atomic>

#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "fpga/device.hh"
#include "fpga/fault_domain.hh"
#include "fpga/platform.hh"
#include "fxp/fixed_point.hh"
#include "harness/experiment.hh"
#include "mem/catalog.hh"
#include "mem/memory_device.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "power/power_model.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt
{
namespace
{

// ---------------------------------------------------------------------
// Per-platform physics invariants
// ---------------------------------------------------------------------

class PlatformProperties : public ::testing::TestWithParam<const char *>
{
  protected:
    const fpga::PlatformSpec &
    spec() const
    {
        return fpga::findPlatform(GetParam());
    }
};

TEST_P(PlatformProperties, VoltageRegionsAreOrdered)
{
    const auto &calib = spec().calib;
    EXPECT_LT(calib.bramVcrashMv, calib.bramVminMv);
    EXPECT_LT(calib.bramVminMv, spec().vnomMv);
    EXPECT_LT(calib.intVcrashMv, calib.intVminMv);
    EXPECT_LT(calib.intVminMv, spec().vnomMv);
    // Guardbands in the plausible 30-45% window the paper reports.
    const double guardband = 1.0 -
        static_cast<double>(calib.bramVminMv) / spec().vnomMv;
    EXPECT_GT(guardband, 0.30);
    EXPECT_LT(guardband, 0.45);
}

TEST_P(PlatformProperties, FaultMapIsReproducible)
{
    pmbus::Board a(spec()), b(spec());
    a.device().fillAll(0xFFFF);
    b.device().fillAll(0xFFFF);
    a.setVccBramMv(spec().calib.bramVcrashMv);
    b.setVccBramMv(spec().calib.bramVcrashMv);
    a.startReferenceRun();
    b.startReferenceRun();
    for (std::uint32_t bram = 0; bram < spec().bramCount;
         bram += spec().bramCount / 23 + 1) {
        EXPECT_EQ(a.readBramToHost(bram), b.readBramToHost(bram));
    }
}

TEST_P(PlatformProperties, ExpectedFaultsMonotoneInVoltage)
{
    const fpga::Floorplan plan =
        fpga::Floorplan::columnGrid(spec().bramCount, spec().columnHeight);
    const vmodel::ChipFaultModel model(spec(), plan);
    double previous = -1.0;
    for (int mv = spec().calib.bramVcrashMv;
         mv <= spec().calib.bramVminMv; mv += 10) {
        const double expected = model.expectedFaults(mv / 1000.0);
        if (previous >= 0.0) {
            EXPECT_LE(expected, previous);
        }
        previous = expected;
    }
    EXPECT_EQ(model.expectedFaults(spec().calib.bramVminMv / 1000.0), 0.0);
}

TEST_P(PlatformProperties, VcrashRateHitsCalibration)
{
    pmbus::Board board(spec());
    harness::SweepOptions options;
    options.runsPerLevel = 15;
    options.collectPerBram = false;
    options.fromMv = spec().calib.bramVcrashMv;
    const auto sweep = harness::runCriticalSweep(board, options);
    EXPECT_NEAR(sweep.atVcrash().faultsPerMbit,
                spec().calib.faultsPerMbitAtVcrash,
                spec().calib.faultsPerMbitAtVcrash * 0.12);
}

TEST_P(PlatformProperties, PowerModelBounds)
{
    const power::RailPowerModel rail(spec());
    for (int mv = spec().vnomMv; mv >= spec().calib.bramVcrashMv;
         mv -= 10) {
        const double rel = rail.relativePower(mv / 1000.0);
        EXPECT_GT(rel, 0.0);
        EXPECT_LE(rel, 1.0 + 1e-12);
    }
}

TEST_P(PlatformProperties, TemperatureNeverIncreasesFaults)
{
    const fpga::Floorplan plan =
        fpga::Floorplan::columnGrid(spec().bramCount, spec().columnHeight);
    const vmodel::ChipFaultModel model(spec(), plan);
    fpga::Device device(spec());
    device.fillAll(0xFFFF);
    const double v_crash = spec().calib.bramVcrashMv / 1000.0;

    double previous = -1.0;
    for (double temp : {50.0, 60.0, 70.0, 80.0}) {
        double faults = 0.0;
        for (std::uint32_t b = 0; b < spec().bramCount; ++b) {
            faults += model.countBramFaults(
                device.bram(b), b, model.effectiveVoltage(v_crash, temp));
        }
        if (previous >= 0.0) {
            EXPECT_LE(faults, previous) << "at " << temp;
        }
        previous = faults;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformProperties,
                         ::testing::Values("VC707", "ZC702", "KC705-A",
                                           "KC705-B", "KCU105",
                                           "ZCU102"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ---------------------------------------------------------------------
// Fixed-point formats
// ---------------------------------------------------------------------

class QFormatProperties : public ::testing::TestWithParam<int>
{
};

TEST_P(QFormatProperties, QuantizeWithinHalfLsb)
{
    const fxp::QFormat fmt(GetParam());
    Rng rng(GetParam() * 101 + 7);
    for (int i = 0; i < 400; ++i) {
        const double value =
            rng.uniform(-fmt.maxMagnitude(), fmt.maxMagnitude());
        const double decoded = fmt.dequantize(fmt.quantize(value));
        EXPECT_NEAR(decoded, value, fmt.resolution() * 0.51);
    }
}

TEST_P(QFormatProperties, MagnitudeBitsClearedShrink)
{
    const fxp::QFormat fmt(GetParam());
    Rng rng(GetParam() * 77 + 1);
    for (int i = 0; i < 200; ++i) {
        const fxp::Word word = fmt.quantize(
            rng.uniform(-fmt.maxMagnitude(), fmt.maxMagnitude()));
        for (int bit = 0; bit < fxp::signBit; ++bit) {
            if (!fxp::getBit(word, bit))
                continue;
            EXPECT_LE(std::abs(fmt.dequantize(
                          fxp::withBit(word, bit, false))),
                      std::abs(fmt.dequantize(word)));
        }
    }
}

TEST_P(QFormatProperties, SaturationNeverWraps)
{
    const fxp::QFormat fmt(GetParam());
    const double beyond = fmt.maxMagnitude() * 4.0 + 1.0;
    EXPECT_NEAR(fmt.dequantize(fmt.quantize(beyond)), fmt.maxMagnitude(),
                1e-9);
    EXPECT_NEAR(fmt.dequantize(fmt.quantize(-beyond)),
                -fmt.maxMagnitude(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(DigitWidths, QFormatProperties,
                         ::testing::Values(0, 1, 2, 4, 8, 15));

// ---------------------------------------------------------------------
// Data-pattern density sweep: fault rate tracks the "1" density
// ---------------------------------------------------------------------

class PatternDensityProperties : public ::testing::TestWithParam<double>
{
};

TEST_P(PatternDensityProperties, FaultsProportionalToOnesDensity)
{
    const double density = GetParam();
    static pmbus::Board board(fpga::findPlatform("KC705-A"));
    board.softReset();

    harness::SweepOptions options;
    options.runsPerLevel = 9;
    options.collectPerBram = false;
    options.fromMv = board.spec().calib.bramVcrashMv;

    options.pattern = harness::PatternSpec::allOnes();
    const double ones =
        harness::runCriticalSweep(board, options).atVcrash().medianFaults;

    options.pattern = harness::PatternSpec::random(density, 17);
    const double observed =
        harness::runCriticalSweep(board, options).atVcrash().medianFaults;

    EXPECT_NEAR(observed / ones, density, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Densities, PatternDensityProperties,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

// ---------------------------------------------------------------------
// Packed fault domains: the popcount kernel is bit-for-bit the scalar
// reference walker, across dies, voltages, patterns, and worker counts
// ---------------------------------------------------------------------

class PackedFaultDomainProperties
    : public ::testing::TestWithParam<std::size_t> // ThreadPool workers
{
};

TEST_P(PackedFaultDomainProperties, PackedEqualsScalarReference)
{
    // gtest assertions are not thread-safe, so worker jobs only count
    // mismatches; the main thread asserts once the pool drains.
    ThreadPool pool(GetParam());
    std::atomic<std::uint64_t> mismatches{0};

    for (const char *name : {"VC707", "ZC702", "KC705-A", "KC705-B"}) {
        pool.submit([name, &mismatches] {
            const fpga::PlatformSpec &spec = fpga::findPlatform(name);
            const vmodel::ChipFaultModel model(
                spec, fpga::Floorplan::columnGrid(spec.bramCount,
                                                  spec.columnHeight));
            fpga::Bram bram;
            Rng rng(combineSeeds(hashSeed(name), 0xFD));

            const double v_lo = spec.calib.bramVcrashMv / 1000.0 - 0.01;
            const double v_hi = spec.calib.bramVminMv / 1000.0 + 0.01;
            const std::uint32_t stride = spec.bramCount / 13 + 1;

            for (int trial = 0; trial < 3; ++trial) {
                // Random pattern of random "1" density.
                const double density = rng.uniform();
                for (int row = 0; row < fpga::bramRows; ++row) {
                    std::uint16_t value = 0;
                    for (int col = 0; col < fpga::bramCols; ++col) {
                        if (rng.uniform() < density)
                            value |= static_cast<std::uint16_t>(1u << col);
                    }
                    bram.writeRow(row, value);
                }
                for (std::uint32_t b = 0; b < spec.bramCount;
                     b += stride) {
                    const double v = rng.uniform(v_lo, v_hi);
                    const int packed = model.countFaults(
                        bram.words(), b, v);
                    const int reference =
                        model.countBramFaultsReference(bram, b, v);
                    if (packed != reference)
                        ++mismatches;
                    // The materialized readbacks agree bit for bit too.
                    const auto rows = model.readBram(bram, b, v);
                    const auto words = model.readBramPacked(bram, b, v);
                    if (fpga::unpackRows(words) != rows)
                        ++mismatches;
                    if (fpga::packRows(rows) != words)
                        ++mismatches;
                }
            }
        });
    }
    pool.wait();
    EXPECT_EQ(mismatches.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, PackedFaultDomainProperties,
                         ::testing::Values(0u, 1u, 8u));

// ---------------------------------------------------------------------
// The same invariant lifted to the MemoryDevice abstraction: for EVERY
// backend (BRAM adapter, HBM, MoRS SRAM), the packed ladder path is
// bit-for-bit the backend's scalar reference walker, under random
// patterns, random voltages around the envelope, and any worker count
// ---------------------------------------------------------------------

class MemBackendProperties
    : public ::testing::TestWithParam<std::size_t> // ThreadPool workers
{
};

TEST_P(MemBackendProperties, PackedEqualsScalarReferenceOnEveryBackend)
{
    // gtest assertions are not thread-safe, so worker jobs only count
    // mismatches; the main thread asserts once the pool drains.
    ThreadPool pool(GetParam());
    std::atomic<std::uint64_t> mismatches{0};

    for (const char *name : {"VC707", "HBM2-A", "MORS-SRAM-A"}) {
        pool.submit([name, &mismatches] {
            const auto device = mem::makeDevice(name);
            Rng rng(combineSeeds(hashSeed(name), 0x3E3));
            const mem::DeviceTraits &traits = device->traits();

            const double v_lo = traits.vcrashMv / 1000.0 - 0.01;
            const double v_hi = traits.vminMv / 1000.0 + 0.01;
            const std::uint32_t stride = traits.domainCount / 13 + 1;
            std::vector<std::uint64_t> plane(traits.wordsPerDomain);

            for (int trial = 0; trial < 3; ++trial) {
                // Random pattern of random "1" density, programmed
                // through the packed-plane interface and read back.
                const double density = rng.uniform();
                for (std::uint32_t d = 0; d < traits.domainCount;
                     d += stride) {
                    for (auto &word : plane) {
                        word = 0;
                        for (int bit = 0; bit < fpga::bramWordBits;
                             ++bit) {
                            if (rng.chance(density))
                                word |= std::uint64_t{1} << bit;
                        }
                    }
                    device->assignDomainWords(d, plane);
                    if (std::vector<std::uint64_t>(
                            device->domainWords(d).begin(),
                            device->domainWords(d).end()) != plane)
                        ++mismatches; // programming round-trip

                    const double v = rng.uniform(v_lo, v_hi);
                    const int packed = device->countDomainFaults(d, v);
                    const int reference =
                        device->countDomainFaultsReference(d, v);
                    if (packed != reference)
                        ++mismatches;
                    // The materialized readback agrees bit for bit:
                    // its diff against the written plane IS the count.
                    const auto observed = device->readDomainPacked(d, v);
                    if (fpga::diffPopcount(device->domainWords(d),
                                           observed) !=
                        static_cast<std::uint64_t>(packed))
                        ++mismatches;
                    // Row-lane accessors survive the pack round-trip.
                    if (fpga::packRows(fpga::unpackRows(observed)) !=
                        observed)
                        ++mismatches;
                }
            }
        });
    }
    pool.wait();
    EXPECT_EQ(mismatches.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MemBackendProperties,
                         ::testing::Values(0u, 1u, 8u));

TEST(PackedFaultDomainProperties, PopcountMatchesNaiveBitCount)
{
    Rng rng(0xB17C0DE);
    std::vector<std::uint64_t> a(fpga::bramWords), b(fpga::bramWords);
    for (int trial = 0; trial < 20; ++trial) {
        for (int w = 0; w < fpga::bramWords; ++w) {
            a[static_cast<std::size_t>(w)] = rng();
            b[static_cast<std::size_t>(w)] = rng();
        }
        std::uint64_t naive_ones = 0, naive_diff = 0;
        for (int w = 0; w < fpga::bramWords; ++w) {
            for (int bit = 0; bit < fpga::bramWordBits; ++bit) {
                const std::uint64_t mask = std::uint64_t{1} << bit;
                naive_ones +=
                    (a[static_cast<std::size_t>(w)] & mask) != 0;
                naive_diff += ((a[static_cast<std::size_t>(w)] ^
                                b[static_cast<std::size_t>(w)]) &
                               mask) != 0;
            }
        }
        EXPECT_EQ(fpga::popcountWords(a), naive_ones);
        EXPECT_EQ(fpga::diffPopcount(a, b), naive_diff);

        // The set-bit visitor walks exactly the naive count, ascending.
        std::uint64_t visited = 0;
        std::uint32_t last_offset = 0;
        fpga::forEachSetBit(a, [&](std::uint32_t offset) {
            EXPECT_TRUE(visited == 0 || offset > last_offset);
            last_offset = offset;
            ++visited;
        });
        EXPECT_EQ(visited, naive_ones);
    }
}

TEST(PackedFaultDomainProperties, PackUnpackRoundTrip)
{
    Rng rng(0x9A57);
    std::vector<std::uint16_t> rows(fpga::bramRows);
    for (int trial = 0; trial < 10; ++trial) {
        for (auto &row : rows)
            row = static_cast<std::uint16_t>(rng());
        const auto words = fpga::packRows(rows);
        ASSERT_EQ(words.size(), static_cast<std::size_t>(fpga::bramWords));
        EXPECT_EQ(fpga::unpackRows(words), rows);
        for (int row = 0; row < fpga::bramRows; row += 131) {
            EXPECT_EQ(fpga::rowOfWords(words, row),
                      rows[static_cast<std::size_t>(row)]);
        }
    }
}

// ---------------------------------------------------------------------
// Placement seeds: injectivity and coverage under arbitrary seeds
// ---------------------------------------------------------------------

class PlacementSeedProperties
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static const accel::WeightImage &
    image()
    {
        static const accel::WeightImage instance = [] {
            nn::Network net({54, 64, 32, 7});
            net.initWeights(3);
            return accel::WeightImage(nn::quantize(net));
        }();
        return instance;
    }
};

TEST_P(PlacementSeedProperties, RandomPlacementIsValid)
{
    const accel::Placement placement =
        accel::randomPlacement(image(), 280, GetParam());
    EXPECT_TRUE(placement.fits(280));
    std::vector<bool> used(280, false);
    for (std::uint32_t i = 0; i < placement.logicalCount(); ++i) {
        const std::uint32_t physical = placement.physicalOf(i);
        EXPECT_FALSE(used[physical]);
        used[physical] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementSeedProperties,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u,
                                           0xDEADBEEFu));

} // namespace
} // namespace uvolt

/**
 * @file
 * Unit tests for the fpga module: BRAM blocks, floorplans, voltage
 * rails, the Table I platform catalog, and the derived calibration
 * quantities (guardband averages, fault-growth slopes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fpga/bram.hh"
#include "fpga/device.hh"
#include "fpga/fault_domain.hh"
#include "fpga/floorplan.hh"
#include "fpga/platform.hh"
#include "fpga/voltage_rail.hh"

namespace uvolt::fpga
{
namespace
{

TEST(BramTest, Geometry)
{
    EXPECT_EQ(bramRows, 1024);
    EXPECT_EQ(bramCols, 16);
    EXPECT_EQ(bramBits, 16 * 1024);
}

TEST(BramTest, RowReadWrite)
{
    Bram bram;
    EXPECT_EQ(bram.readRow(0), 0);
    bram.writeRow(0, 0xBEEF);
    bram.writeRow(1023, 0x1234);
    EXPECT_EQ(bram.readRow(0), 0xBEEF);
    EXPECT_EQ(bram.readRow(1023), 0x1234);
}

TEST(BramTest, BitAccess)
{
    Bram bram;
    bram.assignBit(5, 3, true);
    EXPECT_TRUE(bram.testBit(5, 3));
    EXPECT_FALSE(bram.testBit(5, 2));
    EXPECT_EQ(bram.readRow(5), 1u << 3);
    bram.assignBit(5, 3, false);
    EXPECT_EQ(bram.readRow(5), 0);
}

TEST(BramTest, BitAccessRoundTripsThroughWords)
{
    // The per-bitcell shims are gone (the tree builds with
    // -Werror=deprecated-declarations); the BitAddress-based accessors
    // are the only single-bit API and must agree with the packed plane.
    Bram bram;
    bram.assignBit(7, 11, true);
    EXPECT_TRUE(bram.testBit(7, 11));
    const BitAddress addr{0, 7, 11};
    EXPECT_TRUE(bram.words()[addr.wordIndex()] & addr.wordMask());
    bram.assignBit(7, 11, false);
    EXPECT_FALSE(bram.testBit(7, 11));
    EXPECT_FALSE(bram.words()[addr.wordIndex()] & addr.wordMask());
}

TEST(BramTest, FillAndCountOnes)
{
    Bram bram;
    bram.fill(0xFFFF);
    EXPECT_EQ(bram.countOnes(), bramBits);
    bram.fill(0xAAAA);
    EXPECT_EQ(bram.countOnes(), bramBits / 2);
    bram.fill(0x0000);
    EXPECT_EQ(bram.countOnes(), 0);
}

TEST(BramTest, PackedWordsMatchRowLanes)
{
    Bram bram;
    bram.writeRow(0, 0x1111);
    bram.writeRow(1, 0x2222);
    bram.writeRow(2, 0x3333);
    bram.writeRow(3, 0x4444);
    const auto words = bram.words();
    ASSERT_EQ(words.size(), static_cast<std::size_t>(bramWords));
    // Four 16-bit rows pack little-lane-first into one 64-bit word.
    EXPECT_EQ(words[0], 0x4444333322221111ull);
    for (int row = 0; row < 4; ++row)
        EXPECT_EQ(rowOfWords(words, row), bram.readRow(row));
}

TEST(BramTest, RowsRoundTripThroughPackedPlane)
{
    Bram bram;
    for (int row = 0; row < bramRows; ++row)
        bram.writeRow(row, static_cast<std::uint16_t>(row * 2654435761u));
    const std::vector<std::uint16_t> rows = bram.toRows();
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(bramRows));
    for (int row = 0; row < bramRows; row += 97)
        EXPECT_EQ(rows[static_cast<std::size_t>(row)], bram.readRow(row));

    Bram copy;
    copy.assignRows(rows);
    EXPECT_TRUE(std::equal(copy.words().begin(), copy.words().end(),
                           bram.words().begin()));

    Bram packed;
    packed.assignWords(bram.words());
    EXPECT_EQ(packed.toRows(), rows);
    EXPECT_EQ(packed.countOnes(), bram.countOnes());
}

TEST(BramTest, ParityPlaneNeverReachesFaultDomain)
{
    Bram bram;
    bram.fill(0xAAAA);
    const int data_ones = bram.countOnes();
    const std::uint64_t domain_ones = popcountWords(bram.words());
    EXPECT_EQ(bram.parityOnes(), 0); // lazily allocated, starts empty

    bram.setParityBit(0, 0, true);
    bram.setParityBit(511, 1, true);
    bram.setParityBit(1023, 0, true);
    EXPECT_TRUE(bram.parityBit(0, 0));
    EXPECT_FALSE(bram.parityBit(0, 1));
    EXPECT_TRUE(bram.parityBit(1023, 0));
    EXPECT_EQ(bram.parityOnes(), 3);

    // Parity lives on its own plane: the data fault domain is unchanged.
    EXPECT_EQ(bram.countOnes(), data_ones);
    EXPECT_EQ(popcountWords(bram.words()), domain_ones);
    EXPECT_EQ(FaultDomain::of(bram, 0).ones(), domain_ones);
}

TEST(BramTest, EpochBumpsOnEveryMutation)
{
    Bram bram;
    std::uint64_t last = bram.epoch();
    const auto bumped = [&] {
        const std::uint64_t now = bram.epoch();
        const bool changed = now != last;
        last = now;
        return changed;
    };

    bram.writeRow(0, 0xBEEF);
    EXPECT_TRUE(bumped());
    bram.fill(0xFFFF);
    EXPECT_TRUE(bumped());
    bram.assignBit(1, 1, true);
    EXPECT_TRUE(bumped());
    bram.setParityBit(2, 0, true);
    EXPECT_TRUE(bumped());
    const std::vector<std::uint64_t> image(
        static_cast<std::size_t>(bramWords), 0);
    bram.assignWords(image);
    EXPECT_TRUE(bumped());

    // Reads leave the epoch alone.
    (void)bram.readRow(0);
    (void)bram.testBit(1, 1);
    (void)bram.countOnes();
    EXPECT_FALSE(bumped());
}

TEST(BitAddressTest, Offsets)
{
    BitAddress addr{7, 2, 3};
    EXPECT_EQ(addr.bitOffset(), 2u * 16u + 3u);
    EXPECT_EQ(addr.wordIndex(), (2u * 16u + 3u) / 64u);
    EXPECT_EQ(addr.wordBit(), (2u * 16u + 3u) % 64u);
    EXPECT_EQ(addr.wordMask(), std::uint64_t{1} << addr.wordBit());
}

TEST(BitAddressTest, RoundTripPackedCoordinates)
{
    for (std::uint32_t offset = 0;
         offset < static_cast<std::uint32_t>(bramBits); offset += 41) {
        const BitAddress addr = BitAddress::fromBitOffset(9, offset);
        EXPECT_EQ(addr.bram, 9u);
        EXPECT_EQ(addr.bitOffset(), offset);
        EXPECT_LT(addr.row, bramRows);
        EXPECT_LT(addr.col, bramCols);

        const BitAddress back = BitAddress::fromWordCoords(
            addr.bram, addr.wordIndex(), addr.wordBit());
        EXPECT_EQ(back, addr);
    }
    // The extremes in particular.
    EXPECT_EQ(BitAddress::fromBitOffset(0, 0), (BitAddress{0, 0, 0}));
    EXPECT_EQ(
        BitAddress::fromBitOffset(
            3, static_cast<std::uint32_t>(bramBits) - 1),
        (BitAddress{3, bramRows - 1, bramCols - 1}));
}

TEST(FloorplanTest, ColumnGridExactFit)
{
    // 280 BRAMs in columns of 70: exactly 4 full columns (ZC702).
    const Floorplan plan = Floorplan::columnGrid(280, 70);
    EXPECT_EQ(plan.width(), 4);
    EXPECT_EQ(plan.height(), 70);
    EXPECT_EQ(plan.bramCount(), 280u);
    EXPECT_EQ(plan.siteOf(0), (Site{0, 0}));
    EXPECT_EQ(plan.siteOf(69), (Site{0, 69}));
    EXPECT_EQ(plan.siteOf(70), (Site{1, 0}));
    EXPECT_TRUE(plan.occupied({3, 69}));
}

TEST(FloorplanTest, PartialLastColumnLeavesEmptySites)
{
    const Floorplan plan = Floorplan::columnGrid(2060, 120);
    EXPECT_EQ(plan.width(), 18); // ceil(2060 / 120)
    // 18 * 120 = 2160 sites, 100 empty at the top of the last column.
    EXPECT_FALSE(plan.occupied({17, 119}));
    EXPECT_TRUE(plan.occupied({17, 19}));
    EXPECT_FALSE(plan.bramAt({-1, 0}).has_value());
    EXPECT_FALSE(plan.bramAt({18, 0}).has_value());
}

TEST(FloorplanTest, RoundTripMapping)
{
    const Floorplan plan = Floorplan::columnGrid(890, 120);
    for (std::uint32_t b = 0; b < plan.bramCount(); b += 37) {
        const Site site = plan.siteOf(b);
        const auto back = plan.bramAt(site);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, b);
    }
}

TEST(FloorplanTest, Distance)
{
    const Floorplan plan = Floorplan::columnGrid(280, 70);
    EXPECT_DOUBLE_EQ(plan.distance(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(plan.distance(0, 1), 1.0);   // same column, next row
    EXPECT_DOUBLE_EQ(plan.distance(0, 70), 1.0);  // next column, same row
    EXPECT_NEAR(plan.distance(0, 71), std::sqrt(2.0), 1e-12);
}

TEST(VoltageRailTest, SetAndClamp)
{
    VoltageRail rail(RailId::VccBram, 1000);
    EXPECT_EQ(rail.millivolts(), 1000);
    rail.setMillivolts(610);
    EXPECT_EQ(rail.millivolts(), 610);
    EXPECT_DOUBLE_EQ(rail.volts(), 0.61);
    EXPECT_NEAR(rail.underscale(), 0.39, 1e-12);
    rail.setMillivolts(-5);
    EXPECT_EQ(rail.millivolts(), 0);
    rail.setMillivolts(5000);
    EXPECT_EQ(rail.millivolts(), 1200); // nominal + 20%
    rail.reset();
    EXPECT_EQ(rail.millivolts(), 1000);
}

TEST(VoltageRailTest, Names)
{
    EXPECT_STREQ(railName(RailId::VccBram), "VCCBRAM");
    EXPECT_STREQ(railName(RailId::VccInt), "VCCINT");
    EXPECT_STREQ(railName(RailId::VccAux), "VCCAUX");
}

TEST(PlatformTest, CatalogMatchesTableI)
{
    const auto &catalog = platformCatalog();
    ASSERT_EQ(catalog.size(), 4u);

    const PlatformSpec &vc707 = findPlatform("VC707");
    EXPECT_EQ(vc707.family, "Virtex-7");
    EXPECT_EQ(vc707.chipModel, "XC7VX485T-ffg1761-2");
    EXPECT_EQ(vc707.serialNumber, "1308-6520");
    EXPECT_EQ(vc707.bramCount, 2060u);
    EXPECT_EQ(vc707.processNm, 28);
    EXPECT_EQ(vc707.vnomMv, 1000);

    EXPECT_EQ(findPlatform("ZC702").bramCount, 280u);
    EXPECT_EQ(findPlatform("KC705-A").bramCount, 890u);
    EXPECT_EQ(findPlatform("KC705-B").bramCount, 890u);

    // The two KC705 samples are identical parts with different serials.
    EXPECT_EQ(findPlatform("KC705-A").chipModel,
              findPlatform("KC705-B").chipModel);
    EXPECT_NE(findPlatform("KC705-A").serialNumber,
              findPlatform("KC705-B").serialNumber);
}

TEST(PlatformTest, GuardbandAveragesMatchPaper)
{
    // Paper: on average 39% guardband for VCCBRAM and 34% for VCCINT.
    double bram_sum = 0.0, int_sum = 0.0;
    for (const auto &spec : platformCatalog()) {
        bram_sum += 1.0 - spec.calib.bramVminMv /
            static_cast<double>(spec.vnomMv);
        int_sum += 1.0 - spec.calib.intVminMv /
            static_cast<double>(spec.vnomMv);
    }
    EXPECT_NEAR(bram_sum / 4.0, 0.39, 0.005);
    EXPECT_NEAR(int_sum / 4.0, 0.34, 0.005);
}

TEST(PlatformTest, Vc707AnchorsMatchPaper)
{
    const PlatformSpec &vc707 = findPlatform("VC707");
    EXPECT_EQ(vc707.calib.bramVminMv, 610);
    EXPECT_EQ(vc707.calib.bramVcrashMv, 540);
    EXPECT_DOUBLE_EQ(vc707.calib.faultsPerMbitAtVcrash, 652.0);
    EXPECT_NEAR(vc707.totalMbit(), 32.1875, 1e-6);
    EXPECT_NEAR(vc707.expectedFaultsAtVcrash(), 652.0 * 32.1875, 1.0);
}

TEST(PlatformTest, Kc705DieToDieRatio)
{
    // Paper: KC705-A shows a 4.1x higher fault rate than KC705-B.
    const double a = findPlatform("KC705-A").calib.faultsPerMbitAtVcrash;
    const double b = findPlatform("KC705-B").calib.faultsPerMbitAtVcrash;
    EXPECT_NEAR(a / b, 4.1, 0.2);
}

TEST(PlatformTest, FaultGrowthSlopePositive)
{
    for (const auto &spec : platformCatalog()) {
        const double k = spec.faultGrowthSlope();
        EXPECT_GT(k, 50.0) << spec.name;
        EXPECT_LT(k, 250.0) << spec.name;
        // The slope reproduces the anchor: N(Vcrash) = expected total.
        const double span =
            (spec.calib.bramVminMv - spec.calib.bramVcrashMv) / 1000.0;
        EXPECT_NEAR(std::exp(k * span), spec.expectedFaultsAtVcrash(),
                    spec.expectedFaultsAtVcrash() * 1e-9);
    }
}

TEST(PlatformTest, ExtensionCatalogProjections)
{
    const auto &extensions = fpga::extensionPlatformCatalog();
    ASSERT_EQ(extensions.size(), 2u);
    for (const auto &spec : extensions) {
        // Newer nodes: lower nominal rails, still-ordered regions.
        EXPECT_LT(spec.vnomMv, 1000) << spec.name;
        EXPECT_LT(spec.processNm, 28) << spec.name;
        EXPECT_LT(spec.calib.bramVcrashMv, spec.calib.bramVminMv);
        EXPECT_LT(spec.calib.bramVminMv, spec.vnomMv);
        EXPECT_GT(spec.faultGrowthSlope(), 0.0);
        // findPlatform resolves extension names too.
        EXPECT_EQ(&fpga::findPlatform(spec.name), &spec);
    }
    // FinFET ITD is much weaker than planar 28 nm.
    EXPECT_LT(fpga::findPlatform("ZCU102").calib.itdMvPerC,
              fpga::findPlatform("VC707").calib.itdMvPerC / 3.0);
}

TEST(DeviceTest, ConstructionAndRails)
{
    Device device(findPlatform("ZC702"));
    EXPECT_EQ(device.bramCount(), 280u);
    EXPECT_EQ(device.totalBits(), 280ull * 16384ull);
    EXPECT_EQ(device.rail(RailId::VccBram).millivolts(), 1000);
    EXPECT_EQ(device.rail(RailId::VccInt).millivolts(), 1000);
    EXPECT_TRUE(device.operational());
}

TEST(DeviceTest, FillAllAndTotalOnes)
{
    Device device(findPlatform("ZC702"));
    device.fillAll(0xFFFF);
    EXPECT_EQ(device.totalOnes(), device.totalBits());
    device.fillAll(0xAAAA);
    EXPECT_EQ(device.totalOnes(), device.totalBits() / 2);
}

TEST(DeviceTest, ContentEpochSharedAcrossPool)
{
    Device device(findPlatform("ZC702"));
    const std::uint64_t before = device.contentEpoch();
    device.bram(0).writeRow(0, 0x1234);
    EXPECT_GT(device.contentEpoch(), before);

    // Any BRAM of the pool bumps the same counter ...
    const std::uint64_t mid = device.contentEpoch();
    device.bram(279).fill(0xFFFF);
    EXPECT_GT(device.contentEpoch(), mid);

    // ... and a detached copy stops doing so.
    Bram copy = device.bram(0);
    const std::uint64_t after = device.contentEpoch();
    copy.writeRow(1, 0x5678);
    EXPECT_EQ(device.contentEpoch(), after);
    EXPECT_GT(copy.epoch(), 0u);
}

TEST(DeviceTest, CrashSemantics)
{
    Device device(findPlatform("VC707"));
    auto &rail = device.rail(RailId::VccBram);
    rail.setMillivolts(540); // exactly Vcrash: still alive
    EXPECT_TRUE(device.operational());
    EXPECT_TRUE(device.donePin());
    rail.setMillivolts(530); // below Vcrash: DONE drops
    EXPECT_FALSE(device.operational());
    EXPECT_FALSE(device.donePin());
    rail.setMillivolts(1000);
    EXPECT_TRUE(device.operational());

    // VCCINT crash is independent.
    device.rail(RailId::VccInt).setMillivolts(580);
    EXPECT_FALSE(device.operational());
}

} // namespace
} // namespace uvolt::fpga

/**
 * @file
 * Tests for the canary-based voltage governor: canary selection,
 * descent to the fault boundary, back-off with hold, the ITD chase
 * (re-probing at higher temperature), and payload safety (the deployed
 * accelerator stays fault-free at the governed setpoint when its
 * placement is ICBP-protected).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/accelerator.hh"
#include "data/synthetic.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "harness/governor.hh"
#include "nn/quantizer.hh"
#include "nn/trainer.hh"
#include "pmbus/board.hh"

namespace uvolt::harness
{
namespace
{

/** Characterize a ZC702 once for the whole suite. */
struct GovernorWorld
{
    pmbus::Board board{fpga::findPlatform("ZC702")};
    std::unique_ptr<Fvm> fvm;

    GovernorWorld()
    {
        SweepOptions options;
        options.runsPerLevel = 5;
        const SweepResult sweep = runCriticalSweep(board, options);
        fvm = std::make_unique<Fvm>(
            fvmFromSweep(sweep, board.device().floorplan()));
    }
};

GovernorWorld &
world()
{
    static GovernorWorld instance;
    return instance;
}

TEST(GovernorTest, PicksMostVulnerableSpares)
{
    auto &w = world();
    w.board.softReset();
    VoltageGovernor governor(w.board, *w.fvm, {});
    ASSERT_EQ(governor.canaries().size(), 8u);
    // Every canary is at least as faulty as the chip median.
    const auto order = w.fvm->bramsByReliability();
    const int median_faults = w.fvm->faultsOf(order[order.size() / 2]);
    for (std::uint32_t canary : governor.canaries())
        EXPECT_GE(w.fvm->faultsOf(canary), median_faults);
    // And the most vulnerable BRAM of the chip is among them.
    EXPECT_NE(std::find(governor.canaries().begin(),
                        governor.canaries().end(), order.back()),
              governor.canaries().end());
}

TEST(GovernorTest, RespectsReservedBrams)
{
    auto &w = world();
    w.board.softReset();
    const auto order = w.fvm->bramsByReliability();
    // Reserve the two most vulnerable BRAMs: the governor must skip
    // them.
    std::vector<std::uint32_t> reserved{order[order.size() - 1],
                                        order[order.size() - 2]};
    VoltageGovernor governor(w.board, *w.fvm, reserved);
    for (std::uint32_t canary : governor.canaries()) {
        EXPECT_NE(canary, reserved[0]);
        EXPECT_NE(canary, reserved[1]);
    }
}

TEST(GovernorTest, SettlesNearVmin)
{
    auto &w = world();
    w.board.softReset();
    VoltageGovernor governor(w.board, *w.fvm, {});
    const auto trace = governor.settle();
    ASSERT_FALSE(trace.empty());

    // The settled point sits in a tight band around the chip's Vmin:
    // no lower than one guard step below it, no higher than two steps
    // above it.
    const int v_min = w.board.spec().calib.bramVminMv;
    EXPECT_GE(governor.setpointMv(), v_min - 10);
    EXPECT_LE(governor.setpointMv(), v_min + 20);

    // The loop descended monotonically until the first back-off.
    bool seen_backoff = false;
    int previous = w.board.spec().vnomMv + 10;
    for (const auto &step : trace) {
        if (step.backedOff) {
            seen_backoff = true;
            break;
        }
        EXPECT_LT(step.commandedMv, previous);
        previous = step.commandedMv;
    }
    EXPECT_TRUE(seen_backoff);
    w.board.softReset();
}

TEST(GovernorTest, ItdChaseGoesLowerWhenHot)
{
    auto &w = world();
    w.board.softReset();
    VoltageGovernor cold_governor(w.board, *w.fvm, {});
    cold_governor.settle();
    const int cold_setpoint = cold_governor.setpointMv();

    w.board.softReset();
    w.board.setAmbientC(80.0);
    VoltageGovernor hot_governor(w.board, *w.fvm, {});
    hot_governor.settle();
    const int hot_setpoint = hot_governor.setpointMv();

    // ITD: at 80 degC the weak cells fail later, so the tracked
    // minimum voltage is at or below the 50 degC one.
    EXPECT_LE(hot_setpoint, cold_setpoint);
    w.board.setAmbientC(50.0);
    w.board.softReset();
}

TEST(GovernorTest, PayloadStaysCleanAtGovernedPoint)
{
    auto &w = world();
    w.board.softReset();

    // Deploy a small model on ICBP-protected BRAMs.
    const data::Dataset train_set = data::makeForestLike(600, 3);
    nn::Network net({data::forestFeatures, 64, data::forestClasses});
    nn::TrainOptions options;
    options.epochs = 3;
    nn::train(net, train_set, options);
    const accel::WeightImage image(nn::quantize(net));
    const accel::Placement placement =
        accel::icbpPlacement(image, *w.fvm);
    accel::Accelerator accel(w.board, image, placement);

    VoltageGovernor governor(w.board, *w.fvm, placement.mapping());
    governor.settle();

    // At the governed setpoint, the protected payload reads back clean.
    w.board.startReferenceRun();
    EXPECT_EQ(accel.weightFaults().total, 0u);
    w.board.softReset();
}

TEST(GovernorTest, BacksOffUnderSustainedNackStorm)
{
    // A dedicated board: the storm must not pollute the shared world's
    // control channel. NACK rate 0.6 on every PMBus transaction — a
    // sustained storm, not a glitch. A verified write is three
    // transactions (page select, setpoint, read-back), so one attempt
    // survives the storm with probability 0.4^3; the attempt budget has
    // to be generous for every write to converge through retries.
    pmbus::Board board(fpga::findPlatform("ZC702"));
    pmbus::NoiseConfig noise;
    noise.seed = 99;
    noise.pmbusNackProb = 0.6;
    board.attachNoise(noise);
    board.setMaxPmbusAttempts(256);

    // First, the raw channel under 100+ consecutive stormed
    // transactions: every verified write converges through retries.
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(board.trySetVccBramMv(i % 2 ? 890 : 900).ok());
    const pmbus::PmbusStats &stats = board.pmbusStats();
    EXPECT_GE(stats.transactions, 100u);
    // The injector really sustained a >= 0.5 NACK rate...
    EXPECT_GE(board.injector()->stats().nacks, stats.transactions / 2);
    // ...and the channel absorbed it with transaction-level retries.
    EXPECT_GE(stats.retries, stats.transactions / 2);
    EXPECT_EQ(stats.exhausted, 0u);

    // Then the control loop on top of that channel: it settles without
    // exhausting, never dives through the floor on uncertain readings,
    // and lands in the usual band around Vmin.
    VoltageGovernor governor(board, *world().fvm, {});
    const auto trace = governor.settle();
    ASSERT_FALSE(trace.empty());
    const int v_min = board.spec().calib.bramVminMv;
    EXPECT_GE(governor.setpointMv(), v_min - 10);
    EXPECT_LE(governor.setpointMv(), v_min + 20);
    bool backed_off = false;
    for (const auto &step : trace)
        backed_off |= step.backedOff;
    EXPECT_TRUE(backed_off);
}

TEST(GovernorTest, NeverCommandsBelowFloor)
{
    auto &w = world();
    w.board.softReset();
    GovernorConfig config;
    config.floorMv = w.board.spec().calib.bramVminMv + 30;
    VoltageGovernor governor(w.board, *w.fvm, {}, config);
    const auto trace = governor.settle();
    for (const auto &step : trace)
        EXPECT_GE(step.commandedMv, config.floorMv);
    // With the floor above Vmin, the canaries never fault.
    for (const auto &step : trace)
        EXPECT_EQ(step.canaryFaults, 0);
    w.board.softReset();
}

} // namespace
} // namespace uvolt::harness

/**
 * @file
 * Tests for the characterization harness against the paper's measured
 * results: region discovery (Fig 1), the Listing-1 sweep (Fig 3),
 * pattern dependence (Fig 4), run-to-run stability (Table II), BRAM
 * clustering (Fig 5), FVM extraction (Figs 6-7), and the heat-chamber
 * study (Fig 8).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fpga/fault_domain.hh"
#include "harness/clusterer.hh"
#include "harness/experiment.hh"
#include "harness/fault_analyzer.hh"
#include "harness/fvm.hh"
#include "harness/temperature.hh"
#include "pmbus/board.hh"

namespace uvolt::harness
{
namespace
{

using pmbus::Board;

TEST(PatternSpecTest, Labels)
{
    EXPECT_EQ(PatternSpec::allOnes().label(), "16'hFFFF");
    EXPECT_EQ(PatternSpec::fixed(0xAAAA).label(), "16'hAAAA");
    EXPECT_EQ(PatternSpec::random(0.5, 1).label(), "random-50%");
}

TEST(PatternSpecTest, FillFixedAndRandom)
{
    Board board(fpga::findPlatform("ZC702"));
    fillPattern(board, PatternSpec::fixed(0xAAAA));
    EXPECT_EQ(board.device().totalOnes(), board.device().totalBits() / 2);

    fillPattern(board, PatternSpec::random(0.5, 7));
    const double density =
        static_cast<double>(board.device().totalOnes()) /
        static_cast<double>(board.device().totalBits());
    EXPECT_NEAR(density, 0.5, 0.005);

    // Random fills are deterministic in the seed.
    const auto row = board.device().bram(3).readRow(17);
    fillPattern(board, PatternSpec::random(0.5, 7));
    EXPECT_EQ(board.device().bram(3).readRow(17), row);
}

TEST(FaultAnalyzerTest, DiffFindsPolarities)
{
    fpga::Bram written;
    written.fill(0x00FF);
    auto observed = std::vector<std::uint16_t>(fpga::bramRows, 0x00FF);
    observed[5] = 0x00FE;  // bit 0: wrote 1, read 0
    observed[9] = 0x01FF;  // bit 8: wrote 0, read 1

    std::vector<FaultObservation> faults;
    FaultSummary summary;
    diffBram(written, observed, 3, faults, summary);

    ASSERT_EQ(faults.size(), 2u);
    EXPECT_EQ(faults[0].bram, 3u);
    EXPECT_EQ(faults[0].row, 5);
    EXPECT_EQ(faults[0].col, 0);
    EXPECT_TRUE(faults[0].oneToZero);
    EXPECT_EQ(faults[1].row, 9);
    EXPECT_EQ(faults[1].col, 8);
    EXPECT_FALSE(faults[1].oneToZero);
    EXPECT_EQ(summary.totalFaults, 2u);
    EXPECT_DOUBLE_EQ(summary.oneToZeroFraction(), 0.5);
}

TEST(FaultAnalyzerTest, PackedDiffMatchesRowsDiff)
{
    fpga::Bram written;
    for (int row = 0; row < fpga::bramRows; ++row)
        written.writeRow(row, static_cast<std::uint16_t>(row * 40503u));

    // Corrupt a scatter of bits in both polarities.
    std::vector<std::uint16_t> observed_rows = written.toRows();
    for (int row = 0; row < fpga::bramRows; row += 67)
        observed_rows[static_cast<std::size_t>(row)] ^=
            static_cast<std::uint16_t>(1u << (row % 16));

    std::vector<FaultObservation> from_rows, from_packed;
    FaultSummary rows_summary, packed_summary;
    diffBram(written, observed_rows, 5, from_rows, rows_summary);
    diffBram(written, fpga::packRows(observed_rows), 5, from_packed,
             packed_summary);

    ASSERT_EQ(from_packed.size(), from_rows.size());
    ASSERT_GT(from_rows.size(), 0u);
    for (std::size_t i = 0; i < from_rows.size(); ++i) {
        EXPECT_EQ(from_packed[i].bram, from_rows[i].bram);
        EXPECT_EQ(from_packed[i].row, from_rows[i].row);
        EXPECT_EQ(from_packed[i].col, from_rows[i].col);
        EXPECT_EQ(from_packed[i].oneToZero, from_rows[i].oneToZero);
    }
    EXPECT_EQ(packed_summary.totalFaults, rows_summary.totalFaults);
    EXPECT_EQ(packed_summary.oneToZero, rows_summary.oneToZero);
    EXPECT_EQ(packed_summary.zeroToOne, rows_summary.zeroToOne);
}

TEST(FaultAnalyzerTest, PerMbitConversion)
{
    // 652 faults over exactly 1 Mbit is 652 per Mbit.
    EXPECT_DOUBLE_EQ(faultsPerMbit(652.0, 1024 * 1024), 652.0);
    // VC707: paper's whole-chip rate.
    const auto &spec = fpga::findPlatform("VC707");
    const auto bits = static_cast<std::uint64_t>(spec.bramCount) * 16384;
    EXPECT_NEAR(faultsPerMbit(652.0 * spec.totalMbit(), bits), 652.0,
                1e-9);
}

TEST(RegionDiscovery, MatchesCalibrationOnAllPlatforms)
{
    // Fig 1a: the discovered SAFE/CRITICAL/CRASH boundaries equal the
    // platform's measured Vmin/Vcrash.
    for (const auto &spec : fpga::platformCatalog()) {
        Board board(spec);
        const RegionResult result =
            discoverRegions(board, fpga::RailId::VccBram);
        EXPECT_EQ(result.vminMv, spec.calib.bramVminMv) << spec.name;
        EXPECT_EQ(result.vcrashMv, spec.calib.bramVcrashMv) << spec.name;
        EXPECT_NEAR(result.guardband(),
                    1.0 - spec.calib.bramVminMv / 1000.0, 1e-12);
        // The board is left reset.
        EXPECT_EQ(board.vccBramMv(), spec.vnomMv);
    }
}

TEST(RegionDiscovery, VccIntRegions)
{
    // Fig 1b counterpart for the internal rail.
    const auto &spec = fpga::findPlatform("VC707");
    Board board(spec);
    const RegionResult result =
        discoverRegions(board, fpga::RailId::VccInt);
    EXPECT_EQ(result.vminMv, spec.calib.intVminMv);
    EXPECT_EQ(result.vcrashMv, spec.calib.intVcrashMv);
}

class SweepFixture : public ::testing::Test
{
  protected:
    static const SweepResult &
    vc707Sweep()
    {
        static Board board(fpga::findPlatform("VC707"));
        static const SweepResult sweep = runCriticalSweep(board);
        return sweep;
    }
};

TEST_F(SweepFixture, CoversCriticalRegionIn10mvSteps)
{
    const auto &sweep = vc707Sweep();
    ASSERT_EQ(sweep.points.size(), 8u); // 610..540 inclusive
    EXPECT_EQ(sweep.points.front().vccBramMv, 610);
    EXPECT_EQ(sweep.points.back().vccBramMv, 540);
    for (std::size_t i = 1; i < sweep.points.size(); ++i) {
        EXPECT_EQ(sweep.points[i - 1].vccBramMv -
                      sweep.points[i].vccBramMv, 10);
    }
}

TEST_F(SweepFixture, VcrashRateMatchesPaper)
{
    // Fig 3a: 652 faults per Mbit at Vcrash on VC707 (median of 100).
    const auto &at_vcrash = vc707Sweep().atVcrash();
    EXPECT_NEAR(at_vcrash.faultsPerMbit, 652.0, 652.0 * 0.05);
}

TEST_F(SweepFixture, FaultRateGrowsExponentially)
{
    const auto &sweep = vc707Sweep();
    // No faults at Vmin, then a roughly constant multiplicative step.
    EXPECT_LT(sweep.points.front().medianFaults, 10.0);
    double previous = 0.0;
    for (const auto &point : sweep.points) {
        EXPECT_GE(point.medianFaults, previous * 1.2);
        previous = point.medianFaults;
    }
    // Growth spanning >3 orders of magnitude over the 70 mV window.
    EXPECT_GT(sweep.atVcrash().medianFaults,
              1000.0 * std::max(1.0, sweep.points.front().medianFaults));
}

TEST_F(SweepFixture, StabilityMatchesTableII)
{
    // Table II for VC707: avg 652, min 630, max 669, stddev 7.3 /Mbit.
    const auto &point = vc707Sweep().atVcrash();
    const double to_mbit = point.faultsPerMbit / point.medianFaults;
    EXPECT_NEAR(point.runStats.mean() * to_mbit, 652.0, 35.0);
    EXPECT_NEAR(point.runStats.stddev() * to_mbit, 7.3, 3.5);
    EXPECT_GT(point.runStats.minimum() * to_mbit, 600.0);
    EXPECT_LT(point.runStats.maximum() * to_mbit, 700.0);
    EXPECT_EQ(point.runStats.count(), 100u);
}

TEST_F(SweepFixture, FlipsAreAlmostAllOneToZero)
{
    EXPECT_GT(vc707Sweep().atVcrash().oneToZeroFraction, 0.99);
}

TEST_F(SweepFixture, PowerDropsMonotonically)
{
    const auto &sweep = vc707Sweep();
    for (std::size_t i = 1; i < sweep.points.size(); ++i)
        EXPECT_LT(sweep.points[i].bramPowerW,
                  sweep.points[i - 1].bramPowerW);
    // >10x below nominal everywhere in the critical region.
    EXPECT_LT(sweep.points.front().bramPowerW, 2.80 / 10.0);
}

TEST_F(SweepFixture, ClusteringMatchesFig5)
{
    const auto &spec = fpga::findPlatform("VC707");
    const fpga::Floorplan plan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);
    const Fvm fvm = fvmFromSweep(vc707Sweep(), plan);

    // Fig 5 statistics: 38.9% never-faulty, max ~2.84%, small mean.
    EXPECT_NEAR(fvm.faultFreeFraction(), 0.389, 0.02);
    EXPECT_LT(fvm.maxRate(), 0.0285);
    EXPECT_GT(fvm.maxRate(), 0.01);
    EXPECT_NEAR(fvm.meanRate(), 0.0006, 0.0003);

    const ClusterReport report = clusterBrams(fvm);
    // A vast majority of BRAMs must be low-vulnerable (paper: 88.6%).
    EXPECT_GT(report.shareOf(VulnClass::Low), 0.75);
    EXPECT_LT(report.shareOf(VulnClass::High), 0.1);
    EXPECT_LT(report.meanRates[0], report.meanRates[1]);
    EXPECT_LT(report.meanRates[1], report.meanRates[2]);
    // The low cluster's BRAMs carry only a few faults each.
    EXPECT_LT(report.meanCounts[0], 25.0);
    // Low-vulnerable pool is sorted most-reliable-first.
    ASSERT_GT(report.lowVulnerableBrams.size(), 2u);
    EXPECT_LE(fvm.faultsOf(report.lowVulnerableBrams[0]),
              fvm.faultsOf(report.lowVulnerableBrams.back()));
    EXPECT_EQ(fvm.faultsOf(report.lowVulnerableBrams[0]), 0);
}

TEST_F(SweepFixture, FvmRenderHasGridShape)
{
    const auto &spec = fpga::findPlatform("VC707");
    const fpga::Floorplan plan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);
    const Fvm fvm = fvmFromSweep(vc707Sweep(), plan);
    const std::string art = fvm.render(plan);
    // height lines of width characters each.
    EXPECT_EQ(art.size(),
              static_cast<std::size_t>(plan.height()) *
                  (static_cast<std::size_t>(plan.width()) + 1));
    // Contains empty sites, clean BRAMs, and faulty BRAMs.
    EXPECT_NE(art.find(' '), std::string::npos);
    EXPECT_NE(art.find('.'), std::string::npos);
    EXPECT_NE(art.find_first_of("123456789#"), std::string::npos);
}

TEST(SweepTest, PatternDependenceMatchesFig4)
{
    Board board(fpga::findPlatform("VC707"));
    SweepOptions options;
    options.runsPerLevel = 21;
    options.collectPerBram = false;
    options.fromMv = 540; // only the deepest point matters here

    options.pattern = PatternSpec::allOnes();
    const double ones =
        runCriticalSweep(board, options).atVcrash().medianFaults;

    options.pattern = PatternSpec::fixed(0xAAAA);
    const double aaaa =
        runCriticalSweep(board, options).atVcrash().medianFaults;

    options.pattern = PatternSpec::fixed(0x5555);
    const double x5555 =
        runCriticalSweep(board, options).atVcrash().medianFaults;

    options.pattern = PatternSpec::random(0.5, 3);
    const double random50 =
        runCriticalSweep(board, options).atVcrash().medianFaults;

    options.pattern = PatternSpec::fixed(0x0000);
    const double zeros =
        runCriticalSweep(board, options).atVcrash().medianFaults;

    // Fig 4: FFFF is ~2x any 50% pattern; permutations of the same
    // density are equivalent; 0000 shows only a handful of faults.
    EXPECT_NEAR(ones / aaaa, 2.0, 0.2);
    EXPECT_NEAR(aaaa / x5555, 1.0, 0.15);
    EXPECT_NEAR(aaaa / random50, 1.0, 0.15);
    EXPECT_LT(zeros, ones * 0.005);
}

TEST(SweepTest, DieToDieDifferenceMatchesFig7)
{
    Board board_a(fpga::findPlatform("KC705-A"));
    Board board_b(fpga::findPlatform("KC705-B"));
    SweepOptions options;
    options.runsPerLevel = 11;
    options.fromMv = 540;
    options.downToMv = 540;
    SweepOptions options_b = options;
    options_b.fromMv = 550;
    options_b.downToMv = 550;

    const SweepResult sweep_a = runCriticalSweep(board_a, options);
    const SweepResult sweep_b = runCriticalSweep(board_b, options_b);

    // Paper: KC705-A shows ~4.1x the fault rate of KC705-B at Vcrash.
    const double rate_a = sweep_a.atVcrash().faultsPerMbit;
    const double rate_b = sweep_b.atVcrash().faultsPerMbit;
    EXPECT_NEAR(rate_a / rate_b, 4.1, 0.6);

    // And the fault *locations* differ: the per-BRAM maps disagree.
    const auto &faults_a = sweep_a.atVcrash().perBramFaults;
    const auto &faults_b = sweep_b.atVcrash().perBramFaults;
    int disagreements = 0;
    for (std::size_t i = 0; i < faults_a.size(); ++i)
        disagreements += (faults_a[i] != faults_b[i]);
    EXPECT_GT(disagreements, static_cast<int>(faults_a.size() / 4));
}

TEST(TemperatureStudyTest, ItdMatchesFig8)
{
    Board board(fpga::findPlatform("VC707"));
    const TemperatureStudy study =
        runTemperatureStudy(board, {50.0, 60.0, 70.0, 80.0}, 15);

    ASSERT_EQ(study.series.size(), 4u);
    // Paper: >3x fault-rate reduction from 50 to 80 degC on VC707.
    EXPECT_NEAR(study.reductionFactor(80.0, 50.0), 3.0, 0.5);
    // Monotone: hotter runs fault less at Vcrash.
    for (std::size_t i = 1; i < study.series.size(); ++i) {
        EXPECT_LT(study.series[i].sweep.atVcrash().medianFaults,
                  study.series[i - 1].sweep.atVcrash().medianFaults);
    }
    // The chamber is restored afterwards.
    EXPECT_DOUBLE_EQ(board.ambientC(), 50.0);
}

TEST(TemperatureStudyTest, CrossPlatformCrossoverMatchesFig8)
{
    // Paper: VC707 is 156% worse than KC705-A at 50 degC but ~11.6%
    // better at 80 degC (stronger ITD on the performance-optimized
    // part).
    Board vc707(fpga::findPlatform("VC707"));
    Board kc705a(fpga::findPlatform("KC705-A"));
    const auto study_v = runTemperatureStudy(vc707, {50.0, 80.0}, 15);
    const auto study_k = runTemperatureStudy(kc705a, {50.0, 80.0}, 15);

    const double v50 = study_v.series[0].sweep.atVcrash().faultsPerMbit;
    const double v80 = study_v.series[1].sweep.atVcrash().faultsPerMbit;
    const double k50 = study_k.series[0].sweep.atVcrash().faultsPerMbit;
    const double k80 = study_k.series[1].sweep.atVcrash().faultsPerMbit;

    EXPECT_NEAR(v50 / k50, 2.56, 0.3); // +156% at 50 degC
    EXPECT_LT(v80, k80);               // crossover by 80 degC
}

} // namespace
} // namespace uvolt::harness

/**
 * @file
 * Tests for the mitigation alternatives: the SECDED codec itself, and
 * the MitigationLab strategies (temporal voting, spatial TMR, SECDED)
 * against the deterministic undervolting fault model. The headline
 * property: temporal redundancy is useless against deterministic
 * faults, while spatial redundancy works — the observation that
 * motivates ICBP.
 */

#include <gtest/gtest.h>

#include "accel/mitigation.hh"
#include "accel/placement.hh"
#include "accel/secded.hh"
#include "accel/weight_image.hh"
#include "data/synthetic.hh"
#include "harness/fvm.hh"
#include "nn/quantizer.hh"
#include "nn/trainer.hh"
#include "pmbus/board.hh"
#include "util/rng.hh"

namespace uvolt::accel
{
namespace
{

// ---------------------------------------------------------------------
// SECDED codec
// ---------------------------------------------------------------------

TEST(Secded, CleanRoundTrip)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const auto data = static_cast<std::uint16_t>(rng());
        const std::uint8_t check = secdedEncode(data);
        const SecdedResult result = secdedDecode(data, check);
        EXPECT_EQ(result.status, SecdedStatus::Clean);
        EXPECT_EQ(result.data, data);
    }
}

TEST(Secded, CorrectsEverySingleDataBitError)
{
    Rng rng(6);
    for (int i = 0; i < 300; ++i) {
        const auto data = static_cast<std::uint16_t>(rng());
        const std::uint8_t check = secdedEncode(data);
        for (int bit = 0; bit < 16; ++bit) {
            const auto corrupted =
                static_cast<std::uint16_t>(data ^ (1u << bit));
            const SecdedResult result = secdedDecode(corrupted, check);
            EXPECT_EQ(result.status, SecdedStatus::Corrected);
            EXPECT_EQ(result.data, data);
        }
    }
}

TEST(Secded, CorrectsEverySingleCheckBitError)
{
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        const auto data = static_cast<std::uint16_t>(rng());
        const std::uint8_t check = secdedEncode(data);
        for (int bit = 0; bit < secdedCheckBits; ++bit) {
            const auto corrupted =
                static_cast<std::uint8_t>(check ^ (1u << bit));
            const SecdedResult result = secdedDecode(data, corrupted);
            EXPECT_EQ(result.status, SecdedStatus::Corrected);
            EXPECT_EQ(result.data, data);
        }
    }
}

TEST(Secded, DetectsDoubleDataErrors)
{
    Rng rng(8);
    int detected = 0, total = 0;
    for (int i = 0; i < 200; ++i) {
        const auto data = static_cast<std::uint16_t>(rng());
        const std::uint8_t check = secdedEncode(data);
        const int a = static_cast<int>(rng.uniformInt(0, 15));
        int b;
        do {
            b = static_cast<int>(rng.uniformInt(0, 15));
        } while (b == a);
        const auto corrupted = static_cast<std::uint16_t>(
            data ^ (1u << a) ^ (1u << b));
        const SecdedResult result = secdedDecode(corrupted, check);
        ++total;
        detected += (result.status == SecdedStatus::DoubleDetected);
        // A double error must never be "corrected" into wrong data
        // silently marked Clean.
        EXPECT_NE(result.status, SecdedStatus::Clean);
    }
    EXPECT_EQ(detected, total);
}

// ---------------------------------------------------------------------
// MitigationLab on a live board
// ---------------------------------------------------------------------

class MitigationFixture : public ::testing::Test
{
  protected:
    struct State
    {
        pmbus::Board board{fpga::findPlatform("ZC702")};
        nn::QuantizedModel model;
        std::unique_ptr<WeightImage> image;
        std::unique_ptr<MitigationLab> lab;

        State()
        {
            const data::Dataset train_set = data::makeForestLike(800, 3);
            nn::Network net(
                {data::forestFeatures, 128, 64, data::forestClasses});
            nn::TrainOptions options;
            options.epochs = 3;
            options.learningRate = 0.03;
            nn::train(net, train_set, options);
            model = nn::quantize(net);
            image = std::make_unique<WeightImage>(model);

            // Adversarial placement: pin the image to the most
            // vulnerable BRAMs so every strategy sees real faults.
            const vmodel::ChipFaultModel &faults = board.faultModel();
            std::vector<int> per_bram(board.device().bramCount());
            for (std::uint32_t b = 0; b < per_bram.size(); ++b) {
                per_bram[b] = static_cast<int>(
                    faults.weakCells(b).size());
            }
            harness::Fvm fvm("ZC702", board.device().floorplan(),
                             std::move(per_bram));
            auto order = fvm.bramsByReliability();
            std::vector<std::uint32_t> worst(
                order.rbegin(),
                order.rbegin() + image->logicalBramCount());
            // Protect every layer so TMR/SECDED cover the whole image.
            std::vector<int> all_layers;
            for (std::size_t l = 0; l < model.layers.size(); ++l)
                all_layers.push_back(static_cast<int>(l));
            lab = std::make_unique<MitigationLab>(
                board, *image, Placement(std::move(worst)), all_layers);

            board.setVccBramMv(board.spec().calib.bramVcrashMv);
            board.startReferenceRun();
        }
    };

    static State &
    state()
    {
        static State instance;
        return instance;
    }
};

TEST_F(MitigationFixture, RawReadoutSeesFaults)
{
    MitigationReport report;
    const nn::QuantizedModel observed = state().lab->readRaw(report);
    EXPECT_GT(report.rawFaults, 20u);
    EXPECT_EQ(report.residualFaults, report.rawFaults);
    EXPECT_EQ(report.corrected, 0u);
    // And the observed weights really differ.
    bool differs = false;
    for (std::size_t l = 0; l < observed.layers.size(); ++l)
        differs |= observed.layers[l].weights !=
            state().model.layers[l].weights;
    EXPECT_TRUE(differs);
}

TEST_F(MitigationFixture, TemporalVotingIsUselessAgainstDeterminism)
{
    // The paper's stability finding (Table II) implies re-reading does
    // not help: the same cells fail every time.
    MitigationReport report;
    state().lab->readTemporalVote(3, report);
    ASSERT_GT(report.rawFaults, 0u);
    EXPECT_LT(report.coverage(), 0.05);
    state().board.startReferenceRun();
}

TEST_F(MitigationFixture, SpatialTmrMasksAlmostEverything)
{
    MitigationReport report;
    const nn::QuantizedModel observed =
        state().lab->readSpatialTmr(report);
    ASSERT_GT(report.rawFaults, 0u);
    // Replicas live on *different* (here: much healthier) BRAMs, so a
    // 2-of-3 vote masks nearly all primary-copy faults.
    EXPECT_GT(report.coverage(), 0.9);
    EXPECT_EQ(report.extraBrams,
              2 * state().image->logicalBramCount());
    (void)observed;
}

TEST_F(MitigationFixture, SecdedCorrectsIsolatedFaults)
{
    MitigationReport report;
    state().lab->readSecded(report);
    ASSERT_GT(report.rawFaults, 0u);
    // Single-error-per-row dominates, so most faults are corrected;
    // multi-fault rows stay (and are reported as detected).
    EXPECT_GT(report.coverage(), 0.5);
    EXPECT_EQ(report.extraBrams,
              (state().image->logicalBramCount() + 1) / 2);
    EXPECT_EQ(report.residualFaults + report.corrected,
              report.rawFaults);
}

TEST(MitigationLabTest, DefaultProtectsLastLayer)
{
    pmbus::Board board(fpga::findPlatform("ZC702"));
    nn::Network net({54, 64, 7});
    net.initWeights(3);
    WeightImage image(nn::quantize(net));
    MitigationLab lab(board, image, defaultPlacement(image));
    ASSERT_EQ(lab.protectedLayers().size(), 1u);
    EXPECT_EQ(lab.protectedLayers()[0], 1);
    // Last layer = 1 logical BRAM -> 2 TMR replicas, 1 check BRAM.
    EXPECT_EQ(lab.tmrOverheadBrams(), 2u);
    EXPECT_EQ(lab.secdedOverheadBrams(), 1u);
}

TEST(MitigationLabTest, FaultFreeAtNominal)
{
    pmbus::Board board(fpga::findPlatform("ZC702"));
    nn::Network net({54, 64, 7});
    net.initWeights(3);
    WeightImage image(nn::quantize(net));
    MitigationLab lab(board, image, defaultPlacement(image));
    board.startReferenceRun();

    MitigationReport report;
    for (auto read : {&MitigationLab::readRaw,
                      &MitigationLab::readSpatialTmr,
                      &MitigationLab::readSecded}) {
        const nn::QuantizedModel observed = (lab.*read)(report);
        EXPECT_EQ(report.rawFaults, 0u);
        EXPECT_EQ(report.residualFaults, 0u);
        for (std::size_t l = 0; l < observed.layers.size(); ++l) {
            EXPECT_EQ(observed.layers[l].weights,
                      nn::quantize(net).layers[l].weights);
        }
    }
}

} // namespace
} // namespace uvolt::accel

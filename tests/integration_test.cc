/**
 * @file
 * Cross-module integration tests: the paper's full pipeline on a small
 * platform — characterize the chip (Listing 1), extract the FVM,
 * cluster it, deploy an NN accelerator, and verify that ICBP placement
 * protects accuracy at deep undervolting while the power model reports
 * the corresponding savings.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "data/synthetic.hh"
#include "harness/clusterer.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/quantizer.hh"
#include "nn/trainer.hh"
#include "power/power_model.hh"
#include "pmbus/board.hh"

namespace uvolt
{
namespace
{

/** Shared pipeline state (built once; the sweep is the expensive part). */
class PipelineFixture : public ::testing::Test
{
  protected:
    struct State
    {
        fpga::PlatformSpec spec = fpga::findPlatform("ZC702");
        pmbus::Board board{spec};
        harness::SweepResult sweep;
        std::unique_ptr<harness::Fvm> fvm;
        nn::QuantizedModel model;
        data::Dataset testSet;
        double inherentError = 0.0;

        State()
        {
            // 1. Characterize (Listing 1, pattern 0xFFFF, 100 runs).
            sweep = harness::runCriticalSweep(board);
            fvm = std::make_unique<harness::Fvm>(
                harness::fvmFromSweep(sweep,
                                      board.device().floorplan()));

            // 2. Train + quantize the application.
            const data::Dataset train_set = data::makeForestLike(1800, 3);
            nn::Network net(
                {data::forestFeatures, 128, 64, data::forestClasses});
            nn::TrainOptions options;
            options.epochs = 6;
            options.learningRate = 0.03;
            nn::train(net, train_set, options);
            model = nn::quantize(net);
            testSet = data::makeForestLike(
                800, combineSeeds(3, hashSeed("held-out")));
            inherentError = model.toNetwork().evaluateError(testSet);
        }
    };

    static State &
    state()
    {
        static State instance;
        return instance;
    }
};

TEST_F(PipelineFixture, CharacterizationProducesUsableFvm)
{
    auto &s = state();
    EXPECT_EQ(s.sweep.points.front().vccBramMv, 620);
    EXPECT_EQ(s.sweep.points.back().vccBramMv, 560);
    EXPECT_NEAR(s.sweep.atVcrash().faultsPerMbit, 153.0, 153.0 * 0.12);
    EXPECT_GT(s.fvm->faultFreeFraction(), 0.3);
    // Enough clean BRAMs to host the protected layer.
    const auto report = harness::clusterBrams(*s.fvm);
    EXPECT_GT(report.lowVulnerableBrams.size(), 10u);
}

TEST_F(PipelineFixture, BaselineAccuracyIsSane)
{
    // The inherent (fault-free) error of the trained model.
    EXPECT_LT(state().inherentError, 0.25);
    EXPECT_GT(state().inherentError, 0.0);
}

TEST_F(PipelineFixture, UndervoltingDegradesWorstCasePlacement)
{
    auto &s = state();
    const accel::WeightImage image(s.model);

    // Adversarial placement: logical BRAMs pinned to the *most*
    // vulnerable physical BRAMs (the reliability order reversed). This
    // bounds the damage any placement can suffer and must show clear
    // degradation at Vcrash.
    auto order = s.fvm->bramsByReliability();
    std::vector<std::uint32_t> worst(order.rbegin(),
                                     order.rbegin() +
                                         image.logicalBramCount());
    const accel::Accelerator accel(s.board, image,
                                   accel::Placement(std::move(worst)));

    s.board.setVccBramMv(s.spec.calib.bramVcrashMv);
    s.board.startReferenceRun();
    EXPECT_GT(accel.weightFaults().total, 50u);

    // Corruption must propagate: the datapath sees different weights and
    // at least some predictions move. (The *magnitude* of the error
    // change is benchmark-scale dependent and is exercised by the Fig 11
    // / Fig 14 benches on the paper's MNIST model; at this small scale,
    // single-bit magnitude-shrinking flips are close to noise — exactly
    // the inherent resilience the paper reports.)
    const nn::Network faulty = accel.observedNetwork();
    const nn::Network clean = s.model.toNetwork();
    int moved = 0;
    for (std::size_t i = 0; i < s.testSet.size(); ++i) {
        moved += faulty.classify(s.testSet.sample(i)) !=
            clean.classify(s.testSet.sample(i));
    }
    EXPECT_GT(moved, 0);

    s.board.softReset();
}

TEST_F(PipelineFixture, IcbpBeatsWorstCaseAndTracksInherentError)
{
    auto &s = state();
    const accel::WeightImage image(s.model);

    // ICBP: protect every layer we can, most sensitive (last) first —
    // on this small model the whole image fits into reliable BRAMs.
    accel::IcbpOptions options;
    for (int l = static_cast<int>(s.model.layers.size()) - 1; l >= 0; --l)
        options.protectedLayers.push_back(l);
    const accel::Accelerator icbp(
        s.board, image, accel::icbpPlacement(image, *s.fvm, options));

    s.board.setVccBramMv(s.spec.calib.bramVcrashMv);
    s.board.startReferenceRun();
    const double icbp_error = icbp.classificationError(s.testSet);
    const auto icbp_faults = icbp.weightFaults().total;

    // Compare with the adversarial placement at the same conditions.
    auto order = s.fvm->bramsByReliability();
    std::vector<std::uint32_t> worst(order.rbegin(),
                                     order.rbegin() +
                                         image.logicalBramCount());
    const accel::Accelerator bad(s.board, image,
                                 accel::Placement(std::move(worst)));
    const auto bad_faults = bad.weightFaults().total;
    const double bad_error = bad.classificationError(s.testSet);

    EXPECT_LT(icbp_faults, bad_faults / 2);
    EXPECT_LE(icbp_error, bad_error + 0.005);
    // ICBP keeps the error near the inherent level (paper: ~0.1-0.6%).
    EXPECT_LT(icbp_error, s.inherentError + 0.02);

    s.board.softReset();
}

TEST_F(PipelineFixture, PowerSavingsAccompanyDeepUndervolting)
{
    auto &s = state();
    const power::RailPowerModel rail(s.spec);
    const double v_min = s.spec.calib.bramVminMv / 1000.0;
    const double v_crash = s.spec.calib.bramVcrashMv / 1000.0;
    EXPECT_GT(rail.savingVsNominal(v_min), 0.9);
    EXPECT_GT(rail.savingVs(v_crash, v_min), 0.25);
}

TEST(IntegrationTest, JitteredRunsKeepFaultLocationsStable)
{
    // Table II's qualitative claim: locations are stable over time.
    pmbus::Board board(fpga::findPlatform("ZC702"));
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);

    // Reference fault set.
    board.startReferenceRun();
    std::vector<std::uint16_t> reference;
    for (std::uint32_t b = 0; b < 40; ++b) {
        const auto rows = board.readBramToHost(b);
        reference.insert(reference.end(), rows.begin(), rows.end());
    }

    // Jittered runs differ only marginally.
    int mismatched_words = 0;
    for (int run = 0; run < 5; ++run) {
        board.startRun();
        std::size_t cursor = 0;
        for (std::uint32_t b = 0; b < 40; ++b) {
            const auto rows = board.readBramToHost(b);
            for (std::uint16_t word : rows)
                mismatched_words += (word != reference[cursor++]);
        }
    }
    // Five whole re-reads of 40 BRAMs: only boundary cells may move.
    EXPECT_LT(mismatched_words, 40);
    board.softReset();
}

} // namespace
} // namespace uvolt

/**
 * @file
 * Tests for the VCCINT datapath-fault extension: the upset-probability
 * law, the fault-free fast path, determinism, and the headline
 * comparison (datapath faults hurt far more per event than storage
 * faults).
 */

#include <gtest/gtest.h>

#include "accel/logic_faults.hh"
#include "data/synthetic.hh"
#include "nn/trainer.hh"

namespace uvolt::accel
{
namespace
{

const nn::Network &
forestNet()
{
    static const nn::Network net = [] {
        const data::Dataset train_set = data::makeForestLike(1500, 3);
        nn::Network n({data::forestFeatures, 64, 32,
                       data::forestClasses});
        nn::TrainOptions options;
        options.epochs = 6;
        options.learningRate = 0.03;
        nn::train(n, train_set, options);
        return n;
    }();
    return net;
}

const data::Dataset &
forestTest()
{
    static const data::Dataset set = data::makeForestLike(
        800, combineSeeds(3, hashSeed("held-out")));
    return set;
}

TEST(LogicFaultModelTest, SafeRegionIsClean)
{
    const LogicFaultModel model(fpga::findPlatform("VC707"));
    EXPECT_EQ(model.neuronUpsetProbability(1.0), 0.0);
    EXPECT_EQ(model.neuronUpsetProbability(0.66), 0.0); // logic Vmin
}

TEST(LogicFaultModelTest, ExponentialGrowthBelowVmin)
{
    const LogicFaultModel model(fpga::findPlatform("VC707"), 2e-2);
    double previous = 0.0;
    for (int mv = 650; mv >= 590; mv -= 10) {
        const double prob = model.neuronUpsetProbability(mv / 1000.0);
        EXPECT_GT(prob, previous) << mv;
        previous = prob;
    }
    // Calibrated anchor at the logic Vcrash.
    EXPECT_NEAR(model.neuronUpsetProbability(0.59), 2e-2, 1e-9);
    // Clamped below Vcrash.
    EXPECT_NEAR(model.neuronUpsetProbability(0.50), 2e-2, 1e-9);
}

TEST(LogicFaultModelTest, BadProbabilityDies)
{
    EXPECT_EXIT(LogicFaultModel(fpga::findPlatform("VC707"), 0.0),
                ::testing::ExitedWithCode(1), "probability");
    EXPECT_EXIT(LogicFaultModel(fpga::findPlatform("VC707"), 1.5),
                ::testing::ExitedWithCode(1), "probability");
}

TEST(FaultyClassify, ZeroProbabilityMatchesCleanPath)
{
    Rng rng(5);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(faultyClassify(forestNet(), forestTest().sample(i), 0.0,
                                 rng),
                  forestNet().classify(forestTest().sample(i)));
    }
}

TEST(FaultyClassify, DeterministicInSeed)
{
    const LogicFaultModel model(fpga::findPlatform("VC707"));
    const double a = evaluateErrorUnderLogicFaults(
        forestNet(), forestTest(), model, 0.60, 7, 300);
    const double b = evaluateErrorUnderLogicFaults(
        forestNet(), forestTest(), model, 0.60, 7, 300);
    EXPECT_EQ(a, b);
}

TEST(FaultyClassify, ErrorGrowsTowardVcrash)
{
    const LogicFaultModel model(fpga::findPlatform("VC707"), 5e-2);
    const double clean = forestNet().evaluateError(forestTest());
    const double at_vmin = evaluateErrorUnderLogicFaults(
        forestNet(), forestTest(), model, 0.66, 7);
    const double at_vcrash = evaluateErrorUnderLogicFaults(
        forestNet(), forestTest(), model, 0.59, 7);
    EXPECT_DOUBLE_EQ(at_vmin, clean); // fault-free at the boundary
    EXPECT_GT(at_vcrash, clean + 0.005);
}

TEST(FaultyClassify, HighUpsetRateIsCatastrophic)
{
    // The headline: even a 5% per-neuron upset rate wrecks accuracy in
    // a way BRAM storage faults never did — datapath faults are
    // bipolar and strike every inference afresh.
    Rng rng(11);
    std::size_t wrong = 0;
    const std::size_t n = 400;
    for (std::size_t i = 0; i < n; ++i) {
        if (faultyClassify(forestNet(), forestTest().sample(i), 0.15,
                           rng) != forestTest().label(i))
            ++wrong;
    }
    const double clean = forestNet().evaluateError(forestTest(), n);
    EXPECT_GT(static_cast<double>(wrong) / n, clean + 0.05);
}

} // namespace
} // namespace uvolt::accel

/**
 * @file
 * Tests for the DVFS comparison substrate (timing model, logic power,
 * policy) and the accelerator performance model.
 */

#include <gtest/gtest.h>

#include "accel/perf_model.hh"
#include "power/dvfs.hh"
#include "power/power_model.hh"

namespace uvolt::power
{
namespace
{

TEST(TimingModelTest, NominalDelayIsUnity)
{
    TimingModel timing(100.0);
    EXPECT_NEAR(timing.relativeDelay(1.0), 1.0, 1e-12);
    EXPECT_NEAR(timing.fmaxMhz(1.0), 100.0, 1e-9);
}

TEST(TimingModelTest, DelayGrowsAsVoltageDrops)
{
    TimingModel timing(100.0);
    double previous = timing.relativeDelay(1.0);
    for (int mv = 950; mv >= 450; mv -= 50) {
        const double delay = timing.relativeDelay(mv / 1000.0);
        EXPECT_GT(delay, previous) << mv;
        previous = delay;
    }
    // Near threshold the slowdown is dramatic.
    EXPECT_GT(timing.relativeDelay(0.45), 3.0);
}

TEST(TimingModelTest, BelowThresholdDies)
{
    TimingModel timing(100.0);
    EXPECT_EXIT(timing.relativeDelay(0.30), ::testing::ExitedWithCode(1),
                "threshold");
    EXPECT_GT(timing.minOperableVolts(), 0.35);
}

TEST(LogicPowerTest, NominalAndScaling)
{
    LogicPowerModel logic(5.0, 100.0);
    EXPECT_NEAR(logic.watts(1.0, 100.0), 5.0, 1e-9);
    // Halving the clock cuts only the dynamic share.
    const double half_clock = logic.watts(1.0, 50.0);
    EXPECT_NEAR(half_clock, 5.0 * (0.6 * 0.5 + 0.4), 1e-9);
    // Lower voltage cuts both terms.
    EXPECT_LT(logic.watts(0.7, 100.0), 5.0 * 0.7);
}

TEST(DvfsPolicyTest, PointsAreConsistent)
{
    const auto &spec = fpga::findPlatform("VC707");
    DvfsPolicy policy(spec, 100.0);

    const OperatingPoint nominal = policy.undervoltPoint(1.0);
    EXPECT_DOUBLE_EQ(nominal.clockMhz, 100.0);
    EXPECT_FALSE(nominal.bramFaultsPossible);

    const OperatingPoint deep = policy.undervoltPoint(0.54);
    EXPECT_DOUBLE_EQ(deep.clockMhz, 100.0); // never slows down
    EXPECT_DOUBLE_EQ(deep.vccIntV, 1.0);
    EXPECT_TRUE(deep.bramFaultsPossible);

    const OperatingPoint dvfs = policy.dvfsPoint(0.8);
    EXPECT_LT(dvfs.clockMhz, 100.0); // must slow down
    EXPECT_GT(dvfs.clockMhz, 0.0);
    EXPECT_FALSE(dvfs.bramFaultsPossible);
}

TEST(DvfsPolicyTest, CannotCrossCriticalPoint)
{
    const auto &spec = fpga::findPlatform("VC707");
    DvfsPolicy policy(spec, 100.0);
    EXPECT_EXIT(policy.dvfsPoint(0.60), ::testing::ExitedWithCode(1),
                "critical operating point");
}

TEST(DvfsPolicyTest, NeverOverclocks)
{
    const auto &spec = fpga::findPlatform("VC707");
    // A design closed at far below Fmax: DVFS at nominal voltage must
    // cap at the design clock, not "overclock" to Fmax.
    DvfsPolicy policy(spec, 100.0);
    EXPECT_LE(policy.dvfsPoint(1.0).clockMhz, 100.0);
}

TEST(PerfModelTest, CycleCountMatchesHandMath)
{
    const auto &spec = fpga::findPlatform("VC707");
    accel::DatapathConfig config;
    config.macUnits = 100;
    config.pipelineDepth = 10;
    accel::PerfModel perf({20, 50, 10}, spec, 5.0, 0.708, config);
    // ceil(1000/100) + 10 + ceil(500/100) + 10 = 10+10+5+10 = 35.
    EXPECT_EQ(perf.cyclesPerInference(), 35u);
}

TEST(PerfModelTest, ThroughputTracksClock)
{
    const auto &spec = fpga::findPlatform("VC707");
    accel::PerfModel perf({784, 1024, 512, 256, 128, 10}, spec, 5.0);
    DvfsPolicy policy(spec, 100.0);

    const auto full = perf.evaluate(policy.undervoltPoint(1.0));
    const auto slowed = perf.evaluate(policy.dvfsPoint(0.7));
    EXPECT_NEAR(slowed.inferencesPerSecond / full.inferencesPerSecond,
                slowed.clockMhz / full.clockMhz, 1e-9);
    EXPECT_LT(slowed.totalPowerW, full.totalPowerW);
}

TEST(PerfModelTest, UndervoltingCutsEnergyNotThroughput)
{
    const auto &spec = fpga::findPlatform("VC707");
    const auto design = OnChipBreakdown::nnDesign(spec);
    accel::PerfModel perf({784, 1024, 512, 256, 128, 10}, spec,
                          design.at(1.0).restW);
    DvfsPolicy policy(spec, 100.0);

    const auto nominal = perf.evaluate(policy.undervoltPoint(1.0));
    const auto at_vmin = perf.evaluate(policy.undervoltPoint(0.61));
    EXPECT_DOUBLE_EQ(at_vmin.inferencesPerSecond,
                     nominal.inferencesPerSecond);
    // Fig 10's headline: ~24% total saving at Vmin.
    EXPECT_NEAR(1.0 - at_vmin.totalPowerW / nominal.totalPowerW, 0.241,
                0.02);
}

} // namespace
} // namespace uvolt::power

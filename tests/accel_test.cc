/**
 * @file
 * Tests for the accel module: the weight image layout (Table III), the
 * placement engines including ICBP (Fig 12), the BRAM-backed
 * accelerator under voltage, and the layer-vulnerability analysis
 * (Fig 13).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/vulnerability.hh"
#include "accel/weight_image.hh"
#include "data/synthetic.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/trainer.hh"
#include "pmbus/board.hh"
#include "util/thread_pool.hh"

namespace uvolt::accel
{
namespace
{

using harness::Fvm;
using pmbus::Board;

/** A small trained model that fits comfortably on ZC702. */
const nn::QuantizedModel &
smallModel()
{
    static const nn::QuantizedModel model = [] {
        const data::Dataset train_set = data::makeForestLike(1500, 3);
        nn::Network net(
            {data::forestFeatures, 128, 64, data::forestClasses});
        nn::TrainOptions options;
        options.epochs = 6;
        options.learningRate = 0.03;
        nn::train(net, train_set, options);
        return nn::quantize(net);
    }();
    return model;
}

const data::Dataset &
smallTestSet()
{
    static const data::Dataset set = data::makeForestLike(
        600, combineSeeds(3, hashSeed("held-out")));
    return set;
}

TEST(WeightImageTest, PaperTopologyLayout)
{
    // Untrained weights suffice to check the layout arithmetic.
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    const WeightImage image(nn::quantize(net));

    const auto &spans = image.layerSpans();
    ASSERT_EQ(spans.size(), 5u);
    EXPECT_EQ(spans[0].bramCount, 784u); // 784*1024 / 1024
    EXPECT_EQ(spans[1].bramCount, 512u);
    EXPECT_EQ(spans[2].bramCount, 128u);
    EXPECT_EQ(spans[3].bramCount, 32u);
    EXPECT_EQ(spans[4].bramCount, 2u);   // the paper's "two BRAMs"
    EXPECT_EQ(image.logicalBramCount(), 1458u);

    // Table III: 70.8% of VC707's 2060 BRAMs.
    EXPECT_NEAR(image.utilizationOf(2060), 0.708, 0.001);

    // Spans are contiguous and non-overlapping.
    std::uint32_t cursor = 0;
    for (const auto &span : spans) {
        EXPECT_EQ(span.firstLogicalBram, cursor);
        cursor += span.bramCount;
    }
    EXPECT_EQ(cursor, image.logicalBramCount());

    // layerOf agrees with the spans.
    EXPECT_EQ(image.layerOf(0), 0);
    EXPECT_EQ(image.layerOf(783), 0);
    EXPECT_EQ(image.layerOf(784), 1);
    EXPECT_EQ(image.layerOf(1456), 4);
    EXPECT_EQ(image.layerOf(1457), 4);
}

TEST(WeightImageTest, RowsHoldWeightsThenPadding)
{
    const WeightImage image(smallModel());
    const auto &layer0 = smallModel().layers[0];
    const auto &rows = image.rowsOf(0);
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(fpga::bramRows));
    for (int r = 0; r < 32; ++r)
        EXPECT_EQ(rows[static_cast<std::size_t>(r)],
                  layer0.weights[static_cast<std::size_t>(r)]);

    // The tail of each layer's last BRAM is zero-padded.
    const auto &spans = image.layerSpans();
    const auto &last_bram_of_l0 =
        image.rowsOf(spans[0].firstLogicalBram + spans[0].bramCount - 1);
    const std::size_t used = spans[0].weightCount % weightsPerBram;
    if (used != 0) {
        for (std::size_t r = used; r < weightsPerBram; ++r)
            EXPECT_EQ(last_bram_of_l0[r], 0);
    }
}

TEST(WeightImageTest, DecodeIsInverseOfLayout)
{
    const WeightImage image(smallModel());
    std::vector<std::vector<std::uint16_t>> observed;
    for (std::uint32_t b = 0; b < image.logicalBramCount(); ++b)
        observed.push_back(image.rowsOf(b));
    const nn::QuantizedModel decoded = image.decode(observed);
    for (std::size_t l = 0; l < decoded.layers.size(); ++l)
        EXPECT_EQ(decoded.layers[l].weights,
                  smallModel().layers[l].weights);
}

TEST(WeightImageTest, DecodeAppliesCorruption)
{
    const WeightImage image(smallModel());
    std::vector<std::vector<std::uint16_t>> observed;
    for (std::uint32_t b = 0; b < image.logicalBramCount(); ++b)
        observed.push_back(image.rowsOf(b));
    observed[0][5] = static_cast<std::uint16_t>(observed[0][5] ^ 0x8000);
    const nn::QuantizedModel decoded = image.decode(observed);
    EXPECT_NE(decoded.layers[0].weights[5],
              smallModel().layers[0].weights[5]);
}

TEST(WeightImageTest, PaddingCorruptionIsIgnoredByDecode)
{
    const WeightImage image(smallModel());
    std::vector<std::vector<std::uint16_t>> observed;
    for (std::uint32_t b = 0; b < image.logicalBramCount(); ++b)
        observed.push_back(image.rowsOf(b));

    // Corrupt a padding row (beyond the layer's weight count) in the
    // last BRAM of layer 0.
    const auto &span = image.layerSpans()[0];
    const std::size_t used = span.weightCount % weightsPerBram;
    if (used != 0) {
        auto &last = observed[span.firstLogicalBram + span.bramCount - 1];
        last[used] = 0xFFFF;
        const nn::QuantizedModel decoded = image.decode(observed);
        EXPECT_EQ(decoded.layers[0].weights,
                  smallModel().layers[0].weights);
    }
}

class TopologyLayout
    : public ::testing::TestWithParam<std::vector<int>>
{
};

TEST_P(TopologyLayout, SpansTileExactly)
{
    nn::Network net(GetParam());
    net.initWeights(3);
    const WeightImage image(nn::quantize(net));

    std::uint32_t cursor = 0;
    std::size_t weights = 0;
    for (const LayerSpan &span : image.layerSpans()) {
        EXPECT_EQ(span.firstLogicalBram, cursor);
        EXPECT_EQ(span.bramCount,
                  (span.weightCount + weightsPerBram - 1) /
                      weightsPerBram);
        cursor += span.bramCount;
        weights += span.weightCount;
    }
    EXPECT_EQ(cursor, image.logicalBramCount());
    EXPECT_EQ(weights, net.totalWeights());

    // Decode of the pristine image is the identity.
    std::vector<std::vector<std::uint16_t>> observed;
    for (std::uint32_t b = 0; b < image.logicalBramCount(); ++b)
        observed.push_back(image.rowsOf(b));
    const nn::QuantizedModel decoded = image.decode(observed);
    for (std::size_t l = 0; l < decoded.layers.size(); ++l) {
        EXPECT_EQ(decoded.layers[l].weights,
                  nn::quantize(net).layers[l].weights);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyLayout,
    ::testing::Values(std::vector<int>{4, 4},
                      std::vector<int>{1024, 1},
                      std::vector<int>{1, 1024},
                      std::vector<int>{54, 256, 128, 64, 7},
                      std::vector<int>{100, 1000, 100},
                      std::vector<int>{784, 1024, 512, 256, 128, 10}));

TEST(PlacementTest, DefaultIsIdentity)
{
    const WeightImage image(smallModel());
    const Placement placement = defaultPlacement(image);
    EXPECT_EQ(placement.logicalCount(), image.logicalBramCount());
    for (std::uint32_t i = 0; i < placement.logicalCount(); ++i)
        EXPECT_EQ(placement.physicalOf(i), i);
    EXPECT_TRUE(placement.fits(280));
}

TEST(PlacementTest, DuplicateTargetsDie)
{
    EXPECT_EXIT(Placement({0, 1, 1}), ::testing::ExitedWithCode(1),
                "two logical BRAMs");
}

TEST(PlacementTest, RandomIsInjectiveAndSeeded)
{
    const WeightImage image(smallModel());
    const Placement a = randomPlacement(image, 280, 5);
    const Placement b = randomPlacement(image, 280, 5);
    const Placement c = randomPlacement(image, 280, 6);
    EXPECT_EQ(a.mapping(), b.mapping());
    EXPECT_NE(a.mapping(), c.mapping());
    EXPECT_TRUE(a.fits(280));
}

/** A hand-built FVM: BRAM b has b faults (so BRAM 0 is most reliable). */
Fvm
rampFvm(std::uint32_t count)
{
    std::vector<int> faults(count);
    std::iota(faults.begin(), faults.end(), 0);
    const fpga::Floorplan plan = fpga::Floorplan::columnGrid(count, 70);
    return Fvm("synthetic", plan, std::move(faults));
}

TEST(PlacementTest, IcbpPinsLastLayerToMostReliable)
{
    const WeightImage image(smallModel());
    const Fvm fvm = rampFvm(280);
    const Placement placement = icbpPlacement(image, fvm);

    const auto &spans = image.layerSpans();
    const auto &last = spans.back();
    // The last layer occupies the most reliable BRAMs: 0, 1, ...
    for (std::uint32_t b = 0; b < last.bramCount; ++b)
        EXPECT_EQ(placement.physicalOf(last.firstLogicalBram + b), b);
    // Other layers fill the remaining pool in order, skipping the pins.
    EXPECT_EQ(placement.physicalOf(0), last.bramCount);
}

TEST(PlacementTest, IcbpCustomProtectedSet)
{
    const WeightImage image(smallModel());
    const Fvm fvm = rampFvm(280);
    IcbpOptions options;
    options.protectedLayers = {2, 0}; // priority order
    const Placement placement = icbpPlacement(image, fvm, options);

    const auto &spans = image.layerSpans();
    // Layer 2 takes the best BRAMs, then layer 0 the next best.
    EXPECT_EQ(placement.physicalOf(spans[2].firstLogicalBram), 0u);
    EXPECT_EQ(placement.physicalOf(spans[0].firstLogicalBram),
              spans[2].bramCount);
}

TEST(AcceleratorTest, FaultFreeAtNominal)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    const Accelerator accel(board, image, defaultPlacement(image));

    board.startReferenceRun();
    EXPECT_EQ(accel.weightFaults().total, 0u);

    // The observed model at nominal voltage is bit-identical.
    const nn::QuantizedModel observed = accel.observedModel();
    for (std::size_t l = 0; l < observed.layers.size(); ++l)
        EXPECT_EQ(observed.layers[l].weights,
                  smallModel().layers[l].weights);

    // And classifies exactly like the float reference of the image.
    const double reference =
        smallModel().toNetwork().evaluateError(smallTestSet());
    EXPECT_DOUBLE_EQ(accel.classificationError(smallTestSet()), reference);
}

TEST(AcceleratorTest, FaultsAppearAtVcrash)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    const Accelerator accel(board, image, defaultPlacement(image));

    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    const WeightFaultReport report = accel.weightFaults();
    EXPECT_GT(report.total, 0u);
    EXPECT_EQ(std::accumulate(report.faultsPerLayer.begin(),
                              report.faultsPerLayer.end(), 0ull),
              report.total);
}

TEST(AcceleratorTest, ObservationCacheServesRepeatCalls)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    const Accelerator accel(board, image, defaultPlacement(image));
    board.startReferenceRun();

    EXPECT_EQ(accel.observationCacheHits(), 0u);
    const WeightFaultReport faults = accel.weightFaults();
    const double error = accel.classificationError(smallTestSet());
    // The weightFaults() + classificationError() pair at one operating
    // point costs a single readback; everything after the first call
    // is a hit.
    const std::uint64_t hits = accel.observationCacheHits();
    EXPECT_GT(hits, 0u);

    // Repeat calls at the unchanged dose: hits only, same answers.
    EXPECT_EQ(accel.weightFaults().total, faults.total);
    EXPECT_DOUBLE_EQ(accel.classificationError(smallTestSet()), error);
    EXPECT_GT(accel.observationCacheHits(), hits);
}

TEST(AcceleratorTest, ObservationCacheInvalidatedByVoltageChange)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    const Accelerator accel(board, image, defaultPlacement(image));
    board.startReferenceRun();

    const double nominal = accel.classificationError(smallTestSet());

    // Dropping VCCBRAM changes the fault dose: the stale decode must
    // not be served, and the fresh one must match a from-scratch
    // accelerator at the same operating point.
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    const std::uint64_t hits = accel.observationCacheHits();
    const double at_vcrash = accel.classificationError(smallTestSet());
    EXPECT_EQ(accel.observationCacheHits(), hits); // miss, not a hit
    EXPECT_GT(accel.weightFaults().total, 0u);

    Board fresh_board(fpga::findPlatform("ZC702"));
    const Accelerator fresh(fresh_board, image,
                            defaultPlacement(image));
    fresh_board.setVccBramMv(fresh_board.spec().calib.bramVcrashMv);
    fresh_board.startReferenceRun();
    EXPECT_DOUBLE_EQ(fresh.classificationError(smallTestSet()),
                     at_vcrash);

    // Returning to nominal re-decodes back to the fault-free answer.
    board.setVccBramMv(board.spec().vnomMv);
    EXPECT_DOUBLE_EQ(accel.classificationError(smallTestSet()), nominal);
}

TEST(AcceleratorTest, ObservationCacheInvalidatedByProgram)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    Accelerator accel(board, image, defaultPlacement(image));
    board.startReferenceRun();

    accel.observedModel();
    const std::uint64_t hits_before = accel.observationCacheHits();
    accel.observedModel();
    EXPECT_EQ(accel.observationCacheHits(), hits_before + 1);

    // program() rewrites the BRAMs: cached readbacks no longer
    // describe the device, so the next observation is a miss.
    accel.program();
    accel.observedModel();
    EXPECT_EQ(accel.observationCacheHits(), hits_before + 1);
}

TEST(AcceleratorTest, BatchedEvalOptionsMatchDefaultOverload)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    const Accelerator accel(board, image, defaultPlacement(image));
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();

    const double reference = accel.classificationError(smallTestSet());
    ThreadPool pool(4);
    const nn::EvalOptions options{.limit = 0, .batch = 11,
                                  .pool = &pool};
    EXPECT_DOUBLE_EQ(accel.classificationError(smallTestSet(), options),
                     reference);
}

TEST(AcceleratorTest, FaultCountGrowsWithDepth)
{
    Board board(fpga::findPlatform("ZC702"));
    const WeightImage image(smallModel());
    const Accelerator accel(board, image, defaultPlacement(image));
    board.startReferenceRun();

    std::uint64_t previous = 0;
    for (int mv = board.spec().calib.bramVminMv;
         mv >= board.spec().calib.bramVcrashMv; mv -= 10) {
        board.setVccBramMv(mv);
        const std::uint64_t faults = accel.weightFaults().total;
        EXPECT_GE(faults, previous);
        previous = faults;
    }
    EXPECT_GT(previous, 0u);
}

TEST(InjectionTest, FlipsExactlyRequestedOnes)
{
    nn::QuantizedModel model = smallModel();
    const auto ones_before = [&](int layer) {
        std::uint64_t total = 0;
        for (auto word : model.layers[static_cast<std::size_t>(
                 layer)].weights)
            total += static_cast<std::uint64_t>(fxp::popcount(word));
        return total;
    };

    const std::uint64_t before = ones_before(1);
    const int flipped = injectLayerFaults(model, 1, 200, 9);
    EXPECT_EQ(flipped, 200);
    EXPECT_EQ(ones_before(1), before - 200);
}

TEST(InjectionTest, BoundedByOnePopulation)
{
    nn::QuantizedModel model = smallModel();
    // The last layer is small; ask for more flips than it has "1" bits.
    const int flipped =
        injectLayerFaults(model, static_cast<int>(model.layers.size()) - 1,
                          1 << 30, 9);
    EXPECT_GT(flipped, 0);
    EXPECT_LT(flipped, 1 << 30);
    std::uint64_t remaining = 0;
    for (auto word : model.layers.back().weights)
        remaining += static_cast<std::uint64_t>(fxp::popcount(word));
    EXPECT_EQ(remaining, 0u);
}

TEST(VulnerabilityTest, ReportShapeAndNormalization)
{
    InjectionOptions options;
    options.faultsPerTrial = 300;
    options.trials = 2;
    options.evalLimit = 400;
    const auto report =
        analyzeLayerVulnerability(smallModel(), smallTestSet(), options);

    ASSERT_EQ(report.size(), smallModel().layers.size());
    double max_norm = 0.0;
    for (const auto &entry : report) {
        EXPECT_GE(entry.errorDelta, 0.0);
        EXPECT_GE(entry.normalizedVulnerability, 0.0);
        EXPECT_LE(entry.normalizedVulnerability, 1.0);
        max_norm = std::max(max_norm, entry.normalizedVulnerability);
        EXPECT_GT(entry.brams, 0u);
    }
    EXPECT_DOUBLE_EQ(max_norm, 1.0);
}

} // namespace
} // namespace uvolt::accel

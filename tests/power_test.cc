/**
 * @file
 * Unit tests for the power model against the paper's anchors: >10x BRAM
 * power reduction at Vmin, ~38% more at Vcrash, and the 24.1% total
 * on-chip saving of the NN design (Fig 10, Fig 14).
 */

#include <gtest/gtest.h>

#include "fpga/platform.hh"
#include "power/power_model.hh"

namespace uvolt::power
{
namespace
{

using fpga::findPlatform;

TEST(RailPowerModel, NominalIsUnity)
{
    for (const auto &spec : fpga::platformCatalog()) {
        RailPowerModel model(spec);
        EXPECT_NEAR(model.relativePower(1.0), 1.0, 1e-12) << spec.name;
        EXPECT_NEAR(model.bramPower(1.0), spec.calib.bramPowerNomW, 1e-12);
        EXPECT_NEAR(model.savingVsNominal(1.0), 0.0, 1e-12);
    }
}

TEST(RailPowerModel, MonotoneDecreasing)
{
    RailPowerModel model(findPlatform("VC707"));
    double previous = model.relativePower(1.0);
    for (int mv = 990; mv >= 500; mv -= 10) {
        const double current = model.relativePower(mv / 1000.0);
        EXPECT_LT(current, previous) << "at " << mv << " mV";
        previous = current;
    }
}

TEST(RailPowerModel, OrderOfMagnitudeAtVmin)
{
    // Paper: more than an order of magnitude power saving at Vmin,
    // for every platform.
    for (const auto &spec : fpga::platformCatalog()) {
        RailPowerModel model(spec);
        const double at_vmin =
            model.relativePower(spec.calib.bramVminMv / 1000.0);
        EXPECT_LT(at_vmin, 0.1) << spec.name;
    }
}

TEST(RailPowerModel, Vc707VcrashSavingMatchesPaper)
{
    // Paper Fig 14: 38.1% BRAM power saving at Vcrash over Vmin (VC707).
    RailPowerModel model(findPlatform("VC707"));
    EXPECT_NEAR(model.savingVs(0.54, 0.61), 0.381, 0.015);
}

TEST(OnChipBreakdown, NominalComposition)
{
    const auto breakdown =
        OnChipBreakdown::nnDesign(findPlatform("VC707")).at(1.0);
    EXPECT_NEAR(breakdown.bramW, 2.80 * 0.708, 1e-9);
    EXPECT_GT(breakdown.restW, breakdown.bramW); // BRAM is the minority
    EXPECT_NEAR(breakdown.bramShare(), 0.2555, 0.001);
}

TEST(OnChipBreakdown, TotalSavingAtVminIs24Percent)
{
    // Paper Fig 10: 24.1% total on-chip power reduction at Vmin.
    const auto design = OnChipBreakdown::nnDesign(findPlatform("VC707"));
    EXPECT_NEAR(design.totalSaving(0.61), 0.241, 0.005);
}

TEST(OnChipBreakdown, RestIsVoltageInvariant)
{
    const auto design = OnChipBreakdown::nnDesign(findPlatform("VC707"));
    EXPECT_DOUBLE_EQ(design.at(1.0).restW, design.at(0.54).restW);
}

TEST(OnChipBreakdown, DeeperUndervoltingSavesMore)
{
    const auto design = OnChipBreakdown::nnDesign(findPlatform("VC707"));
    EXPECT_GT(design.totalSaving(0.54), design.totalSaving(0.61));
    EXPECT_LT(design.totalSaving(0.54), 0.30); // bounded by BRAM share
}

} // namespace
} // namespace uvolt::power

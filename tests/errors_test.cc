/**
 * @file
 * Failure-injection tests: every fatal() path a user can reach must
 * exit(1) with a meaningful message rather than corrupt state (the
 * gem5 fatal/panic convention). These are gtest death tests.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/mitigation.hh"
#include "accel/placement.hh"
#include "accel/vulnerability.hh"
#include "accel/weight_image.hh"
#include "data/dataset.hh"
#include "fpga/bram.hh"
#include "fpga/device.hh"
#include "fpga/platform.hh"
#include "fxp/fixed_point.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "util/cli.hh"
#include "util/kmeans.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace uvolt
{
namespace
{

using ::testing::ExitedWithCode;

TEST(ErrorsDeathTest, UnknownPlatform)
{
    EXPECT_EXIT(fpga::findPlatform("VC999"), ExitedWithCode(1),
                "unknown platform");
}

TEST(ErrorsDeathTest, BramRowOutOfRange)
{
    fpga::Bram bram;
    EXPECT_EXIT(bram.writeRow(1024, 0), ExitedWithCode(1), "row");
    EXPECT_EXIT(bram.readRow(-1), ExitedWithCode(1), "row");
    EXPECT_EXIT(bram.assignBit(0, 16, true), ExitedWithCode(1), "col");
}

TEST(ErrorsDeathTest, DeviceBramOutOfPool)
{
    fpga::Device device(fpga::findPlatform("ZC702"));
    EXPECT_EXIT(device.bram(280), ExitedWithCode(1), "out of pool");
}

TEST(ErrorsDeathTest, FloorplanInvalidArgs)
{
    EXPECT_EXIT(fpga::Floorplan::columnGrid(0, 10), ExitedWithCode(1),
                "positive");
    const auto plan = fpga::Floorplan::columnGrid(10, 5);
    EXPECT_EXIT(plan.siteOf(10), ExitedWithCode(1), "out of pool");
}

TEST(ErrorsDeathTest, QFormatBadDigits)
{
    EXPECT_EXIT(fxp::QFormat(-1), ExitedWithCode(1), "digit bits");
    EXPECT_EXIT(fxp::QFormat(16), ExitedWithCode(1), "digit bits");
}

TEST(ErrorsDeathTest, KMeansBadK)
{
    std::vector<double> samples{1.0, 2.0};
    EXPECT_EXIT(kMeans1d(samples, 0), ExitedWithCode(1), "invalid");
    EXPECT_EXIT(kMeans1d(samples, 3), ExitedWithCode(1), "invalid");
}

TEST(ErrorsDeathTest, QuantileOfEmptySample)
{
    EXPECT_EXIT(quantile({}, 0.5), ExitedWithCode(1), "empty");
}

TEST(ErrorsDeathTest, TableRowWidthMismatch)
{
    TextTable table({"a", "b"});
    EXPECT_EXIT(table.addRow({"only-one"}), ExitedWithCode(1), "width");
}

TEST(ErrorsDeathTest, CliUnknownFlagAndBadValue)
{
    CliParser cli("test");
    cli.addInt("runs", 1, "runs");
    const char *unknown[] = {"prog", "--bogus"};
    EXPECT_EXIT(cli.parse(2, const_cast<char **>(unknown)),
                ExitedWithCode(1), "unknown flag");

    CliParser cli2("test");
    cli2.addInt("runs", 1, "runs");
    const char *bad[] = {"prog", "--runs", "ten"};
    ASSERT_TRUE(cli2.parse(3, const_cast<char **>(bad)));
    EXPECT_EXIT(cli2.getInt("runs"), ExitedWithCode(1), "integer");
}

TEST(ErrorsDeathTest, DatasetMisuse)
{
    data::Dataset set("toy", 3, 2);
    const float narrow[2] = {1.0f, 2.0f};
    EXPECT_EXIT(set.add({narrow, 2}, 0), ExitedWithCode(1), "width");
    const float ok[3] = {1.0f, 2.0f, 3.0f};
    EXPECT_EXIT(set.add({ok, 3}, 2), ExitedWithCode(1), "label");
    EXPECT_EXIT(set.sample(0), ExitedWithCode(1), "out of dataset");
}

TEST(ErrorsDeathTest, NetworkMisuse)
{
    EXPECT_EXIT(nn::Network({5}), ExitedWithCode(1), "at least");
    nn::Network net({4, 3});
    EXPECT_EXIT(net.layer(1), ExitedWithCode(1), "layer");
    const data::Dataset wrong("toy", 7, 3);
    EXPECT_EXIT(net.evaluateError(wrong), ExitedWithCode(1), "empty");
}

TEST(ErrorsDeathTest, TrainerShapeMismatch)
{
    nn::Network net({4, 3});
    data::Dataset set("toy", 5, 3);
    const float x[5] = {};
    set.add({x, 5}, 0);
    EXPECT_EXIT(nn::train(net, set), ExitedWithCode(1),
                "does not match");
}

TEST(ErrorsDeathTest, FinetuneEvenVote)
{
    pmbus::Board board(fpga::findPlatform("ZC702"));
    nn::Network net({54, 16, 7});
    net.initWeights(1);
    accel::WeightImage image(nn::quantize(net));
    accel::MitigationLab lab(board, image,
                             accel::defaultPlacement(image));
    accel::MitigationReport report;
    EXPECT_EXIT(lab.readTemporalVote(2, report), ExitedWithCode(1),
                "odd");
}

TEST(ErrorsDeathTest, PlacementTooLargeForDevice)
{
    nn::Network net({784, 1024, 10});
    net.initWeights(1);
    accel::WeightImage image(nn::quantize(net)); // ~785 BRAMs
    pmbus::Board board(fpga::findPlatform("ZC702")); // only 280
    EXPECT_EXIT(
        accel::Accelerator(board, image, accel::defaultPlacement(image)),
        ExitedWithCode(1), "does not fit");
    EXPECT_EXIT(accel::randomPlacement(image, 280, 1), ExitedWithCode(1),
                "exceeds");
}

TEST(ErrorsDeathTest, IcbpBadProtectedLayer)
{
    nn::Network net({54, 16, 7});
    net.initWeights(1);
    accel::WeightImage image(nn::quantize(net));
    std::vector<int> faults(280, 0);
    harness::Fvm fvm("x", fpga::Floorplan::columnGrid(280, 70),
                     std::move(faults));
    accel::IcbpOptions options;
    options.protectedLayers = {7};
    EXPECT_EXIT(accel::icbpPlacement(image, fvm, options),
                ExitedWithCode(1), "protected layer");
}

TEST(ErrorsDeathTest, FvmSizeMismatch)
{
    std::vector<int> faults(10, 0);
    EXPECT_EXIT(
        harness::Fvm("x", fpga::Floorplan::columnGrid(280, 70),
                     std::move(faults)),
        ExitedWithCode(1), "fault entries");
}

TEST(ErrorsDeathTest, SweepMissingPoint)
{
    harness::SweepResult sweep;
    EXPECT_EXIT(sweep.atVcrash(), ExitedWithCode(1), "no points");
    sweep.points.emplace_back();
    sweep.points.back().vccBramMv = 600;
    EXPECT_EXIT(sweep.at(570), ExitedWithCode(1), "no point at");
}

TEST(ErrorsDeathTest, SweepInvertedRange)
{
    pmbus::Board board(fpga::findPlatform("ZC702"));
    harness::SweepOptions options;
    options.fromMv = 560;
    options.downToMv = 620;
    EXPECT_EXIT(harness::runCriticalSweep(board, options),
                ExitedWithCode(1), "above");
}

TEST(ErrorsDeathTest, InjectionBadLayer)
{
    nn::Network net({54, 16, 7});
    net.initWeights(1);
    auto model = nn::quantize(net);
    EXPECT_EXIT(accel::injectLayerFaults(model, 5, 10, 1),
                ExitedWithCode(1), "layer");
}

TEST(ErrorsDeathTest, RegionDiscoveryOnAux)
{
    pmbus::Board board(fpga::findPlatform("ZC702"));
    EXPECT_EXIT(harness::discoverRegions(board, fpga::RailId::VccAux),
                ExitedWithCode(1), "VCCAUX");
}

} // namespace
} // namespace uvolt

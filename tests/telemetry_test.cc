/**
 * @file
 * Tests for the telemetry layer: lock-free shard aggregation under a
 * ThreadPool, trace-span well-formedness, the Chrome trace-event JSON
 * exporter (golden file + a structural check of a real fleet trace),
 * and the central contract that enabling telemetry never changes a
 * sweep's results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/fleet.hh"
#include "harness/report.hh"
#include "util/flight_recorder.hh"
#include "util/json.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"

namespace uvolt::telemetry
{
namespace
{

/** Enable telemetry for one test; restore and wipe values on exit. */
class TelemetryOn
{
  public:
    TelemetryOn()
    {
        was_ = Telemetry::enabled();
        Registry::global().resetForTest();
        Telemetry::setEnabled(true);
    }

    ~TelemetryOn()
    {
        Telemetry::setEnabled(was_);
        Registry::global().resetForTest();
    }

  private:
    bool was_;
};

/**
 * Per-tid well-formedness: treating each span as [start, start + dur),
 * any two spans on one thread either nest or are disjoint — never
 * partially overlap. LIFO scope closing guarantees this; the check
 * catches both recording bugs and exporter reordering bugs.
 */
void
expectWellNested(const std::vector<TraceEvent> &events)
{
    // traceEvents() sorts by start time (longer span first on ties), so
    // a stack sweep per tid suffices.
    std::vector<std::vector<const TraceEvent *>> stacks;
    for (const auto &event : events) {
        if (event.tid >= stacks.size())
            stacks.resize(event.tid + 1);
        auto &stack = stacks[event.tid];
        while (!stack.empty() &&
               event.startNs >=
                   stack.back()->startNs + stack.back()->durNs)
            stack.pop_back();
        if (!stack.empty()) {
            // The open ancestor must fully contain this span.
            EXPECT_LE(stack.back()->startNs, event.startNs)
                << event.name;
            EXPECT_GE(stack.back()->startNs + stack.back()->durNs,
                      event.startNs + event.durNs)
                << event.name << " partially overlaps "
                << stack.back()->name;
        }
        stack.push_back(&event);
    }
}

TEST(TelemetryTest, DisabledByDefaultAndCostFree)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    Registry::global().resetForTest();
    Telemetry::setEnabled(false);

    auto &counter = Registry::global().counter("test.disabled.counter");
    auto &histogram =
        Registry::global().histogram("test.disabled.histogram", {1.0});
    counter.add(41);
    histogram.observe(0.5);
    {
        UVOLT_TRACE_SCOPE("test.disabled.span");
    }

    const auto snapshot = Registry::global().metrics();
    EXPECT_EQ(snapshot.counter("test.disabled.counter"), 0u);
    ASSERT_NE(snapshot.histogram("test.disabled.histogram"), nullptr);
    EXPECT_EQ(snapshot.histogram("test.disabled.histogram")->count, 0u);
    EXPECT_TRUE(Registry::global().traceEvents().empty());
}

TEST(TelemetryTest, CounterAggregationAcrossWorkers)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    constexpr int jobs = 64;
    constexpr int addsPerJob = 1000;
    auto &counter = Registry::global().counter("test.agg.counter");

    ThreadPool pool(8);
    for (int j = 0; j < jobs; ++j) {
        pool.submit([&counter] {
            for (int i = 0; i < addsPerJob; ++i)
                counter.increment();
        });
    }
    pool.wait();

    // Every relaxed shard write must survive the merge exactly once.
    EXPECT_EQ(Registry::global().metrics().counter("test.agg.counter"),
              static_cast<std::uint64_t>(jobs) * addsPerJob);
}

TEST(TelemetryTest, HistogramAggregationAcrossWorkers)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    auto &histogram = Registry::global().histogram(
        "test.agg.histogram", {1.0, 10.0, 100.0});

    constexpr int jobs = 32;
    ThreadPool pool(8);
    for (int j = 0; j < jobs; ++j) {
        pool.submit([&histogram] {
            histogram.observe(0.5);   // bucket 0
            histogram.observe(5.0);   // bucket 1
            histogram.observe(50.0);  // bucket 2
            histogram.observe(500.0); // overflow
        });
    }
    pool.wait();

    const auto snapshot = Registry::global().metrics();
    const auto *merged = snapshot.histogram("test.agg.histogram");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->count, 4u * jobs);
    ASSERT_EQ(merged->buckets.size(), 4u);
    for (std::size_t b = 0; b < 4; ++b)
        EXPECT_EQ(merged->buckets[b], static_cast<std::uint64_t>(jobs));
    EXPECT_DOUBLE_EQ(merged->sum, jobs * (0.5 + 5.0 + 50.0 + 500.0));
    EXPECT_DOUBLE_EQ(merged->mean(), 555.5 / 4.0);
}

TEST(TelemetryTest, SpansAreWellNestedAcrossWorkers)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    ThreadPool pool(8);
    for (int j = 0; j < 24; ++j) {
        pool.submit([j] {
            UVOLT_TRACE_SCOPE("outer", [&] {
                return TraceArgs{{"job", std::to_string(j)}};
            });
            for (int i = 0; i < 3; ++i) {
                UVOLT_TRACE_SCOPE("middle");
                UVOLT_TRACE_SCOPE("inner");
            }
        });
    }
    pool.wait();

    const auto events = Registry::global().traceEvents();
    // 24 outer + 24 * 3 middle + 24 * 3 inner.
    EXPECT_EQ(events.size(), 24u * 7);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].startNs, events[i].startNs);
    expectWellNested(events);
}

TEST(TelemetryTest, ChromeTraceJsonGoldenFile)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";

    // Synthetic events with fixed timestamps: the serialized document is
    // byte-stable, so compare against the exact expected text.
    std::vector<TraceEvent> events;
    TraceEvent outer;
    outer.name = "fleet.job";
    outer.startNs = 1500;
    outer.durNs = 2500500;
    outer.tid = 1;
    outer.args = {{"label", "VC707-p16_hFFFF-t50"}, {"attempt", "1"}};
    events.push_back(outer);
    TraceEvent inner;
    inner.name = "weird \"name\"\n";
    inner.startNs = 2000;
    inner.durNs = 1000;
    inner.tid = 1;
    events.push_back(inner);

    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"fleet.job\",\"cat\":\"uvolt\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":1,\"ts\":1.500,\"dur\":2500.500,"
        "\"args\":{\"label\":\"VC707-p16_hFFFF-t50\","
        "\"attempt\":\"1\"}},\n"
        "{\"name\":\"weird \\\"name\\\"\\n\",\"cat\":\"uvolt\","
        "\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2.000,"
        "\"dur\":1.000}\n"
        "]}\n";
    EXPECT_EQ(harness::chromeTraceJson(events), expected);
}

TEST(TelemetryTest, FleetTraceContainsNestedInstrumentation)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    auto result = harness::Campaign::onPlatform("ZC702")
                      .sweep(3)
                      .run();
    ASSERT_TRUE(result.ok());

    const auto events = Registry::global().traceEvents();
    std::size_t jobs = 0, levels = 0, setpoints = 0;
    for (const auto &event : events) {
        const std::string_view name = event.name;
        jobs += name == "fleet.job";
        levels += name == "sweep.level";
        setpoints += name == "pmbus.setpoint";
    }
    EXPECT_EQ(jobs, 1u);
    EXPECT_GT(levels, 0u);
    EXPECT_GT(setpoints, 0u);
    expectWellNested(events);

    // The document round-trips as JSON in spirit: balanced braces and
    // one object per recorded event.
    const std::string json = harness::chromeTraceJson(events);
    std::size_t depth = 0, objects = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        if (c == '{') {
            if (++depth == 2)
                ++objects;
        } else if (c == '}') {
            ASSERT_GT(depth, 0u);
            --depth;
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0u);
    EXPECT_GE(objects, events.size());

    // The merged metrics carry the same story as the trace.
    const auto snapshot = Registry::global().metrics();
    EXPECT_EQ(snapshot.counter("fleet.jobs"), 1u);
    EXPECT_EQ(snapshot.counter("sweep.levels"), levels);
    ASSERT_NE(snapshot.histogram("sweep.level_ms"), nullptr);
    EXPECT_EQ(snapshot.histogram("sweep.level_ms")->count, levels);
    EXPECT_GT(snapshot.counter("pmbus.txn.attempts"), 0u);
}

TEST(TelemetryTest, EnablingTelemetryDoesNotChangeSweepResults)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    const bool was = Telemetry::enabled();

    Telemetry::setEnabled(false);
    auto off = harness::Campaign::onPlatform("ZC702").sweep(3).run();
    ASSERT_TRUE(off.ok());

    Registry::global().resetForTest();
    Telemetry::setEnabled(true);
    auto on = harness::Campaign::onPlatform("ZC702").sweep(3).run();
    Telemetry::setEnabled(was);
    Registry::global().resetForTest();
    ASSERT_TRUE(on.ok());

    // Telemetry draws from no RNG stream and reorders no work: the
    // physics must be bit-identical with recording on and off.
    const harness::SweepResult &p = off.value().onlySweep();
    const harness::SweepResult &q = on.value().onlySweep();
    ASSERT_EQ(p.points.size(), q.points.size());
    for (std::size_t i = 0; i < p.points.size(); ++i) {
        EXPECT_EQ(p.points[i].vccBramMv, q.points[i].vccBramMv);
        EXPECT_EQ(p.points[i].runCounts, q.points[i].runCounts);
        EXPECT_EQ(p.points[i].medianFaults, q.points[i].medianFaults);
        EXPECT_EQ(p.points[i].faultsPerMbit, q.points[i].faultsPerMbit);
        EXPECT_EQ(p.points[i].perBramFaults, q.points[i].perBramFaults);
        EXPECT_EQ(p.points[i].oneToZeroFraction,
                  q.points[i].oneToZeroFraction);
    }
}

TEST(TelemetryTest, ResetForTestKeepsRegistrationsValid)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    auto &counter = Registry::global().counter("test.reset.counter");
    counter.add(7);
    EXPECT_EQ(Registry::global().metrics().counter("test.reset.counter"),
              7u);

    Registry::global().resetForTest();
    EXPECT_EQ(Registry::global().metrics().counter("test.reset.counter"),
              0u);

    // The cached handle survives the reset (call sites keep statics).
    counter.add(3);
    EXPECT_EQ(Registry::global().metrics().counter("test.reset.counter"),
              3u);
}

TEST(TelemetryTest, MetricsSnapshotExporters)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    Registry::global().counter("test.export.counter").add(5);
    Registry::global().gauge("test.export.gauge").set(0.75);
    Registry::global()
        .histogram("test.export.histogram", {1.0, 2.0})
        .observe(1.5);

    const auto snapshot = Registry::global().metrics();
    const std::string json = harness::metricsJson(snapshot);
    EXPECT_NE(json.find("\"test.export.counter\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"test.export.gauge\": 0.750000"),
              std::string::npos);
    EXPECT_NE(json.find("\"test.export.histogram\""), std::string::npos);

    const TextTable table = harness::metricsTable(snapshot);
    EXPECT_GE(table.rows(), 3u);
}

TEST(TelemetryTest, FleetFlowLinkageWellFormedAtAnyWorkerCount)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";

    // Each fleet job is one flow: a "fleet.submit" start on the
    // submitting thread, a queue-wait step and a "fleet.done" finish on
    // whichever worker ran it. The linkage must be closed at every
    // worker count — 0 (inline execution), 1, and a real pool — and
    // every child span's parent must itself have been recorded.
    harness::FleetPlan plan = harness::FleetPlan::crossProduct(
        {"ZC702"}, {harness::PatternSpec::allOnes(),
                    harness::PatternSpec::fixed(0x0000)},
        {50.0});
    plan.runsPerLevel = 3;

    for (std::size_t workers : {0u, 1u, 8u}) {
        TelemetryOn guard;
        harness::FleetEngine engine;
        ThreadPool pool(workers);
        ASSERT_TRUE(engine.run(plan, pool).ok())
            << "workers=" << workers;

        const auto events = Registry::global().traceEvents();
        std::set<std::uint64_t> spans;
        for (const auto &event : events) {
            if (event.spanId != 0)
                spans.insert(event.spanId);
        }
        std::map<std::uint64_t, std::array<int, 3>> flows; // s, t, f
        for (const auto &event : events) {
            if (event.parentId != 0) {
                EXPECT_TRUE(spans.count(event.parentId))
                    << event.name << " has a dangling parent at "
                    << workers << " workers";
            }
            if (event.flowId != 0 &&
                event.flowPoint != FlowPoint::none) {
                auto &counts = flows[event.flowId];
                switch (event.flowPoint) {
                  case FlowPoint::start: ++counts[0]; break;
                  case FlowPoint::step: ++counts[1]; break;
                  default: ++counts[2]; break;
                }
            }
        }
        EXPECT_EQ(flows.size(), plan.jobs.size())
            << "workers=" << workers;
        for (const auto &[flow, counts] : flows) {
            EXPECT_EQ(counts[0], 1) << "flow " << flow << " starts";
            EXPECT_EQ(counts[2], 1) << "flow " << flow << " finishes";
        }
    }
}

TEST(TelemetryTest, PrometheusExpositionGoldenFile)
{
    // A synthetic snapshot (no live registry: other suites register
    // global metrics that would bleed into the document) rendered to
    // the exact text-format bytes, cumulative buckets included.
    MetricsSnapshot snapshot;
    snapshot.counters = {{"serve.admitted", 3}};
    snapshot.gauges = {{"serve.queue_depth", 2.0}};
    HistogramSnapshot histogram;
    histogram.name = "serve.e2e_ms";
    histogram.bounds = {0.5, 1.0, 2.0};
    histogram.buckets = {1, 2, 0, 1}; // per-bucket counts + overflow
    histogram.count = 4;
    histogram.sum = 3.25;
    snapshot.histograms = {histogram};

    const std::string expected =
        "# TYPE uvolt_serve_admitted counter\n"
        "uvolt_serve_admitted 3\n"
        "# TYPE uvolt_serve_queue_depth gauge\n"
        "uvolt_serve_queue_depth 2\n"
        "# TYPE uvolt_serve_e2e_ms histogram\n"
        "uvolt_serve_e2e_ms_bucket{le=\"0.5\"} 1\n"
        "uvolt_serve_e2e_ms_bucket{le=\"1\"} 3\n"
        "uvolt_serve_e2e_ms_bucket{le=\"2\"} 3\n"
        "uvolt_serve_e2e_ms_bucket{le=\"+Inf\"} 4\n"
        "uvolt_serve_e2e_ms_sum 3.25\n"
        "uvolt_serve_e2e_ms_count 4\n";
    EXPECT_EQ(harness::prometheusText(snapshot), expected);
}

TEST(TelemetryTest, FlowRecordsBindToSliceEnds)
{
    // Flow starts/steps bind where their slice begins; the finish
    // binds at the slice END — a terminal span opens back at admission
    // time, and the arrowhead must land where the request completed.
    std::vector<TraceEvent> events;
    TraceEvent start;
    start.name = "serve.admit";
    start.startNs = 1000;
    start.tid = 1;
    start.spanId = 7;
    start.flowId = 42;
    start.flowPoint = FlowPoint::start;
    events.push_back(start);
    TraceEvent finish;
    finish.name = "serve.request";
    finish.startNs = 1000;
    finish.durNs = 5000;
    finish.tid = 2;
    finish.spanId = 8;
    finish.flowId = 42;
    finish.flowPoint = FlowPoint::finish;
    events.push_back(finish);

    const std::string json = harness::chromeTraceJson(events);
    EXPECT_NE(json.find("\"ph\":\"s\",\"id\":42,\"pid\":1,\"tid\":1,"
                        "\"ts\":1.000"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ph\":\"f\",\"id\":42,\"pid\":1,\"tid\":2,"
                        "\"ts\":6.000,\"bp\":\"e\""),
              std::string::npos)
        << json;
    // Linkage args ride on the X records as strings.
    EXPECT_NE(json.find("\"span\":\"7\",\"parent\":\"0\",\"flow\":"
                        "\"42\""),
              std::string::npos)
        << json;
}

TEST(TelemetryTest, FlightRecorderDumpSchema)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    auto &recorder = flightrec::FlightRecorder::global();
    recorder.resetForTest();

    flightrec::note(flightrec::Level::info, "test", "first", 11);
    flightrec::note(flightrec::Level::warn, "pmbus",
                    "NACK on setpoint write");
    flightrec::note(flightrec::Level::error, "serve",
                    "deadline streak at 8");
    EXPECT_EQ(recorder.recorded(), 3u);
    EXPECT_EQ(recorder.overwritten(), 0u);

    const auto dir = std::filesystem::temp_directory_path() /
                     "uvolt_blackbox_schema";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = recorder.dump("schema check", dir.string());
    ASSERT_FALSE(path.empty());
    // The reason is sanitized into the file name.
    EXPECT_EQ(path, (dir / "blackbox_schema_check.json").string());

    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    auto parsed = json::Value::parse(content.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const json::Value &root = parsed.value();
    EXPECT_EQ(root.stringOr("schema", ""), "uvolt-blackbox-v1");
    EXPECT_EQ(root.numberOr("recorded", 0), 3.0);
    EXPECT_EQ(root.numberOr("dropped", -1), 0.0);
    const json::Value *events = root.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->items().size(), 3u);
    const json::Value &first = events->items().front();
    EXPECT_EQ(first.stringOr("level", ""), "info");
    EXPECT_EQ(first.stringOr("component", ""), "test");
    EXPECT_EQ(first.stringOr("message", ""), "first");
    EXPECT_EQ(first.numberOr("request", 0), 11.0);
    EXPECT_GT(first.numberOr("seq", 0), 0.0);

    // An empty ring refuses to dump: a blank black box is noise.
    recorder.resetForTest();
    EXPECT_TRUE(recorder.dump("empty", dir.string()).empty());
}

TEST(TelemetryTest, FlightRecorderRingOverwritesOldest)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    auto &recorder = flightrec::FlightRecorder::global();
    recorder.resetForTest();

    const std::size_t capacity =
        flightrec::FlightRecorder::shardCapacity;
    for (std::size_t i = 0; i < capacity + 10; ++i)
        flightrec::note(flightrec::Level::debug, "test",
                        "event " + std::to_string(i));
    EXPECT_EQ(recorder.recorded(), capacity + 10);
    EXPECT_EQ(recorder.overwritten(), 10u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), capacity);
    // The retained window is the most recent `capacity` events, still
    // in sequence order after the wrap.
    EXPECT_EQ(events.front().seq, 11u);
    EXPECT_EQ(events.back().seq, capacity + 10);
    recorder.resetForTest();
}

} // namespace
} // namespace uvolt::telemetry

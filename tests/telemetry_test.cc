/**
 * @file
 * Tests for the telemetry layer: lock-free shard aggregation under a
 * ThreadPool, trace-span well-formedness, the Chrome trace-event JSON
 * exporter (golden file + a structural check of a real fleet trace),
 * and the central contract that enabling telemetry never changes a
 * sweep's results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/report.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"

namespace uvolt::telemetry
{
namespace
{

/** Enable telemetry for one test; restore and wipe values on exit. */
class TelemetryOn
{
  public:
    TelemetryOn()
    {
        was_ = Telemetry::enabled();
        Registry::global().resetForTest();
        Telemetry::setEnabled(true);
    }

    ~TelemetryOn()
    {
        Telemetry::setEnabled(was_);
        Registry::global().resetForTest();
    }

  private:
    bool was_;
};

/**
 * Per-tid well-formedness: treating each span as [start, start + dur),
 * any two spans on one thread either nest or are disjoint — never
 * partially overlap. LIFO scope closing guarantees this; the check
 * catches both recording bugs and exporter reordering bugs.
 */
void
expectWellNested(const std::vector<TraceEvent> &events)
{
    // traceEvents() sorts by start time (longer span first on ties), so
    // a stack sweep per tid suffices.
    std::vector<std::vector<const TraceEvent *>> stacks;
    for (const auto &event : events) {
        if (event.tid >= stacks.size())
            stacks.resize(event.tid + 1);
        auto &stack = stacks[event.tid];
        while (!stack.empty() &&
               event.startNs >=
                   stack.back()->startNs + stack.back()->durNs)
            stack.pop_back();
        if (!stack.empty()) {
            // The open ancestor must fully contain this span.
            EXPECT_LE(stack.back()->startNs, event.startNs)
                << event.name;
            EXPECT_GE(stack.back()->startNs + stack.back()->durNs,
                      event.startNs + event.durNs)
                << event.name << " partially overlaps "
                << stack.back()->name;
        }
        stack.push_back(&event);
    }
}

TEST(TelemetryTest, DisabledByDefaultAndCostFree)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    Registry::global().resetForTest();
    Telemetry::setEnabled(false);

    auto &counter = Registry::global().counter("test.disabled.counter");
    auto &histogram =
        Registry::global().histogram("test.disabled.histogram", {1.0});
    counter.add(41);
    histogram.observe(0.5);
    {
        UVOLT_TRACE_SCOPE("test.disabled.span");
    }

    const auto snapshot = Registry::global().metrics();
    EXPECT_EQ(snapshot.counter("test.disabled.counter"), 0u);
    ASSERT_NE(snapshot.histogram("test.disabled.histogram"), nullptr);
    EXPECT_EQ(snapshot.histogram("test.disabled.histogram")->count, 0u);
    EXPECT_TRUE(Registry::global().traceEvents().empty());
}

TEST(TelemetryTest, CounterAggregationAcrossWorkers)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    constexpr int jobs = 64;
    constexpr int addsPerJob = 1000;
    auto &counter = Registry::global().counter("test.agg.counter");

    ThreadPool pool(8);
    for (int j = 0; j < jobs; ++j) {
        pool.submit([&counter] {
            for (int i = 0; i < addsPerJob; ++i)
                counter.increment();
        });
    }
    pool.wait();

    // Every relaxed shard write must survive the merge exactly once.
    EXPECT_EQ(Registry::global().metrics().counter("test.agg.counter"),
              static_cast<std::uint64_t>(jobs) * addsPerJob);
}

TEST(TelemetryTest, HistogramAggregationAcrossWorkers)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    auto &histogram = Registry::global().histogram(
        "test.agg.histogram", {1.0, 10.0, 100.0});

    constexpr int jobs = 32;
    ThreadPool pool(8);
    for (int j = 0; j < jobs; ++j) {
        pool.submit([&histogram] {
            histogram.observe(0.5);   // bucket 0
            histogram.observe(5.0);   // bucket 1
            histogram.observe(50.0);  // bucket 2
            histogram.observe(500.0); // overflow
        });
    }
    pool.wait();

    const auto snapshot = Registry::global().metrics();
    const auto *merged = snapshot.histogram("test.agg.histogram");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->count, 4u * jobs);
    ASSERT_EQ(merged->buckets.size(), 4u);
    for (std::size_t b = 0; b < 4; ++b)
        EXPECT_EQ(merged->buckets[b], static_cast<std::uint64_t>(jobs));
    EXPECT_DOUBLE_EQ(merged->sum, jobs * (0.5 + 5.0 + 50.0 + 500.0));
    EXPECT_DOUBLE_EQ(merged->mean(), 555.5 / 4.0);
}

TEST(TelemetryTest, SpansAreWellNestedAcrossWorkers)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    ThreadPool pool(8);
    for (int j = 0; j < 24; ++j) {
        pool.submit([j] {
            UVOLT_TRACE_SCOPE("outer", [&] {
                return TraceArgs{{"job", std::to_string(j)}};
            });
            for (int i = 0; i < 3; ++i) {
                UVOLT_TRACE_SCOPE("middle");
                UVOLT_TRACE_SCOPE("inner");
            }
        });
    }
    pool.wait();

    const auto events = Registry::global().traceEvents();
    // 24 outer + 24 * 3 middle + 24 * 3 inner.
    EXPECT_EQ(events.size(), 24u * 7);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].startNs, events[i].startNs);
    expectWellNested(events);
}

TEST(TelemetryTest, ChromeTraceJsonGoldenFile)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";

    // Synthetic events with fixed timestamps: the serialized document is
    // byte-stable, so compare against the exact expected text.
    std::vector<TraceEvent> events;
    TraceEvent outer;
    outer.name = "fleet.job";
    outer.startNs = 1500;
    outer.durNs = 2500500;
    outer.tid = 1;
    outer.args = {{"label", "VC707-p16_hFFFF-t50"}, {"attempt", "1"}};
    events.push_back(outer);
    TraceEvent inner;
    inner.name = "weird \"name\"\n";
    inner.startNs = 2000;
    inner.durNs = 1000;
    inner.tid = 1;
    events.push_back(inner);

    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"fleet.job\",\"cat\":\"uvolt\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":1,\"ts\":1.500,\"dur\":2500.500,"
        "\"args\":{\"label\":\"VC707-p16_hFFFF-t50\","
        "\"attempt\":\"1\"}},\n"
        "{\"name\":\"weird \\\"name\\\"\\n\",\"cat\":\"uvolt\","
        "\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2.000,"
        "\"dur\":1.000}\n"
        "]}\n";
    EXPECT_EQ(harness::chromeTraceJson(events), expected);
}

TEST(TelemetryTest, FleetTraceContainsNestedInstrumentation)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    auto result = harness::Campaign::onPlatform("ZC702")
                      .sweep(3)
                      .run();
    ASSERT_TRUE(result.ok());

    const auto events = Registry::global().traceEvents();
    std::size_t jobs = 0, levels = 0, setpoints = 0;
    for (const auto &event : events) {
        const std::string_view name = event.name;
        jobs += name == "fleet.job";
        levels += name == "sweep.level";
        setpoints += name == "pmbus.setpoint";
    }
    EXPECT_EQ(jobs, 1u);
    EXPECT_GT(levels, 0u);
    EXPECT_GT(setpoints, 0u);
    expectWellNested(events);

    // The document round-trips as JSON in spirit: balanced braces and
    // one object per recorded event.
    const std::string json = harness::chromeTraceJson(events);
    std::size_t depth = 0, objects = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        if (c == '{') {
            if (++depth == 2)
                ++objects;
        } else if (c == '}') {
            ASSERT_GT(depth, 0u);
            --depth;
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0u);
    EXPECT_GE(objects, events.size());

    // The merged metrics carry the same story as the trace.
    const auto snapshot = Registry::global().metrics();
    EXPECT_EQ(snapshot.counter("fleet.jobs"), 1u);
    EXPECT_EQ(snapshot.counter("sweep.levels"), levels);
    ASSERT_NE(snapshot.histogram("sweep.level_ms"), nullptr);
    EXPECT_EQ(snapshot.histogram("sweep.level_ms")->count, levels);
    EXPECT_GT(snapshot.counter("pmbus.txn.attempts"), 0u);
}

TEST(TelemetryTest, EnablingTelemetryDoesNotChangeSweepResults)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    const bool was = Telemetry::enabled();

    Telemetry::setEnabled(false);
    auto off = harness::Campaign::onPlatform("ZC702").sweep(3).run();
    ASSERT_TRUE(off.ok());

    Registry::global().resetForTest();
    Telemetry::setEnabled(true);
    auto on = harness::Campaign::onPlatform("ZC702").sweep(3).run();
    Telemetry::setEnabled(was);
    Registry::global().resetForTest();
    ASSERT_TRUE(on.ok());

    // Telemetry draws from no RNG stream and reorders no work: the
    // physics must be bit-identical with recording on and off.
    const harness::SweepResult &p = off.value().onlySweep();
    const harness::SweepResult &q = on.value().onlySweep();
    ASSERT_EQ(p.points.size(), q.points.size());
    for (std::size_t i = 0; i < p.points.size(); ++i) {
        EXPECT_EQ(p.points[i].vccBramMv, q.points[i].vccBramMv);
        EXPECT_EQ(p.points[i].runCounts, q.points[i].runCounts);
        EXPECT_EQ(p.points[i].medianFaults, q.points[i].medianFaults);
        EXPECT_EQ(p.points[i].faultsPerMbit, q.points[i].faultsPerMbit);
        EXPECT_EQ(p.points[i].perBramFaults, q.points[i].perBramFaults);
        EXPECT_EQ(p.points[i].oneToZeroFraction,
                  q.points[i].oneToZeroFraction);
    }
}

TEST(TelemetryTest, ResetForTestKeepsRegistrationsValid)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    auto &counter = Registry::global().counter("test.reset.counter");
    counter.add(7);
    EXPECT_EQ(Registry::global().metrics().counter("test.reset.counter"),
              7u);

    Registry::global().resetForTest();
    EXPECT_EQ(Registry::global().metrics().counter("test.reset.counter"),
              0u);

    // The cached handle survives the reset (call sites keep statics).
    counter.add(3);
    EXPECT_EQ(Registry::global().metrics().counter("test.reset.counter"),
              3u);
}

TEST(TelemetryTest, MetricsSnapshotExporters)
{
    if (!Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    Registry::global().counter("test.export.counter").add(5);
    Registry::global().gauge("test.export.gauge").set(0.75);
    Registry::global()
        .histogram("test.export.histogram", {1.0, 2.0})
        .observe(1.5);

    const auto snapshot = Registry::global().metrics();
    const std::string json = harness::metricsJson(snapshot);
    EXPECT_NE(json.find("\"test.export.counter\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"test.export.gauge\": 0.750000"),
              std::string::npos);
    EXPECT_NE(json.find("\"test.export.histogram\""), std::string::npos);

    const TextTable table = harness::metricsTable(snapshot);
    EXPECT_GE(table.rows(), 3u);
}

} // namespace
} // namespace uvolt::telemetry

/**
 * @file
 * Tests for FVM persistence (fvm_io) and within-BRAM structural
 * analysis (structure): the column-clustering signature of the fault
 * model must be measurable from readback data, and disappear when the
 * model is configured IID.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "harness/experiment.hh"
#include "harness/fault_analyzer.hh"
#include "harness/fvm.hh"
#include "harness/fvm_io.hh"
#include "harness/structure.hh"
#include "pmbus/board.hh"

namespace uvolt::harness
{
namespace
{

// ---------------------------------------------------------------------
// structure analysis
// ---------------------------------------------------------------------

std::vector<FaultObservation>
readbackFaults(pmbus::Board &board)
{
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    std::vector<FaultObservation> faults;
    FaultSummary summary;
    for (std::uint32_t b = 0; b < board.device().bramCount(); ++b) {
        diffBram(board.device().bram(b), board.readBramToHost(b), b,
                 faults, summary);
    }
    board.softReset();
    return faults;
}

TEST(StructureTest, HandBuiltHistogram)
{
    std::vector<FaultObservation> faults;
    for (int i = 0; i < 30; ++i)
        faults.push_back({7, static_cast<std::uint16_t>(i), 5, true});
    for (int i = 0; i < 10; ++i)
        faults.push_back({7, static_cast<std::uint16_t>(i), 11, true});
    faults.push_back({9, 0, 0, true});

    const StructureReport report = analyzeStructure(faults);
    EXPECT_EQ(report.totalFaults, 41u);
    ASSERT_EQ(report.perBram.size(), 2u);
    const auto &bram7 = report.perBram.front();
    EXPECT_EQ(bram7.bram, 7u);
    EXPECT_EQ(bram7.faults, 40);
    EXPECT_EQ(bram7.perColumn[5], 30);
    EXPECT_EQ(bram7.perColumn[11], 10);
    EXPECT_DOUBLE_EQ(bram7.topTwoColumnShare(), 1.0);
    EXPECT_GT(bram7.columnChiSquare(), chiSquare95Df15);
    EXPECT_EQ(report.columnTotals[5], 30u);
}

TEST(StructureTest, ChipFaultsShowColumnClustering)
{
    pmbus::Board board(fpga::findPlatform("KC705-A"));
    const auto faults = readbackFaults(board);
    ASSERT_GT(faults.size(), 500u);
    const StructureReport report = analyzeStructure(faults);
    // With the default 70%-on-2-columns model, busy BRAMs concentrate
    // most faults on their top-two columns and reject uniformity.
    EXPECT_GT(report.meanTopTwoShare(16), 0.55);
    EXPECT_GT(report.medianChiSquare(16), chiSquare95Df15);
}

TEST(StructureTest, IidAblationRemovesClustering)
{
    vmodel::VariationParams iid;
    iid.weakColumnShare = 0.0;
    pmbus::Board board(fpga::findPlatform("KC705-A"), iid);
    const auto faults = readbackFaults(board);
    ASSERT_GT(faults.size(), 500u);
    const StructureReport report = analyzeStructure(faults);
    EXPECT_LT(report.meanTopTwoShare(16), 0.45);
    EXPECT_LT(report.medianChiSquare(16), chiSquare95Df15);
}

TEST(StructureTest, RenderBramMapShowsWeakColumn)
{
    std::vector<FaultObservation> faults;
    for (int row = 0; row < 200; ++row)
        faults.push_back({3, static_cast<std::uint16_t>(row), 13, true});
    const StructureReport report = analyzeStructure(faults);
    const std::string art = renderBramMap(report.perBram.front(), faults,
                                          128);
    // 8 bands of 16 chars + newlines.
    EXPECT_EQ(art.size(), 8u * 17u);
    // Column 13 is the third character from the left (cols 15, 14, 13).
    int marked = 0;
    std::size_t line_start = 0;
    while (line_start < art.size()) {
        marked += (art[line_start + 2] != '.');
        EXPECT_EQ(art[line_start + 0], '.'); // col 15 clean
        line_start += 17;
    }
    EXPECT_GE(marked, 2);
}

TEST(StructureTest, EmptyInput)
{
    const StructureReport report = analyzeStructure({});
    EXPECT_EQ(report.totalFaults, 0u);
    EXPECT_TRUE(report.perBram.empty());
    EXPECT_EQ(report.meanTopTwoShare(), 0.0);
    EXPECT_EQ(report.medianChiSquare(), 0.0);
}

// ---------------------------------------------------------------------
// FVM persistence
// ---------------------------------------------------------------------

class FvmIoTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        std::filesystem::remove_all("fvm_io_test_dir");
    }

    static Fvm
    sampleFvm(const fpga::Floorplan &plan)
    {
        std::vector<int> faults(plan.bramCount());
        for (std::uint32_t b = 0; b < plan.bramCount(); ++b)
            faults[b] = static_cast<int>((b * 7) % 23);
        return Fvm("ZC702", plan, std::move(faults));
    }
};

TEST_F(FvmIoTest, RoundTrip)
{
    const auto plan = fpga::Floorplan::columnGrid(280, 70);
    const Fvm original = sampleFvm(plan);
    const std::string path = "fvm_io_test_dir/zc702.fvm";
    ASSERT_TRUE(saveFvm(original, plan, path));

    const auto loaded = loadFvm(plan, path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->platform(), "ZC702");
    EXPECT_EQ(loaded->perBramFaults(), original.perBramFaults());
}

TEST_F(FvmIoTest, MissingFile)
{
    const auto plan = fpga::Floorplan::columnGrid(280, 70);
    EXPECT_FALSE(loadFvm(plan, "fvm_io_test_dir/nonexistent.fvm")
                     .has_value());
}

TEST_F(FvmIoTest, GeometryMismatchRejected)
{
    const auto plan = fpga::Floorplan::columnGrid(280, 70);
    const std::string path = "fvm_io_test_dir/zc702.fvm";
    ASSERT_TRUE(saveFvm(sampleFvm(plan), plan, path));
    const auto other = fpga::Floorplan::columnGrid(890, 120);
    EXPECT_FALSE(loadFvm(other, path).has_value());
}

TEST_F(FvmIoTest, CorruptFileRejected)
{
    const auto plan = fpga::Floorplan::columnGrid(280, 70);
    const std::string path = "fvm_io_test_dir/bad.fvm";
    std::filesystem::create_directories("fvm_io_test_dir");
    {
        std::ofstream out(path);
        out << "#uvolt-fvm v1 ZC702 4 70 280\n";
        out << "0,0,5\n0,0,7\n"; // duplicate site
    }
    EXPECT_FALSE(loadFvm(plan, path).has_value());

    {
        std::ofstream out(path);
        out << "not an fvm\n";
    }
    EXPECT_FALSE(loadFvm(plan, path).has_value());
}

TEST_F(FvmIoTest, TruncatedFileRejected)
{
    const auto plan = fpga::Floorplan::columnGrid(280, 70);
    const std::string path = "fvm_io_test_dir/trunc.fvm";
    ASSERT_TRUE(saveFvm(sampleFvm(plan), plan, path));
    // Chop off the last line.
    std::string content;
    {
        std::ifstream in(path);
        std::string line;
        std::vector<std::string> lines;
        while (std::getline(in, line))
            lines.push_back(line);
        lines.pop_back();
        for (const auto &kept : lines)
            content += kept + "\n";
    }
    {
        std::ofstream out(path);
        out << content;
    }
    EXPECT_FALSE(loadFvm(plan, path).has_value());
}

} // namespace
} // namespace uvolt::harness

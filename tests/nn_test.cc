/**
 * @file
 * Tests for the NN module: activations, forward pass, training on small
 * learnable problems, quantization (Fig 9 semantics), and the model zoo
 * save/load round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "data/synthetic.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "nn/quantizer.hh"
#include "nn/trainer.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace uvolt::nn
{
namespace
{

TEST(Activations, Logsig)
{
    EXPECT_FLOAT_EQ(logsig(0.0f), 0.5f);
    EXPECT_GT(logsig(10.0f), 0.9999f);
    EXPECT_LT(logsig(-10.0f), 0.0001f);
    EXPECT_NEAR(logsig(1.0f), 0.7310586f, 1e-6f);
}

TEST(Activations, SoftmaxNormalizesAndOrders)
{
    std::vector<float> logits{1.0f, 3.0f, 2.0f};
    softmaxInPlace(logits);
    float sum = 0.0f;
    for (float p : logits)
        sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(logits[1], logits[2]);
    EXPECT_GT(logits[2], logits[0]);
}

TEST(Activations, SoftmaxStableForLargeLogits)
{
    std::vector<float> logits{1000.0f, 1001.0f};
    softmaxInPlace(logits);
    EXPECT_NEAR(logits[0] + logits[1], 1.0f, 1e-6f);
    EXPECT_FALSE(std::isnan(logits[0]));
}

TEST(DenseLayerTest, ForwardMatrixVector)
{
    DenseLayer layer(2, 2);
    layer.setWeight(0, 0, 1.0f);
    layer.setWeight(0, 1, 2.0f);
    layer.setWeight(1, 0, -1.0f);
    layer.setWeight(1, 1, 0.5f);
    layer.setBias(0, 0.25f);
    layer.setBias(1, -0.25f);

    const float x[2] = {3.0f, 4.0f};
    float z[2];
    layer.forward(x, z);
    EXPECT_FLOAT_EQ(z[0], 1.0f * 3 + 2.0f * 4 + 0.25f);
    EXPECT_FLOAT_EQ(z[1], -1.0f * 3 + 0.5f * 4 - 0.25f);
}

TEST(DenseLayerTest, MaxAbsWeight)
{
    DenseLayer layer(2, 1);
    layer.setWeight(0, 0, -3.5f);
    layer.setWeight(0, 1, 2.0f);
    EXPECT_FLOAT_EQ(layer.maxAbsWeight(), 3.5f);
}

TEST(NetworkTest, TopologyAndWeightCount)
{
    Network net({784, 1024, 512, 256, 128, 10});
    EXPECT_EQ(net.layerCount(), 5);
    // Paper: ~1.5 million weights.
    EXPECT_EQ(net.totalWeights(),
              784u * 1024 + 1024u * 512 + 512u * 256 + 256u * 128 +
                  128u * 10);
    EXPECT_EQ(net.totalWeights(), 1492224u);
}

TEST(NetworkTest, InferIsDistribution)
{
    Network net({4, 8, 3});
    net.initWeights(5);
    const float x[4] = {0.1f, -0.2f, 0.3f, 0.7f};
    const auto probs = net.infer(x);
    ASSERT_EQ(probs.size(), 3u);
    float sum = 0.0f;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(NetworkTest, InitIsDeterministic)
{
    Network a({4, 8, 3}), b({4, 8, 3});
    a.initWeights(5);
    b.initWeights(5);
    EXPECT_EQ(a.layer(0).weight(3, 2), b.layer(0).weight(3, 2));
    b.initWeights(6);
    EXPECT_NE(a.layer(0).weight(3, 2), b.layer(0).weight(3, 2));
}

TEST(TrainerTest, LearnsForestLike)
{
    const data::Dataset train_set = data::makeForestLike(1500, 3);
    const data::Dataset test_set = data::makeForestLike(
        500, uvolt::combineSeeds(3, uvolt::hashSeed("held-out")));

    Network net({data::forestFeatures, 64, 32, data::forestClasses});
    TrainOptions options;
    options.epochs = 6;
    options.learningRate = 0.03;
    const TrainReport report = train(net, train_set, options);

    EXPECT_LT(report.finalTrainError, 0.25);
    EXPECT_LT(net.evaluateError(test_set), 0.30); // chance ~0.86
}

TEST(TrainerTest, DeterministicGivenSeeds)
{
    const data::Dataset train_set = data::makeForestLike(300, 3);
    Network a({data::forestFeatures, 16, data::forestClasses});
    Network b({data::forestFeatures, 16, data::forestClasses});
    TrainOptions options;
    options.epochs = 2;
    train(a, train_set, options);
    train(b, train_set, options);
    EXPECT_EQ(a.layer(0).weight(5, 7), b.layer(0).weight(5, 7));
    EXPECT_EQ(a.layer(1).bias(3), b.layer(1).bias(3));
}

TEST(TrainerTest, OutputMseRefinementGrowsWeightsNotError)
{
    const data::Dataset train_set = data::makeForestLike(1500, 3);
    const data::Dataset test_set = data::makeForestLike(
        500, uvolt::combineSeeds(3, uvolt::hashSeed("held-out")));
    Network net({data::forestFeatures, 64, 32, data::forestClasses});
    TrainOptions options;
    options.epochs = 5;
    options.learningRate = 0.03;
    train(net, train_set, options);
    const double before_error = net.evaluateError(test_set);
    const float before_max = net.layer(2).maxAbsWeight();

    OutputMseOptions refine;
    refine.epochs = 300;
    refine.learningRate = 0.02;
    const TrainReport report =
        finetuneOutputMse(net, train_set, refine);
    EXPECT_EQ(report.epochs, 300);

    // Chasing saturated logsig targets inflates the output layer...
    EXPECT_GT(net.layer(2).maxAbsWeight(), before_max * 1.5f);
    // ...without costing accuracy.
    EXPECT_LT(net.evaluateError(test_set), before_error + 0.02);
    // Hidden layers are untouched.
    Network reference({data::forestFeatures, 64, 32,
                       data::forestClasses});
    train(reference, train_set, options);
    EXPECT_EQ(net.layer(0).weight(3, 5), reference.layer(0).weight(3, 5));
}

TEST(TrainerTest, OutputMseZeroEpochsIsNoOp)
{
    const data::Dataset train_set = data::makeForestLike(200, 3);
    Network net({data::forestFeatures, 16, data::forestClasses});
    net.initWeights(3);
    const float w = net.layer(1).weight(2, 3);
    OutputMseOptions refine;
    refine.epochs = 0;
    finetuneOutputMse(net, train_set, refine);
    EXPECT_EQ(net.layer(1).weight(2, 3), w);
}

TEST(QuantizerTest, PerLayerMinimumPrecision)
{
    Network net({2, 2, 2});
    // Layer 0 weights inside (-1, 1): no digit bits.
    net.layer(0).setWeight(0, 0, 0.5f);
    net.layer(0).setWeight(1, 1, -0.75f);
    // Layer 1 has a weight of magnitude 9: needs 4 digit bits.
    net.layer(1).setWeight(0, 0, 9.0f);

    const QuantizedModel model = quantize(net);
    EXPECT_EQ(model.layers[0].format.digitBits(), 0);
    EXPECT_EQ(model.layers[1].format.digitBits(), 4);
    EXPECT_EQ(model.layers[0].format.describe(), "s1.d0.f15");
    EXPECT_EQ(model.layers[1].format.describe(), "s1.d4.f11");
}

TEST(QuantizerTest, RoundTripPreservesAccuracy)
{
    const data::Dataset train_set = data::makeForestLike(1200, 3);
    Network net({data::forestFeatures, 32, data::forestClasses});
    TrainOptions options;
    options.epochs = 4;
    train(net, train_set, options);

    // 16-bit fixed point costs almost nothing (paper: "negligible
    // accuracy loss").
    const data::Dataset test_set = data::makeForestLike(
        400, uvolt::combineSeeds(3, uvolt::hashSeed("held-out")));
    EXPECT_LT(std::abs(quantizationErrorDelta(net, test_set)), 0.01);
}

TEST(QuantizerTest, DecodedWeightsCloseToFloat)
{
    Network net({2, 1, 2});
    net.layer(0).setWeight(0, 0, 0.123f);
    net.layer(0).setWeight(0, 1, -0.456f);
    const QuantizedModel model = quantize(net);
    const Network rebuilt = model.toNetwork();
    EXPECT_NEAR(rebuilt.layer(0).weight(0, 0), 0.123f, 1e-4f);
    EXPECT_NEAR(rebuilt.layer(0).weight(0, 1), -0.456f, 1e-4f);
}

TEST(QuantizerTest, ZeroBitFractionOfTrainedNetIsHigh)
{
    const data::Dataset train_set = data::makeForestLike(1200, 3);
    Network net({data::forestFeatures, 32, data::forestClasses});
    TrainOptions options;
    options.epochs = 4;
    train(net, train_set, options);
    const QuantizedModel model = quantize(net);
    // The paper's observation: most weight bits are "0".
    EXPECT_GT(model.zeroBitFraction(), 0.55);
}

TEST(ModelZoo, SpecKeysDistinguishConfigs)
{
    ZooSpec a = paperMnistSpec();
    ZooSpec b = paperMnistSpec();
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
    b.train.epochs += 1;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    ZooSpec c = paperMnistSpec();
    c.dataSeed += 1;
    EXPECT_NE(a.cacheKey(), c.cacheKey());
}

TEST(ModelZoo, PaperSpecShapes)
{
    const ZooSpec mnist = paperMnistSpec();
    EXPECT_EQ(mnist.topology,
              (std::vector<int>{784, 1024, 512, 256, 128, 10}));
    EXPECT_EQ(paperForestSpec().topology.front(), data::forestFeatures);
    EXPECT_EQ(paperForestSpec().topology.back(), data::forestClasses);
    EXPECT_EQ(paperReutersSpec().topology.front(), data::reutersVocab);
    EXPECT_EQ(paperReutersSpec().topology.back(), data::reutersClasses);
}

TEST(ModelZoo, SaveLoadRoundTrip)
{
    Network net({4, 6, 3});
    net.initWeights(77);
    const std::string path = "test_zoo_cache/roundtrip.nnw";
    ASSERT_TRUE(saveNetwork(net, path));

    Network loaded({4, 6, 3});
    ASSERT_TRUE(loadNetwork(loaded, path));
    EXPECT_EQ(loaded.layer(0).weight(2, 1), net.layer(0).weight(2, 1));
    EXPECT_EQ(loaded.layer(1).weight(1, 5), net.layer(1).weight(1, 5));

    // Shape mismatch is rejected.
    Network wrong({4, 7, 3});
    EXPECT_FALSE(loadNetwork(wrong, path));
    EXPECT_FALSE(loadNetwork(loaded, "test_zoo_cache/nonexistent.nnw"));
    std::filesystem::remove_all("test_zoo_cache");
}

/** A mid-size net + dataset shared by the batched-engine tests. */
struct BatchedFixture
{
    Network net{{data::forestFeatures, 64, 32, data::forestClasses}};
    data::Dataset set = data::makeForestLike(337, 11); // odd size: the
                                                       // tail batch is
                                                       // always ragged
    BatchedFixture() { net.initWeights(9); }
};

TEST(BatchedEval, ForwardBatchBitIdenticalPerColumn)
{
    BatchedFixture fx;
    const DenseLayer &layer = fx.net.layer(0);
    constexpr int batch = 5;

    // Transpose 5 samples into the kernel's feature-major layout.
    std::vector<float> x(static_cast<std::size_t>(layer.inputs()) * batch);
    for (int s = 0; s < batch; ++s) {
        const auto sample = fx.set.sample(static_cast<std::size_t>(s));
        for (int i = 0; i < layer.inputs(); ++i)
            x[static_cast<std::size_t>(i) * batch +
              static_cast<std::size_t>(s)] = sample[
                static_cast<std::size_t>(i)];
    }
    std::vector<float> z(static_cast<std::size_t>(layer.outputs()) * batch);
    layer.forwardBatch(x, z, batch);

    std::vector<float> expected(static_cast<std::size_t>(layer.outputs()));
    for (int s = 0; s < batch; ++s) {
        layer.forward(fx.set.sample(static_cast<std::size_t>(s)), expected);
        for (int o = 0; o < layer.outputs(); ++o) {
            // EXPECT_EQ, not EXPECT_FLOAT_EQ: the contract is exact.
            EXPECT_EQ(z[static_cast<std::size_t>(o) * batch +
                        static_cast<std::size_t>(s)],
                      expected[static_cast<std::size_t>(o)])
                << "sample " << s << " output " << o;
        }
    }
}

TEST(BatchedEval, InferBatchBitIdenticalToInfer)
{
    BatchedFixture fx;
    constexpr int batch = 7;
    const std::size_t features = data::forestFeatures;
    const std::size_t classes = data::forestClasses;

    std::vector<float> inputs(features * batch);
    for (int s = 0; s < batch; ++s) {
        const auto sample = fx.set.sample(static_cast<std::size_t>(s));
        std::copy(sample.begin(), sample.end(),
                  inputs.begin() + static_cast<std::size_t>(s) * features);
    }
    std::vector<float> probs(classes * batch);
    fx.net.inferBatch(inputs, probs, batch);
    std::vector<int> predicted(batch);
    fx.net.classifyBatch(inputs, predicted, batch);

    for (int s = 0; s < batch; ++s) {
        const auto sample = fx.set.sample(static_cast<std::size_t>(s));
        const auto expected = fx.net.infer(sample);
        for (std::size_t c = 0; c < classes; ++c) {
            EXPECT_EQ(probs[static_cast<std::size_t>(s) * classes + c],
                      expected[c])
                << "sample " << s << " class " << c;
        }
        EXPECT_EQ(predicted[static_cast<std::size_t>(s)],
                  fx.net.classify(sample));
    }
}

TEST(BatchedEval, BitIdenticalToScalarAcrossBatchSizes)
{
    BatchedFixture fx;
    const double scalar = fx.net.evaluateErrorScalar(fx.set);
    for (const int batch :
         {1, 7, 32, static_cast<int>(fx.set.size())}) {
        EXPECT_DOUBLE_EQ(
            fx.net.evaluateError(fx.set, EvalOptions{.batch = batch}),
            scalar)
            << "batch " << batch;
    }
    // The two spellings of "whole set" and a clamping limit agree.
    EXPECT_DOUBLE_EQ(fx.net.evaluateError(fx.set, 0), scalar);
    EXPECT_DOUBLE_EQ(fx.net.evaluateError(fx.set, fx.set.size() + 999),
                     scalar);
    // A real prefix limit matches the scalar path on the same prefix.
    EXPECT_DOUBLE_EQ(fx.net.evaluateError(fx.set, 100),
                     fx.net.evaluateErrorScalar(fx.set, 100));
}

TEST(BatchedEval, BitIdenticalAtAnyWorkerCount)
{
    BatchedFixture fx;
    const double scalar = fx.net.evaluateErrorScalar(fx.set);
    for (const std::size_t workers : {0u, 1u, 8u}) {
        ThreadPool pool(workers);
        EXPECT_DOUBLE_EQ(
            fx.net.evaluateError(
                fx.set, EvalOptions{.batch = 16, .pool = &pool}),
            scalar)
            << workers << " workers";
    }
}

TEST(ModelZoo, TestSetDisjointFromTrainSet)
{
    ZooSpec spec = paperForestSpec();
    spec.trainCount = 50;
    const data::Dataset train_set = makeTrainSet(spec);
    const data::Dataset test_set = makeTestSet(spec, 50);
    int identical = 0;
    for (std::size_t i = 0; i < 50; ++i) {
        const auto a = train_set.sample(i);
        const auto b = test_set.sample(i);
        identical += std::equal(a.begin(), a.end(), b.begin());
    }
    EXPECT_EQ(identical, 0);
}

} // namespace
} // namespace uvolt::nn

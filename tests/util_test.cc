/**
 * @file
 * Unit tests for the util module: RNG, statistics, k-means, formatting,
 * tables, and the CLI parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/cli.hh"
#include "util/format.hh"
#include "util/fsio.hh"
#include "util/logging.hh"
#include "util/kmeans.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace uvolt
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 3);
}

TEST(Rng, StringSeedingIsStable)
{
    Rng a("1308-6520"), b("1308-6520"), c("604018691749-76023");
    EXPECT_EQ(a(), b());
    Rng a2("1308-6520");
    EXPECT_NE(a2(), c());
}

TEST(Rng, UniformRangeAndMean)
{
    Rng rng(99);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(3, 9);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 9u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 9);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(7);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.gaussian(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(8);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(9);
    RunningStats stats;
    for (int i = 0; i < 30000; ++i)
        stats.add(static_cast<double>(rng.poisson(3.5)));
    EXPECT_NEAR(stats.mean(), 3.5, 0.1);
    EXPECT_NEAR(stats.variance(), 3.5, 0.25);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox)
{
    Rng rng(10);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(static_cast<double>(rng.poisson(400.0)));
    EXPECT_NEAR(stats.mean(), 400.0, 2.0);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(11);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(77);
    Rng child = parent.fork();
    // The child stream must not simply replay the parent.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (parent() == child());
    EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(13);
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sorted = items;
    rng.shuffle(items);
    EXPECT_TRUE(std::is_permutation(items.begin(), items.end(),
                                    sorted.begin()));
}

TEST(SeedHelpers, CombineIsOrderSensitive)
{
    EXPECT_NE(combineSeeds(1, 2), combineSeeds(2, 1));
    EXPECT_EQ(combineSeeds(1, 2), combineSeeds(1, 2));
}

TEST(RunningStats, BasicMoments)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(stats.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(stats.maximum(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(21);
    RunningStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian();
        all.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.minimum(), all.minimum());
    EXPECT_DOUBLE_EQ(left.maximum(), all.maximum());
}

TEST(Quantile, MedianAndInterpolation)
{
    std::vector<double> odd{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(median(odd), 3.0);
    std::vector<double> even{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(median(even), 2.5);
    EXPECT_DOUBLE_EQ(quantile(even, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(even, 1.0), 4.0);
}

TEST(Quantile, EdgeCases)
{
    // Single element: every q returns it.
    std::vector<double> one{7.5};
    EXPECT_DOUBLE_EQ(quantile(one, 0.0), 7.5);
    EXPECT_DOUBLE_EQ(quantile(one, 0.5), 7.5);
    EXPECT_DOUBLE_EQ(quantile(one, 1.0), 7.5);

    // Out-of-range q clamps instead of indexing out of bounds, and
    // the extremes are the exact sample min/max (no interpolation
    // round-off from pos = q * (n - 1) landing at n - 1 - epsilon).
    std::vector<double> values{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
    EXPECT_DOUBLE_EQ(quantile(values, -3.0), 0.1);
    EXPECT_DOUBLE_EQ(quantile(values, 2.0), 0.7);

    // NaN q must not reach the index arithmetic; it clamps to 0.
    EXPECT_DOUBLE_EQ(
        quantile(values, std::numeric_limits<double>::quiet_NaN()), 0.1);
}

TEST(HistogramTest, BinningAndClamping)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(0.5);
    hist.add(9.9);
    hist.add(-3.0); // clamps to first bin
    hist.add(42.0); // clamps to last bin
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_EQ(hist.countAt(0), 2u);
    EXPECT_EQ(hist.countAt(4), 2u);
    EXPECT_DOUBLE_EQ(hist.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(hist.binHigh(1), 4.0);
}

TEST(KMeans, SeparatedClustersRecovered)
{
    std::vector<double> samples;
    Rng rng(31);
    for (int i = 0; i < 100; ++i)
        samples.push_back(rng.gaussian(0.0, 0.1));
    for (int i = 0; i < 50; ++i)
        samples.push_back(rng.gaussian(10.0, 0.1));
    for (int i = 0; i < 20; ++i)
        samples.push_back(rng.gaussian(30.0, 0.1));

    const KMeansResult result = kMeans1d(samples, 3);
    ASSERT_EQ(result.centroids.size(), 3u);
    EXPECT_NEAR(result.centroids[0], 0.0, 0.5);
    EXPECT_NEAR(result.centroids[1], 10.0, 0.5);
    EXPECT_NEAR(result.centroids[2], 30.0, 0.5);
    EXPECT_EQ(result.sizes[0], 100u);
    EXPECT_EQ(result.sizes[1], 50u);
    EXPECT_EQ(result.sizes[2], 20u);
}

TEST(KMeans, CentroidsSortedAscending)
{
    std::vector<double> samples{9.0, 1.0, 5.0, 9.1, 1.1, 5.1};
    const KMeansResult result = kMeans1d(samples, 3);
    EXPECT_LT(result.centroids[0], result.centroids[1]);
    EXPECT_LT(result.centroids[1], result.centroids[2]);
    // Assignment follows the sorted order.
    EXPECT_EQ(result.assignment[1], 0u); // sample 1.0
    EXPECT_EQ(result.assignment[2], 1u); // sample 5.0
    EXPECT_EQ(result.assignment[0], 2u); // sample 9.0
}

TEST(KMeans, SingleCluster)
{
    std::vector<double> samples{1.0, 2.0, 3.0};
    const KMeansResult result = kMeans1d(samples, 1);
    EXPECT_NEAR(result.centroids[0], 2.0, 1e-9);
    EXPECT_EQ(result.sizes[0], 3u);
}

TEST(KMeans, HeavyTailedZeroMass)
{
    // The Fig 5 shape: mostly zeros, a few large values.
    std::vector<double> samples(900, 0.0);
    for (int i = 0; i < 90; ++i)
        samples.push_back(5.0 + i * 0.01);
    for (int i = 0; i < 10; ++i)
        samples.push_back(100.0 + i);
    const KMeansResult result = kMeans1d(samples, 3);
    EXPECT_EQ(result.sizes[0], 900u);
    EXPECT_EQ(result.sizes[1], 90u);
    EXPECT_EQ(result.sizes[2], 10u);
}

TEST(Format, Placeholders)
{
    EXPECT_EQ(strFormat("a={} b={}", 1, "x"), "a=1 b=x");
    EXPECT_EQ(strFormat("{:04X}", 0xABu), "00AB");
    EXPECT_EQ(strFormat("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(strFormat("{{literal}}"), "{literal}");
    EXPECT_EQ(strFormat("no args"), "no args");
}

TEST(Table, AlignedOutputAndCsv)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);

    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1\nb,22\n");
}

TEST(Table, CsvQuoting)
{
    TextTable table({"a"});
    table.addRow({"x,y\"z"});
    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_EQ(csv.str(), "a\n\"x,y\"\"z\"\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtVolts(0.61), "0.61V");
    EXPECT_EQ(fmtPercent(0.39), "39.0%");
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
}

TEST(Cli, TypedFlagsAndDefaults)
{
    CliParser cli("test");
    cli.addString("platform", "VC707", "board");
    cli.addDouble("voltage", 0.61, "level");
    cli.addInt("runs", 100, "repetitions");
    cli.addBool("verbose", "talk more");

    const char *argv[] = {"prog", "--voltage", "0.54", "--verbose",
                          "--runs=5", "extra"};
    ASSERT_TRUE(cli.parse(6, const_cast<char **>(argv)));
    EXPECT_EQ(cli.getString("platform"), "VC707");
    EXPECT_DOUBLE_EQ(cli.getDouble("voltage"), 0.54);
    EXPECT_EQ(cli.getInt("runs"), 5);
    EXPECT_TRUE(cli.getBool("verbose"));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "extra");
}

TEST(Cli, HelpReturnsFalse)
{
    CliParser cli("test");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, const_cast<char **>(argv)));
}

TEST(Cli, TryParseReportsUnknownFlagAsError)
{
    CliParser cli("test");
    cli.addInt("runs", 100, "repetitions");
    const char *argv[] = {"prog", "--nope", "5"};
    auto parsed = cli.tryParse(3, const_cast<char **>(argv));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, Errc::unknownFlag);
    // The message names the offending flag, not just the code.
    EXPECT_NE(parsed.error().message.find("nope"), std::string::npos);
}

TEST(Cli, TryParseReportsMissingValueAsError)
{
    CliParser cli("test");
    cli.addInt("runs", 100, "repetitions");
    const char *argv[] = {"prog", "--runs"};
    auto parsed = cli.tryParse(2, const_cast<char **>(argv));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, Errc::unknownFlag);
}

TEST(Cli, TryParseSucceedsOnDeclaredFlags)
{
    CliParser cli("test");
    cli.addInt("runs", 100, "repetitions");
    const char *argv[] = {"prog", "--runs=7"};
    auto parsed = cli.tryParse(2, const_cast<char **>(argv));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value());
    EXPECT_EQ(cli.getInt("runs"), 7);
}

TEST(Fsio, AtomicWriteCreatesParentsAndLeavesNoTemp)
{
    const auto root =
        std::filesystem::temp_directory_path() / "uvolt-fsio-test";
    std::filesystem::remove_all(root);
    const std::string path = (root / "a" / "b" / "artifact.json").string();

    ASSERT_TRUE(writeFileAtomic(path, "first version").ok());
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "first version");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    // Overwrite is atomic too: the new content fully replaces the old.
    ASSERT_TRUE(writeFileAtomic(path, "second version").ok());
    std::ifstream again(path);
    content.assign((std::istreambuf_iterator<char>(again)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "second version");
    std::filesystem::remove_all(root);
}

TEST(Fsio, FailedWriteKeepsPreviousContentAndReportsCode)
{
    const auto root =
        std::filesystem::temp_directory_path() / "uvolt-fsio-fail";
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root / "occupied.tmp");
    // The temp slot is a directory: the write cannot land, and the
    // caller's chosen taxonomy code comes back.
    const std::string path = (root / "occupied").string();
    auto failed =
        writeFileAtomic(path, "doomed", Errc::badCheckpoint);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, Errc::badCheckpoint);
    EXPECT_FALSE(std::filesystem::exists(path));
    std::filesystem::remove_all(root);
}

// --- stderr rate limiting -----------------------------------------------

TEST(Logging, TokenBucketSuppressesStorms)
{
    // A fresh component name gets a fresh bucket (burst of 8, refill
    // 4/s): a back-to-back storm of 40 lines prints the burst and
    // swallows the rest. The storm runs in well under a second, so at
    // most a few refill tokens can leak back in — assert with slack.
    setLogRateLimit(true);
    const LogStats before = logStats();
    for (int i = 0; i < 40; ++i)
        warnc("ratelimit_test", "storm line {}", i);
    const LogStats after = logStats();
    EXPECT_GE(after.suppressed - before.suppressed, 25u);
    EXPECT_LE(after.emitted - before.emitted, 12u);

    // With the bucket off, every line is admitted.
    setLogRateLimit(false);
    const LogStats open = logStats();
    for (int i = 0; i < 5; ++i)
        warnc("ratelimit_test", "unthrottled line {}", i);
    const LogStats closed = logStats();
    setLogRateLimit(true);
    EXPECT_EQ(closed.suppressed - open.suppressed, 0u);
    EXPECT_EQ(closed.emitted - open.emitted, 5u);
}

} // namespace
} // namespace uvolt

/**
 * @file
 * Tests for the perf timeline: uvolt-timeline-v1 row JSON roundtrip,
 * append/load over a real file, schema rejection, malformed-line
 * errors with position, util/fsio's atomic append primitive, and the
 * property the format exists for — concurrent appenders interleave
 * whole rows, never torn ones.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/timeline.hh"
#include "util/format.hh"
#include "util/fsio.hh"

namespace uvolt::harness
{
namespace
{

std::filesystem::path
tempFile(const char *name)
{
    const auto path = std::filesystem::temp_directory_path() /
        "uvolt_timeline_test" / name;
    std::filesystem::remove_all(path.parent_path());
    return path;
}

TimelineRow
sampleRow(const std::string &run_id)
{
    TimelineRow row;
    row.tool = "ext_serve";
    row.runId = run_id;
    row.gitSha = "abc123";
    row.startedAtIso = "2026-08-09T10:00:00Z";
    row.configDigest = "deadbeefdeadbeef";
    row.workers = 4;
    row.durationMs = 1234.5;
    row.metrics = {{"e2e_p50_ms", 1.25}, {"e2e_p99_ms", 20.5},
                   {"name with \"quotes\"", -0.5}};
    row.topFrames = {{"serve.classify", 412}, {"sweep.level", 88}};
    return row;
}

TEST(TimelineRow, JsonRoundtrip)
{
    const TimelineRow row = sampleRow("run-1");
    const std::string line = row.toJsonLine();
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const auto parsed = TimelineRow::fromJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const TimelineRow &back = parsed.value();
    EXPECT_EQ(back.tool, row.tool);
    EXPECT_EQ(back.runId, row.runId);
    EXPECT_EQ(back.gitSha, row.gitSha);
    EXPECT_EQ(back.startedAtIso, row.startedAtIso);
    EXPECT_EQ(back.configDigest, row.configDigest);
    EXPECT_EQ(back.workers, row.workers);
    EXPECT_NEAR(back.durationMs, row.durationMs, 1e-3);
    ASSERT_EQ(back.metrics.size(), row.metrics.size());
    for (std::size_t i = 0; i < row.metrics.size(); ++i) {
        EXPECT_EQ(back.metrics[i].first, row.metrics[i].first);
        EXPECT_NEAR(back.metrics[i].second, row.metrics[i].second,
                    1e-6);
    }
    EXPECT_EQ(back.topFrames, row.topFrames);
}

TEST(TimelineRow, RejectsWrongSchema)
{
    EXPECT_FALSE(TimelineRow::fromJson("{\"schema\": \"nope\"}").ok());
    EXPECT_FALSE(TimelineRow::fromJson("[1, 2]").ok());
    EXPECT_FALSE(TimelineRow::fromJson("not json at all").ok());
}

TEST(Timeline, AppendThenLoadPreservesOrder)
{
    const auto path = tempFile("history.jsonl");
    const Timeline timeline(path.string());
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            timeline.append(sampleRow(strFormat("run-{}", i))).ok());

    const auto rows = timeline.load();
    ASSERT_TRUE(rows.ok()) << rows.error().message;
    ASSERT_EQ(rows.value().size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(rows.value()[i].runId, strFormat("run-{}", i));
    std::filesystem::remove_all(path.parent_path());
}

TEST(Timeline, MissingFileLoadsEmpty)
{
    const Timeline timeline(tempFile("never_written.jsonl").string());
    const auto rows = timeline.load();
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows.value().empty());
}

TEST(Timeline, MalformedLineFailsWithPosition)
{
    const auto path = tempFile("torn.jsonl");
    const Timeline timeline(path.string());
    ASSERT_TRUE(timeline.append(sampleRow("run-0")).ok());
    ASSERT_TRUE(
        appendFileRecord(path.string(), "{\"schema\": \"uvolt-t").ok());
    const auto rows = timeline.load();
    ASSERT_FALSE(rows.ok());
    EXPECT_NE(rows.error().message.find(":2:"), std::string::npos)
        << rows.error().message;
    std::filesystem::remove_all(path.parent_path());
}

TEST(Fsio, AppendFileRecordCreatesParentsAndTerminates)
{
    const auto path = tempFile("deep/nested/records.jsonl");
    ASSERT_TRUE(appendFileRecord(path.string(), "one").ok());
    ASSERT_TRUE(appendFileRecord(path.string(), "two\n").ok());
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, "one\ntwo\n"); // exactly one '\n' per record
    std::filesystem::remove_all(
        std::filesystem::temp_directory_path() / "uvolt_timeline_test");
}

TEST(Timeline, ConcurrentAppendersNeverTearRows)
{
    const auto path = tempFile("concurrent.jsonl");
    constexpr int writers = 8;
    constexpr int rows_each = 25;

    std::vector<std::thread> pool;
    for (int w = 0; w < writers; ++w) {
        pool.emplace_back([&path, w] {
            const Timeline timeline(path.string());
            for (int i = 0; i < rows_each; ++i) {
                TimelineRow row = sampleRow(
                    strFormat("writer{}-row{}", w, i));
                // Vary the payload size so torn writes would misalign.
                row.metrics.resize(1 + (w * rows_each + i) % 3);
                ASSERT_TRUE(timeline.append(row).ok());
            }
        });
    }
    for (auto &thread : pool)
        thread.join();

    // Every row parses (no torn lines) and every writer's full set
    // arrived exactly once.
    const auto rows = Timeline(path.string()).load();
    ASSERT_TRUE(rows.ok()) << rows.error().message;
    ASSERT_EQ(rows.value().size(),
              static_cast<std::size_t>(writers * rows_each));
    std::vector<int> seen(writers, 0);
    for (const auto &row : rows.value()) {
        int w = -1;
        ASSERT_EQ(std::sscanf(row.runId.c_str(), "writer%d-", &w), 1);
        ASSERT_GE(w, 0);
        ASSERT_LT(w, writers);
        ++seen[w];
    }
    for (int w = 0; w < writers; ++w)
        EXPECT_EQ(seen[w], rows_each);
    std::filesystem::remove_all(path.parent_path());
}

TEST(Timeline, NowIso8601Shape)
{
    const std::string stamp = nowIso8601();
    ASSERT_EQ(stamp.size(), 20u);
    EXPECT_EQ(stamp[4], '-');
    EXPECT_EQ(stamp[10], 'T');
    EXPECT_EQ(stamp.back(), 'Z');
}

TEST(Timeline, DefaultPathHonorsEnvironment)
{
    ::setenv("UVOLT_TIMELINE", "/tmp/elsewhere.jsonl", 1);
    EXPECT_EQ(Timeline::defaultPath(), "/tmp/elsewhere.jsonl");
    ::unsetenv("UVOLT_TIMELINE");
    EXPECT_EQ(Timeline::defaultPath(), "results/timeline.jsonl");
}

} // namespace
} // namespace uvolt::harness

/**
 * @file
 * Tests for the harsh-environment resilience layer: the error taxonomy,
 * CRC-verified retransmission, PMBus verify-after-write, spurious-crash
 * recovery in the campaign engine, serialized checkpoint resume, and
 * the hardened voltage governor.
 *
 * The central invariant under test: every maskable injected fault class
 * (frame corruption, NACKs, setpoint jitter, spurious crashes) is fully
 * absorbed by retries and recovery, so a noisy campaign's measurements
 * are bit-identical to a quiet one's.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "harness/governor.hh"
#include "pmbus/board.hh"
#include "pmbus/fault_injector.hh"
#include "pmbus/serial_link.hh"
#include "util/error.hh"

namespace uvolt::harness
{
namespace
{

using pmbus::Board;
using pmbus::FaultInjector;
using pmbus::NoiseConfig;
using pmbus::SerialLink;

TEST(ErrorTaxonomy, ExpectedHoldsValueOrError)
{
    Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);
    EXPECT_EQ(good.code(), Errc::ok);

    Expected<int> bad(makeError(Errc::linkExhausted, "gave up after {}",
                                3));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), Errc::linkExhausted);
    EXPECT_NE(bad.error().message.find("[link-exhausted]"),
              std::string::npos);
    EXPECT_NE(bad.error().message.find("gave up after 3"),
              std::string::npos);
}

TEST(ErrorTaxonomy, VoidExpectedAndNames)
{
    Expected<void> good;
    EXPECT_TRUE(good.ok());
    Expected<void> bad(makeError(Errc::badCheckpoint, "nope"));
    EXPECT_FALSE(bad.ok());
    EXPECT_STREQ(errcName(Errc::crashDetected), "crash-detected");
    EXPECT_STREQ(errcName(Errc::pmbusExhausted), "pmbus-exhausted");
    EXPECT_STREQ(errcName(Errc::recoveryExhausted), "recovery-exhausted");
}

TEST(ErrorTaxonomy, OrFatalDiesWithTaxonomyName)
{
    Expected<int> bad(makeError(Errc::verifyExhausted, "mismatch"));
    EXPECT_EXIT(std::move(bad).orFatal(), ::testing::ExitedWithCode(1),
                "verify-exhausted");
}

TEST(SerialRetry, RetransmitsUntilVerified)
{
    NoiseConfig noise;
    noise.seed = 42;
    noise.frameCorruptProb = 0.5;
    FaultInjector injector(noise);

    SerialLink link;
    link.attachInjector(&injector);
    const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};

    for (int i = 0; i < 50; ++i) {
        auto frame = link.transferReliable(payload);
        ASSERT_TRUE(frame.ok());
        EXPECT_TRUE(frame.value().verified());
        EXPECT_EQ(frame.value().payload, payload);
    }
    EXPECT_GT(link.stats().crcErrors, 0u);
    EXPECT_GT(link.stats().retransmits, 0u);
    EXPECT_GT(link.stats().backoffTicks, 0u);
    EXPECT_EQ(link.stats().exhausted, 0u);
}

TEST(SerialRetry, ExhaustionReportsLinkError)
{
    NoiseConfig noise;
    noise.frameCorruptProb = 1.0;
    FaultInjector injector(noise);

    SerialLink link;
    link.attachInjector(&injector);
    link.setMaxAttempts(3);

    auto frame = link.transferReliable({0xAA});
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.code(), Errc::linkExhausted);
    EXPECT_EQ(link.stats().exhausted, 1u);
    EXPECT_EQ(link.stats().retransmits, 2u);
}

TEST(SerialRetry, ExhaustionPropagatesThroughBoardReadback)
{
    Board board(fpga::findPlatform("ZC702"));
    NoiseConfig noise;
    noise.frameCorruptProb = 1.0;
    board.attachNoise(noise);
    board.link().setMaxAttempts(2);
    board.device().fillAll(0xFFFF);
    board.startReferenceRun();

    auto observed = board.tryReadBramToHost(0);
    ASSERT_FALSE(observed.ok());
    EXPECT_EQ(observed.code(), Errc::linkExhausted);
}

TEST(PmbusRetry, VerifyAfterWriteConvergesUnderNoise)
{
    Board board(fpga::findPlatform("ZC702"));
    NoiseConfig noise;
    noise.seed = 7;
    noise.pmbusNackProb = 0.1;
    noise.setpointJitterProb = 0.1;
    board.attachNoise(noise);
    board.setMaxPmbusAttempts(32);

    for (int mv = 1000; mv >= 560; mv -= 10) {
        ASSERT_TRUE(board.trySetVccBramMv(mv).ok());
        EXPECT_EQ(board.vccBramMv(), mv);
    }
    EXPECT_GT(board.pmbusStats().retries +
                  board.pmbusStats().verifyMismatches,
              0u);
    EXPECT_EQ(board.pmbusStats().exhausted, 0u);
}

TEST(PmbusRetry, ExhaustionReportsPmbusError)
{
    Board board(fpga::findPlatform("ZC702"));
    NoiseConfig noise;
    noise.pmbusNackProb = 1.0;
    board.attachNoise(noise);
    board.setMaxPmbusAttempts(2);

    auto result = board.trySetVccBramMv(620);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.code(), Errc::pmbusExhausted);
    EXPECT_EQ(board.pmbusStats().exhausted, 1u);
}

/** Options for a fast, fully-covered ZC702 sweep. */
SweepOptions
fastSweepOptions()
{
    SweepOptions options;
    options.runsPerLevel = 11;
    return options;
}

/** The whole point of the resilience layer, as one assertion. */
void
expectSameSweep(const SweepResult &quiet, const SweepResult &noisy)
{
    ASSERT_EQ(quiet.points.size(), noisy.points.size());
    for (std::size_t i = 0; i < quiet.points.size(); ++i) {
        const SweepPoint &a = quiet.points[i];
        const SweepPoint &b = noisy.points[i];
        EXPECT_EQ(a.vccBramMv, b.vccBramMv);
        EXPECT_EQ(a.runCounts, b.runCounts);
        EXPECT_DOUBLE_EQ(a.medianFaults, b.medianFaults);
        EXPECT_DOUBLE_EQ(a.faultsPerMbit, b.faultsPerMbit);
        EXPECT_EQ(a.perBramFaults, b.perBramFaults);
        EXPECT_DOUBLE_EQ(a.oneToZeroFraction, b.oneToZeroFraction);
    }
}

TEST(ResilientSweep, InjectedFaultsAreFullyMasked)
{
    Board quiet_board(fpga::findPlatform("ZC702"));
    const SweepResult quiet =
        runCriticalSweep(quiet_board, fastSweepOptions());
    EXPECT_EQ(quiet.resilience.crashRecoveries, 0u);
    EXPECT_EQ(quiet.resilience.linkRetransmits, 0u);
    EXPECT_EQ(quiet.resilience.pmbusRetries, 0u);

    Board noisy_board(fpga::findPlatform("ZC702"));
    NoiseConfig noise = NoiseConfig::harsh(1234, 0.02);
    noise.spuriousCrashProb = 0.5; // make the crash band bite
    noisy_board.attachNoise(noise);
    const SweepResult noisy =
        runCriticalSweep(noisy_board, fastSweepOptions());

    expectSameSweep(quiet, noisy);
    EXPECT_GT(noisy.resilience.crashRecoveries, 0u);
    EXPECT_GT(noisy.resilience.runsRetried, 0u);
    EXPECT_GT(noisy.resilience.linkRetransmits, 0u);
    EXPECT_GT(noisy.resilience.pmbusRetries, 0u);
}

TEST(ResilientSweep, DiscoverRegionsSurvivesNoise)
{
    Board quiet_board(fpga::findPlatform("ZC702"));
    const RegionResult quiet =
        discoverRegions(quiet_board, fpga::RailId::VccBram);

    Board noisy_board(fpga::findPlatform("ZC702"));
    NoiseConfig noise = NoiseConfig::harsh(99, 0.02);
    noise.spuriousCrashProb = 0.5;
    noisy_board.attachNoise(noise);
    const RegionResult noisy =
        discoverRegions(noisy_board, fpga::RailId::VccBram);

    EXPECT_EQ(quiet.vminMv, noisy.vminMv);
    EXPECT_EQ(quiet.vcrashMv, noisy.vcrashMv);
}

TEST(Checkpoint, StreamRoundTrip)
{
    Board board(fpga::findPlatform("ZC702"));
    SweepCheckpoint checkpoint;
    SweepOptions options = fastSweepOptions();
    options.maxLevels = 2;
    options.checkpoint = &checkpoint;
    const SweepResult partial = runCriticalSweep(board, options);
    EXPECT_TRUE(partial.truncated);
    ASSERT_TRUE(checkpoint.valid);

    std::stringstream stream;
    saveCheckpoint(checkpoint, stream);
    auto loaded = loadCheckpoint(stream);
    ASSERT_TRUE(loaded.ok());
    const SweepCheckpoint &restored = loaded.value();
    EXPECT_EQ(restored.platform, checkpoint.platform);
    EXPECT_EQ(restored.currentLevelMv, checkpoint.currentLevelMv);
    EXPECT_EQ(restored.runsStarted, checkpoint.runsStarted);
    EXPECT_EQ(restored.currentRunCounts, checkpoint.currentRunCounts);
    ASSERT_EQ(restored.completedPoints.size(),
              checkpoint.completedPoints.size());
    for (std::size_t i = 0; i < restored.completedPoints.size(); ++i) {
        EXPECT_EQ(restored.completedPoints[i].runCounts,
                  checkpoint.completedPoints[i].runCounts);
        EXPECT_EQ(restored.completedPoints[i].perBramFaults,
                  checkpoint.completedPoints[i].perBramFaults);
    }
}

TEST(Checkpoint, RejectsGarbage)
{
    std::stringstream stream("not a checkpoint at all");
    auto loaded = loadCheckpoint(stream);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), Errc::badCheckpoint);
}

TEST(Checkpoint, ResumedSweepEqualsUninterrupted)
{
    Board reference_board(fpga::findPlatform("ZC702"));
    const SweepResult reference =
        runCriticalSweep(reference_board, fastSweepOptions());

    // First process: measure two levels, then "die". Ship the
    // checkpoint through its serialized form, as a real resume would.
    SweepCheckpoint checkpoint;
    {
        Board board(fpga::findPlatform("ZC702"));
        SweepOptions options = fastSweepOptions();
        options.maxLevels = 2;
        options.checkpoint = &checkpoint;
        const SweepResult partial = runCriticalSweep(board, options);
        EXPECT_TRUE(partial.truncated);
        EXPECT_EQ(partial.points.size(), 2u);
    }
    std::stringstream stream;
    saveCheckpoint(checkpoint, stream);
    auto reloaded = loadCheckpoint(stream);
    ASSERT_TRUE(reloaded.ok());
    SweepCheckpoint resumed_checkpoint = reloaded.take();

    // Second process: fresh board, resume, finish the campaign.
    Board resumed_board(fpga::findPlatform("ZC702"));
    SweepOptions options = fastSweepOptions();
    options.checkpoint = &resumed_checkpoint;
    const SweepResult resumed = runCriticalSweep(resumed_board, options);
    EXPECT_FALSE(resumed.truncated);
    EXPECT_EQ(resumed.resilience.checkpointResumes, 1u);
    EXPECT_FALSE(resumed_checkpoint.valid);

    expectSameSweep(reference, resumed);
}

TEST(Checkpoint, ResumeUnderNoiseStillMatches)
{
    Board reference_board(fpga::findPlatform("ZC702"));
    const SweepResult reference =
        runCriticalSweep(reference_board, fastSweepOptions());

    NoiseConfig noise = NoiseConfig::harsh(5, 0.02);
    noise.spuriousCrashProb = 0.5;

    SweepCheckpoint checkpoint;
    {
        Board board(fpga::findPlatform("ZC702"));
        board.attachNoise(noise);
        SweepOptions options = fastSweepOptions();
        options.maxLevels = 3;
        options.checkpoint = &checkpoint;
        runCriticalSweep(board, options);
    }

    Board resumed_board(fpga::findPlatform("ZC702"));
    resumed_board.attachNoise(noise);
    SweepOptions options = fastSweepOptions();
    options.checkpoint = &checkpoint;
    const SweepResult resumed = runCriticalSweep(resumed_board, options);

    expectSameSweep(reference, resumed);
}

TEST(Checkpoint, ValidationRejectsWrongBoard)
{
    Board board(fpga::findPlatform("ZC702"));
    SweepCheckpoint checkpoint;
    SweepOptions options = fastSweepOptions();
    options.maxLevels = 1;
    options.checkpoint = &checkpoint;
    runCriticalSweep(board, options);
    ASSERT_TRUE(checkpoint.valid);

    Board other(fpga::findPlatform("VC707"));
    SweepOptions resume = fastSweepOptions();
    resume.checkpoint = &checkpoint;
    EXPECT_EXIT(runCriticalSweep(other, resume),
                ::testing::ExitedWithCode(1), "checkpoint belongs to");
}

TEST(SweepQueries, MissingLevelReportsAvailableLevels)
{
    Board board(fpga::findPlatform("ZC702"));
    SweepOptions options = fastSweepOptions();
    const SweepResult sweep = runCriticalSweep(board, options);
    // The context-rich fatal(): names the missing level AND what the
    // sweep actually measured.
    EXPECT_EXIT(sweep.at(9999), ::testing::ExitedWithCode(1),
                "no point at 9999 mV.*level");
}

/** Characterize a quiet board so a governor can pick canaries. */
Fvm
characterize(Board &board)
{
    SweepOptions options;
    options.runsPerLevel = 5;
    const SweepResult sweep = runCriticalSweep(board, options);
    return fvmFromSweep(sweep, board.device().floorplan());
}

TEST(HardenedGovernor, HoldsSetpointOnUncertainReads)
{
    Board board(fpga::findPlatform("ZC702"));
    const Fvm fvm = characterize(board);

    NoiseConfig noise;
    noise.frameCorruptProb = 1.0; // every canary read is uncertain
    board.attachNoise(noise);
    board.link().setMaxAttempts(2);

    VoltageGovernor governor(board, fvm, {});
    const int initial = governor.setpointMv();

    for (int i = 0; i < 5; ++i) {
        const GovernorStep step = governor.step();
        EXPECT_EQ(step.health, GovernorHealth::heldUncertain);
        EXPECT_EQ(step.commandedMv, initial);
        EXPECT_FALSE(step.backedOff);
        EXPECT_GT(step.linkRetries, 0u);
    }
    EXPECT_EQ(governor.setpointMv(), initial);
}

TEST(HardenedGovernor, RecoversAndBacksOffAfterSpuriousCrash)
{
    Board board(fpga::findPlatform("ZC702"));
    const Fvm fvm = characterize(board);

    NoiseConfig noise;
    noise.seed = 11;
    noise.spuriousCrashProb = 1.0;
    noise.crashBandMv = 10000; // crash anywhere, not just near Vcrash
    board.attachNoise(noise);

    VoltageGovernor governor(board, fvm, {});

    bool recovered = false;
    for (int i = 0; i < 400 && !recovered; ++i) {
        const int before = governor.setpointMv();
        const GovernorStep step = governor.step();
        if (step.health == GovernorHealth::recovered) {
            recovered = true;
            EXPECT_TRUE(step.backedOff);
            EXPECT_GE(step.commandedMv, before);
            EXPECT_TRUE(board.donePin());
        }
    }
    EXPECT_TRUE(recovered);
}

TEST(HardenedGovernor, QuietEnvironmentBehavesAsBefore)
{
    Board board(fpga::findPlatform("ZC702"));
    const Fvm fvm = characterize(board);
    VoltageGovernor governor(board, fvm, {});
    const auto trace = governor.settle();
    ASSERT_FALSE(trace.empty());
    for (const GovernorStep &step : trace)
        EXPECT_EQ(step.health, GovernorHealth::ok);
    EXPECT_GE(governor.setpointMv(),
              board.spec().calib.bramVcrashMv);
    EXPECT_LT(governor.setpointMv(), board.spec().vnomMv);
}

} // namespace
} // namespace uvolt::harness

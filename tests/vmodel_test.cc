/**
 * @file
 * Unit tests for the fault model: calibration of the vulnerability
 * field, determinism of the per-chip weak-cell map, the empirical laws
 * of Section II (exponential growth, flip polarity, SAFE-region
 * cleanliness), and the ITD temperature shift.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fpga/device.hh"
#include "fpga/platform.hh"
#include "vmodel/chip_fault_model.hh"
#include "vmodel/process_variation.hh"

namespace uvolt::vmodel
{
namespace
{

using fpga::findPlatform;
using fpga::Floorplan;
using fpga::PlatformSpec;

Floorplan
planOf(const PlatformSpec &spec)
{
    return Floorplan::columnGrid(spec.bramCount, spec.columnHeight);
}

TEST(ProcessVariation, Deterministic)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const Floorplan plan = planOf(spec);
    const auto a = bramVulnerability(spec, plan);
    const auto b = bramVulnerability(spec, plan);
    EXPECT_EQ(a, b);
}

TEST(ProcessVariation, CalibratedTotalAndZeros)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const Floorplan plan = planOf(spec);
    const auto lambda = bramVulnerability(spec, plan);
    ASSERT_EQ(lambda.size(), spec.bramCount);

    const double total =
        std::accumulate(lambda.begin(), lambda.end(), 0.0);
    EXPECT_NEAR(total, spec.expectedFaultsAtVcrash(), total * 1e-6);

    const auto zeros = static_cast<double>(
        std::count(lambda.begin(), lambda.end(), 0.0));
    EXPECT_NEAR(zeros / static_cast<double>(lambda.size()),
                spec.calib.neverFaultyFraction, 0.01);

    const double max_value =
        *std::max_element(lambda.begin(), lambda.end());
    EXPECT_LE(max_value,
              spec.calib.maxBramFaultRate * fpga::bramBits + 1e-9);
}

TEST(ProcessVariation, DieToDieMapsDiffer)
{
    // Two identical KC705 parts, different serials: the variation maps
    // must differ substantially (paper Fig 7).
    const PlatformSpec &a_spec = findPlatform("KC705-A");
    const PlatformSpec &b_spec = findPlatform("KC705-B");
    const Floorplan plan = planOf(a_spec);
    const auto a = bramVulnerability(a_spec, plan);
    const auto b = bramVulnerability(b_spec, plan);

    int both_nonzero_and_close = 0;
    int compared = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > 0.0 && b[i] > 0.0) {
            ++compared;
            if (std::abs(a[i] - b[i]) < 0.1 * std::max(a[i], b[i]))
                ++both_nonzero_and_close;
        }
    }
    ASSERT_GT(compared, 10);
    EXPECT_LT(static_cast<double>(both_nonzero_and_close) / compared, 0.5);
}

TEST(ProcessVariation, SpatialCorrelationRaisesNeighborSimilarity)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const Floorplan plan = planOf(spec);

    VariationParams with;
    const auto field = latentField(spec, plan, with);

    // Correlation between vertical neighbors should clearly exceed the
    // correlation between far-apart BRAMs.
    auto correlation = [&](int stride) {
        double num = 0.0, den_a = 0.0, den_b = 0.0;
        for (std::size_t i = 0;
             i + static_cast<std::size_t>(stride) < field.size();
             ++i) {
            const double a = field[i];
            const double b = field[i + static_cast<std::size_t>(stride)];
            num += a * b;
            den_a += a * a;
            den_b += b * b;
        }
        return num / std::sqrt(den_a * den_b);
    };
    EXPECT_GT(correlation(1), correlation(60) + 0.1);
}

TEST(ChipFaultModel, DeterministicWeakCellMap)
{
    const PlatformSpec &spec = findPlatform("ZC702");
    const Floorplan plan = planOf(spec);
    const ChipFaultModel a(spec, plan);
    const ChipFaultModel b(spec, plan);
    ASSERT_EQ(a.totalWeakCells(), b.totalWeakCells());
    for (std::uint32_t bram = 0; bram < spec.bramCount; ++bram) {
        const auto &cells_a = a.weakCells(bram);
        const auto &cells_b = b.weakCells(bram);
        ASSERT_EQ(cells_a.size(), cells_b.size());
        for (std::size_t i = 0; i < cells_a.size(); ++i) {
            EXPECT_EQ(cells_a[i].row, cells_b[i].row);
            EXPECT_EQ(cells_a[i].col, cells_b[i].col);
            EXPECT_EQ(cells_a[i].thresholdV, cells_b[i].thresholdV);
        }
    }
}

TEST(ChipFaultModel, WeakCellCountNearCalibration)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    // Poisson sampling around expected / oneToZeroShare.
    const double expected = spec.expectedFaultsAtVcrash() / oneToZeroShare;
    EXPECT_NEAR(static_cast<double>(model.totalWeakCells()), expected,
                5.0 * std::sqrt(expected));
}

TEST(ChipFaultModel, ThresholdsConfinedToCriticalRegion)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    const double v_min = spec.calib.bramVminMv / 1000.0;
    const double v_crash = spec.calib.bramVcrashMv / 1000.0;
    for (std::uint32_t bram = 0; bram < spec.bramCount; ++bram) {
        for (const WeakCell &cell : model.weakCells(bram)) {
            EXPECT_GT(cell.thresholdV, v_crash);
            EXPECT_LT(cell.thresholdV, v_min);
            EXPECT_LT(cell.row, fpga::bramRows);
            EXPECT_LT(cell.col, fpga::bramCols);
        }
    }
}

TEST(ChipFaultModel, PolarityShareMatchesPaper)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    std::uint64_t one_to_zero = 0, total = 0;
    for (std::uint32_t bram = 0; bram < spec.bramCount; ++bram) {
        for (const WeakCell &cell : model.weakCells(bram)) {
            ++total;
            one_to_zero += cell.oneToZero;
        }
    }
    ASSERT_GT(total, 1000u);
    EXPECT_NEAR(static_cast<double>(one_to_zero) /
                    static_cast<double>(total),
                oneToZeroShare, 0.005);
}

TEST(ChipFaultModel, ExponentialGrowthMatchesAnalytic)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    fpga::Device device(spec);
    device.fillAll(0xFFFF);

    for (int mv : {600, 580, 560, 540}) {
        const double v = mv / 1000.0;
        double counted = 0.0;
        for (std::uint32_t b = 0; b < spec.bramCount; ++b)
            counted += model.countBramFaults(device.bram(b), b, v);
        const double expected = model.expectedFaults(v) * oneToZeroShare;
        // Poisson-level agreement (sampled map vs analytic law).
        EXPECT_NEAR(counted, expected,
                    5.0 * std::sqrt(expected) + 8.0)
            << "at " << mv << " mV";
    }
}

TEST(ChipFaultModel, SafeRegionIsClean)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    fpga::Device device(spec);
    device.fillAll(0xFFFF);
    for (int mv : {1000, 800, 620, 610}) {
        double counted = 0.0;
        for (std::uint32_t b = 0; b < spec.bramCount; ++b)
            counted += model.countBramFaults(device.bram(b), b, mv / 1000.0);
        EXPECT_EQ(counted, 0.0) << "at " << mv << " mV";
    }
    EXPECT_EQ(model.expectedFaults(0.61), 0.0);
    EXPECT_EQ(model.expectedFaults(1.0), 0.0);
}

TEST(ChipFaultModel, PatternZeroSeesAlmostNothing)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    fpga::Device device(spec);

    device.fillAll(0xFFFF);
    double ones_faults = 0.0;
    for (std::uint32_t b = 0; b < spec.bramCount; ++b)
        ones_faults += model.countBramFaults(device.bram(b), b, 0.54);

    device.fillAll(0x0000);
    double zeros_faults = 0.0;
    for (std::uint32_t b = 0; b < spec.bramCount; ++b)
        zeros_faults += model.countBramFaults(device.bram(b), b, 0.54);

    // 0.1% of weak cells are 0->1; everything else vanishes.
    EXPECT_LT(zeros_faults, ones_faults * 0.004);
}

TEST(ChipFaultModel, ReadBramAppliesPolarity)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));

    // Find a BRAM with at least one 1->0 weak cell.
    std::uint32_t target = spec.bramCount;
    for (std::uint32_t b = 0; b < spec.bramCount; ++b) {
        for (const auto &cell : model.weakCells(b)) {
            if (cell.oneToZero) {
                target = b;
                break;
            }
        }
        if (target != spec.bramCount)
            break;
    }
    ASSERT_LT(target, spec.bramCount);

    fpga::Bram bram;
    bram.fill(0xFFFF);
    const auto observed = model.readBram(bram, target, 0.54);
    const auto &cells = model.weakCells(target);
    for (const auto &cell : cells) {
        const bool bit =
            (observed[cell.row] >> cell.col) & 1u;
        if (cell.oneToZero)
            EXPECT_FALSE(bit);
        else
            EXPECT_TRUE(bit);
    }
    // No other bit may change.
    std::uint64_t flipped = 0;
    for (int row = 0; row < fpga::bramRows; ++row) {
        flipped += static_cast<std::uint64_t>(__builtin_popcount(
            static_cast<unsigned>(observed[static_cast<std::size_t>(row)] ^
                                  0xFFFFu)));
    }
    std::uint64_t expected_flips = 0;
    for (const auto &cell : cells)
        expected_flips += cell.oneToZero;
    EXPECT_EQ(flipped, expected_flips);
}

TEST(ChipFaultModel, ParityBitsNeverLeakIntoFaultCounts)
{
    // Regression for the packed layout: planting "faults" in the parity
    // plane (2 bits/row the paper excludes) must leave every popcount-
    // based fault total and the packed readback untouched, because the
    // parity plane is structurally absent from the data fault domain.
    const PlatformSpec &spec = findPlatform("ZC702");
    const ChipFaultModel model(spec, planOf(spec));
    fpga::Device device(spec);
    device.fillAll(0xFFFF);
    const double v = spec.calib.bramVcrashMv / 1000.0;

    const std::uint64_t device_before = model.countDeviceFaults(device, v);
    const int bram_before = model.countBramFaults(device.bram(0), 0, v);
    const auto packed_before = model.readBramPacked(device.bram(0), 0, v);
    ASSERT_GT(device_before, 0u);

    for (std::uint32_t b = 0; b < spec.bramCount; ++b) {
        for (int row = 0; row < fpga::bramRows; row += 3) {
            device.bram(b).setParityBit(row, 0, true);
            device.bram(b).setParityBit(row, 1, true);
        }
    }
    EXPECT_GT(device.bram(0).parityOnes(), 0);

    EXPECT_EQ(model.countDeviceFaults(device, v), device_before);
    EXPECT_EQ(model.countBramFaults(device.bram(0), 0, v), bram_before);
    EXPECT_EQ(model.countBramFaultsReference(device.bram(0), 0, v),
              bram_before);
    EXPECT_EQ(model.readBramPacked(device.bram(0), 0, v), packed_before);
    EXPECT_EQ(fpga::popcountWords(device.bram(0).words()),
              static_cast<std::uint64_t>(fpga::bramBits));
}

TEST(ChipFaultModel, ItdReducesFaultsAtHigherTemperature)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    fpga::Device device(spec);
    device.fillAll(0xFFFF);

    auto count_at = [&](double temp_c) {
        const double v = model.effectiveVoltage(0.54, temp_c);
        double total = 0.0;
        for (std::uint32_t b = 0; b < spec.bramCount; ++b)
            total += model.countBramFaults(device.bram(b), b, v);
        return total;
    };

    const double at50 = count_at(50.0);
    const double at80 = count_at(80.0);
    ASSERT_GT(at80, 0.0);
    // Paper: >3x reduction on VC707 from 50 to 80 degC.
    EXPECT_NEAR(at50 / at80, 3.0, 0.5);
    // Monotonicity across the intermediate setpoints.
    EXPECT_GT(at50, count_at(60.0));
    EXPECT_GT(count_at(60.0), count_at(70.0));
    EXPECT_GT(count_at(70.0), at80);
}

TEST(ChipFaultModel, EffectiveVoltageComposition)
{
    const PlatformSpec &spec = findPlatform("VC707");
    const ChipFaultModel model(spec, planOf(spec));
    EXPECT_DOUBLE_EQ(model.effectiveVoltage(0.6, referenceTempC), 0.6);
    EXPECT_NEAR(model.effectiveVoltage(0.6, referenceTempC + 10.0),
                0.6 + spec.calib.itdMvPerC * 10.0 / 1000.0, 1e-12);
    EXPECT_NEAR(model.effectiveVoltage(0.6, referenceTempC, 0.001), 0.601,
                1e-12);
}

// Regression for the exact-equality boundary of the shared fault
// predicate: a weak cell whose threshold EQUALS the probe voltage is
// healthy (cellFailsAt is a strict <), and the packed ladder's
// partition_point agrees with the scalar reference walker on that exact
// boundary. Before the predicate was shared, the ladder compared the
// double probe against float thresholds and the walker promoted the
// other way, so a cell pinned exactly at the probe could count on one
// path and not the other.
TEST(ChipFaultModel, CellAtExactProbeVoltageIsHealthyOnBothPaths)
{
    const PlatformSpec &spec = findPlatform("ZC702");
    const ChipFaultModel model(spec, planOf(spec));

    // Find a weak cell and use ITS threshold as the probe voltage,
    // promoted float->double exactly as the predicate does.
    std::uint32_t bram = 0;
    float threshold = -1.0f;
    for (std::uint32_t b = 0; b < spec.bramCount && threshold < 0.0f;
         ++b) {
        for (const WeakCell &cell : model.weakCells(b)) {
            if (cell.oneToZero) {
                bram = b;
                threshold = cell.thresholdV;
                break;
            }
        }
    }
    ASSERT_GT(threshold, 0.0f) << "chip with no weak 1->0 cells";

    fpga::Bram written;
    for (int row = 0; row < fpga::bramRows; ++row)
        written.writeRow(row, 0xFFFF);

    const double exactly = static_cast<double>(threshold);
    const double just_below =
        static_cast<double>(std::nextafter(threshold, 0.0f));

    // Equality => healthy, on the packed path AND the reference walker.
    const int packed_at = model.countFaults(written.words(), bram,
                                            exactly);
    const int reference_at =
        model.countBramFaultsReference(written, bram, exactly);
    EXPECT_EQ(packed_at, reference_at);

    // One ulp below the threshold the cell fails — on both paths.
    const int packed_below = model.countFaults(written.words(), bram,
                                               just_below);
    const int reference_below =
        model.countBramFaultsReference(written, bram, just_below);
    EXPECT_EQ(packed_below, reference_below);
    EXPECT_GT(packed_below, packed_at);

    // The predicate itself pins the boundary.
    EXPECT_FALSE(cellFailsAt(threshold, exactly));
    EXPECT_TRUE(cellFailsAt(threshold, just_below));
}

} // namespace
} // namespace uvolt::vmodel

/**
 * @file
 * Tests for the multi-technology MemoryDevice abstraction: catalog
 * resolution, interface conformance of all three backends, the
 * epoch/memo isolation contract of copies and clones, the per-backend
 * fault laws (HBM whole-lane granularity, MoRS spatial clustering), the
 * backend-generic sweep with slicing/resume, and the heterogeneous
 * fleet path through Campaign/FleetEngine — bit-identical at any
 * worker count, with technology-tagged cache keys and manifests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "fpga/device.hh"
#include "fpga/fault_domain.hh"
#include "fpga/platform.hh"
#include "harness/campaign.hh"
#include "harness/fleet.hh"
#include "harness/ledger.hh"
#include "mem/bram_backend.hh"
#include "mem/catalog.hh"
#include "mem/hbm_backend.hh"
#include "mem/memory_device.hh"
#include "mem/sram_backend.hh"
#include "mem/sweep.hh"
#include "pmbus/board.hh"
#include "util/thread_pool.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::mem
{
namespace
{

/** One representative name per technology. */
const char *const kOnePerTech[] = {"VC707", "HBM2-A", "MORS-SRAM-A"};

double
mv(int millivolts)
{
    return millivolts / 1000.0;
}

// ---------------------------------------------------------------------
// Catalog resolution
// ---------------------------------------------------------------------

TEST(MemCatalog, NamesResolveToTheirTechnology)
{
    EXPECT_EQ(technologyOfName("VC707"), Technology::bram);
    EXPECT_EQ(technologyOfName("ZC702"), Technology::bram);
    EXPECT_EQ(technologyOfName("HBM2-A"), Technology::hbm);
    EXPECT_EQ(technologyOfName("HBM2-B"), Technology::hbm);
    EXPECT_EQ(technologyOfName("MORS-SRAM-A"), Technology::sram);
    EXPECT_EQ(technologyOfName("MORS-SRAM-B"), Technology::sram);
}

TEST(MemCatalog, KnownDeviceCoversEveryCatalogWithoutFatal)
{
    EXPECT_TRUE(knownDevice("VC707"));
    for (const std::string &name : extendedCatalogNames())
        EXPECT_TRUE(knownDevice(name)) << name;
    EXPECT_FALSE(knownDevice("NOT-A-DEVICE"));
}

TEST(MemCatalog, TraitsMatchTheConstructedBackend)
{
    for (const char *name : kOnePerTech) {
        const DeviceTraits traits = traitsOfName(name);
        const auto device = makeDevice(name);
        ASSERT_NE(device, nullptr) << name;
        EXPECT_EQ(traits.name, device->traits().name);
        EXPECT_EQ(traits.dieId, device->traits().dieId);
        EXPECT_EQ(traits.technology, device->technology());
        EXPECT_EQ(traits.domainCount, device->domainCount());
        EXPECT_EQ(traits.wordsPerDomain, device->traits().wordsPerDomain);
        EXPECT_EQ(traits.vminMv, device->traits().vminMv);
        EXPECT_EQ(traits.vcrashMv, device->traits().vcrashMv);
    }
}

// ---------------------------------------------------------------------
// Interface conformance, uniformly over every backend
// ---------------------------------------------------------------------

class BackendConformance : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<MemoryDevice>
    device() const
    {
        return makeDevice(GetParam());
    }
};

TEST_P(BackendConformance, FillProgramsEveryLaneOfEveryDomain)
{
    auto device = this->device();
    device->fill(0xA5A5);
    const std::uint64_t expected_word = 0xA5A5A5A5A5A5A5A5ull;
    const std::uint32_t stride = device->domainCount() / 7 + 1;
    for (std::uint32_t d = 0; d < device->domainCount(); d += stride) {
        const fpga::WordSpan words = device->domainWords(d);
        ASSERT_EQ(words.size(), device->traits().wordsPerDomain);
        for (std::uint64_t word : words)
            ASSERT_EQ(word, expected_word);
    }
}

TEST_P(BackendConformance, MutationsBumpTheContentEpoch)
{
    auto device = this->device();
    const std::uint64_t epoch0 = device->contentEpoch();
    device->fill(0xFFFF);
    const std::uint64_t epoch1 = device->contentEpoch();
    EXPECT_GT(epoch1, epoch0);
    const std::vector<std::uint64_t> plane(
        device->traits().wordsPerDomain, 0x1234u);
    device->assignDomainWords(0, plane);
    EXPECT_GT(device->contentEpoch(), epoch1);
}

TEST_P(BackendConformance, NoFaultsAtOrAboveVmin)
{
    auto device = this->device();
    device->fill(0xFFFF);
    const DeviceTraits &traits = device->traits();
    EXPECT_EQ(device->countFaults(mv(traits.vminMv)), 0u);
    EXPECT_EQ(device->countFaults(mv(traits.vnomMv)), 0u);
}

TEST_P(BackendConformance, FaultsGrowTowardVcrash)
{
    auto device = this->device();
    device->fill(0xFFFF);
    const DeviceTraits &traits = device->traits();
    std::uint64_t previous = 0;
    for (int level = traits.vminMv; level >= traits.vcrashMv;
         level -= 10) {
        const std::uint64_t faults = device->countFaults(mv(level));
        EXPECT_GE(faults, previous) << "at " << level << " mV";
        previous = faults;
    }
    EXPECT_GT(previous, 0u);
}

TEST_P(BackendConformance, PackedCountEqualsReadbackDiff)
{
    auto device = this->device();
    device->fill(0xFFFF);
    const double v = mv(device->traits().vcrashMv);
    const std::uint32_t stride = device->domainCount() / 5 + 1;
    for (std::uint32_t d = 0; d < device->domainCount(); d += stride) {
        const auto readback = device->readDomainPacked(d, v);
        EXPECT_EQ(static_cast<std::uint64_t>(
                      device->countDomainFaults(d, v)),
                  fpga::diffPopcount(device->domainWords(d), readback));
    }
}

TEST_P(BackendConformance, PowerDropsMonotonicallyWithVoltage)
{
    auto device = this->device();
    const DeviceTraits &traits = device->traits();
    double previous = device->railPowerW(mv(traits.vnomMv)) + 1e-9;
    for (int level = traits.vnomMv; level >= traits.vcrashMv;
         level -= 20) {
        const double watts = device->railPowerW(mv(level));
        EXPECT_GT(watts, 0.0);
        EXPECT_LE(watts, previous);
        previous = watts;
    }
    EXPECT_LT(previous, device->railPowerW(mv(traits.vnomMv)));
}

TEST_P(BackendConformance, SameNameSynthesizesTheSameDevice)
{
    auto a = makeDevice(GetParam());
    auto b = makeDevice(GetParam());
    a->fill(0xFFFF);
    b->fill(0xFFFF);
    for (int level = a->traits().vminMv; level >= a->traits().vcrashMv;
         level -= 25) {
        EXPECT_EQ(a->countFaults(mv(level)), b->countFaults(mv(level)))
            << "at " << level << " mV";
    }
}

// Satellite regression: copies/clones must never serve a stale memo
// after divergent writes. The memo is keyed on (epoch, voltage); if a
// clone shared its source's epoch counter, writing 0x0000 into the
// clone would not invalidate a total memoized on the source.
TEST_P(BackendConformance, CloneDivergenceNeverSharesMemoizedCounts)
{
    auto source = this->device();
    source->fill(0xFFFF);
    const double v = mv(source->traits().vcrashMv);
    const std::uint64_t all_ones = source->countFaults(v); // memoized

    auto clone = source->clone();
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(clone->countFaults(v), all_ones);

    // Diverge the clone: all-zero content kills every 1->0 fault.
    clone->fill(0x0000);
    const std::uint64_t all_zeros = clone->countFaults(v);
    EXPECT_NE(all_zeros, all_ones);

    // The source is untouched and must still see the all-ones total —
    // both from its (still valid) memo and from a fresh recount.
    EXPECT_EQ(source->countFaults(v), all_ones);
    source->fill(0xFFFF); // bump epoch, force recount
    EXPECT_EQ(source->countFaults(v), all_ones);

    // And diverging the source must not leak back into the clone.
    source->fill(0x0000);
    EXPECT_EQ(clone->countFaults(v), all_zeros);
    EXPECT_EQ(source->countFaults(v), clone->countFaults(v));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::ValuesIn(kOnePerTech),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ---------------------------------------------------------------------
// Per-backend fault-law specifics
// ---------------------------------------------------------------------

TEST(BramBackendTest, BitIdenticalToTheChipFaultModel)
{
    const fpga::PlatformSpec &spec = fpga::findPlatform("ZC702");
    auto model = pmbus::sharedChipModel(spec);
    BramBackend backend(spec, model);
    backend.fill(0xFFFF);

    fpga::Device reference(spec);
    reference.fillAll(0xFFFF);

    for (int level = spec.calib.bramVcrashMv;
         level <= spec.calib.bramVminMv; level += 20) {
        const double v = mv(level);
        std::uint64_t expected = 0;
        for (std::uint32_t b = 0; b < spec.bramCount; ++b) {
            expected += static_cast<std::uint64_t>(model->countFaults(
                reference.bram(b).words(), b, v));
        }
        EXPECT_EQ(backend.countFaults(v), expected) << level;
    }
}

TEST(HbmBackendTest, FaultsComeInWholeLaneUnits)
{
    const HbmSpec *spec = findHbm("HBM2-A");
    ASSERT_NE(spec, nullptr);
    HbmBackend backend(*spec);
    backend.fill(0xFFFF);

    // With a uniform all-ones pattern, every active 1->0 weak row
    // misreads its entire 16-bit lane — fault counts in each bank are
    // multiples of 16 from the 1->0 population (0->1 rows contribute
    // nothing against all-ones... they fault where stored bits are 0).
    const double v = mv(spec->vcrashMv);
    std::uint64_t banks_with_faults = 0;
    for (std::uint32_t bank = 0; bank < spec->bankCount(); ++bank) {
        const int faults = backend.countDomainFaults(bank, v);
        std::uint64_t expected = 0;
        for (const HbmBackend::WeakRow &row : backend.weakRows(bank)) {
            if (vmodel::cellFailsAt(row.thresholdV, v) && row.oneToZero)
                expected += 16;
        }
        EXPECT_EQ(static_cast<std::uint64_t>(faults), expected)
            << "bank " << bank;
        EXPECT_EQ(faults % 16, 0) << "bank " << bank;
        banks_with_faults += faults > 0;
    }
    EXPECT_GT(banks_with_faults, 0u);
}

TEST(HbmBackendTest, RetentionDegradesWhenHot)
{
    const HbmSpec *spec = findHbm("HBM2-A");
    ASSERT_NE(spec, nullptr);
    HbmBackend backend(*spec);
    backend.fill(0xFFFF);
    const double rail = mv(spec->vcrashMv + 40);
    // Opposite of BRAM's ITD: heating LOWERS the effective voltage.
    EXPECT_LT(backend.effectiveVoltage(rail, 80.0),
              backend.effectiveVoltage(rail, 50.0));
    EXPECT_GE(backend.countFaults(backend.effectiveVoltage(rail, 80.0)),
              backend.countFaults(backend.effectiveVoltage(rail, 50.0)));
}

TEST(SramBackendTest, WeakCellsClusterOnRowsAndColumns)
{
    const SramSpec *spec = findSram("MORS-SRAM-A");
    ASSERT_NE(spec, nullptr);
    SramMorsBackend backend(*spec);

    // MoRS statistics: across the whole chip, the configured shares of
    // weak cells must land on a handful of weak rows / columns. With
    // weakRowsPerArray = 4 of 512 rows, a uniform model would put under
    // 1% of cells on the top-4 rows; the MoRS sampler puts ~35% there.
    std::uint64_t total = 0, on_top_rows = 0, on_top_cols = 0;
    for (std::uint32_t array = 0; array < spec->arrayCount; ++array) {
        std::map<std::uint32_t, std::uint64_t> by_row;
        std::map<std::uint32_t, std::uint64_t> by_col;
        for (const SramMorsBackend::WeakCell &cell :
             backend.weakCells(array)) {
            ++by_row[cell.row];
            ++by_col[cell.col];
            ++total;
        }
        std::vector<std::uint64_t> rows, cols;
        for (const auto &[row, count] : by_row)
            rows.push_back(count);
        for (const auto &[col, count] : by_col)
            cols.push_back(count);
        std::sort(rows.rbegin(), rows.rend());
        std::sort(cols.rbegin(), cols.rend());
        for (std::size_t i = 0;
             i < std::min<std::size_t>(rows.size(),
                                       spec->weakRowsPerArray);
             ++i)
            on_top_rows += rows[i];
        for (std::size_t i = 0;
             i < std::min<std::size_t>(cols.size(),
                                       spec->weakColsPerArray);
             ++i)
            on_top_cols += cols[i];
    }
    ASSERT_GT(total, 0u);
    const double row_share = static_cast<double>(on_top_rows) / total;
    const double col_share = static_cast<double>(on_top_cols) / total;
    EXPECT_GT(row_share, spec->weakRowShare * 0.7);
    EXPECT_GT(col_share, spec->weakColShare * 0.7);
}

TEST(SramBackendTest, BothPolaritiesFault)
{
    const SramSpec *spec = findSram("MORS-SRAM-A");
    ASSERT_NE(spec, nullptr);
    SramMorsBackend backend(*spec);
    const double v = mv(spec->vcrashMv);

    backend.fill(0xFFFF);
    const std::uint64_t one_to_zero = backend.countFaults(v);
    backend.fill(0x0000);
    const std::uint64_t zero_to_one = backend.countFaults(v);
    // 6T cells are not 99.9% single-polarity like BRAM: a 70/30 split
    // means both directions must be visible at Vcrash.
    EXPECT_GT(one_to_zero, 0u);
    EXPECT_GT(zero_to_one, 0u);
    EXPECT_GT(one_to_zero, zero_to_one);
}

// Satellite regression: a weak element whose threshold EQUALS the probe
// voltage is healthy (cellFailsAt is a strict <), and the packed ladder
// and the scalar reference walker agree on that boundary exactly.
TEST(BackendBoundary, ThresholdEqualToProbeVoltageIsHealthy)
{
    for (const char *name : {"HBM2-A", "MORS-SRAM-A"}) {
        auto device = makeDevice(name);
        device->fill(0xFFFF);

        // The most-marginal element is pinned to the cap threshold
        // (Vmin - 2 mV, in float) at construction; probing exactly
        // there must see it healthy, and one ulp below must see at
        // least one fault.
        const double probe_hi = mv(device->traits().vminMv);
        const float max_threshold =
            static_cast<float>(mv(device->traits().vminMv) - 0.002);

        std::uint64_t at_cap = 0, below_cap = 0, at_cap_ref = 0;
        const double exactly = static_cast<double>(max_threshold);
        const double just_below =
            static_cast<double>(std::nextafter(max_threshold, 0.0f));
        // Probe under both uniform patterns: the pinned element may be
        // of either polarity, and each polarity only faults against
        // the pattern storing the bit value it flips.
        for (const std::uint16_t pattern : {0xFFFF, 0x0000}) {
            device->fill(pattern);
            for (std::uint32_t d = 0; d < device->domainCount(); ++d) {
                at_cap += static_cast<std::uint64_t>(
                    device->countDomainFaults(d, exactly));
                at_cap_ref += static_cast<std::uint64_t>(
                    device->countDomainFaultsReference(d, exactly));
                below_cap += static_cast<std::uint64_t>(
                    device->countDomainFaults(d, just_below));
            }
        }
        EXPECT_EQ(at_cap, 0u) << name << ": equality must be healthy";
        EXPECT_EQ(at_cap_ref, at_cap) << name;
        EXPECT_GE(below_cap, 1u)
            << name << ": the pinned marginal element must fail one "
                       "ulp below its threshold";
        EXPECT_EQ(device->countFaults(probe_hi), 0u) << name;
    }
}

// ---------------------------------------------------------------------
// Backend-generic sweep: envelope, slicing, resume
// ---------------------------------------------------------------------

TEST(MemSweepTest, CoversVminToVcrashAndEndsFaulty)
{
    auto device = makeDevice("HBM2-A");
    device->fill(0xFFFF);
    MemSweepOptions options;
    options.runsPerLevel = 5;
    options.seed = 42;
    const MemSweepResult sweep = runMemSweep(*device, options);
    EXPECT_EQ(sweep.device, "HBM2-A");
    EXPECT_EQ(sweep.technology, "hbm");
    EXPECT_FALSE(sweep.truncated);
    ASSERT_FALSE(sweep.points.empty());
    EXPECT_GT(sweep.points.front().railMv, device->traits().vminMv);
    EXPECT_EQ(sweep.points.back().railMv, device->traits().vcrashMv);
    EXPECT_GT(sweep.points.back().medianFaults, 0u);
    // Descending rail order, power falling with it.
    for (std::size_t i = 1; i < sweep.points.size(); ++i) {
        EXPECT_LT(sweep.points[i].railMv, sweep.points[i - 1].railMv);
        EXPECT_LT(sweep.points[i].railPowerW,
                  sweep.points[i - 1].railPowerW);
    }
}

TEST(MemSweepTest, SlicedSweepIsBitIdenticalToTheStraightRun)
{
    auto device = makeDevice("MORS-SRAM-A");
    device->fill(0xFFFF);
    MemSweepOptions options;
    options.runsPerLevel = 7;
    options.seed = 7;
    options.collectPerDomain = true;
    const MemSweepResult whole = runMemSweep(*device, options);

    std::vector<MemSweepPoint> sliced;
    std::optional<int> resume;
    for (;;) {
        MemSweepOptions slice = options;
        slice.maxLevels = 3;
        slice.resumeFromMv = resume;
        const MemSweepResult part = runMemSweep(*device, slice);
        sliced.insert(sliced.end(), part.points.begin(),
                      part.points.end());
        if (!part.truncated)
            break;
        resume = sliced.back().railMv;
    }
    ASSERT_EQ(sliced.size(), whole.points.size());
    for (std::size_t i = 0; i < sliced.size(); ++i) {
        EXPECT_EQ(sliced[i].railMv, whole.points[i].railMv);
        EXPECT_EQ(sliced[i].runCounts, whole.points[i].runCounts);
        EXPECT_EQ(sliced[i].medianFaults, whole.points[i].medianFaults);
        EXPECT_EQ(sliced[i].perDomainFaults,
                  whole.points[i].perDomainFaults);
    }
}

// ---------------------------------------------------------------------
// Heterogeneous fleet through Campaign/FleetEngine
// ---------------------------------------------------------------------

class MixedFleetDeterminism
    : public ::testing::TestWithParam<std::size_t> // workers
{
};

TEST_P(MixedFleetDeterminism, MixedFleetIsBitIdenticalAcrossWorkers)
{
    const auto campaign =
        harness::Campaign::onDevices({"ZC702", "HBM2-A", "MORS-SRAM-A"})
            .withPattern(harness::PatternSpec::allOnes())
            .sweep(5)
            .ledgerUnder("");

    const auto serial = campaign.run();
    ASSERT_TRUE(serial.ok()) << serial.error().message;

    ThreadPool pool(GetParam());
    const auto parallel = campaign.run(pool);
    ASSERT_TRUE(parallel.ok()) << parallel.error().message;

    const harness::FleetResult &a = serial.value();
    const harness::FleetResult &b = parallel.value();
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        const harness::SweepResult &p = a.jobs[i].sweep;
        const harness::SweepResult &q = b.jobs[i].sweep;
        EXPECT_EQ(p.platform, q.platform);
        ASSERT_EQ(p.points.size(), q.points.size());
        for (std::size_t k = 0; k < p.points.size(); ++k) {
            EXPECT_EQ(p.points[k].vccBramMv, q.points[k].vccBramMv);
            EXPECT_EQ(p.points[k].runCounts, q.points[k].runCounts);
            EXPECT_EQ(p.points[k].medianFaults,
                      q.points[k].medianFaults);
            EXPECT_EQ(p.points[k].perBramFaults,
                      q.points[k].perBramFaults);
        }
    }
    ASSERT_EQ(a.dies.size(), 3u);
    ASSERT_EQ(b.dies.size(), 3u);
    std::set<std::string> technologies;
    for (std::size_t i = 0; i < a.dies.size(); ++i) {
        EXPECT_EQ(a.dies[i].technology, b.dies[i].technology);
        EXPECT_EQ(a.dies[i].faultsPerMbitAtVcrash,
                  b.dies[i].faultsPerMbitAtVcrash);
        technologies.insert(a.dies[i].technology);
    }
    EXPECT_EQ(technologies,
              (std::set<std::string>{"bram", "hbm", "sram"}));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MixedFleetDeterminism,
                         ::testing::Values(0u, 1u, 8u));

TEST(MixedFleetTest, NoiseInjectionOnNonBramJobsDies)
{
    const pmbus::NoiseConfig noise = pmbus::NoiseConfig::harsh(1, 0.05);
    const auto campaign = harness::Campaign::onDevices({"HBM2-A"})
                              .withNoise(noise)
                              .sweep(3)
                              .ledgerUnder("");
    EXPECT_DEATH(
        {
            auto result = campaign.run();
            (void)result;
        },
        "BRAM-only");
}

// ---------------------------------------------------------------------
// Cache keys and manifest tags
// ---------------------------------------------------------------------

TEST(FvmCacheKeys, BramKeysKeepTheLegacyUntaggedFormat)
{
    const fpga::PlatformSpec &spec = fpga::findPlatform("VC707");
    const auto pattern = harness::PatternSpec::allOnes();
    EXPECT_EQ(harness::FvmCache::keyForDevice(traitsOfName("VC707"),
                                              pattern, 100),
              harness::FvmCache::keyFor(spec, pattern, 100));
}

TEST(FvmCacheKeys, NonBramKeysAreTechnologyTagged)
{
    const auto pattern = harness::PatternSpec::allOnes();
    const std::string hbm_key = harness::FvmCache::keyForDevice(
        traitsOfName("HBM2-A"), pattern, 50);
    const std::string sram_key = harness::FvmCache::keyForDevice(
        traitsOfName("MORS-SRAM-A"), pattern, 50);
    EXPECT_EQ(hbm_key.rfind("hbm-", 0), 0u) << hbm_key;
    EXPECT_EQ(sram_key.rfind("sram-", 0), 0u) << sram_key;
    EXPECT_NE(hbm_key, sram_key);
}

TEST(LedgerBackends, ManifestRoundTripsPerJobBackendTags)
{
    harness::RunManifest manifest;
    manifest.tool = "membackend_test";
    manifest.runId = "test-run";
    manifest.jobLabels = {"ZC702-ones-50C", "HBM2-A-ones-50C",
                          "MORS-SRAM-A-ones-50C"};
    manifest.noiseSeeds = {0, 0, 0};
    manifest.backends = {"bram", "hbm", "sram"};

    const auto parsed = harness::RunManifest::fromJson(manifest.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value().backends, manifest.backends);
}

TEST(LedgerBackends, ManifestsWithoutBackendFieldReadAsBram)
{
    harness::RunManifest manifest;
    manifest.tool = "membackend_test";
    manifest.runId = "legacy-run";
    manifest.jobLabels = {"VC707-ones-50C"};
    manifest.noiseSeeds = {7};
    std::string text = manifest.toJson();
    const auto pos = text.find(", \"backend\": \"bram\"");
    ASSERT_NE(pos, std::string::npos);
    text.erase(pos, std::string(", \"backend\": \"bram\"").size());

    const auto parsed = harness::RunManifest::fromJson(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    ASSERT_EQ(parsed.value().backends.size(), 1u);
    EXPECT_EQ(parsed.value().backends[0], "bram");
}

TEST(MixedFleetTest, FleetRecordsBackendTagsInTheManifest)
{
    const auto dir = std::filesystem::temp_directory_path() /
        "uvolt_membackend_ledger";
    std::filesystem::remove_all(dir);
    const auto result =
        harness::Campaign::onDevices({"ZC702", "HBM2-A"})
            .withPattern(harness::PatternSpec::allOnes())
            .sweep(3)
            .ledgerUnder(dir.string())
            .run();
    ASSERT_TRUE(result.ok()) << result.error().message;

    const auto manifest = harness::RunManifest::load(
        harness::Ledger(dir.string()).latestPath());
    ASSERT_TRUE(manifest.ok()) << manifest.error().message;
    ASSERT_EQ(manifest.value().backends.size(), 2u);
    EXPECT_EQ(manifest.value().backends[0], "bram");
    EXPECT_EQ(manifest.value().backends[1], "hbm");
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace uvolt::mem

/**
 * @file
 * Tests for the observability exporters and the provenance plumbing
 * underneath them: CSV quoting, JSON string escaping (through the
 * repo's own parser), histogram quantile interpolation and its
 * surfacing in the report JSON, Chrome-trace thread_name metadata,
 * the JSON parser's edge cases, and the run-provenance ledger
 * (manifest roundtrip, digest stability, and the Campaign end-to-end
 * flow leaving a loadable run_manifest.json).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/ledger.hh"
#include "harness/report.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"

namespace uvolt::harness
{
namespace
{

/** Fresh scratch directory under the system temp root. */
std::string
scratchDir(const std::string &name)
{
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path.string();
}

// --- CSV and JSON escaping ----------------------------------------------

TEST(CsvEscaping, QuotesCommasQuotesAndNewlines)
{
    TextTable table({"name", "value"});
    table.addRow({"plain", "1"});
    table.addRow({"a,b", "he said \"hi\"\nbye"});
    std::ostringstream out;
    table.printCsv(out);
    EXPECT_EQ(out.str(),
              "name,value\n"
              "plain,1\n"
              "\"a,b\",\"he said \"\"hi\"\"\nbye\"\n");
}

TEST(JsonEscaping, ControlAndQuoteCharacters)
{
    EXPECT_EQ(json::escaped("plain"), "plain");
    EXPECT_EQ(json::escaped("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json::escaped("line1\nline2\t!"), "line1\\nline2\\t!");
    EXPECT_EQ(json::escaped(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscaping, MetricsJsonSurvivesHostileNames)
{
    telemetry::MetricsSnapshot snapshot;
    snapshot.counters.emplace_back("weird \"name\"\\path\n", 7);
    snapshot.gauges.emplace_back("gauge,with\tcontrol", 1.5);
    const auto doc = json::Value::parse(metricsJson(snapshot));
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const json::Value &counters = doc.value().at("counters");
    ASSERT_EQ(counters.members().size(), 1u);
    EXPECT_EQ(counters.members()[0].first, "weird \"name\"\\path\n");
    EXPECT_DOUBLE_EQ(counters.members()[0].second.number(), 7.0);
}

// --- histogram quantiles ------------------------------------------------

telemetry::HistogramSnapshot
flatHistogram()
{
    telemetry::HistogramSnapshot h;
    h.name = "t";
    h.bounds = {10.0, 20.0, 30.0};
    h.buckets = {2, 2, 2, 0}; // bounds + overflow
    h.count = 6;
    h.sum = 90.0;
    return h;
}

TEST(HistogramQuantile, InterpolatesWithinBuckets)
{
    const telemetry::HistogramSnapshot h = flatHistogram();
    // rank 3 lands mid-way through the (10, 20] bucket.
    EXPECT_NEAR(h.p50(), 15.0, 1e-9);
    // rank 5.7 lands 85 % through the (20, 30] bucket.
    EXPECT_NEAR(h.p95(), 28.5, 1e-9);
    EXPECT_NEAR(h.p99(), 29.7, 1e-9);
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZero)
{
    telemetry::HistogramSnapshot h = flatHistogram();
    h.buckets = {4, 0, 0, 0};
    h.count = 4;
    EXPECT_NEAR(h.p50(), 5.0, 1e-9);
}

TEST(HistogramQuantile, OverflowClampsToLastBound)
{
    telemetry::HistogramSnapshot h = flatHistogram();
    h.buckets = {0, 0, 0, 5};
    h.count = 5;
    EXPECT_DOUBLE_EQ(h.p50(), 30.0);
    EXPECT_DOUBLE_EQ(h.p99(), 30.0);
}

TEST(HistogramQuantile, EmptyHistogramIsZero)
{
    telemetry::HistogramSnapshot h;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, SkipsEmptyLeadingBuckets)
{
    telemetry::HistogramSnapshot h = flatHistogram();
    h.buckets = {0, 0, 4, 0}; // all samples in (20, 30]
    h.count = 4;
    // q=0 is the low edge of the first bucket that actually holds
    // samples, not a stale bound from an empty leading bucket.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 20.0);
    EXPECT_NEAR(h.p50(), 25.0, 1e-9);
    // q=1 is the exact top of the populated range.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
}

TEST(HistogramQuantile, ClampsOutOfRangeAndNanQ)
{
    const telemetry::HistogramSnapshot h = flatHistogram();
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
    EXPECT_DOUBLE_EQ(
        h.quantile(std::numeric_limits<double>::quiet_NaN()),
        h.quantile(0.0));
}

TEST(HistogramQuantile, SurfacesInReportJsonAndTable)
{
    telemetry::MetricsSnapshot snapshot;
    snapshot.histograms.push_back(flatHistogram());
    const auto doc = json::Value::parse(metricsJson(snapshot));
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const json::Value &h = doc.value().at("histograms").at("t");
    EXPECT_NEAR(h.numberOr("p50", 0.0), 15.0, 1e-6);
    EXPECT_NEAR(h.numberOr("p95", 0.0), 28.5, 1e-6);
    EXPECT_NEAR(h.numberOr("p99", 0.0), 29.7, 1e-6);

    std::ostringstream table;
    metricsTable(snapshot).print(table);
    EXPECT_NE(table.str().find("p95=28.5"), std::string::npos)
        << table.str();
}

// --- Chrome trace metadata ----------------------------------------------

TEST(ChromeTrace, EmitsProcessAndThreadNameMetadata)
{
    telemetry::TraceEvent event;
    event.name = "job";
    event.startNs = 1000;
    event.durNs = 500;
    event.tid = 3;
    const std::string trace =
        chromeTraceJson({event}, {{3, "fleet-worker-3"}});

    const auto doc = json::Value::parse(trace);
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const auto &events = doc.value().at("traceEvents").items();
    ASSERT_EQ(events.size(), 3u); // process_name, thread_name, span
    EXPECT_EQ(events[0].stringOr("name", ""), "process_name");
    EXPECT_EQ(events[0].stringOr("ph", ""), "M");
    EXPECT_EQ(events[1].stringOr("name", ""), "thread_name");
    EXPECT_DOUBLE_EQ(events[1].numberOr("tid", 0.0), 3.0);
    EXPECT_EQ(events[1].at("args").stringOr("name", ""),
              "fleet-worker-3");
    EXPECT_EQ(events[2].stringOr("ph", ""), "X");
}

TEST(ChromeTrace, NoMetadataWithoutThreadNames)
{
    const std::string trace = chromeTraceJson({});
    EXPECT_EQ(trace.find("thread_name"), std::string::npos);
    const auto doc = json::Value::parse(trace);
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    EXPECT_TRUE(doc.value().at("traceEvents").items().empty());
}

TEST(ChromeTrace, PoolWorkersNameThemselves)
{
    if (!telemetry::Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    bool done = false;
    {
        ThreadPool pool(1, "report-test-pool");
        pool.submit([&] { done = true; });
        pool.wait();
    }
    EXPECT_TRUE(done);
    bool found = false;
    for (const auto &[tid, name] :
         telemetry::Registry::global().threadNames()) {
        (void)tid;
        if (name == "report-test-pool-0")
            found = true;
    }
    EXPECT_TRUE(found);
}

// --- JSON parser edge cases ---------------------------------------------

TEST(JsonParser, ParsesTheCommonShapes)
{
    const auto doc = json::Value::parse(
        "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": null, "
        "\"d\": [true, false]}, \"s\": \"q\\\"\\\\\\n\\u00e9\"}");
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const json::Value &root = doc.value();
    const auto &a = root.at("a").items();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a[0].number(), 1.0);
    EXPECT_DOUBLE_EQ(a[1].number(), 2.5);
    EXPECT_DOUBLE_EQ(a[2].number(), -300.0);
    EXPECT_TRUE(root.at("b").at("c").isNull());
    EXPECT_TRUE(root.at("b").at("d").items()[0].boolean());
    EXPECT_FALSE(root.at("b").at("d").items()[1].boolean());
    EXPECT_EQ(root.at("s").string(), "q\"\\\n\xe9");
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    EXPECT_FALSE(json::Value::parse("").ok());
    EXPECT_FALSE(json::Value::parse("{").ok());
    EXPECT_FALSE(json::Value::parse("[1, 2").ok());
    EXPECT_FALSE(json::Value::parse("nul").ok());
    EXPECT_FALSE(json::Value::parse("{} trailing").ok());
    EXPECT_FALSE(json::Value::parse("{\"a\" 1}").ok());
    EXPECT_FALSE(json::Value::parse("\"unterminated").ok());
    const auto err = json::Value::parse("{\n\"a\": nope\n}");
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.error().code, Errc::corruptCache);
    EXPECT_NE(err.error().message.find("line 2"), std::string::npos)
        << err.error().message;
}

TEST(JsonParser, TypedLookupsFallBack)
{
    const auto doc =
        json::Value::parse("{\"n\": 4, \"s\": \"x\"}");
    ASSERT_TRUE(doc.ok());
    const json::Value &root = doc.value();
    EXPECT_DOUBLE_EQ(root.numberOr("n", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(root.numberOr("missing", -1.0), -1.0);
    EXPECT_EQ(root.stringOr("s", "d"), "x");
    EXPECT_EQ(root.stringOr("missing", "d"), "d");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonParser, MissingFileIsCacheMiss)
{
    const auto doc = json::Value::parseFile("/nonexistent/x.json");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.error().code, Errc::cacheMiss);
}

// --- the run-provenance ledger ------------------------------------------

RunManifest
sampleManifest()
{
    RunManifest manifest;
    manifest.runId = "deadbeef-123456";
    manifest.gitSha = "abc1234";
    manifest.startedAtIso = "2026-08-05T12:00:00Z";
    manifest.configDigest = configDigest("sample");
    manifest.jobLabels = {"VC707-p16_hFFFF-t50", "ZC702-p16_h0000-t50"};
    manifest.noiseSeeds = {0, 42};
    manifest.runsPerLevel = 15;
    manifest.stepMv = 10;
    manifest.collectPerBram = false;
    manifest.discoverRegions = true;
    manifest.maxAttemptsPerJob = 3;
    manifest.workers = 8;
    manifest.durationMs = 123.5;
    manifest.jobRetries = 1;
    manifest.crashRecoveries = 2;
    manifest.checkpointResumes = 3;
    manifest.dieRates = {{"VC707", 642.0}, {"ZC702", 151.25}};
    manifest.artifacts = {"results/ledger", "uvolt_model_cache"};
    manifest.counters = {{"fleet.jobs", 2}, {"sweep.campaigns", 2}};
    manifest.tracePath = "results/ext_serve_trace.json";
    manifest.prometheusPath = "results/ext_serve_metrics.prom";
    manifest.blackboxPaths = {"results/blackbox_degraded.json",
                              "results/blackbox_deadline_storm.json"};
    return manifest;
}

TEST(Ledger, ManifestRoundTripsThroughJson)
{
    const RunManifest manifest = sampleManifest();
    const auto parsed = RunManifest::fromJson(manifest.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const RunManifest &back = parsed.value();
    EXPECT_EQ(back.tool, manifest.tool);
    EXPECT_EQ(back.runId, manifest.runId);
    EXPECT_EQ(back.gitSha, manifest.gitSha);
    EXPECT_EQ(back.startedAtIso, manifest.startedAtIso);
    EXPECT_EQ(back.configDigest, manifest.configDigest);
    EXPECT_EQ(back.jobLabels, manifest.jobLabels);
    EXPECT_EQ(back.noiseSeeds, manifest.noiseSeeds);
    EXPECT_EQ(back.runsPerLevel, manifest.runsPerLevel);
    EXPECT_EQ(back.stepMv, manifest.stepMv);
    EXPECT_EQ(back.collectPerBram, manifest.collectPerBram);
    EXPECT_EQ(back.discoverRegions, manifest.discoverRegions);
    EXPECT_EQ(back.maxAttemptsPerJob, manifest.maxAttemptsPerJob);
    EXPECT_EQ(back.workers, manifest.workers);
    EXPECT_DOUBLE_EQ(back.durationMs, manifest.durationMs);
    EXPECT_EQ(back.jobRetries, manifest.jobRetries);
    EXPECT_EQ(back.crashRecoveries, manifest.crashRecoveries);
    EXPECT_EQ(back.checkpointResumes, manifest.checkpointResumes);
    EXPECT_EQ(back.dieRates, manifest.dieRates);
    EXPECT_EQ(back.artifacts, manifest.artifacts);
    EXPECT_EQ(back.counters, manifest.counters);
    EXPECT_EQ(back.tracePath, manifest.tracePath);
    EXPECT_EQ(back.prometheusPath, manifest.prometheusPath);
    EXPECT_EQ(back.blackboxPaths, manifest.blackboxPaths);
}

TEST(Ledger, RejectsForeignSchemas)
{
    const auto parsed = RunManifest::fromJson("{\"schema\": \"nope\"}");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, Errc::corruptCache);
}

TEST(Ledger, ConfigDigestIsStableAndDiscriminating)
{
    EXPECT_EQ(configDigest("abc"), configDigest("abc"));
    EXPECT_NE(configDigest("abc"), configDigest("abd"));
    EXPECT_EQ(configDigest("x").size(), 16u);
    EXPECT_EQ(configDigest("x").find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

TEST(Ledger, RecordWritesLatestAndHistory)
{
    const std::string dir = scratchDir("uvolt-ledger-record");
    const Ledger ledger(dir);
    const RunManifest manifest = sampleManifest();
    ASSERT_TRUE(ledger.record(manifest).ok());
    EXPECT_TRUE(std::filesystem::exists(ledger.latestPath()));
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / (manifest.runId + ".json")));

    const auto loaded = RunManifest::load(ledger.latestPath());
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().runId, manifest.runId);
}

TEST(Ledger, LoadOfMissingManifestIsCacheMiss)
{
    const auto loaded = RunManifest::load("/nonexistent/manifest.json");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, Errc::cacheMiss);
}

TEST(Ledger, CampaignRunLeavesALoadableManifest)
{
    const std::string dir = scratchDir("uvolt-ledger-campaign");
    Campaign campaign = Campaign::onPlatform("ZC702");
    campaign.sweep(2).stepMv(50).perBramMaps(false).ledgerUnder(dir);
    const FleetResult result = campaign.run().orFatal();
    ASSERT_EQ(result.jobs.size(), 1u);

    const auto manifest = RunManifest::load(Ledger(dir).latestPath());
    ASSERT_TRUE(manifest.ok()) << manifest.error().message;
    const RunManifest &m = manifest.value();
    EXPECT_EQ(m.tool, "FleetEngine");
    EXPECT_FALSE(m.runId.empty());
    EXPECT_FALSE(m.startedAtIso.empty());
    EXPECT_EQ(m.configDigest.size(), 16u);
    ASSERT_EQ(m.jobLabels.size(), 1u);
    EXPECT_EQ(m.jobLabels[0], result.jobs[0].job.label());
    EXPECT_EQ(m.runsPerLevel, 2);
    EXPECT_EQ(m.stepMv, 50);
    EXPECT_FALSE(m.collectPerBram);
    EXPECT_EQ(m.workers, 0u); // serial run
    EXPECT_GE(m.durationMs, 0.0);
    ASSERT_EQ(m.dieRates.size(), 1u);
    EXPECT_EQ(m.dieRates[0].first, "ZC702");
}

TEST(Ledger, DisabledLedgerWritesNothing)
{
    const std::string dir = scratchDir("uvolt-ledger-disabled");
    Campaign campaign = Campaign::onPlatform("ZC702");
    campaign.sweep(1).stepMv(50).perBramMaps(false).ledgerUnder("");
    (void)campaign.run().orFatal();
    EXPECT_FALSE(std::filesystem::exists(
        std::filesystem::path(dir) / "run_manifest.json"));
}

TEST(Ledger, IdenticalPlansShareADigestDistinctPlansDoNot)
{
    Campaign a = Campaign::onPlatform("ZC702");
    a.sweep(2).stepMv(50).perBramMaps(false);
    Campaign b = Campaign::onPlatform("ZC702");
    b.sweep(2).stepMv(50).perBramMaps(false);
    const std::string dir_a = scratchDir("uvolt-ledger-digest-a");
    const std::string dir_b = scratchDir("uvolt-ledger-digest-b");
    a.ledgerUnder(dir_a);
    b.ledgerUnder(dir_b);
    (void)a.run().orFatal();
    (void)b.run().orFatal();
    const auto ma = RunManifest::load(Ledger(dir_a).latestPath());
    const auto mb = RunManifest::load(Ledger(dir_b).latestPath());
    ASSERT_TRUE(ma.ok() && mb.ok());
    EXPECT_EQ(ma.value().configDigest, mb.value().configDigest);

    Campaign c = Campaign::onPlatform("ZC702");
    c.sweep(3).stepMv(50).perBramMaps(false);
    const std::string dir_c = scratchDir("uvolt-ledger-digest-c");
    c.ledgerUnder(dir_c);
    (void)c.run().orFatal();
    const auto mc = RunManifest::load(Ledger(dir_c).latestPath());
    ASSERT_TRUE(mc.ok());
    EXPECT_NE(ma.value().configDigest, mc.value().configDigest);
}

} // namespace
} // namespace uvolt::harness

/**
 * @file
 * Tests for the serving layer: the bounded admission queue, the
 * degradation state machine, and the UvoltServer daemon itself —
 * admission control, deadlines, retry-with-backoff, the classify
 * coalescer, checkpointed restart, and the exactly-once accounting
 * contract under injected fault storms.
 *
 * The central invariants under test mirror the fleet engine's: every
 * admitted request is responded to exactly once (no drops, no
 * duplicates, at any worker count), and a request's *result* is a pure
 * function of its content — injector on or off, retried or not,
 * resumed from a checkpoint or run fresh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "data/synthetic.hh"
#include "harness/experiment.hh"
#include "harness/fleet.hh"
#include "nn/network.hh"
#include "pmbus/board.hh"
#include "serve/health.hh"
#include "serve/request_queue.hh"
#include "serve/server.hh"
#include "util/flight_recorder.hh"
#include "util/json.hh"
#include "util/telemetry.hh"

namespace uvolt::serve
{
namespace
{

using harness::PatternSpec;
using harness::SweepResult;

/** Fresh scratch directory under the system temp root. */
std::string
scratchDir(const std::string &name)
{
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path.string();
}

/** Bit-exact equality of two sweeps (the determinism contract). */
void
expectSameSweep(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.dieId, b.dieId);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].vccBramMv, b.points[i].vccBramMv);
        EXPECT_EQ(a.points[i].runCounts, b.points[i].runCounts);
        EXPECT_EQ(a.points[i].medianFaults, b.points[i].medianFaults);
        EXPECT_EQ(a.points[i].perBramFaults, b.points[i].perBramFaults);
    }
}

/** A small deterministic classifier shared by the classify tests. */
std::shared_ptr<const nn::Network>
fixedNet()
{
    static std::shared_ptr<const nn::Network> net = [] {
        auto fresh = std::make_shared<nn::Network>(std::vector<int>{
            data::forestFeatures, 16, data::forestClasses});
        fresh->initWeights(42);
        return fresh;
    }();
    return net;
}

/** A provider that always serves fixedNet(), whatever the setpoint. */
ModelProvider
fixedProvider()
{
    return [](int) -> Expected<std::shared_ptr<const nn::Network>> {
        return fixedNet();
    };
}

/** Sample-major feature rows for @a count synthetic samples. */
ClassifyRequest
forestRequest(std::size_t count, std::uint64_t seed, int setpoint_mv)
{
    const data::Dataset set = data::makeForestLike(count, seed);
    ClassifyRequest request;
    request.sampleCount = count;
    request.setpointMv = setpoint_mv;
    request.samples.reserve(count * data::forestFeatures);
    for (std::size_t s = 0; s < count; ++s) {
        const auto row = set.sample(s);
        request.samples.insert(request.samples.end(), row.begin(),
                               row.end());
    }
    return request;
}

// --- BoundedQueue --------------------------------------------------------

TEST(BoundedQueueTest, RejectsWhenFullWithoutBlocking)
{
    BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1).ok());
    EXPECT_TRUE(queue.tryPush(2).ok());
    auto full = queue.tryPush(3);
    ASSERT_FALSE(full.ok());
    EXPECT_EQ(full.error().code, Errc::queueFull);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.capacity(), 2u);
}

TEST(BoundedQueueTest, FifoOrderAndHeadOnlyMatching)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(10).ok());
    ASSERT_TRUE(queue.tryPush(11).ok());
    ASSERT_TRUE(queue.tryPush(20).ok());

    // tryPopMatching only ever considers the head: 20 is in the queue,
    // but 10 is in front of it.
    EXPECT_FALSE(
        queue.tryPopMatching([](int v) { return v == 20; }).has_value());
    auto head = queue.tryPopMatching([](int v) { return v == 10; });
    ASSERT_TRUE(head.has_value());
    EXPECT_EQ(*head, 10);
    EXPECT_EQ(*queue.pop(), 11);
    EXPECT_EQ(*queue.pop(), 20);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenSignalsEnd)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(1).ok());
    queue.close();
    EXPECT_TRUE(queue.closed());

    auto refused = queue.tryPush(2);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error().code, Errc::serverStopped);

    EXPECT_EQ(*queue.pop(), 1);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers)
{
    BoundedQueue<int> queue(4);
    std::atomic<int> ended{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i) {
        consumers.emplace_back([&] {
            while (queue.pop().has_value()) {
            }
            ended.fetch_add(1);
        });
    }
    ASSERT_TRUE(queue.tryPush(7).ok());
    queue.close();
    for (auto &thread : consumers)
        thread.join();
    EXPECT_EQ(ended.load(), 3);
}

// --- HealthTracker -------------------------------------------------------

/** A fault-pressure profile: a storm, then a calm stretch. */
std::vector<double>
stormThenCalm()
{
    std::vector<double> profile;
    for (int i = 0; i < 4; ++i)
        profile.push_back(0.0); // warm-up, healthy
    for (int i = 0; i < 12; ++i)
        profile.push_back(3.0); // sustained storm
    for (int i = 0; i < 24; ++i)
        profile.push_back(0.0); // recovery
    return profile;
}

TEST(HealthTrackerTest, DegradesUnderStormAndRampsBack)
{
    HealthConfig config;
    config.window = 8;
    config.minSamples = 4;
    HealthTracker tracker(config);
    EXPECT_EQ(tracker.state(), ServeState::normal);
    EXPECT_EQ(tracker.score(), 1.0);

    for (double pressure : stormThenCalm())
        tracker.observe(pressure);

    // The storm degraded it, the calm stretch recovered it, and the
    // floor ramped all the way back to the requested operating points.
    EXPECT_EQ(tracker.state(), ServeState::normal);
    EXPECT_EQ(tracker.floorRaiseMv(), 0);
    EXPECT_FALSE(tracker.sheddingLowPriority());

    bool saw_degraded = false;
    bool saw_recovering = false;
    for (const auto &transition : tracker.transitions()) {
        saw_degraded |= transition.state == ServeState::degraded;
        saw_recovering |= transition.state == ServeState::recovering;
    }
    EXPECT_TRUE(saw_degraded);
    EXPECT_TRUE(saw_recovering);
}

TEST(HealthTrackerTest, FloorRaiseIsCappedAndShedsWhileDegraded)
{
    HealthConfig config;
    config.window = 8;
    config.minSamples = 2;
    config.setpointStepMv = 20;
    config.maxFloorRaiseMv = 50;
    HealthTracker tracker(config);
    for (int i = 0; i < 40; ++i)
        tracker.observe(5.0); // permanent storm
    EXPECT_EQ(tracker.state(), ServeState::degraded);
    EXPECT_EQ(tracker.floorRaiseMv(), 50); // capped, not 40 * 20
    EXPECT_TRUE(tracker.sheddingLowPriority());
}

TEST(HealthTrackerTest, NoTransitionsBeforeMinSamples)
{
    HealthConfig config;
    config.minSamples = 6;
    HealthTracker tracker(config);
    for (int i = 0; i < 5; ++i)
        tracker.observe(9.0);
    EXPECT_EQ(tracker.state(), ServeState::normal);
    EXPECT_TRUE(tracker.transitions().empty());
}

TEST(HealthTrackerTest, PureFunctionOfObservationSequence)
{
    HealthTracker a;
    HealthTracker b;
    for (double pressure : stormThenCalm()) {
        a.observe(pressure);
        b.observe(pressure);
    }
    ASSERT_EQ(a.transitions().size(), b.transitions().size());
    for (std::size_t i = 0; i < a.transitions().size(); ++i) {
        EXPECT_EQ(a.transitions()[i].observation,
                  b.transitions()[i].observation);
        EXPECT_EQ(a.transitions()[i].state, b.transitions()[i].state);
        EXPECT_EQ(a.transitions()[i].floorRaiseMv,
                  b.transitions()[i].floorRaiseMv);
    }
}

TEST(HealthTrackerTest, GovernorHealthMapsOntoPressureScale)
{
    EXPECT_EQ(pressureOf(harness::GovernorHealth::ok), 0.0);
    EXPECT_GE(pressureOf(harness::GovernorHealth::heldUncertain), 1.0);
    EXPECT_GE(pressureOf(harness::GovernorHealth::recovered),
              pressureOf(harness::GovernorHealth::heldUncertain));
}

// --- admission control ---------------------------------------------------

/** A provider whose first call blocks until released. */
struct BlockableProvider
{
    std::atomic<bool> release{false};
    std::atomic<int> calls{0};

    ModelProvider
    provider()
    {
        return [this](int)
            -> Expected<std::shared_ptr<const nn::Network>> {
            if (calls.fetch_add(1) == 0) {
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
            }
            return fixedNet();
        };
    }
};

TEST(ServeAdmission, FullQueueRejectsWithQueueFull)
{
    BlockableProvider gate;
    ServerConfig config;
    config.queueCapacity = 2;
    config.workers = 1;
    config.modelProvider = gate.provider();
    UvoltServer server(std::move(config));

    // Occupy the single worker, then fill the queue behind it.
    auto busy = server.submitClassify(forestRequest(4, 1, 850));
    ASSERT_TRUE(busy.ok());
    while (gate.calls.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::vector<std::future<Expected<ClassifyResponse>>> queued;
    int rejected = 0;
    for (int i = 0; i < 6; ++i) {
        auto admitted =
            server.submitClassify(forestRequest(4, 2 + i, 850));
        if (admitted.ok()) {
            queued.push_back(std::move(admitted.value()));
        } else {
            EXPECT_EQ(admitted.error().code, Errc::queueFull);
            ++rejected;
        }
    }
    EXPECT_GE(rejected, 4); // capacity 2, six offered
    EXPECT_LE(server.queueDepth(), 2u);

    gate.release.store(true);
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.admitted, 1u + queued.size());
    EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(rejected));
    EXPECT_EQ(stats.completed + stats.failed, stats.admitted);
    for (auto &future : queued)
        EXPECT_TRUE(future.get().ok());
    auto first = busy.value().get();
    EXPECT_TRUE(first.ok());
    server.stop();
}

TEST(ServeAdmission, DrainedServerRefusesNewWork)
{
    ServerConfig config;
    config.workers = 1;
    config.modelProvider = fixedProvider();
    UvoltServer server(std::move(config));
    server.drain();
    auto refused = server.submitClassify(forestRequest(2, 1, 850));
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error().code, Errc::serverStopped);
    server.stop();
}

TEST(ServeAdmission, DegradedServerShedsLowPriorityOnly)
{
    ServerConfig config;
    config.workers = 1;
    config.health.minSamples = 2;
    config.health.window = 4;
    config.modelProvider = fixedProvider();
    UvoltServer server(std::move(config));

    for (int i = 0; i < 8; ++i)
        server.observeFaultPressure(5.0);
    ASSERT_EQ(server.healthState(), ServeState::degraded);
    EXPECT_GT(server.floorRaiseMv(), 0);
    const int floor_raise = server.floorRaiseMv();

    ClassifyRequest low = forestRequest(2, 1, 850);
    low.priority = Priority::low;
    auto shed = server.submitClassify(std::move(low));
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.error().code, Errc::loadShed);

    auto normal = server.submitClassify(forestRequest(2, 1, 850));
    ASSERT_TRUE(normal.ok());
    auto response = normal.value().get();
    ASSERT_TRUE(response.ok());
    // Degradation raised the operating point toward the safe region.
    EXPECT_EQ(response.value().effectiveSetpointMv, 850 + floor_raise);
    EXPECT_EQ(server.stats().shed, 1u);
    server.stop();
}

// --- deadlines -----------------------------------------------------------

TEST(ServeDeadline, ExpiredRequestFailsDeadlineExceeded)
{
    ServerConfig config;
    config.workers = 1;
    config.checkpointDir = scratchDir("uvolt-serve-deadline");
    UvoltServer server(std::move(config));

    CharacterizeRequest request;
    request.platform = "ZC702";
    request.runsPerLevel = 5;
    request.deadlineMs = 1e-3; // expires before any worker can pop it
    auto future = server.submitCharacterize(std::move(request));
    ASSERT_TRUE(future.ok());
    auto response = future.value().get();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.code(), Errc::deadlineExceeded);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.deadlineExceeded, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.completed, 0u);
    server.stop();
}

TEST(ServeDeadline, UnboundedDeadlineCompletes)
{
    ServerConfig config;
    config.workers = 1;
    UvoltServer server(std::move(config));
    CharacterizeRequest request;
    request.platform = "ZC702";
    request.runsPerLevel = 3;
    auto future = server.submitCharacterize(std::move(request));
    ASSERT_TRUE(future.ok());
    EXPECT_TRUE(future.value().get().ok());
    server.stop();
}

// --- retries -------------------------------------------------------------

TEST(ServeRetry, TransientModelFaultsRetryWithBackoff)
{
    std::atomic<int> calls{0};
    ServerConfig config;
    config.workers = 1;
    config.maxAttempts = 4;
    config.backoffBaseMs = 0.1;
    config.backoffJitterMs = 0.1;
    config.modelProvider =
        [&calls](int) -> Expected<std::shared_ptr<const nn::Network>> {
        if (calls.fetch_add(1) < 2)
            return makeError(Errc::linkExhausted, "injected fault");
        return fixedNet();
    };
    UvoltServer server(std::move(config));

    auto future = server.submitClassify(forestRequest(3, 9, 850));
    ASSERT_TRUE(future.ok());
    auto response = future.value().get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().attempts, 3);
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(server.stats().retried, 2u);
    EXPECT_EQ(server.stats().completed, 1u);
    server.stop();
}

TEST(ServeRetry, NonTransientFaultsFailFast)
{
    std::atomic<int> calls{0};
    ServerConfig config;
    config.workers = 1;
    config.maxAttempts = 4;
    config.modelProvider =
        [&calls](int) -> Expected<std::shared_ptr<const nn::Network>> {
        calls.fetch_add(1);
        return makeError(Errc::corruptCache, "model image unusable");
    };
    UvoltServer server(std::move(config));

    auto future = server.submitClassify(forestRequest(3, 9, 850));
    ASSERT_TRUE(future.ok());
    auto response = future.value().get();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.code(), Errc::corruptCache);
    EXPECT_EQ(calls.load(), 1); // no retry burned on a permanent fault
    EXPECT_EQ(server.stats().retried, 0u);
    server.stop();
}

// --- the coalescer -------------------------------------------------------

TEST(ServeCoalesce, CoalescedBlocksAreBitIdenticalToScalarClassify)
{
    BlockableProvider gate;
    ServerConfig config;
    config.workers = 1;
    config.queueCapacity = 32;
    config.coalesceBatch = 16;
    config.modelProvider = gate.provider();
    UvoltServer server(std::move(config));

    // Hold the worker on a first request, queue several more at the
    // same operating point, then release: the queued ones coalesce.
    std::vector<ClassifyRequest> requests;
    std::vector<std::future<Expected<ClassifyResponse>>> futures;
    for (int i = 0; i < 6; ++i)
        requests.push_back(forestRequest(3 + i, 100 + i, 850));
    {
        auto first = server.submitClassify(requests[0]);
        ASSERT_TRUE(first.ok());
        futures.push_back(std::move(first.value()));
    }
    while (gate.calls.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (std::size_t i = 1; i < requests.size(); ++i) {
        auto admitted = server.submitClassify(requests[i]);
        ASSERT_TRUE(admitted.ok());
        futures.push_back(std::move(admitted.value()));
    }
    gate.release.store(true);
    server.drain();

    const auto net = fixedNet();
    bool any_coalesced = false;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        auto response = futures[i].get();
        ASSERT_TRUE(response.ok()) << "request " << i;
        const auto &classes = response.value().classes;
        ASSERT_EQ(classes.size(), requests[i].sampleCount);
        // Bit-identity with the scalar path, member by member: block
        // packing across tenants must not change a single result.
        for (std::size_t s = 0; s < requests[i].sampleCount; ++s) {
            const std::span<const float> sample(
                requests[i].samples.data() + s * data::forestFeatures,
                data::forestFeatures);
            EXPECT_EQ(classes[s], net->classify(sample));
        }
        any_coalesced |= response.value().coalesced;
    }
    EXPECT_TRUE(any_coalesced);
    EXPECT_GE(server.stats().coalescedBlocks, 1u);
    server.stop();
}

// --- degradation determinism --------------------------------------------

TEST(ServeHealth, ScriptedProfileIsDeterministicAcrossWorkerCounts)
{
    std::vector<std::vector<HealthTransition>> logs;
    for (std::size_t workers : {1u, 4u}) {
        ServerConfig config;
        config.workers = workers;
        config.modelProvider = fixedProvider();
        UvoltServer server(std::move(config));
        for (double pressure : stormThenCalm())
            server.observeFaultPressure(pressure);
        logs.push_back(server.healthTransitions());
        server.stop();
    }
    ASSERT_EQ(logs[0].size(), logs[1].size());
    for (std::size_t i = 0; i < logs[0].size(); ++i) {
        EXPECT_EQ(logs[0][i].observation, logs[1][i].observation);
        EXPECT_EQ(logs[0][i].state, logs[1][i].state);
        EXPECT_EQ(logs[0][i].floorRaiseMv, logs[1][i].floorRaiseMv);
    }
}

// --- lifecycle: stop, checkpoints, restart -------------------------------

TEST(ServeLifecycle, ResumesFromCheckpointAndMatchesFreshRun)
{
    const std::string dir = scratchDir("uvolt-serve-resume");

    CharacterizeRequest request;
    request.platform = "ZC702";
    request.runsPerLevel = 5;

    // The reference: the same campaign run directly, start to finish.
    pmbus::Board board(fpga::findPlatform("ZC702"));
    harness::SweepOptions reference_options;
    reference_options.runsPerLevel = request.runsPerLevel;
    reference_options.collectPerBram = true;
    auto reference =
        harness::tryRunCriticalSweep(board, reference_options);
    ASSERT_TRUE(reference.ok());

    // "Kill" a server mid-campaign: run two levels with the checkpoint
    // at exactly the server's path, as a stop(now) at a slice boundary
    // would leave it.
    const harness::FleetJob shape{request.platform, request.pattern,
                                  request.ambientC, std::nullopt};
    const std::string ckpt_path = dir + "/" + shape.label() + "-r5.ckpt";
    {
        pmbus::Board partial_board(fpga::findPlatform("ZC702"));
        harness::SweepCheckpoint checkpoint;
        harness::SweepOptions options = reference_options;
        options.maxLevels = 2;
        options.checkpoint = &checkpoint;
        options.checkpointPath = ckpt_path;
        auto partial =
            harness::tryRunCriticalSweep(partial_board, options);
        ASSERT_TRUE(partial.ok());
        ASSERT_TRUE(partial.value().truncated);
    }
    ASSERT_TRUE(std::filesystem::exists(ckpt_path));

    ServerConfig config;
    config.workers = 1;
    config.checkpointDir = dir;
    UvoltServer server(std::move(config));
    auto future = server.submitCharacterize(request);
    ASSERT_TRUE(future.ok());
    auto response = future.value().get();
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().resumed);
    expectSameSweep(response.value().sweep, reference.value());
    // The finished request cleaned up its scratch checkpoint.
    EXPECT_FALSE(std::filesystem::exists(ckpt_path));
    server.stop();
}

TEST(ServeLifecycle, StopNowAnswersEverythingExactlyOnce)
{
    const std::string dir = scratchDir("uvolt-serve-stopnow");
    ServerConfig config;
    config.workers = 2;
    config.checkpointDir = dir;
    config.modelProvider = fixedProvider();
    UvoltServer server(std::move(config));

    std::vector<std::future<Expected<CharacterizeResponse>>> futures;
    for (int i = 0; i < 4; ++i) {
        CharacterizeRequest request;
        request.platform = "ZC702";
        request.runsPerLevel = 8;
        request.ambientC = 40.0 + 10.0 * i; // distinct shapes
        auto admitted = server.submitCharacterize(std::move(request));
        ASSERT_TRUE(admitted.ok());
        futures.push_back(std::move(admitted.value()));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.stop(StopMode::now);

    // Exactly-once: every admitted future resolves — completed or
    // cancelled with serverStopped, never dropped, never twice.
    int completed = 0;
    int cancelled = 0;
    for (auto &future : futures) {
        auto response = future.get();
        if (response.ok())
            ++completed;
        else {
            EXPECT_EQ(response.code(), Errc::serverStopped);
            ++cancelled;
        }
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.admitted, 4u);
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed));
    EXPECT_EQ(stats.cancelled, static_cast<std::uint64_t>(cancelled));
    EXPECT_EQ(stats.completed + stats.failed, stats.admitted);
}

// --- identity under the fault injector -----------------------------------

TEST(ServeIdentity, InjectorOnAndOffAreBitIdentical)
{
    const std::string cache_dir = scratchDir("uvolt-serve-ident-cache");

    CharacterizeRequest request;
    request.platform = "ZC702";
    request.runsPerLevel = 5;

    auto run_once = [&](bool noisy) -> CharacterizeResponse {
        ServerConfig config;
        config.workers = 2;
        config.seed = 77;
        if (noisy) {
            pmbus::NoiseConfig noise =
                pmbus::NoiseConfig::harsh(0, 0.02);
            noise.spuriousCrashProb = 0.3;
            config.noise = noise;
        }
        UvoltServer server(std::move(config));
        auto future = server.submitCharacterize(request);
        EXPECT_TRUE(future.ok());
        auto response = future.value().get();
        EXPECT_TRUE(response.ok());
        server.stop();
        return response.take();
    };

    const CharacterizeResponse quiet = run_once(false);
    const CharacterizeResponse noisy = run_once(true);
    // The PR-1 masking guarantee, surfaced at the service boundary: the
    // harsh environment's faults are absorbed by retry/recovery and the
    // response payload is bit-identical.
    expectSameSweep(quiet.sweep, noisy.sweep);
    EXPECT_GT(noisy.sweep.resilience.linkRetransmits +
                  noisy.sweep.resilience.crashRecoveries +
                  noisy.sweep.resilience.pmbusRetries,
              0u);

    // And a successful characterize publishes the die's FVM for every
    // tenant: the cache serves it without a single new sweep.
    harness::FvmCache cache(cache_dir);
    ServerConfig config;
    config.workers = 1;
    config.fvmCache = &cache;
    UvoltServer server(std::move(config));
    auto future = server.submitCharacterize(request);
    ASSERT_TRUE(future.ok());
    ASSERT_TRUE(future.value().get().ok());
    server.stop();

    int characterizations = 0;
    auto obtained = cache.obtain(
        fpga::findPlatform(request.platform), request.pattern,
        request.runsPerLevel, [&]() -> Expected<harness::Fvm> {
            ++characterizations;
            return makeError(Errc::cacheMiss, "should not be called");
        });
    ASSERT_TRUE(obtained.ok());
    EXPECT_EQ(characterizations, 0);
}

TEST(ServeIdentity, RepeatedRequestsAreIdempotent)
{
    CharacterizeRequest request;
    request.platform = "ZC702";
    request.runsPerLevel = 4;

    ServerConfig config;
    config.workers = 2;
    config.noise = pmbus::NoiseConfig::harsh(0, 0.02);
    UvoltServer server(std::move(config));

    // The same request shape twice, concurrently: seeds derive from the
    // request content, not submission order, so both see the identical
    // campaign (and take turns on the shared checkpoint label).
    auto first = server.submitCharacterize(request);
    auto second = server.submitCharacterize(request);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    auto a = first.value().get();
    auto b = second.value().get();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    expectSameSweep(a.value().sweep, b.value().sweep);
    server.stop();
}

// --- observability -------------------------------------------------------

/** Enable telemetry for one test; restore and wipe on exit. */
class TelemetryOn
{
  public:
    TelemetryOn()
    {
        was_ = telemetry::Telemetry::enabled();
        telemetry::Registry::global().resetForTest();
        telemetry::Telemetry::setEnabled(true);
    }

    ~TelemetryOn()
    {
        telemetry::Telemetry::setEnabled(was_);
        telemetry::Registry::global().resetForTest();
    }

  private:
    bool was_;
};

/**
 * Every request admitted with telemetry on is one connected, well-
 * formed flow: exactly one start ("serve.admit"), at least one step
 * (the queue-wait hop), exactly one finish ("serve.request" or
 * "serve.reject"), and every child span's parent was recorded. Holds
 * at every worker count, including the degenerate single worker.
 */
void
expectServeFlowsWellFormed(std::size_t workers, std::size_t admitted)
{
    TelemetryOn guard;

    ServerConfig config;
    config.workers = workers;
    config.modelProvider = fixedProvider();
    config.blackboxDir = ""; // no dumps from this test
    UvoltServer server(std::move(config));

    std::vector<std::future<Expected<ClassifyResponse>>> classifies;
    for (std::size_t i = 0; i + 1 < admitted; ++i)
        classifies.push_back(
            server.submitClassify(forestRequest(4, 10 + i, 850))
                .orFatal());
    CharacterizeRequest characterize;
    characterize.platform = "ZC702";
    characterize.runsPerLevel = 3;
    auto sweep = server.submitCharacterize(characterize).orFatal();
    for (auto &future : classifies)
        ASSERT_TRUE(future.get().ok());
    ASSERT_TRUE(sweep.get().ok());
    server.stop();

    const auto events = telemetry::Registry::global().traceEvents();
    std::set<std::uint64_t> spans;
    for (const auto &event : events) {
        if (event.spanId != 0)
            spans.insert(event.spanId);
    }
    std::map<std::uint64_t, std::array<int, 3>> flows; // s, t, f
    for (const auto &event : events) {
        if (event.parentId != 0) {
            EXPECT_TRUE(spans.count(event.parentId))
                << event.name << " parents under an unrecorded span";
        }
        if (event.flowId != 0 &&
            event.flowPoint != telemetry::FlowPoint::none) {
            auto &counts = flows[event.flowId];
            switch (event.flowPoint) {
              case telemetry::FlowPoint::start: ++counts[0]; break;
              case telemetry::FlowPoint::step: ++counts[1]; break;
              default: ++counts[2]; break;
            }
        }
    }
    EXPECT_EQ(flows.size(), admitted) << "workers=" << workers;
    for (const auto &[flow, counts] : flows) {
        EXPECT_EQ(counts[0], 1) << "flow " << flow << " starts";
        EXPECT_GE(counts[1], 1) << "flow " << flow << " steps";
        EXPECT_EQ(counts[2], 1) << "flow " << flow << " finishes";
    }
}

TEST(ServeObservability, RequestFlowsWellFormedAtAnyWorkerCount)
{
    if (!telemetry::Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    for (std::size_t workers : {1u, 2u, 8u})
        expectServeFlowsWellFormed(workers, 6);
}

TEST(ServeObservability, RefusedAdmissionStillClosesItsFlow)
{
    if (!telemetry::Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    TelemetryOn guard;

    // Capacity 1 and a worker wedged behind a characterize: the next
    // submits hit queueFull, and each refused admission must still be a
    // closed flow (one start, one "serve.reject" finish) — a half-open
    // flow draws forever-dangling arrows in the viewer.
    ServerConfig config;
    config.workers = 1;
    config.queueCapacity = 1;
    config.modelProvider = fixedProvider();
    config.blackboxDir = "";
    UvoltServer server(std::move(config));

    CharacterizeRequest slow;
    slow.platform = "ZC702";
    slow.runsPerLevel = 3;
    auto wedge = server.submitCharacterize(slow).orFatal();
    std::uint64_t rejected = 0;
    for (int i = 0; i < 32; ++i) {
        auto admitted = server.submitClassify(forestRequest(2, i, 850));
        if (admitted.ok())
            ASSERT_TRUE(admitted.take().get().ok());
        else
            ++rejected;
    }
    ASSERT_TRUE(wedge.get().ok());
    server.stop();

    std::map<std::uint64_t, std::pair<int, int>> flows; // starts, ends
    std::uint64_t reject_spans = 0;
    for (const auto &event :
         telemetry::Registry::global().traceEvents()) {
        reject_spans += std::string_view(event.name) == "serve.reject";
        if (event.flowId == 0)
            continue;
        if (event.flowPoint == telemetry::FlowPoint::start)
            ++flows[event.flowId].first;
        else if (event.flowPoint == telemetry::FlowPoint::finish)
            ++flows[event.flowId].second;
    }
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(reject_spans, rejected);
    for (const auto &[flow, counts] : flows) {
        EXPECT_EQ(counts.first, 1) << "flow " << flow;
        EXPECT_EQ(counts.second, 1) << "flow " << flow;
    }
}

TEST(ServeObservability, DegradationTransitionDumpsBlackbox)
{
    if (!telemetry::Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    const std::string dir = scratchDir("uvolt_serve_blackbox");
    flightrec::FlightRecorder::global().resetForTest();

    ServerConfig config;
    config.workers = 1;
    config.modelProvider = fixedProvider();
    config.blackboxDir = dir;
    UvoltServer server(std::move(config));

    // One completed request seeds the ring (an empty black box is
    // never written), then a scripted storm forces the transition.
    ASSERT_TRUE(server.submitClassify(forestRequest(2, 1, 850))
                    .orFatal()
                    .get()
                    .ok());
    flightrec::note(flightrec::Level::info, "test", "storm incoming");
    for (int i = 0; i < 12; ++i)
        server.observeFaultPressure(3.0);
    EXPECT_EQ(server.healthState(), ServeState::degraded);
    server.stop();

    const std::string path = dir + "/blackbox_degraded.json";
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    auto parsed = json::Value::parse(content.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const json::Value &root = parsed.value();
    EXPECT_EQ(root.stringOr("schema", ""), "uvolt-blackbox-v1");
    const json::Value *events = root.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->items().empty());
    // The transition note itself must be in the box: the dump happens
    // after the recorder sees the "health normal -> degraded" event.
    bool transition_noted = false;
    std::uint64_t last_seq = 0;
    for (const json::Value &event : events->items()) {
        ASSERT_TRUE(event.isObject());
        const auto seq =
            static_cast<std::uint64_t>(event.numberOr("seq", 0));
        EXPECT_GT(seq, last_seq) << "merge must preserve seq order";
        last_seq = seq;
        if (event.stringOr("component", "") == "serve" &&
            event.stringOr("message", "").find("degraded") !=
                std::string::npos)
            transition_noted = true;
    }
    EXPECT_TRUE(transition_noted);
    const auto dumps = flightrec::FlightRecorder::global().dumps();
    EXPECT_NE(std::find(dumps.begin(), dumps.end(), path), dumps.end());
    flightrec::FlightRecorder::global().resetForTest();
}

TEST(ServeObservability, DeadlineStormDumpsBlackbox)
{
    if (!telemetry::Telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    const std::string dir = scratchDir("uvolt_serve_deadline_storm");
    flightrec::FlightRecorder::global().resetForTest();

    ServerConfig config;
    config.workers = 1;
    config.modelProvider = fixedProvider();
    config.blackboxDir = dir;
    config.deadlineStormThreshold = 3;
    UvoltServer server(std::move(config));

    // Every request is born expired: each expiry extends the streak,
    // and the third crossing dumps the recorder.
    for (int i = 0; i < 4; ++i) {
        ClassifyRequest request = forestRequest(2, 50 + i, 850);
        request.deadlineMs = 1e-3;
        auto future = server.submitClassify(std::move(request));
        ASSERT_TRUE(future.ok());
        const auto response = future.take().get();
        ASSERT_FALSE(response.ok());
        EXPECT_EQ(response.error().code, Errc::deadlineExceeded);
    }
    server.stop();

    EXPECT_TRUE(std::filesystem::exists(
        dir + "/blackbox_deadline_storm.json"));
    flightrec::FlightRecorder::global().resetForTest();
}

TEST(ServeObservability, StatusReportMatchesLedgerAndRenders)
{
    TelemetryOn guard;

    ServerConfig config;
    config.workers = 2;
    config.modelProvider = fixedProvider();
    config.blackboxDir = "";
    config.errorBudget = 0.5;
    UvoltServer server(std::move(config));

    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(server.submitClassify(forestRequest(4, i, 850))
                        .orFatal()
                        .get()
                        .ok());
    ClassifyRequest hopeless = forestRequest(2, 99, 850);
    hopeless.deadlineMs = 1e-3;
    ASSERT_FALSE(
        server.submitClassify(std::move(hopeless)).orFatal().get().ok());
    server.drain();

    const StatusReport report = server.statusReport();
    const ServerStats stats = server.stats();
    EXPECT_EQ(report.stats.admitted, stats.admitted);
    EXPECT_EQ(report.stats.completed, stats.completed);
    EXPECT_EQ(report.stats.failed, stats.failed);
    EXPECT_EQ(report.queueDepth, 0u);
    EXPECT_EQ(report.queueCapacity, 64u);
    EXPECT_EQ(report.state, ServeState::normal);
    // 1 failure of 7 responses over a 0.5 budget = 2/7 burned.
    EXPECT_NEAR(report.errorBudgetBurn, (1.0 / 7.0) / 0.5, 1e-9);
    if (telemetry::Telemetry::compiledIn()) {
        EXPECT_GT(report.e2eP99Ms, 0.0);
        EXPECT_GT(report.classifyP50Ms, 0.0);
    }

    const std::string screen = report.render();
    EXPECT_NE(screen.find("state"), std::string::npos);
    EXPECT_NE(screen.find("normal"), std::string::npos);
    EXPECT_NE(screen.find("error budget"), std::string::npos);
    server.stop();
}

} // namespace
} // namespace uvolt::serve

/**
 * @file
 * Tests for the dataset container and the three synthetic corpus
 * generators (shape, determinism, label coverage, learnability proxies).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/dataset.hh"
#include "data/synthetic.hh"

namespace uvolt::data
{
namespace
{

TEST(DatasetTest, AddAndAccess)
{
    Dataset set("toy", 3, 2);
    const float a[3] = {1.0f, 2.0f, 3.0f};
    const float b[3] = {4.0f, 5.0f, 6.0f};
    set.add(a, 0);
    set.add(b, 1);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.featureCount(), 3);
    EXPECT_EQ(set.classCount(), 2);
    EXPECT_EQ(set.sample(1)[2], 6.0f);
    EXPECT_EQ(set.label(0), 0);
    EXPECT_EQ(set.label(1), 1);
}

TEST(DatasetTest, Head)
{
    Dataset set("toy", 1, 2);
    for (int i = 0; i < 10; ++i) {
        const float x = static_cast<float>(i);
        set.add({&x, 1}, i % 2);
    }
    const Dataset top = set.head(4);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_EQ(top.sample(3)[0], 3.0f);
    EXPECT_EQ(set.head(99).size(), 10u);
}

TEST(MnistLike, ShapeAndRange)
{
    const Dataset set = makeMnistLike(200, 1);
    EXPECT_EQ(set.featureCount(), mnistPixels);
    EXPECT_EQ(set.classCount(), 10);
    ASSERT_EQ(set.size(), 200u);
    for (std::size_t i = 0; i < set.size(); i += 17) {
        for (float pixel : set.sample(i)) {
            EXPECT_GE(pixel, 0.0f);
            EXPECT_LE(pixel, 1.0f);
        }
        EXPECT_GE(set.label(i), 0);
        EXPECT_LT(set.label(i), 10);
    }
}

TEST(MnistLike, Deterministic)
{
    const Dataset a = makeMnistLike(50, 42);
    const Dataset b = makeMnistLike(50, 42);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.label(i), b.label(i));
        const auto sa = a.sample(i);
        const auto sb = b.sample(i);
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
    }
}

TEST(MnistLike, SeedsDiffer)
{
    const Dataset a = makeMnistLike(50, 1);
    const Dataset b = makeMnistLike(50, 2);
    int identical = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto sa = a.sample(i);
        const auto sb = b.sample(i);
        identical += std::equal(sa.begin(), sa.end(), sb.begin());
    }
    EXPECT_LT(identical, 3);
}

TEST(MnistLike, AllClassesPresent)
{
    const Dataset set = makeMnistLike(500, 3);
    std::vector<int> counts(10, 0);
    for (std::size_t i = 0; i < set.size(); ++i)
        ++counts[static_cast<std::size_t>(set.label(i))];
    for (int c = 0; c < 10; ++c)
        EXPECT_GT(counts[static_cast<std::size_t>(c)], 20) << "class " << c;
}

TEST(MnistLike, GlyphsCarrySignal)
{
    // Images of the same digit must be more alike than images of
    // different digits (a crude learnability proxy).
    const Dataset set = makeMnistLike(400, 4);
    std::vector<std::vector<double>> means(
        10, std::vector<double>(mnistPixels, 0.0));
    std::vector<int> counts(10, 0);
    for (std::size_t i = 0; i < set.size(); ++i) {
        const auto sample = set.sample(i);
        auto &mean = means[static_cast<std::size_t>(set.label(i))];
        for (int p = 0; p < mnistPixels; ++p)
            mean[static_cast<std::size_t>(p)] += sample[
                static_cast<std::size_t>(p)];
        ++counts[static_cast<std::size_t>(set.label(i))];
    }
    for (int c = 0; c < 10; ++c) {
        for (auto &value : means[static_cast<std::size_t>(c)])
            value /= counts[static_cast<std::size_t>(c)];
    }
    // Mean images of 1 and 8 must differ a lot (few vs all segments).
    double distance = 0.0;
    for (int p = 0; p < mnistPixels; ++p) {
        const double diff = means[1][static_cast<std::size_t>(p)] -
            means[8][static_cast<std::size_t>(p)];
        distance += diff * diff;
    }
    EXPECT_GT(std::sqrt(distance), 3.0);
}

TEST(MnistLike, GhostKnobsChangeTheCorpus)
{
    MnistOptions plain;
    plain.ghostProb = 0.0;
    MnistOptions ghosted;
    ghosted.ghostProb = 1.0;
    ghosted.ghostMax = 1.0;

    const Dataset a = makeMnistLike(100, 5, plain);
    const Dataset b = makeMnistLike(100, 5, ghosted);
    // Ghosted images carry strictly more ink on average.
    double ink_a = 0.0, ink_b = 0.0;
    for (std::size_t i = 0; i < 100; ++i) {
        for (int p = 0; p < mnistPixels; ++p) {
            ink_a += a.sample(i)[static_cast<std::size_t>(p)];
            ink_b += b.sample(i)[static_cast<std::size_t>(p)];
        }
    }
    EXPECT_GT(ink_b, ink_a * 1.1);
}

TEST(MnistLike, OptionsAreDeterministic)
{
    MnistOptions options;
    options.ghostProb = 0.5;
    const Dataset a = makeMnistLike(40, 9, options);
    const Dataset b = makeMnistLike(40, 9, options);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto sa = a.sample(i);
        const auto sb = b.sample(i);
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
    }
}

TEST(ForestLike, ShapeAndDeterminism)
{
    const Dataset a = makeForestLike(300, 9);
    EXPECT_EQ(a.featureCount(), forestFeatures);
    EXPECT_EQ(a.classCount(), forestClasses);
    const Dataset b = makeForestLike(300, 9);
    for (std::size_t i = 0; i < a.size(); i += 29) {
        const auto sa = a.sample(i);
        const auto sb = b.sample(i);
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
    }
}

TEST(ForestLike, ClassSeparation)
{
    const Dataset set = makeForestLike(1400, 5);
    // Nearest-class-centroid on a held-out half must beat chance easily.
    std::vector<std::vector<double>> centroids(
        forestClasses, std::vector<double>(forestFeatures, 0.0));
    std::vector<int> counts(forestClasses, 0);
    const std::size_t half = set.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        const auto sample = set.sample(i);
        auto &centroid = centroids[static_cast<std::size_t>(set.label(i))];
        for (int f = 0; f < forestFeatures; ++f)
            centroid[static_cast<std::size_t>(f)] += sample[
                static_cast<std::size_t>(f)];
        ++counts[static_cast<std::size_t>(set.label(i))];
    }
    for (int c = 0; c < forestClasses; ++c) {
        for (auto &value : centroids[static_cast<std::size_t>(c)])
            value /= std::max(1, counts[static_cast<std::size_t>(c)]);
    }
    std::size_t correct = 0;
    for (std::size_t i = half; i < set.size(); ++i) {
        const auto sample = set.sample(i);
        int best = 0;
        double best_distance = 1e300;
        for (int c = 0; c < forestClasses; ++c) {
            double distance = 0.0;
            for (int f = 0; f < forestFeatures; ++f) {
                const double diff = sample[static_cast<std::size_t>(f)] -
                    centroids[static_cast<std::size_t>(c)]
                             [static_cast<std::size_t>(f)];
                distance += diff * diff;
            }
            if (distance < best_distance) {
                best_distance = distance;
                best = c;
            }
        }
        correct += (best == set.label(i));
    }
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(half);
    EXPECT_GT(accuracy, 0.55); // chance is ~0.14
}

TEST(ReutersLike, ShapeAndSparsity)
{
    const Dataset set = makeReutersLike(200, 13);
    EXPECT_EQ(set.featureCount(), reutersVocab);
    EXPECT_EQ(set.classCount(), reutersClasses);
    // Bag-of-words documents are sparse: most vocabulary absent.
    double zero_features = 0.0;
    for (std::size_t i = 0; i < set.size(); ++i) {
        for (float value : set.sample(i))
            zero_features += (value == 0.0f);
    }
    const double zero_share = zero_features /
        static_cast<double>(set.size() * reutersVocab);
    EXPECT_GT(zero_share, 0.7);
    EXPECT_LT(zero_share, 0.995);
}

TEST(ReutersLike, TopicWeightControlsDifficulty)
{
    // Nearest-centroid accuracy must degrade as documents carry less
    // topical signal.
    auto centroid_accuracy = [](double topic_weight) {
        const Dataset set = makeReutersLike(1200, 4, topic_weight);
        std::vector<std::vector<double>> centroids(
            reutersClasses, std::vector<double>(reutersVocab, 0.0));
        std::vector<int> counts(reutersClasses, 0);
        const std::size_t half = set.size() / 2;
        for (std::size_t i = 0; i < half; ++i) {
            const auto sample = set.sample(i);
            for (int f = 0; f < reutersVocab; ++f)
                centroids[static_cast<std::size_t>(set.label(i))]
                         [static_cast<std::size_t>(f)] +=
                    sample[static_cast<std::size_t>(f)];
            ++counts[static_cast<std::size_t>(set.label(i))];
        }
        for (int c = 0; c < reutersClasses; ++c) {
            for (auto &value : centroids[static_cast<std::size_t>(c)])
                value /= std::max(1, counts[static_cast<std::size_t>(c)]);
        }
        std::size_t correct = 0;
        for (std::size_t i = half; i < set.size(); ++i) {
            const auto sample = set.sample(i);
            int best = 0;
            double best_distance = 1e300;
            for (int c = 0; c < reutersClasses; ++c) {
                double distance = 0.0;
                for (int f = 0; f < reutersVocab; ++f) {
                    const double diff =
                        sample[static_cast<std::size_t>(f)] -
                        centroids[static_cast<std::size_t>(c)]
                                 [static_cast<std::size_t>(f)];
                    distance += diff * diff;
                }
                if (distance < best_distance) {
                    best_distance = distance;
                    best = c;
                }
            }
            correct += (best == set.label(i));
        }
        return static_cast<double>(correct) / static_cast<double>(half);
    };

    const double strong = centroid_accuracy(0.8);
    const double weak = centroid_accuracy(0.2);
    EXPECT_GT(strong, weak + 0.1);
    EXPECT_GT(strong, 0.8);
}

TEST(ReutersLike, Deterministic)
{
    const Dataset a = makeReutersLike(60, 2);
    const Dataset b = makeReutersLike(60, 2);
    for (std::size_t i = 0; i < a.size(); i += 7) {
        const auto sa = a.sample(i);
        const auto sb = b.sample(i);
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
        EXPECT_EQ(a.label(i), b.label(i));
    }
}

} // namespace
} // namespace uvolt::data

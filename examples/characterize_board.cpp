/**
 * @file
 * Example: full characterization campaign for one board — the paper's
 * Section II methodology in one Campaign call.
 *
 *  - region discovery on VCCBRAM and VCCINT (Fig 1),
 *  - Listing-1 critical-region sweep with 100 runs per level (Fig 3),
 *  - stability statistics at Vcrash (Table II),
 *  - vulnerability clustering (Fig 5),
 *  - the chip's Fault Variation Map as ASCII art (Fig 6).
 *
 * Usage:
 *   characterize_board [--platform VC707] [--runs 100]
 *                      [--pattern ffff|aaaa|5555|0000|random]
 *                      [--temp 50] [--fvm] [--csv sweep.csv]
 *                      [--noise 0.02] [--seed 1]
 *
 * --noise puts the instrumentation in a harsh environment (corrupted
 * frames, PMBus NACKs, setpoint jitter, spurious crashes near Vcrash,
 * probability per channel as given, seeded by --seed). The resilient
 * campaign engine masks all of it: the printed characterization is bit
 * for bit the quiet one, plus a recovery-cost summary.
 */

#include <cstdio>
#include <iostream>

#include "harness/campaign.hh"
#include "harness/clusterer.hh"
#include "harness/fault_analyzer.hh"
#include "harness/fvm.hh"
#include "harness/structure.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace uvolt;

namespace
{

harness::PatternSpec
parsePattern(const std::string &name)
{
    if (name == "ffff")
        return harness::PatternSpec::allOnes();
    if (name == "aaaa")
        return harness::PatternSpec::fixed(0xAAAA);
    if (name == "5555")
        return harness::PatternSpec::fixed(0x5555);
    if (name == "0000")
        return harness::PatternSpec::fixed(0x0000);
    if (name == "random")
        return harness::PatternSpec::random(0.5, 99);
    uvolt::fatal("unknown pattern '{}'", name);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Full undervolting characterization of one FPGA board "
                  "(paper Section II)");
    cli.addString("platform", "VC707", "board to characterize");
    cli.addInt("runs", 100, "repetitions per voltage level");
    cli.addString("pattern", "ffff", "initial BRAM content");
    cli.addDouble("temp", 50.0, "on-board ambient, degC");
    cli.addBool("fvm", "render the Fault Variation Map");
    cli.addBool("bram-map", "render the hottest BRAM's bitcell map");
    cli.addString("csv", "", "optional CSV output for the sweep");
    cli.addDouble("noise", 0.0,
                  "harsh-environment fault probability (0..1)");
    cli.addInt("seed", 1, "seed for the injected-fault stream");
    if (!cli.parse(argc, argv))
        return 0;

    const auto &spec = fpga::findPlatform(cli.getString("platform"));
    const double noise = cli.getDouble("noise");

    // --- the whole Section II methodology as one Campaign ----------------
    harness::Campaign campaign =
        harness::Campaign::onPlatform(spec.name)
            .withPattern(parsePattern(cli.getString("pattern")))
            .atTemperature(cli.getDouble("temp"))
            .sweep(static_cast<int>(cli.getInt("runs")))
            .discoverRegions();
    if (noise != 0.0) {
        campaign.withNoise(pmbus::NoiseConfig::harsh(
            static_cast<std::uint64_t>(cli.getInt("seed")), noise));
        std::printf("harsh environment: %.1f%% injected fault "
                    "probability on every channel (seed %ld)\n\n",
                    noise * 100.0, cli.getInt("seed"));
    }
    const harness::FleetResult result = campaign.run().orFatal();
    const harness::FleetJobOutcome &outcome = result.jobs.front();

    // --- Fig 1: voltage regions on both rails ----------------------------
    std::printf("== %s: voltage regions (S/N %s, %.0f degC)\n",
                spec.name.c_str(), spec.serialNumber.c_str(),
                outcome.job.ambientC);
    for (const auto *regions : {&*outcome.bramRegions,
                                &*outcome.intRegions}) {
        std::printf("  %-8s nominal %d mV | SAFE >= %d mV (guardband "
                    "%.0f%%) | CRITICAL >= %d mV | CRASH below\n",
                    railName(regions->rail), regions->vnomMv,
                    regions->vminMv, regions->guardband() * 100.0,
                    regions->vcrashMv);
    }

    // --- Listing 1: the critical-region sweep ----------------------------
    const harness::SweepResult &sweep = result.onlySweep();
    std::printf("\n== Listing-1 sweep, pattern %s, %d runs/level\n",
                sweep.pattern.label().c_str(), sweep.runsPerLevel);

    TextTable table({"VCCBRAM", "median faults", "faults/Mbit",
                     "min", "max", "stddev", "1->0 share", "power W"});
    for (const auto &point : sweep.points) {
        table.addRow({fmtVolts(point.vccBramMv / 1000.0),
                      fmtDouble(point.medianFaults, 0),
                      fmtDouble(point.faultsPerMbit, 1),
                      fmtDouble(point.runStats.minimum(), 0),
                      fmtDouble(point.runStats.maximum(), 0),
                      fmtDouble(point.runStats.stddev(), 1),
                      fmtPercent(point.oneToZeroFraction, 2),
                      fmtDouble(point.bramPowerW, 3)});
    }
    table.print(std::cout);
    if (const std::string path = cli.getString("csv"); !path.empty())
        writeCsv(table, path);

    if (noise > 0.0) {
        const auto &cost = result.resilience;
        std::printf("\n== surviving the environment: %llu crash "
                    "recoveries, %llu runs retried, %llu link "
                    "retransmits, %llu PMBus retries\n",
                    static_cast<unsigned long long>(cost.crashRecoveries),
                    static_cast<unsigned long long>(cost.runsRetried),
                    static_cast<unsigned long long>(cost.linkRetransmits),
                    static_cast<unsigned long long>(cost.pmbusRetries));
    }

    // --- Fig 5: clustering (die report carries the merged FVM) ------------
    const harness::Fvm &fvm = *result.dies.front().mergedFvm;
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);
    std::printf("\n== per-BRAM distribution at Vcrash: %.1f%% fault-free, "
                "max %.2f%%, mean %.3f%%\n",
                fvm.faultFreeFraction() * 100.0, fvm.maxRate() * 100.0,
                fvm.meanRate() * 100.0);
    const harness::ClusterReport clusters = harness::clusterBrams(fvm);
    for (auto cls : {harness::VulnClass::Low, harness::VulnClass::Mid,
                     harness::VulnClass::High}) {
        const auto index = static_cast<std::size_t>(cls);
        std::printf("  %-16s %5zu BRAMs (%5.1f%%), avg %.1f faults "
                    "(%.3f%%)\n",
                    harness::vulnClassName(cls), clusters.sizes[index],
                    clusters.shareOf(cls) * 100.0,
                    clusters.meanCounts[index],
                    clusters.meanRates[index] * 100.0);
    }

    // --- within-BRAM structure of the hottest BRAM ------------------------
    // The advanced path: this needs raw readback frames, so it talks to a
    // Board directly instead of going through the Campaign facade.
    if (cli.getBool("bram-map")) {
        pmbus::Board board(spec);
        board.setAmbientC(cli.getDouble("temp"));
        harness::fillPattern(board,
                             parsePattern(cli.getString("pattern")));
        board.setVccBramMv(spec.calib.bramVcrashMv);
        board.startReferenceRun();
        std::vector<harness::FaultObservation> faults;
        harness::FaultSummary summary;
        for (std::uint32_t b = 0; b < board.device().bramCount(); ++b) {
            harness::diffBram(board.device().bram(b),
                              board.readBramToHost(b), b, faults,
                              summary);
        }
        board.softReset();
        const harness::StructureReport structure =
            harness::analyzeStructure(faults);
        const harness::BramStructure *hottest = nullptr;
        for (const auto &entry : structure.perBram) {
            if (!hottest || entry.faults > hottest->faults)
                hottest = &entry;
        }
        if (hottest) {
            std::printf("\n== hottest BRAM %u (%d faults, top-2 column "
                        "share %.0f%%); bit 15 left, rows folded x32:\n%s",
                        hottest->bram, hottest->faults,
                        hottest->topTwoColumnShare() * 100.0,
                        harness::renderBramMap(*hottest, faults).c_str());
        }
    }

    // --- Fig 6: the FVM -----------------------------------------------------
    if (cli.getBool("fvm")) {
        std::printf("\n== Fault Variation Map (top of die first; ' ' "
                    "empty, '.' clean, 1-9/# buckets)\n%s",
                    fvm.render(floorplan).c_str());
    }
    return 0;
}

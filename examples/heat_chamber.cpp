/**
 * @file
 * Example: the paper's heat-chamber campaign (Section II-D, Fig 8).
 *
 * Puts one or more boards in the (modeled) temperature chamber and
 * repeats the critical-region sweep at several on-board temperatures,
 * demonstrating Inverse Thermal Dependence: at near-threshold voltages,
 * heating the 28 nm parts *lowers* the undervolting fault rate, and
 * with it the effective Vmin.
 *
 * Usage:
 *   heat_chamber [--platforms VC707,KC705-A] [--temps 50,60,70,80]
 *                [--runs 25]
 */

#include <cstdio>
#include <iostream>
#include <sstream>

#include "harness/temperature.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace uvolt;

namespace
{

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::istringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ','))
        parts.push_back(item);
    return parts;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Heat-chamber study of FPGA BRAM undervolting faults "
                  "(paper Fig 8)");
    cli.addString("platforms", "VC707,KC705-A", "comma-separated boards");
    cli.addString("temps", "50,60,70,80", "comma-separated degC");
    cli.addInt("runs", 25, "repetitions per voltage level");
    if (!cli.parse(argc, argv))
        return 0;

    std::vector<double> temps;
    for (const auto &t : splitCommas(cli.getString("temps")))
        temps.push_back(std::stod(t));

    for (const auto &name : splitCommas(cli.getString("platforms"))) {
        const auto &spec = fpga::findPlatform(name);
        pmbus::Board board(spec);

        std::printf("== %s in the chamber (ITD slope %.2f mV/degC)\n",
                    spec.name.c_str(), spec.calib.itdMvPerC);
        const harness::TemperatureStudy study =
            harness::runTemperatureStudy(
                board, temps, static_cast<int>(cli.getInt("runs")));

        // One column per temperature, one row per voltage.
        std::vector<std::string> header{"VCCBRAM"};
        for (double t : temps)
            header.push_back(fmtDouble(t, 0) + " degC");
        TextTable table(std::move(header));
        for (std::size_t p = 0;
             p < study.series.front().sweep.points.size(); ++p) {
            std::vector<std::string> row;
            row.push_back(fmtVolts(
                study.series.front().sweep.points[p].vccBramMv / 1000.0));
            for (const auto &series : study.series) {
                row.push_back(fmtDouble(
                    series.sweep.points[p].faultsPerMbit, 1));
            }
            table.addRow(std::move(row));
        }
        std::printf("faults per Mbit at each (voltage, temperature):\n");
        table.print(std::cout);

        if (temps.size() >= 2) {
            std::printf("fault-rate reduction %.0f -> %.0f degC at "
                        "Vcrash: %.2fx\n\n",
                        temps.front(), temps.back(),
                        study.reductionFactor(temps.back(),
                                              temps.front()));
        }
    }
    return 0;
}

/**
 * @file
 * Example: the characterize-once / place-many-times flow.
 *
 * The paper extracts each chip's Fault Variation Map as a pre-process
 * stage and then feeds it to the compile-time ICBP constraint (Fig
 * 12b). This example mirrors that split: on the first run it
 * characterizes the chip and saves the FVM to disk; subsequent runs
 * skip the (slow) characterization, load the map, and go straight to
 * placement — exactly how a build farm would consume per-board maps.
 *
 * Usage: fvm_cache [--platform VC707] [--file board.fvm] [--force]
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/clusterer.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "harness/fvm_io.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"

using namespace uvolt;

int
main(int argc, char **argv)
{
    CliParser cli("Characterize-once / place-many-times FVM flow");
    cli.addString("platform", "VC707", "board to use");
    cli.addString("file", "", "FVM cache path (default <platform>.fvm)");
    cli.addBool("force", "re-characterize even if the cache exists");
    if (!cli.parse(argc, argv))
        return 0;

    const auto &spec = fpga::findPlatform(cli.getString("platform"));
    pmbus::Board board(spec);
    std::string path = cli.getString("file");
    if (path.empty())
        path = spec.name + ".fvm";

    // --- Stage 1: obtain the chip's FVM (from cache if possible) ---------
    std::optional<harness::Fvm> fvm;
    if (!cli.getBool("force"))
        fvm = harness::loadFvm(board.device().floorplan(), path);
    if (fvm) {
        std::printf("loaded FVM for %s from %s (%.1f%% fault-free "
                    "BRAMs)\n",
                    fvm->platform().c_str(), path.c_str(),
                    fvm->faultFreeFraction() * 100.0);
    } else {
        std::printf("no usable FVM cache at %s; characterizing %s "
                    "(Listing 1)...\n", path.c_str(), spec.name.c_str());
        harness::SweepOptions options;
        options.runsPerLevel = 9;
        const harness::SweepResult sweep =
            harness::runCriticalSweep(board, options);
        fvm = harness::fvmFromSweep(sweep, board.device().floorplan());
        if (harness::saveFvm(*fvm, board.device().floorplan(), path))
            std::printf("saved FVM to %s\n", path.c_str());
    }

    // --- Stage 2: compile-time use of the map ----------------------------
    const harness::ClusterReport clusters = harness::clusterBrams(*fvm);
    std::printf("low-vulnerable pool: %zu BRAMs (%.1f%%)\n",
                clusters.lowVulnerableBrams.size(),
                clusters.shareOf(harness::VulnClass::Low) * 100.0);

    const nn::ZooSpec zoo = nn::paperForestSpec();
    const nn::QuantizedModel model = nn::quantize(nn::trainOrLoad(zoo));
    const accel::WeightImage image(model);
    if (image.logicalBramCount() > board.device().bramCount()) {
        std::printf("model does not fit %s; nothing to place\n",
                    spec.name.c_str());
        return 1;
    }
    const accel::Placement placement = accel::icbpPlacement(image, *fvm);

    // Deploy at Vcrash and report the protected outcome.
    accel::Accelerator accel(board, image, placement);
    board.setVccBramMv(spec.calib.bramVcrashMv);
    board.startReferenceRun();
    const auto faults = accel.weightFaults();
    std::printf("deployed %u weight BRAMs with ICBP at Vcrash: %llu "
                "weight-bit faults (last layer: %llu)\n",
                image.logicalBramCount(),
                static_cast<unsigned long long>(faults.total),
                static_cast<unsigned long long>(
                    faults.faultsPerLayer.back()));
    board.softReset();
    return 0;
}

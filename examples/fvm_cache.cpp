/**
 * @file
 * Example: the characterize-once / place-many-times flow.
 *
 * The paper extracts each chip's Fault Variation Map as a pre-process
 * stage and then feeds it to the compile-time ICBP constraint (Fig
 * 12b). This example mirrors that split with the FvmCache: on the
 * first run it characterizes the chip (a Campaign sweep) and files the
 * FVM under the cache directory; subsequent runs — or concurrent build
 * jobs, obtain() is single-flight — skip the slow characterization,
 * load the map, and go straight to placement. Exactly how a build farm
 * consumes per-board maps.
 *
 * Usage: fvm_cache [--platform VC707] [--dir uvolt_model_cache]
 *                  [--runs 9] [--force]
 */

#include <cstdio>
#include <filesystem>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/campaign.hh"
#include "harness/clusterer.hh"
#include "harness/fvm.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"

using namespace uvolt;

int
main(int argc, char **argv)
{
    CliParser cli("Characterize-once / place-many-times FVM flow");
    cli.addString("platform", "VC707", "board to use");
    cli.addString("dir", "", "FVM cache directory (default "
                             "UVOLT_CACHE_DIR or ./uvolt_model_cache)");
    cli.addInt("runs", 9, "characterization runs per voltage level");
    cli.addBool("force", "re-characterize even if the cache exists");
    if (!cli.parse(argc, argv))
        return 0;

    const auto &spec = fpga::findPlatform(cli.getString("platform"));
    const auto pattern = harness::PatternSpec::allOnes();
    const int runs = static_cast<int>(cli.getInt("runs"));

    std::string dir = cli.getString("dir");
    if (dir.empty())
        dir = harness::FvmCache::defaultDirectory();
    harness::FvmCache cache(dir);
    if (cli.getBool("force")) {
        std::error_code ec;
        std::filesystem::remove(
            dir + "/" + harness::FvmCache::keyFor(spec, pattern, runs) +
                ".fvm",
            ec);
    }

    // --- Stage 1: obtain the chip's FVM (from cache if possible) ---------
    const auto fvm =
        cache
            .obtain(spec, pattern, runs,
                    [&]() -> Expected<harness::Fvm> {
                        std::printf("no usable FVM cache for %s; "
                                    "characterizing (Listing 1)...\n",
                                    spec.name.c_str());
                        auto result = harness::Campaign::onPlatform(
                                          spec.name)
                                          .withPattern(pattern)
                                          .sweep(runs)
                                          .run();
                        if (!result.ok())
                            return result.error();
                        return *result.value().dies.front().mergedFvm;
                    })
            .orFatal();

    const auto stats = cache.stats();
    std::printf("FVM for %s out of %s (%s; %.1f%% fault-free BRAMs)\n",
                fvm->platform().c_str(), cache.directory().c_str(),
                stats.misses ? "freshly characterized" : "cache hit",
                fvm->faultFreeFraction() * 100.0);

    // --- Stage 2: compile-time use of the map ----------------------------
    const harness::ClusterReport clusters = harness::clusterBrams(*fvm);
    std::printf("low-vulnerable pool: %zu BRAMs (%.1f%%)\n",
                clusters.lowVulnerableBrams.size(),
                clusters.shareOf(harness::VulnClass::Low) * 100.0);

    pmbus::Board board(spec);
    const nn::ZooSpec zoo = nn::paperForestSpec();
    const nn::QuantizedModel model = nn::quantize(nn::trainOrLoad(zoo));
    const accel::WeightImage image(model);
    if (image.logicalBramCount() > board.device().bramCount()) {
        std::printf("model does not fit %s; nothing to place\n",
                    spec.name.c_str());
        return 1;
    }
    const accel::Placement placement = accel::icbpPlacement(image, *fvm);

    // Deploy at Vcrash and report the protected outcome.
    accel::Accelerator accel(board, image, placement);
    board.setVccBramMv(spec.calib.bramVcrashMv);
    board.startReferenceRun();
    const auto faults = accel.weightFaults();
    std::printf("deployed %u weight BRAMs with ICBP at Vcrash: %llu "
                "weight-bit faults (last layer: %llu)\n",
                image.logicalBramCount(),
                static_cast<unsigned long long>(faults.total),
                static_cast<unsigned long long>(
                    faults.faultsPerLayer.back()));
    board.softReset();
    return 0;
}

/**
 * @file
 * Example: the paper's Section III experiment end-to-end.
 *
 * Deploys the Table III fully-connected NN on a VC707 board model with
 * its ~1.5 M fixed-point weights in BRAM, then underscales VCCBRAM from
 * Vmin to Vcrash and reports, at every 10 mV step: the weight-bit fault
 * count, the classification error with the stock (default) placement,
 * the classification error with ICBP placement, and the BRAM power.
 *
 * Usage:
 *   nn_undervolt [--benchmark mnist|forest|reuters] [--platform VC707]
 *                [--eval 2500] [--csv out.csv]
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/clusterer.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "power/power_model.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace uvolt;

int
main(int argc, char **argv)
{
    CliParser cli("FPGA-based NN accelerator under BRAM undervolting "
                  "(paper Section III)");
    cli.addString("benchmark", "mnist", "mnist | forest | reuters");
    cli.addString("platform", "VC707", "board to deploy on");
    cli.addInt("eval", 2500, "test samples per voltage point");
    cli.addString("csv", "", "optional CSV output path");
    if (!cli.parse(argc, argv))
        return 0;

    const auto &spec = fpga::findPlatform(cli.getString("platform"));
    const std::string benchmark = cli.getString("benchmark");
    const auto eval_limit =
        static_cast<std::size_t>(cli.getInt("eval"));

    // --- 1. Train (or load) and quantize the application -----------------
    nn::ZooSpec zoo = benchmark == "forest" ? nn::paperForestSpec()
        : benchmark == "reuters"            ? nn::paperReutersSpec()
                                            : nn::paperMnistSpec();
    const nn::Network net = nn::trainOrLoad(zoo);
    const nn::QuantizedModel model = nn::quantize(net);
    const data::Dataset test_set = nn::makeTestSet(zoo);

    const double inherent =
        model.toNetwork().evaluateError(test_set, eval_limit);
    std::printf("benchmark %s on %s: %zu weights, inherent error %.2f%%, "
                "weight bits %.1f%% zero\n",
                benchmark.c_str(), spec.name.c_str(), model.totalWeights(),
                inherent * 100.0, model.zeroBitFraction() * 100.0);

    // --- 2. Characterize the chip and extract its FVM --------------------
    pmbus::Board board(spec);
    harness::SweepOptions sweep_options;
    sweep_options.runsPerLevel = 5; // FVM needs locations, not statistics
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, sweep_options);
    const harness::Fvm fvm =
        harness::fvmFromSweep(sweep, board.device().floorplan());

    // --- 3. Deploy with both placements ----------------------------------
    const accel::WeightImage image(model);
    if (!accel::defaultPlacement(image).fits(board.device().bramCount())) {
        std::printf("model does not fit on %s; choose a larger platform\n",
                    spec.name.c_str());
        return 1;
    }
    // Vulnerability-oblivious baseline (see DESIGN.md on "default").
    accel::Accelerator stock(
        board, image,
        accel::randomPlacement(image, board.device().bramCount(), 5));
    accel::Accelerator icbp(board, image,
                            accel::icbpPlacement(image, fvm));
    const power::RailPowerModel rail(spec);

    // --- 4. Voltage sweep -------------------------------------------------
    TextTable table({"VCCBRAM", "weight-faults(default)", "err(default)",
                     "weight-faults(ICBP)", "err(ICBP)", "BRAM power W"});
    for (int mv = spec.calib.bramVminMv; mv >= spec.calib.bramVcrashMv;
         mv -= 10) {
        board.setVccBramMv(mv);
        board.startReferenceRun();

        stock.program();
        const auto stock_faults = stock.weightFaults().total;
        const double stock_error =
            stock.classificationError(test_set, eval_limit);

        icbp.program();
        const auto icbp_faults = icbp.weightFaults().total;
        const double icbp_error =
            icbp.classificationError(test_set, eval_limit);

        table.addRow({fmtVolts(mv / 1000.0),
                      std::to_string(stock_faults),
                      fmtPercent(stock_error, 2),
                      std::to_string(icbp_faults),
                      fmtPercent(icbp_error, 2),
                      fmtDouble(rail.bramPower(mv / 1000.0), 3)});
    }
    board.softReset();

    table.print(std::cout);
    if (const std::string path = cli.getString("csv"); !path.empty())
        writeCsv(table, path);

    // --- 5. Headline comparison at Vcrash ---------------------------------
    std::printf("\nBRAM power saving at Vcrash vs Vmin: %.1f%%\n",
                rail.savingVs(spec.calib.bramVcrashMv / 1000.0,
                              spec.calib.bramVminMv / 1000.0) * 100.0);
    return 0;
}

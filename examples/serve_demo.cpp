/**
 * @file
 * Example: run the repo as a service.
 *
 * Boots an UvoltServer — the fault-tolerant serving daemon in front of
 * the characterization harness and the batched inference engine — and
 * walks through the whole service contract in a few seconds:
 *
 *  1. submit a characterization campaign and a burst of classify
 *     batches (the classify burst coalesces into shared blocks),
 *  2. feed the health tracker a scripted fault-pressure storm and
 *     watch the daemon degrade (shed low-priority work, raise the
 *     setpoint floor) and then ramp back to normal,
 *  3. drain, print the exactly-once ledger and the transition audit.
 *
 * Every step is deterministic: rerunning the demo (same flags) prints
 * the same sweeps, the same classes, and the same transition log.
 *
 * With --watch the demo also runs as its own operator: a MetricsPulse
 * thread rewrites a Prometheus text snapshot on a fixed period while
 * the live statusReport() screen (health state, queue depth, latency
 * quantiles, error-budget burn, profiler hot frames) prints between
 * phases — the same view `curl`ing a real exporter would give, without
 * a network stack. The hot-frame block comes from the in-process span
 * sampler, started alongside the pulse thread.
 *
 * Usage: serve_demo [--platform ZC702] [--workers 2] [--noise]
 *                   [--checkpoint-dir DIR] [--watch]
 *                   [--prom-out results/serve_demo_metrics.prom]
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "data/synthetic.hh"
#include "harness/report.hh"
#include "nn/network.hh"
#include "pmbus/fault_injector.hh"
#include "serve/server.hh"
#include "util/cli.hh"
#include "util/profiler.hh"

using namespace uvolt;

int
main(int argc, char **argv)
{
    CliParser cli("Undervolting-as-a-service demo daemon");
    cli.addString("platform", "ZC702", "board to characterize");
    cli.addInt("workers", 2, "serving threads");
    cli.addBool("noise", "serve through the harsh-environment injector");
    cli.addString("checkpoint-dir", "",
                  "characterize checkpoint directory (enables "
                  "resume-after-restart)");
    cli.addBool("watch", "print the live status screen between phases "
                         "and keep a Prometheus snapshot current");
    cli.addString("prom-out", "results/serve_demo_metrics.prom",
                  "--watch Prometheus snapshot path");
    cli.addInt("watch-period-ms", 50,
               "--watch snapshot rewrite period");
    // tryParse instead of parse: a daemon reports a typo'd flag
    // through its own channel instead of calling fatal().
    const auto parsed = cli.tryParse(argc, argv);
    if (!parsed.ok()) {
        std::fprintf(stderr, "serve_demo: %s\n",
                     parsed.error().message.c_str());
        return 2;
    }
    if (!parsed.value())
        return 0; // --help

    // A fixed classifier stands in for an undervolted accelerator; a
    // deployment would return accelerator.observedNetwork() here.
    auto mutable_net = std::make_shared<nn::Network>(std::vector<int>{
        data::forestFeatures, 16, data::forestClasses});
    mutable_net->initWeights(42);
    std::shared_ptr<const nn::Network> net = mutable_net;

    serve::ServerConfig config;
    config.workers = static_cast<std::size_t>(cli.getInt("workers"));
    config.checkpointDir = cli.getString("checkpoint-dir");
    if (cli.getBool("noise"))
        config.noise = pmbus::NoiseConfig::harsh(3, 0.02);
    config.health.window = 8;
    config.health.minSamples = 4;
    config.modelProvider =
        [net](int) -> Expected<std::shared_ptr<const nn::Network>> {
        return net;
    };
    const std::size_t capacity = config.queueCapacity;
    serve::UvoltServer server(std::move(config));
    std::printf("daemon up: %ld workers, queue %zu, injector %s\n\n",
                cli.getInt("workers"), capacity,
                cli.getBool("noise") ? "on" : "off");

    // --watch: a periodic Prometheus snapshot (what an exporter would
    // serve over HTTP) plus the human status screen between phases.
    const bool watch = cli.getBool("watch");
    std::optional<harness::MetricsPulse> pulse;
    if (watch) {
        pulse.emplace(cli.getString("prom-out"),
                      std::chrono::milliseconds(std::max<long>(
                          1, cli.getInt("watch-period-ms"))));
        // The status screens below fill their hot-frames block from
        // the span sampler while it runs.
        profiler::SpanProfiler::global().start();
    }
    const auto show_status = [&](const char *when) {
        if (!watch)
            return;
        std::printf("-- status: %s --\n%s\n", when,
                    server.statusReport().render().c_str());
    };

    // --- 1. a characterize and a coalescible classify burst -------------
    serve::CharacterizeRequest characterize;
    characterize.platform = cli.getString("platform");
    characterize.runsPerLevel = 3;
    auto sweep_future =
        server.submitCharacterize(characterize).orFatal();

    const data::Dataset set = data::makeForestLike(64, 5);
    std::vector<std::future<Expected<serve::ClassifyResponse>>> burst;
    for (int b = 0; b < 8; ++b) {
        serve::ClassifyRequest request;
        request.sampleCount = 8;
        request.setpointMv = 850;
        for (std::size_t s = 0; s < 8; ++s) {
            const auto row = set.sample(8 * b + s);
            request.samples.insert(request.samples.end(), row.begin(),
                                   row.end());
        }
        burst.push_back(server.submitClassify(request).orFatal());
    }

    const auto sweep = sweep_future.get().orFatal();
    std::printf("characterize %s: %zu voltage levels, %d attempt(s)%s\n",
                characterize.platform.c_str(),
                sweep.sweep.points.size(), sweep.attempts,
                sweep.resumed ? ", resumed from checkpoint" : "");
    int coalesced = 0;
    for (auto &future : burst) {
        const auto response = future.get().orFatal();
        coalesced += response.coalesced ? 1 : 0;
    }
    std::printf("classify burst: 8 batches x 8 samples, %d rode a "
                "coalesced block\n\n",
                coalesced);
    show_status("after the burst");

    // --- 2. a scripted fault-pressure storm ------------------------------
    std::printf("storm: pressure 3.0 x 12 observations, then calm\n");
    for (int i = 0; i < 12; ++i)
        server.observeFaultPressure(3.0);

    serve::ClassifyRequest low;
    low.sampleCount = 1;
    low.setpointMv = 850;
    const auto row = set.sample(0);
    low.samples.assign(row.begin(), row.end());
    low.priority = serve::Priority::low;
    const auto refused = server.submitClassify(low);
    std::printf("  state %s, floor +%d mV; low-priority submit: %s\n",
                serve::serveStateName(server.healthState()),
                server.floorRaiseMv(),
                refused.ok() ? "accepted (?)"
                             : refused.error().message.c_str());

    show_status("mid-storm (degraded)");

    for (int i = 0; i < 24; ++i)
        server.observeFaultPressure(0.0);
    std::printf("  after calm: state %s, floor +%d mV\n\n",
                serve::serveStateName(server.healthState()),
                server.floorRaiseMv());

    // --- 3. drain and audit ----------------------------------------------
    server.drain();
    show_status("drained");
    if (pulse) {
        pulse->stop(); // final snapshot write, then the thread joins
        std::printf("prometheus snapshot (%llu writes) -> %s\n",
                    static_cast<unsigned long long>(pulse->writes()),
                    cli.getString("prom-out").c_str());
        profiler::SpanProfiler::global().stop();
    }
    const auto stats = server.stats();
    std::printf("ledger: admitted %llu = completed %llu + failed %llu "
                "(shed %llu, retried %llu)\n",
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.retried));
    std::printf("health transitions:\n");
    for (const auto &transition : server.healthTransitions())
        std::printf("  obs %3llu: %-10s floor +%d mV\n",
                    static_cast<unsigned long long>(
                        transition.observation),
                    serve::serveStateName(transition.state),
                    transition.floorRaiseMv);
    server.stop();
    return stats.admitted == stats.completed + stats.failed ? 0 : 1;
}

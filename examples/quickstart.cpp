/**
 * @file
 * Quickstart: a five-minute tour of the library.
 *
 *  1. Power up a modeled Xilinx board (VC707 by default).
 *  2. Discover its SAFE / CRITICAL / CRASH voltage regions (Fig 1).
 *  3. Read BRAMs back at a reduced voltage and look at real faults.
 *  4. Ask the power model what the trip was worth.
 *
 * Usage: quickstart [--platform VC707|ZC702|KC705-A|KC705-B]
 *                   [--noise 0.02] [--seed 1]
 *
 * With --noise p the board sits in a harsh environment: serial frames
 * corrupt, PMBus transactions NACK, setpoints jitter, and the
 * configuration can crash spuriously near Vcrash — all with probability
 * p, drawn from a stream seeded by --seed. The retry/recovery layer
 * masks every one of them, so the printed results do not change.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/fault_analyzer.hh"
#include "power/power_model.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"

using namespace uvolt;

int
main(int argc, char **argv)
{
    CliParser cli("Quickstart tour of the FPGA undervolting library");
    cli.addString("platform", "VC707", "board to model");
    cli.addDouble("noise", 0.0,
                  "harsh-environment fault probability (0..1)");
    cli.addInt("seed", 1, "seed for the injected-fault stream");
    if (!cli.parse(argc, argv))
        return 0;

    // 1. Power up a board: device model + UCD9248 regulator + serial
    //    readback link + this chip's deterministic fault personality.
    const auto &spec = fpga::findPlatform(cli.getString("platform"));
    pmbus::Board board(spec);
    const double noise = cli.getDouble("noise");
    if (noise != 0.0) {
        board.attachNoise(pmbus::NoiseConfig::harsh(
            static_cast<std::uint64_t>(cli.getInt("seed")), noise));
        std::printf("harsh environment: %.1f%% injected fault "
                    "probability on every channel\n",
                    noise * 100.0);
    }
    std::printf("%s (%s, %s): %u BRAMs of 16 kbit, VCCBRAM nominal %d mV\n",
                spec.name.c_str(), spec.family.c_str(),
                spec.chipModel.c_str(), spec.bramCount, spec.vnomMv);

    // 2. Find the voltage regions by stepping the rail down 10 mV at a
    //    time, exactly like the paper's Fig 1 experiment.
    const harness::RegionResult regions =
        harness::discoverRegions(board, fpga::RailId::VccBram);
    std::printf("SAFE down to %d mV (guardband %.0f%%), CRITICAL down to "
                "%d mV, then CRASH\n",
                regions.vminMv, regions.guardband() * 100.0,
                regions.vcrashMv);

    // 3. Fill the BRAMs with 0xFFFF, drop into the critical region, and
    //    read one faulty BRAM back over the serial link.
    harness::fillPattern(board, harness::PatternSpec::allOnes());
    board.setVccBramMv(regions.vcrashMv);
    board.startReferenceRun();

    harness::FaultSummary summary;
    std::vector<harness::FaultObservation> faults;
    for (std::uint32_t b = 0; b < board.device().bramCount(); ++b)
        harness::diffBram(board.device().bram(b), board.readBramToHost(b),
                          b, faults, summary);
    std::printf("at %d mV: %llu faulty bitcells (%.0f per Mbit), "
                "%.2f%% of them \"1\"->\"0\" flips\n",
                regions.vcrashMv,
                static_cast<unsigned long long>(summary.totalFaults),
                harness::faultsPerMbit(
                    static_cast<double>(summary.totalFaults),
                    board.device().totalBits()),
                summary.oneToZeroFraction() * 100.0);
    if (!faults.empty()) {
        const auto &first = faults.front();
        std::printf("first fault: BRAM %u, row %u, bit %u\n", first.bram,
                    first.row, first.col);
    }

    // 4. What was it worth? Ask the power model.
    const power::RailPowerModel rail(spec);
    std::printf("BRAM rail power: %.3f W nominal -> %.3f W at Vmin "
                "(%.1fx) -> %.3f W at Vcrash\n",
                rail.bramPower(1.0), rail.bramPower(regions.vminMv / 1e3),
                rail.bramPower(1.0) / rail.bramPower(regions.vminMv / 1e3),
                rail.bramPower(regions.vcrashMv / 1e3));

    board.softReset();
    std::printf("board reset to nominal; DONE pin %s\n",
                board.donePin() ? "high" : "low");

    if (noise > 0.0) {
        const auto &link = board.link().stats();
        const auto &bus = board.pmbusStats();
        std::printf("surviving the environment cost: %llu frame CRC "
                    "errors -> %llu retransmits, %llu PMBus retries, "
                    "%llu setpoints rewritten\n",
                    static_cast<unsigned long long>(link.crcErrors),
                    static_cast<unsigned long long>(link.retransmits),
                    static_cast<unsigned long long>(bus.retries),
                    static_cast<unsigned long long>(bus.verifyMismatches));
    }
    return 0;
}

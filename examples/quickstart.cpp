/**
 * @file
 * Quickstart: a five-minute tour of the library.
 *
 *  1. Describe a characterization campaign with the Campaign builder
 *     (one modeled Xilinx board, the paper's 0xFFFF pattern).
 *  2. Run it: region discovery (Fig 1) + a Listing-1 sweep in one call.
 *  3. Peek under the hood: read a faulty BRAM back over the serial link.
 *  4. Ask the power model what the trip was worth.
 *
 * Usage: quickstart [--platform VC707|ZC702|KC705-A|KC705-B]
 *                   [--runs 25] [--noise 0.02] [--seed 1]
 *
 * With --noise p the board sits in a harsh environment: serial frames
 * corrupt, PMBus transactions NACK, setpoints jitter, and the
 * configuration can crash spuriously near Vcrash — all with probability
 * p, drawn from a stream seeded by --seed. The retry/recovery layer
 * masks every one of them, so the printed results do not change.
 */

#include <cstdio>

#include "harness/campaign.hh"
#include "harness/fault_analyzer.hh"
#include "power/power_model.hh"
#include "pmbus/board.hh"
#include "util/cli.hh"

using namespace uvolt;

int
main(int argc, char **argv)
{
    CliParser cli("Quickstart tour of the FPGA undervolting library");
    cli.addString("platform", "VC707", "board to model");
    cli.addInt("runs", 25, "repetitions per voltage level");
    cli.addDouble("noise", 0.0,
                  "harsh-environment fault probability (0..1)");
    cli.addInt("seed", 1, "seed for the injected-fault stream");
    if (!cli.parse(argc, argv))
        return 0;

    const auto &spec = fpga::findPlatform(cli.getString("platform"));
    std::printf("%s (%s, %s): %u BRAMs of 16 kbit, VCCBRAM nominal %d mV\n",
                spec.name.c_str(), spec.family.c_str(),
                spec.chipModel.c_str(), spec.bramCount, spec.vnomMv);

    // 1.+2. One fluent description, one call: find the SAFE / CRITICAL /
    //    CRASH regions of Fig 1, then sweep the critical region per the
    //    paper's Listing 1. Everything below rides on the result.
    harness::Campaign campaign =
        harness::Campaign::onPlatform(spec.name)
            .withPattern(harness::PatternSpec::allOnes())
            .sweep(static_cast<int>(cli.getInt("runs")))
            .discoverRegions();
    const double noise = cli.getDouble("noise");
    if (noise != 0.0) {
        campaign.withNoise(pmbus::NoiseConfig::harsh(
            static_cast<std::uint64_t>(cli.getInt("seed")), noise));
        std::printf("harsh environment: %.1f%% injected fault "
                    "probability on every channel\n",
                    noise * 100.0);
    }
    const harness::FleetResult result = campaign.run().orFatal();
    const harness::FleetJobOutcome &outcome = result.jobs.front();

    const harness::RegionResult &regions = *outcome.bramRegions;
    std::printf("SAFE down to %d mV (guardband %.0f%%), CRITICAL down to "
                "%d mV, then CRASH\n",
                regions.vminMv, regions.guardband() * 100.0,
                regions.vcrashMv);

    const harness::SweepPoint &worst = outcome.sweep.atVcrash();
    std::printf("at %d mV: median %.0f faulty bitcells (%.0f per Mbit), "
                "%.2f%% of them \"1\"->\"0\" flips\n",
                worst.vccBramMv, worst.medianFaults, worst.faultsPerMbit,
                worst.oneToZeroFraction * 100.0);

    // 3. Under the hood (the advanced path the builder wraps): power up
    //    the board directly, drop into the critical region, and read one
    //    faulty BRAM back over the serial link.
    pmbus::Board board(spec);
    harness::fillPattern(board, harness::PatternSpec::allOnes());
    board.setVccBramMv(regions.vcrashMv);
    board.startReferenceRun();

    harness::FaultSummary summary;
    std::vector<harness::FaultObservation> faults;
    for (std::uint32_t b = 0; b < board.device().bramCount(); ++b)
        harness::diffBram(board.device().bram(b), board.readBramToHost(b),
                          b, faults, summary);
    if (!faults.empty()) {
        const auto &first = faults.front();
        std::printf("first fault: BRAM %u, row %u, bit %u\n", first.bram,
                    first.row, first.col);
    }
    board.softReset();

    // 4. What was it worth? Ask the power model.
    const power::RailPowerModel rail(spec);
    std::printf("BRAM rail power: %.3f W nominal -> %.3f W at Vmin "
                "(%.1fx) -> %.3f W at Vcrash\n",
                rail.bramPower(1.0), rail.bramPower(regions.vminMv / 1e3),
                rail.bramPower(1.0) / rail.bramPower(regions.vminMv / 1e3),
                rail.bramPower(regions.vcrashMv / 1e3));

    if (noise > 0.0) {
        const auto &cost = result.resilience;
        std::printf("surviving the environment cost: %llu crash "
                    "recoveries, %llu runs retried, %llu link "
                    "retransmits, %llu PMBus retries\n",
                    static_cast<unsigned long long>(cost.crashRecoveries),
                    static_cast<unsigned long long>(cost.runsRetried),
                    static_cast<unsigned long long>(cost.linkRetransmits),
                    static_cast<unsigned long long>(cost.pmbusRetries));
    }
    return 0;
}

#!/usr/bin/env python3
"""Cross-run drift gate over the uvolt-timeline-v1 run history.

Usage:
    scripts/check_drift.py [results/timeline.jsonl] \
        [--min-history 5] [--z-threshold 3.5] [--min-step 0.05] \
        [--creep-threshold 0.10] [--warn-only] [--selftest]

check_regression.py compares one run against one committed baseline;
this gate compares every metric against its OWN history, which catches
the two failure modes a single-baseline gate is blind to:

  step   The newest value is a robust-z outlier against the metric's
         history: |x - median| / (1.4826 * MAD) > --z-threshold, AND
         the relative change exceeds --min-step (so a tight series
         with near-zero MAD can't flag a 0.1 % wiggle). Median/MAD
         instead of mean/stddev so one historic outlier can't widen
         the band and hide a real regression.

  creep  Slow compounding drift, each PR inside the step band: the
         EWMA (alpha 0.3) of the series has moved more than
         --creep-threshold relative to the median of the first half
         of the history.

Direction matters: for latency/cost metrics (the default) only drift
UP is a failure; metrics whose name contains "speedup", "throughput"
or "rps" are better-is-higher and only drift DOWN fails.

Series are keyed (tool, metric) over rows appended by bench_all,
ext_fleet and ext_serve; a metric with fewer than --min-history rows
is reported as "warming up" and not gated. Exit status: 0 clean,
1 drift detected, 2 bad input. --warn-only reports but exits 0.
--selftest runs the gate against four synthetic histories (flat,
20 % step, 2 %-per-run creep, noisy-but-stable) and verifies the
expected verdict for each.
"""

import argparse
import json
import sys

SCHEMA = "uvolt-timeline-v1"

# Metrics where larger is better; everything else is cost-like.
GOOD_UP_TOKENS = ("speedup", "throughput", "rps")


def is_good_up(metric):
    lowered = metric.lower()
    return any(token in lowered for token in GOOD_UP_TOKENS)


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values, center):
    return median([abs(v - center) for v in values])


def quantile(values, q):
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (position - low) * (ordered[high] -
                                              ordered[low])


def robust_spread(values, center):
    """Scaled-to-sigma spread; the IQR floor keeps a bimodal history
    (e.g. a series alternating between two machine states, MAD = 0)
    from turning every new sample into an infinite-z outlier."""
    return max(1.4826 * mad(values, center),
               0.7413 * (quantile(values, 0.75) -
                         quantile(values, 0.25)))


def ewma(values, alpha=0.3):
    smoothed = values[0]
    for value in values[1:]:
        smoothed = alpha * value + (1.0 - alpha) * smoothed
    return smoothed


def analyze_series(values, good_up, z_threshold, min_step,
                   creep_threshold):
    """Findings for one metric's chronological history."""
    findings = []
    history, latest = values[:-1], values[-1]

    # -- step: newest value vs robust statistics of its past ----------
    center = median(history)
    spread = robust_spread(history, center)
    if center != 0.0:
        relative = (latest - center) / abs(center)
        worse = relative < 0 if good_up else relative > 0
        if worse and abs(relative) > min_step:
            z = abs(latest - center) / spread if spread > 0 else float(
                "inf")
            if z > z_threshold:
                findings.append(
                    ("step", f"latest {latest:g} vs median {center:g} "
                             f"({relative:+.1%}, robust z "
                             f"{min(z, 999.0):.1f})"))

    # -- creep: smoothed present vs the oldest half -------------------
    baseline = median(values[:max(2, len(values) // 2)])
    smoothed = ewma(values)
    if baseline != 0.0:
        drift = (smoothed - baseline) / abs(baseline)
        worse = drift < 0 if good_up else drift > 0
        if worse and abs(drift) > creep_threshold:
            findings.append(
                ("creep", f"EWMA {smoothed:g} vs early median "
                          f"{baseline:g} ({drift:+.1%})"))
    return findings


def load_series(path):
    """{(tool, metric): [values, oldest first]} from a timeline file."""
    series = {}
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as err:
        sys.exit(f"error: cannot read '{path}': {err}")
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as err:
            sys.exit(f"error: {path}:{number}: {err}")
        if row.get("schema") != SCHEMA:
            sys.exit(f"error: {path}:{number}: not a {SCHEMA} row")
        tool = row.get("tool", "?")
        for metric, value in row.get("metrics", {}).items():
            if isinstance(value, (int, float)):
                series.setdefault((tool, metric), []).append(
                    float(value))
    return series


def run_gate(series, args):
    """Print the report; return the number of drifting series."""
    drifting = 0
    warming = 0
    for (tool, metric), values in sorted(series.items()):
        if len(values) < args.min_history:
            warming += 1
            print(f"  {tool}/{metric}: {len(values)} run(s), warming "
                  f"up (gate starts at {args.min_history})")
            continue
        findings = analyze_series(values, is_good_up(metric),
                                  args.z_threshold, args.min_step,
                                  args.creep_threshold)
        if not findings:
            print(f"  {tool}/{metric}: {len(values)} runs, stable "
                  f"(median {median(values):g})")
            continue
        drifting += 1
        for kind, detail in findings:
            print(f"DRIFT [{kind}] {tool}/{metric}: {detail}",
                  file=sys.stderr)
    print(f"{len(series)} series: {len(series) - drifting - warming} "
          f"stable, {warming} warming up, {drifting} drifting")
    return drifting


def selftest(args):
    """The gate against synthetic histories with known verdicts."""
    flat = [100.0 + (0.5 if i % 2 else -0.5) for i in range(10)]
    step = [100.0 + (0.5 if i % 2 else -0.5) for i in range(9)]
    step.append(120.0)  # the injected 20 % slowdown
    creep = [100.0 + 3.0 * i for i in range(10)]  # 3 %/run compounding
    noisy = [100.0 + (-8.0 if i % 2 else 8.0) for i in range(10)]
    speedup_drop = [4.0 + (0.02 if i % 2 else -0.02) for i in range(9)]
    speedup_drop.append(3.0)  # a speedup collapsing is DOWN-bad

    cases = [
        ("flat", "wall_ms", flat, 0),
        ("step", "wall_ms", step, 1),
        ("creep", "wall_ms", creep, 1),
        ("noisy-stable", "wall_ms", noisy, 0),
        ("speedup-drop", "speedup", speedup_drop, 1),
    ]
    failures = 0
    for name, metric, values, expected in cases:
        findings = analyze_series(values, is_good_up(metric),
                                  args.z_threshold, args.min_step,
                                  args.creep_threshold)
        got = 1 if findings else 0
        verdict = "ok" if got == expected else "SELFTEST FAILURE"
        detail = "; ".join(f"{k}: {d}" for k, d in findings) or "stable"
        print(f"  {name:>14}: expect {'drift' if expected else 'clean'},"
              f" got {'drift' if got else 'clean'} ({detail}) {verdict}")
        failures += got != expected
    if failures:
        print(f"selftest: {failures} case(s) FAILED", file=sys.stderr)
        return 1
    print("selftest: all cases behave")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("timeline", nargs="?",
                        default="results/timeline.jsonl",
                        help="uvolt-timeline-v1 JSONL history")
    parser.add_argument("--min-history", type=int, default=5,
                        help="runs required before a metric is gated")
    parser.add_argument("--z-threshold", type=float, default=3.5,
                        help="robust-z cut for a step change")
    parser.add_argument("--min-step", type=float, default=0.05,
                        help="minimum relative change for a step flag")
    parser.add_argument("--creep-threshold", type=float, default=0.10,
                        help="relative EWMA drift that flags creep")
    parser.add_argument("--warn-only", action="store_true",
                        help="report drift but exit 0")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the detector on synthetic "
                             "histories and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest(args)

    print(f"# drift gate: {args.timeline} (robust-z steps, EWMA creep)")
    series = load_series(args.timeline)
    if not series:
        print("empty timeline: nothing to gate (append runs with "
              "bench_all / ext_fleet / ext_serve)")
        return 0
    drifting = run_gate(series, args)
    if drifting and args.warn_only:
        print("warn-only mode: not failing the build", file=sys.stderr)
        return 0
    return 1 if drifting else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Append one uvolt-timeline-v1 row from a uvolt-bench-v1 document.

Usage:
    scripts/append_timeline.py BENCH.json \
        [--timeline results/timeline.jsonl] [--tool NAME] \
        [--gate GATE.json] [--started-at ISO8601]

The C++ binaries (bench_all, ext_fleet, ext_serve) stamp the timeline
themselves; this script covers the other direction — CI legs that
already hold a bench document (e.g. a sanitizer build, or a historical
BENCH_uvolt.json being backfilled) and want it in the run history that
scripts/check_drift.py gates. Each benchmark's median wall ns/iter
becomes one metric ("<name>.median_ns"), matching what bench_all
writes natively, so backfilled and native rows share a series.

--gate ingests a uvolt-gate-v1 verdict (check_regression.py --json)
and carries each gated benchmark's baseline ratio along as
"<name>.gate_ratio" — the timeline then records not just how fast the
run was but how close to its committed budget it came.

The append is a single O_APPEND write of one line, the same discipline
util/fsio's appendFileRecord uses, so stamping from concurrent CI legs
interleaves whole rows.
"""

import argparse
import hashlib
import json
import os
import sys
import time

BENCH_SCHEMA = "uvolt-bench-v1"
GATE_SCHEMA = "uvolt-gate-v1"
TIMELINE_SCHEMA = "uvolt-timeline-v1"


def load(path, schema):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load '{path}': {err}")
    if doc.get("schema") != schema:
        sys.exit(f"error: '{path}' is not a {schema} document "
                 f"(schema = {doc.get('schema')!r})")
    return doc


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("bench", help="uvolt-bench-v1 document")
    parser.add_argument("--timeline",
                        default=os.environ.get(
                            "UVOLT_TIMELINE", "results/timeline.jsonl"),
                        help="timeline JSONL to append to")
    parser.add_argument("--tool", default="bench_all",
                        help="tool name the row is keyed under")
    parser.add_argument("--gate", default="",
                        help="uvolt-gate-v1 verdict to fold in")
    parser.add_argument("--started-at", default="",
                        help="row timestamp (default: now, UTC)")
    args = parser.parse_args()

    doc = load(args.bench, BENCH_SCHEMA)
    started = args.started_at or time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    metrics = {}
    duration_ms = 0.0
    for bench in doc.get("benchmarks", []):
        median_ns = float(bench.get("wall", {}).get("median_ns", 0.0))
        metrics[bench["name"] + ".median_ns"] = median_ns
        duration_ms += median_ns / 1e6

    if args.gate:
        gate = load(args.gate, GATE_SCHEMA)
        for row in gate.get("rows", []):
            if isinstance(row.get("ratio"), (int, float)):
                metrics[row["name"] + ".gate_ratio"] = row["ratio"]

    options = doc.get("options", {})
    config = (f"{args.tool};repeats={options.get('repeats', 0)};"
              f"min_time_ms={options.get('min_time_ms', 0.0)}")
    digest = hashlib.sha256(config.encode()).hexdigest()[:16]

    row = {
        "schema": TIMELINE_SCHEMA,
        "tool": args.tool,
        "run_id": f"{digest[:8]}-{started}",
        "git_sha": doc.get("git_sha", "unknown"),
        "started_at": started,
        "config_digest": digest,
        "workers": 1,
        "duration_ms": round(duration_ms, 3),
        "metrics": {name: round(value, 6)
                    for name, value in metrics.items()},
        "top_frames": [],
    }

    parent = os.path.dirname(args.timeline)
    if parent:
        os.makedirs(parent, exist_ok=True)
    line = json.dumps(row, separators=(", ", ": ")) + "\n"
    fd = os.open(args.timeline,
                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)
    print(f"timeline: appended {args.tool} run {row['run_id']} "
          f"({len(metrics)} metrics) -> {args.timeline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf-regression gate over two uvolt-bench-v1 JSON documents.

Usage:
    scripts/check_regression.py baseline.json candidate.json \
        [--tolerance 0.5] [--override NAME=RATIO ...] [--warn-only] \
        [--json PATH]

Compares the min-ns-per-iteration wall time (the scheduler-noise floor,
the most stable statistic the bench framework reports) of every
benchmark present in both documents. A benchmark fails when

    candidate_min > baseline_min * (1 + tolerance)

with `tolerance` the global --tolerance (default 0.5, i.e. a 50 % slack
for machine-to-machine noise — an injected 2x slowdown still trips it)
unless overridden per benchmark with --override NAME=RATIO (the
DEFAULT_OVERRIDES table below ships repo-default widenings, e.g. for
the serving daemon's tail-latency rows; the CLI wins). Benchmarks
present in only one document are listed as added/removed and do not
fail the gate. Exit status: 0 all pass, 1 regression(s), 2 bad input.

--json PATH additionally writes a machine-readable verdict document
(schema "uvolt-gate-v1": per-benchmark baseline/candidate/ratio/
tolerance/verdict rows plus the overall verdict) that
scripts/append_timeline.py ingests when stamping the perf timeline.

Also accepts a pair of uvolt-run-manifest-v1 documents (ledger
manifests): then the gate compares run duration_ms with the same
tolerance and reports counter drift informationally.
"""

import argparse
import json
import sys

BENCH_SCHEMA = "uvolt-bench-v1"
MANIFEST_SCHEMA = "uvolt-run-manifest-v1"

# Per-benchmark tolerances that ship with the repo. Tail latency of the
# serving daemon is inherently noisier than a calibrated micro-bench
# minimum: the p50/p99 rows come from ONE closed-loop run whose tail is
# set by whichever characterize campaigns land in it, so they get a
# wider band than the global default. In the other direction, the
# packed fault-domain kernels (readback, device count, sweep inner
# loop) are tight single-purpose loops whose min-of-repeats is very
# stable run to run, so they get a band NARROWER than the global 50 %:
# losing even a third of the popcount-path win is a regression worth
# stopping. A command-line --override for the same name wins over this
# table.
DEFAULT_OVERRIDES = {
    "SV_ServeE2EP50": 1.5,
    "SV_ServeE2EP99": 1.5,
    # Fleet fan-out wall time is set by OS thread scheduling of 1-3
    # coarse iterations; the min-of-repeats still swings ~2x run to run
    # on a shared machine, so these get the tail-latency band too.
    "BM_FleetFanout0Workers": 1.5,
    "BM_FleetFanout1Worker": 1.5,
    "BM_FleetFanout8Workers": 1.5,
    "BM_MnistEvalBatched8Workers": 1.5,
    "BM_BramReadbackAtVcrash": 0.35,
    "BM_DeviceFaultCount": 0.35,
    "BM_SweepInnerLoopTelemetryOff": 0.35,
}


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load '{path}': {err}")
    schema = doc.get("schema")
    if schema not in (BENCH_SCHEMA, MANIFEST_SCHEMA):
        sys.exit(f"error: '{path}' has unknown schema {schema!r}")
    return doc


def bench_rows(doc):
    """{name: min wall ns/iter} of a bench document."""
    rows = {}
    for bench in doc.get("benchmarks", []):
        wall = bench.get("wall", {})
        rows[bench["name"]] = float(wall.get("min_ns", 0.0))
    return rows


def manifest_rows(doc):
    """The comparable quantities of a run manifest."""
    execution = doc.get("execution", {})
    return {"run.duration_ms": float(execution.get("duration_ms", 0.0))}


def fmt_ns(value):
    return f"{value:,.1f}"


def print_table(rows):
    widths = [max(len(str(cell)) for cell in col) for col in zip(*rows)]
    for i, row in enumerate(rows):
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            print("-" * (sum(widths) + 2 * (len(widths) - 1)))


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="reference JSON (committed)")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative slowdown (default 0.5)")
    parser.add_argument("--override", action="append", default=[],
                        metavar="NAME=RATIO",
                        help="per-benchmark tolerance override")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 "
                             "(sanitizer builds)")
    parser.add_argument("--json", metavar="PATH", default="",
                        help="also write a machine-readable "
                             "uvolt-gate-v1 verdict document")
    args = parser.parse_args()

    overrides = dict(DEFAULT_OVERRIDES)
    for item in args.override:
        name, _, ratio = item.partition("=")
        if not ratio:
            sys.exit(f"error: malformed --override {item!r}")
        overrides[name] = float(ratio)

    old_doc = load(args.baseline)
    new_doc = load(args.candidate)
    if old_doc["schema"] != new_doc["schema"]:
        sys.exit("error: cannot compare documents of different schemas")
    extract = (bench_rows if old_doc["schema"] == BENCH_SCHEMA
               else manifest_rows)
    old = extract(old_doc)
    new = extract(new_doc)

    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))
    shared = [name for name in new if name in old]  # candidate order

    rows = [("benchmark", "baseline ns", "candidate ns", "ratio",
             "tolerance", "verdict")]
    failures = []
    skipped = []
    gate_rows = []
    for name in shared:
        tolerance = overrides.get(name, args.tolerance)
        base, cand = old[name], new[name]
        if base <= 0.0:
            # A zero/negative baseline makes the ratio meaningless
            # (division by zero, or an obviously corrupt measurement).
            # Skip rather than fail, but warn loudly: the benchmark is
            # effectively ungated until the baseline is re-measured.
            rows.append((name, fmt_ns(base), fmt_ns(cand), "n/a",
                         f"{tolerance:.2f}", "SKIP (zero baseline)"))
            skipped.append(name)
            gate_rows.append({"name": name, "baseline_ns": base,
                              "candidate_ns": cand, "ratio": None,
                              "tolerance": tolerance,
                              "verdict": "skip"})
            continue
        ratio = cand / base
        ok = ratio <= 1.0 + tolerance
        rows.append((name, fmt_ns(base), fmt_ns(cand), f"{ratio:.3f}",
                     f"{tolerance:.2f}", "ok" if ok else "REGRESSION"))
        gate_rows.append({"name": name, "baseline_ns": base,
                          "candidate_ns": cand, "ratio": ratio,
                          "tolerance": tolerance,
                          "verdict": "ok" if ok else "regression"})
        if not ok:
            failures.append((name, ratio))

    print(f"# perf gate: {args.candidate} vs {args.baseline} "
          f"(metric: min wall ns/iter)")
    print_table(rows)
    for name in added:
        print(f"note: '{name}' is new (no baseline, not gated)")
    for name in removed:
        print(f"note: '{name}' disappeared from the candidate")
    for name in skipped:
        print(f"warning: '{name}' has a zero baseline and was NOT "
              f"gated; re-measure the baseline to restore coverage",
              file=sys.stderr)

    if args.json:
        verdict = {
            "schema": "uvolt-gate-v1",
            "baseline": args.baseline,
            "candidate": args.candidate,
            "metric": "min wall ns/iter",
            "rows": gate_rows,
            "added": added,
            "removed": removed,
            "verdict": "regression" if failures else "ok",
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(verdict, handle, indent=2)
            handle.write("\n")
        print(f"gate verdict -> {args.json}")

    if failures:
        for name, ratio in failures:
            print(f"REGRESSION: {name} is {ratio:.2f}x the baseline",
                  file=sys.stderr)
        if args.warn_only:
            print("warn-only mode: not failing the build",
                  file=sys.stderr)
            return 0
        return 1
    print(f"all {len(shared)} shared benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

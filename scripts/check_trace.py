#!/usr/bin/env python3
"""Structural gate over the observability artifacts a run leaves behind.

Usage:
    scripts/check_trace.py trace.json [--min-flows N] \
        [--prometheus FILE] [--blackbox FILE ...]

Validates, in order:

  Trace (Chrome trace-event JSON, the harness/report.hh exporter):
    - top-level shape: {"traceEvents": [...]} with only M/X/s/t/f
      phase records, each carrying the fields its phase requires
      (X: name/ts/dur/tid; flow records: id/ts/tid).
    - span linkage: every X event carrying args.parent != "0" must
      name another X event's args.span — a dangling parent means a
      TraceScope closed against a stack the exporter never saw.
    - flow pairing: per flow id, exactly one "s", exactly one "f",
      any number of "t" steps, and the start is the earliest record
      of the flow (ts order). An orphan step or a flow with no finish
      means a request path dropped its context mid-hop.
    - --min-flows N: at least N distinct flow ids (a serving run that
      traced nothing is a failure, not a pass).

  --prometheus FILE (text exposition format):
    - every sample line's metric has a preceding # TYPE line;
    - histogram `_bucket` series are cumulative (monotone in le order),
      the +Inf bucket equals `_count`, and `_sum` is present.

  --blackbox FILE (flight-recorder dump, repeatable):
    - schema "uvolt-blackbox-v1", a non-empty event list, and every
      event carrying seq/ns/level/component/message with seq strictly
      increasing (the cross-shard merge order).

Exit status: 0 all pass, 1 structural failure(s), 2 bad input.
"""

import argparse
import json
import sys

BLACKBOX_SCHEMA = "uvolt-blackbox-v1"
FLOW_PHASES = {"s", "t", "f"}
KNOWN_PHASES = {"M", "X"} | FLOW_PHASES


def fail(messages, text):
    messages.append(text)


def check_trace(path, min_flows, messages):
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"check_trace: cannot read {path}: {error}")

    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail(messages, f"{path}: no traceEvents array")
        return

    spans = set()
    parents = []  # (event index, parent id)
    flows = {}  # id -> list of (ts, ph)
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(messages, f"{path}: event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            fail(messages,
                 f"{path}: event {index} has unknown ph {phase!r}")
            continue
        if phase == "M":
            continue
        missing = [key for key in ("name", "ts", "tid")
                   if key not in event]
        if phase == "X" and "dur" not in event:
            missing.append("dur")
        if phase in FLOW_PHASES and "id" not in event:
            missing.append("id")
        if missing:
            fail(messages,
                 f"{path}: {phase} event {index} missing "
                 f"{', '.join(missing)}")
            continue
        if phase == "X":
            args = event.get("args", {})
            span = args.get("span")
            if span is not None and span != "0":
                spans.add(span)
            parent = args.get("parent")
            if parent is not None and parent != "0":
                parents.append((index, parent))
        else:
            flows.setdefault(event["id"], []).append(
                (float(event["ts"]), phase))

    for index, parent in parents:
        if parent not in spans:
            fail(messages,
                 f"{path}: event {index} parent {parent} names no "
                 f"recorded span")

    for flow_id, points in sorted(flows.items()):
        phases = [ph for _, ph in points]
        starts = phases.count("s")
        finishes = phases.count("f")
        if starts != 1 or finishes != 1:
            fail(messages,
                 f"{path}: flow {flow_id} has {starts} start(s) and "
                 f"{finishes} finish(es) (want exactly 1 + 1)")
            continue
        # Equal timestamps resolve in s -> t -> f order: a start and a
        # step in the same microsecond are fine, a finish strictly
        # before the start is not.
        rank = {"s": 0, "t": 1, "f": 2}
        ordered = sorted(points, key=lambda p: (p[0], rank[p[1]]))
        if ordered[0][1] != "s":
            fail(messages,
                 f"{path}: flow {flow_id} does not start with its "
                 f"\"s\" record (earliest is \"{ordered[0][1]}\")")

    if len(flows) < min_flows:
        fail(messages,
             f"{path}: {len(flows)} flow(s), need at least {min_flows}")
    return len(flows)


def check_prometheus(path, messages):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise SystemExit(f"check_trace: cannot read {path}: {error}")

    typed = set()
    histograms = {}  # base name -> {"buckets": [(le, v)], "sum": x,
    #                                "count": n}
    samples = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(messages, f"{path}:{number}: malformed TYPE line")
                continue
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        try:
            series, value_text = line.rsplit(" ", 1)
            value = float(value_text)
        except ValueError:
            fail(messages, f"{path}:{number}: malformed sample line")
            continue
        samples += 1
        name = series.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if name not in typed and base not in typed:
            fail(messages,
                 f"{path}:{number}: sample for {name} has no # TYPE")
        if name.endswith("_bucket"):
            le = series.split('le="', 1)
            if len(le) != 2:
                fail(messages,
                     f"{path}:{number}: _bucket without an le label")
                continue
            bound_text = le[1].split('"', 1)[0]
            bound = (float("inf") if bound_text == "+Inf"
                     else float(bound_text))
            histograms.setdefault(base, {"buckets": [], "sum": None,
                                         "count": None})
            histograms[base]["buckets"].append((bound, value))
        elif name.endswith("_sum"):
            histograms.setdefault(base, {"buckets": [], "sum": None,
                                         "count": None})
            histograms[base]["sum"] = value
        elif name.endswith("_count"):
            histograms.setdefault(base, {"buckets": [], "sum": None,
                                         "count": None})
            histograms[base]["count"] = value

    if samples == 0:
        fail(messages, f"{path}: no samples at all")
    for base, parts in sorted(histograms.items()):
        buckets = parts["buckets"]
        if not buckets:
            fail(messages, f"{path}: histogram {base} has no buckets")
            continue
        values = [v for _, v in buckets]
        if values != sorted(values):
            fail(messages,
                 f"{path}: histogram {base} buckets are not cumulative")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds) or bounds[-1] != float("inf"):
            fail(messages,
                 f"{path}: histogram {base} le bounds not ascending to "
                 f"+Inf")
        if parts["count"] is None:
            fail(messages, f"{path}: histogram {base} missing _count")
        elif buckets[-1][0] == float("inf") and \
                buckets[-1][1] != parts["count"]:
            fail(messages,
                 f"{path}: histogram {base} +Inf bucket "
                 f"{buckets[-1][1]} != _count {parts['count']}")
        if parts["sum"] is None:
            fail(messages, f"{path}: histogram {base} missing _sum")


def check_blackbox(path, messages):
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"check_trace: cannot read {path}: {error}")

    if document.get("schema") != BLACKBOX_SCHEMA:
        fail(messages,
             f"{path}: schema {document.get('schema')!r} is not "
             f"{BLACKBOX_SCHEMA}")
        return
    events = document.get("events")
    if not isinstance(events, list) or not events:
        fail(messages, f"{path}: empty or missing event list")
        return
    last_seq = 0
    for index, event in enumerate(events):
        missing = [key for key in
                   ("seq", "ns", "level", "component", "message")
                   if key not in event]
        if missing:
            fail(messages,
                 f"{path}: event {index} missing {', '.join(missing)}")
            continue
        if event["seq"] <= last_seq:
            fail(messages,
                 f"{path}: event {index} seq {event['seq']} not "
                 f"strictly increasing")
        last_seq = event["seq"]


def main():
    parser = argparse.ArgumentParser(
        description="validate trace / prometheus / blackbox artifacts")
    parser.add_argument("trace", help="Chrome trace-event JSON path")
    parser.add_argument("--min-flows", type=int, default=0,
                        help="fail unless at least N distinct flows")
    parser.add_argument("--prometheus", default=None,
                        help="Prometheus text snapshot to validate")
    parser.add_argument("--blackbox", action="append", default=[],
                        help="flight-recorder dump to validate "
                             "(repeatable)")
    arguments = parser.parse_args()

    messages = []
    flow_count = check_trace(arguments.trace, arguments.min_flows,
                             messages)
    if arguments.prometheus:
        check_prometheus(arguments.prometheus, messages)
    for box in arguments.blackbox:
        check_blackbox(box, messages)

    for message in messages:
        print(f"FAIL {message}")
    if not messages:
        extras = []
        if arguments.prometheus:
            extras.append("prometheus ok")
        if arguments.blackbox:
            extras.append(f"{len(arguments.blackbox)} blackbox(es) ok")
        detail = f" ({', '.join(extras)})" if extras else ""
        print(f"OK {arguments.trace}: {flow_count} well-formed "
              f"flow(s){detail}")
    return 1 if messages else 0


if __name__ == "__main__":
    sys.exit(main())

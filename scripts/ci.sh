#!/usr/bin/env bash
# Tier-1 verification, three times: a plain optimized build, an
# AddressSanitizer+UBSan build (UVOLT_SANITIZE=ON), and a
# ThreadSanitizer build (UVOLT_SANITIZE=thread) of the concurrent
# suites. The ASan pass exists for the resilience layer in particular —
# retry loops, crash recovery, and checkpoint resume juggle buffers and
# board state in ways worth running under ASan every time. The TSan
# pass guards the fleet engine: the ThreadPool, the single-flight
# FvmCache, and parallel campaigns sharing chip models.
#
# Usage: scripts/ci.sh [jobs]

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_suite() {
    local build_dir="$1"
    shift
    cmake -B "$build_dir" -S . "$@"
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier 1: plain build =="
run_suite build

echo "== perf gate: bench_all vs committed baseline =="
# Reduced repeats keep the leg fast; the gate metric is the min across
# repeats, which converges quickly. The committed baseline lives next
# to the bench sources; refresh it with:
#   ./build/bench/bench_all --out bench/BENCH_baseline.json
./build/bench/bench_all --repeats 5 --min-time-ms 10 \
    --out build/BENCH_uvolt.json --timeline ""
python3 scripts/check_regression.py \
    bench/BENCH_baseline.json build/BENCH_uvolt.json \
    --json build/gate.json

echo "== serve gate: closed-loop latency vs committed baseline =="
# The serving daemon's identity phase (injector on vs off must be
# bit-identical) and exactly-once ledger are the binary's exit code;
# the p50/p99/req-cost rows it exports are gated like any other bench
# (per-row tolerance widenings live in check_regression.py's
# DEFAULT_OVERRIDES — tail latency is noisier than a calibrated
# micro-bench minimum).
./build/bench/ext_serve --out build/BENCH_serve.json --timeline ""
python3 scripts/check_regression.py \
    bench/BENCH_baseline.json build/BENCH_serve.json

echo "== observability gate: trace flows, prometheus, blackboxes =="
# A harsh closed-loop run with telemetry ON must leave behind (a) a
# Chrome trace where every request is one well-formed flow (exactly one
# start and finish, no orphan steps, every parent span present), (b) a
# Prometheus snapshot with cumulative histogram buckets, and (c) at
# least one flight-recorder blackbox from the scripted degradation
# storm. scripts/check_trace.py is the structural gate over all three.
obs_dir="build/obs"
rm -rf "$obs_dir" && mkdir -p "$obs_dir"
UVOLT_TELEMETRY=ON ./build/bench/ext_serve --noise --skip-identity \
    --requests 300 --clients 4 \
    --out "$obs_dir/BENCH_obs.json" \
    --trace-out "$obs_dir/trace.json" \
    --prom-out "$obs_dir/metrics.prom" \
    --blackbox-dir "$obs_dir" \
    --ledger-dir "$obs_dir/ledger" \
    --profile-out "" --timeline "" > /dev/null
python3 scripts/check_trace.py "$obs_dir/trace.json" --min-flows 100 \
    --prometheus "$obs_dir/metrics.prom" \
    --blackbox "$obs_dir/blackbox_degraded.json"

echo "== profiling leg: sampler artifacts, identity, overhead =="
# The span sampler rides a full ext_serve run at 2 kHz: phase 1 proves
# quiet-vs-storm bit-identity WITH the sampler attached (the binary
# exits nonzero on divergence — sampling must never perturb results),
# and the run leaves a real collapsed-stack profile + flame graph
# behind. Overhead is gated on the most stable aggregate the run
# exports (SV_ServeReqCost = load wall clock / completed): min of
# three sampled runs within 3 % of min of three unsampled runs.
# Single-run tail rows swing +-15 % on a shared machine; the
# min-of-3 floor is what converges (same statistic the bench
# framework gates on).
prof_dir="build/prof"
rm -rf "$prof_dir" && mkdir -p "$prof_dir"
for i in 1 2 3; do
    UVOLT_TELEMETRY=ON ./build/bench/ext_serve --skip-identity \
        --requests 400 --clients 4 \
        --out "$prof_dir/BENCH_off_$i.json" \
        --profile-out "" --flame-out "" --timeline "" \
        --trace-out "" --prom-out "" --blackbox-dir "" \
        --ledger-dir "" > /dev/null
    UVOLT_TELEMETRY=ON UVOLT_PROFILE_HZ=2000 ./build/bench/ext_serve \
        --skip-identity --requests 400 --clients 4 \
        --out "$prof_dir/BENCH_on_$i.json" \
        --profile-out "$prof_dir/profile_ext_serve.folded" \
        --flame-out "$prof_dir/profile_ext_serve.html" \
        --timeline "$prof_dir/timeline.jsonl" \
        --trace-out "" --prom-out "" --blackbox-dir "" \
        --ledger-dir "" > /dev/null
done
# Identity under sampling, once (phase 1 is the assertion).
UVOLT_TELEMETRY=ON UVOLT_PROFILE_HZ=2000 ./build/bench/ext_serve \
    --requests 100 --clients 2 \
    --out "$prof_dir/BENCH_identity.json" \
    --profile-out "$prof_dir/identity.folded" --flame-out "" \
    --timeline "" --trace-out "" --prom-out "" --blackbox-dir "" \
    --ledger-dir "" > /dev/null
test -s "$prof_dir/profile_ext_serve.folded"
test -s "$prof_dir/profile_ext_serve.html"
grep -q 'id="graph"' "$prof_dir/profile_ext_serve.html"
python3 - "$prof_dir" <<'EOF'
import json, sys
prof_dir = sys.argv[1]
def req_cost(path):
    doc = json.load(open(path))
    return next(b["wall"]["min_ns"] for b in doc["benchmarks"]
                if b["name"] == "SV_ServeReqCost")
off = min(req_cost(f"{prof_dir}/BENCH_off_{i}.json") for i in (1, 2, 3))
on = min(req_cost(f"{prof_dir}/BENCH_on_{i}.json") for i in (1, 2, 3))
ratio = on / off
print(f"sampler overhead: req-cost {off/1e6:.3f} ms -> {on/1e6:.3f} ms "
      f"(x{ratio:.3f}, gate 1.03)")
sys.exit(0 if ratio <= 1.03 else 1)
EOF

echo "== drift gate: timeline selftest + committed run history =="
# The detector first proves itself on synthetic histories (flat and
# noisy-stable stay clean; a 20 % step, compounding creep, and a
# collapsing speedup all flag). Then the committed seed plus this
# run's fresh rows (the three profiled ext_serve runs above and the
# perf-gate bench document) go through the real gate warn-only —
# machine-to-machine drift between the seed host and a CI host is
# expected; the committed seed is refreshed from the host that owns
# the baseline.
python3 scripts/check_drift.py --selftest
cp bench/timeline_seed.jsonl "$prof_dir/history.jsonl"
cat "$prof_dir/timeline.jsonl" >> "$prof_dir/history.jsonl"
python3 scripts/append_timeline.py build/BENCH_uvolt.json \
    --gate build/gate.json --timeline "$prof_dir/history.jsonl"
python3 scripts/check_drift.py "$prof_dir/history.jsonl" --warn-only

echo "== memory-backend fleet gate (ext_membackends) =="
# Drives one mixed BRAM+HBM+SRAM fleet through the FleetEngine serially
# and at 1 and 8 workers — the binary exits non-zero if any pair of
# runs diverges — then pins the per-technology envelope table (Vmin,
# Vcrash, guardband, faults/Mbit, power saving) to its committed golden.
./build/bench/ext_membackends > /dev/null
cmp results/ext_membackends.csv goldens/ext_membackends.csv
echo "mixed-technology fleet bit-identical; envelope CSV matches golden"

echo "== golden figures byte-identity (all 22 fig/tab CSVs) =="
# Regenerate every paper figure/table CSV from scratch and require each
# to be byte-identical to its committed golden. The figure benches are
# deterministic (seeded RNG, shared model cache), so any diff is a real
# behaviour change — this is the executable proof that the BRAM path
# survives refactors bit-for-bit.
export UVOLT_CACHE_DIR="$PWD/uvolt_model_cache"
for fig in fig01_guardband tab1_platforms fig03_voltage_sweep \
        fig04_patterns tab2_stability fig05_clustering fig06_fvm_vc707 \
        fig07_fvm_die2die fig08_temperature fig09_precision tab3_nn_spec \
        fig10_power_breakdown fig11_nn_error fig13_layer_vuln \
        fig14_icbp; do
    ./build/bench/"$fig" > /dev/null
done
unset UVOLT_CACHE_DIR
python3 scripts/check_figures.py

echo "== batched-evaluation identity check (fig11) =="
# The batched engine's contract is bit-identity at any batch width and
# worker count. Prove it end to end: run the Fig 11 sweep twice — once
# at batch 1 (the scalar-equivalent width) and once at batch 64 with a
# 4-worker pool — and require byte-identical CSVs. A scratch directory
# keeps the committed results/ untouched; the shared model cache avoids
# retraining; a reduced UVOLT_EVAL_LIMIT keeps the leg seconds-scale
# (identity must hold at ANY limit, so a small one proves as much as
# the full sweep).
identity_dir="$(mktemp -d)"
trap 'rm -rf "$identity_dir"' EXIT
export UVOLT_CACHE_DIR="$PWD/uvolt_model_cache"
(cd "$identity_dir" && mkdir -p results &&
    UVOLT_BATCH=1 UVOLT_EVAL_LIMIT=400 \
        "$OLDPWD/build/bench/fig11_nn_error" > /dev/null &&
    mv results/fig11_nn_error.csv fig11_batch1.csv &&
    UVOLT_BATCH=64 UVOLT_EVAL_LIMIT=400 UVOLT_EVAL_WORKERS=4 \
        "$OLDPWD/build/bench/fig11_nn_error" > /dev/null &&
    cmp results/fig11_nn_error.csv fig11_batch1.csv)
unset UVOLT_CACHE_DIR
echo "fig11 CSV byte-identical at batch 1 vs batch 64 + 4 workers"

echo "== tier 1: sanitized build (ASan + UBSan) =="
# fatal() death tests exit(1) mid-flight by design; leak checking on
# those intentional exits would drown the signal.
ASAN_OPTIONS=detect_leaks=0 run_suite build-asan -DUVOLT_SANITIZE=ON

# Sanitizer timings are not comparable to the plain baseline; run the
# suite once (it must not crash under ASan) and gate warn-only.
ASAN_OPTIONS=detect_leaks=0 ./build-asan/bench/bench_all \
    --repeats 3 --min-time-ms 5 --out build-asan/BENCH_uvolt.json
python3 scripts/check_regression.py --warn-only \
    bench/BENCH_baseline.json build-asan/BENCH_uvolt.json

echo "== bit-twiddling under UBSan (UVOLT_SANITIZE=undefined) =="
# The packed fault-domain layout lives on shifts, masks, and narrowing
# casts (bram.cc, fault_domain.hh, chip_fault_model.cc, the mask
# ladders of the mem:: backends, the analyzer's ctz walk). A UBSan-only
# build is fast enough to run the four suites that exercise every one
# of those paths on each CI pass — ASan's memory instrumentation isn't
# needed here and would double the leg.
cmake -B build-ubsan -S . -DUVOLT_SANITIZE=undefined
cmake --build build-ubsan -j "$jobs" \
    --target fpga_test vmodel_test harness_test membackend_test
UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/fpga_test
UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/vmodel_test
UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/harness_test
UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/membackend_test

echo "== tier 1: thread-sanitized build (TSan) =="
# Only the suites that actually spin threads: the fleet engine, the
# resilience layer it schedules, and the telemetry shards every worker
# writes. A TSan run of everything would triple CI time for
# single-threaded code. UVOLT_TELEMETRY=ON turns recording on for the
# whole fleet suite so the lock-free counter shards and per-thread span
# buffers are exercised under every scheduling the pool produces.
# nn_test joined the list with the batched evaluation engine: its
# pool fan-out writes per-batch slots from worker threads.
cmake -B build-tsan -S . -DUVOLT_SANITIZE=thread
cmake --build build-tsan -j "$jobs" \
    --target fleet_test resilience_test telemetry_test nn_test \
    profiler_test
UVOLT_TELEMETRY=ON ./build-tsan/tests/fleet_test
UVOLT_TELEMETRY=ON ./build-tsan/tests/telemetry_test
./build-tsan/tests/resilience_test
UVOLT_TELEMETRY=ON ./build-tsan/tests/nn_test \
    --gtest_filter='BatchedEval.*'
# The sampler reads other threads' span stacks while eight threads
# churn spans — exactly the interleaving TSan exists to judge.
UVOLT_TELEMETRY=ON ./build-tsan/tests/profiler_test

echo "== serve soak: TSan + fault injector, exactly-once =="
# The whole serving stack under ThreadSanitizer with the harsh
# environment on: closed-loop clients, admission races, the coalescer,
# cooperative cancellation. The binary exits nonzero if any admitted
# request is lost or duplicated or the drained queue is not empty —
# and TSan fails the leg on any data race it sees along the way.
# Request count is sized so the leg stays around half a minute under
# TSan's ~10x slowdown; latency rows are not gated here (sanitizer
# timings are incomparable).
cmake --build build-tsan -j "$jobs" --target ext_serve serve_test
./build-tsan/tests/serve_test
./build-tsan/bench/ext_serve --noise --skip-identity \
    --requests 800 --clients 6 --out build-tsan/BENCH_serve.json

echo "== telemetry compiled out (-DUVOLT_TELEMETRY=OFF) =="
# The instrumented call sites must compile and pass with the layer
# reduced to stubs — the zero-cost configuration ships this way.
# serve_test rides along since PR 8: the serving tier now carries trace
# contexts, flight-recorder notes, and status reporting, all of which
# must still build and behave with the layer stubbed out.
cmake -B build-notel -S . -DUVOLT_TELEMETRY=OFF
cmake --build build-notel -j "$jobs" \
    --target telemetry_test fleet_test serve_test profiler_test \
    timeline_test
./build-notel/tests/telemetry_test
./build-notel/tests/fleet_test
./build-notel/tests/serve_test
# The profiler's fold/export layer still works compiled out (the
# sampler is a stub); the timeline never depended on telemetry.
./build-notel/tests/profiler_test
./build-notel/tests/timeline_test

echo "== all suites passed =="

#!/usr/bin/env bash
# Tier-1 verification, three times: a plain optimized build, an
# AddressSanitizer+UBSan build (UVOLT_SANITIZE=ON), and a
# ThreadSanitizer build (UVOLT_SANITIZE=thread) of the concurrent
# suites. The ASan pass exists for the resilience layer in particular —
# retry loops, crash recovery, and checkpoint resume juggle buffers and
# board state in ways worth running under ASan every time. The TSan
# pass guards the fleet engine: the ThreadPool, the single-flight
# FvmCache, and parallel campaigns sharing chip models.
#
# Usage: scripts/ci.sh [jobs]

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_suite() {
    local build_dir="$1"
    shift
    cmake -B "$build_dir" -S . "$@"
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier 1: plain build =="
run_suite build

echo "== tier 1: sanitized build (ASan + UBSan) =="
# fatal() death tests exit(1) mid-flight by design; leak checking on
# those intentional exits would drown the signal.
ASAN_OPTIONS=detect_leaks=0 run_suite build-asan -DUVOLT_SANITIZE=ON

echo "== tier 1: thread-sanitized build (TSan) =="
# Only the suites that actually spin threads: the fleet engine, the
# resilience layer it schedules, and the telemetry shards every worker
# writes. A TSan run of everything would triple CI time for
# single-threaded code. UVOLT_TELEMETRY=ON turns recording on for the
# whole fleet suite so the lock-free counter shards and per-thread span
# buffers are exercised under every scheduling the pool produces.
cmake -B build-tsan -S . -DUVOLT_SANITIZE=thread
cmake --build build-tsan -j "$jobs" \
    --target fleet_test resilience_test telemetry_test
UVOLT_TELEMETRY=ON ./build-tsan/tests/fleet_test
UVOLT_TELEMETRY=ON ./build-tsan/tests/telemetry_test
./build-tsan/tests/resilience_test

echo "== telemetry compiled out (-DUVOLT_TELEMETRY=OFF) =="
# The instrumented call sites must compile and pass with the layer
# reduced to stubs — the zero-cost configuration ships this way.
cmake -B build-notel -S . -DUVOLT_TELEMETRY=OFF
cmake --build build-notel -j "$jobs" --target telemetry_test fleet_test
./build-notel/tests/telemetry_test
./build-notel/tests/fleet_test

echo "== all suites passed =="

#!/usr/bin/env bash
# Tier-1 verification, twice: a plain optimized build, then an
# AddressSanitizer+UBSan build (UVOLT_SANITIZE=ON). The sanitized pass
# exists for the resilience layer in particular — retry loops, crash
# recovery, and checkpoint resume juggle buffers and board state in ways
# worth running under ASan every time.
#
# Usage: scripts/ci.sh [jobs]

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_suite() {
    local build_dir="$1"
    shift
    cmake -B "$build_dir" -S . "$@"
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier 1: plain build =="
run_suite build

echo "== tier 1: sanitized build (ASan + UBSan) =="
# fatal() death tests exit(1) mid-flight by design; leak checking on
# those intentional exits would drown the signal.
ASAN_OPTIONS=detect_leaks=0 run_suite build-asan -DUVOLT_SANITIZE=ON

echo "== both suites passed =="

/**
 * @file
 * Offline training (the paper trains its MNIST baseline in MATLAB with
 * 60000 images; here a plain C++ SGD trainer produces the weight sets).
 * Backpropagation with momentum over logsig hidden layers and a
 * softmax/cross-entropy output.
 */

#ifndef UVOLT_NN_TRAINER_HH
#define UVOLT_NN_TRAINER_HH

#include <cstdint>

#include "data/dataset.hh"
#include "nn/network.hh"

namespace uvolt::nn
{

/** Training hyper-parameters. */
struct TrainOptions
{
    int epochs = 6;
    double learningRate = 0.05;
    double momentum = 0.9;
    double lrDecay = 0.7;     ///< per-epoch learning-rate multiplier
    double weightDecay = 0.0; ///< L2 penalty (0 = off)
    std::uint64_t seed = 7;   ///< init + shuffling seed
    bool verbose = false;     ///< inform() a line per epoch
};

/** Epoch-level training record. */
struct TrainReport
{
    int epochs = 0;
    double finalTrainError = 1.0;
    double finalLoss = 0.0;
};

/**
 * Train @a net in place on @a train. Weights are (re-)initialized from
 * options.seed, so the result is a pure function of (topology, dataset,
 * options).
 */
TrainReport train(Network &net, const data::Dataset &train,
                  const TrainOptions &options = {});

/** Options for the MATLAB-style output-layer refinement. */
struct OutputMseOptions
{
    int epochs = 0;            ///< 0 disables the phase entirely
    double learningRate = 0.5; ///< on the (tiny) output layer only
    double momentum = 0.9;
    float targetHigh = 1.0f;   ///< logsig target for the true class
    float targetLow = 0.0f;    ///< logsig target for the other classes
};

/**
 * Refine only the output layer with mean-squared error against logsig
 * activations (the paper's MATLAB flow trains logsig neurons against
 * 0/1 targets). Hidden layers are frozen, so their activations are
 * computed once and the refinement runs thousands of cheap epochs.
 *
 * The characteristic result — and the reason this phase exists — is
 * the paper's Fig 9 weight distribution: chasing saturated 0/1 targets
 * inflates output-layer weights far beyond (-1, 1) (their Layer4 needs
 * a 4-bit digit field) while decision margins stay ordinary, which is
 * what makes the output layer the most fault-sensitive one.
 */
TrainReport finetuneOutputMse(Network &net, const data::Dataset &train,
                              const OutputMseOptions &options);

} // namespace uvolt::nn

#endif // UVOLT_NN_TRAINER_HH

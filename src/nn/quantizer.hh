/**
 * @file
 * Per-layer minimum-precision fixed-point quantization (paper Fig 9 and
 * Table III). Every weight becomes a 16-bit sign-magnitude word; each
 * layer gets the smallest digit (integer) field that represents its
 * largest weight, with the remaining bits spent on fraction. On the
 * paper's trained baseline only the last layer needs digit bits.
 */

#ifndef UVOLT_NN_QUANTIZER_HH
#define UVOLT_NN_QUANTIZER_HH

#include <vector>

#include "fxp/fixed_point.hh"
#include "nn/network.hh"

namespace uvolt::nn
{

/** One layer's quantized weights. */
struct QuantizedLayer
{
    int inputs = 0;
    int outputs = 0;
    fxp::QFormat format;             ///< the layer's minimum precision
    std::vector<fxp::Word> weights;  ///< row-major, outputs x inputs
    std::vector<float> biases;       ///< biases stay in the datapath

    /** Fraction of "0" bits across this layer's weight words. */
    double zeroBitFraction() const;
};

/** The whole quantized model. */
struct QuantizedModel
{
    std::vector<int> layerSizes;
    std::vector<QuantizedLayer> layers;

    /** Total weight words (== total weights). */
    std::size_t totalWeights() const;

    /**
     * Fraction of "0" bits across all weight words; the paper measures
     * 76.3% for its MNIST baseline, the source of the NN's inherent
     * resilience to "1"->"0" undervolting flips.
     */
    double zeroBitFraction() const;

    /** Rebuild a float network from the quantized weights. */
    Network toNetwork() const;
};

/**
 * Quantize a trained float network with per-layer minimum precision:
 * digitBits(layer) = minDigitBits(max |w| of the layer).
 */
QuantizedModel quantize(const Network &net);

/**
 * Quantization sanity metric: classification-error delta between the
 * float network and its quantized/dequantized twin on a dataset. Both
 * evaluations run through the batched engine with the same options.
 *
 * @param limit evaluate only the first @a limit samples; 0 and
 * limit > set size both mean the whole set (see Network::evaluateError).
 * The precision-sweep bench passes paperEvalLimit so its delta is
 * computed on the same sample count as the vulnerability analysis.
 */
double quantizationErrorDelta(const Network &net,
                              const data::Dataset &test_set,
                              std::size_t limit = 0);

/** As above with full evaluation options (batch width, worker pool). */
double quantizationErrorDelta(const Network &net,
                              const data::Dataset &test_set,
                              const EvalOptions &options);

} // namespace uvolt::nn

#endif // UVOLT_NN_QUANTIZER_HH

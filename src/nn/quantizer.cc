#include "nn/quantizer.hh"

#include "util/logging.hh"

namespace uvolt::nn
{

double
QuantizedLayer::zeroBitFraction() const
{
    return fxp::zeroBitFraction(weights);
}

std::size_t
QuantizedModel::totalWeights() const
{
    std::size_t total = 0;
    for (const auto &layer : layers)
        total += layer.weights.size();
    return total;
}

double
QuantizedModel::zeroBitFraction() const
{
    std::uint64_t ones = 0;
    std::uint64_t bits = 0;
    for (const auto &layer : layers) {
        ones += fxp::popcount(std::span<const fxp::Word>(layer.weights));
        bits += static_cast<std::uint64_t>(layer.weights.size()) *
            fxp::wordBits;
    }
    return bits == 0 ? 0.0
                     : 1.0 - static_cast<double>(ones) /
            static_cast<double>(bits);
}

Network
QuantizedModel::toNetwork() const
{
    Network net(layerSizes);
    for (int l = 0; l < net.layerCount(); ++l) {
        const auto &quantized = layers[static_cast<std::size_t>(l)];
        auto &layer = net.layer(l);
        auto weights = layer.weights();
        for (std::size_t i = 0; i < weights.size(); ++i) {
            weights[i] = static_cast<float>(
                quantized.format.dequantize(quantized.weights[i]));
        }
        auto biases = layer.biases();
        for (std::size_t i = 0; i < biases.size(); ++i)
            biases[i] = quantized.biases[i];
    }
    return net;
}

QuantizedModel
quantize(const Network &net)
{
    QuantizedModel model;
    model.layerSizes = net.layerSizes();
    model.layers.reserve(static_cast<std::size_t>(net.layerCount()));

    for (int l = 0; l < net.layerCount(); ++l) {
        const auto &layer = net.layer(l);
        QuantizedLayer quantized;
        quantized.inputs = layer.inputs();
        quantized.outputs = layer.outputs();
        quantized.format =
            fxp::QFormat(fxp::minDigitBits(layer.maxAbsWeight()));
        quantized.weights.resize(layer.weights().size());
        for (std::size_t i = 0; i < quantized.weights.size(); ++i) {
            quantized.weights[i] =
                quantized.format.quantize(layer.weights()[i]);
        }
        quantized.biases.assign(layer.biases().begin(),
                                layer.biases().end());
        model.layers.push_back(std::move(quantized));
    }
    return model;
}

double
quantizationErrorDelta(const Network &net, const data::Dataset &test_set,
                       std::size_t limit)
{
    return quantizationErrorDelta(net, test_set,
                                  EvalOptions{.limit = limit});
}

double
quantizationErrorDelta(const Network &net, const data::Dataset &test_set,
                       const EvalOptions &options)
{
    const Network rebuilt = quantize(net).toNetwork();
    return rebuilt.evaluateError(test_set, options) -
        net.evaluateError(test_set, options);
}

} // namespace uvolt::nn

/**
 * @file
 * Fully-connected feed-forward network (the paper's Table III model).
 *
 * The baseline is a 6-layer topology (784, 1024, 512, 256, 128, 10):
 * logistic-sigmoid ("logsig") activations on the hidden layers and a
 * softmax output that yields the class distribution. This module holds
 * the float reference model used for training and as the fault-free
 * accuracy baseline; the fixed-point, BRAM-backed version lives in the
 * accel module.
 */

#ifndef UVOLT_NN_NETWORK_HH
#define UVOLT_NN_NETWORK_HH

#include <span>
#include <vector>

#include "data/dataset.hh"

namespace uvolt
{
class ThreadPool;
}

namespace uvolt::nn
{

/** Logistic sigmoid, the paper's hidden activation. */
float logsig(float x);

/** In-place softmax over a span of logits. */
void softmaxInPlace(std::span<float> logits);

/** One dense (fully-connected) weight layer. */
class DenseLayer
{
  public:
    DenseLayer(int inputs, int outputs);

    int inputs() const { return inputs_; }
    int outputs() const { return outputs_; }

    /** Row-major weights: weight(o, i) multiplies input i for output o. */
    float weight(int output, int input) const;
    void setWeight(int output, int input, float value);

    float bias(int output) const { return biases_[
        static_cast<std::size_t>(output)]; }
    void setBias(int output, float value);

    /** Flat storage access (used by the quantizer and the accelerator). */
    std::span<const float> weights() const { return weights_; }
    std::span<float> weights() { return weights_; }
    std::span<const float> biases() const { return biases_; }
    std::span<float> biases() { return biases_; }

    /** z = W x + b. @a z must have outputs() entries. */
    void forward(std::span<const float> x, std::span<float> z) const;

    /**
     * Batched forward: Z = W X + b over @a batch samples at once.
     *
     * @a x is the inputs() x batch activation matrix with sample s in
     * column s and the batch dimension contiguous (element (i, s) at
     * x[i * batch + s]); @a z is the outputs() x batch result in the
     * same layout. The kernel is cache-blocked (a weight tile and an
     * activation tile stay resident while every output of the block is
     * accumulated) and lets the compiler vectorize across the batch
     * columns — independent accumulators, so no float reassociation.
     *
     * Bit-identical per column to forward(): each (output, sample)
     * accumulator starts from the bias and adds the products in
     * ascending input order, exactly the scalar chain; the blocking
     * only interleaves *independent* accumulators.
     */
    void forwardBatch(std::span<const float> x, std::span<float> z,
                      int batch) const;

    /** Largest absolute weight (per-layer precision analysis, Fig 9). */
    float maxAbsWeight() const;

  private:
    int inputs_;
    int outputs_;
    std::vector<float> weights_;
    std::vector<float> biases_;
};

/**
 * The sample count shared by every sampled accuracy study (precision
 * sweep, per-layer vulnerability): one consistent evalLimit so their
 * error numbers are computed on the same prefix of the test set and
 * stay comparable across figures.
 */
inline constexpr std::size_t paperEvalLimit = 2500;

/**
 * Knobs of the batched evaluation engine.
 *
 * `limit` follows the evaluateError() convention: 0 means the whole
 * set, and a limit larger than the set silently clamps to the set size
 * (both spellings of "everything" are deliberate — see
 * Network::evaluateError). `batch` is the number of test-set columns
 * per forwardBatch() call (0 = defaultEvalBatch(), i.e. the UVOLT_BATCH
 * environment override or 64). A non-null `pool` fans the batches out
 * over its workers; each batch writes its misclassification count into
 * a pre-assigned slot and the reduction sums the slots in plan order,
 * so the result is bit-identical at any worker count (a 0-worker pool
 * runs the same code inline).
 */
struct EvalOptions
{
    std::size_t limit = 0; ///< 0 = whole set; > size clamps to size
    int batch = 0;         ///< columns per kernel call; 0 = default
    ThreadPool *pool = nullptr; ///< fan batches out; null = this thread
};

/**
 * Evaluation batch width used when EvalOptions::batch is 0: the
 * UVOLT_BATCH environment variable when set (clamped to >= 1),
 * otherwise 64 (the fastest width measured in BM_MnistEvalBatched).
 */
int defaultEvalBatch();

/** The full network. */
class Network
{
  public:
    /**
     * @param layer_sizes neuron counts per layer, length >= 2; e.g. the
     * paper's {784, 1024, 512, 256, 128, 10}.
     */
    explicit Network(std::vector<int> layer_sizes);

    /** Number of weight layers (layer_sizes.size() - 1). */
    int layerCount() const { return static_cast<int>(layers_.size()); }

    DenseLayer &layer(int index);
    const DenseLayer &layer(int index) const;

    const std::vector<int> &layerSizes() const { return sizes_; }

    /** Total weight parameters (~1.5 M for the paper's topology). */
    std::size_t totalWeights() const;

    /** Glorot-uniform weight initialization, deterministic in seed. */
    void initWeights(std::uint64_t seed);

    /**
     * Forward pass: hidden layers through logsig, output through
     * softmax. Returns the class distribution.
     */
    std::vector<float> infer(std::span<const float> input) const;

    /** Arg-max classification. */
    int classify(std::span<const float> input) const;

    /**
     * Batched inference: class distributions for @a batch samples.
     * @a inputs holds the samples back to back in dataset order (sample
     * s at inputs[s * inputFeatures]), @a probs receives the
     * distributions back to back (sample s at probs[s * classCount]).
     * Column results are bit-identical to infer() on each sample.
     */
    void inferBatch(std::span<const float> inputs,
                    std::span<float> probs, int batch) const;

    /**
     * Batched arg-max classification of @a batch samples laid out as in
     * inferBatch(). Bit-identical to classify() per sample.
     */
    void classifyBatch(std::span<const float> inputs,
                       std::span<int> classes, int batch) const;

    /**
     * Scatter-gather variant of classifyBatch() for request coalescing:
     * each entry of @a samples is one sample's feature vector, living
     * wherever its owner put it (a serving layer packs one block from
     * many clients' buffers without copying them into a contiguous
     * staging area first). The samples are gathered straight into the
     * kernel's feature-major layout and run through the same batched
     * stack, so the result is bit-identical to classify() per sample
     * and to classifyBatch() on a contiguous copy. @a classes must
     * have samples.size() slots; every sample must have input-layer
     * width.
     */
    void classifyScattered(std::span<const std::span<const float>> samples,
                           std::span<int> classes) const;

    /**
     * Classification error on a dataset (fraction mis-classified),
     * computed by the batched engine with default options — see the
     * EvalOptions overload. Bit-identical to evaluateErrorScalar().
     *
     * @param limit evaluate only the first @a limit samples. Both
     * limit == 0 and limit > set.size() mean "the whole set"; callers
     * that want a fixed sample budget across figures should pass
     * paperEvalLimit explicitly rather than relying on either spelling.
     */
    double evaluateError(const data::Dataset &set,
                         std::size_t limit = 0) const;

    /**
     * Batched, optionally parallel classification error. Splits the
     * evaluated prefix into EvalOptions::batch-column batches, runs
     * each through forwardBatch(), and reduces the per-batch
     * misclassification counts in plan order (integer sum — exact at
     * any worker count). fatal() on an empty evaluation set.
     */
    double evaluateError(const data::Dataset &set,
                         const EvalOptions &options) const;

    /**
     * Scalar reference path: classify() sample by sample. The batched
     * engine is verified bit-identical against this in tests and CI;
     * it exists as the ground truth, not as a fast path.
     */
    double evaluateErrorScalar(const data::Dataset &set,
                               std::size_t limit = 0) const;

  private:
    /** Misclassified count over samples [first, first + count). */
    std::size_t countMisclassified(const data::Dataset &set,
                                   std::size_t first, std::size_t count,
                                   int batch) const;

    std::vector<int> sizes_;
    std::vector<DenseLayer> layers_;
};

} // namespace uvolt::nn

#endif // UVOLT_NN_NETWORK_HH

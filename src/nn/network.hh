/**
 * @file
 * Fully-connected feed-forward network (the paper's Table III model).
 *
 * The baseline is a 6-layer topology (784, 1024, 512, 256, 128, 10):
 * logistic-sigmoid ("logsig") activations on the hidden layers and a
 * softmax output that yields the class distribution. This module holds
 * the float reference model used for training and as the fault-free
 * accuracy baseline; the fixed-point, BRAM-backed version lives in the
 * accel module.
 */

#ifndef UVOLT_NN_NETWORK_HH
#define UVOLT_NN_NETWORK_HH

#include <span>
#include <vector>

#include "data/dataset.hh"

namespace uvolt::nn
{

/** Logistic sigmoid, the paper's hidden activation. */
float logsig(float x);

/** In-place softmax over a span of logits. */
void softmaxInPlace(std::span<float> logits);

/** One dense (fully-connected) weight layer. */
class DenseLayer
{
  public:
    DenseLayer(int inputs, int outputs);

    int inputs() const { return inputs_; }
    int outputs() const { return outputs_; }

    /** Row-major weights: weight(o, i) multiplies input i for output o. */
    float weight(int output, int input) const;
    void setWeight(int output, int input, float value);

    float bias(int output) const { return biases_[
        static_cast<std::size_t>(output)]; }
    void setBias(int output, float value);

    /** Flat storage access (used by the quantizer and the accelerator). */
    std::span<const float> weights() const { return weights_; }
    std::span<float> weights() { return weights_; }
    std::span<const float> biases() const { return biases_; }
    std::span<float> biases() { return biases_; }

    /** z = W x + b. @a z must have outputs() entries. */
    void forward(std::span<const float> x, std::span<float> z) const;

    /** Largest absolute weight (per-layer precision analysis, Fig 9). */
    float maxAbsWeight() const;

  private:
    int inputs_;
    int outputs_;
    std::vector<float> weights_;
    std::vector<float> biases_;
};

/** The full network. */
class Network
{
  public:
    /**
     * @param layer_sizes neuron counts per layer, length >= 2; e.g. the
     * paper's {784, 1024, 512, 256, 128, 10}.
     */
    explicit Network(std::vector<int> layer_sizes);

    /** Number of weight layers (layer_sizes.size() - 1). */
    int layerCount() const { return static_cast<int>(layers_.size()); }

    DenseLayer &layer(int index);
    const DenseLayer &layer(int index) const;

    const std::vector<int> &layerSizes() const { return sizes_; }

    /** Total weight parameters (~1.5 M for the paper's topology). */
    std::size_t totalWeights() const;

    /** Glorot-uniform weight initialization, deterministic in seed. */
    void initWeights(std::uint64_t seed);

    /**
     * Forward pass: hidden layers through logsig, output through
     * softmax. Returns the class distribution.
     */
    std::vector<float> infer(std::span<const float> input) const;

    /** Arg-max classification. */
    int classify(std::span<const float> input) const;

    /**
     * Classification error on a dataset (fraction mis-classified).
     * @param limit evaluate only the first @a limit samples (0 = all)
     */
    double evaluateError(const data::Dataset &set,
                         std::size_t limit = 0) const;

  private:
    std::vector<int> sizes_;
    std::vector<DenseLayer> layers_;
};

} // namespace uvolt::nn

#endif // UVOLT_NN_NETWORK_HH

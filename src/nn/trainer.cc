#include "nn/trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::nn
{

TrainReport
train(Network &net, const data::Dataset &train_set,
      const TrainOptions &options)
{
    if (train_set.size() == 0)
        fatal("train: empty dataset");
    if (train_set.featureCount() != net.layerSizes().front() ||
        train_set.classCount() != net.layerSizes().back()) {
        fatal("train: dataset {}x{} does not match network {}->{}",
              train_set.featureCount(), train_set.classCount(),
              net.layerSizes().front(), net.layerSizes().back());
    }

    net.initWeights(options.seed);
    Rng shuffle_rng(combineSeeds(options.seed, hashSeed("epoch-shuffle")));

    const int layer_count = net.layerCount();

    // Per-layer activation and delta buffers (activations[0] aliases the
    // input sample).
    std::vector<std::vector<float>> activations(
        static_cast<std::size_t>(layer_count) + 1);
    std::vector<std::vector<float>> deltas(
        static_cast<std::size_t>(layer_count));
    for (int l = 0; l < layer_count; ++l) {
        activations[static_cast<std::size_t>(l) + 1].resize(
            static_cast<std::size_t>(net.layer(l).outputs()));
        deltas[static_cast<std::size_t>(l)].resize(
            static_cast<std::size_t>(net.layer(l).outputs()));
    }

    // Momentum velocity per layer.
    std::vector<std::vector<float>> weight_velocity(
        static_cast<std::size_t>(layer_count));
    std::vector<std::vector<float>> bias_velocity(
        static_cast<std::size_t>(layer_count));
    for (int l = 0; l < layer_count; ++l) {
        weight_velocity[static_cast<std::size_t>(l)].assign(
            net.layer(l).weights().size(), 0.0f);
        bias_velocity[static_cast<std::size_t>(l)].assign(
            net.layer(l).biases().size(), 0.0f);
    }

    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    TrainReport report;
    double lr = options.learningRate;

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        shuffle_rng.shuffle(order);
        double loss_sum = 0.0;
        std::size_t wrong = 0;

        for (std::size_t sample_index : order) {
            const auto input = train_set.sample(sample_index);
            const int label = train_set.label(sample_index);

            // ---- forward -------------------------------------------------
            activations[0].assign(input.begin(), input.end());
            for (int l = 0; l < layer_count; ++l) {
                auto &out = activations[static_cast<std::size_t>(l) + 1];
                net.layer(l).forward(
                    activations[static_cast<std::size_t>(l)], out);
                if (l + 1 < layer_count) {
                    for (auto &value : out)
                        value = logsig(value);
                } else {
                    softmaxInPlace(out);
                }
            }

            const auto &probs = activations.back();
            const float p_true =
                std::max(probs[static_cast<std::size_t>(label)], 1e-12f);
            loss_sum -= std::log(p_true);
            const int predicted = static_cast<int>(
                std::max_element(probs.begin(), probs.end()) -
                probs.begin());
            if (predicted != label)
                ++wrong;

            // ---- backward ------------------------------------------------
            // Softmax + cross-entropy: delta = p - onehot(label).
            auto &out_delta = deltas[static_cast<std::size_t>(
                layer_count - 1)];
            for (std::size_t o = 0; o < probs.size(); ++o) {
                out_delta[o] = probs[o] -
                    (static_cast<int>(o) == label ? 1.0f : 0.0f);
            }
            for (int l = layer_count - 2; l >= 0; --l) {
                const auto &next_layer = net.layer(l + 1);
                const auto &next_delta =
                    deltas[static_cast<std::size_t>(l) + 1];
                auto &delta = deltas[static_cast<std::size_t>(l)];
                const auto &activation =
                    activations[static_cast<std::size_t>(l) + 1];
                const float *w = next_layer.weights().data();
                const int fan_out = next_layer.outputs();
                const int width = next_layer.inputs();
                for (int i = 0; i < width; ++i)
                    delta[static_cast<std::size_t>(i)] = 0.0f;
                for (int o = 0; o < fan_out; ++o) {
                    const float d = next_delta[static_cast<std::size_t>(o)];
                    const float *row = w +
                        static_cast<std::size_t>(o) *
                        static_cast<std::size_t>(width);
                    for (int i = 0; i < width; ++i)
                        delta[static_cast<std::size_t>(i)] += row[i] * d;
                }
                // logsig derivative: a (1 - a).
                for (int i = 0; i < width; ++i) {
                    const float a = activation[static_cast<std::size_t>(i)];
                    delta[static_cast<std::size_t>(i)] *= a * (1.0f - a);
                }
            }

            // ---- update --------------------------------------------------
            const auto lr_f = static_cast<float>(lr);
            const auto momentum_f = static_cast<float>(options.momentum);
            const auto decay_f = static_cast<float>(options.weightDecay);
            for (int l = 0; l < layer_count; ++l) {
                auto &layer = net.layer(l);
                auto weights = layer.weights();
                auto biases = layer.biases();
                const auto &delta = deltas[static_cast<std::size_t>(l)];
                const auto &input_act =
                    activations[static_cast<std::size_t>(l)];
                auto &w_vel = weight_velocity[static_cast<std::size_t>(l)];
                auto &b_vel = bias_velocity[static_cast<std::size_t>(l)];
                const int width = layer.inputs();
                for (int o = 0; o < layer.outputs(); ++o) {
                    const float d = delta[static_cast<std::size_t>(o)];
                    float *row = weights.data() +
                        static_cast<std::size_t>(o) *
                        static_cast<std::size_t>(width);
                    float *vel = w_vel.data() +
                        static_cast<std::size_t>(o) *
                        static_cast<std::size_t>(width);
                    for (int i = 0; i < width; ++i) {
                        const float grad = d * input_act[
                            static_cast<std::size_t>(i)] +
                            decay_f * row[i];
                        vel[i] = momentum_f * vel[i] - lr_f * grad;
                        row[i] += vel[i];
                    }
                    auto &bias_vel = b_vel[static_cast<std::size_t>(o)];
                    bias_vel = momentum_f * bias_vel - lr_f * d;
                    biases[static_cast<std::size_t>(o)] += bias_vel;
                }
            }
        }

        report.finalTrainError =
            static_cast<double>(wrong) /
            static_cast<double>(train_set.size());
        report.finalLoss =
            loss_sum / static_cast<double>(train_set.size());
        report.epochs = epoch + 1;
        if (options.verbose) {
            inform("epoch {}/{}: train error {:.4f}, loss {:.4f}",
                   epoch + 1, options.epochs, report.finalTrainError,
                   report.finalLoss);
        }
        lr *= options.lrDecay;
    }
    return report;
}

TrainReport
finetuneOutputMse(Network &net, const data::Dataset &train_set,
                  const OutputMseOptions &options)
{
    TrainReport report;
    if (options.epochs <= 0)
        return report;
    if (train_set.size() == 0)
        fatal("finetuneOutputMse: empty dataset");

    const int layer_count = net.layerCount();
    auto &output = net.layer(layer_count - 1);
    const int hidden_width = output.inputs();
    const int classes = output.outputs();

    // Hidden layers are frozen: compute every sample's penultimate
    // activation once.
    std::vector<float> features(train_set.size() *
                                static_cast<std::size_t>(hidden_width));
    {
        std::vector<float> buffer_a;
        std::vector<float> buffer_b;
        for (std::size_t i = 0; i < train_set.size(); ++i) {
            const auto input = train_set.sample(i);
            buffer_a.assign(input.begin(), input.end());
            for (int l = 0; l + 1 < layer_count; ++l) {
                const auto &layer = net.layer(l);
                buffer_b.assign(
                    static_cast<std::size_t>(layer.outputs()), 0.0f);
                layer.forward(buffer_a, buffer_b);
                for (auto &value : buffer_b)
                    value = logsig(value);
                buffer_a.swap(buffer_b);
            }
            std::copy(buffer_a.begin(), buffer_a.end(),
                      features.begin() +
                          static_cast<std::ptrdiff_t>(
                              i * static_cast<std::size_t>(hidden_width)));
        }
    }

    auto weights = output.weights();
    auto biases = output.biases();
    std::vector<float> w_velocity(weights.size(), 0.0f);
    std::vector<float> b_velocity(biases.size(), 0.0f);
    std::vector<float> z(static_cast<std::size_t>(classes));

    const auto lr = static_cast<float>(options.learningRate);
    const auto momentum = static_cast<float>(options.momentum);

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        double loss_sum = 0.0;
        std::size_t wrong = 0;
        for (std::size_t i = 0; i < train_set.size(); ++i) {
            const float *h = features.data() +
                i * static_cast<std::size_t>(hidden_width);
            output.forward({h, static_cast<std::size_t>(hidden_width)},
                           z);
            int best = 0;
            for (int k = 0; k < classes; ++k) {
                if (z[static_cast<std::size_t>(k)] >
                    z[static_cast<std::size_t>(best)])
                    best = k;
            }
            wrong += (best != train_set.label(i));

            for (int k = 0; k < classes; ++k) {
                const float y = logsig(z[static_cast<std::size_t>(k)]);
                const float target = k == train_set.label(i)
                    ? options.targetHigh
                    : options.targetLow;
                const float err = y - target;
                loss_sum += static_cast<double>(err) * err;
                // d(MSE)/dz = (y - t) y (1 - y)
                const float delta = err * y * (1.0f - y);
                float *row = weights.data() +
                    static_cast<std::size_t>(k) *
                    static_cast<std::size_t>(hidden_width);
                float *vel = w_velocity.data() +
                    static_cast<std::size_t>(k) *
                    static_cast<std::size_t>(hidden_width);
                for (int j = 0; j < hidden_width; ++j) {
                    vel[j] = momentum * vel[j] - lr * delta * h[j];
                    row[j] += vel[j];
                }
                auto &bias_vel = b_velocity[static_cast<std::size_t>(k)];
                bias_vel = momentum * bias_vel - lr * delta;
                biases[static_cast<std::size_t>(k)] += bias_vel;
            }
        }
        report.epochs = epoch + 1;
        report.finalLoss =
            loss_sum / static_cast<double>(train_set.size());
        report.finalTrainError = static_cast<double>(wrong) /
            static_cast<double>(train_set.size());
    }
    return report;
}

} // namespace uvolt::nn

#include "nn/model_zoo.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "data/synthetic.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::nn
{

std::string
ZooSpec::cacheKey() const
{
    std::uint64_t h = hashSeed(benchmark);
    for (int size : topology)
        h = combineSeeds(h, static_cast<std::uint64_t>(size));
    h = combineSeeds(h, trainCount);
    h = combineSeeds(h, dataSeed);
    h = combineSeeds(h, static_cast<std::uint64_t>(train.epochs));
    h = combineSeeds(h, static_cast<std::uint64_t>(
                            train.learningRate * 1e6));
    h = combineSeeds(h, static_cast<std::uint64_t>(train.momentum * 1e6));
    h = combineSeeds(h, static_cast<std::uint64_t>(train.lrDecay * 1e6));
    h = combineSeeds(h, static_cast<std::uint64_t>(
                            train.weightDecay * 1e9));
    h = combineSeeds(h, train.seed);
    h = combineSeeds(h, static_cast<std::uint64_t>(refine.epochs));
    h = combineSeeds(h, static_cast<std::uint64_t>(
                            refine.learningRate * 1e6));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

ZooSpec
paperMnistSpec()
{
    ZooSpec spec;
    spec.benchmark = "mnist";
    spec.topology = {784, 1024, 512, 256, 128, 10};
    spec.trainCount = 8000;
    spec.dataSeed = 14; // corpus v4: ghost-overlay ambiguity continuum
    spec.train.epochs = 6;
    // The 6-layer logsig stack needs a gentle step: lr 0.003 with 0.9
    // momentum reaches the paper's ~2.5% inherent error; 0.05 diverges.
    spec.train.learningRate = 0.003;
    spec.train.momentum = 0.9;
    spec.train.lrDecay = 0.85;
    spec.train.seed = 7;
    // Output-layer logsig+MSE refinement: reproduces the paper's Fig 9
    // weight distribution (Layer4 grows a 4-bit digit field) and with
    // it the output layer's dominant fault sensitivity (Fig 13).
    spec.refine.epochs = 1000;
    spec.refine.learningRate = 0.02;
    return spec;
}

ZooSpec
paperForestSpec()
{
    ZooSpec spec;
    spec.benchmark = "forest";
    spec.topology = {54, 256, 128, 64, 7};
    spec.trainCount = 8000;
    spec.dataSeed = 21;
    spec.train.epochs = 8;
    spec.train.learningRate = 0.03;
    spec.train.momentum = 0.9;
    spec.train.lrDecay = 0.8;
    spec.train.seed = 17;
    spec.refine.epochs = 600;
    spec.refine.learningRate = 0.02;
    return spec;
}

ZooSpec
paperReutersSpec()
{
    ZooSpec spec;
    spec.benchmark = "reuters";
    spec.topology = {600, 256, 128, 64, 8};
    spec.trainCount = 6000;
    spec.dataSeed = 32; // corpus v2: overlapping topics
    spec.train.epochs = 8;
    spec.train.learningRate = 0.03;
    spec.train.momentum = 0.9;
    spec.train.lrDecay = 0.8;
    spec.train.seed = 27;
    spec.refine.epochs = 600;
    spec.refine.learningRate = 0.02;
    return spec;
}

namespace
{

data::Dataset
makeSet(const ZooSpec &spec, std::size_t count, std::uint64_t seed)
{
    if (spec.benchmark == "mnist")
        return data::makeMnistLike(count, seed);
    if (spec.benchmark == "forest")
        return data::makeForestLike(count, seed);
    if (spec.benchmark == "reuters")
        return data::makeReutersLike(count, seed);
    fatal("unknown benchmark '{}'", spec.benchmark);
}

} // namespace

data::Dataset
makeTrainSet(const ZooSpec &spec)
{
    return makeSet(spec, spec.trainCount, spec.dataSeed);
}

data::Dataset
makeTestSet(const ZooSpec &spec, std::size_t count)
{
    // Disjoint stream: the test seed is derived, never equal to the
    // training seed.
    return makeSet(spec, count,
                   combineSeeds(spec.dataSeed, hashSeed("held-out")));
}

std::string
cacheDirectory()
{
    if (const char *dir = std::getenv("UVOLT_CACHE_DIR"))
        return dir;
    return "uvolt_model_cache";
}

namespace
{

constexpr std::uint32_t zooMagic = 0x55564E4E; // "UVNN"
constexpr std::uint32_t zooVersion = 1;

} // namespace

bool
saveNetwork(const Network &net, const std::string &path)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        warn("model cache: cannot write '{}'", path);
        return false;
    }
    auto put32 = [&out](std::uint32_t value) {
        out.write(reinterpret_cast<const char *>(&value), sizeof(value));
    };
    put32(zooMagic);
    put32(zooVersion);
    put32(static_cast<std::uint32_t>(net.layerSizes().size()));
    for (int size : net.layerSizes())
        put32(static_cast<std::uint32_t>(size));
    for (int l = 0; l < net.layerCount(); ++l) {
        const auto &layer = net.layer(l);
        out.write(reinterpret_cast<const char *>(layer.weights().data()),
                  static_cast<std::streamsize>(
                      layer.weights().size() * sizeof(float)));
        out.write(reinterpret_cast<const char *>(layer.biases().data()),
                  static_cast<std::streamsize>(
                      layer.biases().size() * sizeof(float)));
    }
    return static_cast<bool>(out);
}

bool
loadNetwork(Network &net, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    auto get32 = [&in]() {
        std::uint32_t value = 0;
        in.read(reinterpret_cast<char *>(&value), sizeof(value));
        return value;
    };
    if (get32() != zooMagic || get32() != zooVersion)
        return false;
    const std::uint32_t size_count = get32();
    if (size_count != net.layerSizes().size())
        return false;
    for (int size : net.layerSizes()) {
        if (get32() != static_cast<std::uint32_t>(size))
            return false;
    }
    for (int l = 0; l < net.layerCount(); ++l) {
        auto &layer = net.layer(l);
        in.read(reinterpret_cast<char *>(layer.weights().data()),
                static_cast<std::streamsize>(
                    layer.weights().size() * sizeof(float)));
        in.read(reinterpret_cast<char *>(layer.biases().data()),
                static_cast<std::streamsize>(
                    layer.biases().size() * sizeof(float)));
    }
    return static_cast<bool>(in);
}

Network
trainOrLoad(const ZooSpec &spec)
{
    Network net(spec.topology);
    const std::string path = strFormat("{}/{}-{}.nnw", cacheDirectory(),
                                       spec.benchmark, spec.cacheKey());
    if (loadNetwork(net, path)) {
        inform("model zoo: loaded {} from {}", spec.benchmark, path);
        return net;
    }
    inform("model zoo: training {} ({} weights, {} samples, {} epochs)...",
           spec.benchmark, net.totalWeights(), spec.trainCount,
           spec.train.epochs);
    const data::Dataset train_set = makeTrainSet(spec);
    TrainOptions options = spec.train;
    options.verbose = true;
    const TrainReport report = train(net, train_set, options);
    inform("model zoo: {} trained to {:.4f} train error", spec.benchmark,
           report.finalTrainError);
    if (spec.refine.epochs > 0) {
        const TrainReport refined =
            finetuneOutputMse(net, train_set, spec.refine);
        inform("model zoo: {} output refined over {} epochs to {:.4f} "
               "train error",
               spec.benchmark, refined.epochs, refined.finalTrainError);
    }
    saveNetwork(net, path);
    return net;
}

} // namespace uvolt::nn

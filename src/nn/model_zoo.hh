/**
 * @file
 * Train-once model cache.
 *
 * The paper trains its networks offline (MATLAB) and then replays
 * inference on the FPGA at many voltage points. Training the ~1.5 M
 * weight MNIST baseline takes minutes of CPU here, so the zoo trains
 * each standard model once, stores the float weights on disk, and later
 * runs (benches, examples) reload them instantly. Files are keyed by a
 * hash of (benchmark, topology, dataset seed/size, trainer options), so
 * stale caches are never reused. The cache directory defaults to
 * ./uvolt_model_cache and can be moved with UVOLT_CACHE_DIR.
 */

#ifndef UVOLT_NN_MODEL_ZOO_HH
#define UVOLT_NN_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "data/dataset.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"

namespace uvolt::nn
{

/** Everything that defines one reproducible trained model. */
struct ZooSpec
{
    std::string benchmark;     ///< "mnist" | "forest" | "reuters"
    std::vector<int> topology; ///< layer sizes
    std::size_t trainCount;    ///< training-set size
    std::uint64_t dataSeed;    ///< training-set generator seed
    TrainOptions train;        ///< trainer hyper-parameters
    OutputMseOptions refine;   ///< MATLAB-style output-layer phase

    /** Stable content hash of the spec (cache key). */
    std::string cacheKey() const;
};

/** The paper's Table III MNIST baseline. */
ZooSpec paperMnistSpec();

/** Forest benchmark counterpart. */
ZooSpec paperForestSpec();

/** Reuters benchmark counterpart. */
ZooSpec paperReutersSpec();

/** Training set for a spec (deterministic). */
data::Dataset makeTrainSet(const ZooSpec &spec);

/**
 * Held-out evaluation set for a spec (deterministic, disjoint seed).
 * @param count number of samples; the paper classifies 10000 images
 */
data::Dataset makeTestSet(const ZooSpec &spec, std::size_t count = 10000);

/** Resolve the cache directory (UVOLT_CACHE_DIR or the default). */
std::string cacheDirectory();

/** Save a trained network; returns false (warn) on I/O failure. */
bool saveNetwork(const Network &net, const std::string &path);

/** Load a network; returns false if missing/corrupt/shape-mismatched. */
bool loadNetwork(Network &net, const std::string &path);

/**
 * Return the spec's trained network, training (and caching) it on the
 * first call of a given configuration.
 */
Network trainOrLoad(const ZooSpec &spec);

} // namespace uvolt::nn

#endif // UVOLT_NN_MODEL_ZOO_HH

#include "nn/network.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::nn
{

float
logsig(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

void
softmaxInPlace(std::span<float> logits)
{
    if (logits.empty())
        return;
    const float peak = *std::max_element(logits.begin(), logits.end());
    float sum = 0.0f;
    for (auto &value : logits) {
        value = std::exp(value - peak);
        sum += value;
    }
    for (auto &value : logits)
        value /= sum;
}

DenseLayer::DenseLayer(int inputs, int outputs)
    : inputs_(inputs), outputs_(outputs),
      weights_(static_cast<std::size_t>(inputs) *
               static_cast<std::size_t>(outputs), 0.0f),
      biases_(static_cast<std::size_t>(outputs), 0.0f)
{
    if (inputs <= 0 || outputs <= 0)
        fatal("DenseLayer {}x{} must have positive dimensions", inputs,
              outputs);
}

float
DenseLayer::weight(int output, int input) const
{
    return weights_[static_cast<std::size_t>(output) *
                    static_cast<std::size_t>(inputs_) +
                    static_cast<std::size_t>(input)];
}

void
DenseLayer::setWeight(int output, int input, float value)
{
    weights_[static_cast<std::size_t>(output) *
             static_cast<std::size_t>(inputs_) +
             static_cast<std::size_t>(input)] = value;
}

void
DenseLayer::setBias(int output, float value)
{
    biases_[static_cast<std::size_t>(output)] = value;
}

void
DenseLayer::forward(std::span<const float> x, std::span<float> z) const
{
    if (static_cast<int>(x.size()) != inputs_ ||
        static_cast<int>(z.size()) != outputs_) {
        fatal("forward: got {}->{} buffers for a {}x{} layer", x.size(),
              z.size(), inputs_, outputs_);
    }
    const float *weight_row = weights_.data();
    for (int o = 0; o < outputs_; ++o) {
        float acc = biases_[static_cast<std::size_t>(o)];
        for (int i = 0; i < inputs_; ++i)
            acc += weight_row[i] * x[static_cast<std::size_t>(i)];
        z[static_cast<std::size_t>(o)] = acc;
        weight_row += inputs_;
    }
}

float
DenseLayer::maxAbsWeight() const
{
    float peak = 0.0f;
    for (float w : weights_)
        peak = std::max(peak, std::abs(w));
    return peak;
}

Network::Network(std::vector<int> layer_sizes) : sizes_(std::move(layer_sizes))
{
    if (sizes_.size() < 2)
        fatal("Network needs at least an input and an output layer");
    layers_.reserve(sizes_.size() - 1);
    for (std::size_t i = 0; i + 1 < sizes_.size(); ++i)
        layers_.emplace_back(sizes_[i], sizes_[i + 1]);
}

DenseLayer &
Network::layer(int index)
{
    if (index < 0 || index >= layerCount())
        fatal("layer {} out of {}", index, layerCount());
    return layers_[static_cast<std::size_t>(index)];
}

const DenseLayer &
Network::layer(int index) const
{
    return const_cast<Network *>(this)->layer(index);
}

std::size_t
Network::totalWeights() const
{
    std::size_t total = 0;
    for (const auto &layer : layers_)
        total += layer.weights().size();
    return total;
}

void
Network::initWeights(std::uint64_t seed)
{
    Rng rng(combineSeeds(seed, hashSeed("glorot-init")));
    for (auto &layer : layers_) {
        // Glorot & Bengio's normalized init with their x4 correction for
        // the logistic sigmoid; without it a 6-layer logsig stack sits in
        // the flat region and never trains.
        const double limit = 4.0 * std::sqrt(
            6.0 / (layer.inputs() + layer.outputs()));
        for (auto &w : layer.weights())
            w = static_cast<float>(rng.uniform(-limit, limit));
        for (auto &b : layer.biases())
            b = 0.0f;
    }
}

std::vector<float>
Network::infer(std::span<const float> input) const
{
    std::vector<float> activations(input.begin(), input.end());
    std::vector<float> next;
    for (int l = 0; l < layerCount(); ++l) {
        const auto &layer = layers_[static_cast<std::size_t>(l)];
        next.assign(static_cast<std::size_t>(layer.outputs()), 0.0f);
        layer.forward(activations, next);
        if (l + 1 < layerCount()) {
            for (auto &value : next)
                value = logsig(value);
        } else {
            softmaxInPlace(next);
        }
        activations.swap(next);
    }
    return activations;
}

int
Network::classify(std::span<const float> input) const
{
    const auto probs = infer(input);
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double
Network::evaluateError(const data::Dataset &set, std::size_t limit) const
{
    const std::size_t n =
        limit == 0 ? set.size() : std::min(limit, set.size());
    if (n == 0)
        fatal("evaluateError on an empty dataset");
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (classify(set.sample(i)) != set.label(i))
            ++wrong;
    }
    return static_cast<double>(wrong) / static_cast<double>(n);
}

} // namespace uvolt::nn

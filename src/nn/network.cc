#include "nn/network.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"

namespace uvolt::nn
{

namespace
{

struct BatchMetrics
{
    telemetry::Counter &batches =
        telemetry::Registry::global().counter("nn.batch.batches");
    telemetry::Counter &samples =
        telemetry::Registry::global().counter("nn.batch.samples");
    telemetry::Counter &parallelJobs =
        telemetry::Registry::global().counter("nn.batch.parallel_jobs");
};

BatchMetrics &
batchMetrics()
{
    static BatchMetrics metrics;
    return metrics;
}

} // namespace

int
defaultEvalBatch()
{
    static const int batch = [] {
        if (const char *env = std::getenv("UVOLT_BATCH")) {
            const int parsed = std::atoi(env);
            if (parsed >= 1)
                return parsed;
            warn("UVOLT_BATCH='{}' is not a positive integer; using 64",
                 env);
        }
        return 64; // fastest width measured in BM_MnistEvalBatched
    }();
    return batch;
}

float
logsig(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

void
softmaxInPlace(std::span<float> logits)
{
    if (logits.empty())
        return;
    const float peak = *std::max_element(logits.begin(), logits.end());
    float sum = 0.0f;
    for (auto &value : logits) {
        value = std::exp(value - peak);
        sum += value;
    }
    for (auto &value : logits)
        value /= sum;
}

DenseLayer::DenseLayer(int inputs, int outputs)
    : inputs_(inputs), outputs_(outputs),
      weights_(static_cast<std::size_t>(inputs) *
               static_cast<std::size_t>(outputs), 0.0f),
      biases_(static_cast<std::size_t>(outputs), 0.0f)
{
    if (inputs <= 0 || outputs <= 0)
        fatal("DenseLayer {}x{} must have positive dimensions", inputs,
              outputs);
}

float
DenseLayer::weight(int output, int input) const
{
    return weights_[static_cast<std::size_t>(output) *
                    static_cast<std::size_t>(inputs_) +
                    static_cast<std::size_t>(input)];
}

void
DenseLayer::setWeight(int output, int input, float value)
{
    weights_[static_cast<std::size_t>(output) *
             static_cast<std::size_t>(inputs_) +
             static_cast<std::size_t>(input)] = value;
}

void
DenseLayer::setBias(int output, float value)
{
    biases_[static_cast<std::size_t>(output)] = value;
}

void
DenseLayer::forward(std::span<const float> x, std::span<float> z) const
{
    if (static_cast<int>(x.size()) != inputs_ ||
        static_cast<int>(z.size()) != outputs_) {
        fatal("forward: got {}->{} buffers for a {}x{} layer", x.size(),
              z.size(), inputs_, outputs_);
    }
    // One arithmetic definition for both paths: the scalar forward IS
    // the batched kernel at width 1. A hand-written scalar loop would
    // compile to a different product-rounding mix (the vectorizer
    // rounds products before the ordered adds, the remainder loop
    // contracts them into FMAs), and the batched kernel could never
    // reproduce that codegen artifact bit for bit.
    forwardBatch(x, z, 1);
}

void
DenseLayer::forwardBatch(std::span<const float> x, std::span<float> z,
                         int batch) const
{
    if (batch <= 0)
        fatal("forwardBatch: batch {} must be positive", batch);
    const std::size_t columns = static_cast<std::size_t>(batch);
    if (x.size() != static_cast<std::size_t>(inputs_) * columns ||
        z.size() != static_cast<std::size_t>(outputs_) * columns) {
        fatal("forwardBatch: got {}->{} buffers for a {}x{} layer, "
              "batch {}", x.size(), z.size(), inputs_, outputs_, batch);
    }

    // Seed every accumulator with its bias (the scalar chain's start).
    for (int o = 0; o < outputs_; ++o) {
        const float bias = biases_[static_cast<std::size_t>(o)];
        float *row = z.data() + static_cast<std::size_t>(o) * columns;
        for (std::size_t s = 0; s < columns; ++s)
            row[s] = bias;
    }

    // Cache blocking: the (tile_o x tile_i) weight tile and the
    // (tile_i x batch) activation tile stay L1/L2-resident while every
    // accumulator of the block drains them. For each (o, s) the input
    // tiles are visited in ascending order, so the per-accumulator
    // addition chain is exactly the scalar one; the innermost loop runs
    // over the contiguous batch dimension, which vectorizes without
    // reassociating any chain.
    constexpr int tile_i = 128;
    constexpr int tile_o = 64;
    for (int i0 = 0; i0 < inputs_; i0 += tile_i) {
        const int i_end = std::min(i0 + tile_i, inputs_);
        for (int o0 = 0; o0 < outputs_; o0 += tile_o) {
            const int o_end = std::min(o0 + tile_o, outputs_);
            for (int o = o0; o < o_end; ++o) {
                const float *weight_row = weights_.data() +
                    static_cast<std::size_t>(o) *
                        static_cast<std::size_t>(inputs_);
                float *z_row = z.data() +
                    static_cast<std::size_t>(o) * columns;
                for (int i = i0; i < i_end; ++i) {
                    const float w = weight_row[i];
                    const float *x_row = x.data() +
                        static_cast<std::size_t>(i) * columns;
                    for (std::size_t s = 0; s < columns; ++s)
                        z_row[s] += w * x_row[s];
                }
            }
        }
    }
}

float
DenseLayer::maxAbsWeight() const
{
    float peak = 0.0f;
    for (float w : weights_)
        peak = std::max(peak, std::abs(w));
    return peak;
}

Network::Network(std::vector<int> layer_sizes) : sizes_(std::move(layer_sizes))
{
    if (sizes_.size() < 2)
        fatal("Network needs at least an input and an output layer");
    layers_.reserve(sizes_.size() - 1);
    for (std::size_t i = 0; i + 1 < sizes_.size(); ++i)
        layers_.emplace_back(sizes_[i], sizes_[i + 1]);
}

DenseLayer &
Network::layer(int index)
{
    if (index < 0 || index >= layerCount())
        fatal("layer {} out of {}", index, layerCount());
    return layers_[static_cast<std::size_t>(index)];
}

const DenseLayer &
Network::layer(int index) const
{
    return const_cast<Network *>(this)->layer(index);
}

std::size_t
Network::totalWeights() const
{
    std::size_t total = 0;
    for (const auto &layer : layers_)
        total += layer.weights().size();
    return total;
}

void
Network::initWeights(std::uint64_t seed)
{
    Rng rng(combineSeeds(seed, hashSeed("glorot-init")));
    for (auto &layer : layers_) {
        // Glorot & Bengio's normalized init with their x4 correction for
        // the logistic sigmoid; without it a 6-layer logsig stack sits in
        // the flat region and never trains.
        const double limit = 4.0 * std::sqrt(
            6.0 / (layer.inputs() + layer.outputs()));
        for (auto &w : layer.weights())
            w = static_cast<float>(rng.uniform(-limit, limit));
        for (auto &b : layer.biases())
            b = 0.0f;
    }
}

std::vector<float>
Network::infer(std::span<const float> input) const
{
    std::vector<float> activations(input.begin(), input.end());
    std::vector<float> next;
    for (int l = 0; l < layerCount(); ++l) {
        const auto &layer = layers_[static_cast<std::size_t>(l)];
        next.assign(static_cast<std::size_t>(layer.outputs()), 0.0f);
        layer.forward(activations, next);
        if (l + 1 < layerCount()) {
            for (auto &value : next)
                value = logsig(value);
        } else {
            softmaxInPlace(next);
        }
        activations.swap(next);
    }
    return activations;
}

int
Network::classify(std::span<const float> input) const
{
    const auto probs = infer(input);
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

namespace
{

/**
 * Run the whole stack batched; leaves the final layer's pre-softmax
 * logits in @a a, feature-major (class c of sample s at
 * a[c * batch + s]). @a inputs holds the samples back to back in
 * dataset order; @a a and @a b are caller-owned scratch, resized here
 * so repeat calls reuse their capacity.
 */
/** Size the scratch matrices for a @a batch-column pass of @a net. */
void
sizeBatchScratch(const Network &net, std::size_t columns,
                 std::vector<float> &a, std::vector<float> &b)
{
    std::size_t max_width = 0;
    for (int width : net.layerSizes())
        max_width = std::max(max_width, static_cast<std::size_t>(width));
    a.resize(max_width * columns);
    b.resize(max_width * columns);
}

/**
 * Run the whole stack on the feature-major activations already gathered
 * into @a a; leaves the final layer's pre-softmax logits in @a a (class
 * c of sample s at a[c * batch + s]).
 */
void
runBatchLayers(const Network &net, int batch, std::vector<float> &a,
               std::vector<float> &b)
{
    const std::size_t columns = static_cast<std::size_t>(batch);
    for (int l = 0; l < net.layerCount(); ++l) {
        const DenseLayer &layer = net.layer(l);
        const std::size_t in =
            static_cast<std::size_t>(layer.inputs()) * columns;
        const std::size_t out =
            static_cast<std::size_t>(layer.outputs()) * columns;
        layer.forwardBatch(std::span<const float>(a.data(), in),
                           std::span<float>(b.data(), out), batch);
        if (l + 1 < net.layerCount()) {
            for (std::size_t k = 0; k < out; ++k)
                b[k] = logsig(b[k]);
        }
        a.swap(b);
    }
}

void
batchLogits(const Network &net, std::span<const float> inputs, int batch,
            std::vector<float> &a, std::vector<float> &b)
{
    const std::size_t columns = static_cast<std::size_t>(batch);
    const std::size_t features =
        static_cast<std::size_t>(net.layerSizes().front());
    if (inputs.size() != features * columns)
        fatal("batchLogits: {} inputs for {} samples of width {}",
              inputs.size(), batch, features);
    sizeBatchScratch(net, columns, a, b);

    // Transpose sample-major rows into the feature-major batch layout.
    for (std::size_t s = 0; s < columns; ++s) {
        const float *row = inputs.data() + s * features;
        for (std::size_t i = 0; i < features; ++i)
            a[i * columns + s] = row[i];
    }

    runBatchLayers(net, batch, a, b);
}

/**
 * Gather sample @a s's logit column, softmax it through the same code
 * path the scalar infer() uses, and return the arg-max class.
 */
int
classifyColumn(std::span<const float> logits, int batch, int s,
               std::vector<float> &column)
{
    for (std::size_t c = 0; c < column.size(); ++c)
        column[c] = logits[c * static_cast<std::size_t>(batch) +
                           static_cast<std::size_t>(s)];
    softmaxInPlace(column);
    return static_cast<int>(
        std::max_element(column.begin(), column.end()) - column.begin());
}

} // namespace

void
Network::inferBatch(std::span<const float> inputs, std::span<float> probs,
                    int batch) const
{
    const std::size_t columns = static_cast<std::size_t>(batch);
    const std::size_t classes =
        static_cast<std::size_t>(sizes_.back());
    if (probs.size() != classes * columns)
        fatal("inferBatch: {} prob slots for {} samples of {} classes",
              probs.size(), batch, classes);
    std::vector<float> a, b;
    batchLogits(*this, inputs, batch, a, b);
    std::vector<float> column(classes);
    for (std::size_t s = 0; s < columns; ++s) {
        for (std::size_t c = 0; c < classes; ++c)
            column[c] = a[c * columns + s];
        softmaxInPlace(column);
        std::copy(column.begin(), column.end(),
                  probs.begin() + static_cast<std::ptrdiff_t>(s * classes));
    }
}

void
Network::classifyBatch(std::span<const float> inputs,
                       std::span<int> classes, int batch) const
{
    if (classes.size() != static_cast<std::size_t>(batch))
        fatal("classifyBatch: {} class slots for batch {}",
              classes.size(), batch);
    std::vector<float> a, b;
    batchLogits(*this, inputs, batch, a, b);
    std::vector<float> column(static_cast<std::size_t>(sizes_.back()));
    for (int s = 0; s < batch; ++s)
        classes[static_cast<std::size_t>(s)] =
            classifyColumn(a, batch, s, column);
}

void
Network::classifyScattered(std::span<const std::span<const float>> samples,
                           std::span<int> classes) const
{
    if (classes.size() != samples.size())
        fatal("classifyScattered: {} class slots for {} samples",
              classes.size(), samples.size());
    if (samples.empty())
        return;
    const std::size_t columns = samples.size();
    const std::size_t features = static_cast<std::size_t>(sizes_.front());
    std::vector<float> a, b;
    sizeBatchScratch(*this, columns, a, b);

    // Gather the scattered rows straight into the feature-major layout
    // (the same transpose batchLogits does from a contiguous block).
    for (std::size_t s = 0; s < columns; ++s) {
        if (samples[s].size() != features)
            fatal("classifyScattered: sample {} has {} features, "
                  "expected {}",
                  s, samples[s].size(), features);
        const float *row = samples[s].data();
        for (std::size_t i = 0; i < features; ++i)
            a[i * columns + s] = row[i];
    }

    const int batch = static_cast<int>(columns);
    runBatchLayers(*this, batch, a, b);
    std::vector<float> column(static_cast<std::size_t>(sizes_.back()));
    for (int s = 0; s < batch; ++s)
        classes[static_cast<std::size_t>(s)] =
            classifyColumn(a, batch, s, column);
}

std::size_t
Network::countMisclassified(const data::Dataset &set, std::size_t first,
                            std::size_t count, int batch) const
{
    std::size_t wrong = 0;
    std::vector<float> a, b;
    std::vector<float> column(static_cast<std::size_t>(sizes_.back()));
    for (std::size_t start = first; start < first + count;) {
        const int n = static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(batch), first + count - start));
        batchLogits(*this, set.samples(start, static_cast<std::size_t>(n)),
                    n, a, b);
        for (int s = 0; s < n; ++s) {
            if (classifyColumn(a, n, s, column) !=
                set.label(start + static_cast<std::size_t>(s)))
                ++wrong;
        }
        batchMetrics().batches.increment();
        start += static_cast<std::size_t>(n);
    }
    return wrong;
}

double
Network::evaluateError(const data::Dataset &set, std::size_t limit) const
{
    return evaluateError(set, EvalOptions{.limit = limit});
}

double
Network::evaluateError(const data::Dataset &set,
                       const EvalOptions &options) const
{
    const std::size_t n = options.limit == 0
        ? set.size()
        : std::min(options.limit, set.size());
    if (n == 0)
        fatal("evaluateError on an empty dataset");
    const int batch = options.batch > 0 ? options.batch
                                        : defaultEvalBatch();
    batchMetrics().samples.add(n);

    if (options.pool == nullptr) {
        return static_cast<double>(countMisclassified(set, 0, n, batch)) /
            static_cast<double>(n);
    }

    // One job per batch, each with a pre-assigned result slot; the
    // reduction walks the slots in plan order, so worker count and
    // completion order never touch the result (exact integer counts
    // make the sum order-free anyway — the plan order is belt and
    // braces, matching the fleet engine's convention).
    const std::size_t stride = static_cast<std::size_t>(batch);
    const std::size_t jobs = (n + stride - 1) / stride;
    std::vector<std::size_t> slot(jobs, 0);
    for (std::size_t j = 0; j < jobs; ++j) {
        options.pool->submit([this, &set, &slot, j, n, stride, batch] {
            const std::size_t start = j * stride;
            slot[j] = countMisclassified(
                set, start, std::min(stride, n - start), batch);
        });
    }
    options.pool->wait();
    batchMetrics().parallelJobs.add(jobs);
    std::size_t wrong = 0;
    for (std::size_t j = 0; j < jobs; ++j)
        wrong += slot[j];
    return static_cast<double>(wrong) / static_cast<double>(n);
}

double
Network::evaluateErrorScalar(const data::Dataset &set,
                             std::size_t limit) const
{
    const std::size_t n =
        limit == 0 ? set.size() : std::min(limit, set.size());
    if (n == 0)
        fatal("evaluateError on an empty dataset");
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (classify(set.sample(i)) != set.label(i))
            ++wrong;
    }
    return static_cast<double>(wrong) / static_cast<double>(n);
}

} // namespace uvolt::nn

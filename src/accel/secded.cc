#include "accel/secded.hh"

#include <bit>

namespace uvolt::accel
{

namespace
{

/**
 * Hamming positions (1-based) of the 16 data bits inside the 21-bit
 * codeword: every position that is not a power of two.
 */
constexpr int dataPosition[16] = {3,  5,  6,  7,  9,  10, 11, 12,
                                  13, 14, 15, 17, 18, 19, 20, 21};

/** Parity-bit positions. */
constexpr int parityPosition[5] = {1, 2, 4, 8, 16};

/** Expand a 16-bit data word into the 21-bit codeword (parity zeroed). */
std::uint32_t
expand(std::uint16_t data)
{
    std::uint32_t code = 0;
    for (int bit = 0; bit < 16; ++bit) {
        if ((data >> bit) & 1u)
            code |= 1u << (dataPosition[bit] - 1);
    }
    return code;
}

/** Compute the five Hamming parity bits of a codeword. */
std::uint32_t
hammingParity(std::uint32_t code)
{
    std::uint32_t parity = 0;
    for (int p = 0; p < 5; ++p) {
        const int mask_bit = parityPosition[p];
        std::uint32_t acc = 0;
        for (int pos = 1; pos <= 21; ++pos) {
            if ((pos & mask_bit) && ((code >> (pos - 1)) & 1u))
                acc ^= 1u;
        }
        parity |= acc << p;
    }
    return parity;
}

/** Extract the 16 data bits from a codeword. */
std::uint16_t
compress(std::uint32_t code)
{
    std::uint16_t data = 0;
    for (int bit = 0; bit < 16; ++bit) {
        if ((code >> (dataPosition[bit] - 1)) & 1u)
            data = static_cast<std::uint16_t>(data | (1u << bit));
    }
    return data;
}

} // namespace

std::uint8_t
secdedEncode(std::uint16_t data)
{
    std::uint32_t code = expand(data);
    const std::uint32_t parity = hammingParity(code);
    for (int p = 0; p < 5; ++p) {
        if ((parity >> p) & 1u)
            code |= 1u << (parityPosition[p] - 1);
    }
    const std::uint32_t overall =
        static_cast<std::uint32_t>(std::popcount(code)) & 1u;
    return static_cast<std::uint8_t>(parity | (overall << 5));
}

SecdedResult
secdedDecode(std::uint16_t data, std::uint8_t check)
{
    // Rebuild the received 21-bit codeword from data + stored parity.
    std::uint32_t code = expand(data);
    for (int p = 0; p < 5; ++p) {
        if ((check >> p) & 1u)
            code |= 1u << (parityPosition[p] - 1);
    }

    // Parity of the received codeword including its parity bits is zero
    // for a clean word; a single flipped bit makes it spell out that
    // bit's position (textbook Hamming property).
    const std::uint32_t syndrome = hammingParity(code);

    const std::uint32_t overall_received = (check >> 5) & 1u;
    const std::uint32_t overall_computed =
        static_cast<std::uint32_t>(std::popcount(code)) & 1u;
    const bool overall_mismatch = overall_received != overall_computed;

    SecdedResult result;
    if (syndrome == 0 && !overall_mismatch) {
        result.data = data;
        result.status = SecdedStatus::Clean;
        return result;
    }
    if (syndrome != 0 && overall_mismatch) {
        // Single error at the syndrome position (possibly a parity bit).
        if (syndrome <= 21)
            code ^= 1u << (syndrome - 1);
        result.data = compress(code);
        result.status = SecdedStatus::Corrected;
        return result;
    }
    if (syndrome == 0 && overall_mismatch) {
        // The overall parity bit itself flipped; data is intact.
        result.data = data;
        result.status = SecdedStatus::Corrected;
        return result;
    }
    // syndrome != 0 && overall parity matches: double error.
    result.data = data;
    result.status = SecdedStatus::DoubleDetected;
    return result;
}

} // namespace uvolt::accel

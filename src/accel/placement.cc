#include "accel/placement.hh"

#include <algorithm>
#include <unordered_set>

#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::accel
{

Placement::Placement(std::vector<std::uint32_t> physical_of)
    : physicalOf_(std::move(physical_of))
{
    std::unordered_set<std::uint32_t> seen;
    seen.reserve(physicalOf_.size() * 2);
    for (std::uint32_t physical : physicalOf_) {
        if (!seen.insert(physical).second)
            fatal("placement maps two logical BRAMs to physical {}",
                  physical);
    }
}

std::uint32_t
Placement::physicalOf(std::uint32_t logical) const
{
    if (logical >= physicalOf_.size())
        fatal("physicalOf: logical {} out of {}", logical,
              physicalOf_.size());
    return physicalOf_[logical];
}

bool
Placement::fits(std::uint32_t device_bram_count) const
{
    for (std::uint32_t physical : physicalOf_) {
        if (physical >= device_bram_count)
            return false;
    }
    return true;
}

Placement
defaultPlacement(const WeightImage &image)
{
    std::vector<std::uint32_t> map(image.logicalBramCount());
    for (std::uint32_t i = 0; i < map.size(); ++i)
        map[i] = i;
    return Placement(std::move(map));
}

Placement
randomPlacement(const WeightImage &image, std::uint32_t device_bram_count,
                std::uint64_t seed)
{
    if (device_bram_count < image.logicalBramCount())
        fatal("randomPlacement: image of {} BRAMs exceeds device pool {}",
              image.logicalBramCount(), device_bram_count);
    std::vector<std::uint32_t> pool(device_bram_count);
    for (std::uint32_t i = 0; i < device_bram_count; ++i)
        pool[i] = i;
    Rng rng(combineSeeds(seed, hashSeed("random-placement")));
    rng.shuffle(pool);
    pool.resize(image.logicalBramCount());
    return Placement(std::move(pool));
}

Placement
icbpPlacement(const WeightImage &image, const harness::Fvm &fvm,
              const IcbpOptions &options)
{
    const std::uint32_t device_count = fvm.bramCount();
    if (device_count < image.logicalBramCount())
        fatal("icbpPlacement: image of {} BRAMs exceeds device pool {}",
              image.logicalBramCount(), device_count);

    std::vector<int> protected_layers = options.protectedLayers;
    if (protected_layers.empty()) {
        protected_layers.push_back(
            static_cast<int>(image.layerSpans().size()) - 1);
    }

    const std::vector<std::uint32_t> by_reliability =
        fvm.bramsByReliability();
    std::vector<bool> used(device_count, false);
    std::vector<std::uint32_t> map(image.logicalBramCount());

    // 1. Pin the protected layers to the most reliable physical BRAMs.
    std::size_t reliable_cursor = 0;
    for (int layer : protected_layers) {
        const auto &spans = image.layerSpans();
        if (layer < 0 || static_cast<std::size_t>(layer) >= spans.size())
            fatal("icbpPlacement: protected layer {} out of {}", layer,
                  spans.size());
        const LayerSpan &span = spans[static_cast<std::size_t>(layer)];
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            while (reliable_cursor < by_reliability.size() &&
                   used[by_reliability[reliable_cursor]]) {
                ++reliable_cursor;
            }
            if (reliable_cursor >= by_reliability.size())
                fatal("icbpPlacement: ran out of reliable BRAMs");
            const std::uint32_t physical = by_reliability[reliable_cursor];
            map[span.firstLogicalBram + b] = physical;
            used[physical] = true;
        }
    }

    // 2. Everything else keeps the stock sequential order on what's left.
    std::uint32_t cursor = 0;
    const std::unordered_set<int> protected_set(protected_layers.begin(),
                                                protected_layers.end());
    for (const LayerSpan &span : image.layerSpans()) {
        if (protected_set.contains(span.layer))
            continue;
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            while (cursor < device_count && used[cursor])
                ++cursor;
            if (cursor >= device_count)
                fatal("icbpPlacement: device pool exhausted");
            map[span.firstLogicalBram + b] = cursor;
            used[cursor] = true;
        }
    }
    return Placement(std::move(map));
}

} // namespace uvolt::accel

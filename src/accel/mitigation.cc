#include "accel/mitigation.hh"

#include <algorithm>

#include "accel/secded.hh"
#include "fpga/fault_domain.hh"
#include "util/logging.hh"

namespace uvolt::accel
{

namespace
{

/** Replace one 16-bit row lane inside a packed stream. */
void
setRowOfWords(std::vector<std::uint64_t> &words, int row,
              std::uint16_t value)
{
    auto &word = words[static_cast<std::size_t>(row / fpga::bramRowsPerWord)];
    const int shift = (row % fpga::bramRowsPerWord) * fpga::bramCols;
    word = (word & ~(std::uint64_t{0xFFFF} << shift)) |
        (static_cast<std::uint64_t>(value) << shift);
}

} // namespace

MitigationLab::MitigationLab(pmbus::Board &board, WeightImage image,
                             Placement placement,
                             std::vector<int> protected_layers)
    : board_(board), image_(std::move(image)),
      placement_(std::move(placement)),
      protectedLayers_(std::move(protected_layers))
{
    if (placement_.logicalCount() != image_.logicalBramCount())
        fatal("mitigation lab: placement covers {} BRAMs, image needs {}",
              placement_.logicalCount(), image_.logicalBramCount());
    if (!placement_.fits(board_.device().bramCount()))
        fatal("mitigation lab: placement does not fit the device");
    if (protectedLayers_.empty()) {
        protectedLayers_.push_back(
            static_cast<int>(image_.layerSpans().size()) - 1);
    }

    // Free physical pool = everything the data placement left unused.
    std::vector<bool> used(board_.device().bramCount(), false);
    for (std::uint32_t l = 0; l < placement_.logicalCount(); ++l)
        used[placement_.physicalOf(l)] = true;
    std::vector<std::uint32_t> free_pool;
    for (std::uint32_t p = 0; p < board_.device().bramCount(); ++p) {
        if (!used[p])
            free_pool.push_back(p);
    }

    replicaOf_.resize(image_.logicalBramCount());
    hasReplica_.assign(image_.logicalBramCount(), false);
    checkOf_.resize(image_.logicalBramCount());

    std::size_t cursor = 0;
    auto take_free = [&]() {
        if (cursor >= free_pool.size())
            fatal("mitigation lab: not enough spare BRAMs on {} "
                  "(protect fewer layers)",
                  board_.spec().name);
        return free_pool[cursor++];
    };

    // TMR replicas: two spare BRAMs per protected logical BRAM.
    for (const LayerSpan &span : image_.layerSpans()) {
        if (!isProtected(span.layer))
            continue;
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            const std::uint32_t logical = span.firstLogicalBram + b;
            replicaOf_[logical] = {take_free(), take_free()};
            hasReplica_[logical] = true;
        }
    }

    // SECDED check storage: one check BRAM serves two data BRAMs (two
    // 6-bit check words pack per 16-bit check row).
    std::uint32_t current_check = 0;
    int half = 0;
    for (const LayerSpan &span : image_.layerSpans()) {
        if (!isProtected(span.layer))
            continue;
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            const std::uint32_t logical = span.firstLogicalBram + b;
            if (half == 0)
                current_check = take_free();
            checkOf_[logical] =
                {current_check, half * (fpga::bramRows / 2), true};
            half = (half + 1) % 2;
        }
    }

    program();
}

bool
MitigationLab::isProtected(int layer) const
{
    for (int p : protectedLayers_) {
        if (p == layer)
            return true;
    }
    return false;
}

void
MitigationLab::program()
{
    restoreAllStorage();
}

void
MitigationLab::restoreAllStorage() const
{
    auto &device = board_.device();
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        const auto &words = image_.wordsOf(logical);

        device.bram(placement_.physicalOf(logical)).assignWords(words);
        if (hasReplica_[logical]) {
            device.bram(replicaOf_[logical][0]).assignWords(words);
            device.bram(replicaOf_[logical][1]).assignWords(words);
        }
        if (checkOf_[logical].valid) {
            auto &check_bram = device.bram(checkOf_[logical].physical);
            for (int row = 0; row < fpga::bramRows; row += 2) {
                const std::uint8_t low = secdedEncode(
                    fpga::rowOfWords(words, row));
                const std::uint8_t high = secdedEncode(
                    fpga::rowOfWords(words, row + 1));
                check_bram.writeRow(
                    checkOf_[logical].baseRow + row / 2,
                    static_cast<std::uint16_t>(low | (high << 8)));
            }
        }
    }
}

std::vector<std::uint64_t>
MitigationLab::readPhysical(std::uint32_t physical) const
{
    constexpr int max_recoveries = 16;
    for (int attempt = 0; attempt <= max_recoveries; ++attempt) {
        auto observed = board_.tryReadBramPacked(physical);
        if (observed.ok())
            return observed.take();
        if (observed.code() != Errc::crashDetected)
            fatal("{}", observed.error().message);
        // Reconfiguration restores data, replica, and check storage
        // alike; then re-enter the interrupted read at the original
        // operating point and supply jitter.
        ++crashRecoveries_;
        const int level_mv = board_.vccBramMv();
        const double jitter_v = board_.runJitterV();
        board_.softReset();
        restoreAllStorage();
        board_.setVccBramMv(level_mv);
        board_.resumeRun(jitter_v);
    }
    fatal("{}: mitigated readback of BRAM {} crashed {} times in a row",
          board_.spec().name, physical, max_recoveries);
}

nn::QuantizedModel
MitigationLab::readRaw(MitigationReport &report) const
{
    report = MitigationReport{};
    std::vector<std::vector<std::uint64_t>> observed;
    observed.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        observed.push_back(readPhysical(placement_.physicalOf(logical)));
        report.rawFaults +=
            fpga::diffPopcount(image_.wordsOf(logical), observed.back());
    }
    report.residualFaults = report.rawFaults;
    return image_.decode(observed);
}

nn::QuantizedModel
MitigationLab::readTemporalVote(int reads, MitigationReport &report) const
{
    if (reads < 1 || reads % 2 == 0)
        fatal("temporal vote needs an odd positive read count, got {}",
              reads);
    report = MitigationReport{};
    report.extraBrams = 0; // bandwidth cost, not storage

    std::vector<std::vector<std::uint64_t>> observed;
    observed.reserve(image_.logicalBramCount());
    std::vector<int> votes(fpga::bramBits);

    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        const std::uint32_t physical = placement_.physicalOf(logical);
        std::fill(votes.begin(), votes.end(), 0);
        std::uint64_t raw_once = 0;
        for (int r = 0; r < reads; ++r) {
            board_.startRun(); // fresh supply jitter per read
            const auto words = readPhysical(physical);
            if (r == 0) {
                raw_once =
                    fpga::diffPopcount(image_.wordsOf(logical), words);
            }
            // Only set bits can push a vote over the majority line, so
            // the ctz walk over the fault domain tallies exactly what
            // the per-bitcell loop did.
            fpga::forEachSetBit(words, [&](std::uint32_t offset) {
                ++votes[offset];
            });
        }
        std::vector<std::uint64_t> voted(fpga::bramWords, 0);
        for (int w = 0; w < fpga::bramWords; ++w) {
            std::uint64_t word = 0;
            for (int bit = 0; bit < fpga::bramWordBits; ++bit) {
                if (votes[static_cast<std::size_t>(
                        w * fpga::bramWordBits + bit)] * 2 > reads) {
                    word |= std::uint64_t{1} << bit;
                }
            }
            voted[static_cast<std::size_t>(w)] = word;
        }
        report.rawFaults += raw_once;
        report.residualFaults +=
            fpga::diffPopcount(image_.wordsOf(logical), voted);
        observed.push_back(std::move(voted));
    }
    report.corrected = report.rawFaults > report.residualFaults
        ? report.rawFaults - report.residualFaults
        : 0;
    return image_.decode(observed);
}

nn::QuantizedModel
MitigationLab::readSpatialTmr(MitigationReport &report) const
{
    report = MitigationReport{};
    report.extraBrams = tmrOverheadBrams();

    std::vector<std::vector<std::uint64_t>> observed;
    observed.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        auto primary = readPhysical(placement_.physicalOf(logical));
        report.rawFaults +=
            fpga::diffPopcount(image_.wordsOf(logical), primary);
        if (hasReplica_[logical]) {
            const auto copy_a = readPhysical(replicaOf_[logical][0]);
            const auto copy_b = readPhysical(replicaOf_[logical][1]);
            for (std::size_t w = 0; w < primary.size(); ++w) {
                // Bitwise 2-of-3 majority, 64 cells per operation.
                primary[w] = (primary[w] & copy_a[w]) |
                    (primary[w] & copy_b[w]) | (copy_a[w] & copy_b[w]);
            }
        }
        report.residualFaults +=
            fpga::diffPopcount(image_.wordsOf(logical), primary);
        observed.push_back(std::move(primary));
    }
    report.corrected = report.rawFaults > report.residualFaults
        ? report.rawFaults - report.residualFaults
        : 0;
    return image_.decode(observed);
}

nn::QuantizedModel
MitigationLab::readSecded(MitigationReport &report) const
{
    report = MitigationReport{};
    report.extraBrams = secdedOverheadBrams();

    std::vector<std::vector<std::uint64_t>> observed;
    observed.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        auto words = readPhysical(placement_.physicalOf(logical));
        report.rawFaults +=
            fpga::diffPopcount(image_.wordsOf(logical), words);
        if (checkOf_[logical].valid) {
            const auto check_words =
                readPhysical(checkOf_[logical].physical);
            for (int row = 0; row < fpga::bramRows; ++row) {
                const std::uint16_t packed = fpga::rowOfWords(
                    check_words, checkOf_[logical].baseRow + row / 2);
                const auto check = static_cast<std::uint8_t>(
                    (row % 2 == 0 ? packed : packed >> 8) & 0x3F);
                const SecdedResult decoded = secdedDecode(
                    fpga::rowOfWords(words, row), check);
                setRowOfWords(words, row, decoded.data);
                if (decoded.status == SecdedStatus::DoubleDetected)
                    ++report.detectedUncorrectable;
            }
        }
        report.residualFaults +=
            fpga::diffPopcount(image_.wordsOf(logical), words);
        observed.push_back(std::move(words));
    }
    report.corrected = report.rawFaults > report.residualFaults
        ? report.rawFaults - report.residualFaults
        : 0;
    return image_.decode(observed);
}

std::uint32_t
MitigationLab::tmrOverheadBrams() const
{
    std::uint32_t total = 0;
    for (bool has : hasReplica_)
        total += has ? 2 : 0;
    return total;
}

std::uint32_t
MitigationLab::secdedOverheadBrams() const
{
    std::uint32_t protected_count = 0;
    for (const auto &slot : checkOf_)
        protected_count += slot.valid;
    return (protected_count + 1) / 2;
}

} // namespace uvolt::accel

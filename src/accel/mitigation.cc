#include "accel/mitigation.hh"

#include <bit>

#include "accel/secded.hh"
#include "util/logging.hh"

namespace uvolt::accel
{

namespace
{

/** Faulty bits between an observed readback and the written rows. */
std::uint64_t
countDiffBits(const std::vector<std::uint16_t> &written,
              const std::vector<std::uint16_t> &observed)
{
    std::uint64_t faults = 0;
    for (std::size_t row = 0; row < written.size(); ++row) {
        faults += static_cast<std::uint64_t>(std::popcount(
            static_cast<unsigned>(written[row] ^ observed[row])));
    }
    return faults;
}

} // namespace

MitigationLab::MitigationLab(pmbus::Board &board, WeightImage image,
                             Placement placement,
                             std::vector<int> protected_layers)
    : board_(board), image_(std::move(image)),
      placement_(std::move(placement)),
      protectedLayers_(std::move(protected_layers))
{
    if (placement_.logicalCount() != image_.logicalBramCount())
        fatal("mitigation lab: placement covers {} BRAMs, image needs {}",
              placement_.logicalCount(), image_.logicalBramCount());
    if (!placement_.fits(board_.device().bramCount()))
        fatal("mitigation lab: placement does not fit the device");
    if (protectedLayers_.empty()) {
        protectedLayers_.push_back(
            static_cast<int>(image_.layerSpans().size()) - 1);
    }

    // Free physical pool = everything the data placement left unused.
    std::vector<bool> used(board_.device().bramCount(), false);
    for (std::uint32_t l = 0; l < placement_.logicalCount(); ++l)
        used[placement_.physicalOf(l)] = true;
    std::vector<std::uint32_t> free_pool;
    for (std::uint32_t p = 0; p < board_.device().bramCount(); ++p) {
        if (!used[p])
            free_pool.push_back(p);
    }

    replicaOf_.resize(image_.logicalBramCount());
    hasReplica_.assign(image_.logicalBramCount(), false);
    checkOf_.resize(image_.logicalBramCount());

    std::size_t cursor = 0;
    auto take_free = [&]() {
        if (cursor >= free_pool.size())
            fatal("mitigation lab: not enough spare BRAMs on {} "
                  "(protect fewer layers)",
                  board_.spec().name);
        return free_pool[cursor++];
    };

    // TMR replicas: two spare BRAMs per protected logical BRAM.
    for (const LayerSpan &span : image_.layerSpans()) {
        if (!isProtected(span.layer))
            continue;
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            const std::uint32_t logical = span.firstLogicalBram + b;
            replicaOf_[logical] = {take_free(), take_free()};
            hasReplica_[logical] = true;
        }
    }

    // SECDED check storage: one check BRAM serves two data BRAMs (two
    // 6-bit check words pack per 16-bit check row).
    std::uint32_t current_check = 0;
    int half = 0;
    for (const LayerSpan &span : image_.layerSpans()) {
        if (!isProtected(span.layer))
            continue;
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            const std::uint32_t logical = span.firstLogicalBram + b;
            if (half == 0)
                current_check = take_free();
            checkOf_[logical] =
                {current_check, half * (fpga::bramRows / 2), true};
            half = (half + 1) % 2;
        }
    }

    program();
}

bool
MitigationLab::isProtected(int layer) const
{
    for (int p : protectedLayers_) {
        if (p == layer)
            return true;
    }
    return false;
}

void
MitigationLab::program()
{
    restoreAllStorage();
}

void
MitigationLab::restoreAllStorage() const
{
    auto &device = board_.device();
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        const auto &rows = image_.rowsOf(logical);

        auto write_rows = [&](std::uint32_t physical) {
            auto &bram = device.bram(physical);
            for (int row = 0; row < fpga::bramRows; ++row)
                bram.writeRow(row, rows[static_cast<std::size_t>(row)]);
        };
        write_rows(placement_.physicalOf(logical));
        if (hasReplica_[logical]) {
            write_rows(replicaOf_[logical][0]);
            write_rows(replicaOf_[logical][1]);
        }
        if (checkOf_[logical].valid) {
            auto &check_bram = device.bram(checkOf_[logical].physical);
            for (int row = 0; row < fpga::bramRows; row += 2) {
                const std::uint8_t low = secdedEncode(
                    rows[static_cast<std::size_t>(row)]);
                const std::uint8_t high = secdedEncode(
                    rows[static_cast<std::size_t>(row) + 1]);
                check_bram.writeRow(
                    checkOf_[logical].baseRow + row / 2,
                    static_cast<std::uint16_t>(low | (high << 8)));
            }
        }
    }
}

std::vector<std::uint16_t>
MitigationLab::readPhysical(std::uint32_t physical) const
{
    constexpr int max_recoveries = 16;
    for (int attempt = 0; attempt <= max_recoveries; ++attempt) {
        auto observed = board_.tryReadBramToHost(physical);
        if (observed.ok())
            return observed.take();
        if (observed.code() != Errc::crashDetected)
            fatal("{}", observed.error().message);
        // Reconfiguration restores data, replica, and check storage
        // alike; then re-enter the interrupted read at the original
        // operating point and supply jitter.
        ++crashRecoveries_;
        const int level_mv = board_.vccBramMv();
        const double jitter_v = board_.runJitterV();
        board_.softReset();
        restoreAllStorage();
        board_.setVccBramMv(level_mv);
        board_.resumeRun(jitter_v);
    }
    fatal("{}: mitigated readback of BRAM {} crashed {} times in a row",
          board_.spec().name, physical, max_recoveries);
}

nn::QuantizedModel
MitigationLab::readRaw(MitigationReport &report) const
{
    report = MitigationReport{};
    std::vector<std::vector<std::uint16_t>> observed;
    observed.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        observed.push_back(readPhysical(placement_.physicalOf(logical)));
        report.rawFaults +=
            countDiffBits(image_.rowsOf(logical), observed.back());
    }
    report.residualFaults = report.rawFaults;
    return image_.decode(observed);
}

nn::QuantizedModel
MitigationLab::readTemporalVote(int reads, MitigationReport &report) const
{
    if (reads < 1 || reads % 2 == 0)
        fatal("temporal vote needs an odd positive read count, got {}",
              reads);
    report = MitigationReport{};
    report.extraBrams = 0; // bandwidth cost, not storage

    std::vector<std::vector<std::uint16_t>> observed;
    observed.reserve(image_.logicalBramCount());
    std::vector<int> votes(fpga::bramRows * fpga::bramCols);

    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        const std::uint32_t physical = placement_.physicalOf(logical);
        std::fill(votes.begin(), votes.end(), 0);
        std::uint64_t raw_once = 0;
        for (int r = 0; r < reads; ++r) {
            board_.startRun(); // fresh supply jitter per read
            const auto rows = readPhysical(physical);
            if (r == 0)
                raw_once = countDiffBits(image_.rowsOf(logical), rows);
            for (int row = 0; row < fpga::bramRows; ++row) {
                const std::uint16_t word =
                    rows[static_cast<std::size_t>(row)];
                for (int col = 0; col < fpga::bramCols; ++col)
                    votes[static_cast<std::size_t>(
                        row * fpga::bramCols + col)] +=
                        (word >> col) & 1;
            }
        }
        std::vector<std::uint16_t> voted(fpga::bramRows, 0);
        for (int row = 0; row < fpga::bramRows; ++row) {
            std::uint16_t word = 0;
            for (int col = 0; col < fpga::bramCols; ++col) {
                if (votes[static_cast<std::size_t>(
                        row * fpga::bramCols + col)] * 2 > reads) {
                    word = static_cast<std::uint16_t>(word | (1u << col));
                }
            }
            voted[static_cast<std::size_t>(row)] = word;
        }
        report.rawFaults += raw_once;
        report.residualFaults +=
            countDiffBits(image_.rowsOf(logical), voted);
        observed.push_back(std::move(voted));
    }
    report.corrected = report.rawFaults > report.residualFaults
        ? report.rawFaults - report.residualFaults
        : 0;
    return image_.decode(observed);
}

nn::QuantizedModel
MitigationLab::readSpatialTmr(MitigationReport &report) const
{
    report = MitigationReport{};
    report.extraBrams = tmrOverheadBrams();

    std::vector<std::vector<std::uint16_t>> observed;
    observed.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        auto primary = readPhysical(placement_.physicalOf(logical));
        report.rawFaults +=
            countDiffBits(image_.rowsOf(logical), primary);
        if (hasReplica_[logical]) {
            const auto copy_a = readPhysical(replicaOf_[logical][0]);
            const auto copy_b = readPhysical(replicaOf_[logical][1]);
            for (int row = 0; row < fpga::bramRows; ++row) {
                const auto index = static_cast<std::size_t>(row);
                // Bitwise 2-of-3 majority.
                primary[index] = static_cast<std::uint16_t>(
                    (primary[index] & copy_a[index]) |
                    (primary[index] & copy_b[index]) |
                    (copy_a[index] & copy_b[index]));
            }
        }
        report.residualFaults +=
            countDiffBits(image_.rowsOf(logical), primary);
        observed.push_back(std::move(primary));
    }
    report.corrected = report.rawFaults > report.residualFaults
        ? report.rawFaults - report.residualFaults
        : 0;
    return image_.decode(observed);
}

nn::QuantizedModel
MitigationLab::readSecded(MitigationReport &report) const
{
    report = MitigationReport{};
    report.extraBrams = secdedOverheadBrams();

    std::vector<std::vector<std::uint16_t>> observed;
    observed.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        auto rows = readPhysical(placement_.physicalOf(logical));
        report.rawFaults += countDiffBits(image_.rowsOf(logical), rows);
        if (checkOf_[logical].valid) {
            const auto check_rows =
                readPhysical(checkOf_[logical].physical);
            for (int row = 0; row < fpga::bramRows; ++row) {
                const std::uint16_t packed = check_rows[
                    static_cast<std::size_t>(
                        checkOf_[logical].baseRow + row / 2)];
                const auto check = static_cast<std::uint8_t>(
                    (row % 2 == 0 ? packed : packed >> 8) & 0x3F);
                const SecdedResult decoded = secdedDecode(
                    rows[static_cast<std::size_t>(row)], check);
                rows[static_cast<std::size_t>(row)] = decoded.data;
                if (decoded.status == SecdedStatus::DoubleDetected)
                    ++report.detectedUncorrectable;
            }
        }
        report.residualFaults +=
            countDiffBits(image_.rowsOf(logical), rows);
        observed.push_back(std::move(rows));
    }
    report.corrected = report.rawFaults > report.residualFaults
        ? report.rawFaults - report.residualFaults
        : 0;
    return image_.decode(observed);
}

std::uint32_t
MitigationLab::tmrOverheadBrams() const
{
    std::uint32_t total = 0;
    for (bool has : hasReplica_)
        total += has ? 2 : 0;
    return total;
}

std::uint32_t
MitigationLab::secdedOverheadBrams() const
{
    std::uint32_t protected_count = 0;
    for (const auto &slot : checkOf_)
        protected_count += slot.valid;
    return (protected_count + 1) / 2;
}

} // namespace uvolt::accel

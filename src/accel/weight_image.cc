#include "accel/weight_image.hh"

#include "fpga/bram.hh"
#include "util/logging.hh"

namespace uvolt::accel
{

WeightImage::WeightImage(const nn::QuantizedModel &model) : model_(model)
{
    static_assert(weightsPerBram == fpga::bramRows,
                  "one weight word per BRAM row");

    for (std::size_t l = 0; l < model_.layers.size(); ++l) {
        const auto &layer = model_.layers[l];
        LayerSpan span;
        span.layer = static_cast<int>(l);
        span.firstLogicalBram = logicalBramCount();
        span.weightCount = layer.weights.size();
        span.bramCount = static_cast<std::uint32_t>(
            (layer.weights.size() + weightsPerBram - 1) / weightsPerBram);

        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            std::vector<std::uint16_t> rows(fpga::bramRows, 0);
            const std::size_t base =
                static_cast<std::size_t>(b) * weightsPerBram;
            const std::size_t take =
                std::min<std::size_t>(weightsPerBram,
                                      layer.weights.size() - base);
            for (std::size_t w = 0; w < take; ++w)
                rows[w] = layer.weights[base + w];
            contents_.push_back(fpga::packRows(rows));
            rows_.push_back(std::move(rows));
            layerOf_.push_back(span.layer);
        }
        spans_.push_back(span);
    }
}

int
WeightImage::layerOf(std::uint32_t logical_bram) const
{
    if (logical_bram >= layerOf_.size())
        fatal("layerOf: logical BRAM {} out of {}", logical_bram,
              layerOf_.size());
    return layerOf_[logical_bram];
}

const std::vector<std::uint64_t> &
WeightImage::wordsOf(std::uint32_t logical_bram) const
{
    if (logical_bram >= contents_.size())
        fatal("wordsOf: logical BRAM {} out of {}", logical_bram,
              contents_.size());
    return contents_[logical_bram];
}

const std::vector<std::uint16_t> &
WeightImage::rowsOf(std::uint32_t logical_bram) const
{
    if (logical_bram >= rows_.size())
        fatal("rowsOf: logical BRAM {} out of {}", logical_bram,
              rows_.size());
    return rows_[logical_bram];
}

nn::QuantizedModel
WeightImage::decode(
    const std::vector<std::vector<std::uint64_t>> &observed) const
{
    if (observed.size() != contents_.size())
        fatal("decode: {} BRAM readbacks for an image of {}",
              observed.size(), contents_.size());

    nn::QuantizedModel result = model_;
    for (const auto &span : spans_) {
        auto &layer = result.layers[static_cast<std::size_t>(span.layer)];
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            const auto &words = observed[span.firstLogicalBram + b];
            if (words.size() != static_cast<std::size_t>(fpga::bramWords))
                fatal("decode: BRAM readback with {} packed words",
                      words.size());
            const std::size_t base =
                static_cast<std::size_t>(b) * weightsPerBram;
            const std::size_t take =
                std::min<std::size_t>(weightsPerBram,
                                      layer.weights.size() - base);
            for (std::size_t w = 0; w < take; ++w) {
                layer.weights[base + w] =
                    fpga::rowOfWords(words, static_cast<int>(w));
            }
        }
    }
    return result;
}

nn::QuantizedModel
WeightImage::decode(
    const std::vector<std::vector<std::uint16_t>> &observed) const
{
    std::vector<std::vector<std::uint64_t>> packed;
    packed.reserve(observed.size());
    for (const auto &rows : observed) {
        if (rows.size() != static_cast<std::size_t>(fpga::bramRows))
            fatal("decode: BRAM readback with {} rows", rows.size());
        packed.push_back(fpga::packRows(rows));
    }
    return decode(packed);
}

double
WeightImage::utilizationOf(std::uint32_t device_bram_count) const
{
    if (device_bram_count == 0)
        fatal("utilizationOf: empty device");
    return static_cast<double>(logicalBramCount()) /
        static_cast<double>(device_bram_count);
}

} // namespace uvolt::accel

/**
 * @file
 * Datapath faults under VCCINT undervolting (the paper's future work:
 * "a more comprehensive voltage scaling in other components").
 *
 * The paper undervolts only VCCBRAM while running the NN, keeping the
 * DSP/LUT datapath at nominal; Fig 1b shows VCCINT has its own
 * SAFE/CRITICAL/CRASH regions. This module models what happens when the
 * *datapath* enters its critical region: timing failures in MAC/adder
 * trees corrupt a neuron's accumulated pre-activation before the
 * activation function. Each neuron evaluation independently suffers a
 * single-bit upset of its fixed-point accumulator with a probability
 * that grows exponentially below the logic Vmin — the same law the BRAM
 * rail follows, scaled per operation.
 *
 * Unlike BRAM storage faults (static, maskable, mostly "1"->"0"),
 * datapath faults are transient, bipolar, and strike every layer's
 * computation — which is why they degrade accuracy catastrophically and
 * why the paper's BRAM-first focus is the right engineering order.
 */

#ifndef UVOLT_ACCEL_LOGIC_FAULTS_HH
#define UVOLT_ACCEL_LOGIC_FAULTS_HH

#include <cstdint>

#include "data/dataset.hh"
#include "fpga/platform.hh"
#include "nn/network.hh"
#include "util/rng.hh"

namespace uvolt::accel
{

/** Timing-fault behaviour of the logic rail. */
class LogicFaultModel
{
  public:
    /**
     * @param spec platform (logic Vmin/Vcrash come from its calibration)
     * @param fault_prob_at_vcrash per-neuron-evaluation upset
     *        probability at the logic Vcrash. A neuron evaluation
     *        aggregates hundreds of MAC operations, each a potential
     *        timing victim, so the default of 2e-2 corresponds to a
     *        per-MAC failure rate of order 1e-4.
     */
    explicit LogicFaultModel(const fpga::PlatformSpec &spec,
                             double fault_prob_at_vcrash = 2e-2);

    /**
     * Per-neuron-evaluation upset probability at a VCCINT level:
     * 0 at/above the logic Vmin, exponential growth down to Vcrash
     * (mirroring the BRAM rail's law).
     */
    double neuronUpsetProbability(double vcc_int_v) const;

    const fpga::PlatformSpec &spec() const { return spec_; }

  private:
    fpga::PlatformSpec spec_;
    double probAtVcrash_;
    double slope_;
};

/**
 * Classify one sample with datapath upsets: every neuron's
 * pre-activation suffers, with probability @a upset_prob, a random
 * bit flip in its s1.d6.f9 accumulator representation. Deterministic
 * in the RNG state.
 */
int faultyClassify(const nn::Network &net, std::span<const float> input,
                   double upset_prob, Rng &rng);

/**
 * Classification error over a dataset with datapath upsets at the given
 * VCCINT level.
 * @param limit evaluate only the first @a limit samples (0 = all)
 */
double evaluateErrorUnderLogicFaults(const nn::Network &net,
                                     const data::Dataset &test_set,
                                     const LogicFaultModel &model,
                                     double vcc_int_v, std::uint64_t seed,
                                     std::size_t limit = 0);

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_LOGIC_FAULTS_HH

#include "accel/logic_faults.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fxp/fixed_point.hh"
#include "util/logging.hh"

namespace uvolt::accel
{

namespace
{

/** Accumulator format: wide enough for a 1024-input dot product. */
const fxp::QFormat accumulatorFormat(6); // s1.d6.f9

/**
 * Flip one high-order bit of a value's fixed-point representation.
 * Timing failures strike the longest combinational paths first, and in
 * a MAC/adder tree those are the carries into the top of the word, so
 * upsets land in the sign/digit field rather than uniformly.
 */
float
upsetValue(float value, Rng &rng)
{
    const fxp::Word word = accumulatorFormat.quantize(value);
    const int bit = static_cast<int>(rng.uniformInt(
        fxp::wordBits - 1 - accumulatorFormat.digitBits(),
        fxp::wordBits - 1));
    const fxp::Word flipped =
        fxp::withBit(word, bit, !fxp::getBit(word, bit));
    return static_cast<float>(accumulatorFormat.dequantize(flipped));
}

} // namespace

LogicFaultModel::LogicFaultModel(const fpga::PlatformSpec &spec,
                                 double fault_prob_at_vcrash)
    : spec_(spec), probAtVcrash_(fault_prob_at_vcrash)
{
    if (fault_prob_at_vcrash <= 0.0 || fault_prob_at_vcrash > 1.0)
        fatal("logic fault probability {} outside (0, 1]",
              fault_prob_at_vcrash);
    const double span =
        (spec_.calib.intVminMv - spec_.calib.intVcrashMv) / 1000.0;
    // Same exponential-growth convention as the BRAM rail: roughly one
    // event "unit" at Vmin scaling up to the calibrated rate at Vcrash.
    slope_ = std::log(1e4) / span;
}

double
LogicFaultModel::neuronUpsetProbability(double vcc_int_v) const
{
    const double v_min = spec_.calib.intVminMv / 1000.0;
    const double v_crash = spec_.calib.intVcrashMv / 1000.0;
    if (vcc_int_v >= v_min)
        return 0.0;
    const double v = std::max(vcc_int_v, v_crash);
    return std::min(1.0, probAtVcrash_ * std::exp(-slope_ *
                                                  (v - v_crash)));
}

int
faultyClassify(const nn::Network &net, std::span<const float> input,
               double upset_prob, Rng &rng)
{
    std::vector<float> activations(input.begin(), input.end());
    std::vector<float> next;
    for (int l = 0; l < net.layerCount(); ++l) {
        const auto &layer = net.layer(l);
        next.assign(static_cast<std::size_t>(layer.outputs()), 0.0f);
        layer.forward(activations, next);
        for (auto &value : next) {
            if (upset_prob > 0.0 && rng.chance(upset_prob))
                value = upsetValue(value, rng);
            if (l + 1 < net.layerCount())
                value = nn::logsig(value);
        }
        activations.swap(next);
    }
    return static_cast<int>(
        std::max_element(activations.begin(), activations.end()) -
        activations.begin());
}

double
evaluateErrorUnderLogicFaults(const nn::Network &net,
                              const data::Dataset &test_set,
                              const LogicFaultModel &model,
                              double vcc_int_v, std::uint64_t seed,
                              std::size_t limit)
{
    const std::size_t n = limit == 0
        ? test_set.size()
        : std::min(limit, test_set.size());
    if (n == 0)
        fatal("evaluateErrorUnderLogicFaults: empty dataset");

    const double prob = model.neuronUpsetProbability(vcc_int_v);
    if (prob == 0.0) {
        // Above Vmin the datapath is fault-free and faultyClassify()
        // degenerates to an arg-max over the final logits — the same
        // decision classify() makes (softmax is order-preserving and
        // the RNG is never consulted). Use the batched engine for the
        // common fault-free region of every VCCINT sweep.
        return net.evaluateError(test_set, nn::EvalOptions{.limit = n});
    }
    // Below Vmin the upsets draw from one sequential RNG stream whose
    // per-neuron order is part of the reproducible result; batching
    // would reorder the draws, so this path stays sample-by-sample.
    Rng rng(combineSeeds(seed, hashSeed("logic-upsets")));
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (faultyClassify(net, test_set.sample(i), prob, rng) !=
            test_set.label(i)) {
            ++wrong;
        }
    }
    return static_cast<double>(wrong) / static_cast<double>(n);
}

} // namespace uvolt::accel

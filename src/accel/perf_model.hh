/**
 * @file
 * Throughput/energy model of the streaming FC accelerator.
 *
 * Table III's example synthesis runs the design at 100 MHz with a pool
 * of DSP MAC units; the datapath is a layer-by-layer streaming
 * matrix-vector engine. Cycle counts follow the standard FC-accelerator
 * occupancy model: each layer needs ceil(inputs*outputs / macs) MAC
 * cycles plus a per-layer pipeline drain. Combined with a power model
 * and an operating point, this yields inferences/s and energy per
 * inference — the quantities the DVFS-vs-undervolting comparison needs.
 */

#ifndef UVOLT_ACCEL_PERF_MODEL_HH
#define UVOLT_ACCEL_PERF_MODEL_HH

#include <cstdint>

#include "nn/network.hh"
#include "power/dvfs.hh"
#include "power/power_model.hh"

namespace uvolt::accel
{

/** The accelerator's datapath resources. */
struct DatapathConfig
{
    int macUnits = 240;        ///< parallel DSP MACs (Table III scale)
    int pipelineDepth = 12;    ///< per-layer fill/drain cycles
    double clockMhz = 100.0;   ///< nominal clock (Table III)
};

/** Throughput and energy at one operating point. */
struct PerfPoint
{
    double clockMhz = 0.0;
    std::uint64_t cyclesPerInference = 0;
    double inferencesPerSecond = 0.0;
    double totalPowerW = 0.0;     ///< BRAM + logic at the point
    double energyPerInferenceMj = 0.0; ///< millijoules
};

/** Performance model bound to one design and platform. */
class PerfModel
{
  public:
    /**
     * @param topology layer sizes of the deployed network
     * @param spec platform (for the BRAM power model)
     * @param logic_nominal_w logic power at nominal (Fig 10's "rest")
     * @param bram_utilization share of the device's BRAMs the design
     *        charges to its power budget (Table III: 0.708)
     */
    PerfModel(const std::vector<int> &topology,
              const fpga::PlatformSpec &spec, double logic_nominal_w,
              double bram_utilization = 0.708,
              const DatapathConfig &config = {});

    /** MAC cycles for one inference at any clock. */
    std::uint64_t cyclesPerInference() const;

    /** Evaluate an operating point end to end. */
    PerfPoint evaluate(const power::OperatingPoint &point) const;

    const DatapathConfig &config() const { return config_; }

  private:
    std::vector<int> topology_;
    DatapathConfig config_;
    power::RailPowerModel bramPower_;
    power::LogicPowerModel logicPower_;
    double bramUtilization_;
};

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_PERF_MODEL_HH

/**
 * @file
 * Mapping of quantized NN weights onto logical BRAMs.
 *
 * The accelerator stores every 16-bit weight word in BRAM (Table III:
 * ~1.5 M weights fill 70.8% of VC707's 2060 BRAMs). Weights are laid out
 * layer by layer, each layer starting on a fresh BRAM so a layer's
 * protection domain is a whole number of BRAMs; with the paper's
 * topology the last layer (Layer4) occupies exactly 2 BRAMs, the unit
 * ICBP protects. One BRAM row (16 bits) holds one weight word, so a
 * 1024-row BRAM holds 1024 weights.
 */

#ifndef UVOLT_ACCEL_WEIGHT_IMAGE_HH
#define UVOLT_ACCEL_WEIGHT_IMAGE_HH

#include <cstdint>
#include <vector>

#include "fpga/fault_domain.hh"
#include "nn/quantizer.hh"

namespace uvolt::accel
{

/** Weights per BRAM: one 16-bit word per row. */
constexpr std::uint32_t weightsPerBram = 1024;

/** The logical BRAMs of one NN layer. */
struct LayerSpan
{
    int layer = 0;
    std::uint32_t firstLogicalBram = 0;
    std::uint32_t bramCount = 0;
    std::size_t weightCount = 0;
};

/** The BRAM initialization image of a quantized model. */
class WeightImage
{
  public:
    explicit WeightImage(const nn::QuantizedModel &model);

    const nn::QuantizedModel &model() const { return model_; }

    /** Logical BRAMs the image occupies. */
    std::uint32_t logicalBramCount() const
    {
        return static_cast<std::uint32_t>(contents_.size());
    }

    /** Per-layer extents, in layer order. */
    const std::vector<LayerSpan> &layerSpans() const { return spans_; }

    /** Layer owning a logical BRAM. */
    int layerOf(std::uint32_t logical_bram) const;

    /**
     * Packed contents of one logical BRAM (zero-padded tail): the
     * fault-domain words programmed into the block, ready for
     * Bram::assignWords() or diffPopcount() against a packed readback.
     */
    const std::vector<std::uint64_t> &
    wordsOf(std::uint32_t logical_bram) const;

    /** 1024 row words of one logical BRAM (compatibility shim). */
    const std::vector<std::uint16_t> &
    rowsOf(std::uint32_t logical_bram) const;

    /**
     * Rebuild a quantized model from observed packed per-logical-BRAM
     * contents (the readback path: formats/biases are carried over from
     * the original model; only weight words are replaced). Weight words
     * are row lanes of the fault-domain words, extracted with
     * fpga::rowOfWords instead of a per-row copy loop.
     */
    nn::QuantizedModel
    decode(const std::vector<std::vector<std::uint64_t>> &observed) const;

    /** Compatibility overload over 16-bit row vectors. */
    nn::QuantizedModel
    decode(const std::vector<std::vector<std::uint16_t>> &observed) const;

    /** Utilization of a device pool of the given size (e.g. 70.8%). */
    double utilizationOf(std::uint32_t device_bram_count) const;

  private:
    nn::QuantizedModel model_;
    std::vector<LayerSpan> spans_;
    std::vector<std::vector<std::uint64_t>> contents_; ///< packed words
    std::vector<std::vector<std::uint16_t>> rows_;     ///< unpacked shim
    std::vector<int> layerOf_;
};

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_WEIGHT_IMAGE_HH

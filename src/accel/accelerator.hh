/**
 * @file
 * The BRAM-backed NN accelerator under reduced-voltage operation
 * (paper Section III).
 *
 * Weights live in the device's BRAMs; inputs stream from off-chip (here:
 * a Dataset); matrix-multiply plus logsig runs on DSPs/LUTs fed from
 * VCCINT, which stays at nominal. When VCCBRAM drops below Vmin, weight
 * reads suffer the chip's deterministic faults, which is exactly what
 * this class reproduces: it programs the image through a Placement,
 * reads it back through the board's fault model at the current
 * conditions, and evaluates classification error with the surviving
 * weights.
 */

#ifndef UVOLT_ACCEL_ACCELERATOR_HH
#define UVOLT_ACCEL_ACCELERATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "data/dataset.hh"
#include "nn/network.hh"
#include "pmbus/board.hh"

namespace uvolt::accel
{

/** Per-layer weight-bit fault counts at one operating point. */
struct WeightFaultReport
{
    std::vector<std::uint64_t> faultsPerLayer;
    std::uint64_t total = 0;
};

/** The deployed accelerator. */
class Accelerator
{
  public:
    /**
     * Program @a image onto @a board through @a placement.
     * fatal() if the placement does not fit the device.
     */
    Accelerator(pmbus::Board &board, WeightImage image,
                Placement placement);

    const WeightImage &image() const { return image_; }
    const Placement &placement() const { return placement_; }

    /**
     * Re-write the BRAM contents (e.g. after a soft reset, or after
     * something else wrote to the device's BRAMs). Also drops the
     * decoded-observation cache, since cached readbacks no longer
     * describe what the device holds.
     */
    void program();

    /**
     * Read every weight BRAM back under the board's present
     * voltage/temperature/jitter and rebuild the quantized model the
     * datapath would see.
     *
     * Readbacks are served from a decoded-observation cache keyed on
     * the operating point (commanded VCCBRAM plus the effective bitcell
     * voltage, which folds in temperature and run jitter — i.e. the
     * fault dose). A repeat call at an unchanged operating point reuses
     * the previous decode; any change of the dose, or a program(),
     * invalidates it and forces a fresh readback.
     */
    nn::QuantizedModel observedModel() const;

    /** Float network decoded from observedModel() (same cache). */
    nn::Network observedNetwork() const;

    /**
     * Count weight-bit faults per layer at the present conditions.
     * Served from the same observation cache as observedModel(), so a
     * weightFaults() + classificationError() pair at one operating
     * point costs a single device readback.
     */
    WeightFaultReport weightFaults() const;

    /**
     * Classification error with the present (possibly faulty) weights,
     * evaluated by the batched engine with default options.
     * @param limit evaluate only the first @a limit samples; 0 and
     * limit > set size both mean the whole set (see
     * nn::Network::evaluateError)
     */
    double classificationError(const data::Dataset &test_set,
                               std::size_t limit = 0) const;

    /**
     * Classification error with explicit evaluation options (batch
     * width, worker pool). Bit-identical to the default overload at
     * any batch/worker configuration.
     */
    double classificationError(const data::Dataset &test_set,
                               const nn::EvalOptions &options) const;

    /**
     * Spurious DONE-low events survived during readback: each one cost
     * a reconfiguration (weight re-program) plus a setpoint restore.
     */
    std::uint64_t crashRecoveries() const { return crashRecoveries_; }

    /** Cache hits served without a device readback (observability). */
    std::uint64_t observationCacheHits() const { return cacheHits_; }

  private:
    /** One decoded readback and the operating point that produced it. */
    struct Observation
    {
        int vccBramMv;            ///< commanded setpoint
        double effectiveVoltage;  ///< dose: folds temp + jitter
        std::uint64_t generation; ///< program() epoch
        std::vector<std::vector<std::uint64_t>> words; ///< packed readback
        nn::QuantizedModel model; ///< decoded from words
        nn::Network network;      ///< model.toNetwork()
    };

    /** Re-write the weight image (reconfiguration restores it). */
    void restoreImage() const;

    /**
     * Read one physical BRAM (packed), recovering spurious crashes like
     * the harness watchdog: reconfigure, restore the operating point,
     * and retry under the original supply jitter.
     */
    std::vector<std::uint64_t>
    readPhysicalRecoverable(std::uint32_t physical) const;

    /** The cached observation at the current dose (refreshed on miss). */
    const Observation &observed() const;

    pmbus::Board &board_;
    WeightImage image_;
    Placement placement_;
    mutable std::uint64_t crashRecoveries_ = 0;
    mutable std::uint64_t programGeneration_ = 0;
    mutable std::uint64_t cacheHits_ = 0;
    mutable std::optional<Observation> cache_;
};

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_ACCELERATOR_HH

/**
 * @file
 * The BRAM-backed NN accelerator under reduced-voltage operation
 * (paper Section III).
 *
 * Weights live in the device's BRAMs; inputs stream from off-chip (here:
 * a Dataset); matrix-multiply plus logsig runs on DSPs/LUTs fed from
 * VCCINT, which stays at nominal. When VCCBRAM drops below Vmin, weight
 * reads suffer the chip's deterministic faults, which is exactly what
 * this class reproduces: it programs the image through a Placement,
 * reads it back through the board's fault model at the current
 * conditions, and evaluates classification error with the surviving
 * weights.
 */

#ifndef UVOLT_ACCEL_ACCELERATOR_HH
#define UVOLT_ACCEL_ACCELERATOR_HH

#include <cstdint>
#include <vector>

#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "data/dataset.hh"
#include "pmbus/board.hh"

namespace uvolt::accel
{

/** Per-layer weight-bit fault counts at one operating point. */
struct WeightFaultReport
{
    std::vector<std::uint64_t> faultsPerLayer;
    std::uint64_t total = 0;
};

/** The deployed accelerator. */
class Accelerator
{
  public:
    /**
     * Program @a image onto @a board through @a placement.
     * fatal() if the placement does not fit the device.
     */
    Accelerator(pmbus::Board &board, WeightImage image,
                Placement placement);

    const WeightImage &image() const { return image_; }
    const Placement &placement() const { return placement_; }

    /** Re-write the BRAM contents (e.g. after a soft reset). */
    void program();

    /**
     * Read every weight BRAM back under the board's present
     * voltage/temperature/jitter and rebuild the quantized model the
     * datapath would see.
     */
    nn::QuantizedModel observedModel() const;

    /** Float network decoded from observedModel(). */
    nn::Network observedNetwork() const;

    /** Count weight-bit faults per layer at the present conditions. */
    WeightFaultReport weightFaults() const;

    /**
     * Classification error with the present (possibly faulty) weights.
     * @param limit evaluate only the first @a limit samples (0 = all)
     */
    double classificationError(const data::Dataset &test_set,
                               std::size_t limit = 0) const;

    /**
     * Spurious DONE-low events survived during readback: each one cost
     * a reconfiguration (weight re-program) plus a setpoint restore.
     */
    std::uint64_t crashRecoveries() const { return crashRecoveries_; }

  private:
    /** Re-write the weight image (reconfiguration restores it). */
    void restoreImage() const;

    /**
     * Read one physical BRAM, recovering spurious crashes like the
     * harness watchdog: reconfigure, restore the operating point, and
     * retry under the original supply jitter.
     */
    std::vector<std::uint16_t>
    readPhysicalRecoverable(std::uint32_t physical) const;

    pmbus::Board &board_;
    WeightImage image_;
    Placement placement_;
    mutable std::uint64_t crashRecoveries_ = 0;
};

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_ACCELERATOR_HH

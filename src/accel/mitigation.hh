/**
 * @file
 * Alternative fault-mitigation strategies, for comparison with ICBP.
 *
 * The paper's related work (Section IV-A.4) names TMR, ECC, and Razor
 * as generic mitigations that could mask undervolting faults but carry
 * timing/area/power overheads; ICBP is proposed precisely because its
 * placement constraint costs (almost) nothing. This module implements
 * the storage-level alternatives so the trade-off can be measured
 * instead of asserted:
 *
 *  - temporal voting: read each row N times and majority-vote. Against
 *    *deterministic* undervolting faults this corrects (almost)
 *    nothing — every read fails the same way — which demonstrates why
 *    spatial techniques are needed. Costs Nx readout bandwidth.
 *  - spatial TMR: store each protected BRAM three times in otherwise
 *    unused BRAMs and bitwise majority-vote the three copies. Costs 2
 *    extra BRAMs per protected BRAM.
 *  - SECDED: store a Hamming(21,16)+parity check word per row in extra
 *    check BRAMs (packed two per row) and correct single-bit errors per
 *    row. Costs 0.5 extra BRAMs per protected BRAM; rows with two or
 *    more faults remain uncorrectable.
 *
 * All strategies read through the same Board fault path as the plain
 * accelerator, so their check/replica storage undervolts too.
 */

#ifndef UVOLT_ACCEL_MITIGATION_HH
#define UVOLT_ACCEL_MITIGATION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"

namespace uvolt::accel
{

/** Accounting for one mitigated readout. */
struct MitigationReport
{
    std::uint64_t rawFaults = 0;      ///< faulty weight bits before fixup
    std::uint64_t residualFaults = 0; ///< still faulty after fixup
    std::uint64_t corrected = 0;      ///< bits repaired
    std::uint64_t detectedUncorrectable = 0; ///< SECDED double errors
    std::uint32_t extraBrams = 0;     ///< storage overhead, BRAM blocks

    double
    coverage() const
    {
        return rawFaults == 0
            ? 1.0
            : static_cast<double>(corrected) /
                static_cast<double>(rawFaults);
    }
};

/**
 * A deployed accelerator image with optional protection storage.
 *
 * The lab programs the weight image through @a placement, then lets the
 * caller read it back through any of the strategies under the board's
 * present voltage/temperature conditions.
 */
class MitigationLab
{
  public:
    /**
     * @param protected_layers layers that get TMR replicas and SECDED
     *        check words (empty = the last layer, ICBP's default).
     * fatal() if replicas/check storage do not fit the device.
     */
    MitigationLab(pmbus::Board &board, WeightImage image,
                  Placement placement,
                  std::vector<int> protected_layers = {});

    /** Re-program all data, replica, and check BRAMs. */
    void program();

    /** Plain readout (no mitigation), with fault accounting. */
    nn::QuantizedModel readRaw(MitigationReport &report) const;

    /**
     * Majority vote over @a reads consecutive (jitter-perturbed) reads
     * of every BRAM. @a reads must be odd.
     */
    nn::QuantizedModel readTemporalVote(int reads,
                                        MitigationReport &report) const;

    /** Bitwise 2-of-3 vote across the TMR replicas (protected layers). */
    nn::QuantizedModel readSpatialTmr(MitigationReport &report) const;

    /** SECDED-corrected readout of the protected layers. */
    nn::QuantizedModel readSecded(MitigationReport &report) const;

    const WeightImage &image() const { return image_; }
    const std::vector<int> &protectedLayers() const
    {
        return protectedLayers_;
    }

    /** Extra BRAMs consumed by TMR replicas. */
    std::uint32_t tmrOverheadBrams() const;

    /** Extra BRAMs consumed by SECDED check words. */
    std::uint32_t secdedOverheadBrams() const;

    /** Spurious DONE-low events survived during mitigated readouts. */
    std::uint64_t crashRecoveries() const { return crashRecoveries_; }

  private:
    bool isProtected(int layer) const;

    /** Re-write data, replica, and check BRAMs (reconfiguration). */
    void restoreAllStorage() const;

    /** Crash-recovering packed physical readback (see Accelerator). */
    std::vector<std::uint64_t>
    readPhysical(std::uint32_t physical) const;

    pmbus::Board &board_;
    WeightImage image_;
    Placement placement_;
    std::vector<int> protectedLayers_;

    /** Logical BRAM -> two replica physical BRAMs (protected only). */
    std::vector<std::array<std::uint32_t, 2>> replicaOf_;
    std::vector<bool> hasReplica_;

    /**
     * Logical BRAM -> physical check BRAM and base row; two 6-bit check
     * words pack per 16-bit check row.
     */
    struct CheckSlot
    {
        std::uint32_t physical;
        int baseRow;
        bool valid = false;
    };
    std::vector<CheckSlot> checkOf_;
    mutable std::uint64_t crashRecoveries_ = 0;
};

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_MITIGATION_HH

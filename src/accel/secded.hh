/**
 * @file
 * Hamming(21,16) + overall parity SECDED codec for 16-bit BRAM rows.
 *
 * The paper's related work (Section IV-A.4) lists ECC, TMR, and Razor
 * as generic mitigation techniques that could cover undervolting
 * faults, but at timing/area/power cost — which motivates ICBP's
 * zero-overhead placement approach instead. This codec exists so the
 * library can quantify that comparison: every 16-bit weight row gets a
 * 6-bit check word (5 Hamming parity bits + 1 overall parity), able to
 * correct any single bit error and detect double errors per row.
 *
 * Layout: data bits d0..d15 occupy Hamming positions that are not
 * powers of two in a 21-bit codeword; parity bits p1, p2, p4, p8, p16
 * sit at the power-of-two positions; bit 5 of the check word is the
 * overall (DED) parity of the 21-bit codeword.
 */

#ifndef UVOLT_ACCEL_SECDED_HH
#define UVOLT_ACCEL_SECDED_HH

#include <cstdint>

namespace uvolt::accel
{

/** Outcome of a SECDED decode. */
enum class SecdedStatus : std::uint8_t
{
    Clean,          ///< syndrome zero, parity OK
    Corrected,      ///< single error corrected (data or check bit)
    DoubleDetected, ///< two errors detected, not correctable
};

/** Decoded row plus what the decoder had to do. */
struct SecdedResult
{
    std::uint16_t data;
    SecdedStatus status;
};

/** Number of check bits per 16-bit row. */
constexpr int secdedCheckBits = 6;

/** Compute the 6-bit check word for a 16-bit data row. */
std::uint8_t secdedEncode(std::uint16_t data);

/**
 * Decode an observed (data, check) pair, correcting a single bit error
 * anywhere in the codeword.
 */
SecdedResult secdedDecode(std::uint16_t data, std::uint8_t check);

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_SECDED_HH

#include "accel/perf_model.hh"

#include "util/logging.hh"

namespace uvolt::accel
{

PerfModel::PerfModel(const std::vector<int> &topology,
                     const fpga::PlatformSpec &spec,
                     double logic_nominal_w, double bram_utilization,
                     const DatapathConfig &config)
    : topology_(topology), config_(config), bramPower_(spec),
      logicPower_(logic_nominal_w, config.clockMhz),
      bramUtilization_(bram_utilization)
{
    if (bram_utilization <= 0.0 || bram_utilization > 1.0)
        fatal("PerfModel: BRAM utilization {} outside (0, 1]",
              bram_utilization);
    if (topology_.size() < 2)
        fatal("PerfModel needs at least two layer sizes");
    if (config_.macUnits <= 0)
        fatal("PerfModel needs a positive MAC count");
}

std::uint64_t
PerfModel::cyclesPerInference() const
{
    std::uint64_t cycles = 0;
    for (std::size_t l = 0; l + 1 < topology_.size(); ++l) {
        const auto macs = static_cast<std::uint64_t>(topology_[l]) *
            static_cast<std::uint64_t>(topology_[l + 1]);
        cycles += (macs + static_cast<std::uint64_t>(config_.macUnits) -
                   1) /
            static_cast<std::uint64_t>(config_.macUnits);
        cycles += static_cast<std::uint64_t>(config_.pipelineDepth);
    }
    return cycles;
}

PerfPoint
PerfModel::evaluate(const power::OperatingPoint &point) const
{
    PerfPoint result;
    result.clockMhz = point.clockMhz;
    result.cyclesPerInference = cyclesPerInference();
    result.inferencesPerSecond = point.clockMhz * 1e6 /
        static_cast<double>(result.cyclesPerInference);
    result.totalPowerW =
        bramUtilization_ * bramPower_.bramPower(point.vccBramV) +
        logicPower_.watts(point.vccIntV, point.clockMhz);
    result.energyPerInferenceMj = result.totalPowerW /
        result.inferencesPerSecond * 1e3;
    return result;
}

} // namespace uvolt::accel

#include "accel/accelerator.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::accel
{

namespace
{

struct AccelMetrics
{
    telemetry::Counter &inferences =
        telemetry::Registry::global().counter("accel.inferences");
    telemetry::Counter &weightFaults =
        telemetry::Registry::global().counter("accel.weight_faults");
    telemetry::Counter &crashRecoveries =
        telemetry::Registry::global().counter("accel.crash_recoveries");
    telemetry::Counter &decodeCacheHits =
        telemetry::Registry::global().counter("accel.decode_cache.hits");
    telemetry::Counter &decodeCacheMisses =
        telemetry::Registry::global().counter("accel.decode_cache.misses");
};

AccelMetrics &
accelMetrics()
{
    static AccelMetrics metrics;
    return metrics;
}

} // namespace

Accelerator::Accelerator(pmbus::Board &board, WeightImage image,
                         Placement placement)
    : board_(board), image_(std::move(image)),
      placement_(std::move(placement))
{
    if (placement_.logicalCount() != image_.logicalBramCount())
        fatal("placement covers {} BRAMs, image needs {}",
              placement_.logicalCount(), image_.logicalBramCount());
    if (!placement_.fits(board_.device().bramCount()))
        fatal("placement does not fit the {} device",
              board_.spec().name);
    program();
}

void
Accelerator::program()
{
    restoreImage();
    // The device contents just changed epochs; cached readbacks (ours
    // or of whatever overwrote the BRAMs before this re-program) no
    // longer describe them.
    ++programGeneration_;
    cache_.reset();
}

void
Accelerator::restoreImage() const
{
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        auto &bram = board_.device().bram(placement_.physicalOf(logical));
        bram.assignWords(image_.wordsOf(logical));
    }
}

std::vector<std::uint64_t>
Accelerator::readPhysicalRecoverable(std::uint32_t physical) const
{
    constexpr int max_recoveries = 16;
    for (int attempt = 0; attempt <= max_recoveries; ++attempt) {
        auto observed = board_.tryReadBramPacked(physical);
        if (observed.ok())
            return observed.take();
        if (observed.code() != Errc::crashDetected)
            fatal("{}", observed.error().message);
        // Spurious crash under the payload: recover like the harness
        // watchdog does. Reconfiguration brings the weight image back
        // with the bitstream; then restore the operating point and
        // retry under the original supply jitter so the recovered read
        // equals the undisturbed one.
        ++crashRecoveries_;
        accelMetrics().crashRecoveries.increment();
        const int level_mv = board_.vccBramMv();
        const double jitter_v = board_.runJitterV();
        board_.softReset();
        restoreImage();
        board_.setVccBramMv(level_mv);
        board_.resumeRun(jitter_v);
    }
    fatal("{}: accelerator readback of BRAM {} crashed {} times in a row",
          board_.spec().name, physical, max_recoveries);
}

const Accelerator::Observation &
Accelerator::observed() const
{
    const int mv = board_.vccBramMv();
    const double effective = board_.effectiveVoltage();
    if (cache_ && cache_->vccBramMv == mv &&
        cache_->effectiveVoltage == effective &&
        cache_->generation == programGeneration_) {
        ++cacheHits_;
        accelMetrics().decodeCacheHits.increment();
        return *cache_;
    }

    UVOLT_TRACE_SCOPE("accel.observe_model", [&] {
        return telemetry::TraceArgs{
            {"brams", std::to_string(image_.logicalBramCount())},
            {"mv", std::to_string(mv)}};
    });
    accelMetrics().decodeCacheMisses.increment();
    std::vector<std::vector<std::uint64_t>> words;
    words.reserve(image_.logicalBramCount());
    for (std::uint32_t logical = 0; logical < image_.logicalBramCount();
         ++logical) {
        words.push_back(
            readPhysicalRecoverable(placement_.physicalOf(logical)));
    }
    nn::QuantizedModel model = image_.decode(words);
    nn::Network network = model.toNetwork();
    cache_.emplace(Observation{mv, effective, programGeneration_,
                               std::move(words), std::move(model),
                               std::move(network)});
    return *cache_;
}

nn::QuantizedModel
Accelerator::observedModel() const
{
    return observed().model;
}

nn::Network
Accelerator::observedNetwork() const
{
    return observed().network;
}

WeightFaultReport
Accelerator::weightFaults() const
{
    const Observation &observation = observed();
    WeightFaultReport report;
    report.faultsPerLayer.assign(image_.layerSpans().size(), 0);

    for (const LayerSpan &span : image_.layerSpans()) {
        for (std::uint32_t b = 0; b < span.bramCount; ++b) {
            const std::uint32_t logical = span.firstLogicalBram + b;
            const std::uint64_t faults = fpga::diffPopcount(
                observation.words[static_cast<std::size_t>(logical)],
                image_.wordsOf(logical));
            report.faultsPerLayer[static_cast<std::size_t>(span.layer)] +=
                faults;
            report.total += faults;
        }
    }
    accelMetrics().weightFaults.add(report.total);
    return report;
}

double
Accelerator::classificationError(const data::Dataset &test_set,
                                 std::size_t limit) const
{
    return classificationError(test_set, nn::EvalOptions{.limit = limit});
}

double
Accelerator::classificationError(const data::Dataset &test_set,
                                 const nn::EvalOptions &options) const
{
    UVOLT_TRACE_SCOPE("accel.classify", [&] {
        return telemetry::TraceArgs{
            {"mv", std::to_string(board_.vccBramMv())}};
    });
    const std::size_t n = options.limit
        ? std::min(options.limit, test_set.size())
        : test_set.size();
    accelMetrics().inferences.add(n);
    // The decoded observation is reused across calls at one operating
    // point; the evaluation itself runs through the batched engine.
    return observed().network.evaluateError(test_set, options);
}

} // namespace uvolt::accel

/**
 * @file
 * BRAM placement: assigning each logical BRAM of the weight image to a
 * physical BRAM of the device.
 *
 * This is where the paper's contribution lives. The stock FPGA flow
 * places BRAMs without regard to their undervolting vulnerability
 * (defaultPlacement). ICBP — Intelligently-Constrained BRAM Placement
 * (Section III-C, Fig 12b) — adds a constraint analogous to a Vivado
 * Pblock: the logical BRAMs of the most fault-sensitive NN layer(s) are
 * pinned to physical BRAMs the chip's FVM tags as low-vulnerable. The
 * protected set is tiny (2 BRAMs for the paper's Layer4), so the
 * constraint has negligible timing-slack cost.
 */

#ifndef UVOLT_ACCEL_PLACEMENT_HH
#define UVOLT_ACCEL_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "accel/weight_image.hh"
#include "harness/fvm.hh"

namespace uvolt::accel
{

/** An injective map from logical to physical BRAMs. */
class Placement
{
  public:
    /** @param physical_of physical index per logical BRAM (injective). */
    explicit Placement(std::vector<std::uint32_t> physical_of);

    std::uint32_t logicalCount() const
    {
        return static_cast<std::uint32_t>(physicalOf_.size());
    }

    /** Physical BRAM hosting a logical BRAM. */
    std::uint32_t physicalOf(std::uint32_t logical) const;

    /** Verify all targets fit a device pool of the given size. */
    bool fits(std::uint32_t device_bram_count) const;

    const std::vector<std::uint32_t> &mapping() const
    {
        return physicalOf_;
    }

  private:
    std::vector<std::uint32_t> physicalOf_;
};

/** The stock flow: logical BRAM i placed at physical BRAM i. */
Placement defaultPlacement(const WeightImage &image);

/** Vulnerability-oblivious random placement (ablation baseline). */
Placement randomPlacement(const WeightImage &image,
                          std::uint32_t device_bram_count,
                          std::uint64_t seed);

/** Options for the ICBP placer. */
struct IcbpOptions
{
    /**
     * Layers to pin to low-vulnerable BRAMs, in priority order. Empty
     * means "the last layer", the paper's choice.
     */
    std::vector<int> protectedLayers;
};

/**
 * ICBP: place the protected layers' logical BRAMs onto the most
 * reliable BRAMs of the chip's FVM (most reliable first), then place
 * the remaining layers onto the remaining BRAMs in index order.
 * fatal() if the device cannot host the image.
 */
Placement icbpPlacement(const WeightImage &image, const harness::Fvm &fvm,
                        const IcbpOptions &options = {});

} // namespace uvolt::accel

#endif // UVOLT_ACCEL_PLACEMENT_HH

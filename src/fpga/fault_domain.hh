/**
 * @file
 * The packed fault-domain interface: one span/visitor API for every
 * piece of code that used to walk bitcells one by one (BRAM word reads,
 * the fault-analyzer cell walk, the weight-image decode loop).
 *
 * A fault domain is a span of 64-bit words covering rows*16 data bits in
 * ascending bit-offset order (bit offset = row*16 + col, so visiting set
 * bits in word/ctz order IS the row-major, column-ascending order the
 * legacy per-bitcell walkers produced — goldens depending on iteration
 * order are safe by construction). Parity bits live on a separate plane
 * (Bram::parityBit) and are structurally absent from these spans: no
 * popcount over a fault domain can ever include a parity column.
 *
 * Everything here is header-inline: these are the innermost loops of
 * the characterization path.
 */

#ifndef UVOLT_FPGA_FAULT_DOMAIN_HH
#define UVOLT_FPGA_FAULT_DOMAIN_HH

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "fpga/bram.hh"

namespace uvolt::fpga
{

/** Read-only packed view used throughout the readback/analysis path. */
using WordSpan = std::span<const std::uint64_t>;

/** Total set bits of a packed stream. */
inline std::uint64_t
popcountWords(WordSpan words)
{
    std::uint64_t total = 0;
    for (std::uint64_t word : words)
        total += static_cast<std::uint64_t>(std::popcount(word));
    return total;
}

/** Mismatching bits between two equally-sized packed streams. */
inline std::uint64_t
diffPopcount(WordSpan a, WordSpan b)
{
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < a.size(); ++w)
        total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
    return total;
}

/**
 * Visit every set bit of a packed stream in ascending bit-offset order.
 * @param visit f(std::uint32_t bit_offset)
 */
template <typename F>
inline void
forEachSetBit(WordSpan words, F &&visit)
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word) {
            const int bit = std::countr_zero(word);
            word &= word - 1;
            visit(static_cast<std::uint32_t>(w) *
                      static_cast<std::uint32_t>(bramWordBits) +
                  static_cast<std::uint32_t>(bit));
        }
    }
}

/**
 * Visit every mismatching bit between written and observed packed
 * streams in ascending bit-offset order (row-major, column-ascending).
 * @param visit f(std::uint32_t bit_offset, bool wrote_one)
 */
template <typename F>
inline void
forEachDiffBit(WordSpan written, WordSpan observed, F &&visit)
{
    for (std::size_t w = 0; w < written.size(); ++w) {
        std::uint64_t diff = written[w] ^ observed[w];
        while (diff) {
            const int bit = std::countr_zero(diff);
            diff &= diff - 1;
            visit(static_cast<std::uint32_t>(w) *
                      static_cast<std::uint32_t>(bramWordBits) +
                  static_cast<std::uint32_t>(bit),
                  ((written[w] >> bit) & 1u) != 0);
        }
    }
}

/** One 16-bit row lane extracted from a packed stream. */
inline std::uint16_t
rowOfWords(WordSpan words, int row)
{
    return static_cast<std::uint16_t>(
        words[static_cast<std::size_t>(row / bramRowsPerWord)] >>
        ((row % bramRowsPerWord) * bramCols));
}

/** Pack 1024 row words into the 256-word bit-packed layout. */
inline std::vector<std::uint64_t>
packRows(std::span<const std::uint16_t> rows)
{
    std::vector<std::uint64_t> words(rows.size() / bramRowsPerWord, 0);
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = 0;
        for (int lane = 0; lane < bramRowsPerWord; ++lane) {
            word |= static_cast<std::uint64_t>(
                        rows[w * bramRowsPerWord +
                             static_cast<std::size_t>(lane)])
                << (lane * bramCols);
        }
        words[w] = word;
    }
    return words;
}

/** Unpack a packed stream back into 16-bit row words. */
inline std::vector<std::uint16_t>
unpackRows(WordSpan words)
{
    std::vector<std::uint16_t> rows(words.size() *
                                    static_cast<std::size_t>(
                                        bramRowsPerWord));
    for (std::size_t w = 0; w < words.size(); ++w) {
        const std::uint64_t word = words[w];
        for (int lane = 0; lane < bramRowsPerWord; ++lane) {
            rows[w * bramRowsPerWord + static_cast<std::size_t>(lane)] =
                static_cast<std::uint16_t>(word >> (lane * bramCols));
        }
    }
    return rows;
}

/**
 * A fault domain: one BRAM-sized packed view plus the pool index it
 * belongs to. The single entry point that replaced the three ad-hoc
 * per-bitcell iteration APIs (Bram word reads, fault_analyzer cell
 * walk, weight_image decode loop).
 */
struct FaultDomain
{
    std::uint32_t bram = 0;
    WordSpan words;

    static FaultDomain
    of(const Bram &block, std::uint32_t index)
    {
        return {index, block.words()};
    }

    /** Set bits in the domain (e.g. stored "1" density). */
    std::uint64_t ones() const { return popcountWords(words); }

    /** Faulty bits against an observed readback of the same domain. */
    std::uint64_t
    faultsAgainst(WordSpan observed) const
    {
        return diffPopcount(words, observed);
    }

    /**
     * Visit faults against an observed readback as BitAddress + written
     * polarity, in the legacy row-major column-ascending order.
     * @param visit f(BitAddress, bool wrote_one)
     */
    template <typename F>
    void
    visitFaults(WordSpan observed, F &&visit) const
    {
        const std::uint32_t index = bram;
        forEachDiffBit(words, observed,
                       [&](std::uint32_t offset, bool wrote_one) {
                           visit(BitAddress::fromBitOffset(index, offset),
                                 wrote_one);
                       });
    }
};

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_FAULT_DOMAIN_HH

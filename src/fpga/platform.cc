#include "fpga/platform.hh"

#include <cmath>

#include "util/logging.hh"

namespace uvolt::fpga
{

double
PlatformSpec::totalMbit() const
{
    return static_cast<double>(bramCount) * 16384.0 / bitsPerMbit;
}

double
PlatformSpec::expectedFaultsAtVcrash() const
{
    return calib.faultsPerMbitAtVcrash * totalMbit();
}

double
PlatformSpec::faultGrowthSlope() const
{
    const double span =
        static_cast<double>(calib.bramVminMv - calib.bramVcrashMv) / 1000.0;
    return std::log(expectedFaultsAtVcrash()) / span;
}

const std::vector<PlatformSpec> &
platformCatalog()
{
    // Table I facts verbatim; calibration anchors from Sections II-B..II-D.
    // Note VC707's Vmin = 0.61 V / Vcrash = 0.54 V and the 652 / 153 / 254
    // / 60 faults-per-Mbit Vcrash rates are quoted directly in the paper;
    // the remaining platforms' region edges are the paper's "slightly
    // different among platforms", chosen so the VCCBRAM guardband averages
    // 39% and the VCCINT guardband 34%.
    static const std::vector<PlatformSpec> catalog = {
        {
            "VC707", "Virtex-7", "XC7VX485T-ffg1761-2", "-2", "1308-6520",
            2060, 120, 28, 1000,
            {
                610, 540, 660, 590,
                652.0, 0.16,
                0.389, 0.0284, 6.0,
                0.26,
                2.80, 0.03, 7.85,
            },
        },
        {
            "ZC702", "Zynq7000", "XC7Z020-CLG484-1", "-1",
            "630851561533-44019", 280, 70, 28, 1000,
            {
                620, 560, 670, 610,
                153.0, 0.55,
                0.52, 0.012, 5.0,
                0.12,
                0.36, 0.05, 6.8,
            },
        },
        {
            "KC705-A", "Kintex-7", "XC7K325T-ffg900-2", "-2",
            "604018691749-76023", 890, 120, 28, 1000,
            {
                600, 540, 650, 580,
                254.0, 0.28,
                0.45, 0.018, 5.0,
                0.01,
                1.10, 0.04, 7.0,
            },
        },
        {
            "KC705-B", "Kintex-7", "XC7K325T-ffg900-2", "-2",
            "604016111717-65664", 890, 120, 28, 1000,
            {
                610, 550, 660, 600,
                60.0, 0.45,
                0.60, 0.008, 5.0,
                0.15,
                1.08, 0.04, 7.0,
            },
        },
    };
    return catalog;
}

const std::vector<PlatformSpec> &
extensionPlatformCatalog()
{
    // Projected 20 nm / 16 nm parts (no silicon behind these numbers):
    // lower nominal rails per the data sheets, mildly narrower
    // guardbands (tighter binning on newer nodes), and ITD shrinking
    // toward zero on FinFETs, whose threshold voltage is far less
    // temperature-sensitive than planar 28 nm.
    static const std::vector<PlatformSpec> catalog = {
        {
            "KCU105", "Kintex-UltraScale", "XCKU040-ffva1156-2-e", "-2",
            "841220113342-00917", 1200, 120, 20, 950,
            {
                580, 520, 620, 560,
                410.0, 0.20,
                0.42, 0.022, 5.0,
                0.14,
                1.30, 0.05, 7.2,
            },
        },
        {
            "ZCU102", "Zynq-UltraScale+", "XCZU9EG-ffvb1156-2-e", "-2",
            "866201447512-03305", 1824, 120, 16, 850,
            {
                530, 480, 560, 510,
                280.0, 0.25,
                0.48, 0.016, 5.0,
                0.03,
                1.60, 0.06, 7.0,
            },
        },
    };
    return catalog;
}

const PlatformSpec &
findPlatform(const std::string &name)
{
    for (const auto &spec : platformCatalog()) {
        if (spec.name == name)
            return spec;
    }
    for (const auto &spec : extensionPlatformCatalog()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown platform '{}' (known: VC707, ZC702, KC705-A, KC705-B,"
          " KCU105, ZCU102)",
          name);
}

} // namespace uvolt::fpga

/**
 * @file
 * One FPGA device instance: a pool of BRAMs laid out on a floorplan plus
 * its supply rails. Mirrors the "FPGA chip" half of the paper's Fig 2
 * setup; the board-level pieces (regulator, serial link, heat chamber)
 * live in the pmbus module.
 */

#ifndef UVOLT_FPGA_DEVICE_HH
#define UVOLT_FPGA_DEVICE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "fpga/bram.hh"
#include "fpga/floorplan.hh"
#include "fpga/platform.hh"
#include "fpga/voltage_rail.hh"

namespace uvolt::fpga
{

/** A device built from a PlatformSpec. */
class Device
{
  public:
    /** Instantiate the chip described by @a spec with rails at nominal. */
    explicit Device(const PlatformSpec &spec);

    // The BRAM pool shares one content-epoch counter with the device;
    // copying would alias it across instances.
    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    const PlatformSpec &spec() const { return spec_; }
    const Floorplan &floorplan() const { return floorplan_; }

    std::uint32_t bramCount() const
    {
        return static_cast<std::uint32_t>(brams_.size());
    }

    /** Access one BRAM block by pool index. */
    Bram &bram(std::uint32_t index);
    const Bram &bram(std::uint32_t index) const;

    /** The whole pool, for span-level iteration without per-index checks. */
    std::span<const Bram> brams() const { return brams_; }

    /** Fill every BRAM with the same row pattern (test initialization). */
    void fillAll(std::uint16_t pattern);

    /** Total data bitcells (parity excluded). */
    std::uint64_t totalBits() const;

    /** Total "1" bitcells currently stored across the pool. */
    std::uint64_t totalOnes() const;

    /**
     * Content epoch of the whole pool: every mutation of any BRAM bumps
     * it, so one compare validates a device-wide fault-count cache.
     */
    std::uint64_t contentEpoch() const { return contentEpoch_; }

    VoltageRail &rail(RailId id);
    const VoltageRail &rail(RailId id) const;

    /**
     * Whether the device still operates at the current VCCBRAM level.
     * Below Vcrash the configuration is lost and the DONE pin drops
     * (paper Section II-A); reads are meaningless in that state.
     */
    bool operational() const;

    /** DONE-pin state: high iff the bitstream is intact (not crashed). */
    bool donePin() const { return operational(); }

  private:
    PlatformSpec spec_;
    Floorplan floorplan_;
    std::uint64_t contentEpoch_ = 0;
    std::vector<Bram> brams_;
    VoltageRail vccBram_;
    VoltageRail vccInt_;
    VoltageRail vccAux_;
};

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_DEVICE_HH

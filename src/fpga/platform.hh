/**
 * @file
 * Catalog of the tested FPGA platforms (paper Table I) plus the
 * measured-behaviour calibration anchors extracted from the paper's
 * evaluation (Sections II-B .. II-D).
 *
 * The spec half of PlatformSpec is a verbatim transcription of Table I.
 * The calibration half encodes the *measured* quantities the paper reports
 * (Vmin/Vcrash per rail, fault rate at Vcrash, run-to-run jitter, ITD
 * slope, per-BRAM variability); the vmodel and power modules consume these
 * anchors so every downstream experiment reproduces the published curves.
 */

#ifndef UVOLT_FPGA_PLATFORM_HH
#define UVOLT_FPGA_PLATFORM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uvolt::fpga
{

/** Measured undervolting behaviour of one platform (calibration anchors). */
struct UvCalibration
{
    // --- Fig 1: voltage regions -----------------------------------------
    int bramVminMv;   ///< lowest fault-free VCCBRAM level
    int bramVcrashMv; ///< lowest operable VCCBRAM level
    int intVminMv;    ///< lowest fault-free VCCINT level
    int intVcrashMv;  ///< lowest operable VCCINT level

    // --- Fig 3 / Table II: fault behaviour at 50 degC, pattern 0xFFFF ---
    double faultsPerMbitAtVcrash; ///< e.g. 652 on VC707
    double runJitterMv;           ///< per-run supply noise (stability)

    // --- Fig 5..7: per-BRAM variability ----------------------------------
    double neverFaultyFraction; ///< BRAMs with zero faults even at Vcrash
    double maxBramFaultRate;    ///< worst single-BRAM rate at Vcrash
    double spatialCorrLength;   ///< within-die correlation length (sites)

    // --- Fig 8: inverse thermal dependence (ITD) -------------------------
    double itdMvPerC; ///< effective-voltage shift per degC above 50 degC

    // --- Fig 3 / Fig 10: power -------------------------------------------
    double bramPowerNomW;   ///< BRAM rail power at Vnom
    double dynamicFraction; ///< dynamic share of BRAM power at Vnom
    double leakageSlope;    ///< exponential leakage slope (1/V)
};

/** One row of Table I plus its calibration anchors. */
struct PlatformSpec
{
    std::string name;        ///< board name, e.g. "VC707"
    std::string family;      ///< device family, e.g. "Virtex-7"
    std::string chipModel;   ///< e.g. "XC7VX485T-ffg1761-2"
    std::string speedGrade;  ///< e.g. "-2"
    std::string serialNumber;///< board serial; seeds the chip's fault map
    std::uint32_t bramCount; ///< basic 16 kbit BRAM blocks
    int columnHeight;        ///< floorplan sites per BRAM column
    int processNm;           ///< manufacturing node (28 nm for all)
    int vnomMv;              ///< nominal rail level (1000 mV for all)
    UvCalibration calib;     ///< measured undervolting behaviour

    /** Device data capacity in Mbit (2^20 bits), parity excluded. */
    double totalMbit() const;

    /** Expected total faults at Vcrash (0xFFFF, 50 degC). */
    double expectedFaultsAtVcrash() const;

    /**
     * Exponential fault-growth slope k (1/V): the expected fault count at
     * VCCBRAM = v is expectedFaultsAtVcrash * exp(-k (v - Vcrash)),
     * normalized so roughly one fault remains at Vmin.
     */
    double faultGrowthSlope() const;
};

/** All four tested platforms, in Table I order. */
const std::vector<PlatformSpec> &platformCatalog();

/**
 * Extension platforms beyond the paper (its stated future work is
 * "different FPGA technologies of vendors"): a 20 nm UltraScale-class
 * and a 16 nm FinFET UltraScale+-class device with extrapolated
 * calibration — lower nominal rails, narrower guardbands, and the much
 * weaker inverse thermal dependence expected of FinFETs. These are
 * projections, not measurements; they never appear in the Table I
 * reproduction benches.
 */
const std::vector<PlatformSpec> &extensionPlatformCatalog();

/**
 * Look up a platform by name; fatal() on unknown names. Searches
 * Table I first, then the extension catalog.
 */
const PlatformSpec &findPlatform(const std::string &name);

/** Mbit unit used throughout the paper's fault-rate reporting. */
constexpr double bitsPerMbit = 1024.0 * 1024.0;

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_PLATFORM_HH

/**
 * @file
 * Block RAM (BRAM) model.
 *
 * The studied 7-series devices expose "basic" BRAM blocks of 16 kbits
 * organized as 1024 rows x 16 columns of bitcells (Table I). Each row
 * additionally carries two parity bits which the paper excludes from its
 * experiments; we model them as present but likewise excluded from fault
 * accounting.
 */

#ifndef UVOLT_FPGA_BRAM_HH
#define UVOLT_FPGA_BRAM_HH

#include <cstdint>
#include <span>
#include <vector>

namespace uvolt::fpga
{

/** Rows of bitcells per basic BRAM block. */
constexpr int bramRows = 1024;

/** Data bitcells per row (parity excluded). */
constexpr int bramCols = 16;

/** Parity bits per row (present on silicon, excluded from experiments). */
constexpr int bramParityCols = 2;

/** Data bits per basic BRAM block. */
constexpr int bramBits = bramRows * bramCols;

/** Address of one bitcell inside a device's BRAM pool. */
struct BitAddress
{
    std::uint32_t bram; ///< index into the device's BRAM pool
    std::uint16_t row;  ///< 0 .. bramRows-1
    std::uint8_t col;   ///< 0 .. bramCols-1

    bool operator==(const BitAddress &other) const = default;

    /** Flat bit offset of this cell within its BRAM. */
    std::uint32_t
    bitOffset() const
    {
        return static_cast<std::uint32_t>(row) * bramCols + col;
    }
};

/**
 * One 16 kbit BRAM block: 1024 rows of 16-bit data words.
 *
 * Contents model the value *written* by the design; what a read returns
 * under reduced voltage is decided by the fault model layered on top
 * (vmodel::FaultModel), mirroring the real hardware where the stored
 * charge is intact but the read path fails timing.
 */
class Bram
{
  public:
    Bram();

    /** Write one 16-bit row. */
    void writeRow(int row, std::uint16_t value);

    /** Read back one 16-bit row (fault-free; see class comment). */
    std::uint16_t readRow(int row) const;

    /** Fill every row with the same pattern (e.g. 0xFFFF). */
    void fill(std::uint16_t pattern);

    /** Read or write a single bitcell. */
    bool getBit(int row, int col) const;
    void setBit(int row, int col, bool value);

    /** Number of "1" bitcells currently stored. */
    int countOnes() const;

    /** Raw row storage, 1024 words. */
    std::span<const std::uint16_t> rows() const { return rows_; }
    std::span<std::uint16_t> rows() { return rows_; }

  private:
    std::vector<std::uint16_t> rows_;
};

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_BRAM_HH

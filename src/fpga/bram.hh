/**
 * @file
 * Block RAM (BRAM) model, bit-packed.
 *
 * The studied 7-series devices expose "basic" BRAM blocks of 16 kbits
 * organized as 1024 rows x 16 columns of bitcells (Table I). Each row
 * additionally carries two parity bits which the paper excludes from its
 * experiments; we model them as present (a separate packed plane) but
 * structurally excluded from fault accounting: the data fault domain is
 * a span of 64-bit words that simply never contains a parity bit.
 *
 * Storage is bit-packed: four 16-bit rows per 64-bit word, bit offset
 * row*16+col inside the block, 256 words per BRAM, laid out
 * structure-of-arrays across the device pool so readback, fault
 * injection (AND/XOR of threshold masks) and fault counting
 * (std::popcount) stream over contiguous words instead of walking
 * bitcells one by one.
 */

#ifndef UVOLT_FPGA_BRAM_HH
#define UVOLT_FPGA_BRAM_HH

#include <cstdint>
#include <span>
#include <vector>

namespace uvolt::fpga
{

/** Rows of bitcells per basic BRAM block. */
constexpr int bramRows = 1024;

/** Data bitcells per row (parity excluded). */
constexpr int bramCols = 16;

/** Parity bits per row (present on silicon, excluded from experiments). */
constexpr int bramParityCols = 2;

/** Data bits per basic BRAM block. */
constexpr int bramBits = bramRows * bramCols;

/** Bits per packed storage word. */
constexpr int bramWordBits = 64;

/** Rows packed into one 64-bit word. */
constexpr int bramRowsPerWord = bramWordBits / bramCols;

/** Packed 64-bit data words per BRAM block. */
constexpr int bramWords = bramBits / bramWordBits;

/** Packed 64-bit parity words per BRAM block. */
constexpr int bramParityWords = bramRows * bramParityCols / bramWordBits;

/** Address of one bitcell inside a device's BRAM pool. */
struct BitAddress
{
    std::uint32_t bram; ///< index into the device's BRAM pool
    std::uint16_t row;  ///< 0 .. bramRows-1
    std::uint8_t col;   ///< 0 .. bramCols-1

    bool operator==(const BitAddress &other) const = default;

    /** Flat bit offset of this cell within its BRAM. */
    std::uint32_t
    bitOffset() const
    {
        return static_cast<std::uint32_t>(row) *
            static_cast<std::uint32_t>(bramCols) +
            static_cast<std::uint32_t>(col);
    }

    /** Packed word holding this cell (bitOffset / 64). */
    std::uint32_t
    wordIndex() const
    {
        return bitOffset() / static_cast<std::uint32_t>(bramWordBits);
    }

    /** Bit position of this cell inside its packed word. */
    std::uint32_t
    wordBit() const
    {
        return bitOffset() % static_cast<std::uint32_t>(bramWordBits);
    }

    /** Single-bit mask of this cell inside its packed word. */
    std::uint64_t
    wordMask() const
    {
        return std::uint64_t{1} << wordBit();
    }

    /** Inverse of bitOffset(): rebuild the (row, col) coordinates. */
    static BitAddress
    fromBitOffset(std::uint32_t bram, std::uint32_t bit_offset)
    {
        BitAddress addr;
        addr.bram = bram;
        addr.row = static_cast<std::uint16_t>(
            bit_offset / static_cast<std::uint32_t>(bramCols));
        addr.col = static_cast<std::uint8_t>(
            bit_offset % static_cast<std::uint32_t>(bramCols));
        return addr;
    }

    /** Rebuild from packed (word, bit-in-word) coordinates. */
    static BitAddress
    fromWordCoords(std::uint32_t bram, std::uint32_t word,
                   std::uint32_t bit)
    {
        return fromBitOffset(
            bram, word * static_cast<std::uint32_t>(bramWordBits) + bit);
    }
};

/**
 * One 16 kbit BRAM block: 1024 rows of 16-bit data words, stored as 256
 * packed 64-bit words (plus an optional 2-bit-per-row parity plane).
 *
 * Contents model the value *written* by the design; what a read returns
 * under reduced voltage is decided by the fault model layered on top
 * (vmodel::FaultModel), mirroring the real hardware where the stored
 * charge is intact but the read path fails timing.
 *
 * Every mutation bumps a content epoch (shared with the owning Device
 * when there is one) so fault-count caches can tell "same content, same
 * voltage" apart from a fresh measurement without diffing storage.
 */
class Bram
{
  public:
    Bram();

    Bram(const Bram &other);
    Bram &operator=(const Bram &other);

    /** Write one 16-bit row. */
    void writeRow(int row, std::uint16_t value);

    /** Read back one 16-bit row (fault-free; see class comment). */
    std::uint16_t readRow(int row) const;

    /** Fill every row with the same pattern (e.g. 0xFFFF). */
    void fill(std::uint16_t pattern);

    /** Bounds-checked single-bit access (the BitAddress-based shim). */
    bool testBit(int row, int col) const;
    void assignBit(int row, int col, bool value);

    /** Number of "1" data bitcells currently stored. */
    int countOnes() const;

    /** Packed data words, 256 x 64 bits, bit offset = row*16+col. */
    std::span<const std::uint64_t> words() const { return words_; }

    /** Replace the whole packed data plane (fast image programming). */
    void assignWords(std::span<const std::uint64_t> words);

    /** The 1024 row words, unpacked (compatibility / serial shim). */
    std::vector<std::uint16_t> toRows() const;

    /** Replace contents from 1024 unpacked row words. */
    void assignRows(std::span<const std::uint16_t> rows);

    /**
     * Parity plane access (2 bits per row). Parity is stored apart from
     * the data words, so no parity bit can ever reach the packed fault
     * domain or its popcount totals. Lazily allocated: untouched BRAMs
     * carry no parity storage.
     */
    bool parityBit(int row, int parity_col) const;
    void setParityBit(int row, int parity_col, bool value);

    /** Number of "1" parity bits currently stored. */
    int parityOnes() const;

    /** Content epoch: bumped by every mutating call. */
    std::uint64_t epoch() const { return *epoch_; }

    /**
     * Share an epoch counter with an owner (Device): mutations of any
     * bound Bram bump the owner's counter so one compare validates a
     * whole-device cache. Internal wiring; the owner keeps the counter
     * alive for the Bram's lifetime.
     */
    void bindEpoch(std::uint64_t *counter) { epoch_ = counter; }

  private:
    void bump() { ++*epoch_; }

    std::vector<std::uint64_t> words_;
    std::vector<std::uint64_t> parity_; ///< empty until first use
    std::uint64_t ownEpoch_ = 0;
    std::uint64_t *epoch_ = &ownEpoch_;
};

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_BRAM_HH

#include "fpga/bram.hh"

#include <bit>

#include "util/logging.hh"

namespace uvolt::fpga
{

namespace
{

void
checkRow(int row)
{
    if (row < 0 || row >= bramRows)
        fatal("BRAM row {} out of [0, {})", row, bramRows);
}

void
checkCol(int col)
{
    if (col < 0 || col >= bramCols)
        fatal("BRAM col {} out of [0, {})", col, bramCols);
}

} // namespace

Bram::Bram() : rows_(bramRows, 0) {}

void
Bram::writeRow(int row, std::uint16_t value)
{
    checkRow(row);
    rows_[static_cast<std::size_t>(row)] = value;
}

std::uint16_t
Bram::readRow(int row) const
{
    checkRow(row);
    return rows_[static_cast<std::size_t>(row)];
}

void
Bram::fill(std::uint16_t pattern)
{
    for (auto &row : rows_)
        row = pattern;
}

bool
Bram::getBit(int row, int col) const
{
    checkRow(row);
    checkCol(col);
    return (rows_[static_cast<std::size_t>(row)] >> col) & 1u;
}

void
Bram::setBit(int row, int col, bool value)
{
    checkRow(row);
    checkCol(col);
    auto &word = rows_[static_cast<std::size_t>(row)];
    const std::uint16_t mask = static_cast<std::uint16_t>(1u << col);
    word = value ? static_cast<std::uint16_t>(word | mask)
                 : static_cast<std::uint16_t>(word & ~mask);
}

int
Bram::countOnes() const
{
    int total = 0;
    for (std::uint16_t word : rows_)
        total += std::popcount(word);
    return total;
}

} // namespace uvolt::fpga

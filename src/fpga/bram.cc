#include "fpga/bram.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace uvolt::fpga
{

namespace
{

void
checkRow(int row)
{
    if (row < 0 || row >= bramRows)
        fatal("BRAM row {} out of [0, {})", row, bramRows);
}

void
checkCol(int col)
{
    if (col < 0 || col >= bramCols)
        fatal("BRAM col {} out of [0, {})", col, bramCols);
}

/** Lane shift of a row inside its packed word. */
int
laneShift(int row)
{
    return (row % bramRowsPerWord) * bramCols;
}

} // namespace

Bram::Bram() : words_(bramWords, 0) {}

Bram::Bram(const Bram &other)
    : words_(other.words_), parity_(other.parity_),
      ownEpoch_(*other.epoch_)
{
    // A copy owns its content history; never alias the source's counter.
}

Bram &
Bram::operator=(const Bram &other)
{
    words_ = other.words_;
    parity_ = other.parity_;
    bump();
    return *this;
}

void
Bram::writeRow(int row, std::uint16_t value)
{
    checkRow(row);
    auto &word = words_[static_cast<std::size_t>(row / bramRowsPerWord)];
    const int shift = laneShift(row);
    word = (word & ~(std::uint64_t{0xFFFF} << shift)) |
        (static_cast<std::uint64_t>(value) << shift);
    bump();
}

std::uint16_t
Bram::readRow(int row) const
{
    checkRow(row);
    return static_cast<std::uint16_t>(
        words_[static_cast<std::size_t>(row / bramRowsPerWord)] >>
        laneShift(row));
}

void
Bram::fill(std::uint16_t pattern)
{
    std::uint64_t word = pattern;
    word |= word << 16;
    word |= word << 32;
    std::fill(words_.begin(), words_.end(), word);
    bump();
}

bool
Bram::testBit(int row, int col) const
{
    checkRow(row);
    checkCol(col);
    const BitAddress addr = BitAddress::fromBitOffset(
        0, static_cast<std::uint32_t>(row * bramCols + col));
    return (words_[addr.wordIndex()] >> addr.wordBit()) & 1u;
}

void
Bram::assignBit(int row, int col, bool value)
{
    checkRow(row);
    checkCol(col);
    const BitAddress addr = BitAddress::fromBitOffset(
        0, static_cast<std::uint32_t>(row * bramCols + col));
    auto &word = words_[addr.wordIndex()];
    if (value)
        word |= addr.wordMask();
    else
        word &= ~addr.wordMask();
    bump();
}

int
Bram::countOnes() const
{
    int total = 0;
    for (std::uint64_t word : words_)
        total += std::popcount(word);
    return total;
}

void
Bram::assignWords(std::span<const std::uint64_t> words)
{
    if (words.size() != words_.size())
        fatal("assignWords: {} packed words for a BRAM of {}",
              words.size(), words_.size());
    std::copy(words.begin(), words.end(), words_.begin());
    bump();
}

std::vector<std::uint16_t>
Bram::toRows() const
{
    std::vector<std::uint16_t> rows(bramRows);
    for (std::size_t w = 0; w < words_.size(); ++w) {
        const std::uint64_t word = words_[w];
        for (int lane = 0; lane < bramRowsPerWord; ++lane) {
            rows[w * bramRowsPerWord + static_cast<std::size_t>(lane)] =
                static_cast<std::uint16_t>(word >> (lane * bramCols));
        }
    }
    return rows;
}

void
Bram::assignRows(std::span<const std::uint16_t> rows)
{
    if (rows.size() != static_cast<std::size_t>(bramRows))
        fatal("assignRows: {} rows for a BRAM of {}", rows.size(),
              bramRows);
    for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t word = 0;
        for (int lane = 0; lane < bramRowsPerWord; ++lane) {
            word |= static_cast<std::uint64_t>(
                        rows[w * bramRowsPerWord +
                             static_cast<std::size_t>(lane)])
                << (lane * bramCols);
        }
        words_[w] = word;
    }
    bump();
}

namespace
{

void
checkParityCol(int parity_col)
{
    if (parity_col < 0 || parity_col >= bramParityCols)
        fatal("BRAM parity col {} out of [0, {})", parity_col,
              bramParityCols);
}

} // namespace

bool
Bram::parityBit(int row, int parity_col) const
{
    checkRow(row);
    checkParityCol(parity_col);
    if (parity_.empty())
        return false;
    const auto offset = static_cast<std::uint32_t>(
        row * bramParityCols + parity_col);
    return (parity_[offset / bramWordBits] >> (offset % bramWordBits)) &
        1u;
}

void
Bram::setParityBit(int row, int parity_col, bool value)
{
    checkRow(row);
    checkParityCol(parity_col);
    if (parity_.empty())
        parity_.assign(bramParityWords, 0);
    const auto offset = static_cast<std::uint32_t>(
        row * bramParityCols + parity_col);
    auto &word = parity_[offset / bramWordBits];
    const std::uint64_t mask = std::uint64_t{1} << (offset % bramWordBits);
    word = value ? (word | mask) : (word & ~mask);
    bump();
}

int
Bram::parityOnes() const
{
    int total = 0;
    for (std::uint64_t word : parity_)
        total += std::popcount(word);
    return total;
}

} // namespace uvolt::fpga

#include "fpga/device.hh"

#include "fpga/fault_domain.hh"
#include "util/logging.hh"

namespace uvolt::fpga
{

Device::Device(const PlatformSpec &spec)
    : spec_(spec),
      floorplan_(Floorplan::columnGrid(spec.bramCount, spec.columnHeight)),
      brams_(spec.bramCount),
      vccBram_(RailId::VccBram, spec.vnomMv),
      vccInt_(RailId::VccInt, spec.vnomMv),
      vccAux_(RailId::VccAux, 1800)
{
    // SoA epoch wiring: the pool is sized once here and never
    // reallocates, so handing each block a pointer to the device-wide
    // counter is stable for the device's lifetime.
    for (auto &bram : brams_)
        bram.bindEpoch(&contentEpoch_);
}

Bram &
Device::bram(std::uint32_t index)
{
    if (index >= brams_.size())
        fatal("BRAM index {} out of pool of {}", index, brams_.size());
    return brams_[index];
}

const Bram &
Device::bram(std::uint32_t index) const
{
    if (index >= brams_.size())
        fatal("BRAM index {} out of pool of {}", index, brams_.size());
    return brams_[index];
}

void
Device::fillAll(std::uint16_t pattern)
{
    for (auto &bram : brams_)
        bram.fill(pattern);
}

std::uint64_t
Device::totalBits() const
{
    return static_cast<std::uint64_t>(brams_.size()) * bramBits;
}

std::uint64_t
Device::totalOnes() const
{
    std::uint64_t total = 0;
    for (const auto &bram : brams_)
        total += fpga::popcountWords(bram.words());
    return total;
}

VoltageRail &
Device::rail(RailId id)
{
    switch (id) {
      case RailId::VccBram:
        return vccBram_;
      case RailId::VccInt:
        return vccInt_;
      case RailId::VccAux:
        return vccAux_;
    }
    panic("Device::rail: invalid RailId");
}

const VoltageRail &
Device::rail(RailId id) const
{
    return const_cast<Device *>(this)->rail(id);
}

bool
Device::operational() const
{
    // Either rail dropping below its crash level halts the design; the
    // paper observes the DONE pin unset below Vcrash.
    return vccBram_.millivolts() >= spec_.calib.bramVcrashMv &&
           vccInt_.millivolts() >= spec_.calib.intVcrashMv;
}

} // namespace uvolt::fpga

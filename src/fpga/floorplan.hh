/**
 * @file
 * Physical floorplan of the BRAM fabric.
 *
 * BRAMs are distributed across the die in vertical columns. The paper's
 * Fault Variation Maps (Fig 6 and Fig 7) plot per-BRAM fault rates at the
 * BRAM's physical (X, Y) site, with white boxes for empty sites. The
 * floorplan provides the bidirectional mapping between pool index and
 * physical site that both the FVM builder and the ICBP placer need.
 */

#ifndef UVOLT_FPGA_FLOORPLAN_HH
#define UVOLT_FPGA_FLOORPLAN_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace uvolt::fpga
{

/** Physical site of a BRAM on the die. */
struct Site
{
    int x = 0; ///< BRAM column index
    int y = 0; ///< row within the column (larger y = further "north")

    bool operator==(const Site &other) const = default;
};

/** Grid of BRAM sites, some of which may be empty. */
class Floorplan
{
  public:
    /**
     * Build a column-major floorplan for @a bram_count BRAMs.
     *
     * Columns are filled bottom-to-top with @a column_height sites each;
     * any remainder leaves empty sites at the tops of the last columns,
     * mimicking the irregular BRAM columns of real devices.
     */
    static Floorplan columnGrid(std::uint32_t bram_count, int column_height);

    /** Number of BRAM columns. */
    int width() const { return width_; }

    /** Sites per column. */
    int height() const { return height_; }

    /** Number of occupied sites (== device BRAM count). */
    std::uint32_t bramCount() const { return bramCount_; }

    /** Physical site of a BRAM pool index. */
    Site siteOf(std::uint32_t bram) const;

    /** Pool index at a site, or nullopt if the site is empty. */
    std::optional<std::uint32_t> bramAt(Site site) const;

    /** Whether a site holds a BRAM. */
    bool occupied(Site site) const { return bramAt(site).has_value(); }

    /**
     * Euclidean distance between the sites of two BRAMs, used by the
     * process-variation model's spatial correlation kernel.
     */
    double distance(std::uint32_t bram_a, std::uint32_t bram_b) const;

  private:
    Floorplan() = default;

    int width_ = 0;
    int height_ = 0;
    std::uint32_t bramCount_ = 0;
    std::vector<Site> sites_;                 // pool index -> site
    std::vector<std::int64_t> indexAtSite_;   // site -> pool index or -1
};

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_FLOORPLAN_HH

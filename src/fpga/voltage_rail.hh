/**
 * @file
 * Supply-voltage rail model.
 *
 * The studied platforms expose independently regulated rails; the paper
 * experiments on VCCBRAM (BRAM supply) and VCCINT (internal logic supply),
 * both nominally 1 V on all four boards. Rail voltages are tracked in
 * integer millivolts because the UCD9248 regulator steps in 10 mV
 * increments and float drift across a 100-run x 10 mV sweep is
 * unacceptable for deterministic fault maps.
 */

#ifndef UVOLT_FPGA_VOLTAGE_RAIL_HH
#define UVOLT_FPGA_VOLTAGE_RAIL_HH

#include <string>

namespace uvolt::fpga
{

/** Identifier for the rails the paper regulates. */
enum class RailId
{
    VccBram, ///< BRAM supply (fine-grain experiments, Section II)
    VccInt,  ///< internal logic: LUTs, DSPs, routing
    VccAux,  ///< auxiliary I/O (not undervolted in the paper)
};

/** Printable rail name, e.g. "VCCBRAM". */
const char *railName(RailId id);

/** One adjustable supply rail. */
class VoltageRail
{
  public:
    /**
     * @param id which rail this is
     * @param nominal_mv factory nominal level (1000 mV on all platforms)
     */
    VoltageRail(RailId id, int nominal_mv);

    RailId id() const { return id_; }
    int nominalMv() const { return nominalMv_; }
    int millivolts() const { return currentMv_; }
    double volts() const { return currentMv_ / 1000.0; }

    /** Set the rail level; clamped to [0, 1.2 x nominal]. */
    void setMillivolts(int mv);

    /** Restore the factory nominal level. */
    void reset() { currentMv_ = nominalMv_; }

    /** Fraction below nominal, e.g. 0.39 at 610 mV from 1000 mV. */
    double underscale() const;

  private:
    RailId id_;
    int nominalMv_;
    int currentMv_;
};

} // namespace uvolt::fpga

#endif // UVOLT_FPGA_VOLTAGE_RAIL_HH

#include "fpga/voltage_rail.hh"

#include <algorithm>

#include "util/logging.hh"

namespace uvolt::fpga
{

const char *
railName(RailId id)
{
    switch (id) {
      case RailId::VccBram:
        return "VCCBRAM";
      case RailId::VccInt:
        return "VCCINT";
      case RailId::VccAux:
        return "VCCAUX";
    }
    panic("railName: invalid RailId");
}

VoltageRail::VoltageRail(RailId id, int nominal_mv)
    : id_(id), nominalMv_(nominal_mv), currentMv_(nominal_mv)
{
    if (nominal_mv <= 0)
        fatal("rail {} nominal must be positive, got {} mV",
              railName(id), nominal_mv);
}

void
VoltageRail::setMillivolts(int mv)
{
    currentMv_ = std::clamp(mv, 0, nominalMv_ + nominalMv_ / 5);
}

double
VoltageRail::underscale() const
{
    return 1.0 - static_cast<double>(currentMv_) /
        static_cast<double>(nominalMv_);
}

} // namespace uvolt::fpga

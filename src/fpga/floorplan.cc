#include "fpga/floorplan.hh"

#include <cmath>

#include "util/logging.hh"

namespace uvolt::fpga
{

Floorplan
Floorplan::columnGrid(std::uint32_t bram_count, int column_height)
{
    if (bram_count == 0 || column_height <= 0)
        fatal("columnGrid requires a positive BRAM count and height");

    Floorplan plan;
    plan.height_ = column_height;
    plan.width_ = static_cast<int>(
        (bram_count + static_cast<std::uint32_t>(column_height) - 1) /
        static_cast<std::uint32_t>(column_height));
    plan.bramCount_ = bram_count;
    plan.sites_.resize(bram_count);
    plan.indexAtSite_.assign(
        static_cast<std::size_t>(plan.width_) *
        static_cast<std::size_t>(column_height), -1);

    // Column-major fill, bottom (y = 0) to top, west (x = 0) to east.
    for (std::uint32_t i = 0; i < bram_count; ++i) {
        Site site;
        site.x = static_cast<int>(i / static_cast<std::uint32_t>(
                                      column_height));
        site.y = static_cast<int>(i % static_cast<std::uint32_t>(
                                      column_height));
        plan.sites_[i] = site;
        plan.indexAtSite_[static_cast<std::size_t>(site.x) *
                          static_cast<std::size_t>(column_height) +
                          static_cast<std::size_t>(site.y)] =
            static_cast<std::int64_t>(i);
    }
    return plan;
}

Site
Floorplan::siteOf(std::uint32_t bram) const
{
    if (bram >= bramCount_)
        fatal("BRAM index {} out of pool of {}", bram, bramCount_);
    return sites_[bram];
}

std::optional<std::uint32_t>
Floorplan::bramAt(Site site) const
{
    if (site.x < 0 || site.x >= width_ || site.y < 0 || site.y >= height_)
        return std::nullopt;
    std::int64_t index =
        indexAtSite_[static_cast<std::size_t>(site.x) *
                     static_cast<std::size_t>(height_) +
                     static_cast<std::size_t>(site.y)];
    if (index < 0)
        return std::nullopt;
    return static_cast<std::uint32_t>(index);
}

double
Floorplan::distance(std::uint32_t bram_a, std::uint32_t bram_b) const
{
    const Site a = siteOf(bram_a);
    const Site b = siteOf(bram_b);
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace uvolt::fpga

#include "vmodel/chip_fault_model.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::vmodel
{

std::size_t
ThresholdLadder::activeCount(double effective_v) const
{
    // Thresholds are sorted descending, so the cells that fail at this
    // voltage are a prefix. The boundary is cellFailsAt() — the one
    // shared predicate — so equality (healthy) resolves identically
    // here and in the scalar reference walker.
    const auto end = std::partition_point(
        thresholds.begin(), thresholds.end(), [effective_v](float t) {
            return cellFailsAt(t, effective_v);
        });
    return static_cast<std::size_t>(end - thresholds.begin());
}

ChipFaultModel::ChipFaultModel(const fpga::PlatformSpec &spec,
                               const fpga::Floorplan &floorplan,
                               const VariationParams &params)
    : spec_(spec), lambda_(bramVulnerability(spec, floorplan, params)),
      cells_(floorplan.bramCount())
{
    const double k = spec_.faultGrowthSlope();
    const double v_min = spec_.calib.bramVminMv / 1000.0;
    const double v_crash = spec_.calib.bramVcrashMv / 1000.0;
    // Thresholds must stay strictly below Vmin: the SAFE region is
    // fault-free by definition. 2 mV of head-room keeps the boundary
    // unambiguous under the 10 mV regulator granularity even with
    // several sigma of per-run supply jitter.
    const double threshold_cap = v_min - 0.002;

    const std::uint64_t chip_seed = hashSeed(spec_.serialNumber);

    for (std::uint32_t b = 0; b < floorplan.bramCount(); ++b) {
        // lambda_ counts *observable at 0xFFFF* faults, i.e. the 1->0
        // subset; the full weak-cell population is slightly larger.
        const double mean_cells = lambda_[b] / oneToZeroShare;
        if (mean_cells <= 0.0)
            continue;

        Rng rng(combineSeeds(chip_seed,
                             combineSeeds(hashSeed("weak-cells"), b)));
        const auto n = rng.poisson(mean_cells);
        if (n == 0)
            continue;

        // Weak bitlines of this BRAM: read-timing failures share the
        // column mux / sense-amp path, so most weak cells concentrate
        // on a few columns (params.weakColumnShare of them), the rest
        // scatter uniformly.
        const auto weak_column_count = std::max<std::uint64_t>(
            1, rng.poisson(std::max(0.0, params.meanWeakColumns - 1.0)) +
                   1);
        std::vector<int> weak_columns;
        for (std::uint64_t c = 0; c < weak_column_count; ++c) {
            weak_columns.push_back(static_cast<int>(
                rng.uniformInt(0, fpga::bramCols - 1)));
        }

        auto &list = cells_[b];
        list.reserve(n);
        std::unordered_set<std::uint32_t> used;
        used.reserve(n * 2);
        for (std::uint64_t i = 0; i < n; ++i) {
            // Unique cell position within the BRAM, column-biased.
            std::uint32_t offset;
            do {
                int col;
                if (rng.chance(params.weakColumnShare)) {
                    col = weak_columns[rng.uniformInt(
                        0, weak_columns.size() - 1)];
                } else {
                    col = static_cast<int>(
                        rng.uniformInt(0, fpga::bramCols - 1));
                }
                const auto row = static_cast<std::uint32_t>(
                    rng.uniformInt(0, fpga::bramRows - 1));
                offset = row * fpga::bramCols +
                    static_cast<std::uint32_t>(col);
            } while (!used.insert(offset).second);

            WeakCell cell;
            cell.row = static_cast<std::uint16_t>(offset / fpga::bramCols);
            cell.col = static_cast<std::uint8_t>(offset % fpga::bramCols);
            cell.oneToZero = rng.chance(oneToZeroShare);
            const double excess = rng.exponential(k);
            cell.thresholdV = static_cast<float>(
                std::min(v_crash + excess, threshold_cap));
            list.push_back(cell);
        }
        std::sort(list.begin(), list.end(),
                  [](const WeakCell &a, const WeakCell &c) {
                      return a.row != c.row ? a.row < c.row : a.col < c.col;
                  });
        totalWeakCells_ += list.size();
    }

    // Pin the chip's single most marginal cell to the cap: Vmin is a
    // *measured* boundary (first faults appear one regulator step below
    // it), so every chip realization must have at least one cell that
    // fails just under Vmin rather than leaving the boundary to Poisson
    // luck.
    WeakCell *most_marginal = nullptr;
    for (auto &list : cells_) {
        for (auto &cell : list) {
            if (!most_marginal ||
                cell.thresholdV > most_marginal->thresholdV) {
                most_marginal = &cell;
            }
        }
    }
    if (most_marginal)
        most_marginal->thresholdV = static_cast<float>(threshold_cap);

    buildLadders();
}

void
ChipFaultModel::buildLadders()
{
    ladder10_.resize(cells_.size());
    ladder01_.resize(cells_.size());
    for (std::size_t b = 0; b < cells_.size(); ++b) {
        const auto &list = cells_[b];
        // Order cells by descending threshold so the set active at any
        // voltage is a prefix. Ties can land in either order: counting
        // is a sum over the prefix and the single-bit masks are
        // disjoint, so the results are order-independent.
        std::vector<std::uint32_t> order(list.size());
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&list](std::uint32_t a, std::uint32_t c) {
                             return list[a].thresholdV >
                                 list[c].thresholdV;
                         });
        for (std::uint32_t i : order) {
            const WeakCell &cell = list[i];
            const auto addr = fpga::BitAddress::fromBitOffset(
                static_cast<std::uint32_t>(b),
                static_cast<std::uint32_t>(cell.row) *
                        static_cast<std::uint32_t>(fpga::bramCols) +
                    cell.col);
            ThresholdLadder &ladder =
                cell.oneToZero ? ladder10_[b] : ladder01_[b];
            ladder.thresholds.push_back(cell.thresholdV);
            ladder.words.push_back(addr.wordIndex());
            ladder.masks.push_back(addr.wordMask());
        }
    }
}

const std::vector<WeakCell> &
ChipFaultModel::weakCells(std::uint32_t bram) const
{
    if (bram >= cells_.size())
        fatal("weakCells: BRAM {} out of pool of {}", bram, cells_.size());
    return cells_[bram];
}

const ThresholdLadder &
ChipFaultModel::ladderOneToZero(std::uint32_t bram) const
{
    if (bram >= ladder10_.size())
        fatal("ladder: BRAM {} out of pool of {}", bram, ladder10_.size());
    return ladder10_[bram];
}

const ThresholdLadder &
ChipFaultModel::ladderZeroToOne(std::uint32_t bram) const
{
    if (bram >= ladder01_.size())
        fatal("ladder: BRAM {} out of pool of {}", bram, ladder01_.size());
    return ladder01_[bram];
}

double
ChipFaultModel::effectiveVoltage(double rail_v, double temp_c,
                                 double jitter_v) const
{
    // Inverse Thermal Dependence: at near-threshold voltages, heating
    // lowers the transistor threshold and speeds the circuit up, which is
    // equivalent to a small supply boost.
    const double itd_boost =
        spec_.calib.itdMvPerC * (temp_c - referenceTempC) / 1000.0;
    return rail_v + itd_boost + jitter_v;
}

void
ChipFaultModel::applyFaults(std::span<std::uint64_t> words,
                            std::uint32_t bram, double effective_v) const
{
    if (bram >= ladder10_.size())
        fatal("applyFaults: BRAM {} out of pool of {}", bram,
              ladder10_.size());
    const ThresholdLadder &drop = ladder10_[bram];
    const std::size_t drops = drop.activeCount(effective_v);
    for (std::size_t i = 0; i < drops; ++i)
        words[drop.words[i]] &= ~drop.masks[i];
    const ThresholdLadder &rise = ladder01_[bram];
    const std::size_t rises = rise.activeCount(effective_v);
    for (std::size_t i = 0; i < rises; ++i)
        words[rise.words[i]] |= rise.masks[i];
}

std::vector<std::uint64_t>
ChipFaultModel::readBramPacked(const fpga::Bram &written,
                               std::uint32_t bram,
                               double effective_v) const
{
    const auto words = written.words();
    std::vector<std::uint64_t> observed(words.begin(), words.end());
    applyFaults(observed, bram, effective_v);
    return observed;
}

std::vector<std::uint16_t>
ChipFaultModel::readBram(const fpga::Bram &written, std::uint32_t bram,
                         double effective_v) const
{
    return fpga::unpackRows(readBramPacked(written, bram, effective_v));
}

int
ChipFaultModel::countFaults(fpga::WordSpan written, std::uint32_t bram,
                            double effective_v) const
{
    if (bram >= ladder10_.size())
        fatal("countFaults: BRAM {} out of pool of {}", bram,
              ladder10_.size());
    int faults = 0;
    // Single-bit masks, so each popcount contributes 0 or 1: a 1->0 cell
    // faults when the written bit is set, a 0->1 cell when it is clear.
    const ThresholdLadder &drop = ladder10_[bram];
    const std::size_t drops = drop.activeCount(effective_v);
    for (std::size_t i = 0; i < drops; ++i)
        faults += std::popcount(written[drop.words[i]] & drop.masks[i]);
    const ThresholdLadder &rise = ladder01_[bram];
    const std::size_t rises = rise.activeCount(effective_v);
    for (std::size_t i = 0; i < rises; ++i)
        faults += std::popcount(~written[rise.words[i]] & rise.masks[i]);
    return faults;
}

int
ChipFaultModel::countBramFaults(const fpga::Bram &written,
                                std::uint32_t bram,
                                double effective_v) const
{
    return countFaults(written.words(), bram, effective_v);
}

std::uint64_t
ChipFaultModel::countDeviceFaults(const fpga::Device &device,
                                  double effective_v) const
{
    std::uint64_t total = 0;
    std::uint32_t b = 0;
    for (const fpga::Bram &bram : device.brams())
        total += static_cast<std::uint64_t>(
            countFaults(bram.words(), b++, effective_v));
    return total;
}

int
ChipFaultModel::countBramFaultsReference(const fpga::Bram &written,
                                         std::uint32_t bram,
                                         double effective_v) const
{
    int faults = 0;
    for (const WeakCell &cell : weakCells(bram)) {
        if (!cellFailsAt(cell.thresholdV, effective_v))
            continue;
        const bool stored = written.testBit(cell.row, cell.col);
        if (cell.oneToZero ? stored : !stored)
            ++faults;
    }
    return faults;
}

double
ChipFaultModel::expectedFaults(double effective_v) const
{
    const double v_min = spec_.calib.bramVminMv / 1000.0;
    const double v_crash = spec_.calib.bramVcrashMv / 1000.0;
    if (effective_v >= v_min)
        return 0.0;
    const double k = spec_.faultGrowthSlope();
    const double v = std::max(effective_v, v_crash);
    return spec_.expectedFaultsAtVcrash() * std::exp(-k * (v - v_crash));
}

} // namespace uvolt::vmodel

#include "vmodel/chip_fault_model.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::vmodel
{

ChipFaultModel::ChipFaultModel(const fpga::PlatformSpec &spec,
                               const fpga::Floorplan &floorplan,
                               const VariationParams &params)
    : spec_(spec), lambda_(bramVulnerability(spec, floorplan, params)),
      cells_(floorplan.bramCount())
{
    const double k = spec_.faultGrowthSlope();
    const double v_min = spec_.calib.bramVminMv / 1000.0;
    const double v_crash = spec_.calib.bramVcrashMv / 1000.0;
    // Thresholds must stay strictly below Vmin: the SAFE region is
    // fault-free by definition. 2 mV of head-room keeps the boundary
    // unambiguous under the 10 mV regulator granularity even with
    // several sigma of per-run supply jitter.
    const double threshold_cap = v_min - 0.002;

    const std::uint64_t chip_seed = hashSeed(spec_.serialNumber);

    for (std::uint32_t b = 0; b < floorplan.bramCount(); ++b) {
        // lambda_ counts *observable at 0xFFFF* faults, i.e. the 1->0
        // subset; the full weak-cell population is slightly larger.
        const double mean_cells = lambda_[b] / oneToZeroShare;
        if (mean_cells <= 0.0)
            continue;

        Rng rng(combineSeeds(chip_seed,
                             combineSeeds(hashSeed("weak-cells"), b)));
        const auto n = rng.poisson(mean_cells);
        if (n == 0)
            continue;

        // Weak bitlines of this BRAM: read-timing failures share the
        // column mux / sense-amp path, so most weak cells concentrate
        // on a few columns (params.weakColumnShare of them), the rest
        // scatter uniformly.
        const auto weak_column_count = std::max<std::uint64_t>(
            1, rng.poisson(std::max(0.0, params.meanWeakColumns - 1.0)) +
                   1);
        std::vector<int> weak_columns;
        for (std::uint64_t c = 0; c < weak_column_count; ++c) {
            weak_columns.push_back(static_cast<int>(
                rng.uniformInt(0, fpga::bramCols - 1)));
        }

        auto &list = cells_[b];
        list.reserve(n);
        std::unordered_set<std::uint32_t> used;
        used.reserve(n * 2);
        for (std::uint64_t i = 0; i < n; ++i) {
            // Unique cell position within the BRAM, column-biased.
            std::uint32_t offset;
            do {
                int col;
                if (rng.chance(params.weakColumnShare)) {
                    col = weak_columns[rng.uniformInt(
                        0, weak_columns.size() - 1)];
                } else {
                    col = static_cast<int>(
                        rng.uniformInt(0, fpga::bramCols - 1));
                }
                const auto row = static_cast<std::uint32_t>(
                    rng.uniformInt(0, fpga::bramRows - 1));
                offset = row * fpga::bramCols +
                    static_cast<std::uint32_t>(col);
            } while (!used.insert(offset).second);

            WeakCell cell;
            cell.row = static_cast<std::uint16_t>(offset / fpga::bramCols);
            cell.col = static_cast<std::uint8_t>(offset % fpga::bramCols);
            cell.oneToZero = rng.chance(oneToZeroShare);
            const double excess = rng.exponential(k);
            cell.thresholdV = static_cast<float>(
                std::min(v_crash + excess, threshold_cap));
            list.push_back(cell);
        }
        std::sort(list.begin(), list.end(),
                  [](const WeakCell &a, const WeakCell &c) {
                      return a.row != c.row ? a.row < c.row : a.col < c.col;
                  });
        totalWeakCells_ += list.size();
    }

    // Pin the chip's single most marginal cell to the cap: Vmin is a
    // *measured* boundary (first faults appear one regulator step below
    // it), so every chip realization must have at least one cell that
    // fails just under Vmin rather than leaving the boundary to Poisson
    // luck.
    WeakCell *most_marginal = nullptr;
    for (auto &list : cells_) {
        for (auto &cell : list) {
            if (!most_marginal ||
                cell.thresholdV > most_marginal->thresholdV) {
                most_marginal = &cell;
            }
        }
    }
    if (most_marginal)
        most_marginal->thresholdV = static_cast<float>(threshold_cap);
}

const std::vector<WeakCell> &
ChipFaultModel::weakCells(std::uint32_t bram) const
{
    if (bram >= cells_.size())
        fatal("weakCells: BRAM {} out of pool of {}", bram, cells_.size());
    return cells_[bram];
}

double
ChipFaultModel::effectiveVoltage(double rail_v, double temp_c,
                                 double jitter_v) const
{
    // Inverse Thermal Dependence: at near-threshold voltages, heating
    // lowers the transistor threshold and speeds the circuit up, which is
    // equivalent to a small supply boost.
    const double itd_boost =
        spec_.calib.itdMvPerC * (temp_c - referenceTempC) / 1000.0;
    return rail_v + itd_boost + jitter_v;
}

std::vector<std::uint16_t>
ChipFaultModel::readBram(const fpga::Bram &written, std::uint32_t bram,
                         double effective_v) const
{
    auto rows = written.rows();
    std::vector<std::uint16_t> observed(rows.begin(), rows.end());
    for (const WeakCell &cell : weakCells(bram)) {
        if (effective_v >= cell.thresholdV)
            continue;
        auto &word = observed[cell.row];
        const auto mask = static_cast<std::uint16_t>(1u << cell.col);
        if (cell.oneToZero)
            word = static_cast<std::uint16_t>(word & ~mask);
        else
            word = static_cast<std::uint16_t>(word | mask);
    }
    return observed;
}

int
ChipFaultModel::countBramFaults(const fpga::Bram &written,
                                std::uint32_t bram,
                                double effective_v) const
{
    int faults = 0;
    for (const WeakCell &cell : weakCells(bram)) {
        if (effective_v >= cell.thresholdV)
            continue;
        const bool stored = written.getBit(cell.row, cell.col);
        if (cell.oneToZero ? stored : !stored)
            ++faults;
    }
    return faults;
}

double
ChipFaultModel::expectedFaults(double effective_v) const
{
    const double v_min = spec_.calib.bramVminMv / 1000.0;
    const double v_crash = spec_.calib.bramVcrashMv / 1000.0;
    if (effective_v >= v_min)
        return 0.0;
    const double k = spec_.faultGrowthSlope();
    const double v = std::max(effective_v, v_crash);
    return spec_.expectedFaultsAtVcrash() * std::exp(-k * (v - v_crash));
}

} // namespace uvolt::vmodel

/**
 * @file
 * Deterministic per-chip undervolting fault model.
 *
 * This is the substitution for real silicon: each chip (identified by its
 * board serial number) owns a fixed map of weak bitcells. A weak cell has
 * a failure threshold voltage in (Vcrash, Vmin); whenever the effective
 * BRAM supply is below that threshold, reads of the cell fail. The model
 * encodes every empirical law the paper measures:
 *
 *  - no faults at or above Vmin; exponential growth of the fault count
 *    from Vmin down to Vcrash (Fig 3),
 *  - 99.9% of failures read "1" as "0"; the remainder read "0" as "1"
 *    (Fig 4) - hence fault counts proportional to stored "1" density,
 *  - fault locations are fixed properties of the chip, so repeated reads
 *    see the same faults (Table II); run-to-run variation comes only from
 *    small supply jitter moving threshold-adjacent cells in and out,
 *  - per-BRAM fault counts follow the spatially-correlated heavy-tailed
 *    process-variation field (Figs 5-7),
 *  - higher temperature raises the effective voltage (Inverse Thermal
 *    Dependence), lowering fault rates and Vmin (Fig 8).
 */

#ifndef UVOLT_VMODEL_CHIP_FAULT_MODEL_HH
#define UVOLT_VMODEL_CHIP_FAULT_MODEL_HH

#include <cstdint>
#include <span>
#include <vector>

#include "fpga/bram.hh"
#include "fpga/device.hh"
#include "fpga/fault_domain.hh"
#include "fpga/floorplan.hh"
#include "fpga/platform.hh"
#include "vmodel/process_variation.hh"

namespace uvolt::vmodel
{

/** One weak bitcell of a chip. */
struct WeakCell
{
    std::uint16_t row;   ///< BRAM row, 0..1023
    std::uint8_t col;    ///< bit within the row, 0..15
    bool oneToZero;      ///< failure polarity (true for 99.9% of cells)
    float thresholdV;    ///< fails whenever effective voltage < threshold
};

/** Share of weak cells whose failure polarity is "1"->"0". */
constexpr double oneToZeroShare = 0.999;

/**
 * THE fault predicate: a weak element with threshold @a threshold_v
 * fails at effective voltage @a effective_v iff the effective voltage
 * is *strictly below* the threshold. Thresholds are stored as float and
 * promoted to double exactly (every float is representable), so the
 * comparison is unambiguous — and a cell whose threshold equals the
 * probe voltage is HEALTHY. Every fault-counting path (the packed
 * ladder's partition_point, the scalar reference walkers, and the
 * mem:: backends' generalized ladders) must route through this one
 * function so the exact-equality boundary can never diverge between
 * implementations.
 */
inline bool
cellFailsAt(float threshold_v, double effective_v)
{
    return effective_v < static_cast<double>(threshold_v);
}

/**
 * Precomputed packed threshold masks of one BRAM and one polarity:
 * weak cells sorted by descending failure threshold in SoA layout, so
 * the cells active at voltage v are exactly a prefix (found by one
 * binary search) and fault injection/counting over that prefix is
 * AND/XOR + std::popcount against the packed data words.
 */
struct ThresholdLadder
{
    std::vector<float> thresholds;     ///< descending
    std::vector<std::uint32_t> words;  ///< packed word index per cell
    std::vector<std::uint64_t> masks;  ///< single-bit mask per cell

    /** Cells whose threshold exceeds @a effective_v (active prefix). */
    std::size_t activeCount(double effective_v) const;

    std::size_t size() const { return thresholds.size(); }
};

/** Reference ambient for all calibration anchors (degC). */
constexpr double referenceTempC = 50.0;

/** The fixed fault personality of one physical chip. */
class ChipFaultModel
{
  public:
    /**
     * Build the chip's weak-cell map.
     * Deterministic in (spec.serialNumber, floorplan geometry, params).
     */
    ChipFaultModel(const fpga::PlatformSpec &spec,
                   const fpga::Floorplan &floorplan,
                   const VariationParams &params = {});

    const fpga::PlatformSpec &spec() const { return spec_; }

    /** Weak cells of one BRAM, sorted by (row, col). */
    const std::vector<WeakCell> &weakCells(std::uint32_t bram) const;

    /** Total weak cells on the chip (all polarities). */
    std::size_t totalWeakCells() const { return totalWeakCells_; }

    /**
     * Effective supply voltage seen by the bitcells: the rail level plus
     * the ITD temperature shift plus any per-run supply jitter.
     * @param rail_v VCCBRAM level in volts
     * @param temp_c on-board temperature in degC
     * @param jitter_v per-run supply noise in volts (0 for the median run)
     */
    double effectiveVoltage(double rail_v, double temp_c,
                            double jitter_v = 0.0) const;

    /**
     * Read one BRAM under reduced voltage: returns the 1024 observed row
     * words given the written content. Weak cells whose threshold exceeds
     * @a effective_v misread according to their polarity.
     */
    std::vector<std::uint16_t> readBram(const fpga::Bram &written,
                                        std::uint32_t bram,
                                        double effective_v) const;

    /**
     * Packed readback: the observed contents as 256 bit-packed 64-bit
     * words. The hot-path form of readBram(): one 2 KiB copy plus an
     * AND/XOR per active weak cell, no per-bitcell work.
     */
    std::vector<std::uint64_t> readBramPacked(const fpga::Bram &written,
                                              std::uint32_t bram,
                                              double effective_v) const;

    /**
     * Inject this BRAM's active faults into a packed stream in place:
     * active 1->0 cells clear their bit (AND with the inverted mask),
     * active 0->1 cells set it (OR). Equivalent to what readBram()
     * applies to the written rows.
     */
    void applyFaults(std::span<std::uint64_t> words, std::uint32_t bram,
                     double effective_v) const;

    /**
     * Count the observable faults in one BRAM for its current content
     * without materializing the read (faster path used by sweeps).
     */
    int countBramFaults(const fpga::Bram &written, std::uint32_t bram,
                        double effective_v) const;

    /**
     * Packed fault count over an arbitrary fault-domain span:
     * popcount of (written AND active 1->0 masks) plus popcount of
     * (NOT written AND active 0->1 masks).
     */
    int countFaults(fpga::WordSpan written, std::uint32_t bram,
                    double effective_v) const;

    /**
     * Device-wide fault count at one effective voltage: the sweep inner
     * loop. Streams every BRAM's packed words against its threshold
     * ladders; no per-bitcell or per-call overhead.
     */
    std::uint64_t countDeviceFaults(const fpga::Device &device,
                                    double effective_v) const;

    /**
     * The legacy scalar walker: per weak cell, one threshold compare and
     * one bitcell probe. Kept as the executable specification the packed
     * path is property-tested against (and as the BitAddress-based
     * compatibility shim for exact-iteration-order consumers).
     */
    int countBramFaultsReference(const fpga::Bram &written,
                                 std::uint32_t bram,
                                 double effective_v) const;

    /** The precomputed packed ladders of one BRAM (testing/diagnostics). */
    const ThresholdLadder &ladderOneToZero(std::uint32_t bram) const;
    const ThresholdLadder &ladderZeroToOne(std::uint32_t bram) const;

    /**
     * Expected observable fault count for the whole chip at the given
     * effective voltage, assuming every cell stores "1" (pattern 0xFFFF).
     * Analytic counterpart of the sampled map, used for model validation.
     */
    double expectedFaults(double effective_v) const;

    /** Per-BRAM expected weak-cell count at Vcrash (the variation field). */
    const std::vector<double> &vulnerability() const { return lambda_; }

  private:
    /** Precompute the per-BRAM packed ladders from cells_. */
    void buildLadders();

    fpga::PlatformSpec spec_;
    std::vector<double> lambda_;
    std::vector<std::vector<WeakCell>> cells_; // per BRAM, sorted
    std::vector<ThresholdLadder> ladder10_;    // 1->0, descending thr
    std::vector<ThresholdLadder> ladder01_;    // 0->1, descending thr
    std::size_t totalWeakCells_ = 0;
};

} // namespace uvolt::vmodel

#endif // UVOLT_VMODEL_CHIP_FAULT_MODEL_HH

#include "vmodel/process_variation.hh"

#include <algorithm>
#include <cmath>

#include "fpga/bram.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::vmodel
{

std::vector<double>
latentField(const fpga::PlatformSpec &spec, const fpga::Floorplan &floorplan,
            const VariationParams &params)
{
    const double corr = std::max(1.0, spec.calib.spatialCorrLength);
    const int grid_w =
        static_cast<int>(std::ceil(floorplan.width() / corr)) + 2;
    const int grid_h =
        static_cast<int>(std::ceil(floorplan.height() / corr)) + 2;

    // Independent anchors on a coarse grid; the smooth component of the
    // field is their bilinear interpolation.
    Rng anchor_rng(combineSeeds(hashSeed(spec.serialNumber),
                                hashSeed("within-die-field")));
    std::vector<double> anchors(static_cast<std::size_t>(grid_w) *
                                static_cast<std::size_t>(grid_h));
    for (auto &a : anchors)
        a = anchor_rng.gaussian();

    auto anchor = [&](int gx, int gy) {
        return anchors[static_cast<std::size_t>(gx) *
                       static_cast<std::size_t>(grid_h) +
                       static_cast<std::size_t>(gy)];
    };

    Rng cell_rng(combineSeeds(hashSeed(spec.serialNumber),
                              hashSeed("per-bram-noise")));
    const double w_smooth = std::sqrt(params.spatialWeight);
    const double w_noise = std::sqrt(1.0 - params.spatialWeight);

    std::vector<double> field(floorplan.bramCount());
    for (std::uint32_t b = 0; b < floorplan.bramCount(); ++b) {
        const fpga::Site site = floorplan.siteOf(b);
        const double u = site.x / corr;
        const double v = site.y / corr;
        const int gx = static_cast<int>(u);
        const int gy = static_cast<int>(v);
        const double fx = u - gx;
        const double fy = v - gy;
        const double smooth =
            anchor(gx, gy) * (1 - fx) * (1 - fy) +
            anchor(gx + 1, gy) * fx * (1 - fy) +
            anchor(gx, gy + 1) * (1 - fx) * fy +
            anchor(gx + 1, gy + 1) * fx * fy;
        field[b] = w_smooth * smooth + w_noise * cell_rng.gaussian();
    }
    return field;
}

std::vector<double>
bramVulnerability(const fpga::PlatformSpec &spec,
                  const fpga::Floorplan &floorplan,
                  const VariationParams &params)
{
    const std::vector<double> field = latentField(spec, floorplan, params);
    const std::uint32_t count = floorplan.bramCount();

    std::vector<double> raw(count);
    for (std::uint32_t b = 0; b < count; ++b)
        raw[b] = std::exp(params.sigmaLn * field[b]);

    // Zero out the least-vulnerable quantile: those BRAMs never fault,
    // even at Vcrash (38.9% of them on VC707).
    const auto zero_count = static_cast<std::size_t>(
        spec.calib.neverFaultyFraction * count);
    if (zero_count > 0) {
        std::vector<double> sorted(raw);
        std::nth_element(sorted.begin(), sorted.begin() + (zero_count - 1),
                         sorted.end());
        const double cutoff = sorted[zero_count - 1];
        std::size_t zeroed = 0;
        for (auto &value : raw) {
            if (value <= cutoff && zeroed < zero_count) {
                value = 0.0;
                ++zeroed;
            }
        }
    }

    const double total = spec.expectedFaultsAtVcrash();
    const double max_count =
        spec.calib.maxBramFaultRate * static_cast<double>(fpga::bramBits);

    double raw_sum = 0.0;
    std::size_t nonzero = 0;
    for (double value : raw) {
        raw_sum += value;
        if (value > 0.0)
            ++nonzero;
    }
    if (raw_sum <= 0.0 || max_count * static_cast<double>(nonzero) < total)
        panic("vulnerability calibration infeasible for {}", spec.name);

    // Fixed-point iteration: scale the uncapped mass until the capped sum
    // hits the calibrated total.
    double scale = total / raw_sum;
    std::vector<double> lambda(count);
    for (int iter = 0; iter < 60; ++iter) {
        double sum = 0.0;
        for (std::uint32_t b = 0; b < count; ++b) {
            lambda[b] = std::min(raw[b] * scale, max_count);
            sum += lambda[b];
        }
        const double error = total / sum;
        if (std::abs(error - 1.0) < 1e-9)
            break;
        scale *= error;
    }
    return lambda;
}

} // namespace uvolt::vmodel

/**
 * @file
 * Within-die and die-to-die process variation of BRAM vulnerability.
 *
 * The paper observes (Section II-C.3/4) that undervolting faults are fully
 * non-uniformly distributed over BRAMs, that the distribution is spatially
 * structured on the die (the Fault Variation Map, Fig 6), that a large
 * fraction of BRAMs never fault even at Vcrash (38.9% on VC707), and that
 * two identical boards show completely different maps (Fig 7). The paper
 * attributes this to within-die process variation (verified by showing the
 * map sticks to physical, not logical, BRAM locations across re-compiles).
 *
 * We model it as a spatially correlated log-normal random field over the
 * floorplan, seeded by the chip serial number (die-to-die variation =
 * different seeds), thresholded so the calibrated fraction of BRAMs is
 * fault-free, capped at the calibrated worst-BRAM rate, and normalized so
 * the die-wide expected fault count at Vcrash matches the calibrated rate.
 */

#ifndef UVOLT_VMODEL_PROCESS_VARIATION_HH
#define UVOLT_VMODEL_PROCESS_VARIATION_HH

#include <cstdint>
#include <vector>

#include "fpga/floorplan.hh"
#include "fpga/platform.hh"

namespace uvolt::vmodel
{

/** Parameters of the latent vulnerability field. */
struct VariationParams
{
    double sigmaLn = 1.6;        ///< log-normal shape (heavy tail)
    double spatialWeight = 0.55; ///< share of variance from the smooth field

    /**
     * Within-BRAM structure: read-timing failures concentrate on a few
     * weak bitlines (shared column mux / sense-amp timing), so a
     * faulty BRAM's weak cells cluster by column. This is the share of
     * a BRAM's weak cells that land on its weak columns; the rest are
     * uniform. Set to 0 for the fully-IID ablation.
     */
    double weakColumnShare = 0.7;

    /** Mean number of weak columns per faulty BRAM (at least 1). */
    double meanWeakColumns = 2.0;
};

/**
 * Per-BRAM expected fault-cell counts at Vcrash.
 *
 * Result[b] is the expected number of faulty bitcells in BRAM b when
 * VCCBRAM = Vcrash at the reference 50 degC with pattern 0xFFFF.
 * Properties guaranteed by construction:
 *  - exactly floor(neverFaultyFraction * count) entries are 0,
 *  - max entry <= maxBramFaultRate * bramBits,
 *  - sum == spec.expectedFaultsAtVcrash() (up to rounding),
 *  - deterministic in (spec.serialNumber, floorplan).
 */
std::vector<double> bramVulnerability(const fpga::PlatformSpec &spec,
                                      const fpga::Floorplan &floorplan,
                                      const VariationParams &params = {});

/**
 * The latent spatially-correlated standard-normal field, exposed for
 * tests and for the fault-model ablation bench (correlation on/off).
 * One value per BRAM, mean ~0, variance ~1.
 */
std::vector<double> latentField(const fpga::PlatformSpec &spec,
                                const fpga::Floorplan &floorplan,
                                const VariationParams &params = {});

} // namespace uvolt::vmodel

#endif // UVOLT_VMODEL_PROCESS_VARIATION_HH

#include "power/power_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace uvolt::power
{

RailPowerModel::RailPowerModel(const fpga::PlatformSpec &spec)
    : vnom_(spec.vnomMv / 1000.0),
      pnom_(spec.calib.bramPowerNomW),
      dynamicFraction_(spec.calib.dynamicFraction),
      leakageSlope_(spec.calib.leakageSlope)
{
}

double
RailPowerModel::relativePower(double volts) const
{
    if (volts < 0.0)
        fatal("relativePower: negative voltage {}", volts);
    const double ratio = volts / vnom_;
    const double dynamic = dynamicFraction_ * ratio * ratio;
    const double leakage =
        (1.0 - dynamicFraction_) * std::exp(-leakageSlope_ * (vnom_ - volts));
    return dynamic + leakage;
}

double
RailPowerModel::bramPower(double volts) const
{
    return pnom_ * relativePower(volts);
}

double
RailPowerModel::savingVsNominal(double volts) const
{
    return 1.0 - relativePower(volts);
}

double
RailPowerModel::savingVs(double volts, double reference_volts) const
{
    return 1.0 - relativePower(volts) / relativePower(reference_volts);
}

OnChipBreakdown::OnChipBreakdown(const fpga::PlatformSpec &spec,
                                 double bram_utilization,
                                 double bram_share_at_nominal)
    : rail_(spec), vnom_(spec.vnomMv / 1000.0)
{
    if (bram_utilization <= 0.0 || bram_utilization > 1.0)
        fatal("BRAM utilization {} outside (0, 1]", bram_utilization);
    if (bram_share_at_nominal <= 0.0 || bram_share_at_nominal >= 1.0)
        fatal("BRAM power share {} outside (0, 1)", bram_share_at_nominal);

    designBramNomW_ = spec.calib.bramPowerNomW * bram_utilization;
    restW_ = designBramNomW_ *
        (1.0 - bram_share_at_nominal) / bram_share_at_nominal;
}

PowerBreakdown
OnChipBreakdown::at(double volts) const
{
    PowerBreakdown result;
    result.bramW = designBramNomW_ * rail_.relativePower(volts);
    result.restW = restW_;
    result.totalW = result.bramW + result.restW;
    return result;
}

double
OnChipBreakdown::totalSaving(double volts) const
{
    const double nominal = at(vnom_).totalW;
    return 1.0 - at(volts).totalW / nominal;
}

OnChipBreakdown
OnChipBreakdown::nnDesign(const fpga::PlatformSpec &spec)
{
    // Table III: the NN fills 70.8% of VC707's BRAMs; the BRAM share of
    // the design's on-chip power at nominal is the value that makes the
    // >10x BRAM rail reduction at Vmin equal the paper's 24.1% total
    // on-chip saving (Fig 10).
    return OnChipBreakdown(spec, 0.708, 0.2555);
}

} // namespace uvolt::power

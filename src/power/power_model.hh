/**
 * @file
 * BRAM-rail power model and the on-chip breakdown of the NN design.
 *
 * The paper measures board power with a power meter and attributes the
 * BRAM share with the Xilinx XPE tool; both dynamic and static power drop
 * when VCCBRAM is underscaled (Section II-A). We model the rail power as
 *
 *   P(v) = Pnom * [ d (v/Vnom)^2  +  (1-d) exp(-s (Vnom - v)) ]
 *
 * i.e. a CV^2 f dynamic term at the fixed ~500 MHz internal BRAM clock
 * plus an exponential-in-voltage leakage term. The per-platform constants
 * (Pnom, d, s) live in fpga::UvCalibration and are fit to the paper's
 * anchors: > 10x BRAM power reduction at Vmin, a further ~38% at Vcrash,
 * and a 24.1% total on-chip reduction for the NN design at Vmin (Fig 10).
 */

#ifndef UVOLT_POWER_POWER_MODEL_HH
#define UVOLT_POWER_POWER_MODEL_HH

#include "fpga/platform.hh"

namespace uvolt::power
{

/** Voltage-to-power model for one platform's VCCBRAM rail. */
class RailPowerModel
{
  public:
    explicit RailPowerModel(const fpga::PlatformSpec &spec);

    /** P(v) / P(Vnom), dimensionless, for VCCBRAM = @a volts. */
    double relativePower(double volts) const;

    /** Absolute BRAM rail power in watts at VCCBRAM = @a volts. */
    double bramPower(double volts) const;

    /** Power saving fraction vs nominal: 1 - relativePower(v). */
    double savingVsNominal(double volts) const;

    /** Power saving fraction of @a volts vs @a reference_volts. */
    double savingVs(double volts, double reference_volts) const;

  private:
    double vnom_;
    double pnom_;
    double dynamicFraction_;
    double leakageSlope_;
};

/** One row of the Fig 10 stacked bar: absolute watts. */
struct PowerBreakdown
{
    double bramW;  ///< BRAM power of the design at this VCCBRAM level
    double restW;  ///< DSPs, LUTs, routing, clocking (VCCINT at nominal)
    double totalW; ///< on-chip total

    double bramShare() const { return bramW / totalW; }
};

/**
 * On-chip power of a design that occupies a fraction of the device's
 * BRAMs, with the non-BRAM remainder held at nominal VCCINT.
 */
class OnChipBreakdown
{
  public:
    /**
     * @param spec platform the design is compiled for
     * @param bram_utilization fraction of the device BRAMs used (0.708
     *        for the paper's NN on VC707)
     * @param bram_share_at_nominal BRAM fraction of the design's total
     *        on-chip power at nominal voltage
     */
    OnChipBreakdown(const fpga::PlatformSpec &spec, double bram_utilization,
                    double bram_share_at_nominal);

    /** Breakdown with VCCBRAM at @a volts. */
    PowerBreakdown at(double volts) const;

    /** Total on-chip saving vs everything-nominal, at VCCBRAM = volts. */
    double totalSaving(double volts) const;

    /** The paper's NN design on the given platform (Table III numbers). */
    static OnChipBreakdown nnDesign(const fpga::PlatformSpec &spec);

  private:
    RailPowerModel rail_;
    double vnom_;
    double designBramNomW_;
    double restW_;
};

} // namespace uvolt::power

#endif // UVOLT_POWER_POWER_MODEL_HH

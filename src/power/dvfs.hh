/**
 * @file
 * DVFS comparison substrate (paper Section IV-A.2).
 *
 * The classic alternative to fault-tolerant undervolting is Dynamic
 * Voltage and Frequency Scaling: lower the clock together with the
 * voltage so the design always meets timing ("as close to, but always
 * above, the critical operating point"). The paper argues DVFS trades
 * performance for its energy savings while aggressive undervolting at
 * constant frequency does not — this module makes that argument
 * quantitative.
 *
 * Timing follows the alpha-power law for near/super-threshold CMOS:
 *
 *   delay(V) ∝ V / (V - Vth)^alpha
 *
 * so Fmax(V) = Fnom * delay(Vnom) / delay(V). Logic power scales as
 * CV^2 f for the dynamic share and exponentially in V for leakage
 * (same shape as the BRAM rail model).
 */

#ifndef UVOLT_POWER_DVFS_HH
#define UVOLT_POWER_DVFS_HH

#include "fpga/platform.hh"

namespace uvolt::power
{

/** Alpha-power-law timing model of the design's critical path. */
class TimingModel
{
  public:
    /**
     * @param fmax_nom_mhz post-route Fmax at nominal voltage
     * @param vth_v effective threshold voltage (28 nm: ~0.35 V)
     * @param alpha velocity-saturation exponent (28 nm: ~1.3)
     */
    explicit TimingModel(double fmax_nom_mhz, double vth_v = 0.35,
                         double alpha = 1.3);

    /** Critical-path delay relative to nominal (1.0 at Vnom). */
    double relativeDelay(double volts) const;

    /** Maximum safe clock at the given VCCINT level, MHz. */
    double fmaxMhz(double volts) const;

    /** Lowest voltage with a finite delay (just above Vth). */
    double minOperableVolts() const;

  private:
    double fmaxNomMhz_;
    double vth_;
    double alpha_;
    double nominalDelay_;
};

/** One (voltage, frequency) operating point and its consequences. */
struct OperatingPoint
{
    double vccIntV = 1.0;
    double vccBramV = 1.0;
    double clockMhz = 0.0;
    bool bramFaultsPossible = false; ///< VCCBRAM below its Vmin
};

/**
 * Logic ("rest of chip") power under scaled voltage and frequency:
 * dynamic CV^2 f plus exponential leakage, normalized to the design's
 * nominal logic power.
 */
class LogicPowerModel
{
  public:
    /**
     * @param nominal_w logic power at (Vnom, Fnom)
     * @param fnom_mhz nominal clock
     * @param dynamic_fraction dynamic share at nominal (~0.6 for logic)
     * @param leakage_slope exponential leakage slope (1/V)
     */
    LogicPowerModel(double nominal_w, double fnom_mhz,
                    double dynamic_fraction = 0.6,
                    double leakage_slope = 6.0);

    /** Power at an operating point, watts. */
    double watts(double vcc_int_v, double clock_mhz) const;

  private:
    double nominalW_;
    double fnomMhz_;
    double dynamicFraction_;
    double leakageSlope_;
};

/**
 * Policy helper: the two strategies under comparison.
 *
 *  - dvfsPoint(v): both rails at v, clock at 90% of Fmax(v); never
 *    faults but slows down. v must stay at/above the logic Vmin (the
 *    critical operating point) — fatal() below it.
 *  - undervoltPoint(v_bram): VCCINT and clock stay nominal; only the
 *    BRAM rail drops (the paper's approach). Faults possible below the
 *    BRAM Vmin; mitigation is the accel module's job.
 */
class DvfsPolicy
{
  public:
    DvfsPolicy(const fpga::PlatformSpec &spec, double fnom_mhz);

    OperatingPoint dvfsPoint(double volts) const;
    OperatingPoint undervoltPoint(double vcc_bram_v) const;

    const TimingModel &timing() const { return timing_; }

  private:
    const fpga::PlatformSpec &spec_;
    double fnomMhz_;
    TimingModel timing_;
};

} // namespace uvolt::power

#endif // UVOLT_POWER_DVFS_HH

#include "power/dvfs.hh"

#include <cmath>

#include "util/logging.hh"

namespace uvolt::power
{

TimingModel::TimingModel(double fmax_nom_mhz, double vth_v, double alpha)
    : fmaxNomMhz_(fmax_nom_mhz), vth_(vth_v), alpha_(alpha)
{
    if (fmax_nom_mhz <= 0.0 || vth_v <= 0.0 || alpha <= 0.0)
        fatal("TimingModel needs positive Fmax, Vth, and alpha");
    nominalDelay_ = 1.0 / std::pow(1.0 - vth_, alpha_);
}

double
TimingModel::relativeDelay(double volts) const
{
    if (volts <= vth_)
        fatal("relativeDelay: {} V is at/below the {} V threshold",
              volts, vth_);
    const double delay = volts / std::pow(volts - vth_, alpha_);
    return delay / nominalDelay_;
}

double
TimingModel::fmaxMhz(double volts) const
{
    return fmaxNomMhz_ / relativeDelay(volts);
}

double
TimingModel::minOperableVolts() const
{
    return vth_ + 0.02;
}

LogicPowerModel::LogicPowerModel(double nominal_w, double fnom_mhz,
                                 double dynamic_fraction,
                                 double leakage_slope)
    : nominalW_(nominal_w), fnomMhz_(fnom_mhz),
      dynamicFraction_(dynamic_fraction), leakageSlope_(leakage_slope)
{
    if (nominal_w <= 0.0 || fnom_mhz <= 0.0)
        fatal("LogicPowerModel needs positive power and clock");
    if (dynamic_fraction < 0.0 || dynamic_fraction > 1.0)
        fatal("dynamic fraction {} outside [0, 1]", dynamic_fraction);
}

double
LogicPowerModel::watts(double vcc_int_v, double clock_mhz) const
{
    const double dynamic = dynamicFraction_ * vcc_int_v * vcc_int_v *
        clock_mhz / fnomMhz_;
    const double leakage = (1.0 - dynamicFraction_) *
        std::exp(-leakageSlope_ * (1.0 - vcc_int_v));
    return nominalW_ * (dynamic + leakage);
}

DvfsPolicy::DvfsPolicy(const fpga::PlatformSpec &spec, double fnom_mhz)
    : spec_(spec), fnomMhz_(fnom_mhz), timing_(fnom_mhz)
{
}

OperatingPoint
DvfsPolicy::dvfsPoint(double volts) const
{
    // The DVFS loop never crosses the critical operating point: the
    // lowest usable level is the logic rail's Vmin.
    const double floor_v = spec_.calib.intVminMv / 1000.0;
    if (volts < floor_v) {
        fatal("DVFS cannot operate at {} V: the critical operating "
              "point of {} is {} V",
              volts, spec_.name, floor_v);
    }
    OperatingPoint point;
    point.vccIntV = volts;
    point.vccBramV = volts;
    // 10% timing margin below Fmax, the usual in-situ-detector slack.
    point.clockMhz = 0.9 * timing_.fmaxMhz(volts);
    if (point.clockMhz > fnomMhz_)
        point.clockMhz = fnomMhz_; // never overclock past the design
    point.bramFaultsPossible = false;
    return point;
}

OperatingPoint
DvfsPolicy::undervoltPoint(double vcc_bram_v) const
{
    OperatingPoint point;
    point.vccIntV = 1.0;
    point.vccBramV = vcc_bram_v;
    point.clockMhz = fnomMhz_;
    point.bramFaultsPossible =
        vcc_bram_v < spec_.calib.bramVminMv / 1000.0;
    return point;
}

} // namespace uvolt::power

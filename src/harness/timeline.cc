#include "harness/timeline.hh"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/format.hh"
#include "util/fsio.hh"
#include "util/json.hh"

namespace uvolt::harness
{

std::string
TimelineRow::toJsonLine() const
{
    std::ostringstream out;
    out << "{\"schema\": \"" << schema << "\"";
    out << ", \"tool\": \"" << json::escaped(tool) << "\"";
    out << ", \"run_id\": \"" << json::escaped(runId) << "\"";
    out << ", \"git_sha\": \"" << json::escaped(gitSha) << "\"";
    out << ", \"started_at\": \"" << json::escaped(startedAtIso)
        << "\"";
    out << ", \"config_digest\": \"" << json::escaped(configDigest)
        << "\"";
    out << ", \"workers\": " << workers;
    out << ", \"duration_ms\": " << strFormat("{:.3f}", durationMs);
    out << ", \"metrics\": {";
    bool first = true;
    for (const auto &[name, value] : metrics) {
        out << (first ? "" : ", ") << "\"" << json::escaped(name)
            << "\": " << strFormat("{:.6f}", value);
        first = false;
    }
    out << "}, \"top_frames\": [";
    first = true;
    for (const auto &[name, self] : topFrames) {
        out << (first ? "" : ", ") << "{\"frame\": \""
            << json::escaped(name) << "\", \"self\": " << self << "}";
        first = false;
    }
    out << "]}";
    return out.str();
}

Expected<TimelineRow>
TimelineRow::fromJson(std::string_view text)
{
    auto parsed = json::Value::parse(text);
    if (!parsed.ok())
        return parsed.error();
    const json::Value &root = parsed.value();
    if (!root.isObject() || root.stringOr("schema", "") != schema) {
        return makeError(Errc::corruptCache,
                         "not a {} row (schema = '{}')", schema,
                         root.isObject() ? root.stringOr("schema", "?")
                                         : "<non-object>");
    }

    TimelineRow row;
    row.tool = root.stringOr("tool", "");
    row.runId = root.stringOr("run_id", "");
    row.gitSha = root.stringOr("git_sha", "");
    row.startedAtIso = root.stringOr("started_at", "");
    row.configDigest = root.stringOr("config_digest", "");
    row.workers =
        static_cast<std::uint64_t>(root.numberOr("workers", 0));
    row.durationMs = root.numberOr("duration_ms", 0.0);

    if (const json::Value *metrics = root.find("metrics");
        metrics && metrics->isObject()) {
        for (const auto &[name, value] : metrics->members()) {
            if (value.isNumber())
                row.metrics.emplace_back(name, value.number());
        }
    }
    if (const json::Value *frames = root.find("top_frames");
        frames && frames->isArray()) {
        for (const json::Value &frame : frames->items()) {
            if (!frame.isObject())
                continue;
            row.topFrames.emplace_back(
                frame.stringOr("frame", ""),
                static_cast<std::uint64_t>(frame.numberOr("self", 0)));
        }
    }
    return row;
}

std::string
nowIso8601()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buffer;
}

std::string
Timeline::defaultPath()
{
    if (const char *path = std::getenv("UVOLT_TIMELINE"))
        return path;
    return "results/timeline.jsonl";
}

Timeline::Timeline(std::string path) : path_(std::move(path)) {}

Expected<void>
Timeline::append(const TimelineRow &row) const
{
    return appendFileRecord(path_, row.toJsonLine());
}

Expected<std::vector<TimelineRow>>
Timeline::load() const
{
    std::vector<TimelineRow> rows;
    if (!std::filesystem::exists(path_))
        return rows; // no history yet is a valid (empty) timeline

    std::ifstream in(path_);
    if (!in) {
        return makeError(Errc::cacheMiss,
                         "cannot open timeline '{}' for reading", path_);
    }
    std::string line;
    std::size_t number = 0;
    while (std::getline(in, line)) {
        ++number;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        auto row = TimelineRow::fromJson(line);
        if (!row.ok()) {
            return makeError(row.error().code, "{}:{}: {}", path_,
                             number, row.error().message);
        }
        rows.push_back(std::move(row.value()));
    }
    return rows;
}

} // namespace uvolt::harness

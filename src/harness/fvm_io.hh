/**
 * @file
 * FVM persistence.
 *
 * In the paper's flow the FVM is "extracted as a pre-process stage" and
 * later consumed by the compile-time ICBP constraint (Fig 12b): the
 * characterization campaign and the placement run are separate tool
 * invocations. These helpers serialize an Fvm to a small versioned text
 * format (CSV with a header line) so a chip characterized once can be
 * reused by any number of later builds.
 *
 * Format:
 *   #uvolt-fvm v1 <platform> <width> <height> <bramCount>
 *   x,y,faults                 (one line per occupied site)
 */

#ifndef UVOLT_HARNESS_FVM_IO_HH
#define UVOLT_HARNESS_FVM_IO_HH

#include <optional>
#include <string>

#include "fpga/floorplan.hh"
#include "harness/fvm.hh"
#include "util/error.hh"

namespace uvolt::harness
{

/** Write an FVM to a file; returns false (with a warning) on failure. */
bool saveFvm(const Fvm &fvm, const fpga::Floorplan &floorplan,
             const std::string &path);

/** saveFvm() with the error taxonomy (corruptCache on I/O failure). */
Expected<void> trySaveFvm(const Fvm &fvm, const fpga::Floorplan &floorplan,
                          const std::string &path);

/**
 * Load an FVM previously written by saveFvm().
 * Returns nullopt if the file is missing, malformed, or does not match
 * the given floorplan geometry (a map for a different chip/shape must
 * never be silently accepted).
 */
std::optional<Fvm> loadFvm(const fpga::Floorplan &floorplan,
                           const std::string &path);

/**
 * loadFvm() with the error taxonomy: cacheMiss when the file does not
 * exist, corruptCache when it exists but is malformed or belongs to a
 * different floorplan geometry. The FvmCache turns cacheMiss into a
 * characterization run and corruptCache into a re-characterize +
 * overwrite.
 */
Expected<Fvm> tryLoadFvm(const fpga::Floorplan &floorplan,
                         const std::string &path);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_FVM_IO_HH

/**
 * @file
 * Perf timeline: one appended row per run, drift-checkable history.
 *
 * check_regression.py compares a run against a single committed
 * baseline with per-row tolerance — which is blind to the failure mode
 * that actually eats performance over months: a 2% regression per PR,
 * each inside tolerance, compounding. The cure is the one every serving
 * fleet uses: keep the whole history. Each bench/fleet/serve run
 * appends one schema-versioned "uvolt-timeline-v1" JSON line (git SHA,
 * config digest, per-metric values, profile top-frames) to
 * results/timeline.jsonl, and scripts/check_drift.py gates every metric
 * against its *own* history with robust-z (step changes) and EWMA
 * (monotonic creep) tests.
 *
 * Appends go through util/fsio's appendFileRecord — a single O_APPEND
 * write per row — so parallel runs stamping the same timeline (a CI
 * host running bench legs concurrently) interleave whole lines, never
 * torn ones. Rows from different tools coexist in one file; a metric's
 * history is keyed (tool, metric name), so ext_serve's p99 never mixes
 * with bench_all's.
 */

#ifndef UVOLT_HARNESS_TIMELINE_HH
#define UVOLT_HARNESS_TIMELINE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace uvolt::harness
{

/** One run's worth of gate-able numbers. */
struct TimelineRow
{
    /** Schema tag every reader checks first. */
    static constexpr const char *schema = "uvolt-timeline-v1";

    std::string tool;         ///< "bench_all", "ext_serve", ...
    std::string runId;        ///< unique per row (digest + stamp)
    std::string gitSha;       ///< build provenance
    std::string startedAtIso; ///< wall-clock UTC, ISO 8601
    std::string configDigest; ///< FNV-1a over the canonical config
    std::uint64_t workers = 0;
    double durationMs = 0.0;

    /** Metric name -> value (ns, ms, ratios — the name says which). */
    std::vector<std::pair<std::string, double>> metrics;

    /** Profiler top frames (name, self samples); empty when not run. */
    std::vector<std::pair<std::string, std::uint64_t>> topFrames;

    /** Serialize as one JSON line (no interior newlines). */
    std::string toJsonLine() const;

    /** Parse one timeline line (schema checked). */
    static Expected<TimelineRow> fromJson(std::string_view text);
};

/** Wall-clock UTC "YYYY-MM-DDTHH:MM:SSZ" for row provenance. */
std::string nowIso8601();

/** The append-only run history. */
class Timeline
{
  public:
    /** $UVOLT_TIMELINE, or "results/timeline.jsonl" when unset. */
    static std::string defaultPath();

    explicit Timeline(std::string path = defaultPath());

    const std::string &path() const { return path_; }

    /**
     * Append @a row as one line. Concurrent-writer safe (single
     * O_APPEND write). I/O failure comes back as an Error so runs in
     * read-only checkouts keep working.
     */
    Expected<void> append(const TimelineRow &row) const;

    /**
     * Parse every row in the file, oldest first. Blank lines are
     * skipped; a malformed line is an error (a torn append would be a
     * bug worth failing loudly on, not skipping). A missing file loads
     * as an empty history.
     */
    Expected<std::vector<TimelineRow>> load() const;

  private:
    std::string path_;
};

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_TIMELINE_HH

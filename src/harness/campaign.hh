/**
 * @file
 * The one-stop front door of the harness: a fluent builder that turns
 * "which dies, which patterns, which temperatures, how many runs" into
 * a fleet campaign, without touching boards, sweeps, checkpoints, or
 * caches directly.
 *
 *     auto result = Campaign::onPlatform("VC707")
 *                       .withPattern(PatternSpec::allOnes())
 *                       .sweep(100)
 *                       .run(pool);
 *
 * Everything the builder produces goes through the same FleetEngine as
 * hand-wired plans, so a Campaign run is bit-identical to the explicit
 * multi-step wiring (construct Board, discoverRegions, runCriticalSweep)
 * it replaces. The explicit path stays available for advanced control;
 * see the "advanced"/legacy notes in harness/experiment.hh.
 *
 * Platform names are resolved through the mem:: catalog, so a campaign
 * can mix memory technologies in one fleet: BRAM dies (fpga platform
 * catalog), HBM stacks (mem::hbmCatalog), and MoRS-SRAM chips
 * (mem::sramCatalog) are all valid `onPlatforms` entries. Non-BRAM
 * jobs run the backend sweep (mem::runMemSweep) instead of the board
 * path; noise injection and region discovery are BRAM-only and
 * fatal() if requested on a mixed fleet that includes other
 * technologies.
 */

#ifndef UVOLT_HARNESS_CAMPAIGN_HH
#define UVOLT_HARNESS_CAMPAIGN_HH

#include <optional>
#include <string>
#include <vector>

#include "harness/fleet.hh"

namespace uvolt::harness
{

/** Fluent builder of fleet campaigns. */
class Campaign
{
  public:
    /** Start a campaign on one die. */
    static Campaign onPlatform(std::string platform);

    /**
     * Start a campaign across several dies (die-to-die studies).
     * Entries may name any catalogued memory device — BRAM platforms,
     * HBM stacks, or MoRS-SRAM chips — and one fleet may mix them.
     */
    static Campaign onPlatforms(std::vector<std::string> platforms);

    /** Alias of onPlatforms for heterogeneous memory fleets. */
    static Campaign onDevices(std::vector<std::string> devices);

    /** Add one data pattern (default when none added: 0xFFFF). */
    Campaign &withPattern(const PatternSpec &pattern);

    /** Add several data patterns (the Fig 4 pattern study). */
    Campaign &withPatterns(const std::vector<PatternSpec> &patterns);

    /** Add one ambient temperature, degC (default: 50). */
    Campaign &atTemperature(double temp_c);

    /** Add several ambient temperatures (the Fig 8 ITD study). */
    Campaign &atTemperatures(const std::vector<double> &temps_c);

    /** Put every board of the fleet in this harsh environment. */
    Campaign &withNoise(const pmbus::NoiseConfig &noise);

    /** Listing-1 statistical population per voltage level. */
    Campaign &sweep(int runs_per_level);

    /** Voltage step, mV (default: the paper's 10 mV). */
    Campaign &stepMv(int step_mv);

    /** Collect per-BRAM fault maps (default on; off is faster). */
    Campaign &perBramMaps(bool collect);

    /** Also locate the Fig-1 voltage regions of both rails per job. */
    Campaign &discoverRegions(bool discover = true);

    /** Watchdog crash-recovery budget per measurement run. */
    Campaign &recovery(const RecoveryPolicy &policy);

    /** Persist per-job checkpoints here; re-running resumes the fleet. */
    Campaign &checkpointUnder(std::string directory);

    /** Publish each die's merged FVM into this cache. */
    Campaign &cacheInto(FvmCache &cache);

    /**
     * Archive a run-provenance manifest here after every successful
     * run (default: Ledger::defaultDirectory(), i.e. results/ledger or
     * $UVOLT_LEDGER_DIR). Pass "" to disable the ledger — hot loops
     * that run thousands of tiny campaigns (benchmarks) want that.
     */
    Campaign &ledgerUnder(std::string directory);

    /** Engine-level attempts per job (default 3). */
    Campaign &retries(int max_attempts_per_job);

    /** The plan this builder describes (for inspection or hand tuning). */
    FleetPlan plan() const;

    /** Run serially on the calling thread. */
    Expected<FleetResult> run() const;

    /** Run on a worker pool; bit-identical to the serial run. */
    Expected<FleetResult> run(ThreadPool &pool) const;

  private:
    Campaign(); ///< defaults the ledger to Ledger::defaultDirectory()

    std::vector<std::string> platforms_;
    std::vector<PatternSpec> patterns_;
    std::vector<double> temperaturesC_;
    std::optional<pmbus::NoiseConfig> noise_;
    int runsPerLevel_ = 100;
    int stepMv_ = 10;
    bool collectPerBram_ = true;
    bool discoverRegions_ = false;
    RecoveryPolicy recovery_;
    FleetOptions options_;
};

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_CAMPAIGN_HH

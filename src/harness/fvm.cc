#include "harness/fvm.hh"

#include <algorithm>
#include <numeric>

#include "fpga/bram.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

Fvm::Fvm(std::string platform, const fpga::Floorplan &floorplan,
         std::vector<int> per_bram_faults)
    : platform_(std::move(platform)), faults_(std::move(per_bram_faults))
{
    if (faults_.size() != floorplan.bramCount())
        fatal("FVM: {} fault entries for {} BRAMs", faults_.size(),
              floorplan.bramCount());
}

double
Fvm::rateOf(std::uint32_t bram) const
{
    return static_cast<double>(faults_[bram]) /
        static_cast<double>(fpga::bramBits);
}

double
Fvm::faultFreeFraction() const
{
    const auto zero = static_cast<double>(
        std::count(faults_.begin(), faults_.end(), 0));
    return zero / static_cast<double>(faults_.size());
}

double
Fvm::maxRate() const
{
    const int max = *std::max_element(faults_.begin(), faults_.end());
    return static_cast<double>(max) / static_cast<double>(fpga::bramBits);
}

double
Fvm::meanRate() const
{
    const double sum = std::accumulate(faults_.begin(), faults_.end(), 0.0);
    return sum / static_cast<double>(faults_.size()) /
        static_cast<double>(fpga::bramBits);
}

std::vector<std::uint32_t>
Fvm::bramsByReliability() const
{
    std::vector<std::uint32_t> order(faults_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return faults_[a] < faults_[b];
                     });
    return order;
}

std::string
Fvm::render(const fpga::Floorplan &floorplan) const
{
    const int max_faults =
        std::max(1, *std::max_element(faults_.begin(), faults_.end()));
    std::string art;
    art.reserve(static_cast<std::size_t>(floorplan.height() + 1) *
                static_cast<std::size_t>(floorplan.width() + 1));

    // Top of the die first (highest y).
    for (int y = floorplan.height() - 1; y >= 0; --y) {
        for (int x = 0; x < floorplan.width(); ++x) {
            const auto bram = floorplan.bramAt({x, y});
            if (!bram) {
                art.push_back(' ');
                continue;
            }
            const int count = faults_[*bram];
            if (count == 0) {
                art.push_back('.');
                continue;
            }
            // Log-ish buckets 1..9 then '#' for the extreme tail.
            const double frac =
                static_cast<double>(count) / static_cast<double>(max_faults);
            if (frac >= 0.85) {
                art.push_back('#');
            } else {
                const int bucket =
                    1 + static_cast<int>(frac * 9.0);
                art.push_back(static_cast<char>(
                    '0' + std::min(bucket, 9)));
            }
        }
        art.push_back('\n');
    }
    return art;
}

Fvm
fvmFromSweep(const SweepResult &sweep, const fpga::Floorplan &floorplan)
{
    if (sweep.points.empty())
        fatal("fvmFromSweep: empty sweep");
    const auto &deepest = sweep.points.back();
    if (deepest.perBramFaults.empty())
        fatal("fvmFromSweep: sweep ran without per-BRAM collection");
    return Fvm(sweep.platform, floorplan, deepest.perBramFaults);
}

} // namespace uvolt::harness

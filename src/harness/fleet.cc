#include "harness/fleet.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>

#include <chrono>

#include "fpga/floorplan.hh"
#include "fpga/platform.hh"
#include "harness/checkpoint.hh"
#include "harness/fvm_io.hh"
#include "harness/ledger.hh"
#include "util/bench.hh"
#include "util/flight_recorder.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"

namespace uvolt::harness
{

namespace
{

struct FleetMetrics
{
    telemetry::Counter &jobs =
        telemetry::Registry::global().counter("fleet.jobs");
    telemetry::Counter &jobRetries =
        telemetry::Registry::global().counter("fleet.job_retries");
    telemetry::Counter &resumes =
        telemetry::Registry::global().counter("fleet.resumes");
};

FleetMetrics &
fleetMetrics()
{
    static FleetMetrics metrics;
    return metrics;
}

struct CacheMetrics
{
    telemetry::Counter &memoryHits =
        telemetry::Registry::global().counter("fvmcache.memory_hits");
    telemetry::Counter &diskHits =
        telemetry::Registry::global().counter("fvmcache.disk_hits");
    telemetry::Counter &misses =
        telemetry::Registry::global().counter("fvmcache.misses");
    telemetry::Counter &corruptFiles =
        telemetry::Registry::global().counter("fvmcache.corrupt_files");
    telemetry::Counter &singleFlightWaits = telemetry::Registry::global()
        .counter("fvmcache.single_flight_waits");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics metrics;
    return metrics;
}

/** Keep [A-Za-z0-9.-], map everything else to '_' (keys, filenames). */
std::string
sanitized(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        const bool keep = std::isalnum(static_cast<unsigned char>(c)) ||
                          c == '-' || c == '.';
        out.push_back(keep ? c : '_');
    }
    return out;
}

bool
isReferencePattern(const PatternSpec &pattern)
{
    return pattern.kind == PatternSpec::Kind::Fixed &&
           pattern.word == 0xFFFF;
}

} // namespace

void
fillMemPattern(mem::MemoryDevice &device, const PatternSpec &pattern)
{
    if (pattern.kind == PatternSpec::Kind::Fixed) {
        device.fill(pattern.word);
        return;
    }
    const std::uint32_t wordsPerDomain = device.traits().wordsPerDomain;
    std::vector<std::uint64_t> plane(wordsPerDomain);
    for (std::uint32_t d = 0; d < device.domainCount(); ++d) {
        // One stream per domain, like the per-BRAM streams of the
        // Board path: domain content is independent of domain count.
        Rng rng(combineSeeds(pattern.seed, d));
        for (std::uint32_t w = 0; w < wordsPerDomain; ++w) {
            std::uint64_t word = 0;
            for (int bit = 0; bit < fpga::bramWordBits; ++bit) {
                if (rng.chance(pattern.oneDensity))
                    word |= std::uint64_t{1} << bit;
            }
            plane[w] = word;
        }
        device.assignDomainWords(d, plane);
    }
}

SweepResult
sweepFromMem(const mem::MemSweepResult &mem_result,
             const PatternSpec &pattern)
{
    SweepResult result;
    result.platform = mem_result.device;
    result.dieId = mem_result.dieId;
    result.pattern = pattern;
    result.ambientC = mem_result.ambientC;
    result.runsPerLevel = mem_result.runsPerLevel;
    result.truncated = mem_result.truncated;
    result.points.reserve(mem_result.points.size());
    for (const mem::MemSweepPoint &mem_point : mem_result.points) {
        SweepPoint point;
        point.vccBramMv = mem_point.railMv; // the device rail, generally
        point.runCounts.reserve(mem_point.runCounts.size());
        for (std::uint64_t count : mem_point.runCounts) {
            point.runCounts.push_back(static_cast<double>(count));
            point.runStats.add(static_cast<double>(count));
        }
        point.medianFaults =
            static_cast<double>(mem_point.medianFaults);
        point.faultsPerMbit = mem_point.faultsPerMbit;
        point.perBramFaults = mem_point.perDomainFaults;
        point.bramPowerW = mem_point.railPowerW;
        result.points.push_back(std::move(point));
    }
    return result;
}

std::string
FleetJob::label() const
{
    std::string text = strFormat("{}-p{}-t{}", sanitized(platform),
                                 sanitized(pattern.label()), ambientC);
    if (noise)
        text += strFormat("-n{}", noise->seed);
    return text;
}

FleetPlan
FleetPlan::crossProduct(const std::vector<std::string> &platforms,
                        const std::vector<PatternSpec> &patterns,
                        const std::vector<double> &temperatures_c)
{
    FleetPlan plan;
    plan.jobs.reserve(platforms.size() * patterns.size() *
                      temperatures_c.size());
    for (const auto &platform : platforms) {
        for (const auto &pattern : patterns) {
            for (double temp_c : temperatures_c) {
                FleetJob job;
                job.platform = platform;
                job.pattern = pattern;
                job.ambientC = temp_c;
                plan.jobs.push_back(std::move(job));
            }
        }
    }
    return plan;
}

double
FleetResult::dieToDieRatio() const
{
    if (dies.size() < 2)
        return 0.0;
    double best = dies.front().faultsPerMbitAtVcrash;
    double worst = best;
    for (const auto &die : dies) {
        best = std::min(best, die.faultsPerMbitAtVcrash);
        worst = std::max(worst, die.faultsPerMbitAtVcrash);
    }
    if (best <= 0.0)
        return 0.0;
    return worst / best;
}

const SweepResult &
FleetResult::onlySweep() const
{
    if (jobs.size() != 1)
        fatal("FleetResult::onlySweep() on a {}-job fleet", jobs.size());
    return jobs.front().sweep;
}

const DieReport &
FleetResult::die(const std::string &platform) const
{
    for (const auto &report : dies) {
        if (report.platform == platform)
            return report;
    }
    fatal("fleet has no die report for platform '{}'", platform);
}

double
FvmCacheStats::hitRate() const
{
    const std::uint64_t served =
        memoryHits + diskHits + singleFlightWaits;
    const std::uint64_t total = served + misses;
    if (total == 0)
        return 0.0;
    return static_cast<double>(served) / static_cast<double>(total);
}

FvmCache::FvmCache(std::string directory)
    : directory_(std::move(directory))
{
}

std::string
FvmCache::defaultDirectory()
{
    if (const char *dir = std::getenv("UVOLT_CACHE_DIR"))
        return dir;
    return "uvolt_model_cache";
}

std::string
FvmCache::keyFor(const fpga::PlatformSpec &spec,
                 const PatternSpec &pattern, int runs_per_level)
{
    return strFormat("{}-{}-p{}-r{}", sanitized(spec.name),
                     sanitized(spec.serialNumber),
                     sanitized(pattern.label()), runs_per_level);
}

std::string
FvmCache::keyForDevice(const mem::DeviceTraits &traits,
                       const PatternSpec &pattern, int runs_per_level)
{
    if (traits.technology == mem::Technology::bram) {
        // Legacy untagged format: BRAM keys (and their on-disk cache
        // files) must stay byte-identical to pre-backend builds.
        return strFormat("{}-{}-p{}-r{}", sanitized(traits.name),
                         sanitized(traits.dieId),
                         sanitized(pattern.label()), runs_per_level);
    }
    return strFormat("{}-{}-{}-p{}-r{}",
                     mem::technologyName(traits.technology),
                     sanitized(traits.name), sanitized(traits.dieId),
                     sanitized(pattern.label()), runs_per_level);
}

Expected<std::shared_ptr<const Fvm>>
FvmCache::obtain(const fpga::PlatformSpec &spec,
                 const PatternSpec &pattern, int runs_per_level,
                 const Characterize &characterize)
{
    const std::string key = keyFor(spec, pattern, runs_per_level);
    const std::string path = strFormat("{}/{}.fvm", directory_, key);

    std::shared_ptr<Entry> entry;
    {
        std::unique_lock lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            entry = it->second;
            if (!entry->ready) {
                ++stats_.singleFlightWaits;
                cacheMetrics().singleFlightWaits.increment();
                ready_.wait(lock, [&] { return entry->ready; });
            } else {
                ++stats_.memoryHits;
                cacheMetrics().memoryHits.increment();
            }
            if (entry->fvm)
                return entry->fvm;
            return *entry->failure;
        }
        entry = std::make_shared<Entry>();
        entries_[key] = entry;
    }

    // We own this flight: probe the disk, characterize on a miss, and
    // publish the outcome to every thread parked on the entry.
    const fpga::Floorplan floorplan =
        fpga::Floorplan::columnGrid(spec.bramCount, spec.columnHeight);

    bool disk_hit = false;
    bool corrupt = false;
    Expected<Fvm> produced = tryLoadFvm(floorplan, path);
    if (produced.ok()) {
        disk_hit = true;
    } else {
        corrupt = produced.code() == Errc::corruptCache;
        produced = characterize();
        if (produced.ok()) {
            if (auto saved =
                    trySaveFvm(produced.value(), floorplan, path);
                !saved.ok())
                warnc("fvmcache", "{}", saved.error().message);
        }
    }

    std::unique_lock lock(mutex_);
    if (disk_hit) {
        ++stats_.diskHits;
        cacheMetrics().diskHits.increment();
    } else {
        ++stats_.misses;
        cacheMetrics().misses.increment();
    }
    if (corrupt) {
        ++stats_.corruptFiles;
        cacheMetrics().corruptFiles.increment();
    }
    if (produced.ok()) {
        entry->fvm = std::make_shared<const Fvm>(produced.take());
        entry->ready = true;
        ready_.notify_all();
        return entry->fvm;
    }
    // Waiters of this flight share the error; the entry is dropped so a
    // later obtain() retries instead of caching the failure forever.
    entry->failure = produced.error();
    entry->ready = true;
    entries_.erase(key);
    ready_.notify_all();
    return produced.error();
}

Expected<void>
FvmCache::store(const fpga::PlatformSpec &spec, const PatternSpec &pattern,
                int runs_per_level, const Fvm &fvm)
{
    return storeKeyed(keyFor(spec, pattern, runs_per_level),
                      fpga::Floorplan::columnGrid(spec.bramCount,
                                                  spec.columnHeight),
                      fvm);
}

Expected<void>
FvmCache::storeKeyed(const std::string &key,
                     const fpga::Floorplan &floorplan, const Fvm &fvm)
{
    const std::string path = strFormat("{}/{}.fvm", directory_, key);
    if (auto saved = trySaveFvm(fvm, floorplan, path); !saved.ok())
        return saved.error();

    std::unique_lock lock(mutex_);
    auto entry = std::make_shared<Entry>();
    entry->ready = true;
    entry->fvm = std::make_shared<const Fvm>(fvm);
    entries_[key] = entry;
    return {};
}

void
FvmCache::evictMemory()
{
    std::unique_lock lock(mutex_);
    // In-flight entries stay: their owners still publish through them.
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second->ready)
            it = entries_.erase(it);
        else
            ++it;
    }
}

FvmCacheStats
FvmCache::stats() const
{
    std::unique_lock lock(mutex_);
    return stats_;
}

FleetEngine::FleetEngine(FleetOptions options)
    : options_(std::move(options))
{
}

Expected<FleetJobOutcome>
FleetEngine::runJob(const FleetPlan &plan, const FleetJob &job) const
{
    UVOLT_TRACE_SCOPE("fleet.job", [&] {
        return telemetry::TraceArgs{{"label", job.label()}};
    });
    fleetMetrics().jobs.increment();
    if (mem::technologyOfName(job.platform) != mem::Technology::bram)
        return runMemJob(plan, job);
    const fpga::PlatformSpec &spec = fpga::findPlatform(job.platform);
    auto model = pmbus::sharedChipModel(spec);

    std::string ckpt_path;
    if (!options_.checkpointDir.empty())
        ckpt_path = strFormat("{}/{}.ckpt", options_.checkpointDir,
                              job.label());

    FleetJobOutcome outcome;
    outcome.job = job;

    const int max_attempts = std::max(1, options_.maxAttemptsPerJob);
    Error last = makeError(Errc::recoveryExhausted,
                           "fleet job {} never ran", job.label());
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        outcome.attempts = attempt;
        UVOLT_TRACE_SCOPE("fleet.attempt", [&] {
            return telemetry::TraceArgs{
                {"label", job.label()},
                {"attempt", std::to_string(attempt)}};
        });
        if (attempt > 1)
            fleetMetrics().jobRetries.increment();

        pmbus::Board board(spec, model);
        board.setAmbientC(job.ambientC);
        if (job.noise) {
            // Later attempts face a re-seeded environment: replaying the
            // exact fault schedule that just exhausted the budgets would
            // fail identically. Deterministic in the attempt number, so
            // the fleet stays bit-reproducible.
            pmbus::NoiseConfig noise = *job.noise;
            noise.seed += static_cast<std::uint64_t>(attempt - 1) *
                          1000003ull;
            board.attachNoise(noise);
        }

        if (plan.discoverRegions) {
            auto bram_regions =
                tryDiscoverRegions(board, fpga::RailId::VccBram);
            if (!bram_regions.ok()) {
                last = bram_regions.error();
                continue;
            }
            auto int_regions =
                tryDiscoverRegions(board, fpga::RailId::VccInt);
            if (!int_regions.ok()) {
                last = int_regions.error();
                continue;
            }
            outcome.bramRegions = bram_regions.take();
            outcome.intRegions = int_regions.take();
        }

        SweepOptions sweep_options;
        sweep_options.pattern = job.pattern;
        sweep_options.runsPerLevel = plan.runsPerLevel;
        sweep_options.stepMv = plan.stepMv;
        sweep_options.collectPerBram = plan.collectPerBram;
        sweep_options.recovery = plan.recovery;

        SweepCheckpoint checkpoint;
        if (!ckpt_path.empty()) {
            sweep_options.checkpointPath = ckpt_path;
            sweep_options.checkpoint = &checkpoint;
            if (std::filesystem::exists(ckpt_path)) {
                auto loaded = loadCheckpointFile(ckpt_path);
                if (loaded.ok())
                    checkpoint = loaded.take();
                else
                    warnc("fleet", "ignoring unusable checkpoint '{}': {}",
                         ckpt_path, loaded.error().message);
            }
        }
        const bool resuming = checkpoint.valid;
        if (resuming)
            fleetMetrics().resumes.increment();

        auto sweep = tryRunCriticalSweep(board, sweep_options);
        if (!sweep.ok()) {
            last = sweep.error();
            continue;
        }
        outcome.sweep = sweep.take();
        outcome.resumed = outcome.resumed || resuming;
        if (!ckpt_path.empty()) {
            std::error_code ec;
            std::filesystem::remove(ckpt_path, ec);
        }
        return outcome;
    }
    return last;
}

Expected<FleetJobOutcome>
FleetEngine::runMemJob(const FleetPlan &plan, const FleetJob &job) const
{
    // Harsh-environment injection and rail-region discovery drive a
    // pmbus::Board; neither applies to the non-BRAM backends.
    if (job.noise)
        fatal("fleet job {}: noise injection is BRAM-only", job.label());
    if (plan.discoverRegions)
        fatal("fleet job {}: region discovery is BRAM-only",
              job.label());

    auto device = mem::makeDevice(job.platform);
    fillMemPattern(*device, job.pattern);

    mem::MemSweepOptions options;
    options.runsPerLevel = plan.runsPerLevel;
    options.stepMv = plan.stepMv;
    options.ambientC = job.ambientC;
    options.collectPerDomain = plan.collectPerBram;
    // The stateless jitter stream is keyed by the job identity, like
    // the per-board run streams of the BRAM path.
    options.seed = hashSeed(job.label());

    FleetJobOutcome outcome;
    outcome.job = job;
    outcome.sweep =
        sweepFromMem(mem::runMemSweep(*device, options), job.pattern);
    return outcome;
}

namespace
{

/** UTC wall clock as "2026-08-05T12:34:56Z". */
std::string
nowIso8601()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm utc = {};
    gmtime_r(&now, &utc);
    return strFormat("{}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
                     utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                     utc.tm_hour, utc.tm_min, utc.tm_sec);
}

/** Canonical plan description the config digest hashes. */
std::string
canonicalPlan(const FleetPlan &plan, const FleetOptions &options)
{
    std::string canonical = strFormat(
        "runs={};step={};perbram={};regions={};recoveries={};"
        "attempts={};jobs=",
        plan.runsPerLevel, plan.stepMv, plan.collectPerBram ? 1 : 0,
        plan.discoverRegions ? 1 : 0, plan.recovery.maxRecoveriesPerRun,
        options.maxAttemptsPerJob);
    for (const auto &job : plan.jobs)
        canonical += job.label() + ";";
    return canonical;
}

/** Archive a finished run's provenance; failures warn, never fail. */
void
recordManifest(const FleetOptions &options, const FleetPlan &plan,
               const FleetResult &result, std::size_t workers,
               double duration_ms)
{
    RunManifest manifest;
    manifest.gitSha = bench::buildGitSha();
    manifest.startedAtIso = nowIso8601();
    manifest.configDigest = configDigest(canonicalPlan(plan, options));
    manifest.runId = strFormat(
        "{}-{}", manifest.configDigest.substr(0, 8),
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    for (const auto &job : plan.jobs) {
        manifest.jobLabels.push_back(job.label());
        manifest.noiseSeeds.push_back(job.noise ? job.noise->seed : 0);
        manifest.backends.push_back(mem::technologyName(
            mem::technologyOfName(job.platform)));
    }
    manifest.runsPerLevel = plan.runsPerLevel;
    manifest.stepMv = plan.stepMv;
    manifest.collectPerBram = plan.collectPerBram;
    manifest.discoverRegions = plan.discoverRegions;
    manifest.maxAttemptsPerJob = options.maxAttemptsPerJob;
    manifest.workers = workers;
    manifest.durationMs = duration_ms;
    manifest.jobRetries = result.jobRetries;
    manifest.crashRecoveries = result.resilience.crashRecoveries;
    manifest.checkpointResumes = result.resilience.checkpointResumes;
    for (const auto &die : result.dies)
        manifest.dieRates.emplace_back(die.platform,
                                       die.faultsPerMbitAtVcrash);
    if (!options.checkpointDir.empty())
        manifest.artifacts.push_back(options.checkpointDir);
    if (options.fvmCache)
        manifest.artifacts.push_back(options.fvmCache->directory());
    manifest.blackboxPaths = flightrec::FlightRecorder::global().dumps();
    for (const auto &[name, value] :
         telemetry::Registry::global().metrics().counters) {
        if (value)
            manifest.counters.emplace_back(name, value);
    }

    const Ledger ledger(options.ledgerDir);
    if (auto recorded = ledger.record(manifest); !recorded.ok())
        warnc("ledger", "{}", recorded.error().message);
}

} // namespace

Expected<FleetResult>
FleetEngine::run(const FleetPlan &plan, ThreadPool &pool)
{
    UVOLT_TRACE_SCOPE("fleet.run", [&] {
        return telemetry::TraceArgs{
            {"jobs", std::to_string(plan.jobs.size())}};
    });
    const auto run_start = std::chrono::steady_clock::now();
    FleetResult result;
    if (plan.jobs.empty())
        return result;

    // Warm the per-die chip models serially so workers alias instead of
    // racing on the synthesis lock, and create the checkpoint scratch
    // space before anyone needs it.
    for (const auto &job : plan.jobs) {
        if (mem::technologyOfName(job.platform) == mem::Technology::bram)
            (void)pmbus::sharedChipModel(
                fpga::findPlatform(job.platform));
    }
    if (!options_.checkpointDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.checkpointDir, ec);
    }

    // Every job writes its own pre-assigned slot; the pool's wait()
    // publishes the writes. Completion order never shows in the result.
    std::vector<std::optional<Expected<FleetJobOutcome>>> slots(
        plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        // Each job is one flow: a flow-start span here on the
        // submitting thread, the queue-wait recorded by whichever
        // worker dequeues it, the job body's spans as flow steps, and
        // a zero-width finish — one connected track per job in
        // Perfetto, whatever thread ran it.
        telemetry::TraceContext ctx;
        const std::uint64_t submit_ns = telemetry::nowNs();
        if (telemetry::Telemetry::enabled()) {
            ctx.flowId = telemetry::mintFlowId();
            ctx.spanId = telemetry::recordFlowSpan(
                "fleet.submit", submit_ns, 0,
                telemetry::TraceContext{ctx.flowId, 0},
                telemetry::FlowPoint::start,
                {{"job", plan.jobs[i].label()}});
        }
        pool.submit([this, &plan, &slots, i, submit_ns, ctx] {
            if (ctx.active()) {
                telemetry::recordFlowSpan(
                    "fleet.queue_wait", submit_ns,
                    telemetry::nowNs() - submit_ns, ctx,
                    telemetry::FlowPoint::step,
                    {{"job", plan.jobs[i].label()}});
            }
            telemetry::ContextScope scope(ctx);
            slots[i].emplace(runJob(plan, plan.jobs[i]));
            if (ctx.active()) {
                const std::uint64_t done_ns = telemetry::nowNs();
                telemetry::recordFlowSpan("fleet.done", done_ns, 0, ctx,
                                          telemetry::FlowPoint::finish);
            }
        });
    }
    pool.wait();

    // First failure in plan order wins, independent of finish order.
    for (auto &slot : slots) {
        if (!slot->ok())
            return slot->error();
    }

    result.jobs.reserve(plan.jobs.size());
    for (auto &slot : slots) {
        FleetJobOutcome outcome = slot->take();
        result.jobRetries +=
            static_cast<std::uint64_t>(outcome.attempts - 1);
        const ResilienceReport &r = outcome.sweep.resilience;
        result.resilience.crashRecoveries += r.crashRecoveries;
        result.resilience.runsRetried += r.runsRetried;
        result.resilience.linkRetransmits += r.linkRetransmits;
        result.resilience.pmbusRetries += r.pmbusRetries;
        result.resilience.checkpointResumes += r.checkpointResumes;
        result.jobs.push_back(std::move(outcome));
    }

    // Per-die aggregation in order of first appearance.
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const FleetJobOutcome &outcome = result.jobs[i];
        DieReport *report = nullptr;
        for (auto &existing : result.dies) {
            if (existing.platform == outcome.job.platform)
                report = &existing;
        }
        if (!report) {
            DieReport fresh;
            fresh.platform = outcome.job.platform;
            fresh.dieId = outcome.sweep.dieId;
            result.dies.push_back(std::move(fresh));
            report = &result.dies.back();
        }
        report->jobIndices.push_back(i);
    }
    for (auto &report : result.dies) {
        // Traits, not findPlatform: the die may be any backend. For
        // BRAM names the two describe the identical geometry.
        const mem::DeviceTraits traits =
            mem::traitsOfName(report.platform);
        report.technology = mem::technologyName(traits.technology);
        const fpga::Floorplan floorplan = fpga::Floorplan::columnGrid(
            traits.domainCount, traits.columnHeight);

        // The die's headline rate comes from its reference-pattern job
        // (the paper compares dies at 0xFFFF); first job as fallback.
        std::size_t rate_job = report.jobIndices.front();
        for (std::size_t idx : report.jobIndices) {
            if (isReferencePattern(result.jobs[idx].job.pattern)) {
                rate_job = idx;
                break;
            }
        }
        report.faultsPerMbitAtVcrash =
            result.jobs[rate_job].sweep.atVcrash().faultsPerMbit;

        if (!plan.collectPerBram)
            continue;
        std::vector<int> merged;
        for (std::size_t idx : report.jobIndices) {
            const Fvm fvm =
                fvmFromSweep(result.jobs[idx].sweep, floorplan);
            if (merged.empty()) {
                merged = fvm.perBramFaults();
                continue;
            }
            for (std::size_t b = 0; b < merged.size(); ++b)
                merged[b] = std::max(merged[b], fvm.faultsOf(
                                                    static_cast<
                                                        std::uint32_t>(b)));
        }
        report.mergedFvm.emplace(traits.name, floorplan,
                                 std::move(merged));

        if (options_.fvmCache) {
            if (auto stored = options_.fvmCache->storeKeyed(
                    FvmCache::keyForDevice(
                        traits, result.jobs[rate_job].job.pattern,
                        plan.runsPerLevel),
                    floorplan, *report.mergedFvm);
                !stored.ok())
                warnc("fleet", "{}", stored.error().message);
        }
    }

    if (!options_.ledgerDir.empty()) {
        const double duration_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - run_start)
                .count();
        recordManifest(options_, plan, result, pool.workerCount(),
                       duration_ms);
    }
    return result;
}

Expected<FleetResult>
FleetEngine::run(const FleetPlan &plan)
{
    ThreadPool inline_pool(0);
    return run(plan, inline_pool);
}

} // namespace uvolt::harness

/**
 * @file
 * Closed-loop minimum-voltage tracking with canary BRAMs.
 *
 * The paper measures Vmin offline and notes it moves with temperature
 * (ITD, Fig 8) and environment ("repeating these tests in more noisy
 * and harsh environments can cause observable faults above observed
 * Vmin"). A deployment therefore needs margin — unless it tracks the
 * boundary online. This governor does that with the paper's own
 * ingredients: a handful of spare BRAMs (chosen from the FVM's *most
 * vulnerable* population, so they fail before anything the design
 * cares about) are kept filled with 0xFFFF and re-read every control
 * step; the rail steps 10 mV down while the canaries stay clean and
 * steps back up the moment they fault, holding a configurable
 * guard distance above the observed failure level.
 *
 * Because the canaries are the chip's weakest cells under the
 * worst-case pattern, canary-clean implies payload-clean with margin —
 * the same ordering argument ICBP uses, run in reverse.
 *
 * In a harsh environment the reading itself can be wrong or missing, so
 * the control law is defensive: an uncertain canary read (serial link
 * exhausted) holds the setpoint rather than descending on silence, and
 * a crashed configuration is recovered (soft reset + canary re-arm)
 * followed by a guard-distance back-off. Every step reports its health
 * so a deployment can see when the loop is flying on instruments.
 */

#ifndef UVOLT_HARNESS_GOVERNOR_HH
#define UVOLT_HARNESS_GOVERNOR_HH

#include <cstdint>
#include <vector>

#include "harness/fvm.hh"
#include "pmbus/board.hh"

namespace uvolt::harness
{

/** Governor configuration. */
struct GovernorConfig
{
    int canaryCount = 8;     ///< spare BRAMs used as canaries
    int guardSteps = 1;      ///< 10 mV steps to hold above first-fault
    int floorMv = 0;         ///< never command below this (0 = Vcrash)
    int stepMv = 10;         ///< regulator granularity
};

/** What the control loop knows about its own last reading. */
enum class GovernorHealth
{
    ok,            ///< canary read succeeded; decision is trustworthy
    heldUncertain, ///< canary read uncertain (link gave up); held level
    recovered,     ///< configuration crashed; reconfigured and backed off
};

/** One control-loop step record. */
struct GovernorStep
{
    int commandedMv = 0;
    int canaryFaults = 0;
    bool backedOff = false; ///< this step raised the rail
    GovernorHealth health = GovernorHealth::ok;
    std::uint64_t linkRetries = 0; ///< serial retransmits this step
};

/**
 * The online Vmin tracker. Owns nothing: it drives a Board the caller
 * provides and reads only its canary BRAMs, so it composes with a
 * deployed Accelerator occupying the rest of the pool.
 */
class VoltageGovernor
{
  public:
    /**
     * @param board board under control
     * @param fvm the chip's map; canaries are its *most* vulnerable
     *        BRAMs not in @a reserved (the payload's placement)
     * @param reserved physical BRAMs the payload occupies
     */
    VoltageGovernor(pmbus::Board &board, const Fvm &fvm,
                    const std::vector<std::uint32_t> &reserved,
                    const GovernorConfig &config = {});

    /** Physical BRAMs chosen as canaries (most vulnerable first). */
    const std::vector<std::uint32_t> &canaries() const
    {
        return canaries_;
    }

    /**
     * Run one control step: read the canaries at the present level and
     * command the next setpoint (down one step if clean, up by
     * guardSteps if faulty). Returns the step record.
     */
    GovernorStep step();

    /**
     * Run the loop until the setpoint stabilizes (same level commanded
     * twice in a row) or @a max_steps elapse. Returns the trace.
     */
    std::vector<GovernorStep> settle(int max_steps = 100);

    /** The level the loop last commanded. */
    int setpointMv() const { return setpointMv_; }

  private:
    Expected<int> countCanaryFaults();
    void refillCanaries();

    pmbus::Board &board_;
    GovernorConfig config_;
    std::vector<std::uint32_t> canaries_;
    int setpointMv_;
    int floorMv_;
    int holdMv_ = 0;     ///< level we backed off to; do not descend past
    int cleanStreak_ = 0;
};

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_GOVERNOR_HH

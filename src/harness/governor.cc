#include "harness/governor.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::harness
{

namespace
{

/** Clean steps at the hold level before re-probing lower (ITD chase). */
constexpr int reprobeAfterCleanSteps = 8;

struct GovernorMetrics
{
    telemetry::Counter &steps =
        telemetry::Registry::global().counter("governor.steps");
    telemetry::Counter &backoffs =
        telemetry::Registry::global().counter("governor.backoffs");
    telemetry::Counter &heldUncertain =
        telemetry::Registry::global().counter("governor.held_uncertain");
    telemetry::Counter &recoveries =
        telemetry::Registry::global().counter("governor.recoveries");
    telemetry::Gauge &setpointMv =
        telemetry::Registry::global().gauge("governor.setpoint_mv");
};

GovernorMetrics &
governorMetrics()
{
    static GovernorMetrics metrics;
    return metrics;
}

} // namespace

VoltageGovernor::VoltageGovernor(pmbus::Board &board, const Fvm &fvm,
                                 const std::vector<std::uint32_t> &reserved,
                                 const GovernorConfig &config)
    : board_(board), config_(config)
{
    if (config_.canaryCount <= 0)
        fatal("governor needs at least one canary BRAM");

    std::vector<bool> taken(board_.device().bramCount(), false);
    for (std::uint32_t physical : reserved) {
        if (physical >= taken.size())
            fatal("reserved BRAM {} outside the device pool", physical);
        taken[physical] = true;
    }

    // Most vulnerable spare BRAMs first: they fault before the payload.
    const auto order = fvm.bramsByReliability();
    for (auto it = order.rbegin();
         it != order.rend() &&
         canaries_.size() < static_cast<std::size_t>(config_.canaryCount);
         ++it) {
        if (!taken[*it])
            canaries_.push_back(*it);
    }
    if (canaries_.size() < static_cast<std::size_t>(config_.canaryCount))
        fatal("governor: only {} spare BRAMs for {} canaries",
              canaries_.size(), config_.canaryCount);

    refillCanaries();

    setpointMv_ = board_.vccBramMv();
    floorMv_ = config_.floorMv > 0 ? config_.floorMv
                                   : board_.spec().calib.bramVcrashMv;
}

void
VoltageGovernor::refillCanaries()
{
    for (std::uint32_t canary : canaries_)
        board_.device().bram(canary).fill(0xFFFF);
}

Expected<int>
VoltageGovernor::countCanaryFaults()
{
    board_.startRun();
    int faults = 0;
    for (std::uint32_t canary : canaries_) {
        // Canaries are read over the serial link like any deployed
        // monitor would, so a harsh environment can make the reading
        // itself uncertain — which the control law must survive.
        auto observed = board_.tryReadBramToHost(canary);
        if (!observed.ok())
            return observed.error();
        for (std::uint16_t word : observed.value())
            faults += std::popcount(
                static_cast<unsigned>(word ^ 0xFFFFu) & 0xFFFFu);
    }
    return faults;
}

GovernorStep
VoltageGovernor::step()
{
    UVOLT_TRACE_SCOPE("governor.step", [&] {
        return telemetry::TraceArgs{
            {"setpoint_mv", std::to_string(setpointMv_)}};
    });
    governorMetrics().steps.increment();
    GovernorStep record;
    const std::uint64_t retransmits_before =
        board_.link().stats().retransmits;
    auto faults = countCanaryFaults();
    record.linkRetries =
        board_.link().stats().retransmits - retransmits_before;

    if (!faults.ok()) {
        if (faults.code() == Errc::crashDetected) {
            // The configuration died under us. Reconfigure, re-arm the
            // canaries (their fill comes back with the bitstream), and
            // back off by the guard distance before trusting any level
            // again.
            board_.softReset();
            refillCanaries();
            holdMv_ = setpointMv_ + config_.guardSteps * config_.stepMv;
            cleanStreak_ = 0;
            setpointMv_ = std::min(holdMv_, board_.spec().vnomMv);
            record.backedOff = true;
            record.health = GovernorHealth::recovered;
            governorMetrics().backoffs.increment();
            governorMetrics().recoveries.increment();
        } else {
            // Uncertain reading (the link gave up): a missing answer is
            // not a clean answer. Hold the present level; never descend
            // on uncertainty.
            cleanStreak_ = 0;
            record.health = GovernorHealth::heldUncertain;
            governorMetrics().heldUncertain.increment();
        }
        board_.setVccBramMv(setpointMv_);
        record.commandedMv = setpointMv_;
        governorMetrics().setpointMv.set(setpointMv_);
        return record;
    }
    record.canaryFaults = faults.value();

    static_assert(reprobeAfterCleanSteps > 1);
    if (record.canaryFaults > 0) {
        // Back off and hold: don't descend to this level again until a
        // long clean streak suggests conditions changed (ITD).
        holdMv_ = setpointMv_ + config_.guardSteps * config_.stepMv;
        cleanStreak_ = 0;
        setpointMv_ = std::min(holdMv_, board_.spec().vnomMv);
        record.backedOff = true;
        governorMetrics().backoffs.increment();
    } else {
        ++cleanStreak_;
        int floor = std::max(floorMv_, holdMv_);
        if (cleanStreak_ >= reprobeAfterCleanSteps && holdMv_ > 0) {
            // Conditions may have improved; forget the hold once.
            holdMv_ = 0;
            cleanStreak_ = 0;
            floor = floorMv_;
        }
        setpointMv_ = std::max(setpointMv_ - config_.stepMv, floor);
    }
    board_.setVccBramMv(setpointMv_);
    record.commandedMv = setpointMv_;
    governorMetrics().setpointMv.set(setpointMv_);
    return record;
}

std::vector<GovernorStep>
VoltageGovernor::settle(int max_steps)
{
    std::vector<GovernorStep> trace;
    int previous = -1;
    for (int i = 0; i < max_steps; ++i) {
        trace.push_back(step());
        const int commanded = trace.back().commandedMv;
        if (commanded == previous && !trace.back().backedOff &&
            trace.back().canaryFaults == 0 &&
            trace.back().health == GovernorHealth::ok) {
            break;
        }
        previous = commanded;
    }
    return trace;
}

} // namespace uvolt::harness

#include "harness/temperature.hh"

#include <cmath>

#include "util/logging.hh"

namespace uvolt::harness
{

double
TemperatureStudy::reductionFactor(double hot_c, double cold_c) const
{
    const SweepResult *hot = nullptr;
    const SweepResult *cold = nullptr;
    for (const auto &entry : series) {
        if (std::abs(entry.ambientC - hot_c) < 0.5)
            hot = &entry.sweep;
        if (std::abs(entry.ambientC - cold_c) < 0.5)
            cold = &entry.sweep;
    }
    if (!hot || !cold)
        fatal("temperature study lacks {} or {} degC series", hot_c, cold_c);
    const double hot_rate = hot->atVcrash().medianFaults;
    const double cold_rate = cold->atVcrash().medianFaults;
    if (hot_rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return cold_rate / hot_rate;
}

TemperatureStudy
runTemperatureStudy(pmbus::Board &board, const std::vector<double> &temps_c,
                    int runs_per_level)
{
    TemperatureStudy study;
    study.platform = board.spec().name;

    const double original_ambient = board.ambientC();
    for (double temp : temps_c) {
        board.setAmbientC(temp);
        SweepOptions options;
        options.runsPerLevel = runs_per_level;
        options.collectPerBram = false;
        TemperatureSeries entry;
        entry.ambientC = temp;
        entry.sweep = runCriticalSweep(board, options);
        study.series.push_back(std::move(entry));
    }
    board.setAmbientC(original_ambient);
    return study;
}

} // namespace uvolt::harness

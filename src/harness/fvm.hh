/**
 * @file
 * Fault Variation Map (FVM) extraction and rendering.
 *
 * The paper's key enabling artifact (Section II-C.3, Figs 6-7): because
 * undervolting faults are deterministic and stick to physical BRAM
 * locations across recompilations, the per-BRAM fault rates observed in a
 * characterization sweep can be stored as a chip-specific map keyed by
 * floorplan site. The ICBP placement technique (Section III-C) consumes
 * this map to find low-vulnerable BRAMs.
 */

#ifndef UVOLT_HARNESS_FVM_HH
#define UVOLT_HARNESS_FVM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/floorplan.hh"
#include "harness/experiment.hh"

namespace uvolt::harness
{

/** A chip's fault variation map. */
class Fvm
{
  public:
    /**
     * Build from per-BRAM fault counts (e.g. a SweepPoint's map, or the
     * accumulation of a whole sweep as in Fig 6).
     */
    Fvm(std::string platform, const fpga::Floorplan &floorplan,
        std::vector<int> per_bram_faults);

    const std::string &platform() const { return platform_; }

    std::uint32_t bramCount() const
    {
        return static_cast<std::uint32_t>(faults_.size());
    }

    /** Fault count of one BRAM. */
    int faultsOf(std::uint32_t bram) const { return faults_[bram]; }

    /** Fault rate of one BRAM as a fraction of its 16 kbit capacity. */
    double rateOf(std::uint32_t bram) const;

    /** Fraction of BRAMs with zero faults (38.9% on VC707 at Vcrash). */
    double faultFreeFraction() const;

    /** Max / mean per-BRAM fault rate over the whole chip. */
    double maxRate() const;
    double meanRate() const;

    /**
     * BRAM indices sorted by ascending fault count (ties by index), i.e.
     * most reliable first; the ICBP placer consumes a prefix of this.
     */
    std::vector<std::uint32_t> bramsByReliability() const;

    /**
     * Render the map as ASCII art on the floorplan, one character per
     * site (' ' empty, '.' zero faults, then 1-9/# buckets), mirroring
     * the paper's Fig 6/7 heat maps.
     */
    std::string render(const fpga::Floorplan &floorplan) const;

    const std::vector<int> &perBramFaults() const { return faults_; }

  private:
    std::string platform_;
    std::vector<int> faults_;
};

/**
 * Accumulate a whole critical-region sweep into one FVM: each BRAM's
 * entry is its fault count at the lowest swept voltage (the union map the
 * paper plots in Fig 6 when scaling Vmin -> Vcrash; counts are monotone
 * in depth, so the deepest point dominates).
 */
Fvm fvmFromSweep(const SweepResult &sweep,
                 const fpga::Floorplan &floorplan);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_FVM_HH

#include "harness/campaign.hh"

#include "harness/ledger.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

Campaign::Campaign()
{
    options_.ledgerDir = Ledger::defaultDirectory();
}

Campaign
Campaign::onPlatform(std::string platform)
{
    Campaign campaign;
    campaign.platforms_.push_back(std::move(platform));
    return campaign;
}

Campaign
Campaign::onPlatforms(std::vector<std::string> platforms)
{
    if (platforms.empty())
        fatal("Campaign::onPlatforms() needs at least one platform");
    Campaign campaign;
    campaign.platforms_ = std::move(platforms);
    return campaign;
}

Campaign
Campaign::onDevices(std::vector<std::string> devices)
{
    return onPlatforms(std::move(devices));
}

Campaign &
Campaign::withPattern(const PatternSpec &pattern)
{
    patterns_.push_back(pattern);
    return *this;
}

Campaign &
Campaign::withPatterns(const std::vector<PatternSpec> &patterns)
{
    patterns_.insert(patterns_.end(), patterns.begin(), patterns.end());
    return *this;
}

Campaign &
Campaign::atTemperature(double temp_c)
{
    temperaturesC_.push_back(temp_c);
    return *this;
}

Campaign &
Campaign::atTemperatures(const std::vector<double> &temps_c)
{
    temperaturesC_.insert(temperaturesC_.end(), temps_c.begin(),
                          temps_c.end());
    return *this;
}

Campaign &
Campaign::withNoise(const pmbus::NoiseConfig &noise)
{
    noise_ = noise;
    return *this;
}

Campaign &
Campaign::sweep(int runs_per_level)
{
    if (runs_per_level < 1)
        fatal("Campaign::sweep() needs at least one run per level, got {}",
              runs_per_level);
    runsPerLevel_ = runs_per_level;
    return *this;
}

Campaign &
Campaign::stepMv(int step_mv)
{
    if (step_mv < 1)
        fatal("Campaign::stepMv() needs a positive step, got {}", step_mv);
    stepMv_ = step_mv;
    return *this;
}

Campaign &
Campaign::perBramMaps(bool collect)
{
    collectPerBram_ = collect;
    return *this;
}

Campaign &
Campaign::discoverRegions(bool discover)
{
    discoverRegions_ = discover;
    return *this;
}

Campaign &
Campaign::recovery(const RecoveryPolicy &policy)
{
    recovery_ = policy;
    return *this;
}

Campaign &
Campaign::checkpointUnder(std::string directory)
{
    options_.checkpointDir = std::move(directory);
    return *this;
}

Campaign &
Campaign::cacheInto(FvmCache &cache)
{
    options_.fvmCache = &cache;
    return *this;
}

Campaign &
Campaign::ledgerUnder(std::string directory)
{
    options_.ledgerDir = std::move(directory);
    return *this;
}

Campaign &
Campaign::retries(int max_attempts_per_job)
{
    if (max_attempts_per_job < 1)
        fatal("Campaign::retries() needs at least one attempt, got {}",
              max_attempts_per_job);
    options_.maxAttemptsPerJob = max_attempts_per_job;
    return *this;
}

FleetPlan
Campaign::plan() const
{
    const std::vector<PatternSpec> patterns =
        patterns_.empty() ? std::vector<PatternSpec>{PatternSpec::allOnes()}
                          : patterns_;
    const std::vector<double> temps =
        temperaturesC_.empty() ? std::vector<double>{50.0}
                               : temperaturesC_;

    FleetPlan plan = FleetPlan::crossProduct(platforms_, patterns, temps);
    if (noise_) {
        for (auto &job : plan.jobs)
            job.noise = *noise_;
    }
    plan.runsPerLevel = runsPerLevel_;
    plan.stepMv = stepMv_;
    plan.collectPerBram = collectPerBram_;
    plan.recovery = recovery_;
    plan.discoverRegions = discoverRegions_;
    return plan;
}

Expected<FleetResult>
Campaign::run() const
{
    FleetEngine engine(options_);
    return engine.run(plan());
}

Expected<FleetResult>
Campaign::run(ThreadPool &pool) const
{
    FleetEngine engine(options_);
    return engine.run(plan(), pool);
}

} // namespace uvolt::harness

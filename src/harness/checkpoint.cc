#include "harness/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/fsio.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::harness
{

namespace
{

constexpr const char *magicLine = "uvolt-sweep-checkpoint v1";

void
writeDoubles(std::ostream &out, const char *key,
             const std::vector<double> &values)
{
    out << key << ' ' << values.size();
    for (double v : values)
        out << ' ' << v;
    out << '\n';
}

void
writeInts(std::ostream &out, const char *key,
          const std::vector<int> &values)
{
    out << key << ' ' << values.size();
    for (int v : values)
        out << ' ' << v;
    out << '\n';
}

/** Read one expected keyword; badCheckpoint otherwise. */
Expected<void>
expectKey(std::istream &in, const char *key)
{
    std::string token;
    if (!(in >> token) || token != key)
        return makeError(Errc::badCheckpoint,
                         "expected key '{}', found '{}'", key, token);
    return {};
}

template <typename T>
Expected<T>
readScalar(std::istream &in, const char *key)
{
    if (auto ok = expectKey(in, key); !ok.ok())
        return ok.error();
    T value{};
    if (!(in >> value))
        return makeError(Errc::badCheckpoint, "bad value for key '{}'",
                         key);
    return value;
}

Expected<std::vector<double>>
readDoubles(std::istream &in, const char *key)
{
    auto count = readScalar<std::size_t>(in, key);
    if (!count.ok())
        return count.error();
    std::vector<double> values(count.value());
    for (auto &v : values) {
        if (!(in >> v))
            return makeError(Errc::badCheckpoint,
                             "truncated list for key '{}'", key);
    }
    return values;
}

Expected<std::vector<int>>
readInts(std::istream &in, const char *key)
{
    auto count = readScalar<std::size_t>(in, key);
    if (!count.ok())
        return count.error();
    std::vector<int> values(count.value());
    for (auto &v : values) {
        if (!(in >> v))
            return makeError(Errc::badCheckpoint,
                             "truncated list for key '{}'", key);
    }
    return values;
}

} // namespace

void
saveCheckpoint(const SweepCheckpoint &checkpoint, std::ostream &out)
{
    out << magicLine << '\n';
    out << std::setprecision(17);
    out << "valid " << (checkpoint.valid ? 1 : 0) << '\n';
    out << "platform " << checkpoint.platform << '\n';
    if (checkpoint.pattern.kind == PatternSpec::Kind::Fixed) {
        out << "pattern fixed " << checkpoint.pattern.word << '\n';
    } else {
        out << "pattern random " << checkpoint.pattern.oneDensity << ' '
            << checkpoint.pattern.seed << '\n';
    }
    out << "ambientC " << checkpoint.ambientC << '\n';
    out << "runsPerLevel " << checkpoint.runsPerLevel << '\n';
    out << "stepMv " << checkpoint.stepMv << '\n';
    out << "fromMv " << checkpoint.fromMv << '\n';
    out << "downToMv " << checkpoint.downToMv << '\n';
    out << "currentLevelMv " << checkpoint.currentLevelMv << '\n';
    out << "runsStarted " << checkpoint.runsStarted << '\n';
    writeDoubles(out, "currentRunCounts", checkpoint.currentRunCounts);
    out << "points " << checkpoint.completedPoints.size() << '\n';
    for (const auto &point : checkpoint.completedPoints) {
        out << "point " << point.vccBramMv << '\n';
        writeDoubles(out, "runCounts", point.runCounts);
        out << "medianFaults " << point.medianFaults << '\n';
        out << "faultsPerMbit " << point.faultsPerMbit << '\n';
        out << "bramPowerW " << point.bramPowerW << '\n';
        out << "oneToZeroFraction " << point.oneToZeroFraction << '\n';
        writeInts(out, "perBramFaults", point.perBramFaults);
    }
    out << "end\n";
}

void
saveCheckpointFile(const SweepCheckpoint &checkpoint,
                   const std::string &path)
{
    UVOLT_TRACE_SCOPE("checkpoint.save", [&] {
        return telemetry::TraceArgs{{"path", path}};
    });
    telemetry::Registry::global().counter("checkpoint.saves").increment();
    std::ostringstream buffer;
    saveCheckpoint(checkpoint, buffer);
    if (!buffer.good())
        fatal("I/O error serializing checkpoint for '{}'", path);
    if (auto written = writeFileAtomic(path, buffer.str(),
                                       Errc::badCheckpoint);
        !written.ok())
        fatal("{}", written.error().message);
}

Expected<SweepCheckpoint>
loadCheckpoint(std::istream &in)
{
    std::string magic;
    if (!std::getline(in, magic) || magic != magicLine)
        return makeError(Errc::badCheckpoint,
                         "not a sweep checkpoint (header '{}')", magic);

    SweepCheckpoint checkpoint;

    auto valid = readScalar<int>(in, "valid");
    if (!valid.ok())
        return valid.error();
    checkpoint.valid = valid.value() != 0;

    auto platform = readScalar<std::string>(in, "platform");
    if (!platform.ok())
        return platform.error();
    checkpoint.platform = platform.value();

    auto kind = readScalar<std::string>(in, "pattern");
    if (!kind.ok())
        return kind.error();
    if (kind.value() == "fixed") {
        checkpoint.pattern.kind = PatternSpec::Kind::Fixed;
        if (!(in >> checkpoint.pattern.word))
            return makeError(Errc::badCheckpoint, "bad fixed pattern");
    } else if (kind.value() == "random") {
        checkpoint.pattern.kind = PatternSpec::Kind::Random;
        if (!(in >> checkpoint.pattern.oneDensity >>
              checkpoint.pattern.seed))
            return makeError(Errc::badCheckpoint, "bad random pattern");
    } else {
        return makeError(Errc::badCheckpoint, "unknown pattern kind '{}'",
                         kind.value());
    }

#define UVOLT_READ_FIELD(name, type)                                       \
    do {                                                                   \
        auto field = readScalar<type>(in, #name);                          \
        if (!field.ok())                                                   \
            return field.error();                                          \
        checkpoint.name = field.value();                                   \
    } while (0)

    UVOLT_READ_FIELD(ambientC, double);
    UVOLT_READ_FIELD(runsPerLevel, int);
    UVOLT_READ_FIELD(stepMv, int);
    UVOLT_READ_FIELD(fromMv, int);
    UVOLT_READ_FIELD(downToMv, int);
    UVOLT_READ_FIELD(currentLevelMv, int);
    UVOLT_READ_FIELD(runsStarted, std::uint64_t);
#undef UVOLT_READ_FIELD

    auto partial = readDoubles(in, "currentRunCounts");
    if (!partial.ok())
        return partial.error();
    checkpoint.currentRunCounts = partial.take();

    auto point_count = readScalar<std::size_t>(in, "points");
    if (!point_count.ok())
        return point_count.error();
    checkpoint.completedPoints.reserve(point_count.value());
    for (std::size_t i = 0; i < point_count.value(); ++i) {
        SweepPoint point;
        auto mv = readScalar<int>(in, "point");
        if (!mv.ok())
            return mv.error();
        point.vccBramMv = mv.value();
        auto counts = readDoubles(in, "runCounts");
        if (!counts.ok())
            return counts.error();
        point.runCounts = counts.take();
        // Rebuild the streaming statistics by replaying the counts in
        // their original order (Welford is order-sensitive, so replay
        // reproduces the uninterrupted accumulator bit for bit).
        for (double count : point.runCounts)
            point.runStats.add(count);

        auto median_faults = readScalar<double>(in, "medianFaults");
        if (!median_faults.ok())
            return median_faults.error();
        point.medianFaults = median_faults.value();
        auto per_mbit = readScalar<double>(in, "faultsPerMbit");
        if (!per_mbit.ok())
            return per_mbit.error();
        point.faultsPerMbit = per_mbit.value();
        auto power = readScalar<double>(in, "bramPowerW");
        if (!power.ok())
            return power.error();
        point.bramPowerW = power.value();
        auto polarity = readScalar<double>(in, "oneToZeroFraction");
        if (!polarity.ok())
            return polarity.error();
        point.oneToZeroFraction = polarity.value();
        auto per_bram = readInts(in, "perBramFaults");
        if (!per_bram.ok())
            return per_bram.error();
        point.perBramFaults = per_bram.take();

        checkpoint.completedPoints.push_back(std::move(point));
    }

    if (auto end = expectKey(in, "end"); !end.ok())
        return end.error();
    return checkpoint;
}

Expected<SweepCheckpoint>
loadCheckpointFile(const std::string &path)
{
    UVOLT_TRACE_SCOPE("checkpoint.load", [&] {
        return telemetry::TraceArgs{{"path", path}};
    });
    telemetry::Registry::global().counter("checkpoint.loads").increment();
    std::ifstream in(path);
    if (!in)
        return makeError(Errc::badCheckpoint,
                         "cannot open checkpoint file '{}'", path);
    return loadCheckpoint(in);
}

SweepCheckpoint
makeCheckpoint(const pmbus::Board &board, const SweepOptions &options,
               int from_mv, int down_to_mv)
{
    SweepCheckpoint checkpoint;
    checkpoint.platform = board.spec().name;
    checkpoint.pattern = options.pattern;
    checkpoint.ambientC = board.ambientC();
    checkpoint.runsPerLevel = options.runsPerLevel;
    checkpoint.stepMv = options.stepMv;
    checkpoint.fromMv = from_mv;
    checkpoint.downToMv = down_to_mv;
    checkpoint.runsStarted = board.runsStarted();
    return checkpoint;
}

Expected<void>
tryValidateCheckpoint(const SweepCheckpoint &checkpoint,
                      const pmbus::Board &board,
                      const SweepOptions &options, int from_mv,
                      int down_to_mv)
{
    if (checkpoint.platform != board.spec().name)
        return makeError(Errc::badCheckpoint,
                         "checkpoint belongs to {}, board is {}",
                         checkpoint.platform, board.spec().name);
    if (checkpoint.pattern.label() != options.pattern.label() ||
        checkpoint.pattern.kind != options.pattern.kind ||
        checkpoint.pattern.word != options.pattern.word ||
        checkpoint.pattern.seed != options.pattern.seed)
        return makeError(Errc::badCheckpoint,
                         "checkpoint pattern {} does not match campaign "
                         "pattern {}",
                         checkpoint.pattern.label(),
                         options.pattern.label());
    if (checkpoint.runsPerLevel != options.runsPerLevel ||
        checkpoint.stepMv != options.stepMv ||
        checkpoint.fromMv != from_mv || checkpoint.downToMv != down_to_mv)
        return makeError(Errc::badCheckpoint,
                         "checkpoint campaign shape ({} runs/level, {} mV "
                         "steps, {}..{} mV) does not match requested ({} "
                         "runs/level, {} mV steps, {}..{} mV)",
                         checkpoint.runsPerLevel, checkpoint.stepMv,
                         checkpoint.fromMv, checkpoint.downToMv,
                         options.runsPerLevel, options.stepMv, from_mv,
                         down_to_mv);
    if (checkpoint.ambientC != board.ambientC())
        return makeError(Errc::badCheckpoint,
                         "checkpoint ambient {} degC does not match board "
                         "ambient {} degC",
                         checkpoint.ambientC, board.ambientC());
    return {};
}

void
validateCheckpoint(const SweepCheckpoint &checkpoint,
                   const pmbus::Board &board, const SweepOptions &options,
                   int from_mv, int down_to_mv)
{
    tryValidateCheckpoint(checkpoint, board, options, from_mv, down_to_mv)
        .orFatal();
}

} // namespace uvolt::harness

/**
 * @file
 * The characterization methodology of the paper, Section II-A.
 *
 * Two campaigns are implemented:
 *
 *  - discoverRegions(): sweep a rail down from nominal in 10 mV steps to
 *    locate the SAFE / CRITICAL / CRASH boundaries of Fig 1 (Vmin = the
 *    lowest fault-free level, Vcrash = the lowest operable level).
 *
 *  - runCriticalSweep(): the paper's Listing 1 — for each 10 mV step from
 *    Vmin down to Vcrash, repeat 100 times: settle, read all BRAMs back
 *    to the host, and analyze fault rate and location. Reported rates are
 *    medians of the 100 runs; stability statistics (Table II) come from
 *    the same population.
 */

#ifndef UVOLT_HARNESS_EXPERIMENT_HH
#define UVOLT_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/voltage_rail.hh"
#include "pmbus/board.hh"
#include "util/stats.hh"

namespace uvolt::harness
{

/** Initial BRAM content for a campaign. */
struct PatternSpec
{
    enum class Kind
    {
        Fixed,   ///< every row gets the same 16-bit word
        Random,  ///< i.i.d. bits with the given "1" density
    };

    Kind kind = Kind::Fixed;
    std::uint16_t word = 0xFFFF; ///< for Kind::Fixed
    double oneDensity = 0.5;     ///< for Kind::Random
    std::uint64_t seed = 1;      ///< for Kind::Random

    /** The paper's default pattern (highest fault rate). */
    static PatternSpec allOnes() { return {}; }

    static PatternSpec
    fixed(std::uint16_t word)
    {
        PatternSpec spec;
        spec.word = word;
        return spec;
    }

    static PatternSpec
    random(double one_density, std::uint64_t seed)
    {
        PatternSpec spec;
        spec.kind = Kind::Random;
        spec.oneDensity = one_density;
        spec.seed = seed;
        return spec;
    }

    /** Human-readable label, e.g. "16'hFFFF" or "random-50%". */
    std::string label() const;
};

/** Initialize every BRAM of the board per the pattern. */
void fillPattern(pmbus::Board &board, const PatternSpec &pattern);

/** Fig 1 result for one rail of one platform. */
struct RegionResult
{
    std::string platform;
    fpga::RailId rail;
    int vnomMv;
    int vminMv;   ///< lowest level with zero observed faults
    int vcrashMv; ///< lowest level at which the design still operates

    /** Guardband fraction: (Vnom - Vmin) / Vnom. */
    double guardband() const;
};

/**
 * Locate the SAFE/CRITICAL/CRASH boundaries of a rail by stepping down
 * from nominal. BRAM faults are probed with pattern 0xFFFF; VCCINT
 * faults are probed through the design's self-check path.
 */
RegionResult discoverRegions(pmbus::Board &board, fpga::RailId rail,
                             int runs_per_level = 5);

/** One voltage level of a Listing-1 sweep. */
struct SweepPoint
{
    int vccBramMv = 0;

    /** Fault counts over the run population (whole device). */
    RunningStats runStats;

    /** Median fault count of the runs (what the paper reports). */
    double medianFaults = 0.0;

    /** Median fault count normalized per Mbit. */
    double faultsPerMbit = 0.0;

    /** Deterministic (zero-jitter) per-BRAM fault counts at this level. */
    std::vector<int> perBramFaults;

    /** Power-meter reading of the BRAM rail at this level, watts. */
    double bramPowerW = 0.0;

    /** Share of observed flips that read "1" as "0" (zero-jitter run). */
    double oneToZeroFraction = 1.0;
};

/** A full Listing-1 campaign. */
struct SweepResult
{
    std::string platform;
    PatternSpec pattern;
    double ambientC = 50.0;
    int runsPerLevel = 100;
    std::vector<SweepPoint> points; ///< ordered Vmin -> Vcrash

    /** The point at the lowest operable voltage. */
    const SweepPoint &atVcrash() const;

    /** Point at a specific level; fatal() if the sweep skipped it. */
    const SweepPoint &at(int vcc_bram_mv) const;
};

/** Options for runCriticalSweep(). */
struct SweepOptions
{
    PatternSpec pattern = PatternSpec::allOnes();
    int runsPerLevel = 100;  ///< the paper's statistical population
    int stepMv = 10;         ///< regulator DAC granularity
    int fromMv = 0;          ///< 0 = start at the platform's Vmin
    int downToMv = 0;        ///< 0 = stop at the platform's Vcrash
    bool collectPerBram = true;
};

/**
 * The paper's Listing 1: sweep VCCBRAM through the CRITICAL region and
 * measure fault statistics at every step. Leaves the board soft-reset.
 */
SweepResult runCriticalSweep(pmbus::Board &board,
                             const SweepOptions &options = {});

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_EXPERIMENT_HH

/**
 * @file
 * The characterization methodology of the paper, Section II-A.
 *
 * Two campaigns are implemented:
 *
 *  - discoverRegions(): sweep a rail down from nominal in 10 mV steps to
 *    locate the SAFE / CRITICAL / CRASH boundaries of Fig 1 (Vmin = the
 *    lowest fault-free level, Vcrash = the lowest operable level).
 *
 *  - runCriticalSweep(): the paper's Listing 1 — for each 10 mV step from
 *    Vmin down to Vcrash, repeat 100 times: settle, read all BRAMs back
 *    to the host, and analyze fault rate and location. Reported rates are
 *    medians of the 100 runs; stability statistics (Table II) come from
 *    the same population.
 *
 * Both campaigns are resilient: a watchdog detects DONE-low (real or
 * injected spurious crashes), recovers the board by reconfiguration —
 * soft reset, pattern re-fill, setpoint restore — and resumes from a
 * per-level checkpoint of partial run counts, retrying the interrupted
 * run under its original supply jitter so the completed campaign is
 * bit-identical to an undisturbed one. The checkpoint can also be
 * serialized (harness/checkpoint.hh) to survive host-process death.
 */

#ifndef UVOLT_HARNESS_EXPERIMENT_HH
#define UVOLT_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/voltage_rail.hh"
#include "pmbus/board.hh"
#include "util/error.hh"
#include "util/stats.hh"

namespace uvolt::harness
{

/** Initial BRAM content for a campaign. */
struct PatternSpec
{
    enum class Kind
    {
        Fixed,   ///< every row gets the same 16-bit word
        Random,  ///< i.i.d. bits with the given "1" density
    };

    Kind kind = Kind::Fixed;
    std::uint16_t word = 0xFFFF; ///< for Kind::Fixed
    double oneDensity = 0.5;     ///< for Kind::Random
    std::uint64_t seed = 1;      ///< for Kind::Random

    /** The paper's default pattern (highest fault rate). */
    static PatternSpec allOnes() { return {}; }

    static PatternSpec
    fixed(std::uint16_t word)
    {
        PatternSpec spec;
        spec.word = word;
        return spec;
    }

    static PatternSpec
    random(double one_density, std::uint64_t seed)
    {
        PatternSpec spec;
        spec.kind = Kind::Random;
        spec.oneDensity = one_density;
        spec.seed = seed;
        return spec;
    }

    /** Human-readable label, e.g. "16'hFFFF" or "random-50%". */
    std::string label() const;
};

/** Initialize every BRAM of the board per the pattern. */
void fillPattern(pmbus::Board &board, const PatternSpec &pattern);

/** Fig 1 result for one rail of one platform. */
struct RegionResult
{
    std::string platform;
    fpga::RailId rail;
    int vnomMv;
    int vminMv;   ///< lowest level with zero observed faults
    int vcrashMv; ///< lowest level at which the design still operates

    /** Guardband fraction: (Vnom - Vmin) / Vnom. */
    double guardband() const;
};

/** Crash-recovery budget of a campaign engine. */
struct RecoveryPolicy
{
    int maxRecoveriesPerRun = 16; ///< watchdog budget for one run/pass
};

/** What the environment did to a campaign, and what it cost to survive. */
struct ResilienceReport
{
    std::uint64_t crashRecoveries = 0; ///< DONE-low events recovered
    std::uint64_t runsRetried = 0;     ///< measurement runs re-executed
    std::uint64_t linkRetransmits = 0; ///< serial retries during campaign
    std::uint64_t pmbusRetries = 0;    ///< PMBus retries during campaign
    std::uint64_t checkpointResumes = 0; ///< campaigns resumed mid-level
};

/**
 * Locate the SAFE/CRITICAL/CRASH boundaries of a rail by stepping down
 * from nominal. BRAM faults are probed with pattern 0xFFFF; VCCINT
 * faults are probed through the design's self-check path. Spurious
 * DONE-low events are recovered by reconfiguration and the probe is
 * retried under its original jitter.
 *
 * Recoverable-error variant: an environment the retry/recovery budget
 * cannot absorb (exhausted link/PMBus/recovery attempts) comes back as
 * an Error instead of terminating, so campaign engines can retry or
 * reschedule the die.
 */
Expected<RegionResult> tryDiscoverRegions(pmbus::Board &board,
                                          fpga::RailId rail,
                                          int runs_per_level = 5);

/** Fatal-on-error convenience wrapper (the "advanced"/legacy path). */
RegionResult discoverRegions(pmbus::Board &board, fpga::RailId rail,
                             int runs_per_level = 5);

/** One voltage level of a Listing-1 sweep. */
struct SweepPoint
{
    int vccBramMv = 0;

    /** Fault counts over the run population (whole device). */
    RunningStats runStats;

    /** Raw per-run fault counts (checkpoint + median source). */
    std::vector<double> runCounts;

    /** Median fault count of the runs (what the paper reports). */
    double medianFaults = 0.0;

    /** Median fault count normalized per Mbit. */
    double faultsPerMbit = 0.0;

    /** Deterministic (zero-jitter) per-BRAM fault counts at this level. */
    std::vector<int> perBramFaults;

    /** Power-meter reading of the BRAM rail at this level, watts. */
    double bramPowerW = 0.0;

    /** Share of observed flips that read "1" as "0" (zero-jitter run). */
    double oneToZeroFraction = 1.0;
};

/**
 * Resumable campaign state: everything needed to continue a sweep that
 * was interrupted mid-level — completed points plus the partial run
 * counts of the level in progress and the run-jitter stream cursor.
 * Serialize with harness/checkpoint.hh to survive process death.
 */
struct SweepCheckpoint
{
    bool valid = false;      ///< holds resumable state
    std::string platform;    ///< board the campaign ran on
    PatternSpec pattern;     ///< campaign pattern (must match on resume)
    double ambientC = 50.0;
    int runsPerLevel = 0;
    int stepMv = 10;
    int fromMv = 0;          ///< resolved first level of the campaign
    int downToMv = 0;        ///< resolved last level of the campaign
    int currentLevelMv = 0;  ///< level in progress
    std::uint64_t runsStarted = 0; ///< Board run-jitter stream cursor
    std::vector<double> currentRunCounts; ///< finished runs at the level
    std::vector<SweepPoint> completedPoints;
};

/** A full Listing-1 campaign. */
struct SweepResult
{
    std::string platform;
    std::string dieId; ///< board serial: tells identical platforms apart
    PatternSpec pattern;
    double ambientC = 50.0;
    int runsPerLevel = 100;
    std::vector<SweepPoint> points; ///< ordered Vmin -> Vcrash

    /** Retry/recovery accounting for the whole campaign. */
    ResilienceReport resilience;

    /** Whether the sweep stopped early on a maxLevels budget. */
    bool truncated = false;

    /** The point at the lowest operable voltage. */
    const SweepPoint &atVcrash() const;

    /**
     * Point at a specific level; fatal() if the sweep skipped it. The
     * diagnostic names the board *and die* (fleet campaigns hold many
     * sweeps of identical platforms) plus the levels actually measured.
     */
    const SweepPoint &at(int vcc_bram_mv) const;

    /** "VC707 (die 1308-6520)", or just the platform when no die id. */
    std::string describe() const;
};

/** Options for runCriticalSweep(). */
struct SweepOptions
{
    PatternSpec pattern = PatternSpec::allOnes();
    int runsPerLevel = 100;  ///< the paper's statistical population
    int stepMv = 10;         ///< regulator DAC granularity
    int fromMv = 0;          ///< 0 = start at the platform's Vmin
    int downToMv = 0;        ///< 0 = stop at the platform's Vcrash
    bool collectPerBram = true;
    RecoveryPolicy recovery; ///< watchdog budget under harsh conditions

    /**
     * Measure at most this many levels this call (0 = unlimited): a
     * time-slicing budget. A truncated sweep leaves @a checkpoint valid
     * so a later call finishes the campaign.
     */
    int maxLevels = 0;

    /**
     * Optional resumable state. If it holds a valid checkpoint for this
     * board/pattern, the sweep resumes from it (completed levels are not
     * re-measured and the interrupted level keeps its partial runs);
     * either way it is kept current as the campaign progresses.
     */
    SweepCheckpoint *checkpoint = nullptr;

    /** If nonempty, serialize the checkpoint here after every level. */
    std::string checkpointPath;
};

/**
 * The paper's Listing 1: sweep VCCBRAM through the CRITICAL region and
 * measure fault statistics at every step. Leaves the board soft-reset.
 * Completes under injected harsh-environment faults with bit-identical
 * per-level statistics (retries, recovery, and checkpoint resume fully
 * mask every maskable fault class).
 *
 * Recoverable-error variant: exhausted retry/recovery budgets and
 * mismatched checkpoints come back as Errors (recoveryExhausted,
 * linkExhausted, pmbusExhausted, badCheckpoint) instead of terminating
 * the process; the fleet engine retries such jobs from their last
 * checkpoint.
 */
Expected<SweepResult> tryRunCriticalSweep(pmbus::Board &board,
                                          const SweepOptions &options = {});

/** Fatal-on-error convenience wrapper (the "advanced"/legacy path). */
SweepResult runCriticalSweep(pmbus::Board &board,
                             const SweepOptions &options = {});

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_EXPERIMENT_HH

#include "harness/structure.hh"

#include <algorithm>
#include <map>

#include "util/stats.hh"

namespace uvolt::harness
{

double
BramStructure::columnChiSquare() const
{
    if (faults == 0)
        return 0.0;
    const double expected =
        static_cast<double>(faults) / fpga::bramCols;
    double chi = 0.0;
    for (int count : perColumn) {
        const double diff = count - expected;
        chi += diff * diff / expected;
    }
    return chi;
}

double
BramStructure::topTwoColumnShare() const
{
    if (faults == 0)
        return 0.0;
    auto sorted = perColumn;
    std::sort(sorted.rbegin(), sorted.rend());
    return static_cast<double>(sorted[0] + sorted[1]) /
        static_cast<double>(faults);
}

double
StructureReport::meanTopTwoShare(int min_faults) const
{
    RunningStats stats;
    for (const auto &entry : perBram) {
        if (entry.faults >= min_faults)
            stats.add(entry.topTwoColumnShare());
    }
    return stats.mean();
}

double
StructureReport::medianChiSquare(int min_faults) const
{
    std::vector<double> scores;
    for (const auto &entry : perBram) {
        if (entry.faults >= min_faults)
            scores.push_back(entry.columnChiSquare());
    }
    return scores.empty() ? 0.0 : median(std::move(scores));
}

std::string
renderBramMap(const BramStructure &bram,
              const std::vector<FaultObservation> &faults, int fold_rows)
{
    if (fold_rows <= 0)
        fold_rows = 32;
    const int bands = (fpga::bramRows + fold_rows - 1) / fold_rows;
    std::vector<std::array<int, fpga::bramCols>> grid(
        static_cast<std::size_t>(bands));
    for (auto &band : grid)
        band.fill(0);
    for (const FaultObservation &fault : faults) {
        if (fault.bram != bram.bram)
            continue;
        ++grid[static_cast<std::size_t>(fault.row / fold_rows)]
              [fault.col];
    }

    std::string art;
    art.reserve(static_cast<std::size_t>(bands) * (fpga::bramCols + 1));
    // MSB (col 15) on the left, like a register diagram.
    for (int band = 0; band < bands; ++band) {
        for (int col = fpga::bramCols - 1; col >= 0; --col) {
            const int count = grid[static_cast<std::size_t>(band)]
                                  [col];
            if (count == 0)
                art.push_back('.');
            else if (count <= 9)
                art.push_back(static_cast<char>('0' + count));
            else
                art.push_back('#');
        }
        art.push_back('\n');
    }
    return art;
}

StructureReport
analyzeStructure(const std::vector<FaultObservation> &faults)
{
    StructureReport report;
    std::map<std::uint32_t, BramStructure> by_bram;
    for (const FaultObservation &fault : faults) {
        auto &entry = by_bram[fault.bram];
        entry.bram = fault.bram;
        ++entry.faults;
        ++entry.perColumn[fault.col];
        ++report.columnTotals[fault.col];
        ++report.totalFaults;
    }
    report.perBram.reserve(by_bram.size());
    for (auto &[bram, entry] : by_bram)
        report.perBram.push_back(entry);
    return report;
}

} // namespace uvolt::harness

/**
 * @file
 * Serialized sweep checkpoints: crash recovery for the *host*, not just
 * the board. The paper's Listing-1 campaign is hours of wall-clock on
 * real hardware; a host-process death should not restart it from
 * scratch. A SweepCheckpoint (harness/experiment.hh) can be written to
 * a stream/file after every completed level and loaded by a later
 * process, which resumes the campaign bit-identically: completed points
 * are trusted, the interrupted level keeps its partial run counts, and
 * the board's run-jitter stream is fast-forwarded to the stored cursor.
 *
 * Format: versioned line-oriented text ("uvolt-sweep-checkpoint v1"),
 * one key per line, vectors as counted lists. Human-inspectable and
 * stable across platforms.
 */

#ifndef UVOLT_HARNESS_CHECKPOINT_HH
#define UVOLT_HARNESS_CHECKPOINT_HH

#include <iosfwd>
#include <string>

#include "harness/experiment.hh"
#include "util/error.hh"

namespace uvolt::harness
{

/** Serialize a checkpoint (valid or not) to a stream. */
void saveCheckpoint(const SweepCheckpoint &checkpoint, std::ostream &out);

/** Serialize atomically-ish to a file (write temp, then rename). */
void saveCheckpointFile(const SweepCheckpoint &checkpoint,
                        const std::string &path);

/** Parse a checkpoint; badCheckpoint on malformed/mismatched input. */
Expected<SweepCheckpoint> loadCheckpoint(std::istream &in);

/** Load from a file; badCheckpoint when unreadable or malformed. */
Expected<SweepCheckpoint> loadCheckpointFile(const std::string &path);

/** Build the header of a fresh checkpoint for a campaign. */
SweepCheckpoint makeCheckpoint(const pmbus::Board &board,
                               const SweepOptions &options, int from_mv,
                               int down_to_mv);

/**
 * badCheckpoint unless @a checkpoint belongs to this board/pattern/
 * campaign shape (platform, pattern, runs per level, step, range).
 */
Expected<void> tryValidateCheckpoint(const SweepCheckpoint &checkpoint,
                                     const pmbus::Board &board,
                                     const SweepOptions &options,
                                     int from_mv, int down_to_mv);

/** Fatal-on-mismatch wrapper of tryValidateCheckpoint(). */
void validateCheckpoint(const SweepCheckpoint &checkpoint,
                        const pmbus::Board &board,
                        const SweepOptions &options, int from_mv,
                        int down_to_mv);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_CHECKPOINT_HH

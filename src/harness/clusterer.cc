#include "harness/clusterer.hh"

#include <algorithm>

#include "fpga/bram.hh"
#include "util/kmeans.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

const char *
vulnClassName(VulnClass cls)
{
    switch (cls) {
      case VulnClass::Low:
        return "low-vulnerable";
      case VulnClass::Mid:
        return "mid-vulnerable";
      case VulnClass::High:
        return "high-vulnerable";
    }
    panic("vulnClassName: invalid class");
}

double
ClusterReport::shareOf(VulnClass cls) const
{
    const auto index = static_cast<std::size_t>(cls);
    if (index >= sizes.size())
        return 0.0;
    std::size_t total = 0;
    for (std::size_t size : sizes)
        total += size;
    return total == 0
        ? 0.0
        : static_cast<double>(sizes[index]) / static_cast<double>(total);
}

ClusterReport
clusterBrams(const Fvm &fvm, std::size_t k)
{
    if (k == 0 || k > 3)
        fatal("clusterBrams supports 1..3 classes, got {}", k);

    std::vector<double> rates(fvm.bramCount());
    for (std::uint32_t b = 0; b < fvm.bramCount(); ++b)
        rates[b] = fvm.rateOf(b);

    const KMeansResult clusters = kMeans1d(rates, k);

    ClusterReport report;
    report.classOf.resize(fvm.bramCount());
    report.sizes.assign(k, 0);
    report.meanRates.assign(k, 0.0);
    report.meanCounts.assign(k, 0.0);

    for (std::uint32_t b = 0; b < fvm.bramCount(); ++b) {
        const std::size_t cls = clusters.assignment[b];
        report.classOf[b] = static_cast<VulnClass>(cls);
        ++report.sizes[cls];
        report.meanRates[cls] += rates[b];
        report.meanCounts[cls] += static_cast<double>(fvm.faultsOf(b));
    }
    for (std::size_t cls = 0; cls < k; ++cls) {
        if (report.sizes[cls] > 0) {
            report.meanRates[cls] /= static_cast<double>(report.sizes[cls]);
            report.meanCounts[cls] /=
                static_cast<double>(report.sizes[cls]);
        }
    }

    // Low-vulnerable pool in reliability order (zero-fault BRAMs first).
    for (std::uint32_t b : fvm.bramsByReliability()) {
        if (report.classOf[b] == VulnClass::Low)
            report.lowVulnerableBrams.push_back(b);
    }
    return report;
}

} // namespace uvolt::harness

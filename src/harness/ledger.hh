/**
 * @file
 * Run-provenance ledger: every campaign leaves a diffable manifest.
 *
 * The paper's claims are statistics over long characterization
 * campaigns; comparing two campaigns (across machines, branches, or
 * months) is only meaningful when each run's exact configuration,
 * seeds, concurrency, cost, and telemetry are archived next to its
 * results. MoRS (arXiv:2110.05855) builds its SRAM fault models from
 * exactly such archived characterization runs; this ledger gives the
 * fleet engine the same discipline automatically.
 *
 * Every FleetEngine run with a ledger directory configured (the
 * Campaign facade turns this on by default, under results/ledger/ or
 * $UVOLT_LEDGER_DIR) writes:
 *
 *   - <dir>/run_manifest.json — the latest run, fixed name so scripts
 *     and the acceptance flow always find the most recent manifest;
 *   - <dir>/<run_id>.json — the same document under its unique id
 *     (config digest + wall-clock stamp), the append-only history.
 *
 * The manifest is the schema-versioned "uvolt-run-manifest-v1" JSON
 * document: config digest, per-job seeds, worker count, duration, a
 * telemetry counter snapshot, artifact paths, and per-die headline
 * rates. RunManifest::load() parses it back (util/json.hh), so tools
 * and tests can treat the ledger as a queryable record instead of an
 * opaque log; scripts/check_regression.py accepts a manifest pair for
 * duration/counter drift checks.
 */

#ifndef UVOLT_HARNESS_LEDGER_HH
#define UVOLT_HARNESS_LEDGER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace uvolt::harness
{

/** One archived campaign run. */
struct RunManifest
{
    /** Schema tag every reader checks first. */
    static constexpr const char *schema = "uvolt-run-manifest-v1";

    std::string tool = "FleetEngine"; ///< what produced the run
    std::string runId;          ///< "<digest8>-<epoch_ms>" (unique)
    std::string gitSha;         ///< build provenance
    std::string startedAtIso;   ///< wall-clock UTC, ISO 8601
    std::string configDigest;   ///< FNV-1a over the canonical plan

    // The plan, summarized.
    std::vector<std::string> jobLabels;   ///< plan order
    std::vector<std::uint64_t> noiseSeeds; ///< per job; 0 = quiet
    /** Per-job memory technology tag ("bram", "hbm", "sram"); parallel
     *  to jobLabels. Absent entries in old manifests read as "bram". */
    std::vector<std::string> backends;
    int runsPerLevel = 0;
    int stepMv = 0;
    bool collectPerBram = true;
    bool discoverRegions = false;
    int maxAttemptsPerJob = 0;

    // The execution.
    std::uint64_t workers = 0; ///< pool size (0 = inline serial)
    double durationMs = 0.0;
    std::uint64_t jobRetries = 0;
    std::uint64_t crashRecoveries = 0;
    std::uint64_t checkpointResumes = 0;

    /** Headline result per die: (platform, faults/Mbit at Vcrash). */
    std::vector<std::pair<std::string, double>> dieRates;

    /** Output/scratch locations tied to this run (may be empty). */
    std::vector<std::string> artifacts;

    // Observability artifacts: where to look when this run needs to be
    // inspected, not just reproduced. Empty when telemetry was off.
    std::string tracePath;      ///< Chrome trace JSON of the run
    std::string prometheusPath; ///< last metrics exposition snapshot
    std::vector<std::string> blackboxPaths; ///< flight-recorder dumps

    /** Telemetry counters at completion (nonzero entries only). */
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /** Serialize as the "uvolt-run-manifest-v1" document. */
    std::string toJson() const;

    /** Parse a manifest document (schema checked). */
    static Expected<RunManifest> fromJson(std::string_view text);

    /** Load and parse the manifest at @a path. */
    static Expected<RunManifest> load(const std::string &path);
};

/** FNV-1a 64-bit over a canonical description, as 16 hex digits. */
std::string configDigest(const std::string &canonical);

/** The append-only manifest archive. */
class Ledger
{
  public:
    /** $UVOLT_LEDGER_DIR, or "results/ledger" when unset. */
    static std::string defaultDirectory();

    explicit Ledger(std::string directory = defaultDirectory());

    const std::string &directory() const { return directory_; }

    /**
     * Write @a manifest as both run_manifest.json (latest) and
     * <run_id>.json (history). I/O failure comes back as an Error so
     * campaigns in read-only environments keep running.
     */
    Expected<void> record(const RunManifest &manifest) const;

    /** Path of the latest-run manifest in this ledger. */
    std::string latestPath() const;

  private:
    std::string directory_;
};

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_LEDGER_HH

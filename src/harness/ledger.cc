#include "harness/ledger.hh"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/format.hh"
#include "util/fsio.hh"
#include "util/json.hh"

namespace uvolt::harness
{

std::string
configDigest(const std::string &canonical)
{
    std::uint64_t hash = 14695981039346656037ull; // FNV offset basis
    for (char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull; // FNV prime
    }
    return strFormat("{:016x}", hash);
}

std::string
RunManifest::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"" << schema << "\",\n";
    out << "  \"tool\": \"" << json::escaped(tool) << "\",\n";
    out << "  \"run_id\": \"" << json::escaped(runId) << "\",\n";
    out << "  \"git_sha\": \"" << json::escaped(gitSha) << "\",\n";
    out << "  \"started_at\": \"" << json::escaped(startedAtIso)
        << "\",\n";
    out << "  \"config_digest\": \"" << json::escaped(configDigest)
        << "\",\n";
    out << "  \"plan\": {\n";
    out << "    \"runs_per_level\": " << runsPerLevel << ",\n";
    out << "    \"step_mv\": " << stepMv << ",\n";
    out << "    \"collect_per_bram\": "
        << (collectPerBram ? "true" : "false") << ",\n";
    out << "    \"discover_regions\": "
        << (discoverRegions ? "true" : "false") << ",\n";
    out << "    \"max_attempts_per_job\": " << maxAttemptsPerJob
        << ",\n";
    out << "    \"jobs\": [";
    for (std::size_t i = 0; i < jobLabels.size(); ++i) {
        out << (i ? "," : "") << "\n      {\"label\": \""
            << json::escaped(jobLabels[i]) << "\", \"noise_seed\": "
            << (i < noiseSeeds.size() ? noiseSeeds[i] : 0)
            << ", \"backend\": \""
            << json::escaped(i < backends.size() ? backends[i] : "bram")
            << "\"}";
    }
    out << "\n    ]\n  },\n";
    out << "  \"execution\": {\n";
    out << "    \"workers\": " << workers << ",\n";
    out << "    \"duration_ms\": " << strFormat("{:.3f}", durationMs)
        << ",\n";
    out << "    \"job_retries\": " << jobRetries << ",\n";
    out << "    \"crash_recoveries\": " << crashRecoveries << ",\n";
    out << "    \"checkpoint_resumes\": " << checkpointResumes << "\n";
    out << "  },\n";
    out << "  \"dies\": [";
    for (std::size_t i = 0; i < dieRates.size(); ++i) {
        out << (i ? "," : "") << "\n    {\"platform\": \""
            << json::escaped(dieRates[i].first)
            << "\", \"faults_per_mbit_at_vcrash\": "
            << strFormat("{:.3f}", dieRates[i].second) << "}";
    }
    out << "\n  ],\n";
    out << "  \"artifacts\": [";
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
        out << (i ? "," : "") << "\n    \""
            << json::escaped(artifacts[i]) << "\"";
    }
    out << "\n  ],\n";
    out << "  \"observability\": {\n";
    out << "    \"trace\": \"" << json::escaped(tracePath) << "\",\n";
    out << "    \"prometheus\": \"" << json::escaped(prometheusPath)
        << "\",\n";
    out << "    \"blackboxes\": [";
    for (std::size_t i = 0; i < blackboxPaths.size(); ++i) {
        out << (i ? "," : "") << "\n      \""
            << json::escaped(blackboxPaths[i]) << "\"";
    }
    out << (blackboxPaths.empty() ? "]" : "\n    ]") << "\n  },\n";
    out << "  \"telemetry\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "" : ",") << "\n    \"" << json::escaped(name)
            << "\": " << value;
        first = false;
    }
    out << "\n  }\n}\n";
    return out.str();
}

Expected<RunManifest>
RunManifest::fromJson(std::string_view text)
{
    auto parsed = json::Value::parse(text);
    if (!parsed.ok())
        return parsed.error();
    const json::Value &root = parsed.value();
    if (!root.isObject() || root.stringOr("schema", "") != schema) {
        return makeError(Errc::corruptCache,
                         "not a {} document (schema = '{}')", schema,
                         root.isObject() ? root.stringOr("schema", "?")
                                         : "<non-object>");
    }

    RunManifest manifest;
    manifest.tool = root.stringOr("tool", "");
    manifest.runId = root.stringOr("run_id", "");
    manifest.gitSha = root.stringOr("git_sha", "");
    manifest.startedAtIso = root.stringOr("started_at", "");
    manifest.configDigest = root.stringOr("config_digest", "");

    if (const json::Value *plan = root.find("plan");
        plan && plan->isObject()) {
        manifest.runsPerLevel =
            static_cast<int>(plan->numberOr("runs_per_level", 0));
        manifest.stepMv = static_cast<int>(plan->numberOr("step_mv", 0));
        if (const json::Value *v = plan->find("collect_per_bram");
            v && v->isBool())
            manifest.collectPerBram = v->boolean();
        if (const json::Value *v = plan->find("discover_regions");
            v && v->isBool())
            manifest.discoverRegions = v->boolean();
        manifest.maxAttemptsPerJob = static_cast<int>(
            plan->numberOr("max_attempts_per_job", 0));
        if (const json::Value *jobs = plan->find("jobs");
            jobs && jobs->isArray()) {
            for (const json::Value &job : jobs->items()) {
                if (!job.isObject())
                    continue;
                manifest.jobLabels.push_back(job.stringOr("label", ""));
                manifest.noiseSeeds.push_back(
                    static_cast<std::uint64_t>(
                        job.numberOr("noise_seed", 0)));
                manifest.backends.push_back(
                    job.stringOr("backend", "bram"));
            }
        }
    }

    if (const json::Value *execution = root.find("execution");
        execution && execution->isObject()) {
        manifest.workers = static_cast<std::uint64_t>(
            execution->numberOr("workers", 0));
        manifest.durationMs = execution->numberOr("duration_ms", 0.0);
        manifest.jobRetries = static_cast<std::uint64_t>(
            execution->numberOr("job_retries", 0));
        manifest.crashRecoveries = static_cast<std::uint64_t>(
            execution->numberOr("crash_recoveries", 0));
        manifest.checkpointResumes = static_cast<std::uint64_t>(
            execution->numberOr("checkpoint_resumes", 0));
    }

    if (const json::Value *dies = root.find("dies");
        dies && dies->isArray()) {
        for (const json::Value &die : dies->items()) {
            if (!die.isObject())
                continue;
            manifest.dieRates.emplace_back(
                die.stringOr("platform", ""),
                die.numberOr("faults_per_mbit_at_vcrash", 0.0));
        }
    }

    if (const json::Value *artifacts = root.find("artifacts");
        artifacts && artifacts->isArray()) {
        for (const json::Value &artifact : artifacts->items()) {
            if (artifact.isString())
                manifest.artifacts.push_back(artifact.string());
        }
    }

    if (const json::Value *obs = root.find("observability");
        obs && obs->isObject()) {
        manifest.tracePath = obs->stringOr("trace", "");
        manifest.prometheusPath = obs->stringOr("prometheus", "");
        if (const json::Value *boxes = obs->find("blackboxes");
            boxes && boxes->isArray()) {
            for (const json::Value &box : boxes->items()) {
                if (box.isString())
                    manifest.blackboxPaths.push_back(box.string());
            }
        }
    }

    if (const json::Value *telemetry = root.find("telemetry");
        telemetry && telemetry->isObject()) {
        for (const auto &[name, value] : telemetry->members()) {
            if (value.isNumber())
                manifest.counters.emplace_back(
                    name,
                    static_cast<std::uint64_t>(value.number()));
        }
    }
    return manifest;
}

Expected<RunManifest>
RunManifest::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return makeError(Errc::cacheMiss,
                         "cannot open manifest '{}' for reading", path);
    }
    std::ostringstream content;
    content << in.rdbuf();
    auto manifest = fromJson(content.str());
    if (!manifest.ok()) {
        return makeError(manifest.error().code, "{}: {}", path,
                         manifest.error().message);
    }
    return manifest;
}

std::string
Ledger::defaultDirectory()
{
    if (const char *dir = std::getenv("UVOLT_LEDGER_DIR"))
        return dir;
    return "results/ledger";
}

Ledger::Ledger(std::string directory) : directory_(std::move(directory))
{
}

std::string
Ledger::latestPath() const
{
    return directory_ + "/run_manifest.json";
}

Expected<void>
Ledger::record(const RunManifest &manifest) const
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    const std::string document = manifest.toJson();

    // Crash-atomic: a spurious crash mid-record must never leave a
    // truncated manifest that a later RunManifest::load() chokes on.
    if (auto latest = writeFileAtomic(latestPath(), document);
        !latest.ok())
        return latest;
    if (!manifest.runId.empty()) {
        if (auto history = writeFileAtomic(
                strFormat("{}/{}.json", directory_, manifest.runId),
                document);
            !history.ok())
            return history;
    }
    return {};
}

} // namespace uvolt::harness

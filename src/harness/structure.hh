/**
 * @file
 * Within-BRAM structural analysis of fault locations.
 *
 * The paper characterizes faults per BRAM; this library additionally
 * models weak-column clustering inside each BRAM (see
 * vmodel::VariationParams). These statistics let experiments *measure*
 * that structure from readback data instead of trusting the model: a
 * chi-square uniformity score of the per-column fault histogram, the
 * share of faults on each BRAM's dominant columns, and aggregate
 * row/column histograms for the whole chip.
 */

#ifndef UVOLT_HARNESS_STRUCTURE_HH
#define UVOLT_HARNESS_STRUCTURE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fpga/bram.hh"
#include "harness/fault_analyzer.hh"

namespace uvolt::harness
{

/** Column-structure statistics of one BRAM's observed faults. */
struct BramStructure
{
    std::uint32_t bram = 0;
    int faults = 0;
    std::array<int, fpga::bramCols> perColumn{};

    /**
     * Chi-square statistic of the per-column histogram against the
     * uniform hypothesis (15 degrees of freedom). Large values mean the
     * faults cluster on a few columns.
     */
    double columnChiSquare() const;

    /** Share of this BRAM's faults on its two most-faulty columns. */
    double topTwoColumnShare() const;
};

/** Chip-level aggregation. */
struct StructureReport
{
    std::vector<BramStructure> perBram; ///< only BRAMs with faults
    std::array<std::uint64_t, fpga::bramCols> columnTotals{};
    std::uint64_t totalFaults = 0;

    /** Mean top-two-column share over BRAMs with >= min_faults faults. */
    double meanTopTwoShare(int min_faults = 8) const;

    /** Median per-BRAM chi-square over BRAMs with >= min_faults. */
    double medianChiSquare(int min_faults = 8) const;
};

/** Build the report from a flat list of fault observations. */
StructureReport analyzeStructure(
    const std::vector<FaultObservation> &faults);

/**
 * The 95th-percentile chi-square critical value for 15 degrees of
 * freedom: per-BRAM scores above this reject column uniformity.
 */
constexpr double chiSquare95Df15 = 24.996;

/**
 * Render one BRAM's fault locations as ASCII art: 16 columns wide, the
 * 1024 rows folded into @a fold_rows bands ('.' clean band, '1'-'9'/'#'
 * by faulty-cell count in the band). Lets an experimenter *see* the
 * weak-column structure of a hot BRAM.
 */
std::string renderBramMap(const BramStructure &bram,
                          const std::vector<FaultObservation> &faults,
                          int fold_rows = 32);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_STRUCTURE_HH

/**
 * @file
 * Heat-chamber campaign (paper Section II-D, Fig 8).
 *
 * The board goes into a temperature-regulated chamber and the critical
 * sweep is repeated at several on-board temperatures. Because of Inverse
 * Thermal Dependence, heating the 28 nm parts *reduces* the undervolting
 * fault rate (3x on VC707 from 50 to 80 degC).
 */

#ifndef UVOLT_HARNESS_TEMPERATURE_HH
#define UVOLT_HARNESS_TEMPERATURE_HH

#include <vector>

#include "harness/experiment.hh"
#include "pmbus/board.hh"

namespace uvolt::harness
{

/** One temperature's sweep. */
struct TemperatureSeries
{
    double ambientC;
    SweepResult sweep;
};

/** A full heat-chamber campaign. */
struct TemperatureStudy
{
    std::string platform;
    std::vector<TemperatureSeries> series;

    /**
     * Fault-rate reduction factor between two temperatures at the
     * platform's Vcrash (e.g. >3x on VC707 between 50 and 80 degC).
     */
    double reductionFactor(double hot_c, double cold_c) const;
};

/**
 * Run the critical sweep at each requested on-board temperature.
 * Per-BRAM collection is disabled (the figures only need rates).
 */
TemperatureStudy runTemperatureStudy(pmbus::Board &board,
                                     const std::vector<double> &temps_c,
                                     int runs_per_level = 100);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_TEMPERATURE_HH

/**
 * @file
 * Vulnerability clustering of BRAMs (paper Section II-C.3, Fig 5).
 *
 * The paper clusters per-BRAM fault rates with k-means into low-, mid-,
 * and high-vulnerable classes; on VC707 at Vcrash, 88.6% of BRAMs land in
 * the low class with an average rate of 0.02% (~3.4 faults per 16 kbit
 * BRAM). The low class feeds the ICBP placement constraint.
 */

#ifndef UVOLT_HARNESS_CLUSTERER_HH
#define UVOLT_HARNESS_CLUSTERER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/fvm.hh"

namespace uvolt::harness
{

/** Vulnerability classes, ordered by centroid. */
enum class VulnClass : std::uint8_t
{
    Low = 0,
    Mid = 1,
    High = 2,
};

/** Printable class name. */
const char *vulnClassName(VulnClass cls);

/** Result of clustering one FVM. */
struct ClusterReport
{
    /** Per-BRAM class, indexed by pool index. */
    std::vector<VulnClass> classOf;

    /** BRAM count per class. */
    std::vector<std::size_t> sizes;

    /** Mean fault *rate* (fraction of bits) per class. */
    std::vector<double> meanRates;

    /** Mean fault *count* per BRAM per class. */
    std::vector<double> meanCounts;

    /** Fraction of the pool in a class. */
    double shareOf(VulnClass cls) const;

    /** Pool indices of the low-vulnerable BRAMs, most reliable first. */
    std::vector<std::uint32_t> lowVulnerableBrams;
};

/**
 * Cluster an FVM's per-BRAM fault rates into k vulnerability classes
 * (k = 3 in the paper) using 1-D k-means.
 */
ClusterReport clusterBrams(const Fvm &fvm, std::size_t k = 3);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_CLUSTERER_HH

#include "harness/experiment.hh"

#include <algorithm>

#include "harness/checkpoint.hh"
#include "harness/fault_analyzer.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"

namespace uvolt::harness
{

namespace
{

struct SweepMetrics
{
    telemetry::Counter &sweeps =
        telemetry::Registry::global().counter("sweep.campaigns");
    telemetry::Counter &levels =
        telemetry::Registry::global().counter("sweep.levels");
    telemetry::Counter &runs =
        telemetry::Registry::global().counter("sweep.runs");
    telemetry::Counter &crashRecoveries =
        telemetry::Registry::global().counter("sweep.crash_recoveries");
    telemetry::Counter &runsRetried =
        telemetry::Registry::global().counter("sweep.runs_retried");
    telemetry::Counter &checkpointResumes =
        telemetry::Registry::global().counter("sweep.checkpoint_resumes");
    telemetry::Histogram &levelMs = telemetry::Registry::global().histogram(
        "sweep.level_ms",
        {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
};

SweepMetrics &
sweepMetrics()
{
    static SweepMetrics metrics;
    return metrics;
}

} // namespace

std::string
PatternSpec::label() const
{
    if (kind == Kind::Fixed)
        return strFormat("16'h{:04X}", word);
    return strFormat("random-{}%",
                     static_cast<int>(oneDensity * 100.0 + 0.5));
}

void
fillPattern(pmbus::Board &board, const PatternSpec &pattern)
{
    auto &device = board.device();
    if (pattern.kind == PatternSpec::Kind::Fixed) {
        device.fillAll(pattern.word);
        return;
    }
    for (std::uint32_t b = 0; b < device.bramCount(); ++b) {
        Rng rng(combineSeeds(pattern.seed, b));
        auto &bram = device.bram(b);
        for (int row = 0; row < fpga::bramRows; ++row) {
            std::uint16_t word = 0;
            for (int col = 0; col < fpga::bramCols; ++col) {
                if (rng.chance(pattern.oneDensity))
                    word = static_cast<std::uint16_t>(word | (1u << col));
            }
            bram.writeRow(row, word);
        }
    }
}

double
RegionResult::guardband() const
{
    return 1.0 - static_cast<double>(vminMv) / static_cast<double>(vnomMv);
}

namespace
{

/**
 * Crash watchdog: when DONE drops mid-measurement the board is
 * recovered exactly as the paper recovers crashed boards — by
 * reconfiguration — then brought back to the campaign's conditions:
 * soft reset, pattern re-fill, setpoint restore.
 */
struct Watchdog
{
    pmbus::Board &board;
    PatternSpec pattern;
    fpga::RailId rail = fpga::RailId::VccBram;
    int levelMv = 0;
    RecoveryPolicy policy;
    ResilienceReport *report = nullptr;

    /** Reconfigure and restore campaign conditions after DONE-low. */
    Expected<void>
    recover() const
    {
        if (report)
            ++report->crashRecoveries;
        sweepMetrics().crashRecoveries.increment();
        board.softReset();
        fillPattern(board, pattern);
        const auto set = rail == fpga::RailId::VccBram
            ? board.trySetVccBramMv(levelMv)
            : board.trySetVccIntMv(levelMv);
        if (!set.ok())
            return set.error();
        if (!board.donePin())
            panic("{}: board crashed again right after recovery at {} mV "
                  "(level should be operable)",
                  board.spec().name, levelMv);
        return {};
    }
};

/**
 * Count device-wide BRAM faults for the run in progress, recovering
 * injected/spurious crashes and retrying the run under its original
 * supply jitter so the result equals an undisturbed run's.
 */
Expected<std::uint64_t>
countDeviceFaultsRecoverable(const Watchdog &watchdog)
{
    pmbus::Board &board = watchdog.board;
    const double jitter = board.runJitterV();
    for (int recovery = 0; recovery <= watchdog.policy.maxRecoveriesPerRun;
         ++recovery) {
        // One device-level probe: streams the packed threshold ladders
        // (memoized per content/voltage) on a quiet crash schedule, and
        // degrades to the exact legacy per-BRAM probe loop when a
        // spurious-crash schedule is armed.
        const auto count = board.tryCountDeviceFaults();
        if (count.ok())
            return count.value();
        if (count.code() != Errc::crashDetected)
            return count.error();
        if (auto recovered = watchdog.recover(); !recovered.ok())
            return recovered.error();
        board.resumeRun(jitter);
        sweepMetrics().runsRetried.increment();
        if (watchdog.report)
            ++watchdog.report->runsRetried;
    }
    return makeError(Errc::recoveryExhausted,
                     "{}: run at {} mV kept crashing through {} "
                     "recoveries",
                     board.spec().name, watchdog.levelMv,
                     watchdog.policy.maxRecoveriesPerRun);
}

/** Whether the probed rail shows any fault at the present level. */
Expected<bool>
probeFaulty(pmbus::Board &board, fpga::RailId rail, int runs,
            const Watchdog &watchdog)
{
    if (rail == fpga::RailId::VccBram) {
        for (int run = 0; run < runs; ++run) {
            board.startRun();
            auto count = countDeviceFaultsRecoverable(watchdog);
            if (!count.ok())
                return count.error();
            if (count.value() > 0)
                return true;
        }
        return false;
    }
    return board.internalLogicFaulty();
}

/** Snapshot link/pmbus retry counters so a campaign can report deltas. */
struct ChannelBaseline
{
    std::uint64_t linkRetransmits;
    std::uint64_t pmbusRetries;

    explicit ChannelBaseline(const pmbus::Board &board)
        : linkRetransmits(board.link().stats().retransmits),
          pmbusRetries(board.pmbusStats().retries)
    {
    }

    void
    fold(const pmbus::Board &board, ResilienceReport &report) const
    {
        report.linkRetransmits +=
            board.link().stats().retransmits - linkRetransmits;
        report.pmbusRetries += board.pmbusStats().retries - pmbusRetries;
    }
};

} // namespace

Expected<RegionResult>
tryDiscoverRegions(pmbus::Board &board, fpga::RailId rail,
                   int runs_per_level)
{
    if (rail == fpga::RailId::VccAux)
        fatal("discoverRegions: VCCAUX is not underscaled in this study");

    board.softReset();
    if (rail == fpga::RailId::VccBram)
        fillPattern(board, PatternSpec::allOnes());

    RegionResult result;
    result.platform = board.spec().name;
    result.rail = rail;
    result.vnomMv = board.spec().vnomMv;
    result.vminMv = board.spec().vnomMv;
    result.vcrashMv = 0;

    const int step = pmbus::voutStepMv;
    int first_faulty_mv = 0;

    Watchdog watchdog{board, PatternSpec::allOnes(), rail, 0, {}, nullptr};

    for (int mv = result.vnomMv; mv >= 0; mv -= step) {
        const auto set = rail == fpga::RailId::VccBram
            ? board.trySetVccBramMv(mv)
            : board.trySetVccIntMv(mv);
        if (!set.ok())
            return set.error();

        if (!board.donePin()) {
            // CRASH region entered: the last operable level was one step
            // above (paper: DONE pin unset below Vcrash).
            result.vcrashMv = mv + step;
            break;
        }
        watchdog.levelMv = mv;
        if (first_faulty_mv == 0) {
            auto faulty = probeFaulty(board, rail, runs_per_level,
                                      watchdog);
            if (!faulty.ok())
                return faulty.error();
            if (faulty.value())
                first_faulty_mv = mv;
        }
    }
    if (result.vcrashMv == 0)
        panic("{}: no crash level found on {}", result.platform,
              railName(rail));

    // Vmin is the lowest *fault-free* level: one step above the first
    // level where faults manifested (or Vcrash if none ever did).
    result.vminMv =
        first_faulty_mv == 0 ? result.vcrashMv : first_faulty_mv + step;

    board.softReset();
    return result;
}

RegionResult
discoverRegions(pmbus::Board &board, fpga::RailId rail, int runs_per_level)
{
    return tryDiscoverRegions(board, rail, runs_per_level).orFatal();
}

std::string
SweepResult::describe() const
{
    const std::string &name =
        platform.empty() ? "<unset platform>" : platform;
    if (dieId.empty())
        return name;
    return strFormat("{} (die {})", name, dieId);
}

const SweepPoint &
SweepResult::atVcrash() const
{
    if (points.empty())
        fatal("sweep of {} has no points (the campaign measured no "
              "operable level)",
              describe());
    return points.back();
}

const SweepPoint &
SweepResult::at(int vcc_bram_mv) const
{
    for (const auto &point : points) {
        if (point.vccBramMv == vcc_bram_mv)
            return point;
    }
    std::string available;
    for (const auto &point : points) {
        if (!available.empty())
            available += ", ";
        available += strFormat("{}", point.vccBramMv);
    }
    fatal("sweep has no point at {} mV; {} measured {} level(s): [{}] mV",
          vcc_bram_mv, describe(), points.size(), available);
}

namespace
{

/** Rebuild the derived per-point statistics from raw run counts. */
void
finalizePointStats(SweepPoint &point, std::uint64_t total_bits)
{
    point.runStats = RunningStats();
    for (double count : point.runCounts)
        point.runStats.add(count);
    point.medianFaults = median(point.runCounts);
    point.faultsPerMbit = faultsPerMbit(point.medianFaults, total_bits);
}

/**
 * The deterministic zero-jitter reference readback of one level: the
 * per-BRAM fault map plus flip-polarity accounting, shipped through the
 * serial link. A crash mid-pass restarts the whole pass (it is
 * jitter-free, hence idempotent).
 */
Expected<void>
collectReferenceMaps(SweepPoint &point, const Watchdog &watchdog)
{
    pmbus::Board &board = watchdog.board;
    for (int recovery = 0; recovery <= watchdog.policy.maxRecoveriesPerRun;
         ++recovery) {
        board.startReferenceRun();
        point.perBramFaults.assign(board.device().bramCount(), 0);
        FaultSummary summary;
        std::vector<FaultObservation> faults;
        bool crashed = false;
        for (std::uint32_t b = 0; b < board.device().bramCount(); ++b) {
            faults.clear();
            auto observed = board.tryReadBramPacked(b);
            if (!observed.ok()) {
                if (observed.code() != Errc::crashDetected)
                    return observed.error();
                crashed = true;
                break;
            }
            diffBram(board.device().bram(b), observed.value(), b, faults,
                     summary);
            point.perBramFaults[b] = static_cast<int>(faults.size());
        }
        if (!crashed) {
            point.oneToZeroFraction = summary.oneToZeroFraction();
            return {};
        }
        if (auto recovered = watchdog.recover(); !recovered.ok())
            return recovered.error();
    }
    return makeError(Errc::recoveryExhausted,
                     "{}: reference readback at {} mV kept crashing "
                     "through {} recoveries",
                     board.spec().name, watchdog.levelMv,
                     watchdog.policy.maxRecoveriesPerRun);
}

} // namespace

Expected<SweepResult>
tryRunCriticalSweep(pmbus::Board &board, const SweepOptions &options)
{
    const auto &spec = board.spec();
    UVOLT_TRACE_SCOPE("sweep", [&] {
        return telemetry::TraceArgs{
            {"platform", spec.name},
            {"die", spec.serialNumber},
            {"pattern", options.pattern.label()}};
    });
    sweepMetrics().sweeps.increment();
    const int from =
        options.fromMv > 0 ? options.fromMv : spec.calib.bramVminMv;
    const int down_to =
        options.downToMv > 0 ? options.downToMv : spec.calib.bramVcrashMv;
    if (down_to > from)
        fatal("runCriticalSweep: downTo {} mV above from {} mV", down_to,
              from);

    SweepResult result;
    result.platform = spec.name;
    result.dieId = spec.serialNumber;
    result.pattern = options.pattern;
    result.ambientC = board.ambientC();
    result.runsPerLevel = options.runsPerLevel;

    const ChannelBaseline baseline(board);

    board.softReset();
    fillPattern(board, options.pattern);

    const std::uint64_t total_bits = board.device().totalBits();

    // --- checkpoint resume ----------------------------------------------
    int start_mv = from;
    std::vector<double> partial_counts;
    SweepCheckpoint *checkpoint = options.checkpoint;
    if (checkpoint && checkpoint->valid) {
        if (auto valid = tryValidateCheckpoint(*checkpoint, board,
                                               options, from, down_to);
            !valid.ok())
            return valid.error();
        result.points = checkpoint->completedPoints;
        start_mv = checkpoint->currentLevelMv;
        partial_counts = checkpoint->currentRunCounts;
        board.fastForwardRuns(checkpoint->runsStarted);
        ++result.resilience.checkpointResumes;
        sweepMetrics().checkpointResumes.increment();
    } else if (checkpoint) {
        *checkpoint = makeCheckpoint(board, options, from, down_to);
        checkpoint->currentLevelMv = start_mv;
        checkpoint->valid = true;
    }

    Watchdog watchdog{board,   options.pattern, fpga::RailId::VccBram,
                      0,       options.recovery, &result.resilience};

    int levels_this_call = 0;
    bool finished = true;
    for (int mv = start_mv; mv >= down_to; mv -= options.stepMv) {
        if (options.maxLevels > 0 &&
            levels_this_call >= options.maxLevels) {
            // Budget exhausted: leave a resumable checkpoint behind.
            finished = false;
            break;
        }
        if (auto set = board.trySetVccBramMv(mv); !set.ok())
            return set.error();
        if (!board.donePin())
            break; // stepped past Vcrash
        watchdog.levelMv = mv;

        UVOLT_TRACE_SCOPE("sweep.level", [&] {
            return telemetry::TraceArgs{{"mv", std::to_string(mv)}};
        });
        const std::uint64_t level_start_ns = telemetry::nowNs();

        SweepPoint point;
        point.vccBramMv = mv;
        point.runCounts = std::move(partial_counts);
        partial_counts.clear();
        point.runCounts.reserve(
            static_cast<std::size_t>(options.runsPerLevel));

        for (int run = static_cast<int>(point.runCounts.size());
             run < options.runsPerLevel; ++run) {
            board.startRun();
            sweepMetrics().runs.increment();
            auto count = countDeviceFaultsRecoverable(watchdog);
            if (!count.ok())
                return count.error();
            point.runCounts.push_back(
                static_cast<double>(count.value()));
            if (checkpoint) {
                checkpoint->currentRunCounts = point.runCounts;
                checkpoint->runsStarted = board.runsStarted();
            }
        }
        finalizePointStats(point, total_bits);
        point.bramPowerW = board.measureBramPowerW();

        if (options.collectPerBram) {
            if (auto maps = collectReferenceMaps(point, watchdog);
                !maps.ok())
                return maps.error();
        }

        result.points.push_back(std::move(point));
        ++levels_this_call;
        sweepMetrics().levels.increment();
        if (telemetry::Telemetry::enabled()) {
            sweepMetrics().levelMs.observe(
                static_cast<double>(telemetry::nowNs() - level_start_ns) /
                1e6);
        }

        if (checkpoint) {
            checkpoint->completedPoints = result.points;
            checkpoint->currentLevelMv = mv - options.stepMv;
            checkpoint->currentRunCounts.clear();
            checkpoint->runsStarted = board.runsStarted();
            if (!options.checkpointPath.empty())
                saveCheckpointFile(*checkpoint, options.checkpointPath);
        }
    }

    result.truncated = !finished;
    if (checkpoint && finished)
        checkpoint->valid = false; // campaign complete; nothing to resume

    baseline.fold(board, result.resilience);
    board.softReset();
    return result;
}

SweepResult
runCriticalSweep(pmbus::Board &board, const SweepOptions &options)
{
    return tryRunCriticalSweep(board, options).orFatal();
}

} // namespace uvolt::harness

#include "harness/experiment.hh"

#include <algorithm>

#include "harness/fault_analyzer.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace uvolt::harness
{

std::string
PatternSpec::label() const
{
    if (kind == Kind::Fixed)
        return strFormat("16'h{:04X}", word);
    return strFormat("random-{}%",
                     static_cast<int>(oneDensity * 100.0 + 0.5));
}

void
fillPattern(pmbus::Board &board, const PatternSpec &pattern)
{
    auto &device = board.device();
    if (pattern.kind == PatternSpec::Kind::Fixed) {
        device.fillAll(pattern.word);
        return;
    }
    for (std::uint32_t b = 0; b < device.bramCount(); ++b) {
        Rng rng(combineSeeds(pattern.seed, b));
        auto &bram = device.bram(b);
        for (int row = 0; row < fpga::bramRows; ++row) {
            std::uint16_t word = 0;
            for (int col = 0; col < fpga::bramCols; ++col) {
                if (rng.chance(pattern.oneDensity))
                    word = static_cast<std::uint16_t>(word | (1u << col));
            }
            bram.writeRow(row, word);
        }
    }
}

double
RegionResult::guardband() const
{
    return 1.0 - static_cast<double>(vminMv) / static_cast<double>(vnomMv);
}

namespace
{

/** Count device-wide BRAM faults under the current run conditions. */
std::uint64_t
countDeviceFaults(const pmbus::Board &board)
{
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < board.device().bramCount(); ++b)
        total += static_cast<std::uint64_t>(board.countBramFaults(b));
    return total;
}

/** Whether the probed rail shows any fault at the present level. */
bool
probeFaulty(pmbus::Board &board, fpga::RailId rail, int runs)
{
    if (rail == fpga::RailId::VccBram) {
        for (int run = 0; run < runs; ++run) {
            board.startRun();
            if (countDeviceFaults(board) > 0)
                return true;
        }
        return false;
    }
    return board.internalLogicFaulty();
}

} // namespace

RegionResult
discoverRegions(pmbus::Board &board, fpga::RailId rail, int runs_per_level)
{
    if (rail == fpga::RailId::VccAux)
        fatal("discoverRegions: VCCAUX is not underscaled in this study");

    board.softReset();
    if (rail == fpga::RailId::VccBram)
        fillPattern(board, PatternSpec::allOnes());

    RegionResult result;
    result.platform = board.spec().name;
    result.rail = rail;
    result.vnomMv = board.spec().vnomMv;
    result.vminMv = board.spec().vnomMv;
    result.vcrashMv = 0;

    const int step = pmbus::voutStepMv;
    int first_faulty_mv = 0;

    for (int mv = result.vnomMv; mv >= 0; mv -= step) {
        if (rail == fpga::RailId::VccBram)
            board.setVccBramMv(mv);
        else
            board.setVccIntMv(mv);

        if (!board.donePin()) {
            // CRASH region entered: the last operable level was one step
            // above (paper: DONE pin unset below Vcrash).
            result.vcrashMv = mv + step;
            break;
        }
        if (first_faulty_mv == 0 &&
            probeFaulty(board, rail, runs_per_level)) {
            first_faulty_mv = mv;
        }
    }
    if (result.vcrashMv == 0)
        panic("{}: no crash level found on {}", result.platform,
              railName(rail));

    // Vmin is the lowest *fault-free* level: one step above the first
    // level where faults manifested (or Vcrash if none ever did).
    result.vminMv =
        first_faulty_mv == 0 ? result.vcrashMv : first_faulty_mv + step;

    board.softReset();
    return result;
}

const SweepPoint &
SweepResult::atVcrash() const
{
    if (points.empty())
        fatal("sweep has no points");
    return points.back();
}

const SweepPoint &
SweepResult::at(int vcc_bram_mv) const
{
    for (const auto &point : points) {
        if (point.vccBramMv == vcc_bram_mv)
            return point;
    }
    fatal("sweep has no point at {} mV", vcc_bram_mv);
}

SweepResult
runCriticalSweep(pmbus::Board &board, const SweepOptions &options)
{
    const auto &spec = board.spec();
    const int from =
        options.fromMv > 0 ? options.fromMv : spec.calib.bramVminMv;
    const int down_to =
        options.downToMv > 0 ? options.downToMv : spec.calib.bramVcrashMv;
    if (down_to > from)
        fatal("runCriticalSweep: downTo {} mV above from {} mV", down_to,
              from);

    SweepResult result;
    result.platform = spec.name;
    result.pattern = options.pattern;
    result.ambientC = board.ambientC();
    result.runsPerLevel = options.runsPerLevel;

    board.softReset();
    fillPattern(board, options.pattern);

    const std::uint64_t total_bits = board.device().totalBits();

    for (int mv = from; mv >= down_to; mv -= options.stepMv) {
        board.setVccBramMv(mv);
        if (!board.donePin())
            break; // stepped past Vcrash

        SweepPoint point;
        point.vccBramMv = mv;

        std::vector<double> run_counts;
        run_counts.reserve(static_cast<std::size_t>(options.runsPerLevel));
        for (int run = 0; run < options.runsPerLevel; ++run) {
            board.startRun();
            const auto count =
                static_cast<double>(countDeviceFaults(board));
            run_counts.push_back(count);
            point.runStats.add(count);
        }
        point.medianFaults = median(run_counts);
        point.faultsPerMbit = faultsPerMbit(point.medianFaults, total_bits);
        point.bramPowerW = board.measureBramPowerW();

        if (options.collectPerBram) {
            // One jitter-free full readback through the serial link: the
            // deterministic per-BRAM map plus flip-polarity accounting.
            board.startReferenceRun();
            point.perBramFaults.resize(board.device().bramCount());
            FaultSummary summary;
            std::vector<FaultObservation> faults;
            for (std::uint32_t b = 0; b < board.device().bramCount(); ++b) {
                faults.clear();
                const auto observed = board.readBramToHost(b);
                diffBram(board.device().bram(b), observed, b, faults,
                         summary);
                point.perBramFaults[b] = static_cast<int>(faults.size());
            }
            point.oneToZeroFraction = summary.oneToZeroFraction();
        }

        result.points.push_back(std::move(point));
    }

    board.softReset();
    return result;
}

} // namespace uvolt::harness

/**
 * @file
 * Host-side analysis of faulty readback data (the "Analyse faulty data"
 * step of Listing 1): diffing observed rows against written rows and
 * summarizing rates, locations, and bit-flip polarities.
 */

#ifndef UVOLT_HARNESS_FAULT_ANALYZER_HH
#define UVOLT_HARNESS_FAULT_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "fpga/bram.hh"
#include "fpga/fault_domain.hh"

namespace uvolt::harness
{

/** One observed bit error. */
struct FaultObservation
{
    std::uint32_t bram;
    std::uint16_t row;
    std::uint8_t col;
    bool oneToZero; ///< wrote "1", read "0" (the dominant polarity)

    bool operator==(const FaultObservation &other) const = default;
};

/** Aggregate of one analysis pass. */
struct FaultSummary
{
    std::uint64_t totalFaults = 0;
    std::uint64_t oneToZero = 0;
    std::uint64_t zeroToOne = 0;

    /** Share of faults with the "1"->"0" polarity. */
    double
    oneToZeroFraction() const
    {
        return totalFaults == 0
            ? 1.0
            : static_cast<double>(oneToZero)
                / static_cast<double>(totalFaults);
    }
};

/**
 * Diff one BRAM's observed packed readback against its written content,
 * appending every mismatching bitcell to @a out (in row-major,
 * column-ascending order — the legacy walk order) and updating
 * @a summary. The packed fault-domain form: an XOR + ctz walk over
 * 64-bit words instead of a row-by-row bitcell scan.
 */
void diffBram(const fpga::Bram &written, fpga::WordSpan observed,
              std::uint32_t bram, std::vector<FaultObservation> &out,
              FaultSummary &summary);

/** Compatibility overload taking the 1024 observed 16-bit rows. */
void diffBram(const fpga::Bram &written,
              const std::vector<std::uint16_t> &observed,
              std::uint32_t bram, std::vector<FaultObservation> &out,
              FaultSummary &summary);

/** Faults per Mbit for a count over a number of data bits. */
double faultsPerMbit(double fault_count, std::uint64_t total_bits);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_FAULT_ANALYZER_HH

#include "harness/fault_analyzer.hh"

#include "fpga/platform.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

void
diffBram(const fpga::Bram &written,
         const std::vector<std::uint16_t> &observed, std::uint32_t bram,
         std::vector<FaultObservation> &out, FaultSummary &summary)
{
    if (observed.size() != static_cast<std::size_t>(fpga::bramRows))
        fatal("diffBram: observed data has {} rows, expected {}",
              observed.size(), fpga::bramRows);

    for (int row = 0; row < fpga::bramRows; ++row) {
        const std::uint16_t wrote =
            written.readRow(row);
        const std::uint16_t read = observed[static_cast<std::size_t>(row)];
        std::uint16_t diff = static_cast<std::uint16_t>(wrote ^ read);
        while (diff) {
            const int col = __builtin_ctz(diff);
            diff = static_cast<std::uint16_t>(diff & (diff - 1));

            FaultObservation fault;
            fault.bram = bram;
            fault.row = static_cast<std::uint16_t>(row);
            fault.col = static_cast<std::uint8_t>(col);
            fault.oneToZero = (wrote >> col) & 1u;
            out.push_back(fault);

            ++summary.totalFaults;
            if (fault.oneToZero)
                ++summary.oneToZero;
            else
                ++summary.zeroToOne;
        }
    }
}

double
faultsPerMbit(double fault_count, std::uint64_t total_bits)
{
    return fault_count * fpga::bitsPerMbit / static_cast<double>(total_bits);
}

} // namespace uvolt::harness

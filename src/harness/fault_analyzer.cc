#include "harness/fault_analyzer.hh"

#include "fpga/platform.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

void
diffBram(const fpga::Bram &written, fpga::WordSpan observed,
         std::uint32_t bram, std::vector<FaultObservation> &out,
         FaultSummary &summary)
{
    if (observed.size() != static_cast<std::size_t>(fpga::bramWords))
        fatal("diffBram: observed data has {} packed words, expected {}",
              observed.size(), fpga::bramWords);

    const fpga::FaultDomain domain = fpga::FaultDomain::of(written, bram);
    domain.visitFaults(observed, [&](fpga::BitAddress addr,
                                     bool wrote_one) {
        FaultObservation fault;
        fault.bram = addr.bram;
        fault.row = addr.row;
        fault.col = addr.col;
        fault.oneToZero = wrote_one;
        out.push_back(fault);

        ++summary.totalFaults;
        if (fault.oneToZero)
            ++summary.oneToZero;
        else
            ++summary.zeroToOne;
    });
}

void
diffBram(const fpga::Bram &written,
         const std::vector<std::uint16_t> &observed, std::uint32_t bram,
         std::vector<FaultObservation> &out, FaultSummary &summary)
{
    if (observed.size() != static_cast<std::size_t>(fpga::bramRows))
        fatal("diffBram: observed data has {} rows, expected {}",
              observed.size(), fpga::bramRows);
    diffBram(written, fpga::packRows(observed), bram, out, summary);
}

double
faultsPerMbit(double fault_count, std::uint64_t total_bits)
{
    return fault_count * fpga::bitsPerMbit / static_cast<double>(total_bits);
}

} // namespace uvolt::harness

/**
 * @file
 * Parallel fleet campaigns: many boards, patterns, and temperatures in
 * one schedulable unit.
 *
 * Every headline result of the paper is a *cross product*: the
 * guardband study sweeps four boards (Fig 1), the pattern study five
 * data patterns (Fig 4), the ITD study four temperatures (Fig 8), the
 * die-to-die comparison two identical KC705 samples (Fig 7). The fleet
 * engine schedules such a cross product as independent jobs on a
 * ThreadPool. Each job builds its own Board around the die's shared
 * immutable ChipFaultModel and draws from that board's own seeded RNG
 * streams, so the campaign's statistics are bit-identical to a serial
 * run regardless of worker count or completion order.
 *
 * The engine composes the resilience layer end to end: per-run crash
 * recovery inside each sweep (RecoveryPolicy watchdog), engine-level
 * retry of jobs whose retry budgets were exhausted, and per-job on-disk
 * checkpoints under a scratch directory so a killed fleet resumes with
 * completed levels intact.
 *
 * The FvmCache implements the "characterize once, place many times"
 * flow the paper describes (the FVM is "extracted as a pre-process
 * stage"): chip maps are cached in memory and on disk keyed by
 * platform + die serial + characterization shape, with single-flight
 * loading so concurrent requests for the same die characterize once.
 */

#ifndef UVOLT_HARNESS_FLEET_HH
#define UVOLT_HARNESS_FLEET_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "mem/catalog.hh"
#include "mem/sweep.hh"
#include "pmbus/fault_injector.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"

namespace uvolt::harness
{

/** One cell of a fleet campaign's cross product. */
struct FleetJob
{
    std::string platform;   ///< catalog name; identifies the die
    PatternSpec pattern = PatternSpec::allOnes();
    double ambientC = 50.0;

    /** Optional per-job harsh environment (masked by the retry layer). */
    std::optional<pmbus::NoiseConfig> noise;

    /** Filesystem-safe identity, e.g. "VC707-p16_hFFFF-t50"; names the
     *  job's checkpoint file and its slot in reports. */
    std::string label() const;
};

/** The cross product {dies} x {patterns} x {temperatures}. */
struct FleetPlan
{
    std::vector<FleetJob> jobs;

    // Shared Listing-1 shape of every job in the fleet.
    int runsPerLevel = 100;
    int stepMv = 10;
    bool collectPerBram = true;
    RecoveryPolicy recovery;

    /** Also locate Fig-1 voltage regions (both rails) before each sweep. */
    bool discoverRegions = false;

    /**
     * Expand the cross product in deterministic order: platforms
     * outermost, then patterns, then temperatures.
     */
    static FleetPlan
    crossProduct(const std::vector<std::string> &platforms,
                 const std::vector<PatternSpec> &patterns,
                 const std::vector<double> &temperatures_c);
};

/** One finished cell of the fleet. */
struct FleetJobOutcome
{
    FleetJob job;
    SweepResult sweep;
    std::optional<RegionResult> bramRegions; ///< when plan.discoverRegions
    std::optional<RegionResult> intRegions;  ///< when plan.discoverRegions
    int attempts = 1;     ///< engine-level tries this job consumed
    bool resumed = false; ///< continued from an on-disk checkpoint
};

/**
 * Program a memory device per a campaign pattern: the backend-generic
 * counterpart of fillPattern(Board&, ...). Fixed patterns fill every
 * lane; random patterns draw one seeded stream per fault domain
 * (combineSeeds(pattern.seed, domain)), mirroring the per-BRAM streams
 * of the Board path.
 */
void fillMemPattern(mem::MemoryDevice &device, const PatternSpec &pattern);

/**
 * Adapt a backend sweep into the harness SweepResult shape so fleet
 * aggregation, reports, and the serving tier stay backend-agnostic.
 * perDomainFaults lands in perBramFaults ("fault domain" counts).
 */
SweepResult sweepFromMem(const mem::MemSweepResult &mem_result,
                         const PatternSpec &pattern);

/** Aggregate view of one die across all its fleet jobs. */
struct DieReport
{
    std::string platform;
    std::string technology = "bram";     ///< technologyName() tag
    std::string dieId;                   ///< board serial number
    std::vector<std::size_t> jobIndices; ///< into FleetResult::jobs
    double faultsPerMbitAtVcrash = 0.0;  ///< reference-pattern rate

    /** Per-BRAM max across the die's sweeps (the union map of Fig 6);
     *  absent when the plan skipped per-BRAM maps. */
    std::optional<Fvm> mergedFvm;
};

/** Everything a fleet campaign produced, in plan order. */
struct FleetResult
{
    std::vector<FleetJobOutcome> jobs; ///< plan order, not finish order
    std::vector<DieReport> dies;       ///< order of first appearance

    /** Summed retry/recovery accounting across the whole fleet. */
    ResilienceReport resilience;

    /** Engine-level job re-runs after exhausted recovery budgets. */
    std::uint64_t jobRetries = 0;

    /**
     * Die-to-die variation: worst/best faultsPerMbitAtVcrash across the
     * fleet's dies (the paper's KC705-A = 4.1 x KC705-B comparison).
     * Zero when fewer than two dies or a fault-free best die.
     */
    double dieToDieRatio() const;

    /** The single sweep of a one-job campaign; fatal() otherwise. */
    const SweepResult &onlySweep() const;

    /** Die report by platform name; fatal() when absent. */
    const DieReport &die(const std::string &platform) const;
};

/** Cache traffic counters. */
struct FvmCacheStats
{
    std::uint64_t memoryHits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t misses = 0;            ///< characterizations executed
    std::uint64_t corruptFiles = 0;      ///< re-characterized + rewritten
    std::uint64_t singleFlightWaits = 0; ///< callers that joined a peer

    /** Requests served without characterizing, as a fraction. */
    double hitRate() const;
};

/**
 * Memory + on-disk cache of per-die Fault Variation Maps.
 *
 * Key: platform + die serial + characterization shape (pattern, runs
 * per level). Disk artifacts are saveFvm() files under the cache
 * directory (UVOLT_CACHE_DIR or ./uvolt_model_cache), so a die
 * characterized by any process is reused by every later one. obtain()
 * is single-flight: concurrent requests for one die block on the first
 * caller's characterization instead of repeating it. A corrupt cache
 * file is re-characterized and overwritten (and counted).
 */
class FvmCache
{
  public:
    explicit FvmCache(std::string directory = defaultDirectory());

    /** UVOLT_CACHE_DIR, or ./uvolt_model_cache when unset. */
    static std::string defaultDirectory();

    const std::string &directory() const { return directory_; }

    /** Produce the map on a miss; recoverable failures propagate. */
    using Characterize = std::function<Expected<Fvm>()>;

    /** Filesystem-safe cache key for one die + characterization shape. */
    static std::string keyFor(const fpga::PlatformSpec &spec,
                              const PatternSpec &pattern,
                              int runs_per_level);

    /**
     * Cache key of a non-BRAM memory device. Carries the technology
     * tag so an HBM map can never shadow a BRAM map; BRAM devices keep
     * the untagged legacy keyFor() format (existing caches stay valid).
     */
    static std::string keyForDevice(const mem::DeviceTraits &traits,
                                    const PatternSpec &pattern,
                                    int runs_per_level);

    /**
     * The die's map: from memory, else from disk, else by running
     * @a characterize exactly once (other threads wait and share the
     * result). The returned pointer aliases the in-memory entry.
     */
    Expected<std::shared_ptr<const Fvm>>
    obtain(const fpga::PlatformSpec &spec, const PatternSpec &pattern,
           int runs_per_level, const Characterize &characterize);

    /**
     * Publish an already-measured map (fleet engines feed the cache as
     * a side effect of their sweeps). Overwrites memory + disk.
     */
    Expected<void> store(const fpga::PlatformSpec &spec,
                         const PatternSpec &pattern, int runs_per_level,
                         const Fvm &fvm);

    /**
     * Generic publication path store() delegates to: key and floorplan
     * supplied by the caller, so any MemoryDevice backend can publish
     * its per-domain map.
     */
    Expected<void> storeKeyed(const std::string &key,
                              const fpga::Floorplan &floorplan,
                              const Fvm &fvm);

    /** Drop the in-memory layer (tests exercise the disk path). */
    void evictMemory();

    FvmCacheStats stats() const;

  private:
    struct Entry
    {
        bool ready = false;   ///< false while the owner characterizes
        std::shared_ptr<const Fvm> fvm;       ///< set when ready & ok
        std::optional<Error> failure;         ///< set when ready & !ok
    };

    std::string directory_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<std::string, std::shared_ptr<Entry>> entries_;
    FvmCacheStats stats_;
};

/** Knobs of a fleet run. */
struct FleetOptions
{
    /**
     * Scratch directory for per-job sweep checkpoints ("" = none). A
     * fleet killed mid-run and re-run with the same directory resumes
     * every interrupted job from its last completed level.
     */
    std::string checkpointDir;

    /**
     * Engine-level attempts per job: a job whose recovery budget was
     * exhausted (Errc::recoveryExhausted etc.) is re-run from its
     * checkpoint this many times before the fleet reports the error.
     */
    int maxAttemptsPerJob = 3;

    /** When set, each die's merged FVM is published here (keyed by the
     *  die's reference-pattern job) once its sweeps complete. */
    FvmCache *fvmCache = nullptr;

    /**
     * Run-provenance ledger directory ("" = no ledger). A successful
     * run archives a "uvolt-run-manifest-v1" document here — config
     * digest, seeds, worker count, duration, telemetry counters — as
     * both run_manifest.json (latest) and <run_id>.json (history).
     * The Campaign facade defaults this to Ledger::defaultDirectory().
     */
    std::string ledgerDir;
};

/** Schedules a FleetPlan on a ThreadPool and aggregates the results. */
class FleetEngine
{
  public:
    explicit FleetEngine(FleetOptions options = {});

    /**
     * Run every job of @a plan on @a pool and wait for completion.
     * Results are assembled in plan order; the first job (in plan
     * order) that failed past every retry reports its error. Bitwise
     * equal to a serial run of the same plan.
     */
    Expected<FleetResult> run(const FleetPlan &plan, ThreadPool &pool);

    /** Serial reference path: same scheduling code, zero workers. */
    Expected<FleetResult> run(const FleetPlan &plan);

  private:
    Expected<FleetJobOutcome> runJob(const FleetPlan &plan,
                                     const FleetJob &job) const;

    /** Non-BRAM jobs: build the backend, program, sweep, adapt. */
    Expected<FleetJobOutcome> runMemJob(const FleetPlan &plan,
                                        const FleetJob &job) const;

    FleetOptions options_;
};

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_FLEET_HH

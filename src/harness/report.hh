/**
 * @file
 * Telemetry exporters: Chrome trace-event JSON and metrics snapshots.
 *
 * The trace exporter serializes the registry's spans as the Chrome
 * trace-event format ("X" complete events, microsecond timebase), the
 * file format Perfetto and chrome://tracing load directly — open
 * ui.perfetto.dev and drop the file in. The metrics exporters render a
 * snapshot as JSON (machines) and as the repo's TextTable/CSV style
 * (humans and the results/ directory, like every bench figure).
 *
 * Everything here degrades gracefully in a compiled-out build
 * (UVOLT_TELEMETRY=OFF): snapshots are empty, the writers emit empty
 * but well-formed documents.
 */

#ifndef UVOLT_HARNESS_REPORT_HH
#define UVOLT_HARNESS_REPORT_HH

#include <string>
#include <vector>

#include "util/table.hh"
#include "util/telemetry.hh"

namespace uvolt::harness
{

/** (tid, label) pairs exported as thread_name metadata records. */
using ThreadNames = std::vector<std::pair<std::uint32_t, std::string>>;

/**
 * Serialize spans as a Chrome trace-event JSON document. When
 * @a thread_names is nonempty, process_name/thread_name "M" metadata
 * records precede the spans, so Perfetto shows "fleet-worker-3"
 * timelines instead of bare tids.
 */
std::string chromeTraceJson(const std::vector<telemetry::TraceEvent> &events,
                            const ThreadNames &thread_names = {});

/**
 * Write @a events to @a path (parent directories created), Chrome
 * trace-event JSON. Returns false with a warning on I/O failure, like
 * writeCsv(), so benches keep running in read-only environments.
 */
bool writeChromeTrace(const std::vector<telemetry::TraceEvent> &events,
                      const std::string &path,
                      const ThreadNames &thread_names = {});

/** Export the global registry's spans and thread names to @a path. */
bool writeChromeTrace(const std::string &path);

/** Serialize a metrics snapshot as a JSON document. */
std::string metricsJson(const telemetry::MetricsSnapshot &snapshot);

/** Write a snapshot to @a path as JSON (parent directories created). */
bool writeMetricsJson(const telemetry::MetricsSnapshot &snapshot,
                      const std::string &path);

/**
 * Render a snapshot as the repo's table style: one row per metric with
 * columns {metric, type, value, detail}; histograms report their count
 * as the value and mean/p50/p95/p99/sum/buckets in the detail column.
 */
TextTable metricsTable(const telemetry::MetricsSnapshot &snapshot);

/** Write metricsTable() to @a path as CSV. */
bool writeMetricsCsv(const telemetry::MetricsSnapshot &snapshot,
                     const std::string &path);

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_REPORT_HH

/**
 * @file
 * Telemetry exporters: Chrome trace-event JSON and metrics snapshots.
 *
 * The trace exporter serializes the registry's spans as the Chrome
 * trace-event format ("X" complete events, microsecond timebase), the
 * file format Perfetto and chrome://tracing load directly — open
 * ui.perfetto.dev and drop the file in. The metrics exporters render a
 * snapshot as JSON (machines) and as the repo's TextTable/CSV style
 * (humans and the results/ directory, like every bench figure).
 *
 * Everything here degrades gracefully in a compiled-out build
 * (UVOLT_TELEMETRY=OFF): snapshots are empty, the writers emit empty
 * but well-formed documents.
 */

#ifndef UVOLT_HARNESS_REPORT_HH
#define UVOLT_HARNESS_REPORT_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/profiler.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

namespace uvolt::harness
{

/** (tid, label) pairs exported as thread_name metadata records. */
using ThreadNames = std::vector<std::pair<std::uint32_t, std::string>>;

/**
 * Serialize spans as a Chrome trace-event JSON document. When
 * @a thread_names is nonempty, process_name/thread_name "M" metadata
 * records precede the spans, so Perfetto shows "fleet-worker-3"
 * timelines instead of bare tids.
 */
std::string chromeTraceJson(const std::vector<telemetry::TraceEvent> &events,
                            const ThreadNames &thread_names = {});

/**
 * Write @a events to @a path (parent directories created), Chrome
 * trace-event JSON. Returns false with a warning on I/O failure, like
 * writeCsv(), so benches keep running in read-only environments.
 */
bool writeChromeTrace(const std::vector<telemetry::TraceEvent> &events,
                      const std::string &path,
                      const ThreadNames &thread_names = {});

/** Export the global registry's spans and thread names to @a path. */
bool writeChromeTrace(const std::string &path);

/** Serialize a metrics snapshot as a JSON document. */
std::string metricsJson(const telemetry::MetricsSnapshot &snapshot);

/** Write a snapshot to @a path as JSON (parent directories created). */
bool writeMetricsJson(const telemetry::MetricsSnapshot &snapshot,
                      const std::string &path);

/**
 * Render a snapshot as the repo's table style: one row per metric with
 * columns {metric, type, value, detail}; histograms report their count
 * as the value and mean/p50/p95/p99/sum/buckets in the detail column.
 */
TextTable metricsTable(const telemetry::MetricsSnapshot &snapshot);

/** Write metricsTable() to @a path as CSV. */
bool writeMetricsCsv(const telemetry::MetricsSnapshot &snapshot,
                     const std::string &path);

/**
 * Render a snapshot in the Prometheus text exposition format: every
 * metric prefixed "uvolt_" (dots become underscores), counters and
 * gauges as single samples, histograms as cumulative "_bucket" series
 * with exact `le` bounds plus "+Inf", "_sum", and "_count" — the layout
 * promtool and any Prometheus scraper accept verbatim.
 */
std::string prometheusText(const telemetry::MetricsSnapshot &snapshot);

/** Write prometheusText() to @a path crash-atomically (tmp + rename),
 *  so a concurrent scrape never reads a torn file. */
bool writePrometheus(const telemetry::MetricsSnapshot &snapshot,
                     const std::string &path);

/**
 * Render a sampled profile as a self-contained HTML flame graph: the
 * folded stacks are embedded in the document and laid out by a small
 * inline script (nested proportional boxes, click to zoom, hover for
 * counts) — no external viewer, library, or network access needed.
 * @a title labels the page ("ext_fleet, 4132 samples @ 997us").
 */
std::string flameGraphHtml(const profiler::Profile &profile,
                           const std::string &title);

/** Write flameGraphHtml() to @a path (parent directories created). */
bool writeFlameGraph(const profiler::Profile &profile,
                     const std::string &title, const std::string &path);

/**
 * Periodic live exposition: a background thread that rewrites @a path
 * with the global registry's current snapshot every @a period. stop()
 * (or destruction) writes one final snapshot so even a short-lived
 * process leaves a complete file behind.
 */
class MetricsPulse
{
  public:
    MetricsPulse(std::string path, std::chrono::milliseconds period);
    ~MetricsPulse();

    MetricsPulse(const MetricsPulse &) = delete;
    MetricsPulse &operator=(const MetricsPulse &) = delete;

    /** Final write + join; idempotent. */
    void stop();

    /** Snapshots written so far (including the final one). */
    std::uint64_t writes() const;

  private:
    std::string path_;
    std::chrono::milliseconds period_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::uint64_t writes_ = 0;
    std::thread thread_;
};

} // namespace uvolt::harness

#endif // UVOLT_HARNESS_REPORT_HH

#include "harness/report.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/format.hh"
#include "util/fsio.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

namespace
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string
jsonEscaped(std::string_view text)
{
    return json::escaped(text);
}

/** Microseconds with nanosecond precision (Chrome's timebase). */
std::string
microseconds(std::uint64_t ns)
{
    return strFormat("{}.{:03}", ns / 1000, ns % 1000);
}

bool
writeDocument(const std::string &document, const std::string &path)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path);
    if (!out) {
        warnc("report", "could not open '{}' for writing", path);
        return false;
    }
    out << document;
    return static_cast<bool>(out);
}

} // namespace

std::string
chromeTraceJson(const std::vector<telemetry::TraceEvent> &events,
                const ThreadNames &thread_names)
{
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // Metadata records first: name the process, then each known
    // thread, so Perfetto's timeline rows carry labels.
    if (!thread_names.empty()) {
        out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":0,\"args\":{\"name\":\"uvolt\"}}";
        first = false;
        for (const auto &[tid, name] : thread_names) {
            out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                   "\"tid\":"
                << tid << ",\"args\":{\"name\":\""
                << jsonEscaped(name) << "\"}}";
        }
    }
    for (const auto &event : events) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"name\":\"" << jsonEscaped(event.name)
            << "\",\"cat\":\"uvolt\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << event.tid << ",\"ts\":" << microseconds(event.startNs)
            << ",\"dur\":" << microseconds(event.durNs);
        // Span/flow linkage rides in args; ids are emitted only when
        // set, so unlinked spans serialize exactly as before PR 8.
        if (!event.args.empty() || event.spanId != 0) {
            out << ",\"args\":{";
            bool first_arg = true;
            for (const auto &[key, value] : event.args) {
                if (!first_arg)
                    out << ",";
                first_arg = false;
                out << "\"" << jsonEscaped(key) << "\":\""
                    << jsonEscaped(value) << "\"";
            }
            if (event.spanId != 0) {
                out << (first_arg ? "" : ",") << "\"span\":\""
                    << event.spanId << "\",\"parent\":\""
                    << event.parentId << "\"";
                if (event.flowId != 0)
                    out << ",\"flow\":\"" << event.flowId << "\"";
            }
            out << "}";
        }
        out << "}";
        // Bind a flow point to the slice: an "s"/"t"/"f" record inside
        // the X event above attaches to it, and Perfetto draws the
        // arrows connecting every slice that shares the id. Start and
        // step bind at the slice start; finish binds at the slice END
        // (bp:"e" plus the end timestamp) — a request's terminal span
        // opens back at admission time, and the arrow must point at
        // when the request finished, not where it began.
        if (event.flowPoint != telemetry::FlowPoint::none &&
            event.flowId != 0) {
            const bool finish =
                event.flowPoint == telemetry::FlowPoint::finish;
            const char *ph =
                event.flowPoint == telemetry::FlowPoint::start ? "s"
                : finish                                       ? "f"
                                                               : "t";
            out << ",\n{\"name\":\"request\",\"cat\":\"uvolt.flow\","
                   "\"ph\":\""
                << ph << "\",\"id\":" << event.flowId
                << ",\"pid\":1,\"tid\":" << event.tid << ",\"ts\":"
                << microseconds(finish ? event.startNs + event.durNs
                                       : event.startNs);
            if (finish)
                out << ",\"bp\":\"e\"";
            out << "}";
        }
    }
    out << "\n]}\n";
    return out.str();
}

bool
writeChromeTrace(const std::vector<telemetry::TraceEvent> &events,
                 const std::string &path,
                 const ThreadNames &thread_names)
{
    return writeDocument(chromeTraceJson(events, thread_names), path);
}

bool
writeChromeTrace(const std::string &path)
{
    const telemetry::Registry &registry = telemetry::Registry::global();
    return writeChromeTrace(registry.traceEvents(), path,
                            registry.threadNames());
}

std::string
metricsJson(const telemetry::MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        out << (first ? "" : ",") << "\n    \"" << jsonEscaped(name)
            << "\": " << value;
        first = false;
    }
    out << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        out << (first ? "" : ",") << "\n    \"" << jsonEscaped(name)
            << "\": " << strFormat("{:.6f}", value);
        first = false;
    }
    out << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &histogram : snapshot.histograms) {
        out << (first ? "" : ",") << "\n    \""
            << jsonEscaped(histogram.name) << "\": {\"count\": "
            << histogram.count << ", \"sum\": "
            << strFormat("{:.6f}", histogram.sum) << ", \"p50\": "
            << strFormat("{:.6f}", histogram.p50()) << ", \"p95\": "
            << strFormat("{:.6f}", histogram.p95()) << ", \"p99\": "
            << strFormat("{:.6f}", histogram.p99()) << ", \"bounds\": [";
        for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
            out << (i ? "," : "")
                << strFormat("{:.6f}", histogram.bounds[i]);
        }
        out << "], \"buckets\": [";
        for (std::size_t i = 0; i < histogram.buckets.size(); ++i)
            out << (i ? "," : "") << histogram.buckets[i];
        out << "]}";
        first = false;
    }
    out << "\n  }\n}\n";
    return out.str();
}

bool
writeMetricsJson(const telemetry::MetricsSnapshot &snapshot,
                 const std::string &path)
{
    return writeDocument(metricsJson(snapshot), path);
}

TextTable
metricsTable(const telemetry::MetricsSnapshot &snapshot)
{
    TextTable table({"metric", "type", "value", "detail"});
    for (const auto &[name, value] : snapshot.counters)
        table.addRow({name, "counter", std::to_string(value), ""});
    for (const auto &[name, value] : snapshot.gauges)
        table.addRow({name, "gauge", fmtDouble(value), ""});
    for (const auto &histogram : snapshot.histograms) {
        std::string buckets;
        for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
            if (i)
                buckets += " ";
            buckets += std::to_string(histogram.buckets[i]);
        }
        table.addRow({histogram.name, "histogram",
                      std::to_string(histogram.count),
                      strFormat("mean={} p50={} p95={} p99={} sum={} "
                                "buckets=[{}]",
                                fmtDouble(histogram.mean()),
                                fmtDouble(histogram.p50()),
                                fmtDouble(histogram.p95()),
                                fmtDouble(histogram.p99()),
                                fmtDouble(histogram.sum), buckets)});
    }
    return table;
}

bool
writeMetricsCsv(const telemetry::MetricsSnapshot &snapshot,
                const std::string &path)
{
    return writeCsv(metricsTable(snapshot), path);
}

namespace
{

/** "serve.e2e_ms" -> "uvolt_serve_e2e_ms" (Prometheus name charset). */
std::string
prometheusName(std::string_view name)
{
    std::string out = "uvolt_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Shortest default stream rendering ("0.05", "1", "2000"). */
std::string
prometheusNumber(double value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

} // namespace

std::string
prometheusText(const telemetry::MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string prom = prometheusName(name);
        out << "# TYPE " << prom << " counter\n"
            << prom << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string prom = prometheusName(name);
        out << "# TYPE " << prom << " gauge\n"
            << prom << " " << prometheusNumber(value) << "\n";
    }
    for (const auto &histogram : snapshot.histograms) {
        const std::string prom = prometheusName(histogram.name);
        out << "# TYPE " << prom << " histogram\n";
        // Prometheus buckets are cumulative; the registry's are
        // per-bucket counts, so running-sum them on the way out.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
            cumulative += histogram.buckets[b];
            out << prom << "_bucket{le=\""
                << prometheusNumber(histogram.bounds[b]) << "\"} "
                << cumulative << "\n";
        }
        out << prom << "_bucket{le=\"+Inf\"} " << histogram.count
            << "\n";
        out << prom << "_sum " << prometheusNumber(histogram.sum)
            << "\n";
        out << prom << "_count " << histogram.count << "\n";
    }
    return out.str();
}

bool
writePrometheus(const telemetry::MetricsSnapshot &snapshot,
                const std::string &path)
{
    const auto written = writeFileAtomic(path, prometheusText(snapshot));
    if (!written) {
        warnc("report", "could not write prometheus snapshot '{}'", path);
        return false;
    }
    return true;
}

namespace
{

/** JS string literal body: JSON escapes plus "<" as < so folded
 *  data can never form a "</script>" and truncate the document. */
std::string
scriptEscaped(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '<') {
            out += "\\u003c";
        } else {
            out += json::escaped(std::string_view(&c, 1));
        }
    }
    return out;
}

} // namespace

std::string
flameGraphHtml(const profiler::Profile &profile,
               const std::string &title)
{
    std::ostringstream out;
    out << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        << "<title>uvolt flame graph</title>\n"
        << "<style>\n"
        << "body{font:13px monospace;margin:16px;background:#fdfdfd}\n"
        << "#title{font-weight:bold;margin-bottom:2px}\n"
        << "#meta{color:#666;margin-bottom:10px}\n"
        << "#graph{position:relative}\n"
        << ".frame{position:absolute;height:20px;overflow:hidden;"
        << "white-space:nowrap;box-sizing:border-box;border:1px solid "
        << "#fdfdfd;border-radius:2px;padding:2px 3px;cursor:pointer;"
        << "color:#222}\n"
        << ".frame:hover{filter:brightness(0.85)}\n"
        << "#reset{color:#33c;cursor:pointer;margin-bottom:8px;"
        << "display:inline-block}\n"
        << "</style>\n</head>\n<body>\n"
        << "<div id=\"title\">" << json::escaped(title) << "</div>\n"
        << "<div id=\"meta\">" << profile.samples << " samples, "
        << profile.folded.size() << " distinct stacks, interval "
        << profile.intervalUs << "us"
        << (profile.flowSamples
                ? strFormat(", {} in request flows", profile.flowSamples)
                : std::string())
        << "</div>\n"
        << "<span id=\"reset\" onclick=\"render(root)\">reset "
        << "zoom</span>\n<div id=\"graph\"></div>\n<script>\n"
        << "const folded = \"" << scriptEscaped(profile.foldedText())
        << "\";\n";
    out << R"JS(
// Build the call tree from the collapsed-stack lines.
const root = {name: "all", value: 0, children: new Map()};
for (const line of folded.split("\n")) {
  const cut = line.lastIndexOf(" ");
  if (cut <= 0) continue;
  const count = Number(line.slice(cut + 1));
  if (!Number.isFinite(count)) continue;
  root.value += count;
  let node = root;
  for (const frame of line.slice(0, cut).split(";")) {
    if (!node.children.has(frame))
      node.children.set(frame, {name: frame, value: 0,
                                children: new Map()});
    node = node.children.get(frame);
    node.value += count;
  }
}

// Deterministic warm palette keyed on the frame name.
function color(name) {
  let hash = 2166136261;
  for (const c of name) hash = (hash ^ c.charCodeAt(0)) * 16777619 >>> 0;
  return `hsl(${20 + hash % 40}, ${70 + (hash >> 8) % 25}%, ` +
         `${62 + (hash >> 16) % 18}%)`;
}

// Icicle layout: absolutely positioned boxes, width proportional to
// sample count, children packed left-to-right under their parent (the
// remainder past the last child is the parent's self time). Click a
// frame to zoom its subtree, "reset zoom" to go back.
function render(focus) {
  const graph = document.getElementById("graph");
  graph.innerHTML = "";
  let maxDepth = 0;
  const place = (node, x, width, depth) => {
    maxDepth = Math.max(maxDepth, depth);
    const div = document.createElement("div");
    div.className = "frame";
    div.style.left = (x * 100) + "%";
    div.style.width = (width * 100) + "%";
    div.style.top = (depth * 21) + "px";
    div.style.background = node === focus ? "#ddd" : color(node.name);
    const pct = (100 * node.value / focus.value).toFixed(1);
    div.textContent = node.name;
    div.title = `${node.name} — ${node.value} samples (${pct}% of ` +
                `view)`;
    div.onclick = () => render(node);
    graph.appendChild(div);
    let childX = x;
    const kids = [...node.children.values()]
        .sort((a, b) => a.name < b.name ? -1 : 1);
    for (const child of kids) {
      const childWidth = width * child.value / node.value;
      place(child, childX, childWidth, depth + 1);
      childX += childWidth;
    }
  };
  place(focus, 0, 1, 0);
  graph.style.height = ((maxDepth + 1) * 21) + "px";
}
render(root);
)JS";
    out << "</script>\n</body>\n</html>\n";
    return out.str();
}

bool
writeFlameGraph(const profiler::Profile &profile,
                const std::string &title, const std::string &path)
{
    return writeDocument(flameGraphHtml(profile, title), path);
}

MetricsPulse::MetricsPulse(std::string path,
                           std::chrono::milliseconds period)
    : path_(std::move(path)), period_(period)
{
    thread_ = std::thread([this] {
        // Name the exposition thread so traces and profiles label it
        // instead of showing an anonymous tid.
        telemetry::setCurrentThreadName("metrics-pulse");
        std::unique_lock lock(mutex_);
        while (!stopping_) {
            lock.unlock();
            const bool ok = writePrometheus(
                telemetry::Registry::global().metrics(), path_);
            lock.lock();
            if (ok)
                ++writes_;
            cv_.wait_for(lock, period_, [this] { return stopping_; });
        }
    });
}

MetricsPulse::~MetricsPulse()
{
    stop();
}

void
MetricsPulse::stop()
{
    {
        std::lock_guard lock(mutex_);
        if (stopping_) // already stopped; keep stop() idempotent
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // One final write so the file reflects the end state of the run.
    if (writePrometheus(telemetry::Registry::global().metrics(), path_)) {
        std::lock_guard lock(mutex_);
        ++writes_;
    }
}

std::uint64_t
MetricsPulse::writes() const
{
    std::lock_guard lock(mutex_);
    return writes_;
}

} // namespace uvolt::harness

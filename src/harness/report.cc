#include "harness/report.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/format.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

namespace
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string
jsonEscaped(std::string_view text)
{
    return json::escaped(text);
}

/** Microseconds with nanosecond precision (Chrome's timebase). */
std::string
microseconds(std::uint64_t ns)
{
    return strFormat("{}.{:03}", ns / 1000, ns % 1000);
}

bool
writeDocument(const std::string &document, const std::string &path)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path);
    if (!out) {
        warn("could not open '{}' for writing", path);
        return false;
    }
    out << document;
    return static_cast<bool>(out);
}

} // namespace

std::string
chromeTraceJson(const std::vector<telemetry::TraceEvent> &events,
                const ThreadNames &thread_names)
{
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // Metadata records first: name the process, then each known
    // thread, so Perfetto's timeline rows carry labels.
    if (!thread_names.empty()) {
        out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":0,\"args\":{\"name\":\"uvolt\"}}";
        first = false;
        for (const auto &[tid, name] : thread_names) {
            out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                   "\"tid\":"
                << tid << ",\"args\":{\"name\":\""
                << jsonEscaped(name) << "\"}}";
        }
    }
    for (const auto &event : events) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"name\":\"" << jsonEscaped(event.name)
            << "\",\"cat\":\"uvolt\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << event.tid << ",\"ts\":" << microseconds(event.startNs)
            << ",\"dur\":" << microseconds(event.durNs);
        if (!event.args.empty()) {
            out << ",\"args\":{";
            bool first_arg = true;
            for (const auto &[key, value] : event.args) {
                if (!first_arg)
                    out << ",";
                first_arg = false;
                out << "\"" << jsonEscaped(key) << "\":\""
                    << jsonEscaped(value) << "\"";
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n]}\n";
    return out.str();
}

bool
writeChromeTrace(const std::vector<telemetry::TraceEvent> &events,
                 const std::string &path,
                 const ThreadNames &thread_names)
{
    return writeDocument(chromeTraceJson(events, thread_names), path);
}

bool
writeChromeTrace(const std::string &path)
{
    const telemetry::Registry &registry = telemetry::Registry::global();
    return writeChromeTrace(registry.traceEvents(), path,
                            registry.threadNames());
}

std::string
metricsJson(const telemetry::MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        out << (first ? "" : ",") << "\n    \"" << jsonEscaped(name)
            << "\": " << value;
        first = false;
    }
    out << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        out << (first ? "" : ",") << "\n    \"" << jsonEscaped(name)
            << "\": " << strFormat("{:.6f}", value);
        first = false;
    }
    out << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &histogram : snapshot.histograms) {
        out << (first ? "" : ",") << "\n    \""
            << jsonEscaped(histogram.name) << "\": {\"count\": "
            << histogram.count << ", \"sum\": "
            << strFormat("{:.6f}", histogram.sum) << ", \"p50\": "
            << strFormat("{:.6f}", histogram.p50()) << ", \"p95\": "
            << strFormat("{:.6f}", histogram.p95()) << ", \"p99\": "
            << strFormat("{:.6f}", histogram.p99()) << ", \"bounds\": [";
        for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
            out << (i ? "," : "")
                << strFormat("{:.6f}", histogram.bounds[i]);
        }
        out << "], \"buckets\": [";
        for (std::size_t i = 0; i < histogram.buckets.size(); ++i)
            out << (i ? "," : "") << histogram.buckets[i];
        out << "]}";
        first = false;
    }
    out << "\n  }\n}\n";
    return out.str();
}

bool
writeMetricsJson(const telemetry::MetricsSnapshot &snapshot,
                 const std::string &path)
{
    return writeDocument(metricsJson(snapshot), path);
}

TextTable
metricsTable(const telemetry::MetricsSnapshot &snapshot)
{
    TextTable table({"metric", "type", "value", "detail"});
    for (const auto &[name, value] : snapshot.counters)
        table.addRow({name, "counter", std::to_string(value), ""});
    for (const auto &[name, value] : snapshot.gauges)
        table.addRow({name, "gauge", fmtDouble(value), ""});
    for (const auto &histogram : snapshot.histograms) {
        std::string buckets;
        for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
            if (i)
                buckets += " ";
            buckets += std::to_string(histogram.buckets[i]);
        }
        table.addRow({histogram.name, "histogram",
                      std::to_string(histogram.count),
                      strFormat("mean={} p50={} p95={} p99={} sum={} "
                                "buckets=[{}]",
                                fmtDouble(histogram.mean()),
                                fmtDouble(histogram.p50()),
                                fmtDouble(histogram.p95()),
                                fmtDouble(histogram.p99()),
                                fmtDouble(histogram.sum), buckets)});
    }
    return table;
}

bool
writeMetricsCsv(const telemetry::MetricsSnapshot &snapshot,
                const std::string &path)
{
    return writeCsv(metricsTable(snapshot), path);
}

} // namespace uvolt::harness

#include "harness/fvm_io.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fsio.hh"
#include "util/logging.hh"

namespace uvolt::harness
{

bool
saveFvm(const Fvm &fvm, const fpga::Floorplan &floorplan,
        const std::string &path)
{
    std::ostringstream out;
    out << "#uvolt-fvm v1 " << fvm.platform() << ' '
        << floorplan.width() << ' ' << floorplan.height() << ' '
        << fvm.bramCount() << '\n';
    for (std::uint32_t b = 0; b < fvm.bramCount(); ++b) {
        const fpga::Site site = floorplan.siteOf(b);
        out << site.x << ',' << site.y << ',' << fvm.faultsOf(b) << '\n';
    }
    // Crash-atomic: a concurrent reader (or a process killed mid-save)
    // must see either the previous complete map or the new one — a
    // truncated file would count as a corrupt-cache re-characterization.
    if (auto written = writeFileAtomic(path, out.str(),
                                       Errc::corruptCache);
        !written.ok()) {
        warnc("fvmio", "saveFvm: {}", written.error().message);
        return false;
    }
    return true;
}

Expected<void>
trySaveFvm(const Fvm &fvm, const fpga::Floorplan &floorplan,
           const std::string &path)
{
    if (!saveFvm(fvm, floorplan, path))
        return makeError(Errc::corruptCache,
                         "cannot write FVM cache file '{}'", path);
    return {};
}

Expected<Fvm>
tryLoadFvm(const fpga::Floorplan &floorplan, const std::string &path)
{
    if (!std::filesystem::exists(path))
        return makeError(Errc::cacheMiss, "no FVM cache file at '{}'",
                         path);
    auto fvm = loadFvm(floorplan, path);
    if (!fvm)
        return makeError(Errc::corruptCache,
                         "FVM cache file '{}' is malformed or belongs to "
                         "a different chip/floorplan",
                         path);
    return *std::move(fvm);
}

std::optional<Fvm>
loadFvm(const fpga::Floorplan &floorplan, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    std::string header;
    if (!std::getline(in, header))
        return std::nullopt;
    std::istringstream head(header);
    std::string magic, platform;
    int width = 0, height = 0;
    std::uint32_t count = 0;
    head >> magic >> platform >> width >> height >> count;
    if (magic != "#uvolt-fvm" || platform.empty())
        return std::nullopt;
    // The stream also swallowed the "v1" token as platform if the
    // format string shifted; re-parse strictly.
    {
        std::istringstream strict(header);
        std::string tag, version;
        strict >> tag >> version >> platform >> width >> height >> count;
        if (tag != "#uvolt-fvm" || version != "v1")
            return std::nullopt;
    }
    if (width != floorplan.width() || height != floorplan.height() ||
        count != floorplan.bramCount()) {
        warnc("fvmio", "loadFvm: '{}' is for a {}x{}/{} floorplan, expected "
             "{}x{}/{}",
             path, width, height, count, floorplan.width(),
             floorplan.height(), floorplan.bramCount());
        return std::nullopt;
    }

    std::vector<int> faults(count, -1);
    std::string line;
    std::uint32_t rows = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        int x = 0, y = 0, value = 0;
        char comma1 = 0, comma2 = 0;
        std::istringstream fields(line);
        fields >> x >> comma1 >> y >> comma2 >> value;
        if (!fields || comma1 != ',' || comma2 != ',' || value < 0)
            return std::nullopt;
        const auto bram = floorplan.bramAt({x, y});
        if (!bram || faults[*bram] >= 0)
            return std::nullopt; // unknown or duplicate site
        faults[*bram] = value;
        ++rows;
    }
    if (rows != count)
        return std::nullopt;
    return Fvm(platform, floorplan, std::move(faults));
}

} // namespace uvolt::harness

/**
 * @file
 * Procedural stand-ins for the paper's three NN benchmarks.
 *
 * - makeMnistLike(): 28x28 grey-scale digit images rendered from
 *   seven-segment glyph prototypes with per-sample translation, stroke
 *   wobble, additive noise, and patch erasures. Difficulty parameters
 *   are tuned so the paper's 6-layer baseline reaches an inherent
 *   classification error near MNIST's 2.56%.
 * - makeForestLike(): 54 cartographic-style features, 7 cover classes
 *   (Gaussian class clusters plus pure-noise nuisance features).
 * - makeReutersLike(): sparse bag-of-words documents over a fixed
 *   vocabulary, 8 topics. Constructed to be the least sparse of the
 *   three (the paper observes Reuters is least resilient for exactly
 *   this reason).
 *
 * All generators are deterministic in (count, seed, options).
 */

#ifndef UVOLT_DATA_SYNTHETIC_HH
#define UVOLT_DATA_SYNTHETIC_HH

#include <cstdint>

#include "data/dataset.hh"

namespace uvolt::data
{

/** Image geometry of the MNIST-like corpus. */
constexpr int mnistSide = 28;
constexpr int mnistPixels = mnistSide * mnistSide;
constexpr int mnistClasses = 10;

/** Difficulty knobs for the MNIST-like generator. */
struct MnistOptions
{
    double noiseSigma = 0.08;  ///< additive pixel noise
    double erasureProb = 0.20; ///< chance of a missing patch
    int erasureSize = 6;       ///< square patch edge, pixels
    double wobbleProb = 0.35;  ///< chance of per-row horizontal jitter
    int maxShift = 2;          ///< translation range, pixels

    /**
     * Ghosting: with this probability the image carries a fainter
     * overlay of a *different* digit, with overlay strength drawn
     * uniformly from (0, ghostMax]. This gives the corpus a graded
     * difficulty continuum (like real handwriting) instead of a
     * bimodal easy/illegible split, which is what puts probability
     * mass near the decision boundaries — the property that makes a
     * classifier measurably sensitive to weight perturbations.
     */
    double ghostProb = 0.25;
    double ghostMax = 0.60;
};

/** Generate an MNIST-like digit dataset. */
Dataset makeMnistLike(std::size_t count, std::uint64_t seed,
                      const MnistOptions &options = {});

/** Shape of the Forest-like corpus. */
constexpr int forestFeatures = 54;
constexpr int forestClasses = 7;

/**
 * Generate a Forest-like tabular dataset.
 * @param separation class-center spread relative to unit noise
 */
Dataset makeForestLike(std::size_t count, std::uint64_t seed,
                       double separation = 0.5);

/** Shape of the Reuters-like corpus. */
constexpr int reutersVocab = 600;
constexpr int reutersClasses = 8;

/**
 * Generate a Reuters-like bag-of-words dataset.
 * @param topic_weight share of each document drawn from its class topic
 *        (the remainder comes from a shared background distribution)
 */
Dataset makeReutersLike(std::size_t count, std::uint64_t seed,
                        double topic_weight = 0.40);

} // namespace uvolt::data

#endif // UVOLT_DATA_SYNTHETIC_HH

#include "data/synthetic.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/rng.hh"

namespace uvolt::data
{

namespace
{

// ---------------------------------------------------------------------
// MNIST-like digits
// ---------------------------------------------------------------------

/**
 * Seven-segment encoding per digit: bits {A, B, C, D, E, F, G} where A is
 * the top bar, B/C the right verticals, D the bottom bar, E/F the left
 * verticals, and G the middle bar.
 */
constexpr std::array<std::uint8_t, 10> digitSegments = {
    0b0111111, // 0: A B C D E F
    0b0000110, // 1: B C
    0b1011011, // 2: A B D E G
    0b1001111, // 3: A B C D G
    0b1100110, // 4: B C F G
    0b1101101, // 5: A C D F G
    0b1111101, // 6: A C D E F G
    0b0000111, // 7: A B C
    0b1111111, // 8: all
    0b1101111, // 9: A B C D F G
};

/** Glyph box inside the 28x28 frame. */
constexpr int glyphLeft = 8;
constexpr int glyphRight = 19;
constexpr int glyphTop = 4;
constexpr int glyphMid = 13;
constexpr int glyphBottom = 23;
constexpr int strokeThickness = 2;

void
paintHorizontal(std::vector<float> &image, int y, float level)
{
    for (int t = 0; t < strokeThickness; ++t) {
        for (int x = glyphLeft; x <= glyphRight; ++x)
            image[static_cast<std::size_t>((y + t) * mnistSide + x)] = level;
    }
}

void
paintVertical(std::vector<float> &image, int x, int y0, int y1, float level)
{
    for (int t = 0; t < strokeThickness; ++t) {
        for (int y = y0; y <= y1; ++y)
            image[static_cast<std::size_t>(y * mnistSide + x + t)] = level;
    }
}

/** Render the clean prototype of one digit. */
std::vector<float>
renderDigit(int digit, float level)
{
    std::vector<float> image(mnistPixels, 0.0f);
    const std::uint8_t segments = digitSegments[
        static_cast<std::size_t>(digit)];
    if (segments & 0b0000001) // A
        paintHorizontal(image, glyphTop, level);
    if (segments & 0b0000010) // B
        paintVertical(image, glyphRight - strokeThickness + 1, glyphTop,
                      glyphMid, level);
    if (segments & 0b0000100) // C
        paintVertical(image, glyphRight - strokeThickness + 1, glyphMid,
                      glyphBottom, level);
    if (segments & 0b0001000) // D
        paintHorizontal(image, glyphBottom, level);
    if (segments & 0b0010000) // E
        paintVertical(image, glyphLeft, glyphMid, glyphBottom, level);
    if (segments & 0b0100000) // F
        paintVertical(image, glyphLeft, glyphTop, glyphMid, level);
    if (segments & 0b1000000) // G
        paintHorizontal(image, glyphMid, level);
    return image;
}

} // namespace

Dataset
makeMnistLike(std::size_t count, std::uint64_t seed,
              const MnistOptions &options)
{
    Dataset set("mnist-like", mnistPixels, mnistClasses);
    Rng rng(combineSeeds(seed, hashSeed("mnist-like")));

    std::vector<float> image(mnistPixels);
    std::vector<float> shifted(mnistPixels);
    for (std::size_t i = 0; i < count; ++i) {
        const int digit = static_cast<int>(rng.uniformInt(0, 9));
        const float level =
            static_cast<float>(rng.uniform(0.7, 1.0));
        image = renderDigit(digit, level);

        // Ghost overlay: a fainter second digit blended in, making the
        // sample's class evidence ambiguous in proportion to alpha.
        if (rng.chance(options.ghostProb)) {
            int ghost;
            do {
                ghost = static_cast<int>(rng.uniformInt(0, 9));
            } while (ghost == digit);
            const float alpha = static_cast<float>(
                rng.uniform(0.0, options.ghostMax));
            const std::vector<float> ghost_image =
                renderDigit(ghost, level * alpha);
            for (int p = 0; p < mnistPixels; ++p) {
                auto &pixel = image[static_cast<std::size_t>(p)];
                pixel = std::max(pixel,
                                 ghost_image[static_cast<std::size_t>(p)]);
            }
        }

        // Per-row horizontal wobble (stroke slant / handwriting jitter).
        if (rng.chance(options.wobbleProb)) {
            for (int y = 0; y < mnistSide; ++y) {
                const int jitter =
                    static_cast<int>(rng.uniformInt(0, 2)) - 1;
                if (jitter == 0)
                    continue;
                float *row = image.data() + y * mnistSide;
                if (jitter > 0) {
                    for (int x = mnistSide - 1; x >= 1; --x)
                        row[x] = row[x - 1];
                    row[0] = 0.0f;
                } else {
                    for (int x = 0; x < mnistSide - 1; ++x)
                        row[x] = row[x + 1];
                    row[mnistSide - 1] = 0.0f;
                }
            }
        }

        // Global translation.
        const int max_shift = options.maxShift;
        const int dx = static_cast<int>(rng.uniformInt(
                           0, static_cast<std::uint64_t>(2 * max_shift))) -
            max_shift;
        const int dy = static_cast<int>(rng.uniformInt(
                           0, static_cast<std::uint64_t>(2 * max_shift))) -
            max_shift;
        std::fill(shifted.begin(), shifted.end(), 0.0f);
        for (int y = 0; y < mnistSide; ++y) {
            const int sy = y - dy;
            if (sy < 0 || sy >= mnistSide)
                continue;
            for (int x = 0; x < mnistSide; ++x) {
                const int sx = x - dx;
                if (sx < 0 || sx >= mnistSide)
                    continue;
                shifted[static_cast<std::size_t>(y * mnistSide + x)] =
                    image[static_cast<std::size_t>(sy * mnistSide + sx)];
            }
        }

        // Patch erasure: drop a square chunk of the glyph.
        if (rng.chance(options.erasureProb)) {
            const int ex = static_cast<int>(rng.uniformInt(
                glyphLeft - 2,
                static_cast<std::uint64_t>(glyphRight - 2)));
            const int ey = static_cast<int>(rng.uniformInt(
                glyphTop, static_cast<std::uint64_t>(glyphBottom - 2)));
            for (int y = ey; y < ey + options.erasureSize; ++y) {
                for (int x = ex; x < ex + options.erasureSize; ++x) {
                    if (y >= 0 && y < mnistSide && x >= 0 && x < mnistSide) {
                        shifted[static_cast<std::size_t>(
                            y * mnistSide + x)] = 0.0f;
                    }
                }
            }
        }

        // Additive sensor noise, clamped to the valid intensity range.
        for (auto &pixel : shifted) {
            pixel += static_cast<float>(
                rng.gaussian(0.0, options.noiseSigma));
            pixel = std::clamp(pixel, 0.0f, 1.0f);
        }

        set.add(shifted, digit);
    }
    return set;
}

Dataset
makeForestLike(std::size_t count, std::uint64_t seed, double separation)
{
    Dataset set("forest-like", forestFeatures, forestClasses);
    // Class structure is a fixed property of the corpus, not of the
    // sample seed: train and held-out sets drawn with different seeds
    // must share the same underlying classes.
    Rng center_rng(hashSeed("forest-centers-v1"));

    // Class centers; the last third of the features carry no class
    // signal (shared center), acting as nuisance dimensions.
    const int informative = forestFeatures * 2 / 3;
    std::vector<std::vector<double>> centers(forestClasses);
    std::vector<double> shared(forestFeatures);
    for (auto &value : shared)
        value = center_rng.gaussian();
    for (auto &center : centers) {
        center = shared;
        for (int f = 0; f < informative; ++f)
            center[static_cast<std::size_t>(f)] =
                center_rng.gaussian() * separation;
    }

    Rng rng(combineSeeds(seed, hashSeed("forest-samples")));
    std::vector<float> sample(forestFeatures);
    for (std::size_t i = 0; i < count; ++i) {
        const int label =
            static_cast<int>(rng.uniformInt(0, forestClasses - 1));
        for (int f = 0; f < forestFeatures; ++f) {
            sample[static_cast<std::size_t>(f)] = static_cast<float>(
                centers[static_cast<std::size_t>(label)]
                       [static_cast<std::size_t>(f)] +
                rng.gaussian());
        }
        set.add(sample, label);
    }
    return set;
}

Dataset
makeReutersLike(std::size_t count, std::uint64_t seed, double topic_weight)
{
    Dataset set("reuters-like", reutersVocab, reutersClasses);
    // Topic structure is corpus-fixed (see makeForestLike).
    Rng topic_rng(hashSeed("reuters-topics-v1"));

    // Background word distribution; topics are built on top of it.
    auto make_distribution = [&topic_rng]() {
        std::vector<double> weights(reutersVocab);
        double sum = 0.0;
        for (auto &w : weights) {
            w = topic_rng.exponential(1.0);
            sum += w;
        }
        for (auto &w : weights)
            w /= sum;
        return weights;
    };

    // Topics boost words drawn from a small shared pool, so classes
    // overlap heavily (real newswire topics share economic vocabulary);
    // that overlap, not just the topic weight, sets the difficulty.
    const int pool_size = reutersVocab / 5;
    std::vector<int> shared_pool(static_cast<std::size_t>(pool_size));
    for (auto &word : shared_pool)
        word = static_cast<int>(topic_rng.uniformInt(0, reutersVocab - 1));
    auto boost_from_pool = [&](std::vector<double> weights,
                               double boost_share) {
        const int boosted = pool_size / 3;
        for (int i = 0; i < boosted; ++i) {
            const int word = shared_pool[topic_rng.uniformInt(
                0, static_cast<std::uint64_t>(pool_size) - 1)];
            weights[static_cast<std::size_t>(word)] +=
                boost_share / boosted;
        }
        double total = 0.0;
        for (double w : weights)
            total += w;
        for (auto &w : weights)
            w /= total;
        return weights;
    };

    const std::vector<double> background = make_distribution();
    std::vector<std::vector<double>> topics(reutersClasses);
    for (auto &topic : topics)
        topic = boost_from_pool(make_distribution(), 3.0);

    // Cumulative distributions for sampling.
    auto cumulative = [](const std::vector<double> &weights) {
        std::vector<double> cdf(weights.size());
        double run = 0.0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            run += weights[i];
            cdf[i] = run;
        }
        cdf.back() = 1.0;
        return cdf;
    };
    const std::vector<double> background_cdf = cumulative(background);
    std::vector<std::vector<double>> topic_cdfs(reutersClasses);
    for (int c = 0; c < reutersClasses; ++c)
        topic_cdfs[static_cast<std::size_t>(c)] =
            cumulative(topics[static_cast<std::size_t>(c)]);

    auto draw_word = [](Rng &rng, const std::vector<double> &cdf) {
        const double u = rng.uniform();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        return static_cast<int>(it - cdf.begin());
    };

    Rng rng(combineSeeds(seed, hashSeed("reuters-samples")));
    std::vector<float> sample(reutersVocab);
    for (std::size_t i = 0; i < count; ++i) {
        const int label =
            static_cast<int>(rng.uniformInt(0, reutersClasses - 1));
        std::fill(sample.begin(), sample.end(), 0.0f);
        const auto length = 25 + rng.poisson(35.0);
        for (std::uint64_t w = 0; w < length; ++w) {
            const bool topical = rng.chance(topic_weight);
            const int word = draw_word(
                rng, topical
                    ? topic_cdfs[static_cast<std::size_t>(label)]
                    : background_cdf);
            sample[static_cast<std::size_t>(word)] += 1.0f;
        }
        // Term-frequency normalization keeps inputs in a logsig-friendly
        // range and makes documents of different lengths comparable.
        const float norm = 8.0f / static_cast<float>(length);
        for (auto &value : sample)
            value *= norm;
        set.add(sample, label);
    }
    return set;
}

} // namespace uvolt::data

/**
 * @file
 * Dataset container for the NN benchmarks.
 *
 * The paper evaluates on MNIST (primary), Forest, and Reuters. Those
 * corpora are not redistributable inside this repository, so the data
 * module generates synthetic stand-ins with the same shapes and with
 * difficulty tuned so the trained baseline lands near the paper's
 * inherent error rates (2.56% on MNIST). See data/synthetic.hh.
 */

#ifndef UVOLT_DATA_DATASET_HH
#define UVOLT_DATA_DATASET_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace uvolt::data
{

/** A labeled classification dataset with flat row-major features. */
class Dataset
{
  public:
    Dataset() = default;

    /** @param name corpus label, @param features per-sample width. */
    Dataset(std::string name, int features, int classes);

    const std::string &name() const { return name_; }
    int featureCount() const { return features_; }
    int classCount() const { return classes_; }
    std::size_t size() const { return labels_.size(); }

    /** Append one sample; the span must match featureCount(). */
    void add(std::span<const float> features, int label);

    /** Feature vector of sample @a index. */
    std::span<const float> sample(std::size_t index) const;

    /**
     * Contiguous feature rows of samples [first, first + count), back
     * to back in sample order — the zero-copy input of the batched
     * evaluation engine (samples are stored flat, so a batch is one
     * span of the underlying storage).
     */
    std::span<const float> samples(std::size_t first,
                                   std::size_t count) const;

    /** Label of sample @a index. */
    int label(std::size_t index) const { return labels_[index]; }

    /** First @a count samples as a new dataset (cheap subsetting). */
    Dataset head(std::size_t count) const;

  private:
    std::string name_;
    int features_ = 0;
    int classes_ = 0;
    std::vector<float> data_;
    std::vector<int> labels_;
};

} // namespace uvolt::data

#endif // UVOLT_DATA_DATASET_HH

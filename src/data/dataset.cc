#include "data/dataset.hh"

#include "util/logging.hh"

namespace uvolt::data
{

Dataset::Dataset(std::string name, int features, int classes)
    : name_(std::move(name)), features_(features), classes_(classes)
{
    if (features <= 0 || classes <= 1)
        fatal("Dataset '{}' needs positive features and >= 2 classes",
              name_);
}

void
Dataset::add(std::span<const float> features, int label)
{
    if (static_cast<int>(features.size()) != features_)
        fatal("sample width {} != dataset width {}", features.size(),
              features_);
    if (label < 0 || label >= classes_)
        fatal("label {} outside [0, {})", label, classes_);
    data_.insert(data_.end(), features.begin(), features.end());
    labels_.push_back(label);
}

std::span<const float>
Dataset::sample(std::size_t index) const
{
    if (index >= labels_.size())
        fatal("sample {} out of dataset of {}", index, labels_.size());
    return {data_.data() + index * static_cast<std::size_t>(features_),
            static_cast<std::size_t>(features_)};
}

std::span<const float>
Dataset::samples(std::size_t first, std::size_t count) const
{
    if (first + count > labels_.size() || first + count < first)
        fatal("samples [{}, {}) out of dataset of {}", first,
              first + count, labels_.size());
    const std::size_t width = static_cast<std::size_t>(features_);
    return {data_.data() + first * width, count * width};
}

Dataset
Dataset::head(std::size_t count) const
{
    Dataset out(name_, features_, classes_);
    const std::size_t n = count < size() ? count : size();
    for (std::size_t i = 0; i < n; ++i)
        out.add(sample(i), label(i));
    return out;
}

} // namespace uvolt::data

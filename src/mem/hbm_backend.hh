/**
 * @file
 * HBM behind the MemoryDevice interface, after the undervolting
 * characterization of HBM2 stacks in arXiv:2101.00969: faults appear at
 * much coarser granularity than BRAM bitcells (a weak DRAM row misreads
 * as a unit, so one weak element masks a whole 16-bit lane), the stack
 * is organized as pseudo-channels x banks (our fault domains), reduced
 * voltage loses cell charge so faults skew strongly 1->0, and — unlike
 * BRAM's inverse thermal dependence — DRAM retention DEGRADES with
 * temperature, so the temperature coefficient has the opposite sign.
 * The measured ~2.3x power saving at the guardband edge fixes the power
 * constants.
 */

#ifndef UVOLT_MEM_HBM_BACKEND_HH
#define UVOLT_MEM_HBM_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/memory_device.hh"

namespace uvolt::mem
{

/** Catalog entry for one HBM stack. */
struct HbmSpec
{
    std::string name;    ///< e.g. "HBM2-A"
    std::string stackId; ///< stack serial; seeds the fault personality

    std::uint32_t pseudoChannels = 8;
    std::uint32_t banksPerChannel = 8;
    std::uint32_t rowsPerBank = 2048; ///< 16-bit lanes per bank

    int vnomMv = 1200;  ///< nominal HBM rail
    int vminMv = 980;   ///< guardband edge: lowest fault-free level
    int vcrashMv = 810; ///< stack stops responding below this

    double runJitterMv = 2.5;

    /** Mean weak rows per bank observable at Vcrash. */
    double weakRowsPerBankAtVcrash = 24.0;
    /** Share of weak rows failing 1->0 (charge loss dominates). */
    double oneToZeroShare = 0.95;
    /**
     * Effective-voltage shift per degC ABOVE the reference ambient;
     * positive values LOWER the effective voltage when hot (retention
     * degradation — the inverse of BRAM's ITD).
     */
    double retentionMvPerC = 0.8;

    double railPowerNomW = 6.2; ///< stack rail power at nominal
    double dynamicFraction = 0.55;
    double leakageSlope = 8.0; ///< 1/V, refresh+leakage voltage slope

    std::uint32_t bankCount() const
    {
        return pseudoChannels * banksPerChannel;
    }
};

/** Built-in HBM stacks (two dies of the same part, distinct serials). */
const std::vector<HbmSpec> &hbmCatalog();

/** Catalog lookup by name; nullptr when the name is not an HBM stack. */
const HbmSpec *findHbm(const std::string &name);

/** MemoryDevice traits of an HBM stack (no backend construction). */
DeviceTraits hbmDeviceTraits(const HbmSpec &spec);

/** One HBM stack as a MemoryDevice; domains are banks. */
class HbmBackend : public MemoryDevice
{
  public:
    /** Synthesize the stack's weak-row map: deterministic in the spec. */
    explicit HbmBackend(const HbmSpec &spec);

    void fill(std::uint16_t lane_pattern) override;
    fpga::WordSpan domainWords(std::uint32_t domain) const override;
    void assignDomainWords(std::uint32_t domain,
                           fpga::WordSpan words) override;
    std::uint64_t contentEpoch() const override;

    double effectiveVoltage(double rail_v, double temp_c,
                            double jitter_v = 0.0) const override;

    int countDomainFaults(std::uint32_t domain,
                          double effective_v) const override;
    int countDomainFaultsReference(std::uint32_t domain,
                                   double effective_v) const override;
    std::vector<std::uint64_t>
    readDomainPacked(std::uint32_t domain,
                     double effective_v) const override;

    double railPowerW(double rail_v) const override;

    std::unique_ptr<MemoryDevice> clone() const override;

    /** One weak DRAM row (the coarse fault element). */
    struct WeakRow
    {
        std::uint32_t row;
        bool oneToZero;
        float thresholdV;
    };

    /** Weak rows of one bank, sorted by row (testing/diagnostics). */
    const std::vector<WeakRow> &weakRows(std::uint32_t domain) const;

    const HbmSpec &spec() const { return spec_; }

  private:
    HbmBackend(const HbmBackend &) = default;

    HbmSpec spec_;
    PlaneStore planes_;
    std::vector<std::vector<WeakRow>> rows_; // per bank, sorted by row
    std::vector<MaskLadder> ladder10_;       // 1->0, whole-lane masks
    std::vector<MaskLadder> ladder01_;       // 0->1
};

} // namespace uvolt::mem

#endif // UVOLT_MEM_HBM_BACKEND_HH

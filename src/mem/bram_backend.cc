#include "mem/bram_backend.hh"

#include "util/logging.hh"

namespace uvolt::mem
{

DeviceTraits
bramDeviceTraits(const fpga::PlatformSpec &spec)
{
    DeviceTraits traits;
    traits.name = spec.name;
    traits.dieId = spec.serialNumber;
    traits.technology = Technology::bram;
    traits.domainCount = spec.bramCount;
    traits.wordsPerDomain = static_cast<std::uint32_t>(fpga::bramWords);
    traits.columnHeight = spec.columnHeight;
    traits.vnomMv = spec.vnomMv;
    traits.vminMv = spec.calib.bramVminMv;
    traits.vcrashMv = spec.calib.bramVcrashMv;
    traits.runJitterMv = spec.calib.runJitterMv;
    return traits;
}

BramBackend::BramBackend(
    const fpga::PlatformSpec &spec,
    std::shared_ptr<const vmodel::ChipFaultModel> model)
    : MemoryDevice(bramDeviceTraits(spec)),
      device_(std::make_unique<fpga::Device>(spec)),
      model_(std::move(model)), power_(spec)
{
    if (!model_)
        fatal("BramBackend: null chip fault model for {}", spec.name);
}

void
BramBackend::fill(std::uint16_t lane_pattern)
{
    device_->fillAll(lane_pattern);
}

fpga::WordSpan
BramBackend::domainWords(std::uint32_t domain) const
{
    return device_->bram(domain).words();
}

void
BramBackend::assignDomainWords(std::uint32_t domain, fpga::WordSpan words)
{
    device_->bram(domain).assignWords(words);
}

std::uint64_t
BramBackend::contentEpoch() const
{
    return device_->contentEpoch();
}

double
BramBackend::effectiveVoltage(double rail_v, double temp_c,
                              double jitter_v) const
{
    return model_->effectiveVoltage(rail_v, temp_c, jitter_v);
}

int
BramBackend::countDomainFaults(std::uint32_t domain,
                               double effective_v) const
{
    return model_->countFaults(device_->bram(domain).words(), domain,
                               effective_v);
}

int
BramBackend::countDomainFaultsReference(std::uint32_t domain,
                                        double effective_v) const
{
    return model_->countBramFaultsReference(device_->bram(domain), domain,
                                            effective_v);
}

std::vector<std::uint64_t>
BramBackend::readDomainPacked(std::uint32_t domain,
                              double effective_v) const
{
    return model_->readBramPacked(device_->bram(domain), domain,
                                  effective_v);
}

double
BramBackend::railPowerW(double rail_v) const
{
    return power_.bramPower(rail_v);
}

std::unique_ptr<MemoryDevice>
BramBackend::clone() const
{
    // fpga::Device is non-copyable (its BRAMs share its epoch counter),
    // so a clone builds a fresh device and copies content block by
    // block; Bram copy-assignment carries data + parity and bumps the
    // clone's own counter, never aliasing ours.
    auto copy = std::make_unique<BramBackend>(device_->spec(), model_);
    for (std::uint32_t b = 0; b < device_->bramCount(); ++b)
        copy->device_->bram(b) = device_->bram(b);
    return copy;
}

} // namespace uvolt::mem

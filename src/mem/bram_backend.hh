/**
 * @file
 * BRAM behind the MemoryDevice interface: a thin adapter over
 * fpga::Device + vmodel::ChipFaultModel. Every fault/readback call
 * delegates 1:1 to the ChipFaultModel paths the goldens were produced
 * with, so a BramBackend is bit-identical to the legacy stack by
 * construction — no fault math is reimplemented here.
 */

#ifndef UVOLT_MEM_BRAM_BACKEND_HH
#define UVOLT_MEM_BRAM_BACKEND_HH

#include <memory>

#include "fpga/device.hh"
#include "mem/memory_device.hh"
#include "power/power_model.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::mem
{

/** MemoryDevice traits of an FPGA platform's BRAM pool. */
DeviceTraits bramDeviceTraits(const fpga::PlatformSpec &spec);

/** One FPGA's BRAM pool as a MemoryDevice; domains are BRAM blocks. */
class BramBackend : public MemoryDevice
{
  public:
    /**
     * Adapt a platform's BRAM pool. The chip personality is aliased
     * (pmbus::sharedChipModel style), never copied; the fpga::Device is
     * owned by this backend.
     */
    BramBackend(const fpga::PlatformSpec &spec,
                std::shared_ptr<const vmodel::ChipFaultModel> model);

    void fill(std::uint16_t lane_pattern) override;
    fpga::WordSpan domainWords(std::uint32_t domain) const override;
    void assignDomainWords(std::uint32_t domain,
                           fpga::WordSpan words) override;
    std::uint64_t contentEpoch() const override;

    double effectiveVoltage(double rail_v, double temp_c,
                            double jitter_v = 0.0) const override;

    int countDomainFaults(std::uint32_t domain,
                          double effective_v) const override;
    int countDomainFaultsReference(std::uint32_t domain,
                                   double effective_v) const override;
    std::vector<std::uint64_t>
    readDomainPacked(std::uint32_t domain,
                     double effective_v) const override;

    double railPowerW(double rail_v) const override;

    std::unique_ptr<MemoryDevice> clone() const override;

    /** The wrapped device, for BRAM-only consumers (FVM rendering). */
    const fpga::Device &device() const { return *device_; }
    const vmodel::ChipFaultModel &model() const { return *model_; }

  private:
    std::unique_ptr<fpga::Device> device_;
    std::shared_ptr<const vmodel::ChipFaultModel> model_;
    power::RailPowerModel power_;
};

} // namespace uvolt::mem

#endif // UVOLT_MEM_BRAM_BACKEND_HH

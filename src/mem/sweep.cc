#include "mem/sweep.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace uvolt::mem
{

namespace
{

/** The stateless per-(level, run) jitter draw (see file comment). */
double
jitterDraw(std::uint64_t seed, int rail_mv, int run, double sigma_mv)
{
    Rng rng(combineSeeds(seed,
                         combineSeeds(static_cast<std::uint64_t>(rail_mv),
                                      static_cast<std::uint64_t>(run))));
    return rng.gaussian(0.0, sigma_mv / 1000.0);
}

} // namespace

MemSweepResult
runMemSweep(const MemoryDevice &device, const MemSweepOptions &options)
{
    const DeviceTraits &traits = device.traits();
    const int from =
        options.fromMv.value_or(traits.vminMv + options.stepMv);
    const int downTo = options.downToMv.value_or(traits.vcrashMv);
    if (options.stepMv <= 0)
        fatal("mem sweep: step {} mV must be positive", options.stepMv);
    if (from < downTo)
        fatal("mem sweep: from {} mV must be above down-to {} mV", from,
              downTo);
    if (options.runsPerLevel <= 0)
        fatal("mem sweep: runsPerLevel {} must be positive",
              options.runsPerLevel);

    MemSweepResult result;
    result.device = traits.name;
    result.dieId = traits.dieId;
    result.technology = technologyName(traits.technology);
    result.ambientC = options.ambientC;
    result.runsPerLevel = options.runsPerLevel;

    const double mbit = traits.totalMbit();
    int emitted = 0;
    for (int mv = from; mv >= downTo; mv -= options.stepMv) {
        if (options.resumeFromMv && mv >= *options.resumeFromMv)
            continue; // already measured by an earlier slice
        if (options.maxLevels && emitted >= *options.maxLevels) {
            result.truncated = true;
            break;
        }
        ++emitted;

        MemSweepPoint point;
        point.railMv = mv;
        const double railV = mv / 1000.0;
        point.runCounts.reserve(
            static_cast<std::size_t>(options.runsPerLevel));
        std::vector<double> counts;
        counts.reserve(static_cast<std::size_t>(options.runsPerLevel));
        for (int run = 0; run < options.runsPerLevel; ++run) {
            const double jitter = jitterDraw(options.seed, mv, run,
                                             traits.runJitterMv);
            const double effective = device.effectiveVoltage(
                railV, options.ambientC, jitter);
            const std::uint64_t faults = device.countFaults(effective);
            point.runCounts.push_back(faults);
            counts.push_back(static_cast<double>(faults));
        }
        point.medianFaults = static_cast<std::uint64_t>(
            std::llround(median(counts)));
        point.faultsPerMbit =
            static_cast<double>(point.medianFaults) / mbit;
        point.railPowerW = device.railPowerW(railV);

        if (options.collectPerDomain) {
            const double effective =
                device.effectiveVoltage(railV, options.ambientC, 0.0);
            point.perDomainFaults.reserve(device.domainCount());
            for (std::uint32_t d = 0; d < device.domainCount(); ++d)
                point.perDomainFaults.push_back(
                    device.countDomainFaults(d, effective));
        }
        result.points.push_back(std::move(point));
    }
    return result;
}

} // namespace uvolt::mem

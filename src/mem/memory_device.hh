/**
 * @file
 * The multi-technology memory-device abstraction (DESIGN.md §18).
 *
 * The paper characterizes FPGA BRAMs; the same group extended the
 * methodology to HBM stacks (arXiv:2101.00969) and standalone SRAMs via
 * the MoRS approximate fault model (arXiv:2110.05855). All three share
 * one shape, and MemoryDevice is that shape made explicit:
 *
 *  - geometry: the device is a pool of *fault domains*, each a packed
 *    plane of 64-bit words holding rows of 16-bit lanes (bit offset =
 *    row*16 + col, exactly the fpga::fault_domain.hh layout, so every
 *    packed helper — popcountWords, forEachDiffBit, packRows — works on
 *    every backend),
 *  - a per-polarity threshold ladder: weak elements sorted by
 *    descending failure threshold, so the set active at a voltage is a
 *    prefix found by one binary search, and fault injection/counting is
 *    AND/OR masks + popcount. Backends differ in mask granularity
 *    (BRAM/SRAM: single bits; HBM: whole 16-bit row lanes),
 *  - an effective-voltage law (rail + temperature coefficient + jitter)
 *    and a Vmin/Vcrash envelope, both per technology,
 *  - a rail power model with per-technology constants,
 *  - a scalar reference walker per backend: the executable spec the
 *    packed path is property-tested against.
 *
 * Epoch/caching contract: every content mutation bumps a per-device
 * epoch; countFaults() memoizes the device-wide total on (epoch, exact
 * effective voltage). Copies and clones NEVER share epochs or memos
 * with their source — a copy starts with an invalid memo and its own
 * counter, so divergent writes after a copy can never serve a stale
 * total (the Bram::bindEpoch detach rule, generalized).
 */

#ifndef UVOLT_MEM_MEMORY_DEVICE_HH
#define UVOLT_MEM_MEMORY_DEVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fpga/fault_domain.hh"

namespace uvolt::mem
{

/** Memory technologies behind the MemoryDevice interface. */
enum class Technology
{
    bram, ///< FPGA on-chip block RAM (the paper's subject)
    hbm,  ///< high-bandwidth DRAM stack (arXiv:2101.00969)
    sram, ///< standalone SRAM, MoRS-style model (arXiv:2110.05855)
};

/** Lower-case tag used in cache keys, labels, and manifests. */
const char *technologyName(Technology technology);

/** Uniform identity + geometry + envelope of one device. */
struct DeviceTraits
{
    std::string name;   ///< catalog name, e.g. "HBM2-A"
    std::string dieId;  ///< serial; seeds the device's fault personality
    Technology technology = Technology::bram;

    std::uint32_t domainCount = 0;   ///< fault domains on the device
    std::uint32_t wordsPerDomain = 0; ///< packed 64-bit words per domain
    int columnHeight = 8; ///< floorplan sites per column (FVM rendering)

    int vnomMv = 0;   ///< nominal rail level
    int vminMv = 0;   ///< lowest fault-free level
    int vcrashMv = 0; ///< lowest operable level

    double runJitterMv = 0.0; ///< per-run supply noise sigma

    /** Data bits per fault domain. */
    std::uint64_t
    bitsPerDomain() const
    {
        return static_cast<std::uint64_t>(wordsPerDomain) *
            static_cast<std::uint64_t>(fpga::bramWordBits);
    }

    /** Data bits on the whole device. */
    std::uint64_t
    totalBits() const
    {
        return bitsPerDomain() * domainCount;
    }

    /** Capacity in Mbit (2^20 bits). */
    double totalMbit() const;
};

/**
 * One memory device behind the generic fault-domain interface. BRAM is
 * one backend among several (BramBackend adapts fpga::Device +
 * vmodel::ChipFaultModel bit-identically); HbmBackend and
 * SramMorsBackend model the related-work technologies.
 */
class MemoryDevice
{
  public:
    virtual ~MemoryDevice() = default;

    const DeviceTraits &traits() const { return traits_; }
    Technology technology() const { return traits_.technology; }
    const std::string &name() const { return traits_.name; }
    const std::string &dieId() const { return traits_.dieId; }
    std::uint32_t domainCount() const { return traits_.domainCount; }

    // --- content ---------------------------------------------------------

    /** Fill every 16-bit lane of every domain with @a lane_pattern. */
    virtual void fill(std::uint16_t lane_pattern) = 0;

    /** Packed words of one domain (ascending bit-offset order). */
    virtual fpga::WordSpan domainWords(std::uint32_t domain) const = 0;

    /** Replace one domain's packed plane (fast image programming). */
    virtual void assignDomainWords(std::uint32_t domain,
                                   fpga::WordSpan words) = 0;

    /** Content epoch: bumped by every mutating call on this device. */
    virtual std::uint64_t contentEpoch() const = 0;

    // --- voltage law -----------------------------------------------------

    /**
     * Effective voltage seen by the cells: rail level plus this
     * technology's temperature coefficient plus per-run jitter. BRAM
     * heats *up* into reliability (inverse thermal dependence); DRAM
     * retention degrades with temperature, so HBM's coefficient has the
     * opposite sign.
     */
    virtual double effectiveVoltage(double rail_v, double temp_c,
                                    double jitter_v = 0.0) const = 0;

    // --- faults ----------------------------------------------------------

    /** Observable faults in one domain at an effective voltage. */
    virtual int countDomainFaults(std::uint32_t domain,
                                  double effective_v) const = 0;

    /**
     * The scalar executable spec: walk this backend's weak elements one
     * by one with the shared vmodel::cellFailsAt() predicate and probe
     * stored bits individually. The packed path is property-tested
     * against this, never the other way around.
     */
    virtual int countDomainFaultsReference(std::uint32_t domain,
                                           double effective_v) const = 0;

    /** Readback of one domain under reduced voltage, packed. */
    virtual std::vector<std::uint64_t>
    readDomainPacked(std::uint32_t domain, double effective_v) const = 0;

    /**
     * Device-wide fault count, memoized on (content epoch, exact
     * effective voltage). The memo is per-instance and never survives
     * copy/clone (see the epoch/caching contract above).
     */
    std::uint64_t countFaults(double effective_v) const;

    // --- power -----------------------------------------------------------

    /** Rail power in watts at the given rail voltage. */
    virtual double railPowerW(double rail_v) const = 0;

    // --- lifecycle -------------------------------------------------------

    /**
     * Deep copy with detached epochs and an invalid memo: the clone and
     * the source may diverge freely and each memoizes independently.
     */
    virtual std::unique_ptr<MemoryDevice> clone() const = 0;

  protected:
    explicit MemoryDevice(DeviceTraits traits)
        : traits_(std::move(traits))
    {
    }

    /** Copies carry the traits but start with an INVALID memo. */
    MemoryDevice(const MemoryDevice &other) : traits_(other.traits_) {}
    MemoryDevice &
    operator=(const MemoryDevice &other)
    {
        traits_ = other.traits_;
        memoValid_ = false;
        return *this;
    }

  private:
    DeviceTraits traits_;

    mutable bool memoValid_ = false;
    mutable std::uint64_t memoEpoch_ = 0;
    mutable double memoV_ = 0.0;
    mutable std::uint64_t memoTotal_ = 0;
};

/**
 * Generalized threshold ladder: weak elements of one domain and one
 * polarity in SoA layout, sorted by descending failure threshold. The
 * vmodel::ThresholdLadder shape with the single-bit restriction lifted:
 * a mask may cover a whole 16-bit row lane (HBM's coarser granularity),
 * so counting popcounts the masked words instead of assuming 0-or-1.
 */
struct MaskLadder
{
    std::vector<float> thresholds;    ///< descending
    std::vector<std::uint32_t> words; ///< packed word index per element
    std::vector<std::uint64_t> masks; ///< mask per element (>= 1 bit)

    /** Elements active (failing) at @a effective_v: the prefix length,
     *  by binary search over the shared cellFailsAt() predicate. */
    std::size_t activeCount(double effective_v) const;

    std::size_t size() const { return thresholds.size(); }

    void
    push(float threshold_v, std::uint32_t word, std::uint64_t mask)
    {
        thresholds.push_back(threshold_v);
        words.push_back(word);
        masks.push_back(mask);
    }

    /** Stable-sort the three arrays by descending threshold. */
    void sortDescending();

    /** Faults the active prefix produces against @a written: 1->0
     *  elements fault where the stored bit is 1, 0->1 where it is 0. */
    std::uint64_t countFaults(fpga::WordSpan written, bool one_to_zero,
                              double effective_v) const;

    /** Inject the active prefix into @a words in place (AND for 1->0,
     *  OR for 0->1). */
    void applyFaults(std::span<std::uint64_t> words, bool one_to_zero,
                     double effective_v) const;
};

/**
 * A pool of packed word planes bound to one content-epoch counter: the
 * storage building block of the non-BRAM backends. Copies detach — the
 * copied planes belong to the copy's own counter (the Bram copy rule).
 */
class PlaneStore
{
  public:
    PlaneStore(std::uint32_t planes, std::uint32_t words_per_plane)
        : planes_(planes,
                  std::vector<std::uint64_t>(words_per_plane, 0))
    {
    }

    std::uint32_t planeCount() const
    {
        return static_cast<std::uint32_t>(planes_.size());
    }

    fpga::WordSpan
    words(std::uint32_t plane) const
    {
        return planes_[plane];
    }

    void fillLanes(std::uint16_t lane_pattern);
    void assignWords(std::uint32_t plane, fpga::WordSpan words);

    std::uint64_t epoch() const { return epoch_; }

  private:
    std::vector<std::vector<std::uint64_t>> planes_;
    std::uint64_t epoch_ = 0;
};

} // namespace uvolt::mem

#endif // UVOLT_MEM_MEMORY_DEVICE_HH

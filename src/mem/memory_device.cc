#include "mem/memory_device.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "fpga/platform.hh"
#include "util/logging.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::mem
{

const char *
technologyName(Technology technology)
{
    switch (technology) {
      case Technology::bram:
        return "bram";
      case Technology::hbm:
        return "hbm";
      case Technology::sram:
        return "sram";
    }
    fatal("unknown memory technology {}", static_cast<int>(technology));
}

double
DeviceTraits::totalMbit() const
{
    return static_cast<double>(totalBits()) /
        static_cast<double>(fpga::bitsPerMbit);
}

std::uint64_t
MemoryDevice::countFaults(double effective_v) const
{
    const std::uint64_t epoch = contentEpoch();
    if (memoValid_ && memoEpoch_ == epoch && memoV_ == effective_v)
        return memoTotal_;

    std::uint64_t total = 0;
    for (std::uint32_t d = 0; d < domainCount(); ++d)
        total += static_cast<std::uint64_t>(
            countDomainFaults(d, effective_v));

    memoValid_ = true;
    memoEpoch_ = epoch;
    memoV_ = effective_v;
    memoTotal_ = total;
    return total;
}

std::size_t
MaskLadder::activeCount(double effective_v) const
{
    // Thresholds descend, so the failing elements are exactly the prefix
    // for which the shared predicate holds.
    const auto it = std::partition_point(
        thresholds.begin(), thresholds.end(), [effective_v](float t) {
            return vmodel::cellFailsAt(t, effective_v);
        });
    return static_cast<std::size_t>(it - thresholds.begin());
}

void
MaskLadder::sortDescending()
{
    std::vector<std::size_t> order(thresholds.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return thresholds[a] > thresholds[b];
                     });

    std::vector<float> t(thresholds.size());
    std::vector<std::uint32_t> w(words.size());
    std::vector<std::uint64_t> m(masks.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        t[i] = thresholds[order[i]];
        w[i] = words[order[i]];
        m[i] = masks[order[i]];
    }
    thresholds = std::move(t);
    words = std::move(w);
    masks = std::move(m);
}

std::uint64_t
MaskLadder::countFaults(fpga::WordSpan written, bool one_to_zero,
                        double effective_v) const
{
    const std::size_t active = activeCount(effective_v);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < active; ++i) {
        const std::uint64_t stored = written[words[i]] & masks[i];
        // 1->0 elements fault on every stored 1 they cover; 0->1 on
        // every stored 0. Multi-bit masks (HBM lanes) popcount > 1.
        const std::uint64_t hit =
            one_to_zero ? stored : (masks[i] & ~stored);
        total += static_cast<std::uint64_t>(std::popcount(hit));
    }
    return total;
}

void
MaskLadder::applyFaults(std::span<std::uint64_t> out, bool one_to_zero,
                        double effective_v) const
{
    const std::size_t active = activeCount(effective_v);
    for (std::size_t i = 0; i < active; ++i) {
        if (one_to_zero)
            out[words[i]] &= ~masks[i];
        else
            out[words[i]] |= masks[i];
    }
}

void
PlaneStore::fillLanes(std::uint16_t lane_pattern)
{
    std::uint64_t word = lane_pattern;
    word |= word << 16;
    word |= word << 32;
    for (auto &plane : planes_)
        std::fill(plane.begin(), plane.end(), word);
    ++epoch_;
}

void
PlaneStore::assignWords(std::uint32_t plane, fpga::WordSpan words)
{
    if (plane >= planes_.size())
        fatal("PlaneStore: plane {} out of pool of {}", plane,
              planes_.size());
    if (words.size() != planes_[plane].size())
        fatal("PlaneStore: {} packed words for a plane of {}",
              words.size(), planes_[plane].size());
    std::copy(words.begin(), words.end(), planes_[plane].begin());
    ++epoch_;
}

} // namespace uvolt::mem

/**
 * @file
 * Name-based resolution of memory devices across every technology
 * catalog: the seam that lets FleetEngine, the server, and the CLI keep
 * addressing devices by plain name ("VC707", "HBM2-A", "MORS-SRAM-A")
 * while the backend behind the name varies.
 */

#ifndef UVOLT_MEM_CATALOG_HH
#define UVOLT_MEM_CATALOG_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/memory_device.hh"

namespace uvolt::mem
{

/**
 * Technology behind a catalog name. The HBM and SRAM catalogs are
 * probed first; any other name is treated as an FPGA platform (and
 * fatal()s inside fpga::findPlatform if unknown there too) — so every
 * pre-existing fleet plan resolves to BRAM exactly as before.
 */
Technology technologyOfName(const std::string &name);

/** Whether the name resolves in any catalog (no fatal on unknown). */
bool knownDevice(const std::string &name);

/**
 * Traits of the device behind a name WITHOUT building the backend: no
 * weak-element synthesis, no chip-model lookup. What aggregation code
 * (floorplans, cache keys, manifests) should use.
 */
DeviceTraits traitsOfName(const std::string &name);

/**
 * Build the device behind a catalog name. BRAM backends alias the
 * process-wide pmbus::sharedChipModel personality; HBM/SRAM backends
 * synthesize their (cheap) weak-element maps from the spec serial.
 */
std::unique_ptr<MemoryDevice> makeDevice(const std::string &name);

/** Every non-BRAM catalog name (for docs/tests enumeration). */
std::vector<std::string> extendedCatalogNames();

} // namespace uvolt::mem

#endif // UVOLT_MEM_CATALOG_HH

#include "mem/catalog.hh"

#include "fpga/platform.hh"
#include "mem/bram_backend.hh"
#include "mem/hbm_backend.hh"
#include "mem/sram_backend.hh"
#include "pmbus/board.hh"

namespace uvolt::mem
{

Technology
technologyOfName(const std::string &name)
{
    if (findHbm(name))
        return Technology::hbm;
    if (findSram(name))
        return Technology::sram;
    return Technology::bram;
}

bool
knownDevice(const std::string &name)
{
    if (findHbm(name) || findSram(name))
        return true;
    for (const auto &spec : fpga::platformCatalog())
        if (spec.name == name)
            return true;
    for (const auto &spec : fpga::extensionPlatformCatalog())
        if (spec.name == name)
            return true;
    return false;
}

DeviceTraits
traitsOfName(const std::string &name)
{
    if (const HbmSpec *hbm = findHbm(name))
        return hbmDeviceTraits(*hbm);
    if (const SramSpec *sram = findSram(name))
        return sramDeviceTraits(*sram);
    return bramDeviceTraits(fpga::findPlatform(name));
}

std::unique_ptr<MemoryDevice>
makeDevice(const std::string &name)
{
    if (const HbmSpec *hbm = findHbm(name))
        return std::make_unique<HbmBackend>(*hbm);
    if (const SramSpec *sram = findSram(name))
        return std::make_unique<SramMorsBackend>(*sram);
    const fpga::PlatformSpec &spec = fpga::findPlatform(name);
    return std::make_unique<BramBackend>(spec,
                                         pmbus::sharedChipModel(spec));
}

std::vector<std::string>
extendedCatalogNames()
{
    std::vector<std::string> names;
    for (const HbmSpec &spec : hbmCatalog())
        names.push_back(spec.name);
    for (const SramSpec &spec : sramCatalog())
        names.push_back(spec.name);
    return names;
}

} // namespace uvolt::mem

/**
 * @file
 * Backend-generic critical-voltage sweep: the harness's sweep inner
 * loop (step the rail down, re-read under jitter runsPerLevel times,
 * take the median) expressed against MemoryDevice alone, so one fleet
 * run can sweep BRAM, HBM, and SRAM populations side by side.
 *
 * Determinism contract: the per-(level, run) jitter stream is STATELESS
 * — each draw seeds its own Rng from (sweep seed, rail mV, run index) —
 * so a point's result never depends on which points ran before it.
 * That makes sweeps bit-identical at any worker count, resumable from
 * any level, and sliceable by maxLevels without a checkpoint replay.
 */

#ifndef UVOLT_MEM_SWEEP_HH
#define UVOLT_MEM_SWEEP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory_device.hh"

namespace uvolt::mem
{

/** Options of one device sweep. */
struct MemSweepOptions
{
    int runsPerLevel = 5;  ///< re-reads per level (median taken)
    int stepMv = 10;       ///< level spacing
    double ambientC = 50.0;
    std::uint64_t seed = 0; ///< jitter stream seed

    /** Start level; defaults to the device's Vmin + one step. */
    std::optional<int> fromMv;
    /** Stop level; defaults to the device's Vcrash. */
    std::optional<int> downToMv;

    bool collectPerDomain = false;

    /** Slice: stop after this many levels (resume with resumeFromMv). */
    std::optional<int> maxLevels;
    /** Resume: skip levels above this (exclusive upper bound). */
    std::optional<int> resumeFromMv;
};

/** One voltage level of a device sweep. */
struct MemSweepPoint
{
    int railMv = 0;
    std::vector<std::uint64_t> runCounts; ///< per-run fault totals
    std::uint64_t medianFaults = 0;
    double faultsPerMbit = 0.0;
    double railPowerW = 0.0;
    std::vector<int> perDomainFaults; ///< zero-jitter; if collected
};

/** Full sweep of one device. */
struct MemSweepResult
{
    std::string device;     ///< catalog name
    std::string dieId;
    std::string technology; ///< technologyName() tag
    double ambientC = 50.0;
    int runsPerLevel = 0;
    std::vector<MemSweepPoint> points; ///< descending railMv
    bool truncated = false; ///< stopped by maxLevels, resume to continue
};

/**
 * Sweep @a device from Vmin-adjacent levels down to Vcrash. The device
 * content must already be programmed (fill / assignDomainWords);
 * readbacks never mutate it, so the device is taken const.
 */
MemSweepResult runMemSweep(const MemoryDevice &device,
                           const MemSweepOptions &options = {});

} // namespace uvolt::mem

#endif // UVOLT_MEM_SWEEP_HH

/**
 * @file
 * Standalone SRAM behind the MemoryDevice interface, after the MoRS
 * approximate fault model (arXiv:2110.05855): instead of synthesizing a
 * process-variation field, weak bitcells are SAMPLED from the spatial
 * distribution statistics MoRS extracts from real undervolted SRAMs —
 * a configured share of weak cells clusters on a few weak rows, a share
 * on weak columns (shared bit-lines), and the remainder falls uniformly
 * over the array. Sampling is seeded and deterministic: the same chip
 * name always yields the same weak-cell map.
 */

#ifndef UVOLT_MEM_SRAM_BACKEND_HH
#define UVOLT_MEM_SRAM_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/memory_device.hh"

namespace uvolt::mem
{

/** Catalog entry for one MoRS-modeled SRAM chip. */
struct SramSpec
{
    std::string name;   ///< e.g. "MORS-SRAM-A"
    std::string chipId; ///< chip serial; seeds the fault personality

    std::uint32_t arrayCount = 128;  ///< sub-arrays (fault domains)
    std::uint32_t rowsPerArray = 512; ///< 16-bit lanes per array

    int vnomMv = 1100;
    int vminMv = 840;
    int vcrashMv = 700;

    double runJitterMv = 1.5;

    /** Mean weak cells per array observable at Vcrash. */
    double weakCellsPerArrayAtVcrash = 60.0;
    /** MoRS spatial statistics: shares of weak cells clustering on weak
     *  rows / weak columns; the remainder is uniform over the array. */
    double weakRowShare = 0.35;
    double weakColShare = 0.25;
    std::uint32_t weakRowsPerArray = 4;
    std::uint32_t weakColsPerArray = 2;

    /** 6T cells lose both polarities more evenly than BRAM's 99.9%. */
    double oneToZeroShare = 0.7;

    /** Positive: heating raises the effective voltage (BRAM-like ITD). */
    double itdMvPerC = 0.4;

    double railPowerNomW = 0.9;
    double dynamicFraction = 0.4;
    double leakageSlope = 10.0;
};

/** Built-in MoRS-modeled SRAM chips. */
const std::vector<SramSpec> &sramCatalog();

/** Catalog lookup by name; nullptr when the name is not an SRAM chip. */
const SramSpec *findSram(const std::string &name);

/** MemoryDevice traits of a MoRS SRAM chip (no backend construction). */
DeviceTraits sramDeviceTraits(const SramSpec &spec);

/** One SRAM chip as a MemoryDevice; domains are sub-arrays. */
class SramMorsBackend : public MemoryDevice
{
  public:
    /** Sample the chip's weak-cell map: deterministic in the spec. */
    explicit SramMorsBackend(const SramSpec &spec);

    void fill(std::uint16_t lane_pattern) override;
    fpga::WordSpan domainWords(std::uint32_t domain) const override;
    void assignDomainWords(std::uint32_t domain,
                           fpga::WordSpan words) override;
    std::uint64_t contentEpoch() const override;

    double effectiveVoltage(double rail_v, double temp_c,
                            double jitter_v = 0.0) const override;

    int countDomainFaults(std::uint32_t domain,
                          double effective_v) const override;
    int countDomainFaultsReference(std::uint32_t domain,
                                   double effective_v) const override;
    std::vector<std::uint64_t>
    readDomainPacked(std::uint32_t domain,
                     double effective_v) const override;

    double railPowerW(double rail_v) const override;

    std::unique_ptr<MemoryDevice> clone() const override;

    /** One weak bitcell (single-bit fault element). */
    struct WeakCell
    {
        std::uint32_t row;
        std::uint8_t col;
        bool oneToZero;
        float thresholdV;
    };

    /** Weak cells of one array, sorted by (row, col). */
    const std::vector<WeakCell> &weakCells(std::uint32_t domain) const;

    const SramSpec &spec() const { return spec_; }

  private:
    SramMorsBackend(const SramMorsBackend &) = default;

    SramSpec spec_;
    PlaneStore planes_;
    std::vector<std::vector<WeakCell>> cells_; // per array, sorted
    std::vector<MaskLadder> ladder10_;         // 1->0, single-bit masks
    std::vector<MaskLadder> ladder01_;         // 0->1
};

} // namespace uvolt::mem

#endif // UVOLT_MEM_SRAM_BACKEND_HH

#include "mem/sram_backend.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hh"
#include "util/rng.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::mem
{

const std::vector<SramSpec> &
sramCatalog()
{
    static const std::vector<SramSpec> catalog = [] {
        std::vector<SramSpec> specs(2);
        specs[0].name = "MORS-SRAM-A";
        specs[0].chipId = "MS-55-0196";
        specs[1].name = "MORS-SRAM-B";
        specs[1].chipId = "MS-55-0233";
        // Second chip of the lot: weaker bit-lines, more column
        // clustering and a slightly higher fault-free floor.
        specs[1].vminMv = 850;
        specs[1].weakCellsPerArrayAtVcrash = 75.0;
        specs[1].weakColShare = 0.32;
        return specs;
    }();
    return catalog;
}

const SramSpec *
findSram(const std::string &name)
{
    for (const SramSpec &spec : sramCatalog())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

DeviceTraits
sramDeviceTraits(const SramSpec &spec)
{
    if (spec.rowsPerArray % fpga::bramRowsPerWord != 0)
        fatal("SRAM {}: rowsPerArray {} not word-packable", spec.name,
              spec.rowsPerArray);
    DeviceTraits traits;
    traits.name = spec.name;
    traits.dieId = spec.chipId;
    traits.technology = Technology::sram;
    traits.domainCount = spec.arrayCount;
    traits.wordsPerDomain = spec.rowsPerArray /
        static_cast<std::uint32_t>(fpga::bramRowsPerWord);
    traits.columnHeight = 16; // arrays tile a 8x16 macro grid
    traits.vnomMv = spec.vnomMv;
    traits.vminMv = spec.vminMv;
    traits.vcrashMv = spec.vcrashMv;
    traits.runJitterMv = spec.runJitterMv;
    return traits;
}

SramMorsBackend::SramMorsBackend(const SramSpec &spec)
    : MemoryDevice(sramDeviceTraits(spec)), spec_(spec),
      planes_(traits().domainCount, traits().wordsPerDomain)
{
    const std::uint64_t chipSeed = hashSeed(spec_.chipId);
    const double vmin = spec_.vminMv / 1000.0;
    const double vcrash = spec_.vcrashMv / 1000.0;
    const float cap = static_cast<float>(vmin - 0.002);

    const double population = std::max(
        2.0, spec_.weakCellsPerArrayAtVcrash * spec_.arrayCount);
    const double k = std::log(population) / (vmin - vcrash);

    cells_.resize(spec_.arrayCount);
    std::uint32_t marginalArray = 0;
    std::size_t marginalIndex = 0;
    float marginalThreshold = -1.0f;
    for (std::uint32_t a = 0; a < spec_.arrayCount; ++a) {
        Rng rng(combineSeeds(chipSeed,
                             combineSeeds(hashSeed("mors-cells"), a)));

        // The MoRS spatial skeleton of this array: the few rows and
        // bit-line columns that concentrate the configured shares.
        std::vector<std::uint32_t> weakRows(spec_.weakRowsPerArray);
        for (auto &row : weakRows)
            row = static_cast<std::uint32_t>(
                rng.uniformInt(0, spec_.rowsPerArray - 1));
        std::vector<std::uint8_t> weakCols(spec_.weakColsPerArray);
        for (auto &col : weakCols)
            col = static_cast<std::uint8_t>(
                rng.uniformInt(0, fpga::bramCols - 1));

        const double sigma = 0.3;
        const double lambda = spec_.weakCellsPerArrayAtVcrash *
            rng.logNormal(-0.5 * sigma * sigma, sigma);
        const std::uint64_t target = rng.poisson(lambda);

        std::unordered_set<std::uint32_t> used;
        auto &array = cells_[a];
        const std::uint64_t capacity =
            static_cast<std::uint64_t>(spec_.rowsPerArray) * fpga::bramCols;
        while (array.size() < target && used.size() < capacity) {
            // Sample the location from the three-component mixture.
            const double where = rng.uniform();
            std::uint32_t row;
            std::uint8_t col;
            if (where < spec_.weakRowShare) {
                row = weakRows[rng.uniformInt(0, weakRows.size() - 1)];
                col = static_cast<std::uint8_t>(
                    rng.uniformInt(0, fpga::bramCols - 1));
            } else if (where < spec_.weakRowShare + spec_.weakColShare) {
                row = static_cast<std::uint32_t>(
                    rng.uniformInt(0, spec_.rowsPerArray - 1));
                col = weakCols[rng.uniformInt(0, weakCols.size() - 1)];
            } else {
                row = static_cast<std::uint32_t>(
                    rng.uniformInt(0, spec_.rowsPerArray - 1));
                col = static_cast<std::uint8_t>(
                    rng.uniformInt(0, fpga::bramCols - 1));
            }
            const std::uint32_t offset =
                row * static_cast<std::uint32_t>(fpga::bramCols) + col;
            if (!used.insert(offset).second)
                continue; // one threshold per physical cell

            WeakCell cell;
            cell.row = row;
            cell.col = col;
            cell.oneToZero = rng.chance(spec_.oneToZeroShare);
            cell.thresholdV = std::min(
                static_cast<float>(vcrash + rng.exponential(k)), cap);
            if (cell.thresholdV > marginalThreshold) {
                marginalThreshold = cell.thresholdV;
                marginalArray = a;
                marginalIndex = array.size();
            }
            array.push_back(cell);
        }
    }
    if (marginalThreshold > 0.0f)
        cells_[marginalArray][marginalIndex].thresholdV = cap;

    ladder10_.resize(spec_.arrayCount);
    ladder01_.resize(spec_.arrayCount);
    for (std::uint32_t a = 0; a < spec_.arrayCount; ++a) {
        for (const WeakCell &cell : cells_[a]) {
            const std::uint32_t offset =
                cell.row * static_cast<std::uint32_t>(fpga::bramCols) +
                cell.col;
            auto &ladder = cell.oneToZero ? ladder10_[a] : ladder01_[a];
            ladder.push(cell.thresholdV, offset / fpga::bramWordBits,
                        std::uint64_t{1} << (offset % fpga::bramWordBits));
        }
        ladder10_[a].sortDescending();
        ladder01_[a].sortDescending();
        std::sort(cells_[a].begin(), cells_[a].end(),
                  [](const WeakCell &x, const WeakCell &y) {
                      return x.row != y.row ? x.row < y.row
                                            : x.col < y.col;
                  });
    }
}

void
SramMorsBackend::fill(std::uint16_t lane_pattern)
{
    planes_.fillLanes(lane_pattern);
}

fpga::WordSpan
SramMorsBackend::domainWords(std::uint32_t domain) const
{
    if (domain >= domainCount())
        fatal("SRAM {}: array {} out of pool of {}", name(), domain,
              domainCount());
    return planes_.words(domain);
}

void
SramMorsBackend::assignDomainWords(std::uint32_t domain,
                                   fpga::WordSpan words)
{
    if (domain >= domainCount())
        fatal("SRAM {}: array {} out of pool of {}", name(), domain,
              domainCount());
    planes_.assignWords(domain, words);
}

std::uint64_t
SramMorsBackend::contentEpoch() const
{
    return planes_.epoch();
}

double
SramMorsBackend::effectiveVoltage(double rail_v, double temp_c,
                                  double jitter_v) const
{
    // 6T cells share BRAM's inverse thermal dependence: heat raises the
    // effective voltage and pushes marginal cells back to health.
    return rail_v +
        spec_.itdMvPerC * (temp_c - vmodel::referenceTempC) / 1000.0 +
        jitter_v;
}

int
SramMorsBackend::countDomainFaults(std::uint32_t domain,
                                   double effective_v) const
{
    const fpga::WordSpan words = domainWords(domain);
    return static_cast<int>(
        ladder10_[domain].countFaults(words, true, effective_v) +
        ladder01_[domain].countFaults(words, false, effective_v));
}

int
SramMorsBackend::countDomainFaultsReference(std::uint32_t domain,
                                            double effective_v) const
{
    const fpga::WordSpan words = domainWords(domain);
    int total = 0;
    for (const WeakCell &cell : cells_[domain]) {
        if (!vmodel::cellFailsAt(cell.thresholdV, effective_v))
            continue;
        const std::uint32_t offset =
            cell.row * static_cast<std::uint32_t>(fpga::bramCols) +
            cell.col;
        const bool stored = (words[offset / fpga::bramWordBits] >>
                             (offset % fpga::bramWordBits)) &
            1u;
        if (stored == cell.oneToZero)
            ++total;
    }
    return total;
}

std::vector<std::uint64_t>
SramMorsBackend::readDomainPacked(std::uint32_t domain,
                                  double effective_v) const
{
    const fpga::WordSpan words = domainWords(domain);
    std::vector<std::uint64_t> observed(words.begin(), words.end());
    ladder10_[domain].applyFaults(observed, true, effective_v);
    ladder01_[domain].applyFaults(observed, false, effective_v);
    return observed;
}

double
SramMorsBackend::railPowerW(double rail_v) const
{
    const double vnom = spec_.vnomMv / 1000.0;
    const double ratio = rail_v / vnom;
    return spec_.railPowerNomW *
        (spec_.dynamicFraction * ratio * ratio +
         (1.0 - spec_.dynamicFraction) *
             std::exp(-spec_.leakageSlope * (vnom - rail_v)));
}

std::unique_ptr<MemoryDevice>
SramMorsBackend::clone() const
{
    return std::unique_ptr<MemoryDevice>(new SramMorsBackend(*this));
}

const std::vector<SramMorsBackend::WeakCell> &
SramMorsBackend::weakCells(std::uint32_t domain) const
{
    if (domain >= domainCount())
        fatal("SRAM {}: array {} out of pool of {}", name(), domain,
              domainCount());
    return cells_[domain];
}

} // namespace uvolt::mem

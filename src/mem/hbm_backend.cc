#include "mem/hbm_backend.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hh"
#include "util/rng.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::mem
{

const std::vector<HbmSpec> &
hbmCatalog()
{
    static const std::vector<HbmSpec> catalog = [] {
        std::vector<HbmSpec> specs(2);
        specs[0].name = "HBM2-A";
        specs[0].stackId = "H2A-31-0082";
        specs[1].name = "HBM2-B";
        specs[1].stackId = "H2A-31-0117";
        // Die-to-die variation of the same part: the B stack is a bit
        // leakier, so its fault-free floor sits higher.
        specs[1].vminMv = 990;
        specs[1].weakRowsPerBankAtVcrash = 31.0;
        return specs;
    }();
    return catalog;
}

const HbmSpec *
findHbm(const std::string &name)
{
    for (const HbmSpec &spec : hbmCatalog())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

DeviceTraits
hbmDeviceTraits(const HbmSpec &spec)
{
    if (spec.rowsPerBank % fpga::bramRowsPerWord != 0)
        fatal("HBM {}: rowsPerBank {} not word-packable", spec.name,
              spec.rowsPerBank);
    DeviceTraits traits;
    traits.name = spec.name;
    traits.dieId = spec.stackId;
    traits.technology = Technology::hbm;
    traits.domainCount = spec.bankCount();
    traits.wordsPerDomain =
        spec.rowsPerBank / static_cast<std::uint32_t>(fpga::bramRowsPerWord);
    // Floorplan: one column per pseudo-channel, banks stacked within it.
    traits.columnHeight = static_cast<int>(spec.banksPerChannel);
    traits.vnomMv = spec.vnomMv;
    traits.vminMv = spec.vminMv;
    traits.vcrashMv = spec.vcrashMv;
    traits.runJitterMv = spec.runJitterMv;
    return traits;
}

namespace
{

/** Packed word index of a 16-bit row lane. */
std::uint32_t
rowWord(std::uint32_t row)
{
    return row / static_cast<std::uint32_t>(fpga::bramRowsPerWord);
}

/** Whole-lane mask of a row inside its packed word. */
std::uint64_t
rowMask(std::uint32_t row)
{
    const int shift =
        static_cast<int>(row % fpga::bramRowsPerWord) * fpga::bramCols;
    return std::uint64_t{0xFFFF} << shift;
}

} // namespace

HbmBackend::HbmBackend(const HbmSpec &spec)
    : MemoryDevice(hbmDeviceTraits(spec)), spec_(spec),
      planes_(traits().domainCount, traits().wordsPerDomain)
{
    const std::uint64_t stackSeed = hashSeed(spec_.stackId);
    const double vmin = spec_.vminMv / 1000.0;
    const double vcrash = spec_.vcrashMv / 1000.0;
    const float cap = static_cast<float>(vmin - 0.002);

    // Exponential growth of active weak rows from ~1 at Vmin to the
    // full population at Vcrash: rate k with N*exp(-k*(vmin-vcrash))=1.
    const double population =
        std::max(2.0, spec_.weakRowsPerBankAtVcrash * spec_.bankCount());
    const double k = std::log(population) / (vmin - vcrash);

    rows_.resize(spec_.bankCount());
    std::uint32_t marginalBank = 0;
    std::size_t marginalIndex = 0;
    float marginalThreshold = -1.0f;
    for (std::uint32_t b = 0; b < spec_.bankCount(); ++b) {
        Rng rng(combineSeeds(stackSeed,
                             combineSeeds(hashSeed("weak-rows"), b)));
        // Mild bank-to-bank variation (mean-preserving log-normal).
        const double sigma = 0.25;
        const double lambda = spec_.weakRowsPerBankAtVcrash *
            rng.logNormal(-0.5 * sigma * sigma, sigma);
        const std::uint64_t target = rng.poisson(lambda);

        std::unordered_set<std::uint32_t> used;
        auto &bank = rows_[b];
        while (bank.size() < target && used.size() < spec_.rowsPerBank) {
            const auto row = static_cast<std::uint32_t>(
                rng.uniformInt(0, spec_.rowsPerBank - 1));
            if (!used.insert(row).second)
                continue; // a row fails as a unit; never sample it twice
            WeakRow weak;
            weak.row = row;
            weak.oneToZero = rng.chance(spec_.oneToZeroShare);
            weak.thresholdV = std::min(
                static_cast<float>(vcrash + rng.exponential(k)), cap);
            if (weak.thresholdV > marginalThreshold) {
                marginalThreshold = weak.thresholdV;
                marginalBank = b;
                marginalIndex = bank.size();
            }
            bank.push_back(weak);
        }
    }
    // Pin the most marginal row to the cap so the stack's first fault
    // appears right below Vmin regardless of sampling luck.
    if (marginalThreshold > 0.0f)
        rows_[marginalBank][marginalIndex].thresholdV = cap;

    ladder10_.resize(spec_.bankCount());
    ladder01_.resize(spec_.bankCount());
    for (std::uint32_t b = 0; b < spec_.bankCount(); ++b) {
        for (const WeakRow &weak : rows_[b]) {
            auto &ladder = weak.oneToZero ? ladder10_[b] : ladder01_[b];
            ladder.push(weak.thresholdV, rowWord(weak.row),
                        rowMask(weak.row));
        }
        ladder10_[b].sortDescending();
        ladder01_[b].sortDescending();
        std::sort(rows_[b].begin(), rows_[b].end(),
                  [](const WeakRow &a, const WeakRow &c) {
                      return a.row < c.row;
                  });
    }
}

void
HbmBackend::fill(std::uint16_t lane_pattern)
{
    planes_.fillLanes(lane_pattern);
}

fpga::WordSpan
HbmBackend::domainWords(std::uint32_t domain) const
{
    if (domain >= domainCount())
        fatal("HBM {}: bank {} out of pool of {}", name(), domain,
              domainCount());
    return planes_.words(domain);
}

void
HbmBackend::assignDomainWords(std::uint32_t domain, fpga::WordSpan words)
{
    if (domain >= domainCount())
        fatal("HBM {}: bank {} out of pool of {}", name(), domain,
              domainCount());
    planes_.assignWords(domain, words);
}

std::uint64_t
HbmBackend::contentEpoch() const
{
    return planes_.epoch();
}

double
HbmBackend::effectiveVoltage(double rail_v, double temp_c,
                             double jitter_v) const
{
    // Retention DEGRADES with temperature: running hot moves the stack
    // toward failure, i.e. the opposite sign of BRAM's ITD shift.
    return rail_v -
        spec_.retentionMvPerC * (temp_c - vmodel::referenceTempC) /
        1000.0 +
        jitter_v;
}

int
HbmBackend::countDomainFaults(std::uint32_t domain,
                              double effective_v) const
{
    const fpga::WordSpan words = domainWords(domain);
    return static_cast<int>(
        ladder10_[domain].countFaults(words, true, effective_v) +
        ladder01_[domain].countFaults(words, false, effective_v));
}

int
HbmBackend::countDomainFaultsReference(std::uint32_t domain,
                                       double effective_v) const
{
    const fpga::WordSpan words = domainWords(domain);
    int total = 0;
    for (const WeakRow &weak : rows_[domain]) {
        if (!vmodel::cellFailsAt(weak.thresholdV, effective_v))
            continue;
        // Probe the lane's 16 bitcells one by one: a failing row faults
        // on every stored bit of the polarity it flips.
        for (int col = 0; col < fpga::bramCols; ++col) {
            const std::uint32_t offset =
                weak.row * static_cast<std::uint32_t>(fpga::bramCols) +
                static_cast<std::uint32_t>(col);
            const bool stored =
                (words[offset / fpga::bramWordBits] >>
                 (offset % fpga::bramWordBits)) &
                1u;
            if (stored == weak.oneToZero)
                ++total;
        }
    }
    return total;
}

std::vector<std::uint64_t>
HbmBackend::readDomainPacked(std::uint32_t domain,
                             double effective_v) const
{
    const fpga::WordSpan words = domainWords(domain);
    std::vector<std::uint64_t> observed(words.begin(), words.end());
    ladder10_[domain].applyFaults(observed, true, effective_v);
    ladder01_[domain].applyFaults(observed, false, effective_v);
    return observed;
}

double
HbmBackend::railPowerW(double rail_v) const
{
    const double vnom = spec_.vnomMv / 1000.0;
    const double ratio = rail_v / vnom;
    return spec_.railPowerNomW *
        (spec_.dynamicFraction * ratio * ratio +
         (1.0 - spec_.dynamicFraction) *
             std::exp(-spec_.leakageSlope * (vnom - rail_v)));
}

std::unique_ptr<MemoryDevice>
HbmBackend::clone() const
{
    return std::unique_ptr<MemoryDevice>(new HbmBackend(*this));
}

const std::vector<HbmBackend::WeakRow> &
HbmBackend::weakRows(std::uint32_t domain) const
{
    if (domain >= domainCount())
        fatal("HBM {}: bank {} out of pool of {}", name(), domain,
              domainCount());
    return rows_[domain];
}

} // namespace uvolt::mem

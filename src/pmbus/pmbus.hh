/**
 * @file
 * PMBus command vocabulary and LINEAR16 encoding helpers.
 *
 * The paper drives the on-board TI UCD9248 voltage controller through the
 * Power Management Bus (PMBus) standard via a TI USB adapter (Fig 2). We
 * reproduce the same register-level interface: the host encodes voltages
 * in LINEAR16 (mantissa x 2^exponent with the exponent advertised by
 * VOUT_MODE) and issues PAGE / VOUT_COMMAND / READ_* transactions.
 */

#ifndef UVOLT_PMBUS_PMBUS_HH
#define UVOLT_PMBUS_PMBUS_HH

#include <cstdint>

namespace uvolt::pmbus
{

/** Subset of standard PMBus command codes the experiments use. */
enum class Command : std::uint8_t
{
    Page = 0x00,            ///< select the regulated rail
    Operation = 0x01,       ///< on/off/margin control
    VoutMode = 0x20,        ///< LINEAR16 exponent advertisement
    VoutCommand = 0x21,     ///< voltage setpoint
    StatusWord = 0x79,      ///< summary status flags
    ReadVout = 0x8B,        ///< measured output voltage
    ReadTemperature = 0x8D, ///< on-board temperature sensor
    ReadPout = 0x96,        ///< measured output power
};

/** STATUS_WORD bits (subset). */
enum StatusBits : std::uint16_t
{
    statusNone = 0,
    statusVoutFault = 1u << 15, ///< output voltage fault/warning
    statusOff = 1u << 6,        ///< output disabled
};

/** LINEAR16 exponent used by the emulated UCD9248 (2^-12 volts/LSB). */
constexpr int linear16Exponent = -12;

/** Encode volts into a LINEAR16 mantissa for the fixed exponent. */
std::uint16_t encodeLinear16(double volts);

/** Decode a LINEAR16 mantissa back to volts. */
double decodeLinear16(std::uint16_t mantissa);

/**
 * Encode the VOUT_MODE byte: linear mode (upper 3 bits 0) with a 5-bit
 * two's-complement exponent.
 */
std::uint8_t encodeVoutMode();

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_PMBUS_HH

/**
 * @file
 * Register-level model of the TI UCD9248 digital PWM system controller.
 *
 * The studied boards regulate their rails with UCD9248 devices; the host
 * reprograms VCCBRAM through PMBus writes to VOUT_COMMAND after selecting
 * the rail with PAGE. The model implements the transaction semantics the
 * experiments rely on: LINEAR16 setpoints, a 10 mV DAC granularity (the
 * step size the paper sweeps with), per-page on/off state, temperature
 * readout, and status flags.
 */

#ifndef UVOLT_PMBUS_UCD9248_HH
#define UVOLT_PMBUS_UCD9248_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "pmbus/pmbus.hh"

namespace uvolt::pmbus
{

class FaultInjector;

/** DAC setpoint granularity in millivolts. */
constexpr int voutStepMv = 10;

/** Round a millivolt setpoint to the DAC granularity. */
int quantizeSetpointMv(int mv);

/** One regulated output page (rail) of the controller. */
struct RegulatorPage
{
    const char *label;        ///< e.g. "VCCBRAM"
    int setpointMv;           ///< commanded output level
    int nominalMv;            ///< power-on default
    bool enabled = true;      ///< OPERATION on/off
    /** Applied when the setpoint changes (wires the page to a rail). */
    std::function<void(int mv)> apply;
};

/** The emulated voltage controller. */
class Ucd9248
{
  public:
    /** @param temperature_source reads the on-board sensor in degC. */
    explicit Ucd9248(std::function<double()> temperature_source);

    /** Register a rail as the next PMBus page; returns the page index. */
    int addPage(const char *label, int nominal_mv,
                std::function<void(int mv)> apply);

    /** PMBus write transaction (byte- or word-sized payloads). */
    void writeByte(Command command, std::uint8_t value);
    void writeWord(Command command, std::uint16_t value);

    /** PMBus read transaction. */
    std::uint8_t readByte(Command command) const;
    std::uint16_t readWord(Command command) const;

    /**
     * Harsh-environment transactions: same semantics as the plain
     * write/read calls above, but a transaction can be NACKed (returns
     * false, no side effect)
     * and a latched VOUT setpoint can land one DAC step off the
     * commanded code. Callers own the retry / verify-after-write policy.
     */
    bool tryWriteByte(Command command, std::uint8_t value);
    bool tryWriteWord(Command command, std::uint16_t value);
    bool tryReadWord(Command command, std::uint16_t &value_out) const;

    /** Wire the harsh environment into the bus (nullptr = quiet). */
    void attachInjector(FaultInjector *injector) { injector_ = injector; }

    /** Currently selected page index. */
    int page() const { return page_; }

    /** Direct page inspection for tests. */
    const RegulatorPage &pageInfo(int index) const;

    std::size_t pageCount() const { return pages_.size(); }

  private:
    RegulatorPage &currentPage();
    const RegulatorPage &currentPage() const;

    std::function<double()> temperatureSource_;
    std::vector<RegulatorPage> pages_;
    FaultInjector *injector_ = nullptr;
    int page_ = 0;
};

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_UCD9248_HH

#include "pmbus/board.hh"

#include "power/power_model.hh"
#include "util/logging.hh"

namespace uvolt::pmbus
{

Board::Board(const fpga::PlatformSpec &spec,
             const vmodel::VariationParams &params)
    : device_(spec),
      faults_(std::make_unique<vmodel::ChipFaultModel>(
          spec, device_.floorplan(), params)),
      regulator_([this] { return ambientC_; }),
      runRng_(combineSeeds(hashSeed(spec.serialNumber),
                           hashSeed("run-jitter")))
{
    pageBram_ = regulator_.addPage("VCCBRAM", spec.vnomMv, [this](int mv) {
        device_.rail(fpga::RailId::VccBram).setMillivolts(mv);
    });
    pageInt_ = regulator_.addPage("VCCINT", spec.vnomMv, [this](int mv) {
        device_.rail(fpga::RailId::VccInt).setMillivolts(mv);
    });
}

void
Board::setVccBramMv(int mv)
{
    regulator_.writeByte(Command::Page,
                         static_cast<std::uint8_t>(pageBram_));
    regulator_.writeWord(Command::VoutCommand,
                         encodeLinear16(mv / 1000.0));
}

void
Board::setVccIntMv(int mv)
{
    regulator_.writeByte(Command::Page, static_cast<std::uint8_t>(pageInt_));
    regulator_.writeWord(Command::VoutCommand,
                         encodeLinear16(mv / 1000.0));
}

int
Board::vccBramMv() const
{
    return device_.rail(fpga::RailId::VccBram).millivolts();
}

void
Board::softReset()
{
    setVccBramMv(spec().vnomMv);
    setVccIntMv(spec().vnomMv);
    runJitterV_ = 0.0;
}

void
Board::startRun()
{
    runJitterV_ = runRng_.gaussian(0.0, spec().calib.runJitterMv / 1000.0);
}

bool
Board::internalLogicFaulty() const
{
    return device_.rail(fpga::RailId::VccInt).millivolts() <
        spec().calib.intVminMv;
}

double
Board::effectiveVoltage() const
{
    return faults_->effectiveVoltage(vccBramMv() / 1000.0, ambientC_,
                                     runJitterV_);
}

std::vector<std::uint16_t>
Board::readBramToHost(std::uint32_t bram) const
{
    if (!donePin()) {
        fatal("{}: readback attempted below Vcrash (DONE pin low)",
              spec().name);
    }
    auto observed =
        faults_->readBram(device_.bram(bram), bram, effectiveVoltage());
    // Ship through the (reliable) serial path, as the real setup does.
    auto frame = const_cast<SerialLink &>(link_).transfer(
        SerialLink::packWords(observed));
    if (!frame.verified())
        panic("serial link corrupted a frame; the link must be reliable");
    return SerialLink::unpackWords(frame.payload);
}

int
Board::countBramFaults(std::uint32_t bram) const
{
    if (!donePin()) {
        fatal("{}: readback attempted below Vcrash (DONE pin low)",
              spec().name);
    }
    return faults_->countBramFaults(device_.bram(bram), bram,
                                    effectiveVoltage());
}

double
Board::measureBramPowerW() const
{
    power::RailPowerModel model(spec());
    return model.bramPower(vccBramMv() / 1000.0);
}

} // namespace uvolt::pmbus

#include "pmbus/board.hh"

#include <map>
#include <mutex>

#include "fpga/fault_domain.hh"
#include "power/power_model.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::pmbus
{

namespace
{

struct BoardMetrics
{
    telemetry::Counter &setpointWrites =
        telemetry::Registry::global().counter("pmbus.setpoint.writes");
    telemetry::Counter &setpointRetries =
        telemetry::Registry::global().counter("pmbus.setpoint.retries");
    telemetry::Counter &verifyMismatches = telemetry::Registry::global()
        .counter("pmbus.setpoint.verify_mismatches");
    telemetry::Counter &setpointExhausted =
        telemetry::Registry::global().counter("pmbus.setpoint.exhausted");
    telemetry::Counter &bramProbes =
        telemetry::Registry::global().counter("board.bram_probes");
    telemetry::Counter &crashesDetected =
        telemetry::Registry::global().counter("board.crashes_detected");
};

BoardMetrics &
boardMetrics()
{
    static BoardMetrics metrics;
    return metrics;
}

} // namespace

std::shared_ptr<const vmodel::ChipFaultModel>
sharedChipModel(const fpga::PlatformSpec &spec,
                const vmodel::VariationParams &params)
{
    // The model is a pure function of this key, so a single-flight map
    // keyed by it is safe to share process-wide; holding the lock across
    // construction means concurrent first requests for the same die
    // synthesize the weak-cell map exactly once.
    const std::string key = strFormat(
        "{}|{}|{}|{}|{}|{}|{}|{}", spec.name, spec.serialNumber,
        spec.bramCount, spec.columnHeight, params.sigmaLn,
        params.spatialWeight, params.weakColumnShare,
        params.meanWeakColumns);

    static std::mutex mutex;
    static std::map<std::string,
                    std::shared_ptr<const vmodel::ChipFaultModel>> cache;
    std::lock_guard lock(mutex);
    auto &slot = cache[key];
    if (!slot) {
        slot = std::make_shared<const vmodel::ChipFaultModel>(
            spec, fpga::Floorplan::columnGrid(spec.bramCount,
                                              spec.columnHeight),
            params);
    }
    return slot;
}

Board::Board(const fpga::PlatformSpec &spec,
             const vmodel::VariationParams &params)
    : Board(spec, std::make_shared<const vmodel::ChipFaultModel>(
                      spec, fpga::Floorplan::columnGrid(
                                spec.bramCount, spec.columnHeight),
                      params))
{
}

Board::Board(const fpga::PlatformSpec &spec,
             std::shared_ptr<const vmodel::ChipFaultModel> model)
    : device_(spec), faults_(std::move(model)),
      regulator_([this] { return effectiveAmbientC(); }),
      runRng_(combineSeeds(hashSeed(spec.serialNumber),
                           hashSeed("run-jitter")))
{
    pageBram_ = regulator_.addPage("VCCBRAM", spec.vnomMv, [this](int mv) {
        device_.rail(fpga::RailId::VccBram).setMillivolts(mv);
    });
    pageInt_ = regulator_.addPage("VCCINT", spec.vnomMv, [this](int mv) {
        device_.rail(fpga::RailId::VccInt).setMillivolts(mv);
    });
}

void
Board::attachNoise(const NoiseConfig &config)
{
    injector_ = std::make_unique<FaultInjector>(config);
    link_.attachInjector(injector_.get());
    regulator_.attachInjector(injector_.get());
}

void
Board::setMaxPmbusAttempts(int attempts)
{
    if (attempts < 1)
        fatal("PMBus path needs at least one attempt, got {}", attempts);
    maxPmbusAttempts_ = attempts;
}

Expected<void>
Board::writeVerifiedSetpoint(int page, int mv)
{
    UVOLT_TRACE_SCOPE("pmbus.setpoint", [&] {
        return telemetry::TraceArgs{
            {"page", std::to_string(page)},
            {"mv", std::to_string(mv)}};
    });
    boardMetrics().setpointWrites.increment();
    const int expected_mv = quantizeSetpointMv(mv);
    const std::uint16_t code = encodeLinear16(mv / 1000.0);
    for (int attempt = 0; attempt < maxPmbusAttempts_; ++attempt) {
        if (attempt > 0) {
            ++pmbusStats_.retries;
            boardMetrics().setpointRetries.increment();
        }
        ++pmbusStats_.transactions;
        if (!regulator_.tryWriteByte(Command::Page,
                                     static_cast<std::uint8_t>(page)))
            continue;
        ++pmbusStats_.transactions;
        if (!regulator_.tryWriteWord(Command::VoutCommand, code))
            continue;
        // Verify-after-write: read the latched setpoint back and make
        // sure the DAC holds the commanded code, not a jittered one.
        std::uint16_t readback = 0;
        ++pmbusStats_.transactions;
        if (!regulator_.tryReadWord(Command::ReadVout, readback))
            continue;
        const int latched_mv = quantizeSetpointMv(static_cast<int>(
            decodeLinear16(readback) * 1000.0 + 0.5));
        if (latched_mv == expected_mv)
            return {};
        ++pmbusStats_.verifyMismatches;
        boardMetrics().verifyMismatches.increment();
    }
    ++pmbusStats_.exhausted;
    boardMetrics().setpointExhausted.increment();
    return makeError(Errc::pmbusExhausted,
                     "{}: page {} setpoint {} mV not acknowledged and "
                     "verified within {} attempts",
                     spec().name, page, mv, maxPmbusAttempts_);
}

Expected<void>
Board::trySetVccBramMv(int mv)
{
    return writeVerifiedSetpoint(pageBram_, mv);
}

Expected<void>
Board::trySetVccIntMv(int mv)
{
    return writeVerifiedSetpoint(pageInt_, mv);
}

void
Board::setVccBramMv(int mv)
{
    trySetVccBramMv(mv).orFatal();
}

void
Board::setVccIntMv(int mv)
{
    trySetVccIntMv(mv).orFatal();
}

int
Board::vccBramMv() const
{
    return device_.rail(fpga::RailId::VccBram).millivolts();
}

double
Board::effectiveAmbientC() const
{
    return ambientC_ + (injector_ ? injector_->tempDriftC() : 0.0);
}

void
Board::softReset()
{
    // Reconfiguration restores the DONE pin before the rails come back,
    // so the setpoint writes below run on an operational board.
    forcedCrash_ = false;
    crashCountdown_ = -1;
    setVccBramMv(spec().vnomMv);
    setVccIntMv(spec().vnomMv);
    runJitterV_ = 0.0;
}

void
Board::armCrashSchedule() const
{
    crashCountdown_ = injector_
        ? injector_->armCrash(vccBramMv(), spec().calib.bramVcrashMv,
                              device_.bramCount())
        : -1;
}

bool
Board::crashFires() const
{
    if (crashCountdown_ < 0)
        return false;
    if (crashCountdown_-- > 0)
        return false;
    forcedCrash_ = true;
    injector_->recordSpuriousCrash();
    return true;
}

void
Board::startRun()
{
    runJitterV_ = runRng_.gaussian(0.0, spec().calib.runJitterMv / 1000.0);
    ++runsStarted_;
    if (injector_)
        injector_->nextTempDriftC();
    armCrashSchedule();
}

void
Board::startReferenceRun()
{
    runJitterV_ = 0.0;
    armCrashSchedule();
}

void
Board::resumeRun(double jitter_v)
{
    runJitterV_ = jitter_v;
    // A fresh crash schedule is drawn: the retried run faces fresh luck,
    // not a replay of the crash that interrupted it.
    armCrashSchedule();
}

void
Board::fastForwardRuns(std::uint64_t runs)
{
    if (runsStarted_ > runs)
        fatal("cannot fast-forward the run stream backwards: at run {}, "
              "asked for {}",
              runsStarted_, runs);
    while (runsStarted_ < runs)
        startRun();
}

bool
Board::internalLogicFaulty() const
{
    return device_.rail(fpga::RailId::VccInt).millivolts() <
        spec().calib.intVminMv;
}

double
Board::effectiveVoltage() const
{
    return faults_->effectiveVoltage(vccBramMv() / 1000.0,
                                     effectiveAmbientC(), runJitterV_);
}

Expected<std::vector<std::uint64_t>>
Board::tryReadBramPacked(std::uint32_t bram) const
{
    boardMetrics().bramProbes.increment();
    if (!donePin() || crashFires()) {
        boardMetrics().crashesDetected.increment();
        return makeError(Errc::crashDetected,
                         "{}: readback of BRAM {} with DONE pin low "
                         "(configuration lost at {} mV)",
                         spec().name, bram, vccBramMv());
    }
    auto observed = faults_->readBramPacked(device_.bram(bram), bram,
                                            effectiveVoltage());
    // Ship through the CRC-verified serial path, as the real setup does.
    auto frame =
        link_.transferReliable(SerialLink::packWordBytes(observed));
    if (!frame.ok())
        return frame.error();
    return SerialLink::unpackWordBytes(frame.value().payload);
}

Expected<std::vector<std::uint16_t>>
Board::tryReadBramToHost(std::uint32_t bram) const
{
    auto observed = tryReadBramPacked(bram);
    if (!observed.ok())
        return observed.error();
    return fpga::unpackRows(observed.value());
}

std::vector<std::uint16_t>
Board::readBramToHost(std::uint32_t bram) const
{
    auto result = tryReadBramToHost(bram);
    if (!result.ok()) {
        if (result.code() == Errc::crashDetected)
            fatal("{}: readback attempted below Vcrash (DONE pin low)",
                  spec().name);
        fatal("{}", result.error().message);
    }
    return result.take();
}

Expected<int>
Board::tryCountBramFaults(std::uint32_t bram) const
{
    boardMetrics().bramProbes.increment();
    if (!donePin() || crashFires()) {
        boardMetrics().crashesDetected.increment();
        return makeError(Errc::crashDetected,
                         "{}: fault count of BRAM {} with DONE pin low "
                         "(configuration lost at {} mV)",
                         spec().name, bram, vccBramMv());
    }
    return faults_->countBramFaults(device_.bram(bram), bram,
                                    effectiveVoltage());
}

int
Board::countBramFaults(std::uint32_t bram) const
{
    auto result = tryCountBramFaults(bram);
    if (!result.ok()) {
        if (result.code() == Errc::crashDetected)
            fatal("{}: readback attempted below Vcrash (DONE pin low)",
                  spec().name);
        fatal("{}", result.error().message);
    }
    return result.value();
}

Expected<std::uint64_t>
Board::tryCountDeviceFaults() const
{
    const std::uint32_t count = device_.bramCount();
    if (crashCountdown_ >= 0) {
        // An injected spurious-crash schedule is armed: replicate the
        // per-BRAM probe loop exactly so the countdown stream and the
        // mid-pass crash point match a caller that probed one BRAM at a
        // time.
        std::uint64_t total = 0;
        for (std::uint32_t b = 0; b < count; ++b) {
            const auto probed = tryCountBramFaults(b);
            if (!probed.ok())
                return probed.error();
            total += static_cast<std::uint64_t>(probed.value());
        }
        return total;
    }

    boardMetrics().bramProbes.add(count);
    if (!donePin()) {
        boardMetrics().crashesDetected.increment();
        return makeError(Errc::crashDetected,
                         "{}: fault count of BRAM {} with DONE pin low "
                         "(configuration lost at {} mV)",
                         spec().name, 0, vccBramMv());
    }
    const double v = effectiveVoltage();
    if (countMemoValid_ && countMemoEpoch_ == device_.contentEpoch() &&
        countMemoV_ == v) {
        return countMemoTotal_;
    }
    const std::uint64_t total = faults_->countDeviceFaults(device_, v);
    countMemoValid_ = true;
    countMemoEpoch_ = device_.contentEpoch();
    countMemoV_ = v;
    countMemoTotal_ = total;
    return total;
}

std::uint64_t
Board::countDeviceFaults() const
{
    auto result = tryCountDeviceFaults();
    if (!result.ok()) {
        if (result.code() == Errc::crashDetected)
            fatal("{}: readback attempted below Vcrash (DONE pin low)",
                  spec().name);
        fatal("{}", result.error().message);
    }
    return result.value();
}

double
Board::measureBramPowerW() const
{
    power::RailPowerModel model(spec());
    return model.bramPower(vccBramMv() / 1000.0);
}

} // namespace uvolt::pmbus

/**
 * @file
 * Harsh-environment fault injection for the board instrumentation path.
 *
 * The paper validates its serial link and PMBus path in a quiet lab and
 * warns that "repeating these tests in more noisy and harsh environments
 * can cause observable faults above observed Vmin"; related work (Salami
 * et al. 1903.12514, Soyturk et al. 1912.00154) treats injected faults
 * and recovery as first-class methodology. This injector is the noisy
 * environment: a seeded, deterministic policy the Board composes that
 * corrupts serial frames, NACKs PMBus transactions, jitters latched rail
 * setpoints by one DAC step, crashes the configuration spuriously in a
 * band above Vcrash, and drifts the ambient temperature.
 *
 * Every decision draws from the injector's own RNG stream, never from
 * the board's run-jitter stream, so the *physics* of a campaign is
 * bit-identical with and without injection — which is exactly what lets
 * the retry/recovery machinery be tested for full fault masking.
 */

#ifndef UVOLT_PMBUS_FAULT_INJECTOR_HH
#define UVOLT_PMBUS_FAULT_INJECTOR_HH

#include <cstdint>

#include "util/rng.hh"

namespace uvolt::pmbus
{

/** Knobs of the simulated harsh environment (all off by default). */
struct NoiseConfig
{
    std::uint64_t seed = 1;       ///< injector RNG stream seed

    double frameCorruptProb = 0.0;   ///< per serial frame: flip one byte
    double pmbusNackProb = 0.0;      ///< per PMBus transaction: NACK it
    double setpointJitterProb = 0.0; ///< per VOUT write: latch 1 step off
    double spuriousCrashProb = 0.0;  ///< per measurement run, in-band
    int crashBandMv = 30;            ///< band above Vcrash that can crash
    double tempDriftC = 0.0;         ///< ambient random-walk step, degC
                                     ///< (perturbs physics; not masked)

    /** Whether any injection is enabled at all. */
    bool any() const;

    /**
     * Uniformly harsh environment: probability @a p on every maskable
     * channel (frames, NACKs, setpoint jitter, spurious crashes).
     */
    static NoiseConfig harsh(std::uint64_t seed, double p);
};

/** Injection event counters (what the environment did to us). */
struct NoiseStats
{
    std::uint64_t framesCorrupted = 0;
    std::uint64_t nacks = 0;
    std::uint64_t setpointJitters = 0;
    std::uint64_t spuriousCrashes = 0;
};

/** The seeded noise source. One per Board; shared by its channels. */
class FaultInjector
{
  public:
    explicit FaultInjector(const NoiseConfig &config);

    const NoiseConfig &config() const { return config_; }
    const NoiseStats &stats() const { return stats_; }

    /** Decide whether the frame being sent right now arrives corrupted. */
    bool corruptThisFrame();

    /** Decide whether the PMBus transaction in flight is NACKed. */
    bool nackThisTransaction();

    /**
     * Possibly perturb a latched DAC setpoint by one step (either
     * direction). Verify-after-write is what catches this.
     */
    int perturbSetpoint(int mv, int step_mv);

    /**
     * Arm a spurious crash for the measurement run starting now at
     * @a level_mv. Returns the number of measurement operations after
     * which the crash fires, or -1 for a clean run. Only levels inside
     * (vcrash, vcrash + crashBandMv] can crash spuriously.
     */
    int armCrash(int level_mv, int vcrash_mv, std::uint32_t op_count);

    /** Count a fired spurious crash (called by the board). */
    void recordSpuriousCrash();

    /** Advance the ambient temperature random walk; returns drift degC. */
    double nextTempDriftC();

    /** Current ambient drift without advancing the walk. */
    double tempDriftC() const { return driftC_; }

  private:
    NoiseConfig config_;
    NoiseStats stats_;
    Rng rng_;
    double driftC_ = 0.0;
};

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_FAULT_INJECTOR_HH

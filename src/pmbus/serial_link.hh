/**
 * @file
 * UART-style serial readback link between the FPGA and the host.
 *
 * The paper transfers BRAM contents to the host over a serial interface
 * (built from fabric logic on VC707/KC705, driven by the ARM core on
 * ZC702) and "verifies and validates that this interface is entirely
 * reliable at any VCCBRAM level". In the quiet lab we model exactly that
 * contract: frames are CRC-16 protected and always verify. In a harsh
 * environment (an attached FaultInjector) frames can arrive corrupted;
 * transferReliable() then provides the validated contract the harness
 * depends on via CRC-checked retransmission with bounded attempts and
 * exponential backoff, exposing per-channel error/retry statistics.
 */

#ifndef UVOLT_PMBUS_SERIAL_LINK_HH
#define UVOLT_PMBUS_SERIAL_LINK_HH

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hh"

namespace uvolt::pmbus
{

class FaultInjector;

/** CRC-16/CCITT-FALSE over a byte stream. */
std::uint16_t crc16(const std::vector<std::uint8_t> &bytes);

/** A framed payload as it arrives at the host. */
struct SerialFrame
{
    std::vector<std::uint8_t> payload;
    std::uint16_t crc;

    /** Whether the payload matches its checksum. */
    bool verified() const { return crc16(payload) == crc; }
};

/** Error/retry counters of the readback channel. */
struct LinkStats
{
    std::uint64_t framesSent = 0;   ///< raw frames on the wire
    std::uint64_t bytesSent = 0;    ///< payload bytes on the wire
    std::uint64_t crcErrors = 0;    ///< frames the host rejected
    std::uint64_t retransmits = 0;  ///< extra attempts that were needed
    std::uint64_t exhausted = 0;    ///< transfers that gave up entirely
    std::uint64_t backoffTicks = 0; ///< virtual backoff time spent
};

/** The CRC-verified readback channel. */
class SerialLink
{
  public:
    /** Transmit one raw frame; returns the frame the host receives. */
    SerialFrame transfer(const std::vector<std::uint8_t> &payload);

    /**
     * Transmit until the host verifies the CRC, retransmitting with
     * exponential backoff up to maxAttempts(). Error linkExhausted when
     * every attempt arrives corrupted.
     */
    Expected<SerialFrame>
    transferReliable(const std::vector<std::uint8_t> &payload);

    /** Wire the harsh environment into the channel (nullptr = quiet). */
    void attachInjector(FaultInjector *injector) { injector_ = injector; }

    /** Bound on transferReliable() attempts (>= 1). */
    void setMaxAttempts(int attempts);
    int maxAttempts() const { return maxAttempts_; }

    /** Per-channel error/retry statistics. */
    const LinkStats &stats() const { return stats_; }

    /** Frames transferred so far (experiment bookkeeping). */
    std::uint64_t framesSent() const { return stats_.framesSent; }

    /** Payload bytes transferred so far. */
    std::uint64_t bytesSent() const { return stats_.bytesSent; }

    /** Serialize sixteen-bit words little-endian for transmission. */
    static std::vector<std::uint8_t>
    packWords(const std::vector<std::uint16_t> &words);

    /** Inverse of packWords. */
    static std::vector<std::uint16_t>
    unpackWords(const std::vector<std::uint8_t> &bytes);

    /**
     * Serialize packed 64-bit fault-domain words little-endian. The wire
     * format is unchanged: byte k of word w carries bit offsets
     * 64w+8k .. 64w+8k+7, exactly the stream packWords() produced from
     * the same contents as 16-bit rows — so CRC values, frame sizes and
     * injected-corruption positions are byte-identical.
     */
    static std::vector<std::uint8_t>
    packWordBytes(std::span<const std::uint64_t> words);

    /** Inverse of packWordBytes. */
    static std::vector<std::uint64_t>
    unpackWordBytes(const std::vector<std::uint8_t> &bytes);

  private:
    LinkStats stats_;
    FaultInjector *injector_ = nullptr;
    int maxAttempts_ = 8;
};

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_SERIAL_LINK_HH

/**
 * @file
 * UART-style serial readback link between the FPGA and the host.
 *
 * The paper transfers BRAM contents to the host over a serial interface
 * (built from fabric logic on VC707/KC705, driven by the ARM core on
 * ZC702) and "verifies and validates that this interface is entirely
 * reliable at any VCCBRAM level". We model exactly that contract: the
 * link frames payloads with a CRC-16 and is powered from rails the
 * experiments never underscale, so frames always verify. The CRC plumbing
 * is still real so tests can demonstrate the validation step.
 */

#ifndef UVOLT_PMBUS_SERIAL_LINK_HH
#define UVOLT_PMBUS_SERIAL_LINK_HH

#include <cstdint>
#include <vector>

namespace uvolt::pmbus
{

/** CRC-16/CCITT-FALSE over a byte stream. */
std::uint16_t crc16(const std::vector<std::uint8_t> &bytes);

/** A framed payload as it arrives at the host. */
struct SerialFrame
{
    std::vector<std::uint8_t> payload;
    std::uint16_t crc;

    /** Whether the payload matches its checksum. */
    bool verified() const { return crc16(payload) == crc; }
};

/** The fault-immune readback channel. */
class SerialLink
{
  public:
    /** Transmit one payload; returns the frame the host receives. */
    SerialFrame transfer(const std::vector<std::uint8_t> &payload);

    /** Frames transferred so far (experiment bookkeeping). */
    std::uint64_t framesSent() const { return framesSent_; }

    /** Payload bytes transferred so far. */
    std::uint64_t bytesSent() const { return bytesSent_; }

    /** Serialize sixteen-bit words little-endian for transmission. */
    static std::vector<std::uint8_t>
    packWords(const std::vector<std::uint16_t> &words);

    /** Inverse of packWords. */
    static std::vector<std::uint16_t>
    unpackWords(const std::vector<std::uint8_t> &bytes);

  private:
    std::uint64_t framesSent_ = 0;
    std::uint64_t bytesSent_ = 0;
};

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_SERIAL_LINK_HH

#include "pmbus/pmbus.hh"

#include <cmath>

namespace uvolt::pmbus
{

std::uint16_t
encodeLinear16(double volts)
{
    if (volts < 0.0)
        volts = 0.0;
    const double scaled = std::round(std::ldexp(volts, -linear16Exponent));
    return scaled > 65535.0 ? 65535u : static_cast<std::uint16_t>(scaled);
}

double
decodeLinear16(std::uint16_t mantissa)
{
    return std::ldexp(static_cast<double>(mantissa), linear16Exponent);
}

std::uint8_t
encodeVoutMode()
{
    // Linear mode, 5-bit two's-complement exponent in the low bits.
    return static_cast<std::uint8_t>(linear16Exponent & 0x1f);
}

} // namespace uvolt::pmbus

#include "pmbus/fault_injector.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::pmbus
{

namespace
{

struct NoiseMetrics
{
    telemetry::Counter &framesCorrupted =
        telemetry::Registry::global().counter("noise.frames_corrupted");
    telemetry::Counter &nacks =
        telemetry::Registry::global().counter("noise.nacks");
    telemetry::Counter &setpointJitters =
        telemetry::Registry::global().counter("noise.setpoint_jitters");
    telemetry::Counter &spuriousCrashes =
        telemetry::Registry::global().counter("noise.spurious_crashes");
};

NoiseMetrics &
noiseMetrics()
{
    static NoiseMetrics metrics;
    return metrics;
}

} // namespace

bool
NoiseConfig::any() const
{
    return frameCorruptProb > 0.0 || pmbusNackProb > 0.0 ||
        setpointJitterProb > 0.0 || spuriousCrashProb > 0.0 ||
        tempDriftC > 0.0;
}

NoiseConfig
NoiseConfig::harsh(std::uint64_t seed, double p)
{
    NoiseConfig config;
    config.seed = seed;
    config.frameCorruptProb = p;
    config.pmbusNackProb = p;
    config.setpointJitterProb = p;
    config.spuriousCrashProb = p;
    return config;
}

FaultInjector::FaultInjector(const NoiseConfig &config)
    : config_(config),
      rng_(combineSeeds(hashSeed("harsh-environment"), config.seed))
{
    if (config_.frameCorruptProb < 0.0 || config_.frameCorruptProb > 1.0 ||
        config_.pmbusNackProb < 0.0 || config_.pmbusNackProb > 1.0 ||
        config_.setpointJitterProb < 0.0 ||
        config_.setpointJitterProb > 1.0 ||
        config_.spuriousCrashProb < 0.0 || config_.spuriousCrashProb > 1.0)
        fatal("noise probabilities must lie in [0, 1]");
    if (config_.crashBandMv < 0)
        fatal("crash band must be non-negative, got {} mV",
              config_.crashBandMv);
}

bool
FaultInjector::corruptThisFrame()
{
    if (config_.frameCorruptProb <= 0.0 ||
        !rng_.chance(config_.frameCorruptProb))
        return false;
    ++stats_.framesCorrupted;
    noiseMetrics().framesCorrupted.increment();
    return true;
}

bool
FaultInjector::nackThisTransaction()
{
    if (config_.pmbusNackProb <= 0.0 || !rng_.chance(config_.pmbusNackProb))
        return false;
    ++stats_.nacks;
    noiseMetrics().nacks.increment();
    return true;
}

int
FaultInjector::perturbSetpoint(int mv, int step_mv)
{
    if (config_.setpointJitterProb <= 0.0 ||
        !rng_.chance(config_.setpointJitterProb))
        return mv;
    ++stats_.setpointJitters;
    noiseMetrics().setpointJitters.increment();
    return rng_.chance(0.5) ? mv + step_mv : mv - step_mv;
}

void
FaultInjector::recordSpuriousCrash()
{
    ++stats_.spuriousCrashes;
    noiseMetrics().spuriousCrashes.increment();
}

int
FaultInjector::armCrash(int level_mv, int vcrash_mv, std::uint32_t op_count)
{
    if (config_.spuriousCrashProb <= 0.0 || op_count == 0)
        return -1;
    // Spurious crashes live in the band just above Vcrash: the paper's
    // "harsh environment" pushes marginal levels over the edge, while
    // comfortably high levels stay stable.
    if (level_mv <= vcrash_mv || level_mv > vcrash_mv + config_.crashBandMv)
        return -1;
    if (!rng_.chance(config_.spuriousCrashProb))
        return -1;
    return static_cast<int>(rng_.uniformInt(0, op_count - 1));
}

double
FaultInjector::nextTempDriftC()
{
    if (config_.tempDriftC <= 0.0)
        return 0.0;
    // Mean-reverting walk bounded to a few step sizes of amplitude.
    driftC_ = 0.9 * driftC_ + rng_.gaussian(0.0, config_.tempDriftC);
    driftC_ = std::clamp(driftC_, -5.0 * config_.tempDriftC,
                         5.0 * config_.tempDriftC);
    return driftC_;
}

} // namespace uvolt::pmbus

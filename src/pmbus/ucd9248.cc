#include "pmbus/ucd9248.hh"

#include <algorithm>
#include <cmath>

#include "pmbus/fault_injector.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::pmbus
{

namespace
{

struct TxnMetrics
{
    telemetry::Counter &attempts =
        telemetry::Registry::global().counter("pmbus.txn.attempts");
    telemetry::Counter &nacks =
        telemetry::Registry::global().counter("pmbus.txn.nacks");
    telemetry::Counter &mislatches =
        telemetry::Registry::global().counter("pmbus.txn.mislatches");
};

TxnMetrics &
txnMetrics()
{
    static TxnMetrics metrics;
    return metrics;
}

} // namespace

int
quantizeSetpointMv(int mv)
{
    const int half = voutStepMv / 2;
    return ((mv + (mv >= 0 ? half : -half)) / voutStepMv) * voutStepMv;
}

Ucd9248::Ucd9248(std::function<double()> temperature_source)
    : temperatureSource_(std::move(temperature_source))
{
    if (!temperatureSource_)
        fatal("Ucd9248 requires a temperature source");
}

int
Ucd9248::addPage(const char *label, int nominal_mv,
                 std::function<void(int mv)> apply)
{
    RegulatorPage page;
    page.label = label;
    page.nominalMv = nominal_mv;
    page.setpointMv = nominal_mv;
    page.apply = std::move(apply);
    pages_.push_back(std::move(page));
    return static_cast<int>(pages_.size()) - 1;
}

RegulatorPage &
Ucd9248::currentPage()
{
    if (pages_.empty())
        fatal("UCD9248 has no configured pages");
    return pages_[static_cast<std::size_t>(page_)];
}

const RegulatorPage &
Ucd9248::currentPage() const
{
    return const_cast<Ucd9248 *>(this)->currentPage();
}

const RegulatorPage &
Ucd9248::pageInfo(int index) const
{
    if (index < 0 || static_cast<std::size_t>(index) >= pages_.size())
        fatal("UCD9248 page {} out of range", index);
    return pages_[static_cast<std::size_t>(index)];
}

void
Ucd9248::writeByte(Command command, std::uint8_t value)
{
    switch (command) {
      case Command::Page:
        if (value >= pages_.size())
            fatal("PAGE write selects page {} of {}", value, pages_.size());
        page_ = value;
        return;
      case Command::Operation:
        currentPage().enabled = (value & 0x80) != 0;
        if (currentPage().apply) {
            currentPage().apply(currentPage().enabled
                                    ? currentPage().setpointMv : 0);
        }
        return;
      default:
        fatal("unsupported PMBus byte write, command 0x{:02x}",
              static_cast<unsigned>(command));
    }
}

void
Ucd9248::writeWord(Command command, std::uint16_t value)
{
    switch (command) {
      case Command::VoutCommand: {
        const double volts = decodeLinear16(value);
        auto &page = currentPage();
        page.setpointMv = quantizeSetpointMv(
            static_cast<int>(std::lround(volts * 1000.0)));
        if (page.enabled && page.apply)
            page.apply(page.setpointMv);
        return;
      }
      default:
        fatal("unsupported PMBus word write, command 0x{:02x}",
              static_cast<unsigned>(command));
    }
}

bool
Ucd9248::tryWriteByte(Command command, std::uint8_t value)
{
    txnMetrics().attempts.increment();
    if (injector_ && injector_->nackThisTransaction()) {
        txnMetrics().nacks.increment();
        return false;
    }
    writeByte(command, value);
    return true;
}

bool
Ucd9248::tryWriteWord(Command command, std::uint16_t value)
{
    txnMetrics().attempts.increment();
    if (injector_ && injector_->nackThisTransaction()) {
        txnMetrics().nacks.increment();
        return false;
    }
    if (command == Command::VoutCommand && injector_) {
        // The harsh environment can make the DAC latch one step off the
        // commanded code; verify-after-write is the caller's defence.
        const int commanded_mv = quantizeSetpointMv(
            static_cast<int>(std::lround(decodeLinear16(value) * 1000.0)));
        const int latched_mv =
            injector_->perturbSetpoint(commanded_mv, voutStepMv);
        if (latched_mv != commanded_mv) {
            txnMetrics().mislatches.increment();
            writeWord(command,
                      encodeLinear16(std::max(latched_mv, 0) / 1000.0));
            return true;
        }
    }
    writeWord(command, value);
    return true;
}

bool
Ucd9248::tryReadWord(Command command, std::uint16_t &value_out) const
{
    txnMetrics().attempts.increment();
    if (injector_ && injector_->nackThisTransaction()) {
        txnMetrics().nacks.increment();
        return false;
    }
    value_out = readWord(command);
    return true;
}

std::uint8_t
Ucd9248::readByte(Command command) const
{
    switch (command) {
      case Command::Page:
        return static_cast<std::uint8_t>(page_);
      case Command::VoutMode:
        return encodeVoutMode();
      default:
        fatal("unsupported PMBus byte read, command 0x{:02x}",
              static_cast<unsigned>(command));
    }
}

std::uint16_t
Ucd9248::readWord(Command command) const
{
    switch (command) {
      case Command::VoutCommand:
      case Command::ReadVout:
        return encodeLinear16(currentPage().setpointMv / 1000.0);
      case Command::ReadTemperature:
        // LINEAR11-style readings are overkill here; report whole degC.
        return static_cast<std::uint16_t>(
            std::lround(temperatureSource_()));
      case Command::StatusWord: {
        std::uint16_t status = statusNone;
        if (!currentPage().enabled)
            status |= statusOff;
        return status;
      }
      default:
        fatal("unsupported PMBus word read, command 0x{:02x}",
              static_cast<unsigned>(command));
    }
}

} // namespace uvolt::pmbus

/**
 * @file
 * A full experimental board: the device, its chip-specific fault
 * personality, the UCD9248 regulator, the serial readback link, a power
 * meter, and the (optional) heat chamber around it. This is the
 * software equivalent of the paper's Fig 2 setup; the characterization
 * harness only talks to this class, never to the fault model directly,
 * so the measurement path matches the hardware methodology.
 */

#ifndef UVOLT_PMBUS_BOARD_HH
#define UVOLT_PMBUS_BOARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fpga/device.hh"
#include "fpga/platform.hh"
#include "pmbus/serial_link.hh"
#include "pmbus/ucd9248.hh"
#include "util/rng.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::pmbus
{

/** One instrumented board under test. */
class Board
{
  public:
    /**
     * Power up the board described by @a spec at nominal voltages,
     * 50 degC ambient, with the chip personality derived from the spec's
     * serial number.
     * @param params fault-model shape overrides (ablation studies)
     */
    explicit Board(const fpga::PlatformSpec &spec,
                   const vmodel::VariationParams &params = {});

    const fpga::PlatformSpec &spec() const { return device_.spec(); }
    fpga::Device &device() { return device_; }
    const fpga::Device &device() const { return device_; }
    const vmodel::ChipFaultModel &faultModel() const { return *faults_; }
    Ucd9248 &regulator() { return regulator_; }
    SerialLink &link() { return link_; }

    /** Command VCCBRAM through the PMBus path (PAGE + VOUT_COMMAND). */
    void setVccBramMv(int mv);

    /** Command VCCINT through the PMBus path. */
    void setVccIntMv(int mv);

    /** Current VCCBRAM level as the regulator reports it. */
    int vccBramMv() const;

    /** Heat-chamber control: set the on-board ambient temperature. */
    void setAmbientC(double temp_c) { ambientC_ = temp_c; }
    double ambientC() const { return ambientC_; }

    /** DONE pin: high while the configuration is alive (not crashed). */
    bool donePin() const { return device_.operational(); }

    /** Restore nominal voltages after a crash probe (soft reset). */
    void softReset();

    /**
     * Begin a measurement run: draws this run's supply jitter. The paper
     * repeats each voltage level 100 times; the tiny run-to-run spread it
     * reports (Table II) comes from exactly this noise source.
     */
    void startRun();

    /**
     * Begin a jitter-free reference run: the deterministic median-run
     * conditions used when extracting per-BRAM maps.
     */
    void startReferenceRun() { runJitterV_ = 0.0; }

    /**
     * Self-check of the programmed design's internal logic (substitute
     * for observing computation errors when VCCINT is underscaled):
     * true when VCCINT has entered its CRITICAL region.
     */
    bool internalLogicFaulty() const;

    /**
     * Read one BRAM back to the host over the serial link under the
     * present voltage/temperature/jitter conditions.
     * fatal() if the device has crashed (DONE low).
     */
    std::vector<std::uint16_t> readBramToHost(std::uint32_t bram) const;

    /**
     * Count faults in one BRAM against its written contents without
     * the serial transfer (fast path for large sweeps; bit-identical
     * outcome to diffing readBramToHost()).
     */
    int countBramFaults(std::uint32_t bram) const;

    /** Effective bitcell voltage under the current conditions. */
    double effectiveVoltage() const;

    /** Power-meter reading of the BRAM rail, watts. */
    double measureBramPowerW() const;

  private:
    fpga::Device device_;
    std::unique_ptr<vmodel::ChipFaultModel> faults_;
    Ucd9248 regulator_;
    SerialLink link_;
    int pageBram_;
    int pageInt_;
    double ambientC_ = vmodel::referenceTempC;
    double runJitterV_ = 0.0;
    Rng runRng_;
};

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_BOARD_HH

/**
 * @file
 * A full experimental board: the device, its chip-specific fault
 * personality, the UCD9248 regulator, the serial readback link, a power
 * meter, and the (optional) heat chamber around it. This is the
 * software equivalent of the paper's Fig 2 setup; the characterization
 * harness only talks to this class, never to the fault model directly,
 * so the measurement path matches the hardware methodology.
 *
 * The board can operate in a harsh environment (attachNoise()): serial
 * frames corrupt, PMBus transactions NACK, latched setpoints jitter,
 * the configuration crashes spuriously in a band above Vcrash, and the
 * ambient drifts. The instrumentation path then defends itself with
 * CRC-verified retransmission, verify-after-write setpoint retries, and
 * a recoverable-error measurement path (try* methods) that campaign
 * engines use to soft-reset and resume instead of dying.
 */

#ifndef UVOLT_PMBUS_BOARD_HH
#define UVOLT_PMBUS_BOARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fpga/device.hh"
#include "fpga/platform.hh"
#include "pmbus/fault_injector.hh"
#include "pmbus/serial_link.hh"
#include "pmbus/ucd9248.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "vmodel/chip_fault_model.hh"

namespace uvolt::pmbus
{

/** Error/retry counters of the PMBus control channel. */
struct PmbusStats
{
    std::uint64_t transactions = 0;     ///< attempted bus transactions
    std::uint64_t retries = 0;          ///< transaction-level retries
    std::uint64_t verifyMismatches = 0; ///< setpoints rewritten by verify
    std::uint64_t exhausted = 0;        ///< setpoint writes that gave up
};

/**
 * The chip personality of @a spec, built once and shared. The weak-cell
 * map is immutable after construction and deterministic in (serial
 * number, geometry, params), so every Board of the same die can alias
 * one instance; a process-wide single-flight cache makes repeat lookups
 * (e.g. one Board per fleet worker) a map probe instead of a full
 * weak-cell synthesis. Thread-safe.
 */
std::shared_ptr<const vmodel::ChipFaultModel>
sharedChipModel(const fpga::PlatformSpec &spec,
                const vmodel::VariationParams &params = {});

/** One instrumented board under test. */
class Board
{
  public:
    /**
     * Power up the board described by @a spec at nominal voltages,
     * 50 degC ambient, with the chip personality derived from the spec's
     * serial number.
     * @param params fault-model shape overrides (ablation studies)
     */
    explicit Board(const fpga::PlatformSpec &spec,
                   const vmodel::VariationParams &params = {});

    /**
     * Power up a board around an already-built chip personality
     * (sharedChipModel()). This is the cheap per-worker constructor of
     * fleet campaigns: the expensive weak-cell synthesis is skipped and
     * the immutable model is aliased, never copied.
     */
    Board(const fpga::PlatformSpec &spec,
          std::shared_ptr<const vmodel::ChipFaultModel> model);

    const fpga::PlatformSpec &spec() const { return device_.spec(); }
    fpga::Device &device() { return device_; }
    const fpga::Device &device() const { return device_; }
    const vmodel::ChipFaultModel &faultModel() const { return *faults_; }
    Ucd9248 &regulator() { return regulator_; }
    SerialLink &link() { return link_; }
    const SerialLink &link() const { return link_; }

    /**
     * Put the board in a harsh environment: all instrumentation channels
     * start drawing injected faults from a seeded stream. Call once,
     * before a campaign; the quiet default has zero overhead.
     */
    void attachNoise(const NoiseConfig &config);

    /** The active noise source (nullptr in the quiet lab). */
    const FaultInjector *injector() const { return injector_.get(); }

    /** Bound on PMBus setpoint write/verify attempts (>= 1). */
    void setMaxPmbusAttempts(int attempts);

    /** Per-channel error/retry statistics of the control path. */
    const PmbusStats &pmbusStats() const { return pmbusStats_; }

    /** Command VCCBRAM through the PMBus path (PAGE + VOUT_COMMAND). */
    void setVccBramMv(int mv);

    /** Command VCCINT through the PMBus path. */
    void setVccIntMv(int mv);

    /**
     * Harsh-environment setpoint write: PAGE + VOUT_COMMAND + READ_VOUT
     * verify-after-write, retrying NACKed or mis-latched transactions up
     * to the attempt bound. Error pmbusExhausted when it never converges.
     */
    Expected<void> trySetVccBramMv(int mv);
    Expected<void> trySetVccIntMv(int mv);

    /** Current VCCBRAM level as the regulator reports it. */
    int vccBramMv() const;

    /** Heat-chamber control: set the on-board ambient temperature. */
    void setAmbientC(double temp_c) { ambientC_ = temp_c; }
    double ambientC() const { return ambientC_; }

    /** Commanded ambient plus any harsh-environment drift. */
    double effectiveAmbientC() const;

    /** DONE pin: high while the configuration is alive (not crashed). */
    bool donePin() const { return device_.operational() && !forcedCrash_; }

    /** Restore nominal voltages after a crash probe (soft reset). */
    void softReset();

    /**
     * Begin a measurement run: draws this run's supply jitter. The paper
     * repeats each voltage level 100 times; the tiny run-to-run spread it
     * reports (Table II) comes from exactly this noise source.
     */
    void startRun();

    /**
     * Begin a jitter-free reference run: the deterministic median-run
     * conditions used when extracting per-BRAM maps.
     */
    void startReferenceRun();

    /** Supply jitter of the run in progress, volts. */
    double runJitterV() const { return runJitterV_; }

    /**
     * Re-enter a run after crash recovery with the jitter it already
     * drew, so the retried run reproduces the interrupted one exactly
     * (no fresh draw from the run-jitter stream).
     */
    void resumeRun(double jitter_v);

    /** startRun() calls made so far (the run-jitter stream cursor). */
    std::uint64_t runsStarted() const { return runsStarted_; }

    /**
     * Replay @a runs startRun() draws without measuring: positions the
     * run-jitter stream for a checkpoint resume so the continued
     * campaign equals the uninterrupted one bit for bit.
     */
    void fastForwardRuns(std::uint64_t runs);

    /**
     * Self-check of the programmed design's internal logic (substitute
     * for observing computation errors when VCCINT is underscaled):
     * true when VCCINT has entered its CRITICAL region.
     */
    bool internalLogicFaulty() const;

    /**
     * Read one BRAM back to the host over the serial link under the
     * present voltage/temperature/jitter conditions.
     * fatal() if the device has crashed (DONE low) or the link gave up.
     */
    std::vector<std::uint16_t> readBramToHost(std::uint32_t bram) const;

    /**
     * Recoverable readback: crashDetected when the configuration is (or
     * just spuriously went) down, linkExhausted when retransmission ran
     * out of attempts. The board stays consistent; a softReset() +
     * re-fill recovers it.
     */
    Expected<std::vector<std::uint16_t>>
    tryReadBramToHost(std::uint32_t bram) const;

    /**
     * Packed recoverable readback: the observed contents of one BRAM as
     * bit-packed 64-bit fault-domain words, shipped through the same
     * CRC-verified serial path (the wire byte stream is identical to the
     * 16-bit-row form, so link noise behaves identically).
     */
    Expected<std::vector<std::uint64_t>>
    tryReadBramPacked(std::uint32_t bram) const;

    /**
     * Count faults in one BRAM against its written contents without
     * the serial transfer (fast path for large sweeps; bit-identical
     * outcome to diffing readBramToHost()).
     */
    int countBramFaults(std::uint32_t bram) const;

    /** Recoverable fault count; crashDetected as tryReadBramToHost(). */
    Expected<int> tryCountBramFaults(std::uint32_t bram) const;

    /**
     * Device-wide fault count for the run in progress: the sweep inner
     * loop. Equals summing tryCountBramFaults() over the pool bit for
     * bit — including the per-BRAM probe accounting and the injected
     * spurious-crash schedule when a harsh environment is attached —
     * but on a quiet schedule it streams the packed threshold ladders
     * and memoizes on (content epoch, effective voltage), so repeated
     * runs at identical conditions cost a pair of compares.
     */
    Expected<std::uint64_t> tryCountDeviceFaults() const;

    /** Fatal-on-error form of tryCountDeviceFaults(). */
    std::uint64_t countDeviceFaults() const;

    /** Effective bitcell voltage under the current conditions. */
    double effectiveVoltage() const;

    /** Power-meter reading of the BRAM rail, watts. */
    double measureBramPowerW() const;

  private:
    /** Retryable PAGE + VOUT_COMMAND + READ_VOUT verify sequence. */
    Expected<void> writeVerifiedSetpoint(int page, int mv);

    /** Arm / fire the injected spurious-crash schedule. */
    void armCrashSchedule() const;
    bool crashFires() const;

    fpga::Device device_;
    std::shared_ptr<const vmodel::ChipFaultModel> faults_;
    Ucd9248 regulator_;
    mutable SerialLink link_;
    std::unique_ptr<FaultInjector> injector_;
    mutable PmbusStats pmbusStats_;
    int pageBram_;
    int pageInt_;
    int maxPmbusAttempts_ = 8;
    double ambientC_ = vmodel::referenceTempC;
    double runJitterV_ = 0.0;
    std::uint64_t runsStarted_ = 0;
    mutable bool forcedCrash_ = false;
    mutable int crashCountdown_ = -1; ///< ops until injected crash; -1 off
    // Device-count memo: valid while no BRAM content changed (epoch) and
    // the effective bitcell voltage is exactly the same double.
    mutable bool countMemoValid_ = false;
    mutable std::uint64_t countMemoEpoch_ = 0;
    mutable double countMemoV_ = 0.0;
    mutable std::uint64_t countMemoTotal_ = 0;
    Rng runRng_;
};

} // namespace uvolt::pmbus

#endif // UVOLT_PMBUS_BOARD_HH

#include "pmbus/serial_link.hh"

#include <algorithm>

#include "pmbus/fault_injector.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::pmbus
{

namespace
{

/** Registry handles, resolved once (registration takes a lock). */
struct LinkMetrics
{
    telemetry::Counter &frames =
        telemetry::Registry::global().counter("pmbus.link.frames");
    telemetry::Counter &bytes =
        telemetry::Registry::global().counter("pmbus.link.bytes");
    telemetry::Counter &crcErrors =
        telemetry::Registry::global().counter("pmbus.link.crc_errors");
    telemetry::Counter &retransmits =
        telemetry::Registry::global().counter("pmbus.link.retransmits");
    telemetry::Counter &exhausted =
        telemetry::Registry::global().counter("pmbus.link.exhausted");
};

LinkMetrics &
linkMetrics()
{
    static LinkMetrics metrics;
    return metrics;
}

} // namespace

std::uint16_t
crc16(const std::vector<std::uint8_t> &bytes)
{
    // CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection.
    std::uint16_t crc = 0xFFFF;
    for (std::uint8_t byte : bytes) {
        crc ^= static_cast<std::uint16_t>(byte) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

SerialFrame
SerialLink::transfer(const std::vector<std::uint8_t> &payload)
{
    SerialFrame frame;
    frame.payload = payload;
    frame.crc = crc16(payload);
    if (injector_ && !payload.empty() && injector_->corruptThisFrame()) {
        // Line noise flips a byte in flight; the CRC no longer matches.
        frame.payload[frame.payload.size() / 2] ^= 0xFF;
    }
    ++stats_.framesSent;
    stats_.bytesSent += payload.size();
    linkMetrics().frames.increment();
    linkMetrics().bytes.add(payload.size());
    return frame;
}

Expected<SerialFrame>
SerialLink::transferReliable(const std::vector<std::uint8_t> &payload)
{
    for (int attempt = 0; attempt < maxAttempts_; ++attempt) {
        if (attempt > 0) {
            ++stats_.retransmits;
            linkMetrics().retransmits.increment();
            // Exponential backoff in virtual line-time units.
            stats_.backoffTicks += 1ULL << std::min(attempt, 16);
        }
        SerialFrame frame = transfer(payload);
        if (frame.verified())
            return frame;
        ++stats_.crcErrors;
        linkMetrics().crcErrors.increment();
    }
    ++stats_.exhausted;
    linkMetrics().exhausted.increment();
    return makeError(Errc::linkExhausted,
                     "serial transfer of {} bytes failed CRC on all {} "
                     "attempts",
                     payload.size(), maxAttempts_);
}

void
SerialLink::setMaxAttempts(int attempts)
{
    if (attempts < 1)
        fatal("serial link needs at least one attempt, got {}", attempts);
    maxAttempts_ = attempts;
}

std::vector<std::uint8_t>
SerialLink::packWords(const std::vector<std::uint16_t> &words)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 2);
    for (std::uint16_t word : words) {
        bytes.push_back(static_cast<std::uint8_t>(word & 0xFF));
        bytes.push_back(static_cast<std::uint8_t>(word >> 8));
    }
    return bytes;
}

std::vector<std::uint16_t>
SerialLink::unpackWords(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() % 2 != 0)
        fatal("unpackWords: odd byte count {}", bytes.size());
    std::vector<std::uint16_t> words;
    words.reserve(bytes.size() / 2);
    for (std::size_t i = 0; i < bytes.size(); i += 2) {
        words.push_back(static_cast<std::uint16_t>(
            bytes[i] | (static_cast<std::uint16_t>(bytes[i + 1]) << 8)));
    }
    return words;
}

} // namespace uvolt::pmbus

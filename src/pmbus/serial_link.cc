#include "pmbus/serial_link.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "pmbus/fault_injector.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace uvolt::pmbus
{

namespace
{

/**
 * CRC-16/CCITT-FALSE slicing-by-8 tables. Table 0 is the classic
 * one-byte step table: entry b is the CRC register contribution of
 * shifting byte b through the bitwise feedback loop. Table k advances
 * table k-1 through one further zero byte, so T[k][b] is "byte b
 * followed by k zero bytes" — which lets the hot loop fold 8 message
 * bytes per iteration with 8 independent lookups (no serial dependency
 * between them, only the final XOR chain). All tables derive at compile
 * time from the same poly/shift definition the old bitwise loop used,
 * so crc16() values are unchanged.
 */
constexpr std::array<std::array<std::uint16_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<std::uint16_t, 256>, 8> tables{};
    for (int byte = 0; byte < 256; ++byte) {
        std::uint16_t crc = static_cast<std::uint16_t>(byte << 8);
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
        tables[0][static_cast<std::size_t>(byte)] = crc;
    }
    for (int k = 1; k < 8; ++k) {
        for (int byte = 0; byte < 256; ++byte) {
            const std::uint16_t prev =
                tables[static_cast<std::size_t>(k - 1)]
                      [static_cast<std::size_t>(byte)];
            tables[static_cast<std::size_t>(k)]
                  [static_cast<std::size_t>(byte)] =
                static_cast<std::uint16_t>(
                    (prev << 8) ^ tables[0][prev >> 8]);
        }
    }
    return tables;
}

constexpr std::array<std::array<std::uint16_t, 256>, 8> crcTables =
    makeCrcTables();

/** Registry handles, resolved once (registration takes a lock). */
struct LinkMetrics
{
    telemetry::Counter &frames =
        telemetry::Registry::global().counter("pmbus.link.frames");
    telemetry::Counter &bytes =
        telemetry::Registry::global().counter("pmbus.link.bytes");
    telemetry::Counter &crcErrors =
        telemetry::Registry::global().counter("pmbus.link.crc_errors");
    telemetry::Counter &retransmits =
        telemetry::Registry::global().counter("pmbus.link.retransmits");
    telemetry::Counter &exhausted =
        telemetry::Registry::global().counter("pmbus.link.exhausted");
};

LinkMetrics &
linkMetrics()
{
    static LinkMetrics metrics;
    return metrics;
}

} // namespace

std::uint16_t
crc16(const std::vector<std::uint8_t> &bytes)
{
    // CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection.
    // Eight bytes per iteration: the running register only reaches the
    // first two bytes of each block, the rest fold in unconditioned.
    std::uint16_t crc = 0xFFFF;
    std::size_t i = 0;
    const std::uint8_t *data = bytes.data();
    for (; i + 8 <= bytes.size(); i += 8) {
        crc = static_cast<std::uint16_t>(
            crcTables[7][(data[i] ^ (crc >> 8)) & 0xFF] ^
            crcTables[6][(data[i + 1] ^ crc) & 0xFF] ^
            crcTables[5][data[i + 2]] ^ crcTables[4][data[i + 3]] ^
            crcTables[3][data[i + 4]] ^ crcTables[2][data[i + 5]] ^
            crcTables[1][data[i + 6]] ^ crcTables[0][data[i + 7]]);
    }
    for (; i < bytes.size(); ++i) {
        crc = static_cast<std::uint16_t>(
            (crc << 8) ^ crcTables[0][((crc >> 8) ^ data[i]) & 0xFF]);
    }
    return crc;
}

SerialFrame
SerialLink::transfer(const std::vector<std::uint8_t> &payload)
{
    SerialFrame frame;
    frame.payload = payload;
    frame.crc = crc16(payload);
    if (injector_ && !payload.empty() && injector_->corruptThisFrame()) {
        // Line noise flips a byte in flight; the CRC no longer matches.
        frame.payload[frame.payload.size() / 2] ^= 0xFF;
    }
    ++stats_.framesSent;
    stats_.bytesSent += payload.size();
    linkMetrics().frames.increment();
    linkMetrics().bytes.add(payload.size());
    return frame;
}

Expected<SerialFrame>
SerialLink::transferReliable(const std::vector<std::uint8_t> &payload)
{
    for (int attempt = 0; attempt < maxAttempts_; ++attempt) {
        if (attempt > 0) {
            ++stats_.retransmits;
            linkMetrics().retransmits.increment();
            // Exponential backoff in virtual line-time units.
            stats_.backoffTicks += 1ULL << std::min(attempt, 16);
        }
        SerialFrame frame = transfer(payload);
        if (frame.verified())
            return frame;
        ++stats_.crcErrors;
        linkMetrics().crcErrors.increment();
    }
    ++stats_.exhausted;
    linkMetrics().exhausted.increment();
    return makeError(Errc::linkExhausted,
                     "serial transfer of {} bytes failed CRC on all {} "
                     "attempts",
                     payload.size(), maxAttempts_);
}

void
SerialLink::setMaxAttempts(int attempts)
{
    if (attempts < 1)
        fatal("serial link needs at least one attempt, got {}", attempts);
    maxAttempts_ = attempts;
}

std::vector<std::uint8_t>
SerialLink::packWords(const std::vector<std::uint16_t> &words)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 2);
    for (std::uint16_t word : words) {
        bytes.push_back(static_cast<std::uint8_t>(word & 0xFF));
        bytes.push_back(static_cast<std::uint8_t>(word >> 8));
    }
    return bytes;
}

std::vector<std::uint16_t>
SerialLink::unpackWords(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() % 2 != 0)
        fatal("unpackWords: odd byte count {}", bytes.size());
    std::vector<std::uint16_t> words;
    words.reserve(bytes.size() / 2);
    for (std::size_t i = 0; i < bytes.size(); i += 2) {
        words.push_back(static_cast<std::uint16_t>(
            bytes[i] | (static_cast<std::uint16_t>(bytes[i + 1]) << 8)));
    }
    return words;
}

std::vector<std::uint8_t>
SerialLink::packWordBytes(std::span<const std::uint64_t> words)
{
    // The wire format is little-endian bytes of each 64-bit word; on a
    // little-endian host that IS the in-memory representation.
    std::vector<std::uint8_t> bytes(words.size() * 8);
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(bytes.data(), words.data(), bytes.size());
    } else {
        for (std::size_t w = 0; w < words.size(); ++w) {
            for (std::size_t k = 0; k < 8; ++k)
                bytes[w * 8 + k] =
                    static_cast<std::uint8_t>(words[w] >> (8 * k));
        }
    }
    return bytes;
}

std::vector<std::uint64_t>
SerialLink::unpackWordBytes(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() % 8 != 0)
        fatal("unpackWordBytes: byte count {} not a multiple of 8",
              bytes.size());
    std::vector<std::uint64_t> words(bytes.size() / 8, 0);
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(words.data(), bytes.data(), bytes.size());
    } else {
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t word = 0;
            for (std::size_t k = 0; k < 8; ++k)
                word |= static_cast<std::uint64_t>(bytes[w * 8 + k])
                    << (8 * k);
            words[w] = word;
        }
    }
    return words;
}

} // namespace uvolt::pmbus

#include "fxp/fixed_point.hh"

#include <bit>
#include <cmath>

#include "util/format.hh"
#include "util/logging.hh"

namespace uvolt::fxp
{

QFormat::QFormat(int digit_bits)
    : digitBits_(digit_bits), fracBits_(wordBits - 1 - digit_bits)
{
    if (digit_bits < 0 || digit_bits > wordBits - 1)
        fatal("QFormat digit bits {} out of [0, {}]", digit_bits,
              wordBits - 1);
}

double
QFormat::maxMagnitude() const
{
    return std::ldexp(1.0, digitBits_) - resolution();
}

double
QFormat::resolution() const
{
    return std::ldexp(1.0, -fracBits_);
}

Word
QFormat::quantize(double value) const
{
    const bool negative = std::signbit(value);
    double magnitude = std::abs(value);

    double scaled = std::round(std::ldexp(magnitude, fracBits_));
    const double max_scaled = std::ldexp(1.0, digitBits_ + fracBits_) - 1.0;
    if (scaled > max_scaled)
        scaled = max_scaled; // saturate

    Word word = static_cast<Word>(scaled);
    if (negative && word != 0)
        word = withBit(word, signBit, true);
    return word;
}

double
QFormat::dequantize(Word word) const
{
    const bool negative = getBit(word, signBit);
    const Word magnitude = withBit(word, signBit, false);
    double value = std::ldexp(static_cast<double>(magnitude), -fracBits_);
    return negative ? -value : value;
}

std::string
QFormat::describe() const
{
    return strFormat("s1.d{}.f{}", digitBits_, fracBits_);
}

int
minDigitBits(double max_abs_value)
{
    double magnitude = std::abs(max_abs_value);
    int bits = 0;
    // A digit field of b bits represents magnitudes strictly below 2^b
    // (up to the fraction resolution); grow b until that holds.
    while (magnitude >= std::ldexp(1.0, bits) && bits < wordBits - 1)
        ++bits;
    return bits;
}

int
popcount(Word word)
{
    return std::popcount(word);
}

std::uint64_t
popcount(std::span<const Word> words)
{
    std::uint64_t total = 0;
    for (Word w : words)
        total += static_cast<std::uint64_t>(std::popcount(w));
    return total;
}

double
zeroBitFraction(std::span<const Word> words)
{
    if (words.empty())
        return 0.0;
    const std::uint64_t ones = popcount(words);
    const std::uint64_t total =
        static_cast<std::uint64_t>(words.size()) * wordBits;
    return 1.0 - static_cast<double>(ones) / static_cast<double>(total);
}

} // namespace uvolt::fxp
